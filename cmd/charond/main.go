// Command charond is the long-running simulation service: an HTTP job
// API over the charonsim experiment harness, with bounded admission
// queueing, single-flight deduplication, and a checkpoint-backed result
// cache that survives restarts.
//
// Usage:
//
//	charond -addr 127.0.0.1:8080 -workers 2 -queue 16 -cache-dir /var/lib/charond
//
// Submit a job and read its report:
//
//	curl -d '{"experiment":"fig12","workloads":["BS"]}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/<id>
//	curl localhost:8080/v1/jobs/<id>/result
//
// A served report is byte-identical to the equivalent charonsim CLI
// invocation (minus the CLI's wall-clock trailer). SIGINT/SIGTERM drain
// gracefully: admission stops, in-flight jobs finish (or are checkpointed
// at the replay-unit level once -drain-timeout expires), and the process
// exits 0 on a clean drain. See internal/server for the endpoint and
// exit-code reference.
package main

import (
	"os"

	"charonsim/internal/server"
)

func main() {
	os.Exit(server.Main(os.Args[1:], os.Stdout, os.Stderr))
}
