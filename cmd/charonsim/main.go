// Command charonsim regenerates the paper's evaluation: it runs any of
// the table/figure experiments and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	charonsim -exp fig12                # one experiment, all six workloads
//	charonsim -exp fig14 -workloads BS,ALS
//	charonsim -exp all -threads 8 -factor 1.5
//	charonsim -exp all -parallel 8      # fan simulations out over 8 workers
//	charonsim -exp faults -fault-rate 0.01 -fault-seed 7
//	charonsim -exp fig12 -checkpoint-dir .ckpt   # crash-safe, resumable
//	charonsim -list
//
// Output is byte-identical at every -parallel setting; only the wall
// clock changes. SIGINT/SIGTERM stop the sweep cleanly: completed
// reports are printed, checkpoints (if enabled) stay intact, and the
// process exits with code 3. See internal/cli for the full exit-code
// contract.
package main

import (
	"os"

	"charonsim/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
