// Command charonsim regenerates the paper's evaluation: it runs any of
// the table/figure experiments and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	charonsim -exp fig12                # one experiment, all six workloads
//	charonsim -exp fig14 -workloads BS,ALS
//	charonsim -exp all -threads 8 -factor 1.5
//	charonsim -exp all -parallel 8      # fan simulations out over 8 workers
//	charonsim -exp faults -fault-rate 0.01 -fault-seed 7
//	charonsim -list
//
// Output is byte-identical at every -parallel setting; only the wall
// clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"charonsim"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		threads     = flag.Int("threads", 8, "GC thread count")
		factor      = flag.Float64("factor", 1.5, "heap overprovisioning factor (1.0 = minimum heap)")
		workloads   = flag.String("workloads", "", "comma-separated workload subset (default: all six)")
		parallel    = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, -1 = serial); output is identical at any setting")
		list        = flag.Bool("list", false, "list experiments and workloads, then exit")
		metricsPath = flag.String("metrics", "", "write a component-counter snapshot here after the run (.csv = CSV, otherwise JSON)")
		tracePath   = flag.String("trace", "", "write a chrome://tracing JSON event trace here (JSON only; requires -metrics)")
		faultRate   = flag.Float64("fault-rate", 0, "master fault-injection rate in [0, 1): link CRC errors plus derived ECC/bank/unit fault rates (0 = faults off)")
		faultSeed   = flag.Int64("fault-seed", 0, "deterministic fault pattern seed (requires a nonzero -fault-rate or -offload-deadline)")
		deadline    = flag.Duration("offload-deadline", 0, "Charon offload watchdog: offloads exceeding this re-run on the host cores (0 = off)")
		runTimeout  = flag.Duration("run-timeout", 0, "wall-clock budget per simulation run in the worker pool (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range charonsim.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("workloads:")
		for _, w := range charonsim.Workloads() {
			info, _ := charonsim.DescribeWorkload(w)
			fmt.Printf("  %-4s %-28s %-9s paper heap %s\n", w, info.Long, info.Framework, info.PaperHeap)
		}
		return
	}

	cfg := charonsim.Config{Threads: *threads, HeapFactor: *factor, Parallelism: *parallel,
		MetricsPath: *metricsPath, TracePath: *tracePath,
		FaultRate: *faultRate, FaultSeed: *faultSeed,
		OffloadDeadline: *deadline, RunTimeout: *runTimeout}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	var reports []*charonsim.Report
	var err error
	if *exp == "all" {
		reports, err = charonsim.RunAll(cfg)
	} else {
		var r *charonsim.Report
		r, err = charonsim.Run(*exp, cfg)
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Printf("== %s: %s ==\n%s\n", r.ID, r.Title, r.Text)
	}
	fmt.Printf("(%d experiment(s) in %.1fs)\n", len(reports), time.Since(start).Seconds())
}
