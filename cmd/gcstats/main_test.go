package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestGcstatsHelperProcess re-enters the gcstats command inside the
// test binary for the subprocess exit-code tests. Inert in normal runs.
func TestGcstatsHelperProcess(t *testing.T) {
	if os.Getenv("GCSTATS_HELPER") != "1" {
		t.Skip("not a helper invocation")
	}
	args := []string{}
	if raw := os.Getenv("GCSTATS_ARGS"); raw != "" {
		args = strings.Split(raw, "\x1f")
	}
	os.Exit(Main(args, os.Stdout, os.Stderr))
}

// helperExit runs Main as a real process and returns its exit code —
// the contract scripts and CI see, independent of the Go toolchain's
// flag.ExitOnError behaviour of the day.
func helperExit(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestGcstatsHelperProcess$")
	cmd.Env = append(os.Environ(), "GCSTATS_HELPER=1",
		"GCSTATS_ARGS="+strings.Join(args, "\x1f"))
	err := cmd.Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("helper: %v", err)
	return -1
}

func TestGcstatsHelpExitsZero(t *testing.T) {
	for _, flag := range []string{"-h", "-help"} {
		var out, errb bytes.Buffer
		if code := Main([]string{flag}, &out, &errb); code != 0 {
			t.Fatalf("gcstats %s exited %d, want 0 (stderr: %s)", flag, code, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of gcstats") {
			t.Fatalf("gcstats %s printed no usage text:\n%s", flag, errb.String())
		}
	}
	if code := helperExit(t, "-h"); code != 0 {
		t.Fatalf("gcstats -h subprocess exited %d, want 0", code)
	}
}

func TestGcstatsBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := helperExit(t, "-not-a-flag"); code != 2 {
		t.Fatalf("bad-flag subprocess exited %d, want 2", code)
	}
}

func TestGcstatsBadWorkloadExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-workload", "NOPE"}, &out, &errb); code != 1 {
		t.Fatalf("unknown workload exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "gcstats:") {
		t.Fatalf("no error line on stderr:\n%s", errb.String())
	}
}

func TestGcstatsRunsOneWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-workload", "BS"}, &out, &errb); code != 0 {
		t.Fatalf("gcstats -workload BS exited %d (stderr: %s)", code, errb.String())
	}
	for _, want := range []string{"workload    BS", "platform    charon", "per-primitive time:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
