// Command gcstats runs one workload configuration and prints a
// -verbose:gc style log: per-collection pause times on the chosen
// platform, the per-primitive breakdown, bandwidth, locality and energy.
//
// Usage:
//
//	gcstats -workload ALS -platform charon -factor 1.25 -threads 8
//	gcstats -workload CC -platform ddr4 -compare
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"charonsim"
)

// Main executes the gcstats command with the given arguments (excluding
// the program name) and returns the process exit code: 0 on success
// (including -h/-help, which prints usage and exits cleanly), 1 on a
// simulation failure, 2 on a flag parse error — the same contract as
// the charonsim CLI and charond.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcstats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "BS", "workload: BS, KM, LR, CC, PR, ALS")
		platform = fs.String("platform", "charon", "platform: ddr4, hmc, charon, charon-distributed, charon-cpuside, ideal")
		factor   = fs.Float64("factor", 1.5, "heap overprovisioning factor")
		threads  = fs.Int("threads", 8, "GC threads")
		compare  = fs.Bool("compare", false, "also run every other platform and print speedups")
		perGC    = fs.Bool("percollection", false, "print one line per collection")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	st, err := charonsim.SimulateGC(*name, *factor, charonsim.Platform(*platform), *threads)
	if err != nil {
		fmt.Fprintf(stderr, "gcstats: %v\n", err)
		return 1
	}

	info, _ := charonsim.DescribeWorkload(*name)
	fmt.Fprintf(stdout, "workload    %s (%s, %s; dataset: %s)\n", info.Name, info.Long, info.Framework, info.Dataset)
	fmt.Fprintf(stdout, "heap        %.2fx minimum (%d MB)\n", st.HeapFactor, uint64(float64(info.MinHeapBytes)*st.HeapFactor)>>20)
	fmt.Fprintf(stdout, "platform    %s, %d GC threads\n", st.Platform, st.Threads)
	fmt.Fprintf(stdout, "collections %d minor + %d major\n", st.MinorGCs, st.MajorGCs)
	fmt.Fprintf(stdout, "gc pause    %v total (mutator %v, overhead %.1f%%)\n",
		st.TotalPause, st.MutatorTime, st.Overhead()*100)
	fmt.Fprintf(stdout, "reclaimed   %.1f MB (live at collections: %.1f MB)\n",
		float64(st.ReclaimedBytes)/1e6, float64(st.LiveBytes)/1e6)
	fmt.Fprintf(stdout, "bandwidth   %.1f GB/s during GC", st.Bandwidth)
	if st.LocalRatio > 0 {
		fmt.Fprintf(stdout, " (%.0f%% serviced by the local cube)", st.LocalRatio*100)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "energy      %.4f J\n", st.EnergyJoules)

	fmt.Fprintln(stdout, "per-primitive time:")
	type kv struct {
		name string
		sec  float64
	}
	var prims []kv
	var total float64
	for n, s := range st.PrimSeconds {
		prims = append(prims, kv{n, s})
		total += s
	}
	sort.Slice(prims, func(i, j int) bool { return prims[i].sec > prims[j].sec })
	for _, p := range prims {
		if p.sec == 0 {
			continue
		}
		fmt.Fprintf(stdout, "  %-14s %8.3f ms  (%4.1f%%)\n", p.name, p.sec*1e3, p.sec/total*100)
	}

	if *perGC {
		events, err := charonsim.SimulateGCEvents(*name, *factor, charonsim.Platform(*platform), *threads)
		if err != nil {
			fmt.Fprintf(stderr, "gcstats: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "\nper-collection log:")
		for _, ev := range events {
			fmt.Fprintf(stdout, "  [%2d] %-9s %-32s pause %10v  live %8.1f KB  reclaimed %8.1f KB  %6.1f GB/s\n",
				ev.Seq, ev.Kind, ev.Reason, ev.Pause,
				float64(ev.LiveBytes)/1024, float64(ev.ReclaimedBytes)/1024, ev.BandwidthGBs)
		}
	}

	if *compare {
		fmt.Fprintln(stdout, "\nspeedup over ddr4:")
		base, err := charonsim.SimulateGC(*name, *factor, charonsim.PlatformDDR4, *threads)
		if err != nil {
			fmt.Fprintf(stderr, "gcstats: %v\n", err)
			return 1
		}
		for _, p := range charonsim.Platforms() {
			o, err := charonsim.SimulateGC(*name, *factor, p, *threads)
			if err != nil {
				fmt.Fprintf(stderr, "gcstats: %s: %v\n", p, err)
				continue
			}
			fmt.Fprintf(stdout, "  %-20s %6.2fx  (pause %v)\n", p,
				float64(base.TotalPause)/float64(o.TotalPause), o.TotalPause)
		}
	}
	return 0
}

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}
