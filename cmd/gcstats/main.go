// Command gcstats runs one workload configuration and prints a
// -verbose:gc style log: per-collection pause times on the chosen
// platform, the per-primitive breakdown, bandwidth, locality and energy.
//
// Usage:
//
//	gcstats -workload ALS -platform charon -factor 1.25 -threads 8
//	gcstats -workload CC -platform ddr4 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"charonsim"
)

func main() {
	var (
		name     = flag.String("workload", "BS", "workload: BS, KM, LR, CC, PR, ALS")
		platform = flag.String("platform", "charon", "platform: ddr4, hmc, charon, charon-distributed, charon-cpuside, ideal")
		factor   = flag.Float64("factor", 1.5, "heap overprovisioning factor")
		threads  = flag.Int("threads", 8, "GC threads")
		compare  = flag.Bool("compare", false, "also run every other platform and print speedups")
		perGC    = flag.Bool("percollection", false, "print one line per collection")
	)
	flag.Parse()

	st, err := charonsim.SimulateGC(*name, *factor, charonsim.Platform(*platform), *threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcstats: %v\n", err)
		os.Exit(1)
	}

	info, _ := charonsim.DescribeWorkload(*name)
	fmt.Printf("workload    %s (%s, %s; dataset: %s)\n", info.Name, info.Long, info.Framework, info.Dataset)
	fmt.Printf("heap        %.2fx minimum (%d MB)\n", st.HeapFactor, uint64(float64(info.MinHeapBytes)*st.HeapFactor)>>20)
	fmt.Printf("platform    %s, %d GC threads\n", st.Platform, st.Threads)
	fmt.Printf("collections %d minor + %d major\n", st.MinorGCs, st.MajorGCs)
	fmt.Printf("gc pause    %v total (mutator %v, overhead %.1f%%)\n",
		st.TotalPause, st.MutatorTime, st.Overhead()*100)
	fmt.Printf("reclaimed   %.1f MB (live at collections: %.1f MB)\n",
		float64(st.ReclaimedBytes)/1e6, float64(st.LiveBytes)/1e6)
	fmt.Printf("bandwidth   %.1f GB/s during GC", st.Bandwidth)
	if st.LocalRatio > 0 {
		fmt.Printf(" (%.0f%% serviced by the local cube)", st.LocalRatio*100)
	}
	fmt.Println()
	fmt.Printf("energy      %.4f J\n", st.EnergyJoules)

	fmt.Println("per-primitive time:")
	type kv struct {
		name string
		sec  float64
	}
	var prims []kv
	var total float64
	for n, s := range st.PrimSeconds {
		prims = append(prims, kv{n, s})
		total += s
	}
	sort.Slice(prims, func(i, j int) bool { return prims[i].sec > prims[j].sec })
	for _, p := range prims {
		if p.sec == 0 {
			continue
		}
		fmt.Printf("  %-14s %8.3f ms  (%4.1f%%)\n", p.name, p.sec*1e3, p.sec/total*100)
	}

	if *perGC {
		events, err := charonsim.SimulateGCEvents(*name, *factor, charonsim.Platform(*platform), *threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcstats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nper-collection log:")
		for _, ev := range events {
			fmt.Printf("  [%2d] %-9s %-32s pause %10v  live %8.1f KB  reclaimed %8.1f KB  %6.1f GB/s\n",
				ev.Seq, ev.Kind, ev.Reason, ev.Pause,
				float64(ev.LiveBytes)/1024, float64(ev.ReclaimedBytes)/1024, ev.BandwidthGBs)
		}
	}

	if *compare {
		fmt.Println("\nspeedup over ddr4:")
		base, err := charonsim.SimulateGC(*name, *factor, charonsim.PlatformDDR4, *threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcstats: %v\n", err)
			os.Exit(1)
		}
		for _, p := range charonsim.Platforms() {
			o, err := charonsim.SimulateGC(*name, *factor, p, *threads)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gcstats: %s: %v\n", p, err)
				continue
			}
			fmt.Printf("  %-20s %6.2fx  (pause %v)\n", p,
				float64(base.TotalPause)/float64(o.TotalPause), o.TotalPause)
		}
	}
}
