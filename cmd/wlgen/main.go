// Command wlgen inspects the synthetic workload generators: it runs one
// workload functionally (no timing) and prints its GC log and object
// demographics — the histograms that make BS/KM/LR "few large objects,
// few references" and CC/PR "many small objects, many references" per the
// paper's Section 3.2 analysis.
//
// Usage:
//
//	wlgen -workload PR -factor 1.5
//	wlgen -workload ALS -events
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"charonsim/internal/gc"
	"charonsim/internal/workload"
)

// Main executes the wlgen command with the given arguments (excluding
// the program name) and returns the process exit code: 0 on success
// (including -h/-help, which prints usage and exits cleanly), 1 on a
// workload failure, 2 on a flag parse error — the same contract as the
// charonsim CLI and charond.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wlgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("workload", "BS", "workload: BS, KM, LR, CC, PR, ALS")
		factor  = fs.Float64("factor", 1.5, "heap overprovisioning factor")
		events  = fs.Bool("events", false, "print the per-collection log")
		jsonOut = fs.Bool("json", false, "emit the GC log as newline-delimited JSON and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	w, err := workload.New(*name)
	if err != nil {
		fmt.Fprintf(stderr, "wlgen: %v\n", err)
		return 1
	}
	col, err := workload.RunRecorded(w, *factor)
	if err != nil {
		fmt.Fprintf(stderr, "wlgen: %v\n", err)
		return 1
	}
	if *jsonOut {
		if err := gc.WriteLog(stdout, col.Log); err != nil {
			fmt.Fprintf(stderr, "wlgen: %v\n", err)
			return 1
		}
		return 0
	}
	sp := w.Spec()
	fmt.Fprintf(stdout, "workload %s (%s) on %d MB heap (%.2fx min)\n",
		sp.Name, sp.Long, workload.HeapFor(sp, *factor)>>20, *factor)
	fmt.Fprintf(stdout, "allocated: %d objects, %.1f MB\n",
		col.H.Stats.AllocatedObjects, float64(col.H.Stats.AllocatedBytes)/1e6)
	fmt.Fprintf(stdout, "promoted:  %d objects, %.1f MB\n",
		col.H.Stats.PromotedObjects, float64(col.H.Stats.PromotedBytes)/1e6)
	fmt.Fprintf(stdout, "GCs: %d minor, %d major\n", col.Stats.Minors, col.Stats.Majors)

	// Demographics over all recorded copies and scans.
	var copyCount, copyBytes, maxCopy uint64
	var scanCount, refCount uint64
	sizeBuckets := map[string]uint64{}
	bucket := func(n uint32) string {
		switch {
		case n <= 64:
			return "<=64B"
		case n <= 512:
			return "<=512B"
		case n <= 4096:
			return "<=4KB"
		case n <= 65536:
			return "<=64KB"
		default:
			return ">64KB"
		}
	}
	for _, ev := range col.Log {
		for _, inv := range ev.Invocations {
			switch inv.Prim {
			case gc.PrimCopy:
				copyCount++
				copyBytes += uint64(inv.N)
				if uint64(inv.N) > maxCopy {
					maxCopy = uint64(inv.N)
				}
				sizeBuckets[bucket(inv.N)]++
			case gc.PrimScanPush:
				scanCount++
				refCount += uint64(inv.N)
			}
		}
	}
	fmt.Fprintf(stdout, "\nobject demographics (over GC work):\n")
	if copyCount > 0 {
		fmt.Fprintf(stdout, "  copies: %d, avg %.0f B, max %.1f KB\n",
			copyCount, float64(copyBytes)/float64(copyCount), float64(maxCopy)/1024)
	}
	for _, b := range []string{"<=64B", "<=512B", "<=4KB", "<=64KB", ">64KB"} {
		if sizeBuckets[b] > 0 {
			fmt.Fprintf(stdout, "    %-7s %6d copies\n", b, sizeBuckets[b])
		}
	}
	if scanCount > 0 {
		fmt.Fprintf(stdout, "  scans: %d, avg %.2f references per object scan\n",
			scanCount, float64(refCount)/float64(scanCount))
	}
	fmt.Fprintf(stdout, "  refs per copied KB: %.2f\n", float64(refCount)/(float64(copyBytes)/1024+1))

	if *events {
		fmt.Fprintln(stdout, "\ngc log:")
		for _, ev := range col.Log {
			counts := ev.CountByPrim()
			fmt.Fprintf(stdout, "  [%2d] %-5s %-26s live %7.1f KB, reclaimed %8.1f KB, promoted %7.1f KB  (copy=%d search=%d scan=%d bc=%d)\n",
				ev.Seq, ev.Kind, ev.Reason,
				float64(ev.LiveBytes)/1024, float64(ev.ReclaimedBytes)/1024, float64(ev.PromotedBytes)/1024,
				counts[gc.PrimCopy], counts[gc.PrimSearch], counts[gc.PrimScanPush], counts[gc.PrimBitmapCount])
		}
	}
	return 0
}

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}
