package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestWlgenHelperProcess re-enters the wlgen command inside the test
// binary for the subprocess exit-code tests. Inert in normal runs.
func TestWlgenHelperProcess(t *testing.T) {
	if os.Getenv("WLGEN_HELPER") != "1" {
		t.Skip("not a helper invocation")
	}
	args := []string{}
	if raw := os.Getenv("WLGEN_ARGS"); raw != "" {
		args = strings.Split(raw, "\x1f")
	}
	os.Exit(Main(args, os.Stdout, os.Stderr))
}

func helperExit(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestWlgenHelperProcess$")
	cmd.Env = append(os.Environ(), "WLGEN_HELPER=1",
		"WLGEN_ARGS="+strings.Join(args, "\x1f"))
	err := cmd.Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("helper: %v", err)
	return -1
}

func TestWlgenHelpExitsZero(t *testing.T) {
	for _, flag := range []string{"-h", "-help"} {
		var out, errb bytes.Buffer
		if code := Main([]string{flag}, &out, &errb); code != 0 {
			t.Fatalf("wlgen %s exited %d, want 0 (stderr: %s)", flag, code, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of wlgen") {
			t.Fatalf("wlgen %s printed no usage text:\n%s", flag, errb.String())
		}
	}
	if code := helperExit(t, "-h"); code != 0 {
		t.Fatalf("wlgen -h subprocess exited %d, want 0", code)
	}
}

func TestWlgenBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := helperExit(t, "-not-a-flag"); code != 2 {
		t.Fatalf("bad-flag subprocess exited %d, want 2", code)
	}
}

func TestWlgenBadWorkloadExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-workload", "NOPE"}, &out, &errb); code != 1 {
		t.Fatalf("unknown workload exited %d, want 1 (stderr: %s)", code, errb.String())
	}
}

func TestWlgenJSONLogIsParseable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-workload", "BS", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("wlgen -json exited %d (stderr: %s)", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("wlgen -json produced no log lines")
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &v); err != nil {
		t.Fatalf("first -json line is not JSON: %v\n%s", err, lines[0])
	}
}
