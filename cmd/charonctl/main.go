// Command charonctl is the resilient command-line client for charond,
// the simulation job service. It wraps every API exchange in bounded
// retries with seeded deterministic jitter, optional hedged GET
// polling, and a per-host circuit breaker, and it propagates the
// command's -timeout to the server as an X-Charon-Deadline header so
// the caller's patience bounds job execution end to end.
//
// Usage:
//
//	charonctl -server http://127.0.0.1:8080 submit -experiment fig12 -wait
//	charonctl sweep -experiments fig12,fig13 -heap-factors 1.2,1.5 -wait
//	charonctl wait <job-id>
//	charonctl result <job-id>
//	charonctl cancel <job-id>
//	charonctl metrics
//
// Reports are rendered server-side through the same formatter as the
// charonsim CLI, so the bytes charonctl prints are identical to a local
// run. The extra "proxy" subcommand runs the deterministic netfault TCP
// proxy for chaos testing:
//
//	charonctl proxy -listen 127.0.0.1:0 -target 127.0.0.1:8080 -net-rate 0.3 -net-seed 7
//
// See internal/client for the retry/hedge/breaker semantics and the
// exit-code reference (0 ok, 1 network/runtime failure, 2 usage, 3 the
// job itself failed).
package main

import (
	"os"

	"charonsim/internal/client"
)

func main() {
	os.Exit(client.Main(os.Args[1:], os.Stdout, os.Stderr))
}
