package charonsim

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment and prints the same rows/series the
// paper reports (once), plus reports the headline quantity as a benchmark
// metric so `go test -bench` output doubles as the reproduction record:
//
//	go test -bench=. -benchmem
//
// Shapes to expect against the paper (EXPERIMENTS.md has the full
// comparison): HMC ≈1.2x, Charon ≈3x geomean GC speedup (paper 3.29x),
// Copy the largest per-primitive winner, >60% energy savings, DDR4
// flat-lining in the thread sweep.

import (
	"fmt"
	"testing"
	"time"

	"charonsim/internal/energy"
	"charonsim/internal/exec"
	"charonsim/internal/experiments"
	"charonsim/internal/gc"
	"charonsim/internal/stats"
)

// benchSession memoizes recorded workload runs across iterations of one
// benchmark (recording is functional work; replay is what we measure).
func benchSession() *experiments.Session {
	return experiments.NewSession(experiments.Config{})
}

func printOnce(b *testing.B, i int, s string) {
	if i == 0 {
		fmt.Println(s)
	}
	_ = b
}

func BenchmarkFig02GCOverhead(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		var minHeap, twoX []float64
		for _, w := range r.Workload {
			minHeap = append(minHeap, r.Overhead[w][0])
			twoX = append(twoX, r.Overhead[w][len(r.Overhead[w])-1])
		}
		b.ReportMetric(stats.Max(minHeap)*100, "max-overhead-at-min-%")
		b.ReportMetric(stats.Mean(twoX)*100, "mean-overhead-at-2x-%")
	}
}

func BenchmarkFig04MinorBreakdown(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(s, gc.Minor)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		var key []float64
		for _, w := range r.Workload {
			key = append(key, r.KeyShare[w])
		}
		b.ReportMetric(stats.Mean(key)*100, "key-prims-share-%")
	}
}

func BenchmarkFig04MajorBreakdown(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(s, gc.Major)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		var key []float64
		for _, w := range r.Workload {
			key = append(key, r.KeyShare[w])
		}
		b.ReportMetric(stats.Mean(key)*100, "key-prims-share-%")
	}
}

func BenchmarkFig12Speedup(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.Geomean[exec.KindHMC], "hmc-geomean-x")
		b.ReportMetric(r.Geomean[exec.KindCharon], "charon-geomean-x")
		b.ReportMetric(r.Geomean[exec.KindIdeal], "ideal-geomean-x")
	}
}

func BenchmarkFig13Bandwidth(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		var bw, local []float64
		for _, w := range r.Workload {
			bw = append(bw, r.Bandwidth[w][exec.KindCharon])
			local = append(local, r.LocalRatio[w])
		}
		b.ReportMetric(stats.Max(bw), "max-charon-GBps")
		b.ReportMetric(stats.Mean(local)*100, "mean-local-%")
	}
}

func BenchmarkFig14PerPrimitive(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.Average[gc.PrimCopy], "copy-avg-x")
		b.ReportMetric(r.Max[gc.PrimCopy], "copy-max-x")
		b.ReportMetric(r.Average[gc.PrimSearch], "search-avg-x")
		b.ReportMetric(r.Average[gc.PrimScanPush], "scanpush-avg-x")
		b.ReportMetric(r.Average[gc.PrimBitmapCount], "bitmapcount-avg-x")
	}
}

func BenchmarkFig15Scalability(b *testing.B) {
	// The full 5-point thread sweep over 3 designs is the most expensive
	// experiment; run it over the framework-representative subset.
	s := experiments.NewSession(experiments.Config{Workloads: []string{"BS", "CC", "ALS"}})
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		var ddr8, charon8 []float64
		for _, w := range r.Workload {
			ddr8 = append(ddr8, r.Throughput[w][exec.KindDDR4][3])
			charon8 = append(charon8, r.Throughput[w][exec.KindCharon][3])
		}
		b.ReportMetric(stats.MustGeomean(ddr8), "ddr4-8T-x")
		b.ReportMetric(stats.MustGeomean(charon8), "charon-8T-x")
	}
}

func BenchmarkFig16CPUSide(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.CPUSideRatio, "cpuside-over-memside")
	}
}

func BenchmarkFig17Energy(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.Savings[exec.KindCharon]*100, "charon-savings-%")
		b.ReportMetric(r.Savings[exec.KindHMC]*100, "hmc-savings-%")
		b.ReportMetric(r.CharonAvgPowerW, "charon-avg-W")
		b.ReportMetric(r.CharonMaxPowerW, "charon-max-W")
	}
}

func BenchmarkTable1Applicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.RenderTable1())
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.RenderTable2())
	}
}

func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.RenderTable3())
	}
}

func BenchmarkTable4Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.RenderTable4())
		b.ReportMetric(energy.TotalArea(), "total-mm2")
		b.ReportMetric(energy.AreaFraction()*100, "logic-layer-%")
	}
}

func BenchmarkThermal(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Thermal(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.AvgPowerW, "avg-W")
		b.ReportMetric(r.DensityMWMM2, "mW-per-mm2")
	}
}

func BenchmarkTable1CollectorStudy(b *testing.B) {
	s := experiments.NewSession(experiments.Config{Workloads: []string{"BS", "CC", "ALS"}})
	for i := 0; i < b.N; i++ {
		r, err := experiments.CollectorStudy(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r.Render())
		b.ReportMetric(r.Geomean[gc.ModePS], "ps-geomean-x")
		b.ReportMetric(r.Geomean[gc.ModeG1], "g1-geomean-x")
		b.ReportMetric(r.Geomean[gc.ModeCMS], "cms-geomean-x")
	}
}

func BenchmarkAblations(b *testing.B) {
	s := experiments.NewSession(experiments.Config{Workloads: []string{"BS", "ALS"}})
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Ablations(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, experiments.RenderAblations(rs))
	}
}

// suiteSerialVsParallel runs RunAll twice — serial, then at parallelism
// 8 — and reports both wall clocks plus the speedup as benchmark metrics.
// Because every report is byte-identical across parallelism levels (the
// determinism tests enforce this), the two runs are directly comparable.
func suiteSerialVsParallel(b *testing.B, workloads []string) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serialReports, err := RunAll(Config{Workloads: workloads, Parallelism: -1})
		if err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0).Seconds()

		t0 = time.Now()
		parReports, err := RunAll(Config{Workloads: workloads, Parallelism: 8})
		if err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0).Seconds()

		for j := range serialReports {
			if serialReports[j].Text != parReports[j].Text {
				b.Fatalf("%s: parallel output diverged from serial", serialReports[j].ID)
			}
		}
		b.ReportMetric(serial, "serial-s")
		b.ReportMetric(par, "parallel8-s")
		b.ReportMetric(serial/par, "speedup-x")
	}
}

// BenchmarkSuiteSerialVsParallel measures the full suite (all figures and
// tables, all six workloads) serially vs at parallelism 8. On an N-core
// host (N >= 8) expect speedup-x >= 2; on a single core it stays ~1.
func BenchmarkSuiteSerialVsParallel(b *testing.B) {
	suiteSerialVsParallel(b, nil)
}

// BenchmarkSuiteQuickSerialVsParallel is the same comparison over the
// framework-representative subset, for quick parallel-efficiency checks.
func BenchmarkSuiteQuickSerialVsParallel(b *testing.B) {
	suiteSerialVsParallel(b, []string{"BS", "CC", "ALS"})
}

// BenchmarkRunAll measures the whole experiment suite end to end on one
// workload, serially: every figure and table, functional recording plus
// all platform replays. This is the headline number scripts/bench_gate.sh
// records in BENCH.json — the wall-clock cost of a full sweep.
func BenchmarkRunAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := RunAll(Config{Workloads: []string{"BS"}, Parallelism: -1})
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkEndToEnd measures the full pipeline cost for one workload:
// functional GC recording plus a Charon replay (the unit of work behind
// every figure).
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := SimulateGC("KM", 1.5, PlatformCharon, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.Bandwidth, "GBps")
		}
	}
}
