// Package charonsim is a self-contained reproduction of "Charon:
// Specialized Near-Memory Processing Architecture for Clearing Dead
// Objects in Memory" (Jang et al., MICRO-52, 2019): a near-memory garbage
// collection accelerator on the logic layer of 3D-stacked DRAM.
//
// The library contains, built from scratch in Go:
//
//   - a generational JVM-like heap with a ParallelScavenge-style collector
//     (minor scavenge + full mark-compact), card table and mark bitmaps;
//   - a discrete-event memory-system simulator: DDR4 channels, an HMC
//     (4 cubes x 32 vaults, serial links, star topology), host OoO cores
//     with caches/MSHRs/prefetcher;
//   - the Charon accelerator: Copy/Search, Bitmap Count and Scan&Push
//     processing units, MAI, accelerator TLB and bitmap cache, with the
//     offload packet protocol of the paper;
//   - synthetic Spark/GraphChi workloads reproducing the paper's object
//     demographics;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	report, err := charonsim.Run("fig12", charonsim.Config{})
//	fmt.Println(report.Text)
//
// or simulate one workload on one platform:
//
//	st, err := charonsim.SimulateGC("ALS", 1.5, charonsim.PlatformCharon, 8)
//	fmt.Printf("GC pause total: %v, speedup material: %v\n", st.TotalPause, st.Bandwidth)
package charonsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"charonsim/internal/atomicio"
	"charonsim/internal/checkpoint"
	"charonsim/internal/energy"
	"charonsim/internal/exec"
	"charonsim/internal/experiments"
	"charonsim/internal/fault"
	"charonsim/internal/gc"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
	"charonsim/internal/workload"
)

// ErrNoProgress is the engine watchdog's verdict on a wedged simulation:
// a run aborted because simulated time stopped advancing, the event queue
// grew without bound, or the per-run wall-clock heartbeat expired. Match
// it with errors.Is on any error returned from Run, RunAll or the
// Simulate functions.
var ErrNoProgress = sim.ErrNoProgress

// ErrInternal marks an internal invariant violation (a panic in the
// simulation core) recovered at the public API boundary and converted to
// an error carrying the run descriptor and stack. Match with errors.Is.
var ErrInternal = errors.New("internal invariant violation")

// Config controls experiment execution.
type Config struct {
	// Threads is the GC thread count (default 8, the paper's host).
	Threads int
	// HeapFactor is heap overprovisioning relative to each workload's
	// minimum heap (default 1.5; the paper uses 1.25-2x).
	HeapFactor float64
	// Workloads restricts the benchmark set (default: all six of Table 3).
	Workloads []string
	// Parallelism bounds how many simulations (workload recordings and
	// platform replays) the harness runs concurrently on the host machine
	// (default runtime.GOMAXPROCS(0); -1 forces serial execution).
	// It changes wall-clock time only: every simulation unit is
	// independent, so Report.Text is byte-identical at any parallelism
	// level. This is host-side concurrency, unrelated to Threads (the
	// number of simulated GC threads).
	Parallelism int
	// MetricsPath, when non-empty, writes a snapshot of every simulated
	// component's counters (cores, caches, DRAM banks, HMC links and
	// vaults, Charon units, conservation totals) after the run: CSV when
	// the path ends in ".csv", indented JSON otherwise. Metric values are
	// byte-identical at every Parallelism setting.
	MetricsPath string
	// TracePath, when non-empty, writes a chrome://tracing-loadable JSON
	// event trace (GC pauses, cache flushes, per-unit Charon offloads,
	// fault spans like "deadline-fallback"). Requires MetricsPath: the
	// trace's companion counters (span totals, drop counts) land in the
	// metrics snapshot. The trace format is JSON only — the path must not
	// carry a ".csv" extension.
	TracePath string
	// FaultRate is the master fault-injection rate in [0, 1): link CRC
	// errors at this per-packet probability, plus derived DRAM ECC, hard
	// bank fault, and Charon-unit failure/degradation rates (see
	// internal/fault for the derivations). Zero (the default) disables
	// injection entirely and keeps every report byte-identical to a
	// fault-free build.
	FaultRate float64
	// FaultSeed selects the deterministic fault pattern; the same seed and
	// Parallelism-independent draw order make faulted reports reproducible.
	// Setting a seed without a nonzero FaultRate (or OffloadDeadline) is a
	// configuration error — there would be no faults to seed.
	FaultSeed int64
	// OffloadDeadline arms the Charon offload watchdog: an offload whose
	// completion exceeds issue+deadline is abandoned and re-executed on the
	// host cores, counted as a degradation event. Zero disables it.
	OffloadDeadline time.Duration
	// RunTimeout, when positive, bounds each simulation unit's wall-clock
	// time in the harness worker pool; a run exceeding it fails with a
	// timeout error instead of hanging the whole sweep. It also arms the
	// engine watchdog's wall-clock heartbeat inside each run, so a wedged
	// simulation aborts with diagnostics (ErrNoProgress) rather than
	// silently burning its budget.
	RunTimeout time.Duration
	// CheckpointDir, when non-empty, makes sweeps crash-safe and
	// resumable: every completed replay unit is persisted there (atomic
	// temp-file+rename, checksummed) under a key derived from its fully
	// resolved configuration, and consulted before simulating. Re-running
	// an interrupted sweep with the same directory replays cached units
	// byte-identically and executes only the missing ones. Corrupt,
	// truncated or version-mismatched entries are detected and discarded.
	// The key includes the fault and parallelism knobs, so changing any
	// Config field that could affect results invalidates the cache
	// naturally. Incompatible with MetricsPath/TracePath: a cached replay
	// executes no simulation and would silently skew their counters.
	CheckpointDir string
	// WatchdogStalls overrides the engine watchdog's stall budget — the
	// number of consecutive events executed without simulated time
	// advancing before the run is declared wedged. 0 selects the default
	// (generous enough for every legitimate workload); -1 disables the
	// stall check.
	WatchdogStalls int
	// WatchdogQueue overrides the engine watchdog's event-queue bound — a
	// queue growing past it aborts the run as a leak. 0 selects the
	// default; -1 disables the check.
	WatchdogQueue int
}

func (c Config) toInternal() experiments.Config {
	return experiments.Config{Threads: c.Threads, Factor: c.HeapFactor,
		Workloads: c.Workloads, Parallelism: c.Parallelism,
		Fault:          c.faultConfig(),
		RunTimeout:     c.RunTimeout,
		WatchdogStalls: c.WatchdogStalls,
		WatchdogQueue:  c.WatchdogQueue}
}

// faultConfig maps the public fault knobs onto the injector configuration.
func (c Config) faultConfig() fault.Config {
	return fault.Config{Rate: c.FaultRate, Seed: c.FaultSeed,
		OffloadDeadline: sim.Time(c.OffloadDeadline.Nanoseconds()) * sim.Nanosecond}
}

// Validate rejects configurations that withDefaults would otherwise paper
// over: negative thread counts, non-finite or negative heap factors,
// parallelism below the documented -1 serial sentinel, unknown workload
// names, out-of-range fault rates, a fault seed with no fault to apply it
// to, negative deadlines/timeouts, a trace request without a metrics
// snapshot to accompany it, and a trace path with a ".csv" extension (the
// trace format is JSON only).
func (c Config) Validate() error {
	if c.Threads < 0 {
		return fmt.Errorf("charonsim: Threads must be >= 0 (0 selects the default), got %d", c.Threads)
	}
	if c.HeapFactor < 0 || math.IsNaN(c.HeapFactor) || math.IsInf(c.HeapFactor, 0) {
		return fmt.Errorf("charonsim: HeapFactor must be a finite value >= 0 (0 selects the default), got %v", c.HeapFactor)
	}
	if c.Parallelism < -1 {
		return fmt.Errorf("charonsim: Parallelism must be >= -1 (-1 = serial, 0 = GOMAXPROCS), got %d", c.Parallelism)
	}
	known := map[string]bool{}
	for _, w := range workload.Names() {
		known[w] = true
	}
	for _, w := range c.Workloads {
		if !known[w] {
			return fmt.Errorf("charonsim: unknown workload %q (have %v)", w, workload.Names())
		}
	}
	if c.TracePath != "" && c.MetricsPath == "" {
		return fmt.Errorf("charonsim: TracePath requires MetricsPath (the trace's summary counters are part of the metrics snapshot)")
	}
	if strings.HasSuffix(strings.ToLower(c.TracePath), ".csv") {
		return fmt.Errorf("charonsim: TracePath %q has a .csv extension but the event trace is JSON only (CSV is a MetricsPath format)", c.TracePath)
	}
	if c.FaultRate < 0 || c.FaultRate >= 1 || math.IsNaN(c.FaultRate) {
		return fmt.Errorf("charonsim: FaultRate must be in [0, 1), got %v", c.FaultRate)
	}
	if c.FaultSeed < 0 {
		return fmt.Errorf("charonsim: FaultSeed must be >= 0, got %d", c.FaultSeed)
	}
	if c.OffloadDeadline < 0 {
		return fmt.Errorf("charonsim: OffloadDeadline must be >= 0 (0 disables the watchdog), got %v", c.OffloadDeadline)
	}
	if c.RunTimeout < 0 {
		return fmt.Errorf("charonsim: RunTimeout must be >= 0 (0 disables the budget), got %v", c.RunTimeout)
	}
	if c.WatchdogStalls < -1 {
		return fmt.Errorf("charonsim: WatchdogStalls must be >= -1 (-1 disables, 0 = default), got %d", c.WatchdogStalls)
	}
	if c.WatchdogQueue < -1 {
		return fmt.Errorf("charonsim: WatchdogQueue must be >= -1 (-1 disables, 0 = default), got %d", c.WatchdogQueue)
	}
	if c.CheckpointDir != "" && (c.MetricsPath != "" || c.TracePath != "") {
		return fmt.Errorf("charonsim: CheckpointDir is incompatible with MetricsPath/TracePath (a cached replay executes no simulation, so the metrics and trace would silently undercount)")
	}
	if err := c.faultConfig().Validate(); err != nil {
		// The injector's own checks catch what the public knobs can still
		// misconfigure in combination — notably a seed with nothing to seed.
		return fmt.Errorf("charonsim: %w", err)
	}
	return nil
}

// observability builds the registry/recorder the config asks for (nil
// means disabled; all their methods are nil-safe).
func (c Config) observability() (*metrics.Registry, *metrics.Recorder) {
	var reg *metrics.Registry
	var rec *metrics.Recorder
	if c.MetricsPath != "" {
		reg = metrics.NewRegistry()
	}
	if c.TracePath != "" {
		rec = metrics.NewRecorder(0)
	}
	return reg, rec
}

// sessionFor validates cfg and builds the session plus its observability
// sinks and (when configured) its checkpoint store.
func sessionFor(ctx context.Context, cfg Config) (*experiments.Session, *metrics.Registry, *metrics.Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	reg, rec := cfg.observability()
	icfg := cfg.toInternal()
	icfg.Ctx = ctx
	icfg.Metrics = reg
	icfg.Trace = rec
	if cfg.CheckpointDir != "" {
		st, err := checkpoint.Open(cfg.CheckpointDir)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("charonsim: checkpoint: %w", err)
		}
		icfg.Checkpoint = st
	}
	return experiments.NewSession(icfg), reg, rec, nil
}

// writeObservability flushes the collected metrics snapshot and trace to
// the configured paths. Both files are written atomically (temp file in
// the destination directory, fsync, rename), so an interrupted or failed
// flush never leaves a truncated file — the previous snapshot, if any,
// survives intact.
func writeObservability(cfg Config, reg *metrics.Registry, rec *metrics.Recorder) error {
	if reg.Enabled() {
		if rec.Enabled() {
			// Fold the trace's own accounting into the snapshot.
			reg.AddUint("trace/events", uint64(rec.Len()))
			reg.AddUint("trace/dropped", rec.Dropped())
		}
		snap := reg.Snapshot()
		write := snap.WriteJSON
		if strings.HasSuffix(cfg.MetricsPath, ".csv") {
			write = snap.WriteCSV
		}
		if err := atomicio.WriteFile(cfg.MetricsPath, func(w io.Writer) error { return write(w) }); err != nil {
			return fmt.Errorf("charonsim: metrics: %w", err)
		}
	}
	if rec.Enabled() {
		if err := atomicio.WriteFile(cfg.TracePath, func(w io.Writer) error { return rec.WriteJSON(w) }); err != nil {
			return fmt.Errorf("charonsim: trace: %w", err)
		}
	}
	return nil
}

// Report is a rendered experiment result.
type Report struct {
	ID    string
	Title string
	Text  string
}

// Platform selects a hardware configuration for SimulateGC.
type Platform string

// The evaluated platforms (Figure 12, 15, 16).
const (
	PlatformDDR4              Platform = "ddr4"
	PlatformHMC               Platform = "hmc"
	PlatformCharon            Platform = "charon"
	PlatformCharonDistributed Platform = "charon-distributed"
	PlatformCharonCPUSide     Platform = "charon-cpuside"
	PlatformIdeal             Platform = "ideal"
)

func (p Platform) kind() (exec.Kind, error) {
	switch p {
	case PlatformDDR4:
		return exec.KindDDR4, nil
	case PlatformHMC:
		return exec.KindHMC, nil
	case PlatformCharon:
		return exec.KindCharon, nil
	case PlatformCharonDistributed:
		return exec.KindCharonDistributed, nil
	case PlatformCharonCPUSide:
		return exec.KindCharonCPUSide, nil
	case PlatformIdeal:
		return exec.KindIdeal, nil
	}
	return 0, fmt.Errorf("charonsim: unknown platform %q", string(p))
}

// Platforms lists the selectable platforms.
func Platforms() []Platform {
	return []Platform{PlatformDDR4, PlatformHMC, PlatformCharon,
		PlatformCharonDistributed, PlatformCharonCPUSide, PlatformIdeal}
}

// Workloads lists the benchmark short codes in the paper's order.
func Workloads() []string { return workload.Names() }

// WorkloadInfo describes one benchmark.
type WorkloadInfo struct {
	Name, Long, Framework, Dataset, PaperHeap string
	MinHeapBytes                              uint64
}

// DescribeWorkload returns metadata for a benchmark.
func DescribeWorkload(name string) (WorkloadInfo, error) {
	w, err := workload.New(name)
	if err != nil {
		return WorkloadInfo{}, err
	}
	sp := w.Spec()
	return WorkloadInfo{Name: sp.Name, Long: sp.Long, Framework: sp.Framework,
		Dataset: sp.Dataset, PaperHeap: sp.PaperHeap, MinHeapBytes: sp.MinHeapBytes}, nil
}

// experimentEntry binds an experiment id to its runner.
type experimentEntry struct {
	title string
	run   func(s *experiments.Session) (string, error)
}

var experimentTable = map[string]experimentEntry{
	"fig2": {"GC overhead vs heap size", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig2(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig4a": {"MinorGC runtime breakdown", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig4(s, gc.Minor)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig4b": {"MajorGC runtime breakdown", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig4(s, gc.Major)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig12": {"Overall GC speedup", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig12(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig13": {"Bandwidth and locality", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig13(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig14": {"Per-primitive speedups", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig14(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig15": {"GC throughput scalability", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig15(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig16": {"Memory-side vs CPU-side placement", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig16(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"fig17": {"GC energy", func(s *experiments.Session) (string, error) {
		r, err := experiments.Fig17(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"table1": {"Primitive applicability", func(*experiments.Session) (string, error) {
		return experiments.RenderTable1(), nil
	}},
	"table2": {"Architectural parameters", func(*experiments.Session) (string, error) {
		return experiments.RenderTable2(), nil
	}},
	"table3": {"Workloads", func(*experiments.Session) (string, error) {
		return experiments.RenderTable3(), nil
	}},
	"table4": {"Charon area", func(*experiments.Session) (string, error) {
		return experiments.RenderTable4(), nil
	}},
	"ablations": {"Design-space ablations (MAI, grain, bitmap cache, units, topology)", func(s *experiments.Session) (string, error) {
		rs, err := experiments.Ablations(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblations(rs), nil
	}},
	"collectors": {"Table 1 applicability study (ParallelScavenge vs G1 vs CMS)", func(s *experiments.Session) (string, error) {
		r, err := experiments.CollectorStudy(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"thermal": {"Power and thermal analysis", func(s *experiments.Session) (string, error) {
		r, err := experiments.Thermal(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	"faults": {"Fault sweep: GC time under injected faults, healthy to all-units-failed", func(s *experiments.Session) (string, error) {
		r, err := experiments.FigFaultSweep(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
}

// Experiments lists the available experiment ids in a stable order.
func Experiments() []string {
	ids := make([]string, 0, len(experimentTable))
	for id := range experimentTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// recoverInvariant is the public API's panic boundary: deferred at every
// entry point that executes simulation code, it converts an internal
// invariant panic into an error carrying the run descriptor. A watchdog
// abort (sim.Aborted) keeps its structured error so errors.Is against
// ErrNoProgress or context.Canceled works; anything else wraps
// ErrInternal with the panic value and stack.
func recoverInvariant(err *error, desc string) {
	if r := recover(); r != nil {
		if ab, ok := r.(sim.Aborted); ok {
			*err = fmt.Errorf("charonsim: %s aborted: %w", desc, ab.Err)
			return
		}
		*err = fmt.Errorf("charonsim: %s: %w: %v\n%s", desc, ErrInternal, r, debug.Stack())
	}
}

// runRecovered executes one experiment body behind the panic boundary.
func runRecovered(id string, fn func() (string, error)) (text string, err error) {
	defer recoverInvariant(&err, "experiment "+id)
	return fn()
}

// Run executes one experiment by id ("fig2", "fig4a", "fig4b", "fig12" ...
// "fig17", "table1" ... "table4", "thermal").
func Run(id string, cfg Config) (*Report, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is Run with cooperative cancellation: cancelling ctx stops
// dispatching new simulation units at event-loop granularity and the call
// returns an error wrapping ctx.Err().
func RunContext(ctx context.Context, id string, cfg Config) (*Report, error) {
	e, ok := experimentTable[id]
	if !ok {
		return nil, fmt.Errorf("charonsim: unknown experiment %q (have %v)", id, Experiments())
	}
	s, reg, rec, err := sessionFor(ctx, cfg)
	if err != nil {
		return nil, err
	}
	text, err := runRecovered(id, func() (string, error) { return e.run(s) })
	if err != nil {
		// Flush whatever observability the completed units produced; the
		// run error stays the primary failure.
		_ = writeObservability(cfg, reg, rec)
		return nil, err
	}
	if err := writeObservability(cfg, reg, rec); err != nil {
		return nil, err
	}
	return &Report{ID: id, Title: e.title, Text: text}, nil
}

// RunAll executes every experiment, sharing recorded workload runs across
// experiments (the session's single-flight memoization records each
// workload exactly once, no matter how many experiments need it or how
// many run at a time). Reports come back in Experiments() order and are
// byte-identical at every parallelism level; on error, the reports for
// experiments ordered before the first failing one are still returned.
func RunAll(cfg Config) ([]*Report, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext is RunAll with cooperative cancellation. On cancellation
// (SIGINT via signal.NotifyContext, say) no new experiment or simulation
// unit is dispatched, the reports completed so far come back as a partial
// prefix, collected observability is still flushed, and the returned
// error wraps ctx.Err().
func RunAllContext(ctx context.Context, cfg Config) ([]*Report, error) {
	s, reg, rec, err := sessionFor(ctx, cfg)
	if err != nil {
		return nil, err
	}
	ids := Experiments()
	reports := make([]*Report, len(ids))
	errs := make([]error, len(ids))
	runOne := func(i int) error {
		e := experimentTable[ids[i]]
		text, err := runRecovered(ids[i], func() (string, error) { return e.run(s) })
		if err != nil {
			errs[i] = err
			return err
		}
		reports[i] = &Report{ID: ids[i], Title: e.title, Text: text}
		return nil
	}
	// The experiments themselves fan out too (bounded by the same
	// parallelism the per-experiment loops use), so wide hosts stay busy
	// even while the longest single experiment is still running.
	poolErr := experiments.ForEachCtx(ctx, s.Config().Parallelism, len(ids), runOne)
	var out []*Report
	var firstErr error
	for i, id := range ids {
		if errs[i] != nil {
			firstErr = fmt.Errorf("%s: %w", id, errs[i])
			break
		}
		if reports[i] == nil {
			// Never dispatched — the sweep was cancelled (or a serial run
			// stopped early); the pool's error says why.
			firstErr = poolErr
			break
		}
		out = append(out, reports[i])
	}
	if firstErr == nil {
		firstErr = poolErr
	}
	// Flush whatever the completed prefix produced even on a partial
	// sweep; a flush failure only surfaces when the run itself succeeded.
	if werr := writeObservability(cfg, reg, rec); werr != nil && firstErr == nil {
		firstErr = werr
	}
	return out, firstErr
}

// GCStats summarizes one workload's garbage collection on one platform.
type GCStats struct {
	Workload   string
	Platform   Platform
	HeapFactor float64
	Threads    int

	MinorGCs int
	MajorGCs int

	// TotalPause is the summed simulated GC pause time.
	TotalPause time.Duration
	// MutatorTime is the modelled useful execution time.
	MutatorTime time.Duration
	// PrimSeconds attributes pause time to each primitive by name.
	PrimSeconds map[string]float64
	// Bandwidth is the average GC-time memory bandwidth in GB/s.
	Bandwidth float64
	// LocalRatio is the near-memory local-access fraction (Charon only).
	LocalRatio float64
	// EnergyJoules is the modelled GC energy.
	EnergyJoules float64
	// LiveBytes / ReclaimedBytes sum over all GCs.
	LiveBytes      uint64
	ReclaimedBytes uint64
}

// Overhead returns GC time normalized to mutator time (Figure 2's metric).
func (g *GCStats) Overhead() float64 {
	if g.MutatorTime == 0 {
		return 0
	}
	return float64(g.TotalPause) / float64(g.MutatorTime)
}

// SimulateGC runs one workload at the given heap factor, replays its GC
// log on the chosen platform, and returns aggregate statistics.
func SimulateGC(name string, factor float64, p Platform, threads int) (st *GCStats, err error) {
	defer recoverInvariant(&err, fmt.Sprintf("SimulateGC(%s, %s)", name, p))
	kind, err := p.kind()
	if err != nil {
		return nil, err
	}
	if err := (Config{Threads: threads, HeapFactor: factor, Workloads: []string{name}}).Validate(); err != nil {
		return nil, err
	}
	if factor == 0 {
		factor = 1.5
	}
	if threads == 0 {
		threads = 8
	}
	s := experiments.NewSession(experiments.Config{Threads: threads, Factor: factor})
	run, err := s.Record(name, factor)
	if err != nil {
		return nil, err
	}
	results, err := s.Replay(run, kind, threads)
	if err != nil {
		return nil, err
	}
	tot := experiments.Sum(kind, results, threads)

	st = &GCStats{
		Workload: name, Platform: p, HeapFactor: factor, Threads: threads,
		TotalPause:   simToDuration(tot.Duration),
		MutatorTime:  simToDuration(run.MutTime),
		PrimSeconds:  map[string]float64{},
		Bandwidth:    tot.BandwidthGBs(),
		LocalRatio:   tot.Local,
		EnergyJoules: float64(tot.Energy.Total()),
	}
	for pr := 0; pr < int(gc.NumPrims); pr++ {
		st.PrimSeconds[gc.Prim(pr).String()] = tot.PrimTime[pr].Seconds()
	}
	for _, ev := range run.Col.Log {
		if ev.Kind == gc.Minor {
			st.MinorGCs++
		} else {
			st.MajorGCs++
		}
		st.LiveBytes += ev.LiveBytes
		st.ReclaimedBytes += ev.ReclaimedBytes
	}
	return st, nil
}

func simToDuration(t sim.Time) time.Duration {
	return time.Duration(t / sim.Nanosecond * sim.Time(time.Nanosecond))
}

// GCEvent is one collection's outcome on a platform.
type GCEvent struct {
	Seq            int
	Kind           string // "minor", "major" or "marksweep"
	Reason         string
	Pause          time.Duration
	LiveBytes      uint64
	ReclaimedBytes uint64
	BandwidthGBs   float64
}

// SimulateGCEvents is SimulateGC with per-collection detail: one entry
// per GC event, in order, with its simulated pause on the chosen platform.
func SimulateGCEvents(name string, factor float64, p Platform, threads int) (evs []GCEvent, err error) {
	defer recoverInvariant(&err, fmt.Sprintf("SimulateGCEvents(%s, %s)", name, p))
	kind, err := p.kind()
	if err != nil {
		return nil, err
	}
	if err := (Config{Threads: threads, HeapFactor: factor, Workloads: []string{name}}).Validate(); err != nil {
		return nil, err
	}
	if factor == 0 {
		factor = 1.5
	}
	if threads == 0 {
		threads = 8
	}
	s := experiments.NewSession(experiments.Config{Threads: threads, Factor: factor})
	run, err := s.Record(name, factor)
	if err != nil {
		return nil, err
	}
	results, err := s.Replay(run, kind, threads)
	if err != nil {
		return nil, err
	}
	out := make([]GCEvent, 0, len(results))
	for i, r := range results {
		ev := run.Col.Log[i]
		out = append(out, GCEvent{
			Seq: ev.Seq, Kind: ev.Kind.String(), Reason: ev.Reason,
			Pause:          simToDuration(r.Duration),
			LiveBytes:      ev.LiveBytes,
			ReclaimedBytes: ev.ReclaimedBytes,
			BandwidthGBs:   r.Traffic.BandwidthGBs(r.Duration),
		})
	}
	return out, nil
}

// AreaSummary reports the Table 4 area model.
type AreaSummary struct {
	TotalMM2        float64
	PerCubeMM2      float64
	LogicLayerShare float64
}

// Area returns the accelerator area model (Table 4 totals).
func Area() AreaSummary {
	return AreaSummary{
		TotalMM2:        energy.TotalArea(),
		PerCubeMM2:      energy.AreaPerCube(),
		LogicLayerShare: energy.AreaFraction(),
	}
}
