#!/usr/bin/env bash
# Benchmark-regression gate.
#
# Runs the per-subsystem benchmark suite (calendar, engine, DRAM, HMC,
# cache, Charon offload) plus — in the full set — the end-to-end
# BenchmarkRunAll, compares against the committed bench_baseline.txt,
# writes BENCH.json, and fails on >10% geometric-mean ns/op regression.
#
#   ./scripts/bench_gate.sh                 # full gate (includes RunAll)
#   BENCH_SET=short ./scripts/bench_gate.sh # CI smoke: microbenchmarks only
#   BENCH_UPDATE=1 ./scripts/bench_gate.sh  # re-baseline instead of gating
#   BENCH_BASELINE=other.txt ...            # compare against another file
#
# Comparison uses scripts/benchcmp (plain-Go, no module downloads); when
# benchstat is on PATH its richer report is printed too, informationally.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${BENCH_BASELINE:-bench_baseline.txt}"
max_regress="${BENCH_MAX_REGRESS:-0.10}"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

run() { # run <package> <bench regexp> [extra go test flags...]
	pkg="$1"
	pat="$2"
	shift 2
	go test -run '^$' -bench "$pat" -benchmem "$@" "$pkg" | tee -a "$out"
}

echo "== benchmark suite ($([ "${BENCH_SET:-full}" = short ] && echo short || echo full) set) =="
run ./internal/sim '^(BenchmarkCalendarReserve|BenchmarkCalendarBusyWithin|BenchmarkEngineSchedulePop|BenchmarkEngineScheduleRun)$'
run ./internal/dram '^(BenchmarkDDR4AccessAt|BenchmarkControllerAccess)$'
run ./internal/hmc '^(BenchmarkHostAccess|BenchmarkNearAccess)$'
run ./internal/cache '^BenchmarkCacheAccess$'
run ./internal/charon '^(BenchmarkOffloadCopy|BenchmarkOffloadScanPush)$'
if [ "${BENCH_SET:-full}" != short ]; then
	# End to end: the whole experiment suite on one workload, one
	# iteration (each iteration is a complete sweep, tens of seconds).
	run . '^BenchmarkRunAll$' -benchtime 1x -timeout 60m
fi

if [ "${BENCH_UPDATE:-0}" = 1 ]; then
	cp "$out" "$baseline"
	echo "bench_gate: baseline refreshed -> $baseline"
	exit 0
fi

if [ ! -f "$baseline" ]; then
	echo "bench_gate: no baseline at $baseline — run BENCH_UPDATE=1 $0 first" >&2
	exit 2
fi

if command -v benchstat >/dev/null 2>&1; then
	echo "== benchstat (informational) =="
	benchstat "$baseline" "$out" || true
fi

echo "== regression gate (max +$(awk "BEGIN{print $max_regress*100}")% geomean) =="
go run ./scripts/benchcmp -old "$baseline" -new "$out" \
	-json BENCH.json -max-regress "$max_regress"
echo "bench_gate: record written to BENCH.json"
