#!/usr/bin/env bash
# sweep_smoke.sh — end-to-end crash-recovery check for the charond sweep
# API, usable locally and as the CI sweep-smoke job:
#
#   1. boot charond with a cache directory and submit a two-experiment
#      sweep (POST /v1/sweeps), capturing the expanded child job ids,
#   2. kill -9 the server mid-sweep, once at least one simulation unit
#      has been checkpointed (so recovery resumes partial work),
#   3. restart charond over the same cache directory and assert the
#      sweep reappears from its journaled manifest — same sweep id, same
#      child ids, no resubmission — and runs to completion,
#   4. assert the combined report is byte-identical to the equivalent
#      charonsim CLI runs concatenated in grid order,
#   5. resubmit the same grid through `charonctl sweep -wait` and assert
#      it deduplicates onto the finished sweep (no re-execution) and
#      prints the same bytes,
#   6. SIGTERM the server and assert a clean drain.
#
# Any divergence — a lost sweep, a changed child id, a byte of report
# drift — fails the script. On failure the journal directory is left in
# $CHAOS_ARTIFACT_DIR (when set) for post-mortem.
set -u -o pipefail

EXPS=${EXPS:-"fig2 fig12"}
WORKLOADS=${WORKLOADS:-BS}
GO=${GO:-go}
WORK=$(mktemp -d)
CHAROND_PID=""

preserve_artifacts() {
    if [ -n "${CHAOS_ARTIFACT_DIR:-}" ] && [ -d "$WORK/cache/journal" ]; then
        mkdir -p "$CHAOS_ARTIFACT_DIR"
        cp -r "$WORK/cache/journal" "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
        cp "$WORK"/charond*.err "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
    fi
}
fail() {
    echo "FAIL: $*"
    preserve_artifacts
    exit 1
}
cleanup() {
    [ -n "$CHAROND_PID" ] && kill -9 "$CHAROND_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

boot() { # boot <outfile> <errfile>; sets CHAROND_PID and BASE
    "$WORK/charond" -addr 127.0.0.1:0 -workers 1 -queue 8 \
        -cache-dir "$WORK/cache" >"$1" 2>"$2" &
    CHAROND_PID=$!
    BASE=""
    for _ in $(seq 1 200); do
        BASE=$(sed -n 's/^charond listening on //p' "$1" | head -n1)
        [ -n "$BASE" ] && break
        if ! kill -0 "$CHAROND_PID" 2>/dev/null; then
            cat "$2"
            fail "charond exited before listening"
        fi
        sleep 0.05
    done
    [ -n "$BASE" ] || fail "charond never announced its address"
}

echo "== building charonsim + charond + charonctl =="
$GO build -o "$WORK/charonsim" ./cmd/charonsim || exit 1
$GO build -o "$WORK/charond" ./cmd/charond || exit 1
$GO build -o "$WORK/charonctl" ./cmd/charonctl || exit 1

EXP_JSON=$(printf '%s\n' $EXPS | sed 's/.*/"&"/' | paste -sd, -)
EXP_CSV=$(printf '%s\n' $EXPS | paste -sd, -)
BODY=$(printf '{"experiments":[%s],"workloads":["%s"]}' "$EXP_JSON" "$WORKLOADS")

echo "== phase 1: boot and submit sweep =="
boot "$WORK/charond1.out" "$WORK/charond1.err"
echo "charond (pid $CHAROND_PID) at $BASE"
curl -fsS -d "$BODY" "$BASE/v1/sweeps" >"$WORK/sweep1.json" || fail "sweep submission failed"
SWEEP_ID=$(jq -r .id "$WORK/sweep1.json")
[ -n "$SWEEP_ID" ] && [ "$SWEEP_ID" != "null" ] || fail "submission returned no sweep id"
jq -r '.children[].id' "$WORK/sweep1.json" >"$WORK/children.before"
N_CHILDREN=$(wc -l <"$WORK/children.before")
[ "$N_CHILDREN" -ge 2 ] || fail "sweep expanded to $N_CHILDREN children, want >= 2"
echo "sweep $SWEEP_ID submitted ($N_CHILDREN children)"

# The 202 contract: the sweep manifest and every fresh child are
# journaled before the response (manifest + N child records).
J=$(ls "$WORK"/cache/journal/*.ckpt.json 2>/dev/null | wc -l)
[ "$J" -ge $((N_CHILDREN + 1)) ] || fail "journal holds $J records after the 202, want >= $((N_CHILDREN + 1))"

echo "== phase 2: kill -9 mid-sweep =="
for _ in $(seq 1 1200); do
    if compgen -G "$WORK/cache/units/*.ckpt.json" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$CHAROND_PID" 2>/dev/null || fail "charond died before checkpointing a unit"
    sleep 0.05
done
compgen -G "$WORK/cache/units/*.ckpt.json" >/dev/null 2>&1 \
    || fail "no unit checkpoint appeared; cannot exercise mid-sweep recovery"
kill -9 "$CHAROND_PID"
wait "$CHAROND_PID" 2>/dev/null
CHAROND_PID=""
echo "killed -9 mid-sweep"

echo "== phase 3: restart and recover the sweep =="
boot "$WORK/charond2.out" "$WORK/charond2.err"
echo "charond restarted (pid $CHAROND_PID) at $BASE"
CODE=$(curl -s -o "$WORK/sweep2.json" -w '%{http_code}' "$BASE/v1/sweeps/$SWEEP_ID")
[ "$CODE" = "200" ] || { cat "$WORK/charond2.err"; fail "recovered sweep GET = $CODE, want 200"; }
REC=$(jq -r '.recovered // 0' "$WORK/sweep2.json")
[ "$REC" -ge 1 ] || fail "sweep not marked as crash-recovered (recovered=$REC)"
jq -r '.children[].id' "$WORK/sweep2.json" >"$WORK/children.after"
diff "$WORK/children.before" "$WORK/children.after" \
    || fail "child job ids changed across the crash"
echo "sweep recovered with its original $N_CHILDREN child ids"

STATE=""
for _ in $(seq 1 2400); do
    STATE=$(curl -fsS "$BASE/v1/sweeps/$SWEEP_ID" | jq -r .state)
    case "$STATE" in
        done) break ;;
        failed|canceled)
            curl -fsS "$BASE/v1/sweeps/$SWEEP_ID" | jq .
            fail "recovered sweep ended $STATE" ;;
    esac
    sleep 0.25
done
[ "$STATE" = "done" ] || fail "recovered sweep never completed (state $STATE)"
curl -fsS "$BASE/v1/sweeps/$SWEEP_ID/result" >"$WORK/served.out" || fail "sweep result fetch failed"
RECOVERED=$(curl -fsS "$BASE/v1/metrics" | jq -r '.counters["server/sweeps_recovered"] // 0')
[ "${RECOVERED%.*}" -ge 1 ] || fail "/v1/metrics reports no sweep recovery"

echo "== phase 4: byte-identity against the CLI, in grid order =="
: >"$WORK/cli.concat"
for EXP in $EXPS; do
    if ! "$WORK/charonsim" -exp "$EXP" -workloads "$WORKLOADS" >"$WORK/cli.out" 2>"$WORK/cli.err"; then
        cat "$WORK/cli.err"
        fail "CLI run $EXP failed"
    fi
    grep -v '^([0-9]* experiment(s) in ' "$WORK/cli.out" >>"$WORK/cli.concat"
done
if ! diff "$WORK/served.out" "$WORK/cli.concat"; then
    fail "combined sweep report diverged from the concatenated CLI output"
fi
echo "combined report is byte-identical to the CLI runs"

echo "== phase 5: duplicate sweep dedups through charonctl =="
RUNS_BEFORE=$(curl -fsS "$BASE/v1/metrics" | jq -r '.counters["server/jobs_completed"] // 0')
if ! "$WORK/charonctl" -server "$BASE" sweep -experiments "$EXP_CSV" -workloads "$WORKLOADS" -wait >"$WORK/ctl.out" 2>"$WORK/ctl.err"; then
    cat "$WORK/ctl.err"
    fail "charonctl sweep -wait failed"
fi
diff "$WORK/served.out" "$WORK/ctl.out" \
    || fail "charonctl sweep bytes diverged from the served result"
RUNS_AFTER=$(curl -fsS "$BASE/v1/metrics" | jq -r '.counters["server/jobs_completed"] // 0')
[ "${RUNS_AFTER%.*}" -eq "${RUNS_BEFORE%.*}" ] \
    || fail "duplicate sweep re-executed children (jobs_completed $RUNS_BEFORE -> $RUNS_AFTER)"
echo "duplicate submission reused every child result (no re-execution)"

echo "== phase 6: SIGTERM drain =="
kill -TERM "$CHAROND_PID"
wait "$CHAROND_PID"
CODE=$?
CHAROND_PID=""
if [ "$CODE" -ne 0 ]; then
    cat "$WORK/charond2.err"
    fail "drain exited $CODE, want 0"
fi
echo "PASS: sweep smoke complete (kill -9 recovered, ids stable, byte-identical, dedup clean)"
