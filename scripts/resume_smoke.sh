#!/usr/bin/env bash
# resume_smoke.sh — end-to-end crash-safety check for the checkpointing
# layer, usable locally and as the CI resume-smoke job:
#
#   1. run a sweep with -checkpoint-dir and kill it mid-flight (SIGINT),
#   2. assert the clean partial exit code (3) and an intact store,
#   3. resume over the same directory to completion,
#   4. diff the resumed output against an uninterrupted golden run.
#
# Any divergence — a corrupt entry, a changed exit code, a single byte of
# report drift — fails the script.
set -u -o pipefail

EXP=${EXP:-fig2}
WORKLOADS=${WORKLOADS:-BS}
GO=${GO:-go}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

CKPT="$WORK/ckpt"
ARGS=(-exp "$EXP" -workloads "$WORKLOADS" -parallel 1 -checkpoint-dir "$CKPT")

echo "== building charonsim =="
$GO build -o "$WORK/charonsim" ./cmd/charonsim || exit 1

echo "== phase 1: interrupted run =="
"$WORK/charonsim" "${ARGS[@]}" >"$WORK/interrupted.out" 2>"$WORK/interrupted.err" &
PID=$!

# Interrupt once the first checkpoint entry has been persisted (so the
# resume genuinely replays cached work), with a hard timeout.
for _ in $(seq 1 1200); do
    if compgen -G "$CKPT/*.ckpt.json" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: sweep exited before writing a checkpoint entry"
        cat "$WORK/interrupted.err"
        exit 1
    fi
    sleep 0.05
done
kill -INT "$PID"
wait "$PID"
CODE=$?
if [ "$CODE" -ne 3 ]; then
    echo "FAIL: interrupted run exited $CODE, want 3"
    cat "$WORK/interrupted.err"
    exit 1
fi
N=$(ls "$CKPT"/*.ckpt.json 2>/dev/null | wc -l)
echo "interrupted cleanly with $N checkpointed unit(s)"

echo "== phase 2: resume =="
if ! "$WORK/charonsim" "${ARGS[@]}" >"$WORK/resumed.out" 2>"$WORK/resumed.err"; then
    echo "FAIL: resume run failed"
    cat "$WORK/resumed.err"
    exit 1
fi

echo "== phase 3: golden (uninterrupted) run =="
if ! "$WORK/charonsim" -exp "$EXP" -workloads "$WORKLOADS" -parallel 1 \
    -checkpoint-dir "$WORK/ckpt-golden" >"$WORK/golden.out" 2>"$WORK/golden.err"; then
    echo "FAIL: golden run failed"
    cat "$WORK/golden.err"
    exit 1
fi

# Strip the wall-clock trailer — the only legitimately varying line.
strip() { grep -v '^([0-9]* experiment(s) in ' "$1"; }
if ! diff <(strip "$WORK/resumed.out") <(strip "$WORK/golden.out"); then
    echo "FAIL: resumed output diverged from the uninterrupted run"
    exit 1
fi
echo "PASS: resumed output is byte-identical to the uninterrupted run"
