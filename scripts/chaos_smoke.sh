#!/usr/bin/env bash
# chaos_smoke.sh — kill-9 crash-recovery check for the charond job
# journal, usable locally and as the CI chaos-smoke job:
#
#   1. boot charond with a cache directory and submit a sweep job,
#   2. kill -9 the server mid-run, once at least one simulation unit has
#      been checkpointed (so recovery genuinely resumes partial work),
#   3. restart charond over the same cache directory and assert the job
#      reappears from the journal — same id, no resubmission — and runs
#      to completion,
#   4. assert no completed unit was re-executed (the checkpointed unit
#      files survive the restart byte-for-byte untouched),
#   5. assert the recovered job's report is byte-identical to the
#      charonsim CLI's output for the same configuration,
#   6. SIGTERM the server and assert a clean drain.
#
# Any divergence — a lost job, a re-executed unit, a byte of report
# drift — fails the script. On failure the journal directory is left in
# $CHAOS_ARTIFACT_DIR (when set) for post-mortem.
set -u -o pipefail

EXP=${EXP:-fig2}
WORKLOADS=${WORKLOADS:-BS}
GO=${GO:-go}
WORK=$(mktemp -d)
CHAROND_PID=""

preserve_artifacts() {
    if [ -n "${CHAOS_ARTIFACT_DIR:-}" ] && [ -d "$WORK/cache/journal" ]; then
        mkdir -p "$CHAOS_ARTIFACT_DIR"
        cp -r "$WORK/cache/journal" "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
        cp "$WORK"/charond*.err "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
    fi
}
fail() {
    echo "FAIL: $*"
    preserve_artifacts
    exit 1
}
cleanup() {
    [ -n "$CHAROND_PID" ] && kill -9 "$CHAROND_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

boot() { # boot <outfile> <errfile>; sets CHAROND_PID and BASE
    "$WORK/charond" -addr 127.0.0.1:0 -workers 1 -queue 4 \
        -cache-dir "$WORK/cache" >"$1" 2>"$2" &
    CHAROND_PID=$!
    BASE=""
    for _ in $(seq 1 200); do
        BASE=$(sed -n 's/^charond listening on //p' "$1" | head -n1)
        [ -n "$BASE" ] && break
        if ! kill -0 "$CHAROND_PID" 2>/dev/null; then
            cat "$2"
            fail "charond exited before listening"
        fi
        sleep 0.05
    done
    [ -n "$BASE" ] || fail "charond never announced its address"
}

echo "== building charonsim + charond =="
$GO build -o "$WORK/charonsim" ./cmd/charonsim || exit 1
$GO build -o "$WORK/charond" ./cmd/charond || exit 1

echo "== phase 1: boot and submit =="
boot "$WORK/charond1.out" "$WORK/charond1.err"
echo "charond (pid $CHAROND_PID) at $BASE"
BODY=$(printf '{"experiment":"%s","workloads":["%s"]}' "$EXP" "$WORKLOADS")
ID=$(curl -fsS -d "$BODY" "$BASE/v1/jobs" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != "null" ] || fail "submission returned no job id"
echo "job $ID submitted"

# The 202 contract: the journal record is on disk before the response.
J=$(ls "$WORK"/cache/journal/*.ckpt.json 2>/dev/null | wc -l)
[ "$J" -ge 1 ] || fail "no journal record on disk after the 202 (found $J)"

echo "== phase 2: kill -9 mid-run =="
# Wait for the first completed simulation unit so the recovery genuinely
# resumes partial work rather than starting cold.
for _ in $(seq 1 1200); do
    if compgen -G "$WORK/cache/units/*.ckpt.json" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$CHAROND_PID" 2>/dev/null || fail "charond died before checkpointing a unit"
    sleep 0.05
done
compgen -G "$WORK/cache/units/*.ckpt.json" >/dev/null 2>&1 \
    || fail "no unit checkpoint appeared; cannot exercise mid-run recovery"
kill -9 "$CHAROND_PID"
wait "$CHAROND_PID" 2>/dev/null
CHAROND_PID=""
# Fingerprint the units completed before the crash: recovery must reuse
# them, so their files must be untouched after the job finishes.
stat -c '%n %Y %s' "$WORK"/cache/units/*.ckpt.json | sort >"$WORK/units.before"
N=$(wc -l <"$WORK/units.before")
echo "killed -9 with $N checkpointed unit(s)"

echo "== phase 3: restart and recover =="
boot "$WORK/charond2.out" "$WORK/charond2.err"
echo "charond restarted (pid $CHAROND_PID) at $BASE"
# The job must be visible without any resubmission — replayed from the
# journal under its original id.
CODE=$(curl -s -o "$WORK/job.json" -w '%{http_code}' "$BASE/v1/jobs/$ID")
[ "$CODE" = "200" ] || { cat "$WORK/charond2.err"; fail "recovered job GET = $CODE, want 200"; }
REC=$(jq -r '.recovered // 0' "$WORK/job.json")
[ "$REC" -ge 1 ] || fail "job not marked as crash-recovered (recovered=$REC)"

STATE=""
for _ in $(seq 1 2400); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$ID" | jq -r .state)
    case "$STATE" in
        done) break ;;
        failed|canceled)
            curl -fsS "$BASE/v1/jobs/$ID" | jq .
            fail "recovered job ended $STATE" ;;
    esac
    sleep 0.25
done
[ "$STATE" = "done" ] || fail "recovered job never completed (state $STATE)"
curl -fsS "$BASE/v1/jobs/$ID/result" >"$WORK/served.out" || fail "result fetch failed"
RECOVERED=$(curl -fsS "$BASE/v1/metrics" | jq -r '.counters["server/journal_recovered"] // 0')
[ "${RECOVERED%.*}" -ge 1 ] || fail "/v1/metrics reports no journal recovery"

echo "== phase 4: no duplicate unit execution =="
stat -c '%n %Y %s' $(cut -d' ' -f1 "$WORK/units.before") | sort >"$WORK/units.after"
if ! diff "$WORK/units.before" "$WORK/units.after"; then
    fail "pre-crash unit checkpoints were rewritten — completed work re-executed"
fi
echo "all $N pre-crash unit(s) reused untouched"

echo "== phase 5: byte-identity against the CLI =="
if ! "$WORK/charonsim" -exp "$EXP" -workloads "$WORKLOADS" >"$WORK/cli.out" 2>"$WORK/cli.err"; then
    cat "$WORK/cli.err"
    fail "CLI run failed"
fi
grep -v '^([0-9]* experiment(s) in ' "$WORK/cli.out" >"$WORK/cli.stripped"
if ! diff "$WORK/served.out" "$WORK/cli.stripped"; then
    fail "recovered report diverged from the CLI output"
fi
echo "recovered report is byte-identical to the CLI"

echo "== phase 6: SIGTERM drain =="
kill -TERM "$CHAROND_PID"
wait "$CHAROND_PID"
CODE=$?
CHAROND_PID=""
if [ "$CODE" -ne 0 ]; then
    cat "$WORK/charond2.err"
    fail "drain exited $CODE, want 0"
fi
echo "PASS: chaos smoke complete (kill -9 recovered, no re-execution, byte-identical)"
