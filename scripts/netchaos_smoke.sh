#!/usr/bin/env bash
# netchaos_smoke.sh — network-edge resilience check for charonctl and the
# netfault proxy, usable locally and as the CI netchaos-smoke job:
#
#   1. boot charond, then boot the deterministic netfault proxy
#      (charonctl proxy) in front of it with a seeded fault pattern —
#      connection resets, blackholes, latency, truncated bodies,
#      slowloris reads,
#   2. drive a full submit → poll → result cycle with charonctl THROUGH
#      the faulty proxy (fresh connection per request, so every request
#      redraws the proxy's per-connection fault plan) and require it to
#      succeed end to end,
#   3. assert the report fetched across the faulty network is
#      byte-identical to a direct charonsim CLI run — resilience must
#      never change bytes,
#   4. reconcile the ledgers: the proxy must have actually injected
#      faults (non-empty fault log), and for every hard fault class seen
#      (reset/blackhole/truncate) the client's retry counters must show
#      the recovery work that absorbed it,
#   5. SIGTERM proxy and server and require clean exits.
#
# Any end-to-end failure, a byte of report drift, or a ledger that does
# not reconcile fails the script. On failure the proxy fault log, the
# client metrics snapshot, and the server journal are left in
# $CHAOS_ARTIFACT_DIR (when set) for post-mortem.
set -u -o pipefail

EXP=${EXP:-fig2}
WORKLOADS=${WORKLOADS:-BS}
NET_RATE=${NET_RATE:-0.25}
NET_SEED=${NET_SEED:-7}
GO=${GO:-go}
WORK=$(mktemp -d)
CHAROND_PID=""
PROXY_PID=""

preserve_artifacts() {
    if [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$CHAOS_ARTIFACT_DIR"
        cp "$WORK/faults.log" "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
        cp "$WORK/client_metrics.json" "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
        cp "$WORK"/charond*.err "$WORK"/proxy*.err "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
        [ -d "$WORK/cache/journal" ] && cp -r "$WORK/cache/journal" "$CHAOS_ARTIFACT_DIR/" 2>/dev/null
    fi
}
fail() {
    echo "FAIL: $*"
    preserve_artifacts
    exit 1
}
cleanup() {
    [ -n "$PROXY_PID" ] && kill -9 "$PROXY_PID" 2>/dev/null
    [ -n "$CHAROND_PID" ] && kill -9 "$CHAROND_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

counter() { # counter <metrics.json> <name>; prints the integer value (0 if absent)
    local v
    v=$(jq -r --arg n "$2" '.counters[$n] // 0' "$1")
    echo "${v%.*}"
}

echo "== building charonsim + charond + charonctl =="
$GO build -o "$WORK/charonsim" ./cmd/charonsim || exit 1
$GO build -o "$WORK/charond" ./cmd/charond || exit 1
$GO build -o "$WORK/charonctl" ./cmd/charonctl || exit 1

echo "== phase 1: boot charond and the netfault proxy =="
"$WORK/charond" -addr 127.0.0.1:0 -workers 1 -queue 8 \
    -cache-dir "$WORK/cache" >"$WORK/charond.out" 2>"$WORK/charond.err" &
CHAROND_PID=$!
BASE=""
for _ in $(seq 1 200); do
    BASE=$(sed -n 's/^charond listening on //p' "$WORK/charond.out" | head -n1)
    [ -n "$BASE" ] && break
    if ! kill -0 "$CHAROND_PID" 2>/dev/null; then
        cat "$WORK/charond.err"
        fail "charond exited before listening"
    fi
    sleep 0.05
done
[ -n "$BASE" ] || fail "charond never announced its address"
TARGET=${BASE#http://}
echo "charond (pid $CHAROND_PID) at $BASE"

"$WORK/charonctl" proxy -listen 127.0.0.1:0 -target "$TARGET" \
    -net-rate "$NET_RATE" -net-seed "$NET_SEED" -fault-log "$WORK/faults.log" \
    >"$WORK/proxy.out" 2>"$WORK/proxy.err" &
PROXY_PID=$!
PROXY=""
for _ in $(seq 1 200); do
    PROXY=$(sed -n 's/^netfault proxy listening on \([^ ]*\) -> .*/\1/p' "$WORK/proxy.out" | head -n1)
    [ -n "$PROXY" ] && break
    if ! kill -0 "$PROXY_PID" 2>/dev/null; then
        cat "$WORK/proxy.err"
        fail "netfault proxy exited before listening"
    fi
    sleep 0.05
done
[ -n "$PROXY" ] || fail "netfault proxy never announced its address"
echo "netfault proxy (pid $PROXY_PID) at $PROXY -> $TARGET (rate=$NET_RATE seed=$NET_SEED)"

echo "== phase 2: submit through the faulty network =="
# Fresh connection per request (-no-keepalive) so every request redraws
# the proxy's per-connection fault plan; a generous retry budget with a
# short seeded backoff and hedged polling absorbs the injected faults.
if ! "$WORK/charonctl" -server "http://$PROXY" -no-keepalive \
    -timeout 5m -retries 10 -backoff 50ms -hedge 300ms \
    -breaker-cooldown 250ms -seed "$NET_SEED" \
    -client-metrics "$WORK/client_metrics.json" \
    submit -experiment "$EXP" -workloads "$WORKLOADS" -wait \
    >"$WORK/served.out" 2>"$WORK/ctl.err"; then
    cat "$WORK/ctl.err"
    fail "charonctl submit -wait failed through the faulty proxy"
fi
[ -s "$WORK/served.out" ] || fail "charonctl printed an empty report"
echo "job completed through the faulty network"

echo "== phase 3: byte-identity against the CLI =="
if ! "$WORK/charonsim" -exp "$EXP" -workloads "$WORKLOADS" >"$WORK/cli.out" 2>"$WORK/cli.err"; then
    cat "$WORK/cli.err"
    fail "CLI run failed"
fi
grep -v '^([0-9]* experiment(s) in ' "$WORK/cli.out" >"$WORK/cli.stripped"
if ! diff "$WORK/served.out" "$WORK/cli.stripped"; then
    fail "report fetched across the faulty network diverged from the CLI output"
fi
echo "served report is byte-identical to the CLI"

echo "== phase 4: reconcile the fault and retry ledgers =="
[ -s "$WORK/faults.log" ] || fail "proxy injected no faults — the run proved nothing (raise NET_RATE?)"
INJECTED=$(wc -l <"$WORK/faults.log")
HARD=$(grep -cE 'class=(blackhole|reset|truncate)' "$WORK/faults.log")
[ -s "$WORK/client_metrics.json" ] || fail "charonctl wrote no client metrics snapshot"
REQS=$(counter "$WORK/client_metrics.json" "client/requests")
RETRIES=$(counter "$WORK/client_metrics.json" "client/retries")
NETERRS=$(counter "$WORK/client_metrics.json" "client/net_errors")
HEDGES=$(counter "$WORK/client_metrics.json" "client/hedges")
echo "proxy injected $INJECTED fault(s) ($HARD hard); client: $REQS requests, $RETRIES retries, $NETERRS transport errors, $HEDGES hedges"
[ "$REQS" -ge 1 ] || fail "client metrics show no requests"
if [ "$HARD" -ge 1 ] && [ "$((RETRIES + NETERRS + HEDGES))" -eq 0 ]; then
    fail "proxy injected $HARD hard fault(s) but the client ledger shows no recovery work"
fi

echo "== phase 5: clean shutdown =="
kill -TERM "$PROXY_PID"
wait "$PROXY_PID"
CODE=$?
PROXY_PID=""
if [ "$CODE" -ne 0 ]; then
    cat "$WORK/proxy.err"
    fail "proxy SIGTERM exited $CODE, want 0"
fi
kill -TERM "$CHAROND_PID"
wait "$CHAROND_PID"
CODE=$?
CHAROND_PID=""
if [ "$CODE" -ne 0 ]; then
    cat "$WORK/charond.err"
    fail "charond drain exited $CODE, want 0"
fi
echo "PASS: netchaos smoke complete (faulty network absorbed, byte-identical, ledgers reconcile)"
