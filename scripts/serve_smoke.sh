#!/usr/bin/env bash
# serve_smoke.sh — end-to-end check of the charond serving layer, usable
# locally and as the CI serve-smoke job:
#
#   1. boot charond on an ephemeral port with a result cache,
#   2. submit a small job over HTTP and poll it to completion,
#   3. assert the served report is byte-identical to the charonsim CLI's
#      output for the same configuration,
#   4. resubmit the identical job and assert a cache hit via /v1/metrics,
#   5. SIGTERM the server and assert a clean drain (exit 0) with an
#      uncorrupted cache directory.
#
# Any divergence — a byte of report drift, a missed cache hit, a dirty
# shutdown — fails the script.
set -u -o pipefail

EXP=${EXP:-fig2}
WORKLOADS=${WORKLOADS:-BS}
GO=${GO:-go}
WORK=$(mktemp -d)
CHAROND_PID=""
cleanup() {
    [ -n "$CHAROND_PID" ] && kill "$CHAROND_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building charonsim + charond =="
$GO build -o "$WORK/charonsim" ./cmd/charonsim || exit 1
$GO build -o "$WORK/charond" ./cmd/charond || exit 1

echo "== phase 1: boot =="
"$WORK/charond" -addr 127.0.0.1:0 -workers 1 -queue 4 \
    -cache-dir "$WORK/cache" >"$WORK/charond.out" 2>"$WORK/charond.err" &
CHAROND_PID=$!

BASE=""
for _ in $(seq 1 200); do
    BASE=$(sed -n 's/^charond listening on //p' "$WORK/charond.out" | head -n1)
    [ -n "$BASE" ] && break
    if ! kill -0 "$CHAROND_PID" 2>/dev/null; then
        echo "FAIL: charond exited before listening"
        cat "$WORK/charond.err"
        exit 1
    fi
    sleep 0.05
done
if [ -z "$BASE" ]; then
    echo "FAIL: charond never announced its address"
    exit 1
fi
echo "charond at $BASE"

if ! curl -fsS "$BASE/healthz" >/dev/null || ! curl -fsS "$BASE/readyz" >/dev/null; then
    echo "FAIL: health endpoints not serving"
    exit 1
fi

echo "== phase 2: submit and poll =="
BODY=$(printf '{"experiment":"%s","workloads":["%s"]}' "$EXP" "$WORKLOADS")
ID=$(curl -fsS -d "$BODY" "$BASE/v1/jobs" | jq -r .id)
if [ -z "$ID" ] || [ "$ID" = "null" ]; then
    echo "FAIL: submission returned no job id"
    exit 1
fi
echo "job $ID submitted"

STATE=""
for _ in $(seq 1 2400); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$ID" | jq -r .state)
    case "$STATE" in
        done) break ;;
        failed|canceled)
            echo "FAIL: job ended $STATE"
            curl -fsS "$BASE/v1/jobs/$ID" | jq .
            exit 1 ;;
    esac
    sleep 0.25
done
if [ "$STATE" != "done" ]; then
    echo "FAIL: job never completed (state $STATE)"
    exit 1
fi
curl -fsS "$BASE/v1/jobs/$ID/result" >"$WORK/served.out" || exit 1

echo "== phase 3: byte-identity against the CLI =="
if ! "$WORK/charonsim" -exp "$EXP" -workloads "$WORKLOADS" >"$WORK/cli.out" 2>"$WORK/cli.err"; then
    echo "FAIL: CLI run failed"
    cat "$WORK/cli.err"
    exit 1
fi
# The CLI's wall-clock trailer is its only non-deterministic line.
grep -v '^([0-9]* experiment(s) in ' "$WORK/cli.out" >"$WORK/cli.stripped"
if ! diff "$WORK/served.out" "$WORK/cli.stripped"; then
    echo "FAIL: served report diverged from the CLI output"
    exit 1
fi
echo "served report is byte-identical to the CLI"

echo "== phase 4: identical resubmission is a cache hit =="
CACHED=$(curl -fsS -d "$BODY" "$BASE/v1/jobs" | jq -r .state)
if [ "$CACHED" != "done" ]; then
    echo "FAIL: resubmission state $CACHED, want done (deduplicated)"
    exit 1
fi
HITS=$(curl -fsS "$BASE/v1/metrics" | jq -r '.counters["server/cache_hits"] // 0')
if [ "${HITS%.*}" -lt 1 ]; then
    echo "FAIL: /v1/metrics reports no cache hit (server/cache_hits=$HITS)"
    exit 1
fi
curl -fsS "$BASE/v1/jobs/$ID/result" >"$WORK/served2.out" || exit 1
if ! diff "$WORK/served.out" "$WORK/served2.out"; then
    echo "FAIL: cached result diverged from the original"
    exit 1
fi
echo "cache hit confirmed (server/cache_hits=$HITS)"

echo "== phase 5: SIGTERM drain =="
kill -TERM "$CHAROND_PID"
wait "$CHAROND_PID"
CODE=$?
CHAROND_PID=""
if [ "$CODE" -ne 0 ]; then
    echo "FAIL: drain exited $CODE, want 0"
    cat "$WORK/charond.err"
    exit 1
fi
# Every published cache entry must still be a complete JSON envelope.
for f in "$WORK"/cache/results/*.ckpt.json; do
    [ -e "$f" ] || continue
    if ! jq -e .version "$f" >/dev/null; then
        echo "FAIL: corrupt cache entry $f after drain"
        exit 1
    fi
done
echo "PASS: serve smoke complete (byte-identical, cached, clean drain)"
