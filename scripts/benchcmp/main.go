// Command benchcmp compares two `go test -bench` outputs and emits a
// BENCH.json perf record. It is the regression arbiter behind
// scripts/bench_gate.sh: the gate fails when the geometric-mean ns/op
// ratio (new/old) over the benchmarks common to both files exceeds
// 1 + max-regress.
//
// benchstat (golang.org/x/perf) gives nicer statistics when installed;
// this tool exists so the gate runs hermetically from a plain Go
// toolchain, with no module downloads.
//
// Usage:
//
//	go run ./scripts/benchcmp -old bench_baseline.txt -new bench_new.txt \
//	    -json BENCH.json [-max-regress 0.10]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g. "BenchmarkCalendarReserve-8   1000  123.4 ns/op ..."
// (the -N GOMAXPROCS suffix is optional: single-CPU runs omit it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse returns benchmark name -> mean ns/op (averaging repeated runs).
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sum := map[string]float64{}
	count := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		sum[m[1]] += ns
		count[m[1]]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sum))
	for name, s := range sum {
		out[name] = s / float64(count[name])
	}
	return out, nil
}

type comparison struct {
	Name  string  `json:"name"`
	OldNs float64 `json:"old_ns_op"`
	NewNs float64 `json:"new_ns_op"`
	Ratio float64 `json:"ratio"` // new/old; < 1 is a speedup
}

type report struct {
	Benchmarks   []comparison `json:"benchmarks"`
	OnlyOld      []string     `json:"only_in_baseline,omitempty"`
	OnlyNew      []string     `json:"only_in_new,omitempty"`
	GeomeanRatio float64      `json:"geomean_ratio"`
	MaxRegress   float64      `json:"max_regress"`
	Pass         bool         `json:"pass"`
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "new benchmark output")
	jsonPath := flag.String("json", "", "write the comparison record here (optional)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated geomean regression (0.10 = +10% ns/op)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -old and -new are required")
		os.Exit(2)
	}
	oldBench, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newBench, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	var rep report
	rep.MaxRegress = *maxRegress
	logSum := 0.0
	for name, oldNs := range oldBench {
		newNs, ok := newBench[name]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
			continue
		}
		ratio := newNs / oldNs
		rep.Benchmarks = append(rep.Benchmarks, comparison{Name: name, OldNs: oldNs, NewNs: newNs, Ratio: ratio})
		logSum += math.Log(ratio)
	}
	for name := range newBench {
		if _, ok := oldBench[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks common to both files")
		os.Exit(2)
	}
	rep.GeomeanRatio = math.Exp(logSum / float64(len(rep.Benchmarks)))
	rep.Pass = rep.GeomeanRatio <= 1+*maxRegress

	for _, c := range rep.Benchmarks {
		fmt.Printf("%-40s %14.1f -> %14.1f ns/op  (%+.1f%%)\n",
			c.Name, c.OldNs, c.NewNs, (c.Ratio-1)*100)
	}
	for _, n := range rep.OnlyOld {
		fmt.Printf("%-40s only in baseline (skipped)\n", n)
	}
	for _, n := range rep.OnlyNew {
		fmt.Printf("%-40s only in new run (no baseline yet)\n", n)
	}
	fmt.Printf("geomean ratio %.3f over %d benchmarks (gate: <= %.3f)\n",
		rep.GeomeanRatio, len(rep.Benchmarks), 1+*maxRegress)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL: geomean regression %.1f%% exceeds %.1f%%\n",
			(rep.GeomeanRatio-1)*100, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchcmp: PASS")
}
