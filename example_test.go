package charonsim_test

import (
	"fmt"

	"charonsim"
)

// The smallest use of the library: compare one workload's GC on the
// baseline host and on the Charon accelerator.
func ExampleSimulateGC() {
	host, _ := charonsim.SimulateGC("ALS", 1.5, charonsim.PlatformDDR4, 8)
	accel, _ := charonsim.SimulateGC("ALS", 1.5, charonsim.PlatformCharon, 8)
	fmt.Printf("collections: %d minor + %d major\n", host.MinorGCs, host.MajorGCs)
	fmt.Printf("speedup > 5x: %v\n", float64(host.TotalPause)/float64(accel.TotalPause) > 5)
	// Output:
	// collections: 8 minor + 3 major
	// speedup > 5x: true
}

// Regenerate a paper table by id; Experiments lists the available ids.
func ExampleRun() {
	rep, err := charonsim.Run("table4", charonsim.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Title)
	// Output:
	// Charon area
}

// Workload metadata mirrors the paper's Table 3.
func ExampleDescribeWorkload() {
	info, _ := charonsim.DescribeWorkload("ALS")
	fmt.Printf("%s: %s on %s (paper heap %s)\n", info.Name, info.Long, info.Framework, info.PaperHeap)
	// Output:
	// ALS: Alternating Least Squares on GraphChi (paper heap 4GB)
}

// The accelerator's area model reproduces Table 4's totals.
func ExampleArea() {
	a := charonsim.Area()
	fmt.Printf("%.4f mm2 total, %.2f%% of the logic layer\n", a.TotalMM2, a.LogicLayerShare*100)
	// Output:
	// 1.9470 mm2 total, 0.49% of the logic layer
}
