// Graph analytics scenario: GraphChi-style workloads (connected
// components, PageRank over an R-MAT graph) keep a long-lived,
// reference-dense object graph alive, so MajorGC marking (Scan&Push) and
// compaction (Bitmap Count + Copy) dominate — the opposite demographic of
// the Spark ML example. This example also demonstrates the Figure 15
// scalability study: Charon keeps scaling with GC threads where the DDR4
// host saturates, and the distributed bitmap-cache/TLB design relieves
// the central cube at high thread counts.
package main

import (
	"fmt"
	"log"

	"charonsim"
)

func main() {
	for _, name := range []string{"CC", "PR"} {
		info, err := charonsim.DescribeWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %s on a synthetic R-MAT graph ==\n", name, info.Long)

		host, err := charonsim.SimulateGC(name, 1.5, charonsim.PlatformDDR4, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host: %d minor + %d major GCs, pause %v\n",
			host.MinorGCs, host.MajorGCs, host.TotalPause)
		fmt.Printf("  Scan&Push %.3f ms, BitmapCount %.3f ms, Copy %.3f ms\n",
			host.PrimSeconds["Scan&Push"]*1e3,
			host.PrimSeconds["BitmapCount"]*1e3,
			host.PrimSeconds["Copy"]*1e3)

		fmt.Println("GC throughput scaling (normalized to 1-thread DDR4):")
		fmt.Printf("  %-22s", "threads:")
		threadCounts := []int{1, 2, 4, 8, 16}
		for _, th := range threadCounts {
			fmt.Printf("%8d", th)
		}
		fmt.Println()

		base, err := charonsim.SimulateGC(name, 1.5, charonsim.PlatformDDR4, 1)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range []charonsim.Platform{
			charonsim.PlatformDDR4, charonsim.PlatformCharon, charonsim.PlatformCharonDistributed,
		} {
			fmt.Printf("  %-22s", p)
			for _, th := range threadCounts {
				st, err := charonsim.SimulateGC(name, 1.5, p, th)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%8.2f", float64(base.TotalPause)/float64(st.TotalPause))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
