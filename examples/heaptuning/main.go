// Heap tuning scenario: the paper's Figure 2 motivation — GC overhead
// explodes as the heap approaches the minimum the application needs, and
// is still noticeable even at 2x overprovisioning. This example sweeps
// the heap factor for one workload across platforms, showing both the
// overhead curve and how much of it Charon removes at each sizing — the
// practical question a capacity planner would ask of this system.
package main

import (
	"flag"
	"fmt"
	"log"

	"charonsim"
)

func main() {
	name := flag.String("workload", "KM", "workload to sweep")
	flag.Parse()

	info, err := charonsim.DescribeWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap sizing study: %s (%s), minimum heap %d MB\n\n",
		info.Name, info.Long, info.MinHeapBytes>>20)

	factors := []float64{1.0, 1.25, 1.5, 2.0}
	fmt.Printf("%-8s %10s %14s %14s %12s\n",
		"heap", "GCs", "host overhead", "charon overhead", "speedup")
	for _, f := range factors {
		host, err := charonsim.SimulateGC(*name, f, charonsim.PlatformDDR4, 8)
		if err != nil {
			log.Fatal(err)
		}
		accel, err := charonsim.SimulateGC(*name, f, charonsim.PlatformCharon, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10d %13.1f%% %13.1f%% %11.2fx\n",
			fmt.Sprintf("%.2fx", f),
			host.MinorGCs+host.MajorGCs,
			host.Overhead()*100,
			accel.Overhead()*100,
			float64(host.TotalPause)/float64(accel.TotalPause))
	}
	fmt.Println("\nreading: host overhead rises steeply toward the minimum heap")
	fmt.Println("(the paper reports up to 365%); Charon flattens the curve, which")
	fmt.Println("is the machine-provisioning argument of the paper's introduction.")
}
