// Spark ML scenario: the paper's machine-learning workloads (Bayesian
// classification, k-means, logistic regression) allocate few large,
// short-lived objects — RDD partitions of feature vectors — so their GC
// time is dominated by the Copy and Search primitives. This example runs
// all three, shows the per-primitive breakdown on the host, and the
// per-primitive speedups Charon achieves (Figure 4(a) + the Spark columns
// of Figures 12/14).
package main

import (
	"fmt"
	"log"
	"sort"

	"charonsim"
)

func main() {
	for _, name := range []string{"BS", "KM", "LR"} {
		info, err := charonsim.DescribeWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %s (paper heap %s, scaled to %d MB) ==\n",
			name, info.Long, info.PaperHeap, info.MinHeapBytes>>20)

		host, err := charonsim.SimulateGC(name, 1.5, charonsim.PlatformDDR4, 8)
		if err != nil {
			log.Fatal(err)
		}
		accel, err := charonsim.SimulateGC(name, 1.5, charonsim.PlatformCharon, 8)
		if err != nil {
			log.Fatal(err)
		}

		// Host breakdown: Copy should dominate for the Spark demographics.
		var names []string
		var total float64
		for n, s := range host.PrimSeconds {
			names = append(names, n)
			total += s
		}
		sort.Slice(names, func(i, j int) bool {
			return host.PrimSeconds[names[i]] > host.PrimSeconds[names[j]]
		})
		fmt.Println("host GC time by primitive:")
		for _, n := range names {
			hs := host.PrimSeconds[n]
			if hs == 0 {
				continue
			}
			line := fmt.Sprintf("  %-14s %5.1f%%", n, hs/total*100)
			if as := accel.PrimSeconds[n]; as > 0 {
				line += fmt.Sprintf("   charon speedup %5.2fx", hs/as)
			}
			fmt.Println(line)
		}
		fmt.Printf("overall: %v -> %v (%.2fx)\n\n",
			host.TotalPause, accel.TotalPause,
			float64(host.TotalPause)/float64(accel.TotalPause))
	}
}
