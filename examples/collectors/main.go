// Collector study: the paper's Table 1 claims Charon's primitives carry
// over from ParallelScavenge to G1 and CMS. This example runs one
// workload under all three collector modes (the library implements a
// compacting ParallelScavenge, a G1-style mixed collector, and a
// CMS-style mark-sweep) and shows that Charon accelerates each — with
// Bitmap Count work present exactly where Table 1 puts it.
package main

import (
	"flag"
	"fmt"
	"log"

	"charonsim"
)

func main() {
	workload := flag.String("workload", "CC", "workload to study")
	flag.Parse()

	rep, err := charonsim.Run("collectors", charonsim.Config{Workloads: []string{*workload}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Text)
	fmt.Println("reading: the 'x' columns are Charon's speedup over the DDR4 host")
	fmt.Println("under each collector; 'bc%' is Bitmap Count's share of host GC")
	fmt.Println("time — nonzero for the compacting collectors (ParallelScavenge,")
	fmt.Println("G1's region-liveness scans) and zero for CMS, which never")
	fmt.Println("compacts. That is Table 1 of the paper, measured instead of")
	fmt.Println("asserted.")
}
