// Quickstart: simulate one workload's garbage collection on the baseline
// host and on Charon, and print the headline comparison — the smallest
// possible use of the public API.
package main

import (
	"fmt"
	"log"

	"charonsim"
)

func main() {
	// Pick a workload from the paper's Table 3 (BS = Spark Bayesian
	// classification) at 1.5x its minimum heap with 8 GC threads.
	const workload, factor, threads = "BS", 1.5, 8

	info, err := charonsim.DescribeWorkload(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s (%s)\n", info.Name, info.Long, info.Framework)

	base, err := charonsim.SimulateGC(workload, factor, charonsim.PlatformDDR4, threads)
	if err != nil {
		log.Fatal(err)
	}
	accel, err := charonsim.SimulateGC(workload, factor, charonsim.PlatformCharon, threads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collections: %d minor + %d major\n", base.MinorGCs, base.MajorGCs)
	fmt.Printf("host (DDR4):   GC pause %v at %.1f GB/s\n", base.TotalPause, base.Bandwidth)
	fmt.Printf("Charon (HMC):  GC pause %v at %.1f GB/s (%.0f%% local accesses)\n",
		accel.TotalPause, accel.Bandwidth, accel.LocalRatio*100)
	fmt.Printf("speedup: %.2fx   energy: %.2fx lower\n",
		float64(base.TotalPause)/float64(accel.TotalPause),
		base.EnergyJoules/accel.EnergyJoules)
}
