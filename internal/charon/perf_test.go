package charon

import (
	"testing"

	"charonsim/internal/sim"
)

// benchRefs builds a Scan&Push reference list shaped like a recorded
// object scan: contiguous slots (so loads coalesce), mixed dependent
// work.
func benchRefs(n int) []RefOp {
	refs := make([]RefOp, n)
	for i := range refs {
		refs[i] = RefOp{
			Slot:        uint64(4096 + 8*i),
			Target:      uint64(1<<20 + 64*i),
			CheckHeader: true,
			Push:        i%3 == 0,
		}
	}
	return refs
}

// BenchmarkOffloadScanPush is the Scan&Push offload path (slot-load
// coalescing, dependent header checks, pushes) consumed by
// scripts/bench_gate.sh; BenchmarkOffloadCopy covers the streaming units.
func BenchmarkOffloadScanPush(b *testing.B) {
	a, _ := newAccel(false)
	refs := benchRefs(64)
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		at = a.OffloadScanPush(at, 4096, refs, 1<<30)
	}
}

// TestOffloadAllocBudget pins the offload hot paths' allocation budget:
// zero per offload once the accelerator's reusable scratch (write-buffer
// entries, per-reference completion times) has warmed up.
func TestOffloadAllocBudget(t *testing.T) {
	a, _ := newAccel(false)
	refs := benchRefs(64)
	at := sim.Time(0)
	i := 0
	copyAllocs := testing.AllocsPerRun(500, func() {
		at = a.OffloadCopy(at, uint64(i%1024)*4096, 1<<21, 4096)
		i++
	})
	if copyAllocs != 0 {
		t.Fatalf("OffloadCopy allocates %.2f allocs/op, budget 0", copyAllocs)
	}
	at = 0
	spAllocs := testing.AllocsPerRun(500, func() {
		at = a.OffloadScanPush(at, 4096, refs, 1<<30)
	})
	if spAllocs != 0 {
		t.Fatalf("OffloadScanPush allocates %.2f allocs/op, budget 0", spAllocs)
	}
}
