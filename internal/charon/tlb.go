package charon

import (
	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// TLB is the accelerator-side translation structure of Section 4.6. The
// JVM pins the heap's huge pages at launch (mlock + -XX:+UseLargePage),
// so Charon only needs "just enough duplicate TLB entries on the DRAM
// side to cover those pinned-down huge pages": after initialize() no
// misses or page faults occur during GC. Entries are tagged with a
// process id (the PCID extension the paper leans on for multi-process
// support); switching processes invalidates nothing — entries of distinct
// PCIDs coexist until capacity eviction.
type TLB struct {
	shift   uint // log2 of the (huge) page size
	entries []tlbEntry
	tick    uint64

	Hits, Misses uint64
}

type tlbEntry struct {
	valid bool
	pcid  uint16
	vpn   uint64
	lru   uint64
}

// newTLB builds a TLB with the given capacity and page shift.
func newTLB(capacity int, shift uint) *TLB {
	return &TLB{shift: shift, entries: make([]tlbEntry, capacity)}
}

// Lookup translates addr for pcid, returning whether it hit.
func (t *TLB) Lookup(pcid uint16, addr uint64) bool {
	vpn := addr >> t.shift
	t.tick++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pcid == pcid && e.vpn == vpn {
			e.lru = t.tick
			t.Hits++
			return true
		}
	}
	t.Misses++
	return false
}

// Insert installs a translation, evicting the LRU entry if full.
func (t *TLB) Insert(pcid uint16, addr uint64) {
	vpn := addr >> t.shift
	t.tick++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pcid == pcid && e.vpn == vpn {
			e.lru = t.tick
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{valid: true, pcid: pcid, vpn: vpn, lru: t.tick}
}

// Flush drops every entry (full invalidation; with PCIDs this is only
// needed on address-space teardown).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}

// Coverage returns how many valid entries the TLB holds.
func (t *TLB) Coverage() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// AddrRange is a pinned region registered through the initialize()
// intrinsic (Section 4.1): heap, card table, mark bitmaps, object stacks.
type AddrRange struct {
	Base  uint64
	Bytes uint64
}

// Initialize implements the paper's initialize() intrinsic: it programs
// the per-unit configuration registers (base addresses of the globally
// accessed structures) and pre-loads every TLB slice with the pinned huge
// pages covering the given regions, so subsequent offloads never miss.
func (a *Accelerator) Initialize(pcid uint16, regions ...AddrRange) {
	a.pcid = pcid
	pageBytes := uint64(1) << a.tlbShift()
	for _, t := range a.tlbs {
		for _, r := range regions {
			for addr := r.Base &^ (pageBytes - 1); addr < r.Base+r.Bytes; addr += pageBytes {
				t.Insert(pcid, addr)
			}
		}
	}
}

// tlbShift returns the huge-page shift: the cube-interleave granularity
// (the paper's 1 GB pages at full scale; the mapper's CubeShift scaled).
func (a *Accelerator) tlbShift() uint { return a.sys.Mapper().CubeShift }

// tlbFor returns the TLB slice serving a unit on `cube` plus the access
// penalty for reaching it (unified placement costs remote units a link
// round trip, exactly like the unified bitmap cache).
func (a *Accelerator) tlbFor(cube int) (*TLB, sim.Time) {
	if a.cfg.Distributed {
		return a.tlbs[cube], 0
	}
	if cube != 0 {
		return a.tlbs[0], 2 * (3 * sim.Nanosecond)
	}
	return a.tlbs[0], 0
}

// translate performs the virtual-to-physical lookup for one offload. With
// pinned pages this is a hit; a miss (the region was never registered)
// costs a page-table walk through memory before the unit can start.
func (a *Accelerator) translate(t sim.Time, cube int, addr uint64) sim.Time {
	tlb, extra := a.tlbFor(cube)
	a.Stats.TLBAccesses++
	if extra > 0 {
		a.Stats.TLBRemote++
	}
	if tlb.Lookup(a.pcid, addr) {
		return t + extra + a.cfg.LogicPeriod
	}
	// Page walk: two dependent memory reads (PMD, PTE) from the page-table
	// region, then insert.
	a.Stats.TLBWalks++
	walk := a.memAccess(t+extra, cube, memsys.Read, pageTableBase+(addr>>a.tlbShift())*8, 64)
	walk = a.memAccess(walk, cube, memsys.Read, pageTableBase+(addr>>a.tlbShift())*8+4096, 64)
	tlb.Insert(a.pcid, addr)
	return walk + extra
}

// pageTableBase is the simulated address of the page-table region (only
// touched on the never-expected miss path).
const pageTableBase = 1 << 40
