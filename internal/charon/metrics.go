package charon

import (
	"fmt"

	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// Trace layout: process 0 is the host (the exec layer emits GC-event
// spans there); process 1+cube is a cube's logic layer. Thread ids group
// units by kind so chrome://tracing renders one row per unit.
const (
	TracePidHost = 0
	tidCopy      = 10 // copysearch unit u -> tid 10+u
	tidBitmap    = 20 // bitmapcount unit u -> tid 20+u
	tidScanPush  = 30 // scanpush unit u -> tid 30+u
)

// SetRecorder attaches a trace recorder: every offload emits one span on
// its unit's timeline. Passing nil disables recording.
func (a *Accelerator) SetRecorder(rec *metrics.Recorder) {
	a.rec = rec
	if rec == nil {
		return
	}
	for c := range a.copySearch {
		pid := 1 + c
		rec.NameProcess(pid, fmt.Sprintf("cube%d", c))
		for u := range a.copySearch[c] {
			rec.NameThread(pid, tidCopy+u, fmt.Sprintf("copysearch%d", u))
		}
		for u := range a.bitmapCount[c] {
			rec.NameThread(pid, tidBitmap+u, fmt.Sprintf("bitmapcount%d", u))
		}
	}
	for u := range a.scanPush {
		rec.NameThread(1, tidScanPush+u, fmt.Sprintf("scanpush%d", u))
	}
}

// span emits one unit-occupancy span on cube `cube`'s timeline.
func (a *Accelerator) span(name string, cube, tid int, start, end sim.Time) {
	a.rec.Span(name, "charon", 1+cube, tid, start, end)
}

// Collect publishes the accelerator's counters under prefix: offload and
// transport totals, the bitmap caches, the TLBs, the units' requester-side
// memory traffic, and per-unit busy time and request counts. No-op when
// reg is disabled.
func (a *Accelerator) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	reg.AddUint(prefix+"/offload_copy", a.Stats.Offloads[KCopy])
	reg.AddUint(prefix+"/offload_search", a.Stats.Offloads[KSearch])
	reg.AddUint(prefix+"/offload_scanpush", a.Stats.Offloads[KScanPush])
	reg.AddUint(prefix+"/offload_bitmapcount", a.Stats.Offloads[KBitmapCount])
	reg.AddUint(prefix+"/request_packets", a.Stats.RequestPackets)
	reg.AddUint(prefix+"/response_bytes", a.Stats.ResponseBytes)
	reg.AddUint(prefix+"/tlb_accesses", a.Stats.TLBAccesses)
	reg.AddUint(prefix+"/tlb_remote", a.Stats.TLBRemote)
	reg.AddUint(prefix+"/tlb_walks", a.Stats.TLBWalks)
	reg.AddUint(prefix+"/mem_read_bytes", a.Stats.Mem.ReadBytes)
	reg.AddUint(prefix+"/mem_write_bytes", a.Stats.Mem.WriteBytes)
	if failed, degraded, _ := a.UnitHealth(); failed > 0 || degraded > 0 {
		reg.AddUint(prefix+"/units_failed", uint64(failed))
		reg.AddUint(prefix+"/units_degraded", uint64(degraded))
		reg.AddUint(prefix+"/reissues", a.Stats.Reissues)
	}
	for i, c := range a.bmCaches {
		c.Collect(reg, fmt.Sprintf("%s/bmcache%d", prefix, i))
	}
	collectUnits := func(base string, us []unit) {
		for u := range us {
			p := fmt.Sprintf("%s%d", base, u)
			reg.AddUint(p+"/busy_ps", uint64(us[u].busy))
			reg.AddUint(p+"/requests", us[u].reqs)
			if horizon > 0 {
				reg.SetMax(p+"/util", utilization(us[u].busy, horizon))
			}
		}
	}
	for c := range a.copySearch {
		collectUnits(fmt.Sprintf("%s/cube%d/copysearch", prefix, c), a.copySearch[c])
		collectUnits(fmt.Sprintf("%s/cube%d/bitmapcount", prefix, c), a.bitmapCount[c])
	}
	collectUnits(prefix+"/scanpush", a.scanPush)
}

// utilization clamps busy/horizon into [0, 1]. A unit's busy time can
// never exceed the horizon (reservations on one unit are serial), but the
// clamp keeps the invariant robust against float rounding.
func utilization(busy, horizon sim.Time) float64 {
	if horizon == 0 {
		return 0
	}
	u := float64(busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}
