package charon

import (
	"testing"

	"charonsim/internal/fault"
	"charonsim/internal/hmc"
	"charonsim/internal/sim"
)

func newFaultAccel(t *testing.T, fc fault.Config) (*Accelerator, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	inj := fault.New(fc)
	sys := hmc.NewSystemFault(eng, cubeShift, hmc.Star, inj)
	a := NewFault(DefaultConfig(), sys, inj)
	a.Initialize(1, AddrRange{Base: 0, Bytes: 64 << 20}, AddrRange{Base: 1 << 30, Bytes: 8 << 20})
	return a, eng
}

func TestHealthyFaultAccelMatchesPlain(t *testing.T) {
	// An injector with no unit faults must schedule identically to New.
	plain, _ := newAccel(false)
	flt, _ := newFaultAccel(t, fault.Config{OffloadDeadline: sim.Microsecond})
	for i := uint64(0); i < 8; i++ {
		p := plain.OffloadCopy(0, i<<cubeShift, (i<<cubeShift)+1<<20, 4096)
		f := flt.OffloadCopy(0, i<<cubeShift, (i<<cubeShift)+1<<20, 4096)
		if p != f {
			t.Fatalf("offload %d: healthy fault accel %v != plain %v", i, f, p)
		}
	}
	if failed, degraded, _ := flt.UnitHealth(); failed != 0 || degraded != 0 {
		t.Fatalf("unexpected unit health: %d failed, %d degraded", failed, degraded)
	}
}

func TestFailAllUnits(t *testing.T) {
	a, _ := newFaultAccel(t, fault.Config{FailAllUnits: true, Seed: 1})
	if !a.AllUnitsFailed() {
		t.Fatal("FailAllUnits did not fail every unit")
	}
	if a.CanCopySearch() || a.CanBitmapCount() || a.CanScanPush() {
		t.Fatal("availability must be false with every unit failed")
	}
	failed, _, total := a.UnitHealth()
	if failed != total || total == 0 {
		t.Fatalf("UnitHealth = %d/%d failed", failed, total)
	}
}

func TestCrossCubeReissue(t *testing.T) {
	a, _ := newFaultAccel(t, fault.Config{FailAllUnits: true, Seed: 1})
	// Revive one copy/search unit on cube 1 only: offloads homed on other
	// cubes must fail over there.
	a.copySearch[1][0].failed = false
	if !a.CanCopySearch() {
		t.Fatal("one live unit must make CanCopySearch true")
	}
	src := uint64(2) << cubeShift // homed on cube 2
	a.OffloadCopy(0, src, src+4096, 1024)
	if a.Stats.Reissues != 1 {
		t.Fatalf("Reissues = %d, want 1", a.Stats.Reissues)
	}
	if a.copySearch[1][0].reqs != 1 {
		t.Fatal("offload was not served by the surviving unit")
	}
	// The surviving unit's memory accesses reach the home cube remotely.
	if a.sys.RemoteAccesses == 0 {
		t.Fatal("failover service recorded no remote accesses")
	}
	// Home-cube offloads don't count as reissues.
	a.OffloadCopy(0, uint64(1)<<cubeShift, (uint64(1)<<cubeShift)+4096, 1024)
	if a.Stats.Reissues != 1 {
		t.Fatalf("home-cube offload bumped Reissues to %d", a.Stats.Reissues)
	}
}

func TestDegradedUnitIsSlower(t *testing.T) {
	healthy, _ := newAccel(false)
	slow, _ := newFaultAccel(t, fault.Config{OffloadDeadline: sim.Microsecond})
	for c := range slow.copySearch {
		for i := range slow.copySearch[c] {
			slow.copySearch[c][i].degraded = true
		}
	}
	slow.degradeFactor = 3
	h := healthy.OffloadCopy(0, 0, 1<<20, 4096)
	s := slow.OffloadCopy(0, 0, 1<<20, 4096)
	if s <= h {
		t.Fatalf("degraded copy %v not slower than healthy %v", s, h)
	}
}

func TestUnitHealthDeterministicPerSeed(t *testing.T) {
	health := func(seed int64) [3]int {
		a, _ := newFaultAccel(t, fault.Config{UnitFailRate: 0.3, UnitDegradeRate: 0.3, Seed: seed})
		f, d, tot := a.UnitHealth()
		return [3]int{f, d, tot}
	}
	if health(5) != health(5) {
		t.Fatal("same seed produced different unit health")
	}
	a1, _ := newFaultAccel(t, fault.Config{UnitFailRate: 0.5, Seed: 6})
	a2, _ := newFaultAccel(t, fault.Config{UnitFailRate: 0.5, Seed: 6})
	for c := range a1.copySearch {
		for i := range a1.copySearch[c] {
			if a1.copySearch[c][i].failed != a2.copySearch[c][i].failed {
				t.Fatalf("cube %d unit %d health differs across same-seed builds", c, i)
			}
		}
	}
}
