package charon

import (
	"strings"
	"testing"

	"charonsim/internal/hmc"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

const cubeShift = 22

func newAccel(distributed bool) (*Accelerator, *sim.Engine) {
	eng := sim.NewEngine()
	sys := hmc.NewSystem(eng, cubeShift)
	cfg := DefaultConfig()
	cfg.Distributed = distributed
	a := New(cfg, sys)
	// Pin the address ranges the tests touch (the initialize() intrinsic,
	// as the real host runtime would at launch).
	a.Initialize(1, AddrRange{Base: 0, Bytes: 64 << 20}, AddrRange{Base: 1 << 30, Bytes: 8 << 20})
	return a, eng
}

func TestOffloadCopyCompletes(t *testing.T) {
	a, _ := newAccel(false)
	done := a.OffloadCopy(0, 0, 1<<20, 4096)
	if done == 0 {
		t.Fatal("no completion time")
	}
	// Includes at least the request+response transport (~8ns) and the
	// vault accesses.
	if done < 20*sim.Nanosecond {
		t.Fatalf("copy of 4KB completed implausibly fast: %v ps", done)
	}
	if a.Stats.Offloads[KCopy] != 1 || a.Stats.RequestPackets != 1 {
		t.Fatalf("stats %+v", a.Stats)
	}
	// Read and write traffic recorded on the TSVs.
	ts := a.sys.TSVStats()
	if ts.ReadBytes != 4096 || ts.WriteBytes != 4096 {
		t.Fatalf("TSV traffic %+v", ts)
	}
}

func TestCopyScheduledToSourceCube(t *testing.T) {
	a, _ := newAccel(false)
	src := uint64(2) << cubeShift // cube 2
	a.OffloadCopy(0, src, src+4096, 1024)
	// Unit busy on cube 2, idle elsewhere.
	if a.copySearch[2][0].busy == 0 {
		t.Fatal("cube 2 unit idle")
	}
	if a.copySearch[0][0].busy != 0 || a.copySearch[1][0].busy != 0 {
		t.Fatal("wrong cube executed the copy")
	}
}

func TestCopyThroughputNearInternalBandwidth(t *testing.T) {
	// A large single copy should move data at a rate far above the 80 GB/s
	// host link: the point of near-memory placement.
	a, _ := newAccel(false)
	const size = 1 << 20 // 1 MB within one cube (4 MB interleave)
	// Destination offset by a few lines so src/dst streams land in
	// different banks (GC destinations are never bank-aligned with their
	// sources).
	done := a.OffloadCopy(0, 0, 1<<21+5*64, size)
	gbs := float64(2*size) / done.Seconds() / 1e9 // read + write bytes
	if gbs < 100 {
		t.Fatalf("near-memory copy only %.0f GB/s", gbs)
	}
	if gbs > 330 {
		t.Fatalf("copy exceeded internal bandwidth: %.0f GB/s", gbs)
	}
}

func TestCrossCubeCopiesRunInParallel(t *testing.T) {
	// Copies on different cubes use disjoint units and disjoint internal
	// bandwidth: the second finishes at roughly the same time as the first.
	a, _ := newAccel(false)
	c1 := uint64(1) << cubeShift
	d1 := a.OffloadCopy(0, 0, 1<<20, 65536)
	d2 := a.OffloadCopy(0, c1, c1+1<<20, 65536)
	if float64(d2) > 1.2*float64(d1) {
		t.Fatalf("cross-cube copies did not overlap: %v vs %v", d2, d1)
	}
}

func TestSameCubeUnitsShareBandwidthAndQueue(t *testing.T) {
	// Two same-cube copies run on both units but share the cube's internal
	// bandwidth (~2x each); a third queues behind a unit (>2x).
	a, _ := newAccel(false)
	d1 := a.OffloadCopy(0, 0, 1<<20, 65536)
	d2 := a.OffloadCopy(0, 4096, 1<<20+65536, 65536)
	d3 := a.OffloadCopy(0, 8192, 1<<20+131072, 65536)
	if float64(d2) > 3.2*float64(d1) {
		t.Fatalf("second copy implausibly slow: %v vs %v", d2, d1)
	}
	if d3 <= d2 {
		t.Fatal("third copy should queue behind a busy unit")
	}
	if a.copySearch[0][0].busy == 0 || a.copySearch[0][1].busy == 0 {
		t.Fatal("both units should have executed work")
	}
}

func TestOffloadSearchValueResponse(t *testing.T) {
	a, _ := newAccel(false)
	a.OffloadSearch(0, 0, 2048)
	if a.Stats.Offloads[KSearch] != 1 {
		t.Fatal("search not counted")
	}
	if a.Stats.ResponseBytes != hmc.RespValueBytes {
		t.Fatalf("search response bytes = %d, want %d", a.Stats.ResponseBytes, hmc.RespValueBytes)
	}
	// Read-only: no TSV writes.
	ts := a.sys.TSVStats()
	if ts.WriteBytes != 0 {
		t.Fatal("search wrote memory")
	}
}

func TestOffloadBitmapCountUsesCache(t *testing.T) {
	a, _ := newAccel(false)
	beg, end := uint64(0), uint64(1<<20)
	// Repeated overlapping ranges: the second call should be mostly hits.
	a.OffloadBitmapCount(0, beg, end, 4096)
	missesAfterFirst := a.bmCaches[0].Stats.Misses
	a.OffloadBitmapCount(0, beg, end, 4096)
	if a.bmCaches[0].Stats.Misses != missesAfterFirst {
		t.Fatal("second identical range missed the bitmap cache")
	}
	if a.bmCaches[0].Stats.HitRate() < 0.45 {
		t.Fatalf("hit rate %.2f too low", a.bmCaches[0].Stats.HitRate())
	}
}

func TestBitmapCountComputeBound(t *testing.T) {
	// With a warm cache, the unit is bounded by its 8 B/cycle pipeline.
	a, _ := newAccel(false)
	busy := func() sim.Time {
		var b sim.Time
		for _, u := range a.bitmapCount[0] {
			b += u.busy
		}
		return b
	}
	a.OffloadBitmapCount(0, 0, 1<<20, 4096)
	t1 := busy()
	a.OffloadBitmapCount(0, 0, 1<<20, 4096)
	t2 := busy() - t1
	words := sim.Time(4096 / 8)
	if t2 < words*a.cfg.LogicPeriod {
		t.Fatalf("warm bitmap count %v faster than pipeline bound %v", t2, words*a.cfg.LogicPeriod)
	}
}

func TestScanPushAlwaysCentralCube(t *testing.T) {
	a, _ := newAccel(false)
	refs := []RefOp{{Slot: 3 << cubeShift, Target: 2 << cubeShift, CheckHeader: true, Push: true}}
	a.OffloadScanPush(0, 3<<cubeShift, refs, 1<<30)
	busy := sim.Time(0)
	for _, u := range a.scanPush {
		busy += u.busy
	}
	if busy == 0 {
		t.Fatal("scan&push unit idle")
	}
	// Accesses from cube 0 to cube 3/2 addresses are remote.
	if a.sys.RemoteAccesses == 0 {
		t.Fatal("remote slot access not routed")
	}
}

func TestScanPushCoalescesContiguousSlots(t *testing.T) {
	a, _ := newAccel(false)
	var refs []RefOp
	for i := 0; i < 32; i++ {
		refs = append(refs, RefOp{Slot: uint64(4096 + 8*i)})
	}
	a.OffloadScanPush(0, 4096, refs, 1<<30)
	ts := a.sys.TSVStats()
	// 32 contiguous slots = 256 B = a single streaming read.
	if ts.Reads != 1 {
		t.Fatalf("%d reads for 32 contiguous slots, want 1 coalesced", ts.Reads)
	}
}

func TestScanPushDependentChainSlower(t *testing.T) {
	aFast, _ := newAccel(false)
	aSlow, _ := newAccel(false)
	// Same slots; one with header checks + pushes, one bare.
	mk := func(check bool) []RefOp {
		var refs []RefOp
		for i := 0; i < 16; i++ {
			refs = append(refs, RefOp{
				Slot: uint64(4096 + 8*i), Target: uint64(1<<21 + 4096*i),
				CheckHeader: check, Push: check,
			})
		}
		return refs
	}
	dBare := aFast.OffloadScanPush(0, 4096, mk(false), 1<<30)
	dFull := aSlow.OffloadScanPush(0, 4096, mk(true), 1<<30)
	if dFull <= dBare {
		t.Fatal("dependent header checks should add latency")
	}
}

func TestUnifiedVsDistributedBitmapCache(t *testing.T) {
	// Bitmap Count on a non-central cube: unified placement pays a round
	// trip to the centre per access; distributed slices are local.
	begCube1 := uint64(1) << cubeShift
	aU, _ := newAccel(false)
	aD, _ := newAccel(true)
	dU := aU.OffloadBitmapCount(0, begCube1, begCube1+1<<20, 2048)
	dD := aD.OffloadBitmapCount(0, begCube1, begCube1+1<<20, 2048)
	if dD >= dU {
		t.Fatalf("distributed (%v) should beat unified (%v) off-centre", dD, dU)
	}
	if aU.Stats.TLBRemote == 0 {
		t.Fatal("unified TLB remote lookups not counted")
	}
	if aD.Stats.TLBRemote != 0 {
		t.Fatal("distributed TLB should be local")
	}
}

func TestBitmapCacheFlush(t *testing.T) {
	a, _ := newAccel(false)
	refs := []RefOp{{Slot: 4096, Target: 8192, CheckHeader: true, MarkBitmap: true}}
	a.OffloadScanPush(0, 4096, refs, 1<<30)
	writesBefore := a.sys.TSVStats().Writes
	end := a.FlushBitmapCaches(1000)
	if a.sys.TSVStats().Writes <= writesBefore {
		t.Fatal("flush wrote nothing despite dirty mark lines")
	}
	if end == 0 {
		t.Fatal("flush time zero")
	}
	if a.bmCaches[0].Contains(8192) {
		t.Fatal("cache not emptied")
	}
}

func TestMAIBoundsInflight(t *testing.T) {
	// With MAI=1 the streaming copy degenerates to serial accesses; with
	// 32 it overlaps. Compare.
	eng1 := sim.NewEngine()
	sys1 := hmc.NewSystem(eng1, cubeShift)
	cfg1 := DefaultConfig()
	cfg1.MAIEntries = 1
	a1 := New(cfg1, sys1)
	dSerial := a1.OffloadCopy(0, 0, 1<<20, 65536)

	a32, _ := newAccel(false)
	dParallel := a32.OffloadCopy(0, 0, 1<<20, 65536)
	if dParallel*2 > dSerial {
		t.Fatalf("MAI parallelism ineffective: serial %v, parallel %v", dSerial, dParallel)
	}
}

func TestHostLinkCarriesOnlyPackets(t *testing.T) {
	a, _ := newAccel(false)
	a.OffloadCopy(0, 0, 1<<20, 1<<16)
	hl := a.sys.HostLink().Stats.Bytes()
	if hl != hmc.OffloadReqBytes+hmc.RespPlainBytes {
		t.Fatalf("host link carried %d bytes, want only the packets (%d)",
			hl, hmc.OffloadReqBytes+hmc.RespPlainBytes)
	}
}

func TestUnitBusyAccounting(t *testing.T) {
	a, _ := newAccel(false)
	a.OffloadCopy(0, 0, 1<<20, 4096)
	a.OffloadScanPush(0, 4096, []RefOp{{Slot: 4096}}, 1<<30)
	a.OffloadBitmapCount(0, 0, 1<<20, 512)
	cs, sp, bc := a.UnitBusy()
	if cs == 0 || sp == 0 || bc == 0 {
		t.Fatalf("busy accounting: %v %v %v", cs, sp, bc)
	}
}

func BenchmarkOffloadCopy(b *testing.B) {
	a, _ := newAccel(false)
	t := sim.Time(0)
	for i := 0; i < b.N; i++ {
		t = a.OffloadCopy(t, uint64(i%1024)*4096, 1<<21, 4096)
	}
}

func TestConfigurableStreamGrain(t *testing.T) {
	run := func(grain uint64) sim.Time {
		eng := sim.NewEngine()
		sys := hmc.NewSystem(eng, cubeShift)
		cfg := DefaultConfig()
		cfg.StreamGrain = grain
		a := New(cfg, sys)
		return a.OffloadCopy(0, 0, 1<<21+320, 1<<18)
	}
	// Smaller grains need more request slots: 64B should be slower than
	// the 256B maximum for a large copy.
	if run(256) >= run(64) {
		t.Fatal("grain=256B not faster than grain=64B")
	}
}

func TestConfigurableBitmapCacheSize(t *testing.T) {
	mk := func(bytes uint64) *Accelerator {
		eng := sim.NewEngine()
		sys := hmc.NewSystem(eng, cubeShift)
		cfg := DefaultConfig()
		cfg.BitmapCacheBytes = bytes
		return New(cfg, sys)
	}
	big := mk(32 << 10)
	small := mk(1 << 10)
	// Scan a range larger than the small cache twice: the big cache keeps
	// it resident, the small one thrashes.
	for i := 0; i < 2; i++ {
		big.OffloadBitmapCount(0, 0, 1<<20, 2048)
		small.OffloadBitmapCount(0, 0, 1<<20, 2048)
	}
	if big.bmCaches[0].Stats.HitRate() <= small.bmCaches[0].Stats.HitRate() {
		t.Fatalf("capacity had no effect: big %.2f vs small %.2f",
			big.bmCaches[0].Stats.HitRate(), small.bmCaches[0].Stats.HitRate())
	}
}

func TestTLBPinnedPagesNeverMiss(t *testing.T) {
	// Section 4.6: pinned huge pages mean no TLB misses during execution.
	a, _ := newAccel(false)
	a.Initialize(1, AddrRange{Base: 0, Bytes: 16 << 20})
	a.OffloadCopy(0, 0, 1<<21, 4096)
	a.OffloadSearch(0, 1<<20, 2048)
	a.OffloadBitmapCount(0, 4096, 1<<22, 512)
	a.OffloadScanPush(0, 8192, []RefOp{{Slot: 8192, Target: 1 << 21, CheckHeader: true}}, 1<<22)
	if a.Stats.TLBWalks != 0 {
		t.Fatalf("%d page walks despite pinned pages", a.Stats.TLBWalks)
	}
	if a.Stats.TLBAccesses == 0 {
		t.Fatal("no TLB activity counted")
	}
}

func TestTLBMissWalksAndRefills(t *testing.T) {
	eng := sim.NewEngine()
	a := New(DefaultConfig(), hmc.NewSystem(eng, cubeShift))
	// No Initialize: the first offload to a page walks, the second hits.
	d1 := a.OffloadCopy(0, 0, 1<<21+64, 256)
	if a.Stats.TLBWalks != 1 {
		t.Fatalf("walks = %d, want 1", a.Stats.TLBWalks)
	}
	walksAfter := a.Stats.TLBWalks
	a.OffloadCopy(d1, 4096, 1<<21+8192, 256)
	if a.Stats.TLBWalks != walksAfter {
		t.Fatal("second access to the same page walked again")
	}
}

func TestTLBStructure(t *testing.T) {
	tl := newTLB(4, 22)
	if tl.Lookup(1, 0) {
		t.Fatal("empty TLB hit")
	}
	tl.Insert(1, 0)
	if !tl.Lookup(1, 1<<21) { // same 4MB page
		t.Fatal("page-granularity lookup failed")
	}
	if tl.Lookup(2, 0) {
		t.Fatal("PCID isolation violated")
	}
	// Capacity eviction: fill 4 entries for pcid 1, then a 5th evicts LRU.
	for i := 1; i <= 4; i++ {
		tl.Insert(1, uint64(i)<<22)
	}
	if tl.Coverage() != 4 {
		t.Fatalf("coverage %d", tl.Coverage())
	}
	if tl.Lookup(1, 0) { // original entry was LRU and evicted
		t.Fatal("LRU entry survived over-capacity inserts")
	}
	tl.Flush()
	if tl.Coverage() != 0 {
		t.Fatal("flush incomplete")
	}
}

func TestUnifiedTLBRemotePenalty(t *testing.T) {
	aU, _ := newAccel(false)
	aD, _ := newAccel(true)
	for _, a := range []*Accelerator{aU, aD} {
		a.Initialize(1, AddrRange{Base: 0, Bytes: 16 << 20})
	}
	c1 := uint64(1) << cubeShift
	dU := aU.OffloadCopy(0, c1, c1+1<<20, 1024)
	dD := aD.OffloadCopy(0, c1, c1+1<<20, 1024)
	if dD >= dU {
		t.Fatalf("distributed TLB (%v) should beat unified (%v) off-centre", dD, dU)
	}
	if aU.Stats.TLBRemote == 0 || aD.Stats.TLBRemote != 0 {
		t.Fatalf("remote counters: unified %d, distributed %d", aU.Stats.TLBRemote, aD.Stats.TLBRemote)
	}
}

// scriptedOffloads drives a fixed descriptor sequence exercising every
// offload kind across several cubes, returning the host-visible finish.
func scriptedOffloads(a *Accelerator) sim.Time {
	t := sim.Time(0)
	for c := uint64(0); c < 3; c++ {
		base := c << cubeShift
		t = a.OffloadCopy(t, base, base+1<<20, 4096)
		t = a.OffloadSearch(t, base+2<<10, 2048)
		t = a.OffloadBitmapCount(t, base+4096, base+1<<21, 512)
	}
	t = a.OffloadScanPush(t, 8192, []RefOp{
		{Slot: 8192, Target: 1 << 21, CheckHeader: true},
		{Slot: 16384, Target: 2 << 21},
	}, 1<<30)
	return t
}

func TestPerUnitMetricsAgreeWithUnitBusy(t *testing.T) {
	// The per-unit metric counters and the UnitBusy aggregate are two
	// independent accountings of the same reservations; they must agree
	// exactly on a scripted descriptor sequence.
	a, _ := newAccel(false)
	if end := scriptedOffloads(a); end == 0 {
		t.Fatal("scripted sequence did not run")
	}
	reg := metrics.NewRegistry()
	a.Collect(reg, "charon", 0)

	var csM, spM, bcM sim.Time
	var csReq, spReq, bcReq, other float64
	for _, name := range reg.Names() {
		switch {
		case strings.Contains(name, "/copysearch"):
			if strings.HasSuffix(name, "/busy_ps") {
				csM += sim.Time(reg.Counter(name))
			} else if strings.HasSuffix(name, "/requests") {
				csReq += reg.Counter(name)
			}
		case strings.Contains(name, "/scanpush") && !strings.HasPrefix(name, "charon/offload"):
			if strings.HasSuffix(name, "/busy_ps") {
				spM += sim.Time(reg.Counter(name))
			} else if strings.HasSuffix(name, "/requests") {
				spReq += reg.Counter(name)
			}
		case strings.Contains(name, "/bitmapcount") && !strings.HasPrefix(name, "charon/offload"):
			if strings.HasSuffix(name, "/busy_ps") {
				bcM += sim.Time(reg.Counter(name))
			} else if strings.HasSuffix(name, "/requests") {
				bcReq += reg.Counter(name)
			}
		default:
			other++
		}
	}
	cs, sp, bc := a.UnitBusy()
	if csM != cs || spM != sp || bcM != bc {
		t.Fatalf("busy accounting disagrees: metrics (%v, %v, %v) vs UnitBusy (%v, %v, %v)",
			csM, spM, bcM, cs, sp, bc)
	}
	if want := float64(a.Stats.Offloads[KCopy] + a.Stats.Offloads[KSearch]); csReq != want {
		t.Fatalf("copysearch requests %v, want %v", csReq, want)
	}
	if want := float64(a.Stats.Offloads[KScanPush]); spReq != want {
		t.Fatalf("scanpush requests %v, want %v", spReq, want)
	}
	if want := float64(a.Stats.Offloads[KBitmapCount]); bcReq != want {
		t.Fatalf("bitmapcount requests %v, want %v", bcReq, want)
	}
	if other == 0 {
		t.Fatal("expected offload/tlb/cache counters beyond the unit ones")
	}
}

func TestTraceSpanPerOffload(t *testing.T) {
	a, _ := newAccel(false)
	rec := metrics.NewRecorder(0)
	a.SetRecorder(rec)
	scriptedOffloads(a)
	var offs uint64
	for _, n := range a.Stats.Offloads {
		offs += n
	}
	if got := uint64(rec.Len()); got != offs {
		t.Fatalf("recorded %d spans for %d offloads", got, offs)
	}
}

func TestRequesterBytesMatchVaultService(t *testing.T) {
	// The accelerator-local form of the byte-conservation invariant: what
	// memAccess requested equals what the vaults served (no host traffic
	// here, so the two sides are directly comparable).
	a, _ := newAccel(false)
	scriptedOffloads(a)
	if a.Stats.Mem.Bytes() == 0 {
		t.Fatal("no requester-side traffic recorded")
	}
	vs := a.sys.VaultStats()
	if a.Stats.Mem.ReadBytes != vs.ReadBytes || a.Stats.Mem.WriteBytes != vs.WriteBytes {
		t.Fatalf("requested (%d r / %d w) != served (%d r / %d w)",
			a.Stats.Mem.ReadBytes, a.Stats.Mem.WriteBytes, vs.ReadBytes, vs.WriteBytes)
	}
}
