// Package charon implements the paper's contribution: the near-memory GC
// accelerator placed on the logic layer of each HMC cube (Figure 5). It
// models, in reservation (timing) form:
//
//   - the host-Charon offload interface of Section 4.1: 48 B request
//     packets routed over the HMC links to the home cube, per-primitive
//     command queues, and 16/32 B response packets, with the host thread
//     blocked until the response returns;
//   - the Copy/Search unit (Section 4.2): streaming 256 B accesses issued
//     one per logic cycle, bounded by the MAI's 32 request-buffer entries;
//   - the Bitmap Count unit (Section 4.3): the optimized subtract+popcount
//     algorithm fed through the dedicated bitmap cache (8 KB, 8-way, 32 B
//     blocks, Section 4.5);
//   - the Scan&Push unit (Section 4.4): batched slot loads with dependent
//     header checks, stack pushes and metadata updates, always scheduled
//     on the central cube;
//   - unified vs distributed bitmap cache and TLB placement (Section 4.6),
//     the knob behind Figure 15's scalability comparison.
//
// Functional GC work is done by the collector; this package charges time
// and traffic for the offloaded work descriptors.
package charon

import (
	"charonsim/internal/cache"
	"charonsim/internal/fault"
	"charonsim/internal/hmc"
	"charonsim/internal/memsys"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// Config sizes the accelerator (Table 2 defaults).
type Config struct {
	// CopySearchPerCube is the number of Copy/Search units per cube (2).
	CopySearchPerCube int
	// BitmapCountPerCube is the number of Bitmap Count units per cube (2).
	BitmapCountPerCube int
	// ScanPushUnits is the number of Scan&Push units, all on the central
	// cube (8).
	ScanPushUnits int
	// MAIEntries is the per-cube request buffer depth (32).
	MAIEntries int
	// LogicPeriod is the logic-layer clock (HMC tCK, 1.6 ns).
	LogicPeriod sim.Time
	// StreamGrain is the Copy/Search access granularity (HMC max: 256 B).
	StreamGrain uint64
	// BitmapCacheBytes sizes the bitmap cache (default 8 KB).
	BitmapCacheBytes uint64
	// Distributed selects per-cube bitmap cache and TLB slices instead of
	// unified structures on the central cube (Section 4.6).
	Distributed bool
	// CPUSide places the Charon units beside the host memory controller
	// instead of on the cube logic layers (Figure 16): offload transport
	// becomes an on-chip hop, but every memory access pays the full host
	// link path and misses the internal TSV bandwidth.
	CPUSide bool
}

// DefaultConfig returns Table 2's Charon configuration.
func DefaultConfig() Config {
	return Config{
		CopySearchPerCube:  2,
		BitmapCountPerCube: 2,
		ScanPushUnits:      8,
		MAIEntries:         32,
		LogicPeriod:        1600 * sim.Picosecond,
		StreamGrain:        256,
		BitmapCacheBytes:   8 << 10,
	}
}

// RefOp is the per-reference work of one Scan&Push invocation, in
// accelerator-neutral form (the exec layer converts the collector's
// recorded RefVisits).
type RefOp struct {
	Slot   uint64
	Target uint64 // 0 when the slot held null
	// CheckHeader: load the target's header (is_unmarked, MinorGC).
	CheckHeader bool
	// BitmapProbe: read the target's mark-bit state through the bitmap
	// cache (is_unmarked, MajorGC).
	BitmapProbe bool
	// Push: write the slot/object to the object stack.
	Push bool
	// UpdateSlot: rewrite the slot with a forwarding address.
	UpdateSlot bool
	// MarkBitmap: mark_obj read-modify-write on the mark bitmaps (MajorGC).
	MarkBitmap bool
	// DirtyCard: card-table byte write (old-to-young metadata update).
	DirtyCard bool
	CardAddr  uint64
}

// Stats counts accelerator activity.
type Stats struct {
	Offloads       [4]uint64 // by unit kind: copy, search, scanpush, bitmapcount
	RequestPackets uint64
	ResponseBytes  uint64
	BitmapCache    cache.Stats
	TLBAccesses    uint64
	TLBRemote      uint64
	TLBWalks       uint64

	// Reissues counts offloads served away from their home cube because
	// the home pool was wholly failed (cross-cube failover).
	Reissues uint64

	// Mem counts the memory requests the units issued (every memAccess
	// call: streams, header loads, bitmap fills, writebacks, flushes).
	// This is the accelerator's requester side of the byte-conservation
	// invariant against the vault controllers' served traffic.
	Mem memsys.Stats
}

// Unit kinds for stats indexing.
const (
	KCopy = iota
	KSearch
	KScanPush
	KBitmapCount
)

// unit is one processing unit's reservation state. Health is fixed at
// construction: a failed unit never serves (defective or fenced off); a
// degraded unit serves every offload slower by the configured factor
// (thermal throttling on the logic layer).
type unit struct {
	freeAt sim.Time
	busy   sim.Time
	reqs   uint64 // offloads serviced by this unit

	failed   bool
	degraded bool
}

// mai is a cube's Memory Access Interface: a bounded request buffer that
// limits in-flight memory accesses, like an MSHR file (Section 4.1).
type mai struct {
	inflight []sim.Time
	limit    int
}

// reserve issues a memory access no earlier than ready, constrained by
// buffer availability; complete computes the completion given the actual
// start. Returns the completion time.
func (m *mai) reserve(ready sim.Time, complete func(start sim.Time) sim.Time) sim.Time {
	if len(m.inflight) < m.limit {
		done := complete(ready)
		m.inflight = append(m.inflight, done)
		return done
	}
	idx := 0
	for i := 1; i < len(m.inflight); i++ {
		if m.inflight[i] < m.inflight[idx] {
			idx = i
		}
	}
	start := ready
	if m.inflight[idx] > start {
		start = m.inflight[idx]
	}
	done := complete(start)
	m.inflight[idx] = done
	return done
}

// Accelerator is the full Charon deployment over an HMC system.
type Accelerator struct {
	cfg Config
	sys *hmc.System

	copySearch  [][]unit // [cube][unit]
	bitmapCount [][]unit
	scanPush    []unit // central cube

	mais []mai

	// Unified bitmap cache (on the central cube) or per-cube slices.
	bmCaches    []*cache.Cache
	bmCachePort []*sim.Calendar // port occupancy per cache

	// TLB slices (one, or one per cube when Distributed) and the active
	// process id (PCID).
	tlbs []*TLB
	pcid uint16

	// rec, when set, receives one trace span per offload. Nil disables
	// recording (all Recorder methods are nil-safe).
	rec *metrics.Recorder

	// degradeFactor stretches the service span of degraded units (1.0
	// with faults off — arithmetic identity, not just approximately).
	degradeFactor float64

	// Reusable per-offload scratch (offloads on one accelerator are
	// serialized by the replay loop): pending write-buffer entries for
	// OffloadCopy, per-reference slot-load completion times for
	// OffloadScanPush.
	copyPend []pendWrite
	slotDone []sim.Time
	dirty    []uint64

	Stats Stats
}

// pendWrite is a write-buffered chunk of an in-flight COPY offload.
type pendWrite struct {
	off      uint64
	n        uint32
	readDone sim.Time
}

// New builds an accelerator over sys.
func New(cfg Config, sys *hmc.System) *Accelerator {
	return NewFault(cfg, sys, nil)
}

// NewFault is New with fault injection: per-unit failed/degraded health is
// drawn once here from the "charon/units" stream, in fixed pool order
// (copy/search by cube, bitmap-count by cube, then scan&push), so the
// health map is a pure function of the fault seed. FailAllUnits overrides
// the draws and fences off every unit. A nil injector is exactly New.
func NewFault(cfg Config, sys *hmc.System, inj *fault.Injector) *Accelerator {
	ncubes := sys.Mapper().Cubes
	a := &Accelerator{cfg: cfg, sys: sys, degradeFactor: 1}
	for c := 0; c < ncubes; c++ {
		a.copySearch = append(a.copySearch, make([]unit, cfg.CopySearchPerCube))
		a.bitmapCount = append(a.bitmapCount, make([]unit, cfg.BitmapCountPerCube))
		a.mais = append(a.mais, mai{limit: cfg.MAIEntries})
	}
	a.scanPush = make([]unit, cfg.ScanPushUnits)
	ncaches := 1
	if cfg.Distributed {
		ncaches = ncubes
	}
	// TLB slices: Table 2 lists 32 entries per cube.
	ntlbs := 1
	if cfg.Distributed {
		ntlbs = ncubes
	}
	for i := 0; i < ntlbs; i++ {
		a.tlbs = append(a.tlbs, newTLB(32, sys.Mapper().CubeShift))
	}

	bmCfg := cache.BitmapCacheConfig()
	if cfg.BitmapCacheBytes != 0 {
		bmCfg.SizeBytes = cfg.BitmapCacheBytes
	}
	for i := 0; i < ncaches; i++ {
		a.bmCaches = append(a.bmCaches, cache.New(bmCfg))
		a.bmCachePort = append(a.bmCachePort, sim.NewCalendar(50*sim.Nanosecond))
	}
	if inj != nil {
		fc := inj.Config()
		a.degradeFactor = fc.DegradeFactor
		src := inj.Source("charon/units")
		seed := func(u *unit) {
			switch {
			case fc.FailAllUnits:
				u.failed = true
			case src.Hit(fc.UnitFailRate):
				u.failed = true
			default:
				u.degraded = src.Hit(fc.UnitDegradeRate)
			}
		}
		for c := range a.copySearch {
			for i := range a.copySearch[c] {
				seed(&a.copySearch[c][i])
			}
		}
		for c := range a.bitmapCount {
			for i := range a.bitmapCount[c] {
				seed(&a.bitmapCount[c][i])
			}
		}
		for i := range a.scanPush {
			seed(&a.scanPush[i])
		}
	}
	return a
}

// Config returns the accelerator configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// grain returns the configured streaming granularity.
func (a *Accelerator) grain() uint64 {
	if a.cfg.StreamGrain == 0 {
		return StreamGrain
	}
	return a.cfg.StreamGrain
}

// System returns the underlying HMC system.
func (a *Accelerator) System() *hmc.System { return a.sys }

// pickHealthy returns the index of the earliest-free non-failed unit, or
// -1 when the whole pool is failed. With every unit healthy this is the
// classic earliest-free pick (first index wins ties), so a fault-free
// accelerator schedules identically to one built without an injector.
func pickHealthy(us []unit) int {
	best := -1
	for i := range us {
		if us[i].failed {
			continue
		}
		if best < 0 || us[i].freeAt < us[best].freeAt {
			best = i
		}
	}
	return best
}

// pickCopySearch selects the serving (cube, unit) for a Copy/Search
// primitive homed on `home`, failing over to the nearest cube (in index
// order) whose pool still has a live unit when the home pool is wholly
// failed. Returns (-1, -1) when no Copy/Search unit is healthy anywhere —
// callers must guard with CanCopySearch.
func (a *Accelerator) pickCopySearch(home int) (int, int) {
	for d := 0; d < len(a.copySearch); d++ {
		c := (home + d) % len(a.copySearch)
		if u := pickHealthy(a.copySearch[c]); u >= 0 {
			if d != 0 {
				a.Stats.Reissues++
			}
			return c, u
		}
	}
	return -1, -1
}

// pickBitmapCount is pickCopySearch for the Bitmap Count pools.
func (a *Accelerator) pickBitmapCount(home int) (int, int) {
	for d := 0; d < len(a.bitmapCount); d++ {
		c := (home + d) % len(a.bitmapCount)
		if u := pickHealthy(a.bitmapCount[c]); u >= 0 {
			if d != 0 {
				a.Stats.Reissues++
			}
			return c, u
		}
	}
	return -1, -1
}

// CanCopySearch reports whether any Copy/Search unit on any cube is
// healthy (offloadable COPY and SEARCH primitives can still be served).
func (a *Accelerator) CanCopySearch() bool {
	for _, p := range a.copySearch {
		if pickHealthy(p) >= 0 {
			return true
		}
	}
	return false
}

// CanBitmapCount reports whether any Bitmap Count unit is healthy.
func (a *Accelerator) CanBitmapCount() bool {
	for _, p := range a.bitmapCount {
		if pickHealthy(p) >= 0 {
			return true
		}
	}
	return false
}

// CanScanPush reports whether any Scan&Push unit is healthy.
func (a *Accelerator) CanScanPush() bool { return pickHealthy(a.scanPush) >= 0 }

// AllUnitsFailed reports whether no unit of any kind can serve: the
// accelerator is present but dead, and the platform should run the host
// collector path wholesale.
func (a *Accelerator) AllUnitsFailed() bool {
	return !a.CanCopySearch() && !a.CanBitmapCount() && !a.CanScanPush()
}

// UnitHealth counts unit states across every pool.
func (a *Accelerator) UnitHealth() (failed, degraded, total int) {
	count := func(us []unit) {
		for i := range us {
			total++
			if us[i].failed {
				failed++
			} else if us[i].degraded {
				degraded++
			}
		}
	}
	for c := range a.copySearch {
		count(a.copySearch[c])
		count(a.bitmapCount[c])
	}
	count(a.scanPush)
	return
}

// finish settles a unit's reservation over [start, last]: degraded units
// stretch the service span by the configured factor before freeing.
// Returns the (possibly stretched) completion time.
func (a *Accelerator) finish(u *unit, start, last sim.Time) sim.Time {
	if u.degraded && a.degradeFactor > 1 {
		last = start + sim.Time(float64(last-start)*a.degradeFactor)
	}
	u.busy += last - start
	u.freeAt = last
	u.reqs++
	return last
}

// onChipHop is the command latency to a CPU-side unit (Figure 16): an
// on-chip queue traversal rather than a serial link.
const onChipHop = 5 * sim.Nanosecond

// transportRequest models the 48 B offload packet travelling from the host
// to the destination cube's command queue (or the on-chip hop to a
// CPU-side unit).
func (a *Accelerator) transportRequest(t sim.Time, cube int) sim.Time {
	a.Stats.RequestPackets++
	if a.cfg.CPUSide {
		return t + onChipHop
	}
	at := a.sys.HostLink().TransferAt(t, hmc.DirDown, hmc.OffloadReqBytes)
	if cube != 0 {
		at = a.sys.CubeLink(cube).TransferAt(at, hmc.DirDown, hmc.OffloadReqBytes)
	}
	return at
}

// transportResponse models the response packet back to the blocked host
// thread.
func (a *Accelerator) transportResponse(t sim.Time, cube int, bytes uint32) sim.Time {
	a.Stats.ResponseBytes += uint64(bytes)
	if a.cfg.CPUSide {
		return t + onChipHop
	}
	if cube != 0 {
		t = a.sys.CubeLink(cube).TransferAt(t, hmc.DirUp, bytes)
	}
	return a.sys.HostLink().TransferAt(t, hmc.DirUp, bytes)
}

// memAccess routes a unit's memory access: over the local TSVs (and cube
// links for remote addresses) for near-memory placement, or over the full
// host link path for CPU-side placement.
func (a *Accelerator) memAccess(start sim.Time, cube int, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	a.Stats.Mem.Record(&memsys.Request{Kind: kind, Size: size})
	if a.cfg.CPUSide {
		return a.sys.HostAccessAt(start, kind, addr, size)
	}
	return a.sys.NearAccessAt(start, cube, kind, addr, size)
}

// bmCacheFor returns the bitmap cache index serving a unit on `cube`, plus
// the extra per-access latency for reaching it (unified caches on the
// central cube cost remote units a link round trip).
func (a *Accelerator) bmCacheFor(cube int) (idx int, extra sim.Time) {
	if a.cfg.Distributed {
		return cube, 0
	}
	if cube != 0 {
		// Round trip leaf<->centre for the lookup.
		return 0, 2 * (3 * sim.Nanosecond)
	}
	return 0, 0
}

// bitmapCacheAccess reserves one access to the bitmap cache serving
// `cube`, fetching from memory on a miss. Returns the data-ready time.
func (a *Accelerator) bitmapCacheAccess(t sim.Time, cube int, addr uint64, write bool) sim.Time {
	idx, extra := a.bmCacheFor(cube)
	c := a.bmCaches[idx]
	// The SRAM is dual-ported: two accesses per logic cycle.
	port := a.cfg.LogicPeriod / 2
	start := a.bmCachePort[idx].Reserve(t+extra, port) - port
	res := c.Access(addr, write)
	a.Stats.BitmapCache = c.Stats
	done := start + c.Config().HitLatency
	if !res.Hit {
		homeCube := idx
		if !a.cfg.Distributed {
			homeCube = 0
		}
		done = a.memAccess(start, homeCube, memsys.Read, addr&^uint64(31), 32)
	}
	if res.Writeback {
		a.memAccess(done, idx, memsys.Write, res.WritebackAddr, 32)
	}
	return done + extra
}

// FlushBitmapCaches models the coherence flush after Bitmap Count /
// Scan&Push complete in MajorGC (Section 4.5): dirty lines are written
// back and the cache emptied.
func (a *Accelerator) FlushBitmapCaches(t sim.Time) sim.Time {
	last := t
	for i, c := range a.bmCaches {
		a.dirty = c.AppendDirtyLines(a.dirty[:0])
		for _, addr := range a.dirty {
			if d := a.memAccess(t, i%len(a.mais), memsys.Write, addr, 32); d > last {
				last = d
			}
		}
		c.Flush()
	}
	return last
}
