package charon

import (
	"charonsim/internal/hmc"
	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// StreamGrain is the access granularity of the Copy/Search unit: the HMC
// maximum of 256 B (Section 4.2).
const StreamGrain = 256

// OffloadCopy performs `val offload(COPY, src, dst, size)` issued by a
// blocked host thread at time t. The primitive is scheduled to the cube
// housing the source (Section 4.2). Returns the time the response packet
// reaches the host.
func (a *Accelerator) OffloadCopy(t sim.Time, src, dst uint64, size uint32) sim.Time {
	a.Stats.Offloads[KCopy]++
	cube, u := a.pickCopySearch(a.sys.Mapper().Cube(src))
	if cube < 0 {
		// Defensive: callers guard with CanCopySearch; serve on the dead
		// home pool rather than corrupt state.
		cube, u = a.sys.Mapper().Cube(src), 0
	}
	at := a.transportRequest(t, cube)
	at = a.translate(at, cube, src)

	un := &a.copySearch[cube][u]
	start := at
	if un.freeAt > start {
		start = un.freeAt
	}

	// Stream reads at one 256 B request per cycle, bounded by the MAI;
	// completed reads drain to memory as a batched write stream (the unit
	// write-buffers, so banks see read runs then write runs instead of a
	// row-thrashing interleave).
	var last sim.Time
	issue := start
	m := &a.mais[cube]
	writes := a.copyPend[:0]
	memsys.SplitBursts(src, size, a.grain(), func(addr uint64, n uint32) {
		off := addr - src
		readDone := m.reserve(issue, func(st sim.Time) sim.Time {
			return a.memAccess(st, cube, memsys.Read, addr, n)
		})
		writes = append(writes, pendWrite{off: off, n: n, readDone: readDone})
		issue += a.cfg.LogicPeriod
	})
	a.copyPend = writes[:0]
	for _, w := range writes {
		writeDone := a.memAccess(w.readDone, cube, memsys.Write, dst+w.off, w.n)
		if writeDone > last {
			last = writeDone
		}
	}
	if last == 0 {
		last = start + a.cfg.LogicPeriod
	}
	last = a.finish(un, start, last)
	a.span("copy", cube, tidCopy+u, start, last)
	return a.transportResponse(last, cube, hmc.RespPlainBytes)
}

// OffloadSearch performs the card-table range search (Figure 7): stream
// reads at 256 B granularity until `size` bytes are covered (the recorded
// size already reflects early exit at the first dirty card). Scheduled to
// the cube housing the start address. Returns host-visible completion.
func (a *Accelerator) OffloadSearch(t sim.Time, start64 uint64, size uint32) sim.Time {
	a.Stats.Offloads[KSearch]++
	cube, u := a.pickCopySearch(a.sys.Mapper().Cube(start64))
	if cube < 0 {
		cube, u = a.sys.Mapper().Cube(start64), 0
	}
	at := a.transportRequest(t, cube)
	at = a.translate(at, cube, start64)

	un := &a.copySearch[cube][u]
	start := at
	if un.freeAt > start {
		start = un.freeAt
	}

	var last sim.Time
	issue := start
	m := &a.mais[cube]
	memsys.SplitBursts(start64, size, a.grain(), func(addr uint64, n uint32) {
		done := m.reserve(issue, func(st sim.Time) sim.Time {
			return a.memAccess(st, cube, memsys.Read, addr, n)
		})
		// One cycle of comparison per response.
		done += a.cfg.LogicPeriod
		if done > last {
			last = done
		}
		issue += a.cfg.LogicPeriod
	})
	if last == 0 {
		last = start + a.cfg.LogicPeriod
	}
	last = a.finish(un, start, last)
	a.span("search", cube, tidCopy+u, start, last)
	// Search returns a value: 32 B response.
	return a.transportResponse(last, cube, hmc.RespValueBytes)
}

// OffloadBitmapCount performs live_words_in_range with the optimized
// subtract+popcount algorithm (Section 4.3): both maps are read through
// the bitmap cache at 32 B blocks and processed 8 bytes per cycle.
// begAddr is the beg-map byte address; the end map is read at begAddr +
// offset (Figure 8 line 3). Scheduled to the cube housing the bitmap.
func (a *Accelerator) OffloadBitmapCount(t sim.Time, begAddr, endAddr uint64, size uint32) sim.Time {
	a.Stats.Offloads[KBitmapCount]++
	cube, u := a.pickBitmapCount(a.sys.Mapper().Cube(begAddr))
	if cube < 0 {
		cube, u = a.sys.Mapper().Cube(begAddr), 0
	}
	at := a.transportRequest(t, cube)
	at = a.translate(at, cube, begAddr)

	un := &a.bitmapCount[cube][u]
	start := at
	if un.freeAt > start {
		start = un.freeAt
	}

	// Fetch both maps block by block through the bitmap cache.
	var memLast sim.Time
	for _, base := range [2]uint64{begAddr, endAddr} {
		memsys.SplitBursts(base, size, 32, func(addr uint64, n uint32) {
			if d := a.bitmapCacheAccess(start, cube, addr, false); d > memLast {
				memLast = d
			}
		})
	}
	// Pipeline: 8 bytes of each map per cycle.
	words := (size + 7) / 8
	computeDone := start + sim.Time(words)*a.cfg.LogicPeriod
	last := memLast
	if computeDone > last {
		last = computeDone
	}
	last = a.finish(un, start, last)
	a.span("bitmapcount", cube, tidBitmap+u, start, last)
	return a.transportResponse(last, cube, hmc.RespValueBytes)
}

// OffloadScanPush executes one Scan&Push invocation (Figure 11) on a
// central-cube unit: batched slot loads (coalesced to 256 B requests, one
// per cycle), dependent header checks, then pushes / slot updates / mark
// RMWs / card updates as recorded. stackTop is the object-stack address
// for pushes. Returns host-visible completion.
func (a *Accelerator) OffloadScanPush(t sim.Time, obj uint64, refs []RefOp, stackTop uint64) sim.Time {
	a.Stats.Offloads[KScanPush]++
	const cube = 0 // always the central cube (Section 4.4)
	at := a.transportRequest(t, cube)
	at = a.translate(at, cube, obj)

	u := pickHealthy(a.scanPush)
	if u < 0 {
		u = 0 // defensive: callers guard with CanScanPush
	}
	un := &a.scanPush[u]
	start := at
	if un.freeAt > start {
		start = un.freeAt
	}

	m := &a.mais[cube]
	var last sim.Time
	bump := func(d sim.Time) {
		if d > last {
			last = d
		}
	}

	// Slot loads: coalesce contiguous slots into streaming requests. Each
	// invocation scans one object's slots, so references are positionally
	// unique and the completion times index by reference position (the
	// reusable slotDone scratch) rather than through a per-call map.
	issue := start
	if cap(a.slotDone) < len(refs) {
		a.slotDone = make([]sim.Time, len(refs))
	}
	slotDone := a.slotDone[:len(refs)]
	i := 0
	for i < len(refs) {
		base := refs[i].Slot
		end := base + 8
		j := i + 1
		for j < len(refs) && refs[j].Slot == end && end-base < a.grain() {
			end += 8
			j++
		}
		done := m.reserve(issue, func(st sim.Time) sim.Time {
			return a.memAccess(st, cube, memsys.Read, base, uint32(end-base))
		})
		for k := i; k < j; k++ {
			slotDone[k] = done
		}
		bump(done)
		issue += a.cfg.LogicPeriod
		i = j
	}

	// Dependent work per reference.
	push := 0
	for ri := range refs {
		r := &refs[ri]
		ready := slotDone[ri]
		if r.Target == 0 {
			continue
		}
		if r.CheckHeader {
			// is_unmarked: 16 B header read at the target (minimum HMC
			// granularity; Section 4.5 notes the overfetch).
			ready = m.reserve(ready, func(st sim.Time) sim.Time {
				return a.memAccess(st, cube, memsys.Read, r.Target&^uint64(15), 16)
			})
			bump(ready)
		}
		if r.BitmapProbe {
			// MajorGC is_unmarked: mark-bit read through the bitmap cache.
			ready = a.bitmapCacheAccess(ready, cube, r.Target, false)
			bump(ready)
		}
		if r.MarkBitmap {
			// mark_obj: RMW on both maps through the bitmap cache.
			d := a.bitmapCacheAccess(ready, cube, r.Target, true)
			d = a.bitmapCacheAccess(d, cube, r.Target+8, true)
			bump(d)
			ready = d
		}
		if r.UpdateSlot {
			bump(a.memAccess(ready, cube, memsys.Write, r.Slot&^uint64(15), 16))
		}
		if r.DirtyCard {
			bump(a.memAccess(ready, cube, memsys.Write, r.CardAddr&^uint64(15), 16))
		}
		if r.Push {
			addr := stackTop + uint64(push)*8
			bump(a.memAccess(ready, cube, memsys.Write, addr&^uint64(15), 16))
			push++
		}
	}

	if last < start {
		last = start + a.cfg.LogicPeriod
	}
	last = a.finish(un, start, last)
	a.span("scanpush", cube, tidScanPush+u, start, last)
	return a.transportResponse(last, cube, hmc.RespPlainBytes)
}

// UnitBusy sums busy time per unit kind (for utilization/energy).
func (a *Accelerator) UnitBusy() (copySearch, scanPush, bitmapCount sim.Time) {
	for _, cs := range a.copySearch {
		for _, u := range cs {
			copySearch += u.busy
		}
	}
	for _, u := range a.scanPush {
		scanPush += u.busy
	}
	for _, bc := range a.bitmapCount {
		for _, u := range bc {
			bitmapCount += u.busy
		}
	}
	return
}
