package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := json.RawMessage(`{"duration":12345,"bytes":99}`)
	if err := s.Put("run|wl=BS|platform=Charon", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("run|wl=BS|platform=Charon")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("run|wl=BS|platform=DDR4"); ok {
		t.Fatal("different key must miss")
	}
	hits, misses, discards, werrs := s.Stats()
	if hits != 1 || misses != 1 || discards != 0 || werrs != 0 {
		t.Fatalf("stats = %d/%d/%d/%d", hits, misses, discards, werrs)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", json.RawMessage(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "[1,2,3]" {
		t.Fatalf("reopen Get = %q, %v", got, ok)
	}
}

// corrupt finds the single entry file in the store and rewrites it.
func corrupt(t *testing.T, s *Store, mutate func([]byte) []byte) string {
	t.Helper()
	ents, err := os.ReadDir(s.Dir())
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one entry, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(s.Dir(), ents[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncatedEntryIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := corrupt(t, s, func(raw []byte) []byte { return raw[:len(raw)/2] })
	if _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("invalid entry not deleted")
	}
	if _, _, discards, _ := s.Stats(); discards != 1 {
		t.Fatalf("discards = %d, want 1", discards)
	}
}

func TestChecksumMismatchIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, func(raw []byte) []byte {
		return []byte(strings.Replace(string(raw), `{"v":1}`, `{"v":2}`, 1))
	})
	if _, ok := s.Get("k"); ok {
		t.Fatal("payload-tampered entry served despite checksum")
	}
}

func TestVersionMismatchIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, func(raw []byte) []byte {
		return []byte(strings.Replace(string(raw), `"version":1`, `"version":999`, 1))
	})
	if _, ok := s.Get("k"); ok {
		t.Fatal("version-mismatched entry served")
	}
}

func TestKeyCollisionFileIsDiscarded(t *testing.T) {
	// An entry whose embedded key does not hash to its own filename (a
	// copied/renamed file) must not be served for the probed key.
	s := open(t)
	if err := s.Put("orig", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(s.Dir())
	raw, _ := os.ReadFile(filepath.Join(s.Dir(), ents[0].Name()))
	// Drop the same envelope at a different key's address.
	if err := os.WriteFile(s.pathFor("other"), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("other"); ok {
		t.Fatal("entry served under a key it was not written for")
	}
}

func TestVerifyCleansDirectory(t *testing.T) {
	s := open(t)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, json.RawMessage(`{"k":"`+k+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// One truncated entry + one foreign file the store must ignore.
	ents, _ := os.ReadDir(s.Dir())
	path := filepath.Join(s.Dir(), ents[0].Name())
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:10], 0o666)
	os.WriteFile(filepath.Join(s.Dir(), "README"), []byte("not an entry"), 0o666)

	valid, discarded, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid != 2 || discarded != 1 {
		t.Fatalf("Verify = %d valid, %d discarded; want 2, 1", valid, discarded)
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("want error")
	}
}

func TestOpenCreatesNonWorldWritableDir(t *testing.T) {
	// A permissive umask must not yield a world-writable store: any local
	// user could plant entries. Open passes 0o755, so even umask 0 keeps
	// group/other write bits off.
	old := syscall.Umask(0)
	defer syscall.Umask(old)
	dir := filepath.Join(t.TempDir(), "nested", "store")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm&0o022 != 0 {
		t.Fatalf("store dir is group/world writable: %04o", perm)
	}
}

func TestLenSkipsInflightTempFiles(t *testing.T) {
	s := open(t)
	if err := s.Put("a", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	// Shapes an in-flight atomicio temp file can take (dot-prefixed, with
	// and without the entry suffix buried in the name). None may count.
	for _, name := range []string{
		".0a1b.ckpt.json.tmp-123456",
		".0a1b.ckpt.json",
		".hidden",
	} {
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 (temp files must not count)", n, err)
	}
	// Verify must not delete an in-flight temp either.
	valid, discarded, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid != 1 || discarded != 0 {
		t.Fatalf("Verify = %d valid, %d discarded; want 1, 0", valid, discarded)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), ".0a1b.ckpt.json.tmp-123456")); err != nil {
		t.Fatalf("in-flight temp file was removed: %v", err)
	}
}

func TestKeyHashMatchesEntryFilename(t *testing.T) {
	s := open(t)
	if err := s.Put("some|canonical|key", json.RawMessage(`true`)); err != nil {
		t.Fatal(err)
	}
	want := KeyHash("some|canonical|key") + ".ckpt.json"
	if _, err := os.Stat(filepath.Join(s.Dir(), want)); err != nil {
		t.Fatalf("KeyHash-derived filename %q not found: %v", want, err)
	}
}
