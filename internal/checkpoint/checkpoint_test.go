package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"

	"charonsim/internal/atomicio"
	"charonsim/internal/fault"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := json.RawMessage(`{"duration":12345,"bytes":99}`)
	if err := s.Put("run|wl=BS|platform=Charon", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("run|wl=BS|platform=Charon")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("run|wl=BS|platform=DDR4"); ok {
		t.Fatal("different key must miss")
	}
	hits, misses, discards, werrs := s.Stats()
	if hits != 1 || misses != 1 || discards != 0 || werrs != 0 {
		t.Fatalf("stats = %d/%d/%d/%d", hits, misses, discards, werrs)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", json.RawMessage(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "[1,2,3]" {
		t.Fatalf("reopen Get = %q, %v", got, ok)
	}
}

// corrupt finds the single entry file in the store and rewrites it.
func corrupt(t *testing.T, s *Store, mutate func([]byte) []byte) string {
	t.Helper()
	ents, err := os.ReadDir(s.Dir())
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one entry, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(s.Dir(), ents[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncatedEntryIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := corrupt(t, s, func(raw []byte) []byte { return raw[:len(raw)/2] })
	if _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("invalid entry not deleted")
	}
	if _, _, discards, _ := s.Stats(); discards != 1 {
		t.Fatalf("discards = %d, want 1", discards)
	}
}

func TestChecksumMismatchIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, func(raw []byte) []byte {
		return []byte(strings.Replace(string(raw), `{"v":1}`, `{"v":2}`, 1))
	})
	if _, ok := s.Get("k"); ok {
		t.Fatal("payload-tampered entry served despite checksum")
	}
}

func TestVersionMismatchIsDiscarded(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, func(raw []byte) []byte {
		return []byte(strings.Replace(string(raw), `"version":1`, `"version":999`, 1))
	})
	if _, ok := s.Get("k"); ok {
		t.Fatal("version-mismatched entry served")
	}
}

func TestKeyCollisionFileIsDiscarded(t *testing.T) {
	// An entry whose embedded key does not hash to its own filename (a
	// copied/renamed file) must not be served for the probed key.
	s := open(t)
	if err := s.Put("orig", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(s.Dir())
	raw, _ := os.ReadFile(filepath.Join(s.Dir(), ents[0].Name()))
	// Drop the same envelope at a different key's address.
	if err := os.WriteFile(s.pathFor("other"), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("other"); ok {
		t.Fatal("entry served under a key it was not written for")
	}
}

func TestVerifyCleansDirectory(t *testing.T) {
	s := open(t)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, json.RawMessage(`{"k":"`+k+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// One truncated entry + one foreign file the store must ignore.
	ents, _ := os.ReadDir(s.Dir())
	path := filepath.Join(s.Dir(), ents[0].Name())
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:10], 0o666)
	os.WriteFile(filepath.Join(s.Dir(), "README"), []byte("not an entry"), 0o666)

	valid, discarded, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid != 2 || discarded != 1 {
		t.Fatalf("Verify = %d valid, %d discarded; want 2, 1", valid, discarded)
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("want error")
	}
}

func TestOpenCreatesNonWorldWritableDir(t *testing.T) {
	// A permissive umask must not yield a world-writable store: any local
	// user could plant entries. Open passes 0o755, so even umask 0 keeps
	// group/other write bits off.
	old := syscall.Umask(0)
	defer syscall.Umask(old)
	dir := filepath.Join(t.TempDir(), "nested", "store")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm&0o022 != 0 {
		t.Fatalf("store dir is group/world writable: %04o", perm)
	}
}

func TestLenSkipsInflightTempFiles(t *testing.T) {
	s := open(t)
	if err := s.Put("a", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	// Shapes an in-flight atomicio temp file can take (dot-prefixed, with
	// and without the entry suffix buried in the name). None may count.
	for _, name := range []string{
		".0a1b.ckpt.json.tmp-123456",
		".0a1b.ckpt.json",
		".hidden",
	} {
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 (temp files must not count)", n, err)
	}
	// Verify must not delete an in-flight temp either.
	valid, discarded, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid != 1 || discarded != 0 {
		t.Fatalf("Verify = %d valid, %d discarded; want 1, 0", valid, discarded)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), ".0a1b.ckpt.json.tmp-123456")); err != nil {
		t.Fatalf("in-flight temp file was removed: %v", err)
	}
}

func TestKeyHashMatchesEntryFilename(t *testing.T) {
	s := open(t)
	if err := s.Put("some|canonical|key", json.RawMessage(`true`)); err != nil {
		t.Fatal(err)
	}
	want := KeyHash("some|canonical|key") + ".ckpt.json"
	if _, err := os.Stat(filepath.Join(s.Dir(), want)); err != nil {
		t.Fatalf("KeyHash-derived filename %q not found: %v", want, err)
	}
}

// --- PR 8: fault-injection hardening, Delete/Range, error diagnostics ---

func openFS(t *testing.T, fsys atomicio.FS) *Store {
	t.Helper()
	s, err := OpenFS(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutUnderENOSPCReturnsAndRecordsError(t *testing.T) {
	fsys := fault.NewFS(fault.FSConfig{WriteErrRate: 1}, nil)
	s := openFS(t, fsys)
	err := s.Put("k", json.RawMessage(`1`))
	if !errors.Is(err, fault.ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put = %v, want injected ENOSPC", err)
	}
	if _, _, _, werrs := s.Stats(); werrs != 1 {
		t.Fatalf("writeErrs = %d, want 1", werrs)
	}
	last := s.LastWriteError()
	if last == "" || !strings.Contains(last, "no space left") && !strings.Contains(last, "ENOSPC") && !strings.Contains(last, s.pathFor("k")) {
		t.Fatalf("LastWriteError = %q, want the path or errno surfaced", last)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("failed Put published an entry")
	}
	// Recovery: injection off, the same store serves writes again and the
	// recorded error stays for diagnosis.
	fsys.SetDisabled(true)
	if err := s.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("entry missing after recovered Put")
	}
	if s.LastWriteError() == "" {
		t.Fatal("recovery erased the diagnostic record")
	}
}

// TestPutTornRenameSelfHeals: a rename that tears leaves a truncated
// destination; Put reports the failure, and the next Get discards the
// torn artifact as a miss instead of serving garbage.
func TestPutTornRenameSelfHeals(t *testing.T) {
	fsys := fault.NewFS(fault.FSConfig{TornRenameRate: 1}, nil)
	s := openFS(t, fsys)
	if err := s.Put("k", json.RawMessage(`{"big":"payload payload payload"}`)); err == nil {
		t.Fatal("torn rename must fail the Put")
	}
	// The torn destination exists on disk...
	if _, err := os.Stat(s.pathFor("k")); err != nil {
		t.Fatalf("expected a torn artifact at the entry path: %v", err)
	}
	// ...but Get rejects and deletes it.
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get served a torn entry")
	}
	if _, err := os.Stat(s.pathFor("k")); !os.IsNotExist(err) {
		t.Fatal("Get left the torn artifact in place")
	}
	_, _, discards, _ := s.Stats()
	if discards != 1 {
		t.Fatalf("discards = %d, want 1", discards)
	}
	// With the disk healthy again the entry round-trips.
	fsys.SetDisabled(true)
	if err := s.Put("k", json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "2" {
		t.Fatalf("Get after heal = %q, %v", got, ok)
	}
}

func TestPutFsyncErrorDoesNotPublish(t *testing.T) {
	fsys := fault.NewFS(fault.FSConfig{SyncErrRate: 1}, nil)
	s := openFS(t, fsys)
	if err := s.Put("k", json.RawMessage(`1`)); err == nil {
		t.Fatal("fsync failure must fail the Put")
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v after failed sync, want 0", n, err)
	}
}

func TestDeleteRemovesEntry(t *testing.T) {
	s := open(t)
	if err := s.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("entry survived Delete")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete of a missing entry must be a no-op, got %v", err)
	}
	if err := (*Store)(nil).Delete("k"); err != nil {
		t.Fatalf("nil store Delete: %v", err)
	}
}

func TestRangeVisitsValidEntriesSorted(t *testing.T) {
	s := open(t)
	want := map[string]string{"a": `1`, "b": `2`, "c": `3`}
	for k, v := range want {
		if err := s.Put(k, json.RawMessage(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Plant one corrupt entry; Range must delete it and visit the rest.
	corrupt := filepath.Join(s.Dir(), KeyHash("zz")+suffix)
	if err := os.WriteFile(corrupt, []byte(`{"version":1,"key":"zz"`), 0o644); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	var order []string
	if err := s.Range(func(key string, payload json.RawMessage) bool {
		got[key] = string(payload)
		order = append(order, KeyHash(key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%s] = %q, want %q", k, got[k], v)
		}
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("Range order not sorted by content address: %v", order)
	}
	if _, err := os.Stat(corrupt); !os.IsNotExist(err) {
		t.Fatal("Range left the corrupt entry in place")
	}
	// Early stop.
	n := 0
	_ = s.Range(func(string, json.RawMessage) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored the stop signal: visited %d", n)
	}
	if err := (*Store)(nil).Range(func(string, json.RawMessage) bool { return true }); err != nil {
		t.Fatalf("nil store Range: %v", err)
	}
}

// TestVerifyConcurrentWithPut races the operator-facing scan against live
// writers: whatever interleaving the race detector finds, Verify must
// never delete a valid published entry and the store must end complete.
func TestVerifyConcurrentWithPut(t *testing.T) {
	s := open(t)
	const writers, perWriter = 4, 25
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i)
				if err := s.Put(key, json.RawMessage(`"v"`)); err != nil {
					t.Errorf("Put %s: %v", key, err)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	verifierDone := make(chan struct{})
	go func() {
		defer close(verifierDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := s.Verify(); err != nil {
				t.Errorf("Verify: %v", err)
				return
			}
		}
	}()
	writeWG.Wait()
	close(stop)
	<-verifierDone

	valid, discarded, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid != writers*perWriter || discarded != 0 {
		t.Fatalf("final Verify = %d valid, %d discarded; want %d/0", valid, discarded, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, ok := s.Get(fmt.Sprintf("w%d/k%d", w, i)); !ok {
				t.Fatalf("entry w%d/k%d lost", w, i)
			}
		}
	}
}
