// Package checkpoint is a content-addressed, crash-safe result store that
// makes long experiment sweeps resumable: each completed simulation unit
// is persisted under the hash of its fully-resolved run descriptor, so an
// interrupted sweep re-run against the same directory replays the cached
// units byte-identically and executes only the missing ones.
//
// Crash safety comes from three properties:
//
//   - entries are written via a same-directory temp file + rename, so a
//     kill mid-write never publishes a truncated entry;
//   - every entry embeds a checksum of its payload and the full canonical
//     key text; Get verifies both (plus the schema version) and discards —
//     deletes — anything that fails, treating it as a miss;
//   - keys hash the complete run configuration (workload, platform,
//     threads, fault and parallelism knobs), so a sweep re-run with any
//     knob changed misses cleanly instead of replaying stale results.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"charonsim/internal/atomicio"
)

// Version is the entry schema version; entries written by a different
// version are discarded on read.
const Version = 1

// suffix marks store entries; anything else in the directory is ignored.
const suffix = ".ckpt.json"

// Store is a directory-backed checkpoint store. All methods are safe for
// concurrent use: entries are immutable once published, and concurrent
// writers of the same key publish identical content (the store only ever
// holds deterministic results), so rename races are benign.
type Store struct {
	dir  string
	fsys atomicio.FS // nil = real filesystem; tests inject fault.FS

	hits, misses, discards, writeErrs atomic.Uint64

	errMu   sync.Mutex
	lastErr string // last Put failure with its path, for diagnostics
}

// Open creates (if needed) and opens a checkpoint directory. Created
// directories are 0o755 — owner-writable only; the store holds simulation
// results, and a world-writable directory would let any local user plant
// entries.
func Open(dir string) (*Store, error) { return OpenFS(dir, nil) }

// OpenFS is Open with an explicit filesystem for the write path (nil =
// the real filesystem). Fault-injection tests pass a fault.FS here to
// exercise the store's behaviour under ENOSPC, fsync errors, and torn
// renames without a failing disk.
func OpenFS(dir string, fsys atomicio.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, fsys: fsys}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk envelope.
type entry struct {
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum_sha256"`
	Payload  json.RawMessage `json:"payload"`
}

// KeyHash is the content address of a canonical key string — the hex
// digest the store names its entry files with. It is exported so other
// layers that key on the same canonical descriptors (the charond result
// cache derives its job ids from it) stay byte-compatible with the store
// without re-deriving the hashing scheme.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])[:32]
}

// pathFor content-addresses a canonical key string.
func (s *Store) pathFor(key string) string {
	return filepath.Join(s.dir, KeyHash(key)+suffix)
}

func payloadChecksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Get returns the payload stored for key. A missing, corrupt, truncated,
// key-mismatched, or version-mismatched entry is a miss; invalid entries
// are deleted so they are rebuilt rather than re-probed forever.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	path := s.pathFor(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil ||
		e.Version != Version ||
		e.Key != key ||
		e.Checksum != payloadChecksum(e.Payload) {
		os.Remove(path)
		s.discards.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Payload, true
}

// Put persists payload under key atomically. Store I/O must never fail a
// sweep, so errors are counted (see Stats) and reported to the caller but
// are safe to ignore: a failed Put just means that unit re-executes on
// resume. The first/most recent failure is kept with its path
// (LastWriteError) so a full disk is diagnosable from counters alone.
func (s *Store) Put(key string, payload json.RawMessage) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(entry{
		Version: Version, Key: key,
		Checksum: payloadChecksum(payload), Payload: payload,
	})
	if err != nil {
		return s.recordPutErr(fmt.Errorf("checkpoint: encode %q: %w", key, err))
	}
	path := s.pathFor(key)
	if err := atomicio.WriteFileBytesFS(s.fsys, path, data); err != nil {
		return s.recordPutErr(fmt.Errorf("checkpoint: %w", err))
	}
	return nil
}

// recordPutErr counts a write failure and remembers it for diagnostics.
func (s *Store) recordPutErr(err error) error {
	s.writeErrs.Add(1)
	s.errMu.Lock()
	s.lastErr = err.Error()
	s.errMu.Unlock()
	return err
}

// LastWriteError returns the most recent Put failure (path included), or
// "" when every write so far succeeded. Operators read it through
// charond's /v1/metrics to tell a full disk from a flaky one.
func (s *Store) LastWriteError() string {
	if s == nil {
		return ""
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

// Delete removes the entry stored for key, if any. The charond job
// journal uses it to garbage-collect terminal records on boot replay.
func (s *Store) Delete(key string) error {
	if s == nil {
		return nil
	}
	if err := os.Remove(s.pathFor(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: delete %q: %w", key, err)
	}
	return nil
}

// Range calls fn for every valid entry on disk, in sorted filename
// (content-address) order for determinism. Invalid entries — corrupt,
// truncated, version-mismatched — are deleted and skipped, like Get
// does. fn returning false stops the scan. Concurrent Puts may or may
// not be observed; published entries are immutable, so whatever Range
// reads is complete.
func (s *Store) Range(fn func(key string, payload json.RawMessage) bool) error {
	if s == nil {
		return nil
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, de := range ents {
		if !de.IsDir() && isEntryName(de.Name()) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			continue // raced with a Delete
		}
		var e entry
		if json.Unmarshal(raw, &e) != nil ||
			e.Version != Version ||
			e.Checksum != payloadChecksum(e.Payload) ||
			s.pathFor(e.Key) != path {
			os.Remove(path)
			s.discards.Add(1)
			continue
		}
		if !fn(e.Key, e.Payload) {
			return nil
		}
	}
	return nil
}

// Stats reports the store's counters: served hits, misses, discarded
// invalid entries, and write errors.
func (s *Store) Stats() (hits, misses, discards, writeErrs uint64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	return s.hits.Load(), s.misses.Load(), s.discards.Load(), s.writeErrs.Load()
}

// isEntryName reports whether a directory entry name is a published store
// entry. In-flight atomicio temp files are dot-prefixed
// (".<name>.tmp-<rand>"), so skipping dot names keeps Len stable under
// concurrent writers and keeps Verify from touching a write in progress.
func isEntryName(name string) bool {
	return !strings.HasPrefix(name, ".") && strings.HasSuffix(name, suffix)
}

// Len counts the published entries currently on disk (validity not
// checked). In-flight temp files from concurrent writers are excluded.
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && isEntryName(e.Name()) {
			n++
		}
	}
	return n, nil
}

// Verify scans every entry on disk, deletes the invalid ones, and returns
// (valid, discarded). The resume path does not need it — Get self-heals —
// but crash tests and operators use it to assert a directory is clean.
func (s *Store) Verify() (valid, discarded int, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: %w", err)
	}
	for _, de := range ents {
		if de.IsDir() || !isEntryName(de.Name()) {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		raw, rerr := os.ReadFile(path)
		var e entry
		if rerr != nil || json.Unmarshal(raw, &e) != nil ||
			e.Version != Version ||
			e.Checksum != payloadChecksum(e.Payload) ||
			s.pathFor(e.Key) != path {
			os.Remove(path)
			discarded++
			continue
		}
		valid++
	}
	return valid, discarded, nil
}
