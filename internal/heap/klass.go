// Package heap implements the JVM-like heap substrate the collector runs
// on: a generational heap (Eden, two Survivor semispaces, Old) with
// HotSpot-style object headers, a klass (class metadata) system with
// per-kind object-iteration strategies, bump-pointer allocation, and the
// old-to-young write barrier that dirties the card table.
//
// Addresses are simulated physical byte addresses (the paper pins huge
// pages, so virtual≡physical up to a constant); the heap owns a word
// arena backing them. The null reference is address 0.
package heap

import "fmt"

// KlassKind enumerates HotSpot's class metadata layouts. Section 4.4 notes
// 15 distinct metadata types, each needing its own iteration strategy;
// Charon's Scan&Push unit handles the dominant data kinds (instances and
// arrays) and leaves the rest (runtime metadata kinds) to the host.
type KlassKind uint8

const (
	// KindInstance is a plain Java object with fixed fields.
	KindInstance KlassKind = iota
	// KindInstanceRef is java.lang.ref.Reference and subclasses.
	KindInstanceRef
	// KindInstanceMirror is java.lang.Class instances.
	KindInstanceMirror
	// KindInstanceClassLoader is class loader instances.
	KindInstanceClassLoader
	// KindObjArray is an array of references.
	KindObjArray
	// KindTypeArray is an array of primitives.
	KindTypeArray
	// The remaining kinds are HotSpot runtime metadata objects; they occur
	// rarely in the heap and always take the host (non-offloaded) path.
	KindMethod
	KindConstMethod
	KindMethodData
	KindConstantPool
	KindConstantPoolCache
	KindKlass
	KindArrayKlass
	KindObjArrayKlass
	KindTypeArrayKlass

	numKlassKinds
)

// NumKlassKinds is the number of distinct metadata layouts (15, matching
// Section 4.4).
const NumKlassKinds = int(numKlassKinds)

var kindNames = [...]string{
	"instance", "instanceRef", "instanceMirror", "instanceClassLoader",
	"objArray", "typeArray", "method", "constMethod", "methodData",
	"constantPool", "constantPoolCache", "klass", "arrayKlass",
	"objArrayKlass", "typeArrayKlass",
}

// String returns the HotSpot-style kind name.
func (k KlassKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsDataKind reports whether objects of this kind are among the dominant
// data types Charon's Scan&Push unit supports in hardware.
func (k KlassKind) IsDataKind() bool {
	switch k {
	case KindInstance, KindInstanceRef, KindObjArray, KindTypeArray:
		return true
	}
	return false
}

// KlassID indexes the klass table (a stand-in for HotSpot's compressed
// class pointers).
type KlassID uint32

// Klass is one class's metadata.
type Klass struct {
	ID   KlassID
	Name string
	Kind KlassKind

	// InstanceWords is the total object size in 8-byte words including the
	// two header words. Valid for non-array kinds.
	InstanceWords int

	// RefOffsets lists the word offsets (from the object start) of
	// reference fields, ascending. Valid for non-array kinds.
	RefOffsets []int32

	// ElemBytes is the primitive element size for KindTypeArray (1, 2, 4
	// or 8). KindObjArray elements are always 8-byte references.
	ElemBytes int
}

// IsArray reports whether instances carry a length and variable size.
func (k *Klass) IsArray() bool {
	return k.Kind == KindObjArray || k.Kind == KindTypeArray
}

// Table is the klass registry. Index 0 is reserved (invalid), so a zeroed
// header word is never a valid klass.
type Table struct {
	klasses []*Klass
	byName  map[string]*Klass
}

// NewTable returns a table with the reserved null entry.
func NewTable() *Table {
	return &Table{klasses: []*Klass{nil}, byName: map[string]*Klass{}}
}

// Define registers a klass and assigns its ID. Panics on duplicate names
// or invalid geometry, since those are programming errors in workload
// definitions.
func (t *Table) Define(k Klass) *Klass {
	if k.Name == "" {
		panic("heap: klass with empty name")
	}
	if _, dup := t.byName[k.Name]; dup {
		panic("heap: duplicate klass " + k.Name)
	}
	if k.IsArray() {
		if k.Kind == KindObjArray {
			k.ElemBytes = 8
		}
		if k.ElemBytes != 1 && k.ElemBytes != 2 && k.ElemBytes != 4 && k.ElemBytes != 8 {
			panic(fmt.Sprintf("heap: klass %s: bad element size %d", k.Name, k.ElemBytes))
		}
	} else {
		if k.InstanceWords < HeaderWords {
			panic(fmt.Sprintf("heap: klass %s: size %d below header", k.Name, k.InstanceWords))
		}
		for _, off := range k.RefOffsets {
			if int(off) < HeaderWords || int(off) >= k.InstanceWords {
				panic(fmt.Sprintf("heap: klass %s: ref offset %d out of range", k.Name, off))
			}
		}
	}
	kp := &k
	kp.ID = KlassID(len(t.klasses))
	t.klasses = append(t.klasses, kp)
	t.byName[k.Name] = kp
	return kp
}

// Get returns the klass for id, or nil for the reserved/unknown ids.
func (t *Table) Get(id KlassID) *Klass {
	if int(id) >= len(t.klasses) {
		return nil
	}
	return t.klasses[id]
}

// ByName looks a klass up by name.
func (t *Table) ByName(name string) *Klass { return t.byName[name] }

// Len returns the number of defined klasses (excluding the reserved slot).
func (t *Table) Len() int { return len(t.klasses) - 1 }

// All iterates over defined klasses.
func (t *Table) All(fn func(*Klass)) {
	for _, k := range t.klasses[1:] {
		fn(k)
	}
}
