package heap

import "fmt"

// Addr is a simulated physical byte address. 0 is the null reference.
type Addr uint64

// Object header geometry, mirroring 64-bit HotSpot: one mark word plus one
// klass word (klass id and, for arrays, the length).
const (
	HeaderWords = 2
	HeaderBytes = HeaderWords * 8
	WordBytes   = 8
)

// Mark word layout:
//
//	bit 0      marked (live bit during MajorGC marking)
//	bits 1-5   age (survived MinorGC count)
//	bit 6      forwarded (forwarding address installed during copying GC)
//	bits 8-63  forwarding address >> 3
const (
	markBitMarked    = 1 << 0
	markAgeShift     = 1
	markAgeMask      = 0x1f << markAgeShift
	markBitForwarded = 1 << 6
	markFwdShift     = 8
)

// Config sizes the heap. The defaults mirror HotSpot's ParallelScavenge
// policy used in the paper: Young:Old = 1:2 (Section 5.1) and
// Eden:Survivor = 8:1:1 (SurvivorRatio=8).
type Config struct {
	Base          Addr   // lowest heap address; must be 4 KB aligned
	HeapBytes     uint64 // total heap capacity
	YoungFraction int    // young gen = HeapBytes / YoungFraction (default 3)
	SurvivorRatio int    // eden = SurvivorRatio × each survivor (default 8)
	TenureAge     int    // promote after this many MinorGC survivals (default 6)
}

// DefaultConfig returns the paper's sizing policy over the given capacity.
func DefaultConfig(heapBytes uint64) Config {
	return Config{Base: 1 << 28, HeapBytes: heapBytes, YoungFraction: 3, SurvivorRatio: 8, TenureAge: 6}
}

func (c *Config) fillDefaults() {
	if c.Base == 0 {
		c.Base = 1 << 28
	}
	if c.YoungFraction == 0 {
		c.YoungFraction = 3
	}
	if c.SurvivorRatio == 0 {
		c.SurvivorRatio = 8
	}
	if c.TenureAge == 0 {
		c.TenureAge = 6
	}
}

// Space is one contiguous region with bump-pointer allocation.
type Space struct {
	Name  string
	Base  Addr
	Limit Addr
	Top   Addr
}

// Capacity returns the space's size in bytes.
func (s *Space) Capacity() uint64 { return uint64(s.Limit - s.Base) }

// Used returns allocated bytes.
func (s *Space) Used() uint64 { return uint64(s.Top - s.Base) }

// Free returns remaining bytes.
func (s *Space) Free() uint64 { return uint64(s.Limit - s.Top) }

// Contains reports whether addr falls inside the space.
func (s *Space) Contains(a Addr) bool { return a >= s.Base && a < s.Limit }

// Reset empties the space.
func (s *Space) Reset() { s.Top = s.Base }

// alloc bumps the pointer by n words, returning 0 on exhaustion.
func (s *Space) alloc(words int) Addr {
	need := Addr(words * WordBytes)
	if s.Top+need > s.Limit {
		return 0
	}
	a := s.Top
	s.Top += need
	return a
}

// Stats tracks allocation activity.
type Stats struct {
	AllocatedObjects uint64
	AllocatedBytes   uint64
	PromotedObjects  uint64
	PromotedBytes    uint64
}

// Heap is the generational heap. Layout (low to high): Old, Eden,
// Survivor-From, Survivor-To, so that a full compaction packs the heap
// "densely on the left" exactly as Section 3.2 describes.
type Heap struct {
	cfg     Config
	klasses *Table

	words []uint64 // arena backing [Base, Base+HeapBytes)

	Old  *Space
	Eden *Space
	From *Space
	To   *Space

	// Filler is the reserved dead-range klass (see FillerKlassName).
	Filler *Klass

	roots []Addr

	// Barrier, if set, is invoked after every reference store with the
	// holding object, the slot address and the stored value. The collector
	// installs the card-table write barrier here.
	Barrier func(obj, slot, val Addr)

	Stats Stats
}

// FillerKlassName is the reserved klass used to stamp dead ranges during
// non-moving (mark-sweep) collection, exactly like HotSpot's filler int
// arrays: the heap stays linearly parseable through swept holes.
const FillerKlassName = "<filler>"

// New builds a heap. Panics on nonsensical configuration (programming
// error), never on allocation pressure.
func New(cfg Config, klasses *Table) *Heap {
	cfg.fillDefaults()
	if cfg.HeapBytes%4096 != 0 || cfg.HeapBytes == 0 {
		panic(fmt.Sprintf("heap: capacity %d not 4KB aligned", cfg.HeapBytes))
	}
	if uint64(cfg.Base)%4096 != 0 {
		panic("heap: base not 4KB aligned")
	}
	h := &Heap{cfg: cfg, klasses: klasses, words: make([]uint64, cfg.HeapBytes/WordBytes)}

	young := cfg.HeapBytes / uint64(cfg.YoungFraction) / 4096 * 4096
	old := cfg.HeapBytes - young
	surv := young / uint64(cfg.SurvivorRatio+2) / 4096 * 4096
	eden := young - 2*surv

	if klasses.ByName(FillerKlassName) == nil {
		klasses.Define(Klass{Name: FillerKlassName, Kind: KindTypeArray, ElemBytes: 8})
	}
	h.Filler = klasses.ByName(FillerKlassName)

	base := cfg.Base
	h.Old = &Space{Name: "old", Base: base, Limit: base + Addr(old), Top: base}
	base += Addr(old)
	h.Eden = &Space{Name: "eden", Base: base, Limit: base + Addr(eden), Top: base}
	base += Addr(eden)
	h.From = &Space{Name: "from", Base: base, Limit: base + Addr(surv), Top: base}
	base += Addr(surv)
	h.To = &Space{Name: "to", Base: base, Limit: base + Addr(surv), Top: base}
	return h
}

// Config returns the construction parameters (defaults filled).
func (h *Heap) Config() Config { return h.cfg }

// Klasses returns the klass table.
func (h *Heap) Klasses() *Table { return h.klasses }

// Bounds returns [base, limit) of the whole heap.
func (h *Heap) Bounds() (Addr, Addr) { return h.cfg.Base, h.cfg.Base + Addr(h.cfg.HeapBytes) }

// Contains reports whether a falls inside the heap.
func (h *Heap) Contains(a Addr) bool {
	return a >= h.cfg.Base && a < h.cfg.Base+Addr(h.cfg.HeapBytes)
}

// InYoung reports whether a is in eden or a survivor space.
func (h *Heap) InYoung(a Addr) bool { return a >= h.Eden.Base }

// InOld reports whether a is in the old generation.
func (h *Heap) InOld(a Addr) bool { return h.Old.Contains(a) }

func (h *Heap) idx(a Addr) int {
	if a < h.cfg.Base || a >= h.cfg.Base+Addr(h.cfg.HeapBytes) {
		panic(fmt.Sprintf("heap: address %#x out of bounds", uint64(a)))
	}
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("heap: unaligned word access %#x", uint64(a)))
	}
	return int((a - h.cfg.Base) / WordBytes)
}

// Word reads the 8-byte word at a.
func (h *Heap) Word(a Addr) uint64 { return h.words[h.idx(a)] }

// SetWord writes the 8-byte word at a.
func (h *Heap) SetWord(a Addr, v uint64) { h.words[h.idx(a)] = v }

// --- Object accessors -----------------------------------------------------

// AllocInstance allocates an instance of k in eden, zero-initialized.
// Returns 0 when eden is exhausted (the caller triggers a MinorGC).
func (h *Heap) AllocInstance(k *Klass) Addr {
	if k.IsArray() {
		panic("heap: AllocInstance on array klass " + k.Name)
	}
	return h.allocEden(k, k.InstanceWords, 0)
}

// AllocArray allocates an array of length elements of k in eden.
func (h *Heap) AllocArray(k *Klass, length int) Addr {
	if !k.IsArray() {
		panic("heap: AllocArray on non-array klass " + k.Name)
	}
	words := ArraySizeWords(k, length)
	return h.allocEden(k, words, length)
}

// ArraySizeWords computes an array's total size in words.
func ArraySizeWords(k *Klass, length int) int {
	return HeaderWords + (length*k.ElemBytes+WordBytes-1)/WordBytes
}

func (h *Heap) allocEden(k *Klass, words, length int) Addr {
	a := h.Eden.alloc(words)
	if a == 0 {
		return 0
	}
	h.initObject(a, k, words, length)
	h.Stats.AllocatedObjects++
	h.Stats.AllocatedBytes += uint64(words * WordBytes)
	return a
}

// initObject writes a fresh header and zeroes the body.
func (h *Heap) initObject(a Addr, k *Klass, words, length int) {
	i := h.idx(a)
	h.words[i] = 0 // mark word: unmarked, age 0
	h.words[i+1] = uint64(k.ID) | uint64(length)<<32
	for j := 2; j < words; j++ {
		h.words[i+j] = 0
	}
}

// KlassOf returns the klass of the object at a.
func (h *Heap) KlassOf(a Addr) *Klass {
	return h.klasses.Get(KlassID(h.Word(a+8) & 0xffffffff))
}

// ArrayLen returns the array length stored in the header.
func (h *Heap) ArrayLen(a Addr) int { return int(h.Word(a+8) >> 32) }

// SizeWords returns the total size of the object at a, in words.
func (h *Heap) SizeWords(a Addr) int {
	k := h.KlassOf(a)
	if k == nil {
		panic(fmt.Sprintf("heap: no klass for object at %#x", uint64(a)))
	}
	if k.IsArray() {
		return ArraySizeWords(k, h.ArrayLen(a))
	}
	return k.InstanceWords
}

// IterateRefSlots calls fn with the address of every reference slot of the
// object at a, using the klass kind's iteration strategy (Section 4.4).
func (h *Heap) IterateRefSlots(a Addr, fn func(slot Addr)) {
	k := h.KlassOf(a)
	switch k.Kind {
	case KindObjArray:
		n := h.ArrayLen(a)
		for i := 0; i < n; i++ {
			fn(a + Addr(HeaderBytes+i*WordBytes))
		}
	case KindTypeArray:
		// no references
	default:
		for _, off := range k.RefOffsets {
			fn(a + Addr(int(off)*WordBytes))
		}
	}
}

// RefCount returns the number of reference slots of the object at a.
func (h *Heap) RefCount(a Addr) int {
	k := h.KlassOf(a)
	switch k.Kind {
	case KindObjArray:
		return h.ArrayLen(a)
	case KindTypeArray:
		return 0
	default:
		return len(k.RefOffsets)
	}
}

// LoadRef reads the reference field at word offset off of the object at a.
func (h *Heap) LoadRef(a Addr, off int) Addr { return Addr(h.Word(a + Addr(off*WordBytes))) }

// StoreRef writes val into the reference field at word offset off of the
// object at a, running the write barrier.
func (h *Heap) StoreRef(a Addr, off int, val Addr) {
	slot := a + Addr(off*WordBytes)
	h.SetWord(slot, uint64(val))
	if h.Barrier != nil {
		h.Barrier(a, slot, val)
	}
}

// --- Mark word operations ---------------------------------------------------

// IsMarked reports the mark (live) bit.
func (h *Heap) IsMarked(a Addr) bool { return h.Word(a)&markBitMarked != 0 }

// SetMarked sets the mark bit.
func (h *Heap) SetMarked(a Addr) { h.SetWord(a, h.Word(a)|markBitMarked) }

// ClearMark clears the mark bit.
func (h *Heap) ClearMark(a Addr) { h.SetWord(a, h.Word(a)&^uint64(markBitMarked)) }

// Age returns the object's survival count.
func (h *Heap) Age(a Addr) int { return int((h.Word(a) & markAgeMask) >> markAgeShift) }

// SetAge stores the survival count (saturating at 31).
func (h *Heap) SetAge(a Addr, age int) {
	if age > 31 {
		age = 31
	}
	h.SetWord(a, h.Word(a)&^uint64(markAgeMask)|uint64(age)<<markAgeShift)
}

// IsForwarded reports whether a forwarding address is installed.
func (h *Heap) IsForwarded(a Addr) bool { return h.Word(a)&markBitForwarded != 0 }

// Forward installs a forwarding address in the old copy's mark word.
func (h *Heap) Forward(a, to Addr) {
	h.SetWord(a, h.Word(a)&uint64(markAgeMask)|markBitForwarded|uint64(to>>3)<<markFwdShift)
}

// Forwardee returns the forwarding address.
func (h *Heap) Forwardee(a Addr) Addr { return Addr(h.Word(a)>>markFwdShift) << 3 }

// ClearForward removes a forwarding installation, keeping the age bits
// (promotion-failure recovery: HotSpot's remove_forwarding_pointers).
func (h *Heap) ClearForward(a Addr) { h.SetWord(a, h.Word(a)&uint64(markAgeMask)) }

// --- Roots -----------------------------------------------------------------

// AddRoot registers a new root slot holding a and returns its handle.
func (h *Heap) AddRoot(a Addr) int {
	h.roots = append(h.roots, a)
	return len(h.roots) - 1
}

// SetRoot overwrites the root slot i.
func (h *Heap) SetRoot(i int, a Addr) { h.roots[i] = a }

// Root returns the value of root slot i.
func (h *Heap) Root(i int) Addr { return h.roots[i] }

// NumRoots returns the root count (including cleared slots).
func (h *Heap) NumRoots() int { return len(h.roots) }

// Roots returns the root slice (the collector updates it in place).
func (h *Heap) Roots() []Addr { return h.roots }

// ClearRoots drops all roots (workload teardown).
func (h *Heap) ClearRoots() { h.roots = h.roots[:0] }

// --- Walking -----------------------------------------------------------------

// WalkSpace visits every object in s from base to top in address order.
// fn receives the object address; objects are found by size arithmetic, so
// the space must contain a well-formed object sequence.
func (h *Heap) WalkSpace(s *Space, fn func(a Addr)) {
	for a := s.Base; a < s.Top; {
		fn(a)
		a += Addr(h.SizeWords(a) * WordBytes)
	}
}

// CopyWords copies n words from src to dst within the arena (the Copy
// primitive's functional effect). Ranges may overlap only if dst < src,
// matching compaction's left-packing direction.
func (h *Heap) CopyWords(dst, src Addr, n int) {
	di, si := h.idx(dst), h.idx(src)
	copy(h.words[di:di+n], h.words[si:si+n])
}

// Used returns total live-ish bytes (allocated tops) across spaces.
func (h *Heap) Used() uint64 {
	return h.Old.Used() + h.Eden.Used() + h.From.Used() + h.To.Used()
}

// SwapSurvivors exchanges the roles of From and To after a MinorGC.
func (h *Heap) SwapSurvivors() { h.From, h.To = h.To, h.From }

// WriteFiller stamps [a, a+words*8) as a dead filler array so the heap
// remains parseable (mark-sweep collection uses this for swept ranges).
// words must be at least HeaderWords.
func (h *Heap) WriteFiller(a Addr, words int) {
	if words < HeaderWords {
		panic("heap: filler smaller than a header")
	}
	length := (words - HeaderWords) * WordBytes / h.Filler.ElemBytes
	i := h.idx(a)
	h.words[i] = 0
	h.words[i+1] = uint64(h.Filler.ID) | uint64(length)<<32
}

// IsFiller reports whether the object at a is a dead-range filler.
func (h *Heap) IsFiller(a Addr) bool { return h.KlassOf(a) == h.Filler }
