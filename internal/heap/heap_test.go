package heap

import (
	"testing"
	"testing/quick"
)

// testKlasses builds a small universe of types.
func testKlasses() (*Table, *Klass, *Klass, *Klass) {
	t := NewTable()
	node := t.Define(Klass{Name: "Node", Kind: KindInstance, InstanceWords: 5, RefOffsets: []int32{2, 3}})
	arr := t.Define(Klass{Name: "Object[]", Kind: KindObjArray})
	bytes := t.Define(Klass{Name: "byte[]", Kind: KindTypeArray, ElemBytes: 1})
	return t, node, arr, bytes
}

func newTestHeap() (*Heap, *Klass, *Klass, *Klass) {
	tbl, node, arr, bytes := testKlasses()
	h := New(DefaultConfig(4<<20), tbl)
	return h, node, arr, bytes
}

func TestSpaceLayout(t *testing.T) {
	h, _, _, _ := newTestHeap()
	// Old below eden below from below to, contiguous, non-overlapping.
	if !(h.Old.Base < h.Old.Limit && h.Old.Limit == h.Eden.Base) {
		t.Fatalf("old/eden not contiguous: %+v %+v", h.Old, h.Eden)
	}
	if h.Eden.Limit != h.From.Base || h.From.Limit != h.To.Base {
		t.Fatal("young spaces not contiguous")
	}
	lo, hi := h.Bounds()
	if h.Old.Base != lo || h.To.Limit != hi {
		t.Fatalf("bounds mismatch: %v..%v vs %v..%v", h.Old.Base, h.To.Limit, lo, hi)
	}
	// Young:Old = 1:2 within page rounding.
	young := h.Eden.Capacity() + h.From.Capacity() + h.To.Capacity()
	if ratio := float64(h.Old.Capacity()) / float64(young); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("old:young = %.2f, want ~2", ratio)
	}
	// Eden ≈ 8x survivor.
	if ratio := float64(h.Eden.Capacity()) / float64(h.From.Capacity()); ratio < 7 || ratio > 9 {
		t.Fatalf("eden:survivor = %.2f, want ~8", ratio)
	}
	if h.From.Capacity() != h.To.Capacity() {
		t.Fatal("survivor semispaces differ in size")
	}
}

func TestAllocInstance(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	if a == 0 {
		t.Fatal("allocation failed on empty heap")
	}
	if !h.Eden.Contains(a) {
		t.Fatal("instance not in eden")
	}
	if h.KlassOf(a) != node {
		t.Fatal("klass not recorded")
	}
	if h.SizeWords(a) != 5 {
		t.Fatalf("size = %d", h.SizeWords(a))
	}
	// Fields zeroed, refs null.
	if h.LoadRef(a, 2) != 0 || h.LoadRef(a, 3) != 0 {
		t.Fatal("fields not zeroed")
	}
	b := h.AllocInstance(node)
	if b != a+5*WordBytes {
		t.Fatalf("bump allocation not contiguous: %#x then %#x", a, b)
	}
}

func TestAllocArray(t *testing.T) {
	h, _, arr, bytes := newTestHeap()
	oa := h.AllocArray(arr, 10)
	if h.ArrayLen(oa) != 10 {
		t.Fatalf("objarray len = %d", h.ArrayLen(oa))
	}
	if h.SizeWords(oa) != HeaderWords+10 {
		t.Fatalf("objarray size = %d", h.SizeWords(oa))
	}
	ba := h.AllocArray(bytes, 13) // 13 bytes → 2 words
	if h.SizeWords(ba) != HeaderWords+2 {
		t.Fatalf("byte[13] size = %d", h.SizeWords(ba))
	}
	if h.RefCount(oa) != 10 || h.RefCount(ba) != 0 {
		t.Fatal("ref counts wrong")
	}
}

func TestAllocExhaustionReturnsZero(t *testing.T) {
	tbl := NewTable()
	big := tbl.Define(Klass{Name: "Big", Kind: KindTypeArray, ElemBytes: 8})
	h := New(DefaultConfig(1<<20), tbl)
	n := 0
	for {
		if a := h.AllocArray(big, 1024); a == 0 {
			break
		}
		n++
		if n > 10000 {
			t.Fatal("eden never filled")
		}
	}
	if n == 0 {
		t.Fatal("no allocations before exhaustion")
	}
}

func TestIterateRefSlots(t *testing.T) {
	h, node, arr, _ := newTestHeap()
	n1 := h.AllocInstance(node)
	n2 := h.AllocInstance(node)
	a := h.AllocArray(arr, 3)

	h.StoreRef(n1, 2, n2)
	h.StoreRef(a, HeaderWords+1, n1)

	var slots []Addr
	h.IterateRefSlots(n1, func(s Addr) { slots = append(slots, s) })
	if len(slots) != 2 || slots[0] != n1+16 || slots[1] != n1+24 {
		t.Fatalf("instance slots %v", slots)
	}
	if h.LoadRef(n1, 2) != n2 {
		t.Fatal("stored ref not read back")
	}

	slots = nil
	h.IterateRefSlots(a, func(s Addr) { slots = append(slots, s) })
	if len(slots) != 3 {
		t.Fatalf("objarray slots %d", len(slots))
	}
	if Addr(h.Word(slots[1])) != n1 {
		t.Fatal("array element not stored")
	}
}

func TestWriteBarrierHook(t *testing.T) {
	h, node, _, _ := newTestHeap()
	var gotObj, gotSlot, gotVal Addr
	h.Barrier = func(obj, slot, val Addr) { gotObj, gotSlot, gotVal = obj, slot, val }
	n1 := h.AllocInstance(node)
	n2 := h.AllocInstance(node)
	h.StoreRef(n1, 3, n2)
	if gotObj != n1 || gotSlot != n1+24 || gotVal != n2 {
		t.Fatalf("barrier saw %#x %#x %#x", gotObj, gotSlot, gotVal)
	}
}

func TestMarkWordOps(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	if h.IsMarked(a) {
		t.Fatal("fresh object marked")
	}
	h.SetMarked(a)
	if !h.IsMarked(a) {
		t.Fatal("mark lost")
	}
	h.ClearMark(a)
	if h.IsMarked(a) {
		t.Fatal("mark not cleared")
	}

	h.SetAge(a, 3)
	if h.Age(a) != 3 {
		t.Fatalf("age = %d", h.Age(a))
	}
	h.SetAge(a, 99)
	if h.Age(a) != 31 {
		t.Fatalf("age should saturate at 31, got %d", h.Age(a))
	}
}

func TestForwarding(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	b := h.AllocInstance(node)
	h.SetAge(a, 5)
	if h.IsForwarded(a) {
		t.Fatal("fresh object forwarded")
	}
	h.Forward(a, b)
	if !h.IsForwarded(a) {
		t.Fatal("forwarding bit lost")
	}
	if h.Forwardee(a) != b {
		t.Fatalf("forwardee %#x, want %#x", h.Forwardee(a), b)
	}
	if h.Age(a) != 5 {
		t.Fatal("forwarding clobbered age")
	}
}

func TestForwardingRoundTripProperty(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	lo, hi := h.Bounds()
	f := func(raw uint64, age uint8) bool {
		to := Addr(raw) % (hi - lo) / 8 * 8 // any word-aligned heap offset
		to += lo
		h.SetWord(a, 0)
		h.SetAge(a, int(age%32))
		h.Forward(a, to)
		return h.Forwardee(a) == to && h.Age(a) == int(age%32) && h.IsForwarded(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoots(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	b := h.AllocInstance(node)
	i := h.AddRoot(a)
	j := h.AddRoot(b)
	if h.Root(i) != a || h.Root(j) != b || h.NumRoots() != 2 {
		t.Fatal("root bookkeeping")
	}
	h.SetRoot(i, 0)
	if h.Root(i) != 0 {
		t.Fatal("root not cleared")
	}
	h.ClearRoots()
	if h.NumRoots() != 0 {
		t.Fatal("roots not cleared")
	}
}

func TestWalkSpace(t *testing.T) {
	h, node, arr, _ := newTestHeap()
	want := []Addr{
		h.AllocInstance(node),
		h.AllocArray(arr, 7),
		h.AllocInstance(node),
	}
	var got []Addr
	h.WalkSpace(h.Eden, func(a Addr) { got = append(got, a) })
	if len(got) != len(want) {
		t.Fatalf("walk found %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestCopyWords(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	h.StoreRef(a, 2, 0xdead00)
	h.SetWord(a+32, 42)
	dst := h.Old.Base
	h.CopyWords(dst, a, 5)
	if h.Word(dst+16) != 0xdead00 || h.Word(dst+32) != 42 {
		t.Fatal("copy did not preserve contents")
	}
	if h.Word(dst+8) != h.Word(a+8) {
		t.Fatal("copy did not preserve header")
	}
}

func TestRegionPredicates(t *testing.T) {
	h, node, _, _ := newTestHeap()
	a := h.AllocInstance(node)
	if !h.InYoung(a) || h.InOld(a) {
		t.Fatal("eden object misclassified")
	}
	if !h.Contains(a) {
		t.Fatal("Contains false for live object")
	}
	if h.Contains(0) || h.Contains(h.To.Limit) {
		t.Fatal("Contains true outside heap")
	}
	if !h.InOld(h.Old.Base) {
		t.Fatal("old base not in old")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	h, _, _, _ := newTestHeap()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	h.Word(4)
}

func TestUnalignedPanics(t *testing.T) {
	h, _, _, _ := newTestHeap()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned access")
		}
	}()
	h.Word(h.Eden.Base + 3)
}

func TestSwapSurvivors(t *testing.T) {
	h, _, _, _ := newTestHeap()
	f, to := h.From, h.To
	h.SwapSurvivors()
	if h.From != to || h.To != f {
		t.Fatal("survivors not swapped")
	}
}

func TestStatsTracking(t *testing.T) {
	h, node, _, _ := newTestHeap()
	h.AllocInstance(node)
	h.AllocInstance(node)
	if h.Stats.AllocatedObjects != 2 || h.Stats.AllocatedBytes != 80 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestKlassTable(t *testing.T) {
	tbl, node, _, _ := testKlasses()
	if tbl.Len() != 3 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if tbl.ByName("Node") != node || tbl.Get(node.ID) != node {
		t.Fatal("lookup failed")
	}
	if tbl.Get(0) != nil || tbl.Get(999) != nil {
		t.Fatal("invalid ids should return nil")
	}
	count := 0
	tbl.All(func(*Klass) { count++ })
	if count != 3 {
		t.Fatalf("All visited %d", count)
	}
}

func TestKlassKindProperties(t *testing.T) {
	if NumKlassKinds != 15 {
		t.Fatalf("paper says 15 metadata types, enum has %d", NumKlassKinds)
	}
	if !KindInstance.IsDataKind() || !KindObjArray.IsDataKind() || !KindTypeArray.IsDataKind() {
		t.Fatal("data kinds misclassified")
	}
	if KindMethod.IsDataKind() || KindConstantPool.IsDataKind() {
		t.Fatal("metadata kinds misclassified as data")
	}
	if KindInstance.String() != "instance" || KindTypeArrayKlass.String() != "typeArrayKlass" {
		t.Fatal("kind names wrong")
	}
}

func TestDefineValidation(t *testing.T) {
	for name, k := range map[string]Klass{
		"empty name":    {Kind: KindInstance, InstanceWords: 3},
		"tiny instance": {Name: "T", Kind: KindInstance, InstanceWords: 1},
		"bad offset":    {Name: "B", Kind: KindInstance, InstanceWords: 3, RefOffsets: []int32{0}},
		"bad elem":      {Name: "E", Kind: KindTypeArray, ElemBytes: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			NewTable().Define(k)
		}()
	}
	// Duplicate names panic too.
	tbl := NewTable()
	tbl.Define(Klass{Name: "X", Kind: KindInstance, InstanceWords: 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate define should panic")
			}
		}()
		tbl.Define(Klass{Name: "X", Kind: KindInstance, InstanceWords: 2})
	}()
}

func BenchmarkAllocInstance(b *testing.B) {
	tbl := NewTable()
	node := tbl.Define(Klass{Name: "Node", Kind: KindInstance, InstanceWords: 5, RefOffsets: []int32{2}})
	h := New(DefaultConfig(64<<20), tbl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.AllocInstance(node) == 0 {
			h.Eden.Reset()
		}
	}
}
