// Package energy models power, energy and area for the evaluated systems,
// standing in for the paper's McPAT + CACTI + Synopsys flow with the
// published constants:
//
//   - DRAM access energy: 35 pJ/bit for DDR4 and 21 pJ/bit for HMC
//     (Table 2, citing MAGE [35] and Schmidt et al. [59]);
//   - an activity-based host-core model in McPAT's spirit (dynamic power
//     proportional to busy time, plus static/uncore power for the pause
//     duration);
//   - Charon processing-unit power calibrated to the paper's measurement
//     (2.98 W average, 4.51 W maximum for ALS, Section 5.3);
//   - the Table 4 component areas (total 1.947 mm², 0.487 mm² per cube).
package energy

import (
	"charonsim/internal/exec"
	"charonsim/internal/sim"
)

// DRAM energy constants from Table 2 (picojoules per bit).
const (
	DDR4PJPerBit = 35.0
	HMCPJPerBit  = 21.0
)

// Host power model constants (Westmere-class, 2.67 GHz):
// a fully busy core draws CoreDynamicW on top of CoreStaticW; the uncore
// (LLC, ring, IMC) draws UncoreStaticW whenever the package is awake.
const (
	CoreDynamicW  = 4.2
	CoreStaticW   = 1.1
	UncoreStaticW = 7.5
)

// Charon unit power: busy-time dynamic power per processing unit plus a
// small per-cube static component. Calibrated so the whole accelerator
// averages ~3 W across the six workloads (Section 5.3 reports 2.98 W).
const (
	UnitDynamicW = 1.05
	CubeStaticW  = 0.04
	CharonCubes  = 4
)

// Joules is energy in joules.
type Joules float64

// Breakdown decomposes one GC's energy.
type Breakdown struct {
	HostDynamic Joules
	HostStatic  Joules
	DRAM        Joules
	Units       Joules
}

// Total sums the components.
func (b Breakdown) Total() Joules {
	return b.HostDynamic + b.HostStatic + b.DRAM + b.Units
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.HostDynamic += o.HostDynamic
	b.HostStatic += o.HostStatic
	b.DRAM += o.DRAM
	b.Units += o.Units
}

// pjPerBit returns the DRAM energy constant for a platform.
func pjPerBit(kind exec.Kind) float64 {
	if kind == exec.KindDDR4 {
		return DDR4PJPerBit
	}
	return HMCPJPerBit
}

// ForGC computes the energy of one replayed GC event on the given
// platform with ncores host cores.
func ForGC(kind exec.Kind, r exec.Result, ncores int) Breakdown {
	var b Breakdown
	b.DRAM = Joules(float64(r.Traffic.Bytes()) * 8 * pjPerBit(kind) * 1e-12)
	b.HostDynamic = Joules(r.HostBusy.Seconds() * CoreDynamicW)
	b.HostStatic = Joules(r.Duration.Seconds() * (float64(ncores)*CoreStaticW + UncoreStaticW))
	b.Units = Joules(r.UnitBusy.Seconds()*UnitDynamicW) +
		Joules(r.Duration.Seconds()*CubeStaticW*CharonCubes)
	if kind == exec.KindDDR4 || kind == exec.KindHMC {
		b.Units = 0
	}
	return b
}

// AveragePower returns watts over the GC duration.
func AveragePower(b Breakdown, dur sim.Time) float64 {
	s := dur.Seconds()
	if s == 0 {
		return 0
	}
	return float64(b.Total()) / s
}

// CharonPower returns just the accelerator's average power over dur
// (Section 5.3's 2.98 W / 4.51 W figures).
func CharonPower(b Breakdown, dur sim.Time) float64 {
	s := dur.Seconds()
	if s == 0 {
		return 0
	}
	return float64(b.Units) / s
}

// --- Table 4: area model -----------------------------------------------------

// AreaRow is one Table 4 line.
type AreaRow struct {
	Component  string
	PerUnitMM2 float64
	Units      int
	TotalMM2   float64
}

// AreaTable reproduces Table 4: per-component synthesized areas (TSMC 40nm
// for logic, CACTI 45nm for SRAM structures) and unit counts.
func AreaTable() []AreaRow {
	rows := []AreaRow{
		{Component: "Command Queue", PerUnitMM2: 0.0049, Units: 4},
		{Component: "Request Queue(R)", PerUnitMM2: 0.0015, Units: 4},
		{Component: "Request Queue(W)", PerUnitMM2: 0.0162, Units: 4},
		{Component: "Metadata Array", PerUnitMM2: 0.0805, Units: 4},
		{Component: "Bitmap Cache", PerUnitMM2: 0.1562, Units: 1},
		{Component: "TLB", PerUnitMM2: 0.0706, Units: 4},
		{Component: "Copy/Search", PerUnitMM2: 0.0223, Units: 8},
		{Component: "Bitmap Count", PerUnitMM2: 0.0427, Units: 8},
		{Component: "Scan&Push", PerUnitMM2: 0.0720, Units: 8},
	}
	for i := range rows {
		rows[i].TotalMM2 = rows[i].PerUnitMM2 * float64(rows[i].Units)
	}
	return rows
}

// TotalArea sums the Table 4 rows (paper: 1.9470 mm²).
func TotalArea() float64 {
	var t float64
	for _, r := range AreaTable() {
		t += r.TotalMM2
	}
	return t
}

// AreaPerCube is the average logic-layer area per cube (paper: 0.4868 mm²).
func AreaPerCube() float64 { return TotalArea() / CharonCubes }

// HMCLogicLayerMM2 is the assumed logic-layer area (Section 5.3 cites
// ~100 mm² per cube).
const HMCLogicLayerMM2 = 100.0

// AreaFraction is Charon's share of the logic layer (paper: 0.49%).
func AreaFraction() float64 { return AreaPerCube() / HMCLogicLayerMM2 }

// PowerDensity returns mW/mm² for a given accelerator power draw spread
// over a cube's logic die, the quantity Section 5.3 compares against a
// passive heat sink's budget (paper: 45.1 mW/mm² maximum).
func PowerDensity(watts float64) float64 {
	return watts / CharonCubes / HMCLogicLayerMM2 * 1000
}
