package energy

import (
	"math"
	"testing"

	"charonsim/internal/exec"
	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

func TestDRAMEnergyConstants(t *testing.T) {
	// Table 2's published constants must not drift.
	if DDR4PJPerBit != 35.0 || HMCPJPerBit != 21.0 {
		t.Fatal("pJ/bit constants drifted from Table 2")
	}
	// 1 GB moved on DDR4 = 8e9 bits * 35 pJ = 0.28 J.
	r := exec.Result{Traffic: memsys.Stats{ReadBytes: 1e9}}
	b := ForGC(exec.KindDDR4, r, 8)
	if math.Abs(float64(b.DRAM)-0.28) > 0.001 {
		t.Fatalf("DDR4 DRAM energy = %v J, want 0.28", b.DRAM)
	}
	bh := ForGC(exec.KindHMC, r, 8)
	if bh.DRAM >= b.DRAM {
		t.Fatal("HMC bit energy should be lower than DDR4")
	}
}

func TestHostEnergyScalesWithBusyAndDuration(t *testing.T) {
	r := exec.Result{Duration: 10 * sim.Millisecond, HostBusy: 40 * sim.Millisecond}
	b := ForGC(exec.KindDDR4, r, 8)
	if b.HostDynamic <= 0 || b.HostStatic <= 0 {
		t.Fatal("host energy components missing")
	}
	r2 := r
	r2.HostBusy *= 2
	b2 := ForGC(exec.KindDDR4, r2, 8)
	if b2.HostDynamic != 2*b.HostDynamic {
		t.Fatal("dynamic energy not proportional to busy time")
	}
	if b2.HostStatic != b.HostStatic {
		t.Fatal("static energy should depend on duration only")
	}
}

func TestUnitEnergyOnlyOnCharon(t *testing.T) {
	r := exec.Result{Duration: sim.Millisecond, UnitBusy: 4 * sim.Millisecond}
	if got := ForGC(exec.KindDDR4, r, 8).Units; got != 0 {
		t.Fatalf("DDR4 platform charged unit energy %v", got)
	}
	if got := ForGC(exec.KindHMC, r, 8).Units; got != 0 {
		t.Fatalf("HMC platform charged unit energy %v", got)
	}
	if got := ForGC(exec.KindCharon, r, 8).Units; got <= 0 {
		t.Fatal("Charon platform missing unit energy")
	}
}

func TestBreakdownAddTotal(t *testing.T) {
	a := Breakdown{HostDynamic: 1, HostStatic: 2, DRAM: 3, Units: 4}
	if a.Total() != 10 {
		t.Fatalf("total = %v", a.Total())
	}
	var s Breakdown
	s.Add(a)
	s.Add(a)
	if s.Total() != 20 {
		t.Fatalf("add: %v", s.Total())
	}
}

func TestAveragePower(t *testing.T) {
	b := Breakdown{DRAM: 0.05} // 50 mJ over 10 ms = 5 W
	if p := AveragePower(b, 10*sim.Millisecond); math.Abs(p-5) > 1e-9 {
		t.Fatalf("power = %v", p)
	}
	if AveragePower(b, 0) != 0 {
		t.Fatal("zero duration")
	}
}

func TestAreaTableMatchesPaper(t *testing.T) {
	// Table 4's totals: 1.9470 mm² overall, 0.4868 mm² per cube.
	if math.Abs(TotalArea()-1.9470) > 0.0001 {
		t.Fatalf("total area %.4f, want 1.9470", TotalArea())
	}
	if math.Abs(AreaPerCube()-0.48675) > 0.0001 {
		t.Fatalf("per-cube area %.4f, want 0.4868", AreaPerCube())
	}
	// "Charon takes only 0.49% of the total logic layer area."
	if f := AreaFraction(); f < 0.0045 || f > 0.0052 {
		t.Fatalf("area fraction %.4f, want ~0.0049", f)
	}
	rows := AreaTable()
	if len(rows) != 9 {
		t.Fatalf("%d components, want 9", len(rows))
	}
	// Spot-check the largest: Scan&Push 8 units x 0.0720 = 0.5760.
	for _, r := range rows {
		if r.Component == "Scan&Push" && math.Abs(r.TotalMM2-0.5760) > 1e-9 {
			t.Fatalf("Scan&Push area %v", r.TotalMM2)
		}
	}
}

func TestPowerDensityBelowPassiveLimit(t *testing.T) {
	// Section 5.3: the 4.51 W maximum spread over the cubes' ~100 mm²
	// logic dies stays far below a passive heat sink's budget.
	d := PowerDensity(4.51)
	if d <= 0 {
		t.Fatal("power density not positive")
	}
	// Must be far below a passive heat sink's ~1 W/mm² ceiling.
	if d > 1000 {
		t.Fatalf("implausible density %v mW/mm²", d)
	}
}

func TestCharonPower(t *testing.T) {
	r := exec.Result{Duration: sim.Millisecond, UnitBusy: 2 * sim.Millisecond}
	b := ForGC(exec.KindCharon, r, 8)
	p := CharonPower(b, r.Duration)
	if p <= 0 {
		t.Fatal("no charon power")
	}
	if CharonPower(b, 0) != 0 {
		t.Fatal("zero duration")
	}
}
