package cli

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"charonsim"
)

// SimFlags is the simulation-configuration flag set shared by the
// charonsim batch CLI and the charond service front-end: one place
// defines the flag names, defaults, and help strings, and one place maps
// them onto a charonsim.Config, so the two commands cannot drift.
type SimFlags struct {
	Threads        int
	Factor         float64
	Workloads      string
	Parallel       int
	MetricsPath    string
	TracePath      string
	FaultRate      float64
	FaultSeed      int64
	Deadline       time.Duration
	RunTimeout     time.Duration
	CheckpointDir  string
	WatchdogStalls int
	WatchdogQueue  int
}

// Register installs the shared simulation flags on fs.
func (f *SimFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Threads, "threads", 8, "GC thread count")
	fs.Float64Var(&f.Factor, "factor", 1.5, "heap overprovisioning factor (1.0 = minimum heap)")
	fs.StringVar(&f.Workloads, "workloads", "", "comma-separated workload subset (default: all six)")
	fs.IntVar(&f.Parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, -1 = serial); output is identical at any setting")
	fs.StringVar(&f.MetricsPath, "metrics", "", "write a component-counter snapshot here after the run (.csv = CSV, otherwise JSON)")
	fs.StringVar(&f.TracePath, "trace", "", "write a chrome://tracing JSON event trace here (JSON only; requires -metrics)")
	fs.Float64Var(&f.FaultRate, "fault-rate", 0, "master fault-injection rate in [0, 1): link CRC errors plus derived ECC/bank/unit fault rates (0 = faults off)")
	fs.Int64Var(&f.FaultSeed, "fault-seed", 0, "deterministic fault pattern seed (requires a nonzero -fault-rate or -offload-deadline)")
	fs.DurationVar(&f.Deadline, "offload-deadline", 0, "Charon offload watchdog: offloads exceeding this re-run on the host cores (0 = off)")
	fs.DurationVar(&f.RunTimeout, "run-timeout", 0, "wall-clock budget per simulation run; also arms the engine watchdog heartbeat (0 = unbounded)")
	fs.StringVar(&f.CheckpointDir, "checkpoint-dir", "", "persist each completed replay unit here; re-running after an interruption resumes, executing only the missing units (incompatible with -metrics/-trace)")
	fs.IntVar(&f.WatchdogStalls, "watchdog-stalls", 0, "engine watchdog: consecutive zero-advance steps before a run is declared wedged (0 = default, -1 = disable)")
	fs.IntVar(&f.WatchdogQueue, "watchdog-queue", 0, "engine watchdog: event-queue depth bound (0 = default, -1 = disable)")
}

// Config maps the parsed flags onto a charonsim.Config. The -workloads
// string is tokenized with SplitWorkloads, so whitespace and empty tokens
// are tolerated; the Config is not yet validated — callers run
// Config.Validate for the full cross-field checks.
func (f *SimFlags) Config() (charonsim.Config, error) {
	cfg := charonsim.Config{Threads: f.Threads, HeapFactor: f.Factor, Parallelism: f.Parallel,
		MetricsPath: f.MetricsPath, TracePath: f.TracePath,
		FaultRate: f.FaultRate, FaultSeed: f.FaultSeed,
		OffloadDeadline: f.Deadline, RunTimeout: f.RunTimeout,
		CheckpointDir:  f.CheckpointDir,
		WatchdogStalls: f.WatchdogStalls, WatchdogQueue: f.WatchdogQueue}
	if f.Workloads != "" {
		wl, err := SplitWorkloads(f.Workloads)
		if err != nil {
			return cfg, err
		}
		cfg.Workloads = wl
	}
	return cfg, nil
}

// SplitWorkloads tokenizes a comma-separated workload list the way users
// actually type it: tokens are whitespace-trimmed and empty tokens are
// dropped, so "BS, KM" and "BS,,KM" both mean {BS, KM}. A non-empty input
// that yields no tokens at all (",", " , ") is a clear error rather than
// an empty list — an empty list silently means "all workloads", which is
// never what someone passing -workloads intended.
func SplitWorkloads(s string) ([]string, error) {
	names := CleanWorkloads(strings.Split(s, ","))
	if len(names) == 0 {
		return nil, fmt.Errorf("-workloads %q contains no workload names (expected comma-separated codes, e.g. %q)", s, "BS,KM")
	}
	return names, nil
}

// CleanWorkloads trims whitespace from each name and drops empty tokens.
// It returns nil (not an empty non-nil slice) when nothing survives, so
// callers can distinguish "nothing selected" with a plain len check.
func CleanWorkloads(names []string) []string {
	var out []string
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// SplitFloats tokenizes a comma-separated float list with the same
// tolerance SplitWorkloads gives names: whitespace-trimmed, empty tokens
// dropped, and a non-empty input yielding nothing at all is an error. A
// malformed number names the offending token.
func SplitFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a number (in float list %q)", tok, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%q contains no numbers (expected comma-separated floats, e.g. %q)", s, "1.2,1.5,2.0")
	}
	return out, nil
}

// SplitInts tokenizes a comma-separated integer list; same tolerance and
// error conventions as SplitFloats.
func SplitInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer (in int list %q)", tok, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%q contains no integers (expected comma-separated ints, e.g. %q)", s, "4,8,16")
	}
	return out, nil
}

// RenderReports writes experiment reports in the CLI's output format. The
// charond result endpoint uses the same function, which is what makes a
// served job's report byte-identical to the equivalent CLI invocation
// (minus the CLI's wall-clock trailer).
func RenderReports(w io.Writer, reports []*charonsim.Report) {
	for _, r := range reports {
		fmt.Fprintf(w, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Text)
	}
}
