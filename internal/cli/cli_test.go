package cli

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"charonsim/internal/checkpoint"
)

// TestHelperProcess re-enters the CLI inside the test binary so the
// signal tests can exercise a real process receiving a real SIGINT.
// Guarded by an env var: it is inert during a normal test run.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("CHARONSIM_CLI_HELPER") != "1" {
		t.Skip("not a helper invocation")
	}
	args := strings.Split(os.Getenv("CHARONSIM_CLI_ARGS"), "\x1f")
	os.Exit(Run(args, os.Stdout, os.Stderr))
}

func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig12") {
		t.Fatalf("-list output missing experiments:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := Run([]string{"-threads", "-3"}, &out, &errb); code != 2 {
		t.Fatalf("invalid config exited %d, want 2 (stderr: %s)", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := Run([]string{"-exp", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown experiment exited %d, want 1", code)
	}

	out.Reset()
	errb.Reset()
	if code := Run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	if code := Run([]string{"-exp", "table4"}, &out, &errb); code != 0 {
		t.Fatalf("table4 exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "== table4") {
		t.Fatalf("table4 output missing report header:\n%s", out.String())
	}
}

func TestCheckpointRejectsObservability(t *testing.T) {
	var out, errb bytes.Buffer
	code := Run([]string{"-exp", "table4", "-checkpoint-dir", t.TempDir(),
		"-metrics", filepath.Join(t.TempDir(), "m.json")}, &out, &errb)
	if code != 2 {
		t.Fatalf("checkpoint+metrics exited %d, want 2", code)
	}
}

// reportText strips the trailing wall-clock line, the only
// non-deterministic part of the CLI output.
func reportText(s string) string {
	lines := strings.Split(s, "\n")
	var keep []string
	for _, l := range lines {
		if strings.HasPrefix(l, "(") && strings.Contains(l, "experiment(s) in") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

// TestSigintResumesByteIdentical is the end-to-end crash-safety test:
// run a sweep in a subprocess with checkpointing on, SIGINT it once the
// first checkpoint entry lands, and assert (1) the clean partial exit
// code, (2) an uncorrupted checkpoint directory, and (3) that resuming
// from it produces output byte-identical to an uninterrupted run.
func TestSigintResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess sweep is slow")
	}
	ckptDir := t.TempDir()
	// Serial on purpose: dispatch stops at the first ctx check, so an
	// early signal is guaranteed to leave undone work behind to resume.
	args := []string{"-exp", "fig2", "-workloads", "BS", "-parallel", "1",
		"-checkpoint-dir", ckptDir}

	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess$")
	cmd.Env = append(os.Environ(), "CHARONSIM_CLI_HELPER=1",
		"CHARONSIM_CLI_ARGS="+strings.Join(args, "\x1f"))
	var sub bytes.Buffer
	cmd.Stdout = &sub
	cmd.Stderr = &sub
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer killer.Stop()

	// Wait for the first persisted unit, then interrupt.
	deadline := time.Now().Add(90 * time.Second)
	for {
		ents, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt.json"))
		if len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint entry appeared; subprocess output:\n%s", sub.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	code := cmd.ProcessState.ExitCode()
	if code != 3 {
		t.Fatalf("interrupted sweep exited %d (err %v), want 3; output:\n%s", code, err, sub.String())
	}
	if !strings.Contains(sub.String(), "interrupted") {
		t.Fatalf("no partial-sweep report on stderr:\n%s", sub.String())
	}

	// The interrupted directory must hold only complete, valid entries.
	st, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	valid, discarded, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if valid == 0 || discarded != 0 {
		t.Fatalf("Verify after SIGINT = %d valid, %d discarded; want >0, 0", valid, discarded)
	}

	// Resume in-process over the same directory: must finish cleanly...
	var resumed, errb bytes.Buffer
	if code := Run(args, &resumed, &errb); code != 0 {
		t.Fatalf("resume exited %d: %s", code, errb.String())
	}
	// ...and match an uninterrupted run byte for byte.
	golden := bytes.Buffer{}
	goldenArgs := []string{"-exp", "fig2", "-workloads", "BS", "-parallel", "1",
		"-checkpoint-dir", t.TempDir()}
	if code := Run(goldenArgs, &golden, &errb); code != 0 {
		t.Fatalf("golden run exited %d: %s", code, errb.String())
	}
	if got, want := reportText(resumed.String()), reportText(golden.String()); got != want {
		t.Fatalf("resumed output diverged from uninterrupted run:\n--- resumed ---\n%s\n--- golden ---\n%s", got, want)
	}
}

// TestHelpExitsZero: -h/-help ask for the usage text; flag.ErrHelp must
// map to exit 0, not the configuration-error code 2.
func TestHelpExitsZero(t *testing.T) {
	for _, flagName := range []string{"-h", "-help", "--help"} {
		var out, errb bytes.Buffer
		if code := Run([]string{flagName}, &out, &errb); code != 0 {
			t.Errorf("%s exited %d, want 0 (stderr: %s)", flagName, code, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of charonsim") {
			t.Errorf("%s printed no usage text:\n%s", flagName, errb.String())
		}
	}
}

// TestHelpExitsZeroSubprocess runs -h through a real process so the exit
// status the shell sees — not just Run's return value — is pinned.
func TestHelpExitsZeroSubprocess(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess$")
	cmd.Env = append(os.Environ(), "CHARONSIM_CLI_HELPER=1", "CHARONSIM_CLI_ARGS=-h")
	var sub bytes.Buffer
	cmd.Stdout = &sub
	cmd.Stderr = &sub
	err := cmd.Run()
	if code := cmd.ProcessState.ExitCode(); err != nil || code != 0 {
		t.Fatalf("charonsim -h exited %d (err %v); want 0. Output:\n%s", code, err, sub.String())
	}
	if !strings.Contains(sub.String(), "Usage of charonsim") {
		t.Fatalf("no usage text on -h:\n%s", sub.String())
	}
}

func TestSplitWorkloads(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  bool
	}{
		{in: "BS", want: []string{"BS"}},
		{in: "BS,KM", want: []string{"BS", "KM"}},
		{in: "BS, KM", want: []string{"BS", "KM"}},
		{in: " BS , KM ", want: []string{"BS", "KM"}},
		{in: "BS,,KM", want: []string{"BS", "KM"}},
		{in: ",BS,", want: []string{"BS"}},
		{in: "\tBS\n", want: []string{"BS"}},
		{in: ",", err: true},
		{in: " , ", err: true},
		{in: ",,,", err: true},
		{in: "   ", err: true},
	}
	for _, c := range cases {
		got, err := SplitWorkloads(c.in)
		if c.err {
			if err == nil {
				t.Errorf("SplitWorkloads(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitWorkloads(%q): %v", c.in, err)
			continue
		}
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("SplitWorkloads(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestWorkloadsFlagToleratesWhitespace: the end-to-end regression for the
// -workloads parsing fix — sloppy-but-unambiguous token lists run, and a
// token-free list is a clear configuration error.
func TestWorkloadsFlagToleratesWhitespace(t *testing.T) {
	var out, errb bytes.Buffer
	// table4 is render-only, so the run is fast — the point is that the
	// sloppy list survives SplitWorkloads and then Config.Validate.
	if code := Run([]string{"-exp", "table4", "-workloads", "BS, ,", "-parallel", "1"}, &out, &errb); code != 0 {
		t.Fatalf("whitespace workload list exited %d: %s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := Run([]string{"-exp", "fig2", "-workloads", " , "}, &out, &errb); code != 2 {
		t.Fatalf("token-free workload list exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no workload names") {
		t.Fatalf("token-free workload list error is not clear:\n%s", errb.String())
	}
}
