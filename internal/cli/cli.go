// Package cli implements the charonsim command: flag parsing, signal
// handling, and the exit-code contract. It lives behind the thin
// cmd/charonsim/main.go shim so the whole command — including SIGINT
// behaviour and the partial-sweep report — is testable in-process and as
// a subprocess.
//
// Exit codes:
//
//	0  success
//	1  run failure (a simulation unit errored or wedged)
//	2  configuration error (flag or Config validation)
//	3  interrupted — SIGINT/SIGTERM cancelled the sweep; completed
//	   reports were printed and checkpoints (if enabled) are intact
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"charonsim"
	"charonsim/internal/atomicio"
	"charonsim/internal/sim"
)

// Run executes the command with the given arguments (excluding the
// program name) and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp            = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		threads        = fs.Int("threads", 8, "GC thread count")
		factor         = fs.Float64("factor", 1.5, "heap overprovisioning factor (1.0 = minimum heap)")
		workloads      = fs.String("workloads", "", "comma-separated workload subset (default: all six)")
		parallel       = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, -1 = serial); output is identical at any setting")
		list           = fs.Bool("list", false, "list experiments and workloads, then exit")
		metricsPath    = fs.String("metrics", "", "write a component-counter snapshot here after the run (.csv = CSV, otherwise JSON)")
		tracePath      = fs.String("trace", "", "write a chrome://tracing JSON event trace here (JSON only; requires -metrics)")
		faultRate      = fs.Float64("fault-rate", 0, "master fault-injection rate in [0, 1): link CRC errors plus derived ECC/bank/unit fault rates (0 = faults off)")
		faultSeed      = fs.Int64("fault-seed", 0, "deterministic fault pattern seed (requires a nonzero -fault-rate or -offload-deadline)")
		deadline       = fs.Duration("offload-deadline", 0, "Charon offload watchdog: offloads exceeding this re-run on the host cores (0 = off)")
		runTimeout     = fs.Duration("run-timeout", 0, "wall-clock budget per simulation run; also arms the engine watchdog heartbeat (0 = unbounded)")
		checkpointDir  = fs.String("checkpoint-dir", "", "persist each completed replay unit here; re-running after an interruption resumes, executing only the missing units (incompatible with -metrics/-trace)")
		watchdogStalls = fs.Int("watchdog-stalls", 0, "engine watchdog: consecutive zero-advance steps before a run is declared wedged (0 = default, -1 = disable)")
		watchdogQueue  = fs.Int("watchdog-queue", 0, "engine watchdog: event-queue depth bound (0 = default, -1 = disable)")
		dumpPath       = fs.String("watchdog-dump", "", "on a watchdog abort, write the diagnostic dump to this file as well as stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:")
		for _, id := range charonsim.Experiments() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		fmt.Fprintln(stdout, "workloads:")
		for _, w := range charonsim.Workloads() {
			info, _ := charonsim.DescribeWorkload(w)
			fmt.Fprintf(stdout, "  %-4s %-28s %-9s paper heap %s\n", w, info.Long, info.Framework, info.PaperHeap)
		}
		return 0
	}

	cfg := charonsim.Config{Threads: *threads, HeapFactor: *factor, Parallelism: *parallel,
		MetricsPath: *metricsPath, TracePath: *tracePath,
		FaultRate: *faultRate, FaultSeed: *faultSeed,
		OffloadDeadline: *deadline, RunTimeout: *runTimeout,
		CheckpointDir:  *checkpointDir,
		WatchdogStalls: *watchdogStalls, WatchdogQueue: *watchdogQueue}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// SIGINT/SIGTERM cancel the context; the harness stops dispatching
	// simulation units, flushes what completed, and we print the partial
	// report below. A second signal kills the process the default way
	// (signal.NotifyContext unregisters on the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var reports []*charonsim.Report
	var err error
	if *exp == "all" {
		reports, err = charonsim.RunAllContext(ctx, cfg)
	} else {
		var r *charonsim.Report
		r, err = charonsim.RunContext(ctx, *exp, cfg)
		if r != nil {
			reports = append(reports, r)
		}
	}
	for _, r := range reports {
		fmt.Fprintf(stdout, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Text)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		var np *sim.NoProgressError
		if errors.As(err, &np) && *dumpPath != "" {
			writeDump(stderr, *dumpPath, np)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "interrupted: %d experiment(s) completed in %.1fs", len(reports), time.Since(start).Seconds())
			if cfg.CheckpointDir != "" {
				fmt.Fprintf(stderr, "; finished units are checkpointed in %s — re-run the same command to resume", cfg.CheckpointDir)
			}
			fmt.Fprintln(stderr)
			return 3
		}
		return 1
	}
	fmt.Fprintf(stdout, "(%d experiment(s) in %.1fs)\n", len(reports), time.Since(start).Seconds())
	return 0
}

// writeDump persists a watchdog diagnostic dump (atomically, so a partial
// dump never masquerades as a full one). Failures are reported but do not
// change the exit code — the dump is an aid, not a deliverable.
func writeDump(stderr io.Writer, path string, np *sim.NoProgressError) {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "charonsim watchdog abort: %s\n%s\n", np.Reason, np.Diag.String())
		return werr
	})
	if err != nil {
		fmt.Fprintf(stderr, "writing watchdog dump: %v\n", err)
		return
	}
	fmt.Fprintf(stderr, "watchdog diagnostics written to %s\n", path)
}
