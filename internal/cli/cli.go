// Package cli implements the charonsim command: flag parsing, signal
// handling, and the exit-code contract. It lives behind the thin
// cmd/charonsim/main.go shim so the whole command — including SIGINT
// behaviour and the partial-sweep report — is testable in-process and as
// a subprocess.
//
// Exit codes:
//
//	0  success
//	1  run failure (a simulation unit errored or wedged)
//	2  configuration error (flag or Config validation)
//	3  interrupted — SIGINT/SIGTERM cancelled the sweep; completed
//	   reports were printed and checkpoints (if enabled) are intact
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"charonsim"
	"charonsim/internal/atomicio"
	"charonsim/internal/sim"
)

// Run executes the command with the given arguments (excluding the
// program name) and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sf SimFlags
	sf.Register(fs)
	var (
		exp      = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = fs.Bool("list", false, "list experiments and workloads, then exit")
		dumpPath = fs.String("watchdog-dump", "", "on a watchdog abort, write the diagnostic dump to this file as well as stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h/-help asked for the usage text (already printed by Parse);
			// that is a success, not a configuration error.
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:")
		for _, id := range charonsim.Experiments() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		fmt.Fprintln(stdout, "workloads:")
		for _, w := range charonsim.Workloads() {
			info, _ := charonsim.DescribeWorkload(w)
			fmt.Fprintf(stdout, "  %-4s %-28s %-9s paper heap %s\n", w, info.Long, info.Framework, info.PaperHeap)
		}
		return 0
	}

	cfg, err := sf.Config()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// SIGINT/SIGTERM cancel the context; the harness stops dispatching
	// simulation units, flushes what completed, and we print the partial
	// report below. A second signal kills the process the default way
	// (signal.NotifyContext unregisters on the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var reports []*charonsim.Report
	if *exp == "all" {
		reports, err = charonsim.RunAllContext(ctx, cfg)
	} else {
		var r *charonsim.Report
		r, err = charonsim.RunContext(ctx, *exp, cfg)
		if r != nil {
			reports = append(reports, r)
		}
	}
	RenderReports(stdout, reports)
	if err != nil {
		fmt.Fprintln(stderr, err)
		var np *sim.NoProgressError
		if errors.As(err, &np) && *dumpPath != "" {
			writeDump(stderr, *dumpPath, np)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "interrupted: %d experiment(s) completed in %.1fs", len(reports), time.Since(start).Seconds())
			if cfg.CheckpointDir != "" {
				fmt.Fprintf(stderr, "; finished units are checkpointed in %s — re-run the same command to resume", cfg.CheckpointDir)
			}
			fmt.Fprintln(stderr)
			return 3
		}
		return 1
	}
	fmt.Fprintf(stdout, "(%d experiment(s) in %.1fs)\n", len(reports), time.Since(start).Seconds())
	return 0
}

// writeDump persists a watchdog diagnostic dump (atomically, so a partial
// dump never masquerades as a full one). Failures are reported but do not
// change the exit code — the dump is an aid, not a deliverable.
func writeDump(stderr io.Writer, path string, np *sim.NoProgressError) {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "charonsim watchdog abort: %s\n%s\n", np.Reason, np.Diag.String())
		return werr
	})
	if err != nil {
		fmt.Fprintf(stderr, "writing watchdog dump: %v\n", err)
		return
	}
	fmt.Fprintf(stderr, "watchdog diagnostics written to %s\n", path)
}
