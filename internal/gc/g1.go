package gc

import (
	"sort"

	"charonsim/internal/heap"
)

// This file implements a G1-style "mixed" collection, the second row of
// the paper's Table 1: after marking, the old generation's regions are
// ranked by garbage content — computed from the mark bitmaps, the Table 1
// note that G1 uses Bitmap Count "to identify the state of the entire
// heap" — and the garbage-first regions are *evacuated* (Copy) rather
// than compacted in place. Reclaimed regions become free-list space, so
// the heap is incrementally defragmented without a full compaction.
//
// Simplifications against real G1 (documented, not hidden): marking is a
// stop-the-world phase standing in for concurrent mark; remembered sets
// are approximated by the card-table scan that locates references into
// the collection set; and reclamation reuses the mark-sweep free-list
// machinery (evacuated husks have their mark bits cleared, evacuated
// copies are marked, then a sweep turns all dead ranges into free
// chunks), which keeps the heap linearly parseable even with objects
// spanning region boundaries.

// G1 policy constants.
const (
	// G1RegionBytes is the region size (scaled from G1's 1-32 MB regions
	// in the same proportion as the heaps).
	G1RegionBytes = 64 << 10
	// G1LiveThreshold: only regions at most this live (fraction) are
	// candidates (G1's G1MixedGCLiveThresholdPercent, default 85 — we use
	// the garbage-first spirit with a tighter bound at our scale).
	G1LiveThreshold = 0.60
	// G1MaxCSetRegions caps how many regions one mixed collection
	// evacuates (G1's incremental collection-set pacing).
	G1MaxCSetRegions = 8
)

// g1Region summarizes one old-generation region after marking.
type g1Region struct {
	index     int
	base      heap.Addr
	liveBytes uint64 // live bytes of objects *starting* in the region
}

// MixedGC performs a G1-style mixed collection of the old generation:
// mark, rank regions by garbage, evacuate the collection set, fix up
// references, and reclaim the emptied regions. Returns the recorded
// event.
func (c *Collector) MixedGC(reason string) *Event {
	ev := c.begin(MajorG1, reason)
	c.Stats.Mixed++

	c.markPhase(ev)

	regions := c.g1RegionLiveness(ev)
	cset := c.g1SelectCSet(regions)
	if len(cset) == 0 {
		// Nothing worth evacuating: the mixed collection degenerates to
		// its marking pause.
		return c.end(ev)
	}

	c.g1Evacuate(ev, regions, cset)
	c.g1FixupReferences(ev, regions, cset)

	// Reclaim: sweep dead ranges (husks, garbage, old fillers) into the
	// free list — the mark bitmaps were kept consistent by evacuation.
	freeBefore := c.oldAvailable()
	c.sweepOld(ev)
	if avail := c.oldAvailable(); avail > freeBefore {
		ev.ReclaimedBytes = avail - freeBefore
	}
	return c.end(ev)
}

// g1RegionBounds returns the old-gen region count and the region index of
// the allocation frontier (never collected: bump allocation lands there).
func (c *Collector) g1RegionBounds() (nregions, frontier int) {
	used := uint64(c.H.Old.Top - c.H.Old.Base)
	nregions = int(used / G1RegionBytes) // whole regions below the frontier
	frontier = nregions                  // the partial frontier region
	return
}

// g1RegionLiveness attributes each live object's bytes to the region it
// starts in. Each region's bitmap interrogation is recorded as a Bitmap
// Count invocation (Table 1's G1 usage: "scanning the bitmap to identify
// the state of the entire heap").
func (c *Collector) g1RegionLiveness(ev *Event) []g1Region {
	nregions, _ := c.g1RegionBounds()
	regions := make([]g1Region, nregions)
	for i := range regions {
		regions[i] = g1Region{index: i, base: c.H.Old.Base + heap.Addr(i*G1RegionBytes)}
		// Bitmap Count over this region's begin/end maps.
		c.record(Invocation{
			Prim: PrimBitmapCount,
			A:    c.Maps.BegByteAddr(c.Maps.WordIndex(regions[i].base)),
			N:    uint32(G1RegionBytes / 64),
		})
	}
	lo := c.Maps.WordIndex(c.H.Old.Base)
	hi := lo + uint64(c.H.Old.Used())/heap.WordBytes
	for idx := lo; ; {
		b, ok := c.Maps.FindNextBegin(idx, hi)
		if !ok {
			break
		}
		obj := c.Maps.AddrOfWord(b)
		size := uint64(c.H.SizeWords(obj) * heap.WordBytes)
		if r0 := int(obj-c.H.Old.Base) / G1RegionBytes; r0 < len(regions) {
			regions[r0].liveBytes += size
		}
		idx = b + size/heap.WordBytes
	}
	return regions
}

// g1SelectCSet picks the garbage-first collection set: eligible regions
// with live fraction <= G1LiveThreshold, most garbage first, capped at
// G1MaxCSetRegions, and bounded by the space available to receive the
// evacuated survivors.
func (c *Collector) g1SelectCSet(regions []g1Region) []int {
	var cand []int
	for i := range regions {
		r := &regions[i]
		liveFrac := float64(r.liveBytes) / G1RegionBytes
		if liveFrac <= G1LiveThreshold {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		ga := G1RegionBytes - regions[cand[a]].liveBytes
		gb := G1RegionBytes - regions[cand[b]].liveBytes
		if ga != gb {
			return ga > gb
		}
		return cand[a] < cand[b]
	})
	if len(cand) > G1MaxCSetRegions {
		cand = cand[:G1MaxCSetRegions]
	}
	// Evacuation-space pacing: drop regions whose survivors wouldn't fit.
	budget := c.oldAvailable()
	out := cand[:0]
	for _, i := range cand {
		need := regions[i].liveBytes
		if need > budget {
			continue
		}
		budget -= need
		out = append(out, i)
	}
	return out
}

// g1InCSet reports whether a falls in a collection-set region.
func g1InCSet(regions []g1Region, cset []int, oldBase heap.Addr, a heap.Addr) bool {
	idx := int(a-oldBase) / G1RegionBytes
	for _, r := range cset {
		if r == idx {
			return true
		}
	}
	return false
}

// g1Evacuate copies every live object *starting* in the collection set
// out of it, installing forwarding pointers and keeping the mark bitmaps
// consistent (husk bits cleared, copies marked) so the subsequent sweep
// reclaims exactly the dead ranges. Free-list chunks inside the CSet are
// dropped first so no evacuation destination lands in space about to be
// reclaimed.
func (c *Collector) g1Evacuate(ev *Event, regions []g1Region, cset []int) uint64 {
	inCSet := func(a heap.Addr) bool {
		return c.H.Old.Contains(a) && g1InCSet(regions, cset, c.H.Old.Base, a)
	}

	// Drop free chunks located inside the CSet.
	kept := c.freeList[:0]
	for _, ch := range c.freeList {
		if inCSet(ch.addr) {
			c.freeBytes -= uint64(ch.words * heap.WordBytes)
			continue
		}
		kept = append(kept, ch)
	}
	c.freeList = kept

	var moved uint64
	for _, ri := range cset {
		r := regions[ri]
		lo := c.Maps.WordIndex(r.base)
		hi := lo + G1RegionBytes/heap.WordBytes
		for idx := lo; ; {
			b, ok := c.Maps.FindNextBegin(idx, hi)
			if !ok {
				break
			}
			obj := c.Maps.AddrOfWord(b)
			size := c.H.SizeWords(obj)
			dst := c.allocOld(size)
			if dst == 0 {
				// Pacing guaranteed space; a failure means the free list
				// fragmented below this object's needs. Leave the rest of
				// the region in place (the sweep keeps it parseable).
				break
			}
			c.H.CopyWords(dst, obj, size)
			c.record(Invocation{Prim: PrimCopy, A: obj, B: dst, N: uint32(size * heap.WordBytes)})
			// Bitmap maintenance: the husk is dead, the copy is live.
			c.Maps.ClearObject(obj, size)
			c.Maps.MarkObject(dst, size)
			c.H.Forward(obj, dst)
			// The copy carried any old-to-young references with it: their
			// new slot locations must be card-tracked for the next scavenge.
			c.H.IterateRefSlots(dst, func(slot heap.Addr) {
				if t := heap.Addr(c.H.Word(slot)); t != 0 && c.H.InYoung(t) {
					c.Cards.Dirty(slot)
				}
			})
			bytes := uint64(size * heap.WordBytes)
			moved += bytes
			ev.CopiedBytes += bytes
			c.Stats.CopiedBytes += bytes
			idx = b + uint64(size)
		}
	}
	return moved
}

// g1FixupReferences rewrites every reference to an evacuated object. Real
// G1 consults remembered sets; we scan the card table (Search work) and
// walk the live objects, recording adjustment only for objects that held
// CSet references.
func (c *Collector) g1FixupReferences(ev *Event, regions []g1Region, cset []int) {
	inCSet := func(a heap.Addr) bool {
		return a != 0 && c.H.Old.Contains(a) && g1InCSet(regions, cset, c.H.Old.Base, a)
	}

	// Remembered-set scan cost: one Search pass over the old gen's cards.
	if c.H.Old.Used() > 0 {
		loCard := c.Cards.CardIndex(c.H.Old.Base)
		hiCard := c.Cards.CardIndex(c.H.Old.Top-1) + 1
		for pos := loCard; pos < hiCard; pos += SearchChunkCards {
			end := pos + SearchChunkCards
			if end > hiCard {
				end = hiCard
			}
			c.record(Invocation{Prim: PrimSearch, A: c.Cards.CardAddr(pos), N: uint32(end - pos)})
		}
	}

	// Fix roots.
	roots := c.H.Roots()
	for i, r := range roots {
		if inCSet(r) && c.H.IsForwarded(r) {
			roots[i] = c.H.Forwardee(r)
		}
	}

	// Fix heap slots: walk all live objects (at their post-evacuation
	// addresses) and rewrite CSet references.
	lo, hiAddr := c.H.Bounds()
	heapWords := uint64(hiAddr-lo) / heap.WordBytes
	for idx := uint64(0); ; {
		b, ok := c.Maps.FindNextBegin(idx, heapWords)
		if !ok {
			break
		}
		obj := c.Maps.AddrOfWord(b)
		size := uint64(c.H.SizeWords(obj))
		cur := obj
		if inCSet(obj) && c.H.IsForwarded(obj) {
			cur = c.H.Forwardee(obj)
		}
		updated := 0
		c.H.IterateRefSlots(cur, func(slot heap.Addr) {
			t := heap.Addr(c.H.Word(slot))
			if inCSet(t) && c.H.IsForwarded(t) {
				c.storeSlot(slot, c.H.Forwardee(t))
				updated++
			}
		})
		if updated > 0 {
			c.record(Invocation{Prim: PrimAdjust, A: cur, N: uint32(updated)})
		}
		idx = b + size
	}
	// Residual remembered-set maintenance (non-offloaded bookkeeping).
	c.record(Invocation{Prim: PrimOther, A: c.Lay.RootBase, N: uint32(16 + 2*ev.LiveObjects)})
}
