package gc

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventSummary is a compact, serializable view of one GC event, suitable
// for -verbose:gc style logs and offline analysis. The full invocation
// trace stays in memory only.
type EventSummary struct {
	Seq            int    `json:"seq"`
	Kind           string `json:"kind"`
	Reason         string `json:"reason"`
	LiveObjects    uint64 `json:"liveObjects"`
	LiveBytes      uint64 `json:"liveBytes"`
	CopiedBytes    uint64 `json:"copiedBytes"`
	PromotedBytes  uint64 `json:"promotedBytes"`
	ReclaimedBytes uint64 `json:"reclaimedBytes"`

	// Invocations and Volume count primitive calls and their N operands
	// (bytes or reference counts), keyed by primitive name.
	Invocations map[string]uint64 `json:"invocations"`
	Volume      map[string]uint64 `json:"volume"`
}

// Summarize condenses one event.
func Summarize(ev *Event) EventSummary {
	s := EventSummary{
		Seq: ev.Seq, Kind: ev.Kind.String(), Reason: ev.Reason,
		LiveObjects: ev.LiveObjects, LiveBytes: ev.LiveBytes,
		CopiedBytes: ev.CopiedBytes, PromotedBytes: ev.PromotedBytes,
		ReclaimedBytes: ev.ReclaimedBytes,
		Invocations:    map[string]uint64{},
		Volume:         map[string]uint64{},
	}
	counts := ev.CountByPrim()
	vols := ev.BytesByPrim()
	for p := 0; p < int(NumPrims); p++ {
		if counts[p] == 0 {
			continue
		}
		s.Invocations[Prim(p).String()] = counts[p]
		s.Volume[Prim(p).String()] = vols[p]
	}
	return s
}

// WriteLog streams a GC log as newline-delimited JSON (one event per
// line), the interchange format of cmd/gcstats -json.
func WriteLog(w io.Writer, log []*Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range log {
		if err := enc.Encode(Summarize(ev)); err != nil {
			return fmt.Errorf("gc: encoding event %d: %w", ev.Seq, err)
		}
	}
	return nil
}

// ReadLog parses a WriteLog stream back into summaries.
func ReadLog(r io.Reader) ([]EventSummary, error) {
	dec := json.NewDecoder(r)
	var out []EventSummary
	for dec.More() {
		var s EventSummary
		if err := dec.Decode(&s); err != nil {
			return out, fmt.Errorf("gc: decoding event %d: %w", len(out), err)
		}
		out = append(out, s)
	}
	return out, nil
}
