// Package gc implements a ParallelScavenge-style generational collector
// over the heap substrate, mirroring the structure the paper derives its
// primitives from (Figures 1, 3, 7, 8, 11):
//
//   - MinorGC: card-table Search for old-to-young references, then a
//     pop/Copy/Scan&Push drain loop that evacuates live young objects to
//     the To survivor space or promotes them to the old generation;
//   - MajorGC: a marking phase (Scan&Push + mark bitmaps), a summary
//     phase, a pointer-adjustment phase that computes every live object's
//     destination with Bitmap Count, and a compaction phase that Copies
//     live objects into a dense prefix of the heap.
//
// The collector is functionally complete (the heap is really collected —
// tests verify reachability preservation) and additionally *records* every
// primitive invocation as a compact work descriptor. The exec package
// replays those descriptors through the platform timing models (host CPU
// over DDR4/HMC, Charon units, ideal), which is how every figure of the
// paper is regenerated from a single functional run.
package gc

import "charonsim/internal/heap"

// Prim identifies one of the offloadable primitives (or the residual
// non-offloaded work).
type Prim uint8

const (
	// PrimCopy moves an object's bytes (Figure 7, top).
	PrimCopy Prim = iota
	// PrimSearch scans a card-table range for dirty cards (Figure 7, bottom).
	PrimSearch
	// PrimScanPush iterates an object's reference slots, pushing
	// unprocessed referents (Figure 11).
	PrimScanPush
	// PrimBitmapCount sums live words in a bitmap range (Figure 8).
	PrimBitmapCount
	// PrimAdjust is MajorGC pointer adjustment (not offloaded).
	PrimAdjust
	// PrimOther is residual work: pop, allocate, check-mark, root scan
	// (explicitly not offloaded, Section 3.3).
	PrimOther

	NumPrims
)

var primNames = [...]string{"Copy", "Search", "Scan&Push", "BitmapCount", "AdjustPointer", "Other"}

// String returns the primitive's display name.
func (p Prim) String() string {
	if int(p) < len(primNames) {
		return primNames[p]
	}
	return "?"
}

// Offloadable reports whether Charon accelerates this primitive.
func (p Prim) Offloadable() bool { return p <= PrimBitmapCount }

// RefVisit flags.
const (
	// RefNull: slot held null.
	RefNull uint8 = 1 << iota
	// RefPushed: referent pushed onto the object stack.
	RefPushed
	// RefForwardUpdate: slot rewritten with a forwarding address.
	RefForwardUpdate
	// RefNewlyMarked: mark_obj set a new bitmap bit (MajorGC).
	RefNewlyMarked
	// RefCardDirty: storing the slot dirtied a card (old→young).
	RefCardDirty
)

// RefVisit records one reference-slot visit inside a Scan&Push invocation:
// the slot read and the (pre-GC) target loaded from it, plus what happened.
type RefVisit struct {
	Slot   heap.Addr
	Target heap.Addr
	Flags  uint8
}

// Invocation is one primitive call, with primitive-specific operands:
//
//	Copy:        A=src, B=dst, N=bytes
//	Search:      A=first card-byte address, N=card bytes scanned
//	ScanPush:    A=object, B=stack-top address, N=#refs; Refs[RefOff:RefOff+RefLen]
//	BitmapCount: A=beg-map byte address, N=map bytes scanned (per map)
//	Adjust:      A=object, N=#slots rewritten
//	Other:       A=optional address, N=instruction estimate
type Invocation struct {
	Prim           Prim
	A, B           heap.Addr
	N              uint32
	RefOff, RefLen uint32
}

// Kind distinguishes GC event types.
type Kind uint8

const (
	// Minor is a young-generation scavenge.
	Minor Kind = iota
	// Major is a full mark-compact.
	Major
	// MajorMS is a CMS-style non-moving mark-sweep of the old generation
	// (Table 1's third collector: no compaction, no Bitmap Count).
	MajorMS
	// MajorG1 is a G1-style mixed collection: mark, compute per-region
	// liveness (Bitmap Count "scanning the bitmap to identify the state of
	// the entire heap", Table 1), then evacuate the garbage-first regions.
	MajorG1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Minor:
		return "minor"
	case MajorMS:
		return "marksweep"
	case MajorG1:
		return "mixed"
	}
	return "major"
}

// Moving reports whether this collection relocates objects.
func (k Kind) Moving() bool { return k != MajorMS }

// Mode selects the full-collection strategy, mirroring Table 1's three
// production collectors.
type Mode int

const (
	// ModePS: ParallelScavenge — compacting MajorGC (the paper's default).
	ModePS Mode = iota
	// ModeCMS: CMS-style non-moving mark-sweep, compaction only as the
	// concurrent-mode-failure fallback.
	ModeCMS
	// ModeG1: G1-style garbage-first mixed collections.
	ModeG1
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCMS:
		return "CMS"
	case ModeG1:
		return "G1"
	}
	return "ParallelScavenge"
}

// Event is one recorded GC: its full invocation trace plus functional
// statistics.
type Event struct {
	Kind   Kind
	Seq    int
	Reason string

	Invocations []Invocation
	Refs        []RefVisit

	// Functional outcome.
	LiveObjects    uint64
	LiveBytes      uint64
	CopiedBytes    uint64
	PromotedBytes  uint64
	ReclaimedBytes uint64
}

// CountByPrim tallies invocations per primitive.
func (e *Event) CountByPrim() [NumPrims]uint64 {
	var out [NumPrims]uint64
	for i := range e.Invocations {
		out[e.Invocations[i].Prim]++
	}
	return out
}

// BytesByPrim tallies the N operand per primitive (bytes for Copy/Search/
// BitmapCount, ref counts for ScanPush).
func (e *Event) BytesByPrim() [NumPrims]uint64 {
	var out [NumPrims]uint64
	for i := range e.Invocations {
		out[e.Invocations[i].Prim] += uint64(e.Invocations[i].N)
	}
	return out
}

// record appends an invocation if recording is enabled.
func (c *Collector) record(inv Invocation) {
	if c.ev != nil {
		c.ev.Invocations = append(c.ev.Invocations, inv)
	}
}

// recordRef appends a reference visit and returns its index.
func (c *Collector) recordRef(v RefVisit) {
	if c.ev != nil {
		c.ev.Refs = append(c.ev.Refs, v)
	}
}
