package gc

import (
	"fmt"

	"charonsim/internal/heap"
)

// VerifyHeap performs the consistency checks HotSpot runs under
// -XX:+VerifyBeforeGC/-XX:+VerifyAfterGC: every space parses as a dense
// object sequence, every reachable reference lands on a valid allocated
// object, and no live object carries a stale forwarding installation.
// Returns the first inconsistency found, or nil. Intended for tests and
// debugging; it walks the whole heap.
func (c *Collector) VerifyHeap() error {
	h := c.H

	// 1. Spaces parse: each [Base, Top) is a walkable object sequence with
	// valid klasses.
	for _, sp := range []*heap.Space{h.Old, h.Eden, h.From} {
		addr := sp.Base
		for addr < sp.Top {
			k := h.KlassOf(addr)
			if k == nil {
				return fmt.Errorf("gc: %s space: unparseable object at %#x (klass word %#x)",
					sp.Name, uint64(addr), h.Word(addr+8))
			}
			size := h.SizeWords(addr)
			if size < heap.HeaderWords {
				return fmt.Errorf("gc: %s space: object at %#x has size %d words",
					sp.Name, uint64(addr), size)
			}
			addr += heap.Addr(size * heap.WordBytes)
		}
		if addr != sp.Top {
			return fmt.Errorf("gc: %s space: walk overshot top by %d bytes",
				sp.Name, uint64(addr-sp.Top))
		}
	}

	// 2. Reachability: every reference from a reachable object points at a
	// valid allocated, unforwarded object.
	seen := map[heap.Addr]bool{}
	var stack []heap.Addr
	push := func(a heap.Addr, what string) error {
		if a == 0 || seen[a] {
			return nil
		}
		if !c.inAllocated(a) {
			return fmt.Errorf("gc: %s -> %#x outside allocated regions", what, uint64(a))
		}
		if h.KlassOf(a) == nil {
			return fmt.Errorf("gc: %s -> %#x has no klass", what, uint64(a))
		}
		if h.IsForwarded(a) {
			return fmt.Errorf("gc: reachable object %#x carries a forwarding pointer", uint64(a))
		}
		seen[a] = true
		stack = append(stack, a)
		return nil
	}
	for i, r := range h.Roots() {
		if err := push(r, fmt.Sprintf("root[%d]", i)); err != nil {
			return err
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var ierr error
		h.IterateRefSlots(a, func(slot heap.Addr) {
			if ierr != nil {
				return
			}
			ierr = push(heap.Addr(h.Word(slot)), fmt.Sprintf("slot %#x of %#x", uint64(slot), uint64(a)))
		})
		if ierr != nil {
			return ierr
		}
	}
	return nil
}

// inAllocated reports whether a lies inside an allocated (below-top)
// region of some space.
func (c *Collector) inAllocated(a heap.Addr) bool {
	h := c.H
	for _, sp := range []*heap.Space{h.Old, h.Eden, h.From, h.To} {
		if sp.Contains(a) {
			return a < sp.Top
		}
	}
	return false
}
