package gc

import (
	"bytes"
	"strings"
	"testing"
)

func recordedLog(t *testing.T) (*fixture, []*Event) {
	t.Helper()
	f := newFixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	for i := 0; i < 200; i++ {
		f.newNode(t)
	}
	f.c.MinorGC("one")
	f.c.MajorGC("two")
	return f, f.c.Log
}

func TestSummarize(t *testing.T) {
	_, log := recordedLog(t)
	s := Summarize(log[0])
	if s.Kind != "minor" || s.Seq != 0 || s.Reason != "one" {
		t.Fatalf("summary %+v", s)
	}
	if s.Invocations["Copy"] == 0 || s.Volume["Copy"] == 0 {
		t.Fatal("copy activity missing from summary")
	}
	if _, ok := s.Invocations["BitmapCount"]; ok {
		t.Fatal("minor GC should have no bitmap counts")
	}
	maj := Summarize(log[1])
	if maj.Kind != "major" || maj.Invocations["BitmapCount"] == 0 {
		t.Fatalf("major summary %+v", maj)
	}
}

func TestWriteReadLogRoundTrip(t *testing.T) {
	_, log := recordedLog(t)
	var buf bytes.Buffer
	if err := WriteLog(&buf, log); err != nil {
		t.Fatal(err)
	}
	// One JSON line per event.
	if n := strings.Count(buf.String(), "\n"); n != len(log) {
		t.Fatalf("%d lines for %d events", n, len(log))
	}
	back, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(log) {
		t.Fatalf("round trip %d events, want %d", len(back), len(log))
	}
	for i := range back {
		orig := Summarize(log[i])
		if back[i].Seq != orig.Seq || back[i].Kind != orig.Kind ||
			back[i].ReclaimedBytes != orig.ReclaimedBytes ||
			back[i].Invocations["Scan&Push"] != orig.Invocations["Scan&Push"] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], orig)
		}
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{\"seq\":0}\nnot-json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
