package gc

import "charonsim/internal/heap"

// AllocInstance allocates an instance, collecting on allocation failure
// like the JVM's slow path: MinorGC first (with the promotion-guarantee
// MajorGC if needed), then a last-ditch MajorGC. Returns 0 on OOM.
func (c *Collector) AllocInstance(k *heap.Klass) heap.Addr {
	if a := c.H.AllocInstance(k); a != 0 {
		return a
	}
	c.Collect("alloc-failure")
	if c.OOM {
		return 0
	}
	if a := c.H.AllocInstance(k); a != 0 {
		return a
	}
	c.fullGC("alloc-failure-full")
	if c.OOM {
		return 0
	}
	return c.H.AllocInstance(k)
}

// fullGC is the last-ditch collection: the mode's preferred full
// collection first, then a compacting MajorGC if space is still
// insufficient.
func (c *Collector) fullGC(reason string) {
	switch c.Mode {
	case ModeCMS:
		c.MarkSweepGC(reason)
	case ModeG1:
		c.MixedGC(reason)
	default:
		c.MajorGC(reason)
		return
	}
	if c.H.Eden.Free() > 0 && c.oldAvailable() > 0 {
		return
	}
	c.MajorGC(reason)
}

// AllocArray allocates an array with the same collection policy.
func (c *Collector) AllocArray(k *heap.Klass, length int) heap.Addr {
	if a := c.H.AllocArray(k, length); a != 0 {
		return a
	}
	c.Collect("alloc-failure")
	if c.OOM {
		return 0
	}
	if a := c.H.AllocArray(k, length); a != 0 {
		return a
	}
	c.fullGC("alloc-failure-full")
	if c.OOM {
		return 0
	}
	return c.H.AllocArray(k, length)
}
