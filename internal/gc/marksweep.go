package gc

import "charonsim/internal/heap"

// This file implements a CMS-style non-moving old-generation collection,
// the third row of the paper's Table 1: Copy and Scan&Push apply to CMS
// as-is, but Bitmap Count does not ("No compaction"). Young collections
// remain copying scavenges; the old generation is collected by
// mark-sweep, with dead ranges stamped as HotSpot-style filler objects
// (so the heap stays linearly parseable) and threaded onto a free list.
// When free-list allocation fails from fragmentation, the collector falls
// back to a full compaction — HotSpot's "concurrent mode failure".

// freeChunk is one hole in the old generation.
type freeChunk struct {
	addr  heap.Addr
	words int
}

// MarkSweepGC performs a CMS-style old-generation collection: mark the
// whole heap from the roots (Scan&Push with the mark bitmaps), then sweep
// the old generation's dead ranges into the free list. The young
// generation is left for the next MinorGC. Returns the recorded event.
func (c *Collector) MarkSweepGC(reason string) *Event {
	ev := c.begin(MajorMS, reason)
	c.Stats.MarkSweeps++
	oldUsedBefore := c.H.Old.Used()

	c.markPhase(ev)
	c.sweepOld(ev)

	// Live bytes were accumulated by markPhase over the whole heap; the
	// reclaimed amount is what the sweep carved out of the old gen.
	ev.ReclaimedBytes = oldUsedBefore - c.oldLiveBytes()
	return c.end(ev)
}

// oldLiveBytes sums old-gen bytes excluding fillers and free chunks.
func (c *Collector) oldLiveBytes() uint64 {
	var total uint64
	c.H.WalkSpace(c.H.Old, func(a heap.Addr) {
		if !c.H.IsFiller(a) {
			total += uint64(c.H.SizeWords(a) * heap.WordBytes)
		}
	})
	return total
}

// sweepOld walks the old generation with the mark bitmaps, replacing dead
// ranges (including previous fillers) with fresh fillers and rebuilding
// the free list. Sweeping streams over the bitmap and writes only dead
// headers — host-side work (PrimOther) in the paper's taxonomy, since CMS
// gets no Bitmap Count unit.
func (c *Collector) sweepOld(ev *Event) {
	c.freeList = c.freeList[:0]
	c.freeBytes = 0

	cursor := c.H.Old.Base
	top := c.H.Old.Top
	flushDead := func(lo, hi heap.Addr) {
		if hi <= lo {
			return
		}
		words := int(hi-lo) / heap.WordBytes
		c.H.WriteFiller(lo, words)
		c.freeList = append(c.freeList, freeChunk{addr: lo, words: words})
		c.freeBytes += uint64(words * heap.WordBytes)
	}

	deadStart := heap.Addr(0)
	for cursor < top {
		size := c.H.SizeWords(cursor)
		live := !c.H.IsFiller(cursor) && c.Maps.IsMarked(cursor)
		if live {
			if deadStart != 0 {
				flushDead(deadStart, cursor)
				deadStart = 0
			}
		} else if deadStart == 0 {
			deadStart = cursor
		}
		cursor += heap.Addr(size * heap.WordBytes)
	}
	if deadStart != 0 {
		// Trailing dead range: give it back to the bump pointer instead of
		// the free list (cheaper allocation, less fragmentation).
		c.H.Old.Top = deadStart
	}

	// Sweep cost: one linear pass over the old generation's bitmap plus a
	// header write per transition. Recorded as non-offloaded work.
	oldWords := uint64(c.H.Old.Used()) / heap.WordBytes
	c.record(Invocation{Prim: PrimOther, A: c.Maps.BegByteAddr(c.Maps.WordIndex(c.H.Old.Base)),
		N: uint32(oldWords/8 + uint64(len(c.freeList))*12)})
}

// allocOldFree allocates from the mark-sweep free list, first-fit,
// splitting chunks and re-stamping remainders as fillers. Returns 0 when
// no chunk fits (fragmentation).
func (c *Collector) allocOldFree(words int) heap.Addr {
	for i := range c.freeList {
		ch := &c.freeList[i]
		if ch.words < words {
			continue
		}
		a := ch.addr
		rest := ch.words - words
		// A remainder too small to hold a header is absorbed into the
		// allocation (HotSpot's minimum-object-size rule).
		if rest > 0 && rest < heap.HeaderWords {
			words += rest
			rest = 0
		}
		if rest == 0 {
			c.freeList = append(c.freeList[:i], c.freeList[i+1:]...)
		} else {
			ch.addr += heap.Addr(words * heap.WordBytes)
			ch.words = rest
			c.H.WriteFiller(ch.addr, rest)
		}
		c.freeBytes -= uint64(words * heap.WordBytes)
		return a
	}
	return 0
}

// oldAvailable is the promotion headroom in CMS mode: bump room plus the
// free list.
func (c *Collector) oldAvailable() uint64 {
	return c.H.Old.Free() + c.freeBytes
}
