package gc

import "charonsim/internal/heap"

// MajorGC runs the full mark-compact collection of Figure 3(b): a marking
// phase driven by Scan&Push with the begin/end mark bitmaps, a (cheap)
// summary phase, a pointer-adjustment phase whose destination calculations
// are the Bitmap Count primitive, and a compaction phase of Copy
// primitives that packs all live objects into a dense prefix of the old
// generation.
func (c *Collector) MajorGC(reason string) *Event {
	ev := c.begin(Major, reason)
	c.Stats.Majors++
	usedBefore := c.H.Used()

	c.markPhase(ev)

	newAddrs, liveOrder, totalLiveWords := c.summarize(ev)
	if totalLiveWords*heap.WordBytes > c.H.Old.Capacity() {
		// The live set cannot fit the old generation: the JVM would throw
		// OutOfMemoryError. Latch OOM and leave the heap unchanged (marks
		// remain but are cleared on the next mark phase).
		c.OOM = true
		c.ev = nil
		c.Log = append(c.Log, ev)
		return ev
	}

	c.adjustPointers(ev, newAddrs, liveOrder)
	c.compact(ev, newAddrs, liveOrder, totalLiveWords)

	// Compaction eliminates every hole: the mark-sweep free list is gone.
	c.freeList = c.freeList[:0]
	c.freeBytes = 0

	ev.ReclaimedBytes = usedBefore - ev.LiveBytes
	return c.end(ev)
}

// markPhase traverses the object graph from the roots, marking live
// objects in the begin/end bitmaps (follow_contents, Figure 11).
func (c *Collector) markPhase(ev *Event) {
	c.Maps.ClearAll()
	// Bitmap clearing is bulk memset work on the host.
	c.record(Invocation{Prim: PrimOther, A: c.Maps.BegBase, N: uint32(c.Maps.SizeBytes() * 2 / 64)})

	c.Stack.Reset()
	for _, r := range c.H.Roots() {
		if r != 0 && c.Maps.MarkObject(r, c.H.SizeWords(r)) {
			c.Stack.Push(r)
		}
	}
	c.record(Invocation{Prim: PrimOther, A: c.Lay.RootBase, N: uint32(8 + 4*c.H.NumRoots())})

	for {
		obj, ok := c.Stack.Pop()
		if !ok {
			break
		}
		c.record(Invocation{Prim: PrimOther, A: c.Stack.TopAddr(), N: 10})
		c.scanMajorObject(ev, obj)

		size := uint64(c.H.SizeWords(obj) * heap.WordBytes)
		ev.LiveObjects++
		ev.LiveBytes += size
	}
}

// scanMajorObject is one Scan&Push invocation in the marking phase: load
// each reference, and for unmarked targets perform mark_obj (a bitmap
// read-modify-write) and push.
func (c *Collector) scanMajorObject(ev *Event, obj heap.Addr) {
	refOff := uint32(len(ev.Refs))
	nrefs := 0
	c.H.IterateRefSlots(obj, func(slot heap.Addr) {
		nrefs++
		t := heap.Addr(c.H.Word(slot))
		v := RefVisit{Slot: slot, Target: t}
		switch {
		case t == 0:
			v.Flags = RefNull
		case c.Maps.IsMarked(t):
			// already traversed
		default:
			c.Maps.MarkObject(t, c.H.SizeWords(t))
			c.Stack.Push(t)
			v.Flags = RefNewlyMarked | RefPushed
		}
		c.recordRef(v)
	})
	c.record(Invocation{
		Prim: PrimScanPush, A: obj, B: c.Stack.TopAddr(),
		N: uint32(nrefs), RefOff: refOff, RefLen: uint32(len(ev.Refs)) - refOff,
	})
}

// summarize computes each live object's destination. Region-level live
// counts form the summary phase; the per-object offset within its region
// is the Bitmap Count primitive exactly as Section 4.3 describes
// (live_words_in_range from the region start to the object).
func (c *Collector) summarize(ev *Event) (map[heap.Addr]heap.Addr, []heap.Addr, uint64) {
	lo, hi := c.H.Bounds()
	heapWords := uint64(hi-lo) / heap.WordBytes
	regionWords := uint64(RegionBytes / heap.WordBytes)
	nregions := (heapWords + regionWords - 1) / regionWords

	// Summary: per-region live-word counts (the cheap summary phase the
	// paper measures at <0.03% of MajorGC). Each region query is Bitmap
	// Count work. Note that objects spanning a region boundary are counted
	// by neither side under Figure 8's paired-bits semantics; HotSpot
	// carries an explicit partial_obj_size per region for them, and we
	// account for them below via the exact running total.
	for r := uint64(0); r < nregions; r++ {
		rlo, rhi := r*regionWords, (r+1)*regionWords
		if rhi > heapWords {
			rhi = heapWords
		}
		c.Maps.LiveWordsInRange(rlo, rhi)
	}

	// Per-object destinations, walking live objects in address order. The
	// collector issues a Bitmap Count over [region start, object) per
	// object (the paper's live_words_in_range usage); the destination
	// itself is the exact cumulative live-word prefix, which equals region
	// prefix + in-region offset + spanning-object (partial_obj_size)
	// correction.
	newAddrs := make(map[heap.Addr]heap.Addr, ev.LiveObjects)
	liveOrder := make([]heap.Addr, 0, ev.LiveObjects)
	idx := uint64(0)
	var cum uint64
	for {
		b, ok := c.Maps.FindNextBegin(idx, heapWords)
		if !ok {
			break
		}
		rlo := b / regionWords * regionWords
		c.Maps.LiveWordsInRange(rlo, b)
		// One Bitmap Count invocation: both maps read over [rlo, b).
		c.record(Invocation{
			Prim: PrimBitmapCount,
			A:    c.Maps.BegByteAddr(rlo),
			N:    uint32((b-rlo)/8 + 1),
		})
		obj := c.Maps.AddrOfWord(b)
		newAddrs[obj] = c.H.Old.Base + heap.Addr(cum*heap.WordBytes)
		liveOrder = append(liveOrder, obj)
		size := uint64(c.H.SizeWords(obj))
		cum += size
		idx = b + size
	}
	return newAddrs, liveOrder, cum
}

// adjustPointers rewrites every reference slot of every live object (and
// the roots) to its referent's destination address. Not offloaded: Figure
// 4(b)'s "Adjust Pointer" share.
func (c *Collector) adjustPointers(ev *Event, newAddrs map[heap.Addr]heap.Addr, liveOrder []heap.Addr) {
	for _, obj := range liveOrder {
		n := 0
		c.H.IterateRefSlots(obj, func(slot heap.Addr) {
			t := heap.Addr(c.H.Word(slot))
			if t == 0 {
				return
			}
			na, ok := newAddrs[t]
			if !ok {
				panic("gc: live object references unmarked target during adjust")
			}
			c.H.SetWord(slot, uint64(na))
			n++
		})
		c.record(Invocation{Prim: PrimAdjust, A: obj, N: uint32(n)})
	}
	roots := c.H.Roots()
	for i, r := range roots {
		if r == 0 {
			continue
		}
		roots[i] = newAddrs[r]
	}
	c.record(Invocation{Prim: PrimOther, A: c.Lay.RootBase, N: uint32(8 + 4*len(roots))})
}

// compact moves every live object to its destination in ascending address
// order (destinations never exceed sources, so in-place left-packing is
// safe), then resets the spaces.
func (c *Collector) compact(ev *Event, newAddrs map[heap.Addr]heap.Addr, liveOrder []heap.Addr, totalLiveWords uint64) {
	for _, obj := range liveOrder {
		size := c.H.SizeWords(obj)
		dst := newAddrs[obj]
		if dst > obj {
			panic("gc: compaction would move an object right")
		}
		if dst != obj {
			c.H.CopyWords(dst, obj, size)
			c.record(Invocation{Prim: PrimCopy, A: obj, B: dst, N: uint32(size * heap.WordBytes)})
			ev.CopiedBytes += uint64(size * heap.WordBytes)
		} else {
			// Dense-prefix object: checked but not moved.
			c.record(Invocation{Prim: PrimOther, A: obj, N: 6})
		}
	}

	c.H.Old.Top = c.H.Old.Base + heap.Addr(totalLiveWords*heap.WordBytes)
	c.H.Eden.Reset()
	c.H.From.Reset()
	c.H.To.Reset()

	// Young is empty: no old-to-young references can exist.
	c.Cards.ClearAll()
}
