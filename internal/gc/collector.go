package gc

import (
	"fmt"

	"charonsim/internal/gcmeta"
	"charonsim/internal/heap"
)

// SearchChunkCards is the card-table range covered by one offloaded Search
// invocation: 512 card bytes (256 KB of heap), a granularity large enough
// to amortize the offload packet and small enough to bound wasted scans.
const SearchChunkCards = 512

// RegionBytes is the compaction region granularity used by the summary
// phase (HotSpot's ParallelCompact uses fixed-size regions the same way;
// 16 KB keeps the per-object live_words_in_range queries — the Bitmap
// Count primitive — meaningfully sized at our heap scale).
const RegionBytes = 16384

// Layout places the collector's metadata structures in the simulated
// address space, above the heap.
type Layout struct {
	CardBase   heap.Addr
	BitmapBase heap.Addr
	StackBase  heap.Addr
	RootBase   heap.Addr
}

// DefaultLayout stacks metadata regions directly above the heap.
func DefaultLayout(h *heap.Heap) Layout {
	_, hi := h.Bounds()
	align := func(a heap.Addr) heap.Addr { return (a + 4095) / 4096 * 4096 }
	cardBase := align(hi)
	cardBytes := heap.Addr(h.Config().HeapBytes/gcmeta.CardBytes + 1)
	bitmapBase := align(cardBase + cardBytes)
	bitmapBytes := heap.Addr(h.Config().HeapBytes / 64 * 2) // beg + end maps
	stackBase := align(bitmapBase + bitmapBytes + 8192)
	rootBase := align(stackBase + 1<<22)
	return Layout{CardBase: cardBase, BitmapBase: bitmapBase, StackBase: stackBase, RootBase: rootBase}
}

// Stats accumulates collector activity across events.
type Stats struct {
	Minors, Majors uint64
	MarkSweeps     uint64
	Mixed          uint64
	PromotedBytes  uint64
	CopiedBytes    uint64
}

// Collector drives garbage collection over a heap.
type Collector struct {
	H     *heap.Heap
	Cards *gcmeta.CardTable
	Maps  *gcmeta.MarkBitmaps
	Stack *gcmeta.ObjectStack
	Lay   Layout

	// Recording enables invocation capture into each Event.
	Recording bool

	// Log holds all recorded events in order.
	Log []*Event

	// OOM is latched when a MajorGC cannot fit the live set into the old
	// generation; allocation then fails permanently.
	OOM bool

	// Mode selects the full-collection strategy (ParallelScavenge
	// compaction, CMS mark-sweep, or G1 mixed collections).
	Mode Mode

	// Mark-sweep free list over the old generation (CMS mode).
	freeList  []freeChunk
	freeBytes uint64

	// promoFailed collects objects self-forwarded during a scavenge whose
	// promotion could not be satisfied (fragmentation can defeat the
	// space guarantee in CMS mode); a compacting full GC follows.
	promoFailed []heap.Addr

	Stats Stats

	ev  *Event
	seq int

	// scratch for card processing
	cardSpan []heap.Addr // first object intersecting each old-gen card
}

// New wires a collector to h, installing the card-table write barrier.
func New(h *heap.Heap) *Collector {
	lay := DefaultLayout(h)
	lo, hi := h.Bounds()
	c := &Collector{
		H:     h,
		Cards: gcmeta.NewCardTable(lo, hi, lay.CardBase),
		Maps:  gcmeta.NewMarkBitmaps(lo, hi, lay.BitmapBase),
		Stack: gcmeta.NewObjectStack(lay.StackBase),
		Lay:   lay,
	}
	h.Barrier = func(obj, slot, val heap.Addr) {
		if h.InOld(obj) && val != 0 && h.InYoung(val) {
			c.Cards.Dirty(slot)
		}
	}
	return c
}

// --- slot addressing ---------------------------------------------------------

// rootSlotAddr returns the simulated address of root slot i.
func (c *Collector) rootSlotAddr(i int) heap.Addr {
	return c.Lay.RootBase + heap.Addr(i*heap.WordBytes)
}

// isRootSlot distinguishes root-region slot addresses from heap slots.
func (c *Collector) isRootSlot(a heap.Addr) bool { return a >= c.Lay.RootBase }

// loadSlot reads a slot, whether in the heap or the root region.
func (c *Collector) loadSlot(a heap.Addr) heap.Addr {
	if c.isRootSlot(a) {
		return c.H.Root(int((a - c.Lay.RootBase) / heap.WordBytes))
	}
	return heap.Addr(c.H.Word(a))
}

// storeSlot writes a slot, dirtying the card when an old-generation slot
// receives a still-young value (the promoted-object case of Section 3.2).
func (c *Collector) storeSlot(a, val heap.Addr) (cardDirtied bool) {
	if c.isRootSlot(a) {
		c.H.SetRoot(int((a-c.Lay.RootBase)/heap.WordBytes), val)
		return false
	}
	c.H.SetWord(a, uint64(val))
	if c.H.InOld(a) && val != 0 && c.H.InYoung(val) {
		c.Cards.Dirty(a)
		return true
	}
	return false
}

// --- event lifecycle ----------------------------------------------------------

func (c *Collector) begin(kind Kind, reason string) *Event {
	ev := &Event{Kind: kind, Seq: c.seq, Reason: reason}
	c.seq++
	if c.Recording {
		c.ev = ev
	}
	return ev
}

func (c *Collector) end(ev *Event) *Event {
	c.ev = nil
	c.Log = append(c.Log, ev)
	return ev
}

// --- MinorGC -------------------------------------------------------------------

// minorSafe reports whether promotion is guaranteed to succeed: the old
// generation has room (bump space plus, in CMS mode, the free list) for
// the worst case (all used young bytes live).
func (c *Collector) minorSafe() bool {
	return c.oldAvailable() >= c.H.Eden.Used()+c.H.From.Used()
}

// Collect runs the policy HotSpot applies on allocation failure: a
// MinorGC, preceded by a full collection when promotion cannot be
// guaranteed. In CMS mode the full collection is a mark-sweep first, with
// compaction only as the concurrent-mode-failure fallback.
func (c *Collector) Collect(reason string) {
	if c.OOM {
		return
	}
	if !c.minorSafe() {
		switch c.Mode {
		case ModeCMS:
			c.MarkSweepGC(reason + "+promotion-guarantee")
		case ModeG1:
			c.MixedGC(reason + "+promotion-guarantee")
		}
		if !c.minorSafe() {
			c.MajorGC(reason + "+promotion-guarantee")
		}
		if c.OOM {
			return
		}
	}
	c.MinorGC(reason)
}

// MinorGC scavenges the young generation: Figure 3(a)'s flow.
func (c *Collector) MinorGC(reason string) *Event {
	ev := c.begin(Minor, reason)
	c.Stats.Minors++
	youngUsedBefore := c.H.Eden.Used() + c.H.From.Used()

	c.Stack.Reset()

	// Search: scan the old generation's card table for old-to-young refs.
	c.scanCards(ev)

	// Root set: push root slots holding young references.
	nroots := 0
	for i, r := range c.H.Roots() {
		if r != 0 && c.needsScavenge(r) {
			c.Stack.Push(c.rootSlotAddr(i))
			nroots++
		}
	}
	c.record(Invocation{Prim: PrimOther, A: c.Lay.RootBase, N: uint32(8 + 4*c.H.NumRoots())})

	// Drain: pop slot, copy/promote its referent, scan the new copy.
	c.drainMinor(ev)

	if len(c.promoFailed) > 0 {
		// Promotion failure: the young spaces cannot be flipped (live
		// self-forwarded objects remain in eden/from, and To already holds
		// copies). Strip the self-forwarding installations and run a
		// compacting full collection, exactly HotSpot's recovery.
		for _, a := range c.promoFailed {
			c.H.ClearForward(a)
		}
		c.promoFailed = c.promoFailed[:0]
		ev.Reason += "+promotion-failure"
		c.end(ev)
		c.MajorGC(reason + "+promotion-failure")
		return ev
	}

	// Flip spaces: eden and from are now garbage; to becomes from. The
	// bytes that stayed in young are copied minus promoted (now in To).
	ev.ReclaimedBytes = youngUsedBefore + ev.PromotedBytes - ev.CopiedBytes
	c.H.Eden.Reset()
	c.H.From.Reset()
	c.H.SwapSurvivors()

	return c.end(ev)
}

// scanCards performs the Search primitive over the old generation's cards
// and processes every dirty card found.
func (c *Collector) scanCards(ev *Event) {
	if c.H.Old.Used() == 0 {
		return
	}
	loCard := c.Cards.CardIndex(c.H.Old.Base)
	hiCard := c.Cards.CardIndex(c.H.Old.Top-1) + 1

	// Build the card-span index: first object intersecting each card.
	c.buildCardSpans(loCard, hiCard)

	for pos := loCard; pos < hiCard; pos += SearchChunkCards {
		chunkEnd := pos + SearchChunkCards
		if chunkEnd > hiCard {
			chunkEnd = hiCard
		}
		c.record(Invocation{Prim: PrimSearch, A: c.Cards.CardAddr(pos), N: uint32(chunkEnd - pos)})
		dirty := c.Cards.DirtyCards(pos, chunkEnd, nil)
		for _, idx := range dirty {
			c.Cards.Clean(idx)
			c.processCard(ev, idx, loCard)
		}
	}
}

// buildCardSpans records, for each old-gen card, the first object whose
// body intersects it (HotSpot keeps an equivalent block-offset table).
func (c *Collector) buildCardSpans(loCard, hiCard int) {
	n := hiCard - loCard
	if cap(c.cardSpan) < n {
		c.cardSpan = make([]heap.Addr, n)
	}
	c.cardSpan = c.cardSpan[:n]
	for i := range c.cardSpan {
		c.cardSpan[i] = 0
	}
	c.H.WalkSpace(c.H.Old, func(a heap.Addr) {
		end := a + heap.Addr(c.H.SizeWords(a)*heap.WordBytes)
		first := c.Cards.CardIndex(a) - loCard
		last := c.Cards.CardIndex(end-1) - loCard
		for i := first; i <= last; i++ {
			if c.cardSpan[i] == 0 {
				c.cardSpan[i] = a
			}
		}
	})
}

// processCard scans the reference slots that fall within a dirty card,
// evacuating young referents. Each (object, card) scan is one Scan&Push
// invocation.
func (c *Collector) processCard(ev *Event, idx, loCard int) {
	cardLo, cardHi := c.Cards.CardRange(idx)
	obj := c.cardSpan[idx-loCard]
	if obj == 0 {
		return
	}
	for obj < cardHi && obj < c.H.Old.Top {
		refOff := uint32(len(ev.Refs))
		nrefs := 0
		c.H.IterateRefSlots(obj, func(slot heap.Addr) {
			if slot < cardLo || slot >= cardHi {
				return
			}
			nrefs++
			c.visitMinorSlot(ev, slot)
		})
		if nrefs > 0 {
			c.record(Invocation{
				Prim: PrimScanPush, A: obj, B: c.Stack.TopAddr(),
				N: uint32(nrefs), RefOff: refOff, RefLen: uint32(len(ev.Refs)) - refOff,
			})
		}
		obj += heap.Addr(c.H.SizeWords(obj) * heap.WordBytes)
	}
}

// needsScavenge reports whether t lives in a scavenge source space (eden
// or from). To-space copies are already evacuated this cycle and must
// never be re-copied.
func (c *Collector) needsScavenge(t heap.Addr) bool {
	return c.H.Eden.Contains(t) || c.H.From.Contains(t)
}

// visitMinorSlot applies scavenge semantics to one reference slot: update
// if the target is already forwarded, otherwise push the slot for later
// processing.
func (c *Collector) visitMinorSlot(ev *Event, slot heap.Addr) {
	t := c.loadSlot(slot)
	v := RefVisit{Slot: slot, Target: t}
	switch {
	case t == 0:
		v.Flags = RefNull
	case !c.needsScavenge(t):
		// old-to-old, or already-evacuated to-space copy: nothing to do
	case c.H.IsForwarded(t):
		v.Flags = RefForwardUpdate
		if c.storeSlot(slot, c.H.Forwardee(t)) {
			v.Flags |= RefCardDirty
		}
	default:
		v.Flags = RefPushed
		c.Stack.Push(slot)
	}
	c.recordRef(v)
}

// drainMinor empties the slot stack, evacuating and scanning objects.
func (c *Collector) drainMinor(ev *Event) {
	for {
		slot, ok := c.Stack.Pop()
		if !ok {
			return
		}
		// Pop + processed check: small, non-offloaded (Section 3.3).
		c.record(Invocation{Prim: PrimOther, A: c.Stack.TopAddr(), N: 12})

		t := c.loadSlot(slot)
		if t == 0 || !c.needsScavenge(t) {
			continue
		}
		if c.H.IsForwarded(t) {
			c.storeSlot(slot, c.H.Forwardee(t))
			continue
		}
		newAddr := c.evacuate(ev, t)
		c.storeSlot(slot, newAddr)
		c.scanMinorObject(ev, newAddr)
	}
}

// evacuate copies a live young object to the To space, or promotes it to
// the old generation when aged (or on survivor overflow). This is the
// Copy primitive.
func (c *Collector) evacuate(ev *Event, obj heap.Addr) heap.Addr {
	size := c.H.SizeWords(obj)
	age := c.H.Age(obj)

	var dst heap.Addr
	promoted := false
	if age+1 >= c.H.Config().TenureAge {
		dst = c.allocOld(size)
		promoted = dst != 0
	}
	if dst == 0 {
		dst = c.allocTo(size)
	}
	if dst == 0 {
		dst = c.allocOld(size) // survivor overflow
		promoted = dst != 0
	}
	if dst == 0 {
		// Promotion failure (HotSpot: possible under CMS fragmentation):
		// self-forward the object in place; the scavenge completes and a
		// compacting full GC follows immediately (MinorGC's epilogue).
		c.H.Forward(obj, obj)
		c.promoFailed = append(c.promoFailed, obj)
		ev.LiveObjects++
		sz := uint64(size * heap.WordBytes)
		ev.LiveBytes += sz
		return obj
	}

	c.H.CopyWords(dst, obj, size)
	c.record(Invocation{Prim: PrimCopy, A: obj, B: dst, N: uint32(size * heap.WordBytes)})
	c.H.SetAge(dst, age+1)
	c.H.Forward(obj, dst)

	bytes := uint64(size * heap.WordBytes)
	ev.CopiedBytes += bytes
	ev.LiveObjects++
	ev.LiveBytes += bytes
	c.Stats.CopiedBytes += bytes
	if promoted {
		ev.PromotedBytes += bytes
		c.Stats.PromotedBytes += bytes
		c.H.Stats.PromotedObjects++
		c.H.Stats.PromotedBytes += bytes
	}
	return dst
}

func (c *Collector) allocTo(words int) heap.Addr {
	s := c.H.To
	need := heap.Addr(words * heap.WordBytes)
	if s.Top+need > s.Limit {
		return 0
	}
	a := s.Top
	s.Top += need
	return a
}

func (c *Collector) allocOld(words int) heap.Addr {
	s := c.H.Old
	need := heap.Addr(words * heap.WordBytes)
	if s.Top+need <= s.Limit {
		a := s.Top
		s.Top += need
		return a
	}
	// Bump space exhausted: fall back to the mark-sweep free list.
	return c.allocOldFree(words)
}

// scanMinorObject iterates a freshly copied object's reference slots
// (push_contents, Figure 11): one Scan&Push invocation.
func (c *Collector) scanMinorObject(ev *Event, obj heap.Addr) {
	refOff := uint32(len(ev.Refs))
	nrefs := 0
	c.H.IterateRefSlots(obj, func(slot heap.Addr) {
		nrefs++
		c.visitMinorSlot(ev, slot)
	})
	c.record(Invocation{
		Prim: PrimScanPush, A: obj, B: c.Stack.TopAddr(),
		N: uint32(nrefs), RefOff: refOff, RefLen: uint32(len(ev.Refs)) - refOff,
	})
}

// --- verification helpers -----------------------------------------------------

// Reachable computes the current reachable object set by walking from the
// roots (test/verification helper, not part of collection).
func (c *Collector) Reachable() map[heap.Addr]bool {
	seen := map[heap.Addr]bool{}
	var stack []heap.Addr
	for _, r := range c.H.Roots() {
		if r != 0 && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.H.IterateRefSlots(a, func(slot heap.Addr) {
			t := heap.Addr(c.H.Word(slot))
			if t != 0 && !seen[t] {
				if !c.H.Contains(t) {
					panic(fmt.Sprintf("gc: dangling reference %#x in slot %#x", uint64(t), uint64(slot)))
				}
				seen[t] = true
				stack = append(stack, t)
			}
		})
	}
	return seen
}

// LiveBytes sums the sizes of currently reachable objects.
func (c *Collector) LiveBytes() uint64 {
	var total uint64
	for a := range c.Reachable() {
		total += uint64(c.H.SizeWords(a) * heap.WordBytes)
	}
	return total
}
