package gc

import (
	"math/rand"
	"testing"

	"charonsim/internal/heap"
)

func newCMSFixture(heapBytes uint64) *fixture {
	f := newFixture(heapBytes)
	f.c.Mode = ModeCMS
	return f
}

func TestMarkSweepPreservesGraphWithoutMoving(t *testing.T) {
	f := newCMSFixture(8 << 20)
	fillOldWithGarbage(t, f, 150)

	keep := f.newNode(t)
	kidx := f.h.AddRoot(keep)
	f.h.SetAge(keep, 31)
	f.c.MinorGC("promote-keep")
	keepOld := f.h.Root(kidx)
	if !f.h.InOld(keepOld) {
		t.Fatal("setup: keep not promoted")
	}
	before := f.signature()

	ev := f.c.MarkSweepGC("test")

	if !sigEqual(before, f.signature()) {
		t.Fatal("mark-sweep changed the reachable graph")
	}
	// Non-moving: the survivor stays at its address.
	if f.h.Root(kidx) != keepOld {
		t.Fatalf("mark-sweep moved an object: %#x -> %#x", keepOld, f.h.Root(kidx))
	}
	if ev.Kind != MajorMS || ev.Kind.Moving() {
		t.Fatalf("event kind %v", ev.Kind)
	}
	if ev.ReclaimedBytes == 0 {
		t.Fatal("sweep reclaimed nothing despite old-gen garbage")
	}
	// The dead ranges became parseable fillers.
	fillers := 0
	f.h.WalkSpace(f.h.Old, func(a heap.Addr) {
		if f.h.IsFiller(a) {
			fillers++
		}
	})
	if fillers == 0 && f.h.Old.Used() > uint64(6*8) {
		t.Fatal("no fillers in swept old gen")
	}
}

func TestMarkSweepRecordsNoBitmapCountOrCopy(t *testing.T) {
	// Table 1: CMS has no compaction, so Bitmap Count does not apply; a
	// non-moving sweep also performs no Copy.
	f := newCMSFixture(8 << 20)
	fillOldWithGarbage(t, f, 100)
	keep := f.newNode(t)
	f.h.AddRoot(keep)
	ev := f.c.MarkSweepGC("prims")
	counts := ev.CountByPrim()
	if counts[PrimBitmapCount] != 0 {
		t.Fatalf("mark-sweep recorded %d Bitmap Count invocations", counts[PrimBitmapCount])
	}
	if counts[PrimCopy] != 0 {
		t.Fatalf("mark-sweep recorded %d Copy invocations", counts[PrimCopy])
	}
	if counts[PrimScanPush] == 0 {
		t.Fatal("marking must use Scan&Push")
	}
	if counts[PrimAdjust] != 0 {
		t.Fatal("non-moving collection must not adjust pointers")
	}
}

func TestFreeListAllocationReusesHoles(t *testing.T) {
	f := newCMSFixture(8 << 20)
	fillOldWithGarbage(t, f, 200)
	anchor := f.newNode(t)
	aidx := f.h.AddRoot(anchor)
	f.h.SetAge(f.h.Root(aidx), 31)
	f.c.MinorGC("promote-anchor")

	f.c.MarkSweepGC("sweep")
	if f.c.freeBytes == 0 && len(f.c.freeList) == 0 && f.h.Old.Free() == 0 {
		t.Skip("sweep produced no reusable space at this sizing")
	}
	topBefore := f.h.Old.Top

	// Promote new objects: they should fit without growing Old.Top beyond
	// its swept high-water mark (free list or reclaimed bump space).
	for i := 0; i < 50; i++ {
		n := f.newNode(t)
		f.h.SetAge(n, 31)
		f.h.AddRoot(n)
	}
	f.c.MinorGC("promote-into-holes")
	if f.h.Old.Top > topBefore+heap.Addr(f.h.Old.Capacity()/4) {
		t.Fatalf("free space not reused: top grew %#x -> %#x", topBefore, f.h.Old.Top)
	}
}

func TestCMSConcurrentModeFailureFallsBackToCompaction(t *testing.T) {
	// Fragment the old generation into ~528B holes, then promote objects
	// too large for any hole: promotion fails (self-forwarding) and the
	// collector must recover with a compacting full GC.
	f := newCMSFixture(4 << 20)
	const n = 3800
	spine := f.c.AllocArray(f.arr, n)
	sidx := f.h.AddRoot(spine)
	for i := 0; i < n; i++ {
		d := f.c.AllocArray(f.data, 64) // ~528B objects
		if d == 0 {
			t.Fatal("setup OOM")
		}
		f.h.SetAge(d, 31)
		f.h.StoreRef(f.h.Root(sidx), heap.HeaderWords+i, d)
	}
	f.h.SetAge(f.h.Root(sidx), 31)
	f.c.MinorGC("promote-all")
	// Free every other element: ~1 MB of fragmentation in 528B holes.
	for i := 0; i < n; i += 2 {
		f.h.StoreRef(f.h.Root(sidx), heap.HeaderWords+i, 0)
	}
	f.c.MarkSweepGC("fragment")

	majorsBefore := f.c.Stats.Majors
	// Promote 2KB objects until the bump space runs out: none fits a 528B
	// hole, so promotion must eventually fail and trigger compaction.
	for i := 0; i < 900 && !f.c.OOM && f.c.Stats.Majors == majorsBefore; i++ {
		d := f.c.AllocArray(f.data, 256)
		if d == 0 {
			break
		}
		f.h.SetAge(d, 31)
		f.h.StoreRef(f.h.Root(sidx), heap.HeaderWords+2*i, d)
		f.c.MinorGC("promote-big")
	}
	if f.c.Stats.Majors == majorsBefore {
		t.Fatal("no compacting fallback despite fragmentation pressure")
	}
	// The heap must be coherent after recovery: a full signature walk and
	// one more full cycle succeed.
	sig := f.signature()
	f.c.MajorGC("verify")
	if !sigEqual(sig, f.signature()) {
		t.Fatal("heap inconsistent after promotion-failure recovery")
	}
}

func TestCMSThenCompactionConsistency(t *testing.T) {
	// Interleave CMS sweeps and full compactions: the graph must survive
	// both, including compaction of a filler-riddled old gen.
	f := newCMSFixture(8 << 20)
	fillOldWithGarbage(t, f, 120)
	keep := f.c.AllocArray(f.arr, 20)
	kidx := f.h.AddRoot(keep)
	for i := 0; i < 20; i++ {
		n := f.newNode(t)
		f.h.StoreRef(f.h.Root(kidx), heap.HeaderWords+i, n)
	}
	before := f.signature()

	f.c.MarkSweepGC("ms1")
	if !sigEqual(before, f.signature()) {
		t.Fatal("ms1 corrupted graph")
	}
	f.c.MajorGC("compact")
	if !sigEqual(before, f.signature()) {
		t.Fatal("compaction after sweep corrupted graph")
	}
	// Compaction must have eliminated fillers entirely.
	f.h.WalkSpace(f.h.Old, func(a heap.Addr) {
		if f.h.IsFiller(a) {
			t.Fatal("filler survived compaction")
		}
	})
	f.c.MarkSweepGC("ms2")
	if !sigEqual(before, f.signature()) {
		t.Fatal("ms2 corrupted graph")
	}
}

func TestCMSRandomizedInvariant(t *testing.T) {
	// CMS-mode variant of the central GC property test.
	rng := rand.New(rand.NewSource(7))
	f := newCMSFixture(4 << 20)
	sidx := f.h.AddRoot(f.c.AllocArray(f.arr, 32))
	spine := func() heap.Addr { return f.h.Root(sidx) }
	for step := 0; step < 300; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			n := f.c.AllocInstance(f.node)
			if n == 0 {
				t.Fatal("unexpected OOM")
			}
			stampCounter++
			f.h.SetWord(n+4*heap.WordBytes, stampCounter)
			if rng.Intn(2) == 0 {
				f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), n)
			}
		case 5, 6:
			a := f.h.LoadRef(spine(), heap.HeaderWords+rng.Intn(32))
			b := f.h.LoadRef(spine(), heap.HeaderWords+rng.Intn(32))
			if a != 0 {
				f.h.StoreRef(a, 2+rng.Intn(2), b)
			}
		case 7:
			f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), 0)
		case 8:
			before := f.signature()
			f.c.MinorGC("prop")
			if !sigEqual(before, f.signature()) {
				t.Fatalf("minor GC broke graph at step %d", step)
			}
		case 9:
			before := f.signature()
			f.c.MarkSweepGC("prop")
			if !sigEqual(before, f.signature()) {
				t.Fatalf("mark-sweep broke graph at step %d", step)
			}
		}
	}
}

func TestKindMoving(t *testing.T) {
	if !Minor.Moving() || !Major.Moving() || MajorMS.Moving() {
		t.Fatal("Moving classification")
	}
	if MajorMS.String() != "marksweep" {
		t.Fatal("MajorMS name")
	}
}
