package gc

import (
	"math/rand"
	"testing"

	"charonsim/internal/heap"
)

func newG1Fixture(heapBytes uint64) *fixture {
	f := newFixture(heapBytes)
	f.c.Mode = ModeG1
	return f
}

// buildG1OldGen promotes nLive live nodes and nDead soon-dead arrays in
// alternating batches (one MinorGC each), so live and dead data stripe
// across the old generation's regions — some regions end up mostly
// garbage with live islands, the layout mixed collections exist for.
func buildG1OldGen(t *testing.T, f *fixture, nLive, nDead int) (keepIdx int) {
	t.Helper()
	keep := f.c.AllocArray(f.arr, nLive)
	keepIdx = f.h.AddRoot(keep)
	trash := f.c.AllocArray(f.arr, nDead)
	tidx := f.h.AddRoot(trash)
	f.h.SetAge(f.h.Root(keepIdx), 31)
	f.h.SetAge(f.h.Root(tidx), 31)

	const batches = 10
	li, di := 0, 0
	for b := 0; b < batches; b++ {
		for i := 0; i < nLive/batches && li < nLive; i++ {
			n := f.newNode(t)
			f.h.SetAge(n, 31)
			f.h.StoreRef(f.h.Root(keepIdx), heap.HeaderWords+li, n)
			li++
		}
		for i := 0; i < nDead/batches && di < nDead; i++ {
			d := f.c.AllocArray(f.data, 60) // ~496B of future garbage
			f.h.SetAge(d, 31)
			f.h.StoreRef(f.h.Root(tidx), heap.HeaderWords+di, d)
			di++
		}
		f.c.MinorGC("promote-batch")
	}
	f.h.SetRoot(tidx, 0) // the dead set becomes garbage
	return keepIdx
}

func TestMixedGCReclaimsGarbageFirstRegions(t *testing.T) {
	f := newG1Fixture(8 << 20)
	buildG1OldGen(t, f, 200, 2000)
	before := f.signature()
	freeBefore := f.c.oldAvailable()

	ev := f.c.MixedGC("test")

	if ev.Kind != MajorG1 || ev.Kind.String() != "mixed" {
		t.Fatalf("kind %v", ev.Kind)
	}
	if !sigEqual(before, f.signature()) {
		t.Fatal("mixed GC changed the reachable graph")
	}
	if f.c.oldAvailable() <= freeBefore {
		t.Fatalf("no space reclaimed: %d -> %d", freeBefore, f.c.oldAvailable())
	}
	if ev.CopiedBytes == 0 {
		t.Fatal("no evacuation happened")
	}
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatalf("heap inconsistent after mixed GC: %v", err)
	}
}

func TestMixedGCRecordsAllTableOnePrimitives(t *testing.T) {
	// Table 1 row G1: Copy/Search, Scan&Push and Bitmap Count all apply.
	f := newG1Fixture(8 << 20)
	buildG1OldGen(t, f, 150, 1500)
	ev := f.c.MixedGC("prims")
	counts := ev.CountByPrim()
	for _, p := range []Prim{PrimCopy, PrimSearch, PrimScanPush, PrimBitmapCount} {
		if counts[p] == 0 {
			t.Fatalf("mixed GC recorded no %v invocations (Table 1 says G1 uses it)", p)
		}
	}
}

func TestMixedGCEvacuatesGarbageRichRegionsOnly(t *testing.T) {
	f := newG1Fixture(8 << 20)
	buildG1OldGen(t, f, 400, 1200)
	oldTopBefore := f.h.Old.Top
	ev := f.c.MixedGC("selective")
	// Evacuation is incremental: copied bytes are bounded by the CSet cap,
	// far below a full compaction of the live set.
	if ev.CopiedBytes > uint64(G1MaxCSetRegions*G1RegionBytes) {
		t.Fatalf("copied %d bytes exceeds the CSet bound", ev.CopiedBytes)
	}
	// Non-moving outside the CSet: the bump frontier may grow (evacuation
	// destinations) but never shrinks (no full compaction).
	if f.h.Old.Top < oldTopBefore {
		t.Fatal("mixed GC compacted the whole old gen")
	}
}

func TestMixedGCThenMinorGCCardsConsistent(t *testing.T) {
	// An evacuated object with an old-to-young reference must keep its
	// referent alive through the next scavenge.
	f := newG1Fixture(8 << 20)
	buildG1OldGen(t, f, 100, 1800)
	keepIdx := 0 // first root added by buildG1OldGen

	// Give one live old node a young referent.
	young := f.newNode(t)
	stamp := f.h.Word(young + 4*heap.WordBytes)
	holder := f.h.LoadRef(f.h.Root(keepIdx), heap.HeaderWords+3)
	f.h.StoreRef(holder, 2, young)

	f.c.MixedGC("move-holder")
	f.c.MinorGC("scavenge")

	holder = f.h.LoadRef(f.h.Root(keepIdx), heap.HeaderWords+3)
	got := f.h.LoadRef(holder, 2)
	if got == 0 {
		t.Fatal("young referent lost")
	}
	if f.h.Word(got+4*heap.WordBytes) != stamp {
		t.Fatal("young referent corrupted after evacuation + scavenge")
	}
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatal(err)
	}
}

func TestG1ModeEndToEndRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := newG1Fixture(4 << 20)
	sidx := f.h.AddRoot(f.c.AllocArray(f.arr, 32))
	spine := func() heap.Addr { return f.h.Root(sidx) }
	for step := 0; step < 300; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			n := f.c.AllocInstance(f.node)
			if n == 0 {
				t.Fatal("unexpected OOM")
			}
			stampCounter++
			f.h.SetWord(n+4*heap.WordBytes, stampCounter)
			if rng.Intn(2) == 0 {
				f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), n)
			}
		case 5, 6:
			a := f.h.LoadRef(spine(), heap.HeaderWords+rng.Intn(32))
			b := f.h.LoadRef(spine(), heap.HeaderWords+rng.Intn(32))
			if a != 0 {
				f.h.StoreRef(a, 2+rng.Intn(2), b)
			}
		case 7:
			f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), 0)
		case 8:
			before := f.signature()
			f.c.MinorGC("prop")
			if !sigEqual(before, f.signature()) {
				t.Fatalf("minor GC broke graph at step %d", step)
			}
		case 9:
			before := f.signature()
			f.c.MixedGC("prop")
			if !sigEqual(before, f.signature()) {
				t.Fatalf("mixed GC broke graph at step %d", step)
			}
			if err := f.c.VerifyHeap(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatal(err)
	}
}

func TestG1EmptyOldGenDegenerates(t *testing.T) {
	f := newG1Fixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	ev := f.c.MixedGC("empty")
	if ev.CopiedBytes != 0 {
		t.Fatal("evacuated from an empty old gen")
	}
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModePS.String() != "ParallelScavenge" || ModeCMS.String() != "CMS" || ModeG1.String() != "G1" {
		t.Fatal("mode names")
	}
	if MajorG1.String() != "mixed" || !MajorG1.Moving() {
		t.Fatal("MajorG1 kind")
	}
}
