package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"charonsim/internal/heap"
)

// Signature sentinels (values that cannot collide with klass ids/stamps in
// these tests because they exceed any value the fixtures write).
const (
	sigNull    = ^uint64(0)
	sigBackref = ^uint64(1)
)

// fixture builds a heap+collector with a small type universe. Node has two
// reference fields (offsets 2,3) and two data words (4,5).
type fixture struct {
	h    *heap.Heap
	c    *Collector
	node *heap.Klass
	arr  *heap.Klass
	data *heap.Klass // long[]
}

func newFixture(heapBytes uint64) *fixture {
	tbl := heap.NewTable()
	node := tbl.Define(heap.Klass{Name: "Node", Kind: heap.KindInstance, InstanceWords: 6, RefOffsets: []int32{2, 3}})
	arr := tbl.Define(heap.Klass{Name: "Object[]", Kind: heap.KindObjArray})
	data := tbl.Define(heap.Klass{Name: "long[]", Kind: heap.KindTypeArray, ElemBytes: 8})
	h := heap.New(heap.DefaultConfig(heapBytes), tbl)
	c := New(h)
	c.Recording = true
	return &fixture{h: h, c: c, node: node, arr: arr, data: data}
}

var stampCounter uint64

// newNode allocates a Node with a unique stamp in its first data word.
func (f *fixture) newNode(t *testing.T) heap.Addr {
	t.Helper()
	a := f.c.AllocInstance(f.node)
	if a == 0 {
		t.Fatal("allocation failed")
	}
	stampCounter++
	f.h.SetWord(a+4*heap.WordBytes, stampCounter)
	return a
}

// signature computes a canonical fingerprint of the reachable graph: DFS
// from roots in slot order, emitting klass ids, stamps, array lengths and
// back-reference structure. GC must preserve it exactly.
func (f *fixture) signature() []uint64 {
	var sig []uint64
	index := map[heap.Addr]uint64{}
	var walk func(a heap.Addr)
	walk = func(a heap.Addr) {
		if a == 0 {
			sig = append(sig, sigNull)
			return
		}
		if id, ok := index[a]; ok {
			sig = append(sig, sigBackref, id)
			return
		}
		index[a] = uint64(len(index) + 1)
		k := f.h.KlassOf(a)
		sig = append(sig, uint64(k.ID))
		if k.IsArray() {
			sig = append(sig, uint64(f.h.ArrayLen(a)))
		}
		if k.Kind == heap.KindTypeArray {
			for w := heap.HeaderWords; w < f.h.SizeWords(a); w++ {
				sig = append(sig, f.h.Word(a+heap.Addr(w*heap.WordBytes)))
			}
			return
		}
		if k == f.node {
			sig = append(sig, f.h.Word(a+4*heap.WordBytes))
		}
		f.h.IterateRefSlots(a, func(slot heap.Addr) {
			walk(heap.Addr(f.h.Word(slot)))
		})
	}
	for _, r := range f.h.Roots() {
		walk(r)
	}
	return sig
}

func sigEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- MinorGC ------------------------------------------------------------------

func TestMinorGCPreservesReachableGraph(t *testing.T) {
	f := newFixture(4 << 20)
	// Linked list of 10 nodes, rooted; plus garbage.
	head := f.newNode(t)
	f.h.AddRoot(head)
	prev := head
	for i := 0; i < 9; i++ {
		n := f.newNode(t)
		f.h.StoreRef(prev, 2, n)
		prev = n
	}
	for i := 0; i < 50; i++ {
		f.newNode(t) // garbage
	}
	before := f.signature()

	ev := f.c.MinorGC("test")

	if !sigEqual(before, f.signature()) {
		t.Fatal("MinorGC changed the reachable graph")
	}
	if f.h.Eden.Used() != 0 {
		t.Fatal("eden not emptied")
	}
	if ev.LiveObjects != 10 {
		t.Fatalf("live objects = %d, want 10", ev.LiveObjects)
	}
	if ev.ReclaimedBytes == 0 {
		t.Fatal("no garbage reclaimed")
	}
	// Root updated to the new location.
	if f.h.Eden.Contains(f.h.Root(0)) {
		t.Fatal("root still points into eden")
	}
}

func TestMinorGCCopiesToSurvivor(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	f.c.MinorGC("test")
	na := f.h.Root(0)
	if !f.h.From.Contains(na) {
		t.Fatalf("survivor copy at %#x not in from-space (after swap)", na)
	}
	if f.h.Age(na) != 1 {
		t.Fatalf("age = %d, want 1", f.h.Age(na))
	}
}

func TestMinorGCReclaimsGarbage(t *testing.T) {
	f := newFixture(4 << 20)
	for i := 0; i < 100; i++ {
		f.newNode(t)
	}
	used := f.h.Eden.Used()
	ev := f.c.MinorGC("test")
	if ev.ReclaimedBytes != used {
		t.Fatalf("reclaimed %d, want %d", ev.ReclaimedBytes, used)
	}
	if ev.LiveObjects != 0 || ev.CopiedBytes != 0 {
		t.Fatal("garbage was copied")
	}
}

func TestAgingAndPromotion(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	tenure := f.h.Config().TenureAge
	for i := 0; i < tenure; i++ {
		if f.h.InOld(f.h.Root(0)) {
			break
		}
		f.c.MinorGC("age")
	}
	if !f.h.InOld(f.h.Root(0)) {
		t.Fatalf("object not promoted after %d minor GCs", tenure)
	}
	if f.c.Stats.PromotedBytes == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestCardTableKeepsOldToYoungAlive(t *testing.T) {
	f := newFixture(4 << 20)
	// Promote a holder into old gen.
	holder := f.newNode(t)
	ridx := f.h.AddRoot(holder)
	f.h.SetAge(holder, 31)
	f.c.MinorGC("promote")
	holder = f.h.Root(ridx)
	if !f.h.InOld(holder) {
		t.Fatal("holder not promoted")
	}

	// Store a young object only reachable through the old holder.
	young := f.newNode(t)
	stamp := f.h.Word(young + 4*heap.WordBytes)
	f.h.StoreRef(holder, 2, young)
	if f.c.Cards.DirtyMarks == 0 {
		t.Fatal("write barrier did not dirty a card")
	}

	ev := f.c.MinorGC("card")
	got := f.h.LoadRef(holder, 2)
	if got == young || got == 0 {
		t.Fatalf("old-to-young slot not updated: %#x", got)
	}
	if f.h.Word(got+4*heap.WordBytes) != stamp {
		t.Fatal("young object contents lost")
	}
	if ev.LiveObjects == 0 {
		t.Fatal("card-reachable object not counted live")
	}
	// The Search primitive must have been recorded.
	counts := ev.CountByPrim()
	if counts[PrimSearch] == 0 {
		t.Fatal("no Search invocations recorded")
	}
}

func TestMinorGCCyclicGraph(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	b := f.newNode(t)
	f.h.StoreRef(a, 2, b)
	f.h.StoreRef(b, 2, a) // cycle
	f.h.StoreRef(b, 3, b) // self-loop
	f.h.AddRoot(a)
	before := f.signature()
	f.c.MinorGC("cycle")
	if !sigEqual(before, f.signature()) {
		t.Fatal("cycle not preserved")
	}
}

func TestMinorGCSharedObjectCopiedOnce(t *testing.T) {
	f := newFixture(4 << 20)
	shared := f.newNode(t)
	a := f.newNode(t)
	b := f.newNode(t)
	f.h.StoreRef(a, 2, shared)
	f.h.StoreRef(b, 2, shared)
	f.h.AddRoot(a)
	f.h.AddRoot(b)
	ev := f.c.MinorGC("shared")
	if ev.LiveObjects != 3 {
		t.Fatalf("live = %d, want 3 (shared object copied once)", ev.LiveObjects)
	}
	if f.h.LoadRef(f.h.Root(0), 2) != f.h.LoadRef(f.h.Root(1), 2) {
		t.Fatal("shared object identity lost")
	}
}

func TestObjArraysSurviveMinor(t *testing.T) {
	f := newFixture(4 << 20)
	arr := f.c.AllocArray(f.arr, 20)
	for i := 0; i < 20; i++ {
		n := f.newNode(t)
		f.h.StoreRef(arr, heap.HeaderWords+i, n)
	}
	f.h.AddRoot(arr)
	before := f.signature()
	ev := f.c.MinorGC("arr")
	if !sigEqual(before, f.signature()) {
		t.Fatal("array graph not preserved")
	}
	if ev.LiveObjects != 21 {
		t.Fatalf("live = %d, want 21", ev.LiveObjects)
	}
}

// --- MajorGC ------------------------------------------------------------------

// fillOldWithGarbage promotes a batch of nodes then drops them.
func fillOldWithGarbage(t *testing.T, f *fixture, n int) {
	t.Helper()
	hold := f.c.AllocArray(f.arr, n)
	ridx := f.h.AddRoot(hold)
	for i := 0; i < n; i++ {
		x := f.newNode(t) // may GC and move the holder: reload it
		hold = f.h.Root(ridx)
		f.h.SetAge(x, 31)
		f.h.StoreRef(hold, heap.HeaderWords+i, x)
	}
	f.h.SetAge(f.h.Root(ridx), 31)
	f.c.MinorGC("promote-garbage")
	f.h.SetRoot(ridx, 0) // all garbage now
}

func TestMajorGCCompactsAndPreserves(t *testing.T) {
	f := newFixture(8 << 20)
	fillOldWithGarbage(t, f, 200)

	// Live graph: partially old, partially young.
	head := f.newNode(t)
	f.h.AddRoot(head)
	prev := head
	for i := 0; i < 30; i++ {
		n := f.newNode(t)
		f.h.StoreRef(prev, 2, n)
		prev = n
	}
	before := f.signature()
	oldUsedBefore := f.h.Old.Used()

	ev := f.c.MajorGC("test")

	if !sigEqual(before, f.signature()) {
		t.Fatal("MajorGC changed the reachable graph")
	}
	if f.h.Old.Used() >= oldUsedBefore {
		t.Fatalf("old gen not shrunk: %d -> %d", oldUsedBefore, f.h.Old.Used())
	}
	if f.h.Eden.Used() != 0 || f.h.From.Used() != 0 || f.h.To.Used() != 0 {
		t.Fatal("young spaces not emptied by full GC")
	}
	if ev.ReclaimedBytes == 0 {
		t.Fatal("nothing reclaimed")
	}
	// All live objects are now in old gen, packed from the base.
	if f.h.Old.Used() != ev.LiveBytes {
		t.Fatalf("old usage %d != live bytes %d (holes?)", f.h.Old.Used(), ev.LiveBytes)
	}
}

func TestMajorGCOldGenIsDenseWalkable(t *testing.T) {
	f := newFixture(8 << 20)
	fillOldWithGarbage(t, f, 100)
	keep := f.c.AllocArray(f.arr, 50)
	kidx := f.h.AddRoot(keep)
	for i := 0; i < 50; i++ {
		n := f.newNode(t)
		f.h.StoreRef(f.h.Root(kidx), heap.HeaderWords+i, n)
	}
	f.c.MajorGC("dense")

	var walked uint64
	count := 0
	f.h.WalkSpace(f.h.Old, func(a heap.Addr) {
		walked += uint64(f.h.SizeWords(a) * heap.WordBytes)
		count++
	})
	if walked != f.h.Old.Used() {
		t.Fatalf("walked %d bytes vs used %d", walked, f.h.Old.Used())
	}
	if count != 51 {
		t.Fatalf("old gen holds %d objects, want 51", count)
	}
}

func TestMajorGCRecordsAllPrimitives(t *testing.T) {
	f := newFixture(8 << 20)
	fillOldWithGarbage(t, f, 100)
	keep := f.newNode(t)
	f.h.AddRoot(keep)
	f.h.StoreRef(keep, 2, f.newNode(t))
	ev := f.c.MajorGC("prims")
	counts := ev.CountByPrim()
	if counts[PrimScanPush] == 0 {
		t.Fatal("no Scan&Push in mark phase")
	}
	if counts[PrimBitmapCount] == 0 {
		t.Fatal("no Bitmap Count in summary/compact")
	}
	if counts[PrimCopy] == 0 {
		t.Fatal("no Copy in compaction")
	}
	if counts[PrimAdjust] == 0 {
		t.Fatal("no pointer adjustment recorded")
	}
	// Copy invocation bytes must equal the event's copied bytes.
	bytes := ev.BytesByPrim()
	if bytes[PrimCopy] != ev.CopiedBytes {
		t.Fatalf("copy bytes %d != event copied %d", bytes[PrimCopy], ev.CopiedBytes)
	}
}

func TestMajorGCHandlesCycles(t *testing.T) {
	f := newFixture(8 << 20)
	a := f.newNode(t)
	b := f.newNode(t)
	c := f.newNode(t)
	f.h.StoreRef(a, 2, b)
	f.h.StoreRef(b, 2, c)
	f.h.StoreRef(c, 2, a)
	f.h.AddRoot(a)
	before := f.signature()
	ev := f.c.MajorGC("cycles")
	if ev.LiveObjects != 3 {
		t.Fatalf("live = %d, want 3", ev.LiveObjects)
	}
	if !sigEqual(before, f.signature()) {
		t.Fatal("cycle broken by compaction")
	}
}

func TestMinorAfterMajorCardsConsistent(t *testing.T) {
	f := newFixture(8 << 20)
	fillOldWithGarbage(t, f, 50)
	holder := f.newNode(t)
	ridx := f.h.AddRoot(holder)
	f.h.SetAge(holder, 31)
	f.c.MinorGC("promote")
	holder = f.h.Root(ridx)

	f.c.MajorGC("full")
	holder = f.h.Root(ridx)
	if !f.h.InOld(holder) {
		t.Fatal("holder lost by major GC")
	}

	// New old-to-young ref after the full GC must still be tracked.
	young := f.newNode(t)
	f.h.StoreRef(holder, 3, young)
	f.c.MinorGC("after-major")
	if got := f.h.LoadRef(holder, 3); got == 0 || f.h.Eden.Contains(got) {
		t.Fatalf("post-major card tracking broken: slot=%#x", got)
	}
}

// --- OOM / guarantees -----------------------------------------------------------

func TestOOMLatchedWhenLiveExceedsOld(t *testing.T) {
	f := newFixture(1 << 20)
	// Keep everything alive until allocation fails.
	spine := f.c.AllocArray(f.arr, 16000)
	if spine == 0 {
		t.Fatal("spine alloc failed immediately")
	}
	sidx := f.h.AddRoot(spine)
	i := 0
	for ; i < 16000; i++ {
		n := f.c.AllocInstance(f.node)
		if n == 0 {
			break
		}
		f.h.StoreRef(f.h.Root(sidx), heap.HeaderWords+i, n)
	}
	if !f.c.OOM {
		t.Fatal("OOM not latched")
	}
	if i == 0 {
		t.Fatal("no allocations succeeded")
	}
	if f.c.AllocInstance(f.node) != 0 {
		t.Fatal("allocation succeeded after OOM")
	}
}

func TestPromotionGuaranteeTriggersMajor(t *testing.T) {
	f := newFixture(2 << 20)
	// Nearly fill old gen with live data so a minor GC can't guarantee
	// promotion space.
	spineLen := int(f.h.Old.Capacity()/16/8) / 2
	spine := f.c.AllocArray(f.arr, 64)
	sidx := f.h.AddRoot(spine)
	for i := 0; i < 64 && i < spineLen; i++ {
		d := f.c.AllocArray(f.data, 1500)
		if d == 0 {
			break
		}
		f.h.SetAge(d, 31)
		f.h.StoreRef(f.h.Root(sidx), heap.HeaderWords+i, d)
	}
	f.h.SetAge(f.h.Root(sidx), 31)
	f.c.MinorGC("promote-bulk")
	majorsBefore := f.c.Stats.Majors
	// Churn until a Collect() call needs the guarantee.
	for i := 0; i < 200 && f.c.Stats.Majors == majorsBefore && !f.c.OOM; i++ {
		f.c.AllocArray(f.data, 2000)
	}
	if f.c.Stats.Majors == majorsBefore {
		t.Skip("old gen never filled enough to trigger the guarantee on this sizing")
	}
}

// --- Property-based -------------------------------------------------------------

// TestRandomGraphGCInvariant is the central property test: arbitrary
// object graphs with arbitrary mutation and GC interleavings preserve the
// reachable graph signature through any sequence of collections.
func TestRandomGraphGCInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := newFixture(4 << 20)
		var nodes []heap.Addr

		// Root array anchors a random subset. GC moves it: always reload
		// from the root, exactly as a mutator would.
		sidx := f.h.AddRoot(f.c.AllocArray(f.arr, 32))
		spine := func() heap.Addr { return f.h.Root(sidx) }

		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // allocate node, maybe anchor it
				n := f.c.AllocInstance(f.node)
				if n == 0 {
					return !f.c.OOM // OOM not expected at this sizing
				}
				f.h.SetWord(n+4*heap.WordBytes, rng.Uint64()>>8)
				if rng.Intn(3) == 0 {
					f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), n)
				}
				nodes = append(nodes, n)
			case 4, 5, 6: // random link between anchored nodes
				if len(nodes) >= 2 {
					i, j := rng.Intn(32), rng.Intn(32)
					a := f.h.LoadRef(spine(), heap.HeaderWords+i)
					b := f.h.LoadRef(spine(), heap.HeaderWords+j)
					if a != 0 {
						f.h.StoreRef(a, 2+rng.Intn(2), b)
					}
				}
			case 7: // drop an anchor
				f.h.StoreRef(spine(), heap.HeaderWords+rng.Intn(32), 0)
			case 8: // minor GC
				before := f.signature()
				f.c.MinorGC("prop")
				if !sigEqual(before, f.signature()) {
					return false
				}
				nodes = nodes[:0] // addresses stale after GC
			case 9: // major GC
				before := f.signature()
				f.c.MajorGC("prop")
				if !sigEqual(before, f.signature()) {
					return false
				}
				nodes = nodes[:0]
			}
		}
		// Final full check.
		before := f.signature()
		f.c.MajorGC("final")
		f.c.MinorGC("final")
		return sigEqual(before, f.signature())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReachableHelper(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	b := f.newNode(t)
	f.newNode(t) // garbage
	f.h.StoreRef(a, 2, b)
	f.h.AddRoot(a)
	r := f.c.Reachable()
	if len(r) != 2 || !r[a] || !r[b] {
		t.Fatalf("reachable = %v", r)
	}
	if f.c.LiveBytes() != uint64(2*6*heap.WordBytes) {
		t.Fatalf("live bytes = %d", f.c.LiveBytes())
	}
}

func TestRecordingDisabled(t *testing.T) {
	f := newFixture(4 << 20)
	f.c.Recording = false
	a := f.newNode(t)
	f.h.AddRoot(a)
	ev := f.c.MinorGC("quiet")
	if len(ev.Invocations) != 0 || len(ev.Refs) != 0 {
		t.Fatal("recording happened while disabled")
	}
	if ev.LiveObjects != 1 {
		t.Fatal("functional stats missing when not recording")
	}
}

func TestEventLog(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	f.c.MinorGC("one")
	f.c.MajorGC("two")
	if len(f.c.Log) != 2 {
		t.Fatalf("log length %d", len(f.c.Log))
	}
	if f.c.Log[0].Kind != Minor || f.c.Log[1].Kind != Major {
		t.Fatal("log kinds wrong")
	}
	if f.c.Log[0].Seq >= f.c.Log[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
}

func TestPrimStringAndOffloadable(t *testing.T) {
	if PrimCopy.String() != "Copy" || PrimBitmapCount.String() != "BitmapCount" {
		t.Fatal("prim names")
	}
	for _, p := range []Prim{PrimCopy, PrimSearch, PrimScanPush, PrimBitmapCount} {
		if !p.Offloadable() {
			t.Fatalf("%v should be offloadable", p)
		}
	}
	if PrimAdjust.Offloadable() || PrimOther.Offloadable() {
		t.Fatal("non-offloadable prims misclassified")
	}
	if Minor.String() != "minor" || Major.String() != "major" {
		t.Fatal("kind names")
	}
}

func BenchmarkMinorGC(b *testing.B) {
	f := newFixture(16 << 20)
	head := f.c.AllocInstance(f.node)
	f.h.AddRoot(head)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f.h.Eden.Free() > 1<<16 {
			f.c.AllocInstance(f.node)
		}
		f.c.MinorGC("bench")
	}
}

func BenchmarkMajorGC(b *testing.B) {
	f := newFixture(16 << 20)
	spine := f.c.AllocArray(f.arr, 1000)
	f.h.AddRoot(spine)
	for i := 0; i < 1000; i++ {
		n := f.c.AllocInstance(f.node)
		f.h.SetAge(n, 31)
		f.h.StoreRef(spine, heap.HeaderWords+i, n)
	}
	f.h.SetAge(spine, 31)
	f.c.MinorGC("setup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.c.MajorGC("bench")
	}
}

func TestMajorGCRegionSpanningObjects(t *testing.T) {
	// Regression: objects larger than the 4KB summary region (or straddling
	// a region boundary) are counted by neither adjacent region under
	// Figure 8's paired-bit semantics; destinations must still be exact
	// (HotSpot's partial_obj_size). A large array between small live
	// objects used to produce colliding destinations that compacted one
	// object over another.
	f := newFixture(16 << 20)
	keep := f.c.AllocArray(f.arr, 8)
	kidx := f.h.AddRoot(keep)
	for i := 0; i < 8; i++ {
		// Alternate small nodes and multi-region arrays, all live.
		var o heap.Addr
		if i%2 == 0 {
			o = f.c.AllocInstance(f.node)
			stampCounter++
			f.h.SetWord(o+4*heap.WordBytes, stampCounter)
		} else {
			o = f.c.AllocArray(f.data, 3000) // 24KB: spans ~6 regions
			f.h.SetWord(o+2*heap.WordBytes, 0xabc0+uint64(i))
		}
		f.h.StoreRef(f.h.Root(kidx), heap.HeaderWords+i, o)
	}
	// Interleave garbage so live objects are scattered.
	for i := 0; i < 40; i++ {
		f.c.AllocArray(f.data, 700)
	}
	before := f.signature()
	f.c.MajorGC("span")
	if !sigEqual(before, f.signature()) {
		t.Fatal("region-spanning compaction corrupted the graph")
	}
	// And survive a second full GC (catches latent bitmap residue).
	f.c.MajorGC("span2")
	if !sigEqual(before, f.signature()) {
		t.Fatal("second compaction corrupted the graph")
	}
}

func TestVerifyHeapCleanAfterEveryGCKind(t *testing.T) {
	f := newFixture(8 << 20)
	fillOldWithGarbage(t, f, 100)
	keep := f.c.AllocArray(f.arr, 30)
	kidx := f.h.AddRoot(keep)
	for i := 0; i < 30; i++ {
		n := f.newNode(t)
		f.h.StoreRef(f.h.Root(kidx), heap.HeaderWords+i, n)
	}
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatalf("pre-GC: %v", err)
	}
	f.c.MinorGC("v1")
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatalf("after minor: %v", err)
	}
	f.c.MajorGC("v2")
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatalf("after major: %v", err)
	}
	f.c.MarkSweepGC("v3")
	if err := f.c.VerifyHeap(); err != nil {
		t.Fatalf("after mark-sweep: %v", err)
	}
}

func TestVerifyHeapDetectsCorruption(t *testing.T) {
	f := newFixture(4 << 20)
	a := f.newNode(t)
	f.h.AddRoot(a)
	// Plant a dangling reference past eden's top.
	f.h.StoreRef(a, 2, f.h.Eden.Top+64)
	if err := f.c.VerifyHeap(); err == nil {
		t.Fatal("dangling reference not detected")
	}
	// Repair, then corrupt a klass word.
	f.h.StoreRef(a, 2, 0)
	b := f.newNode(t)
	f.h.StoreRef(a, 2, b)
	f.h.SetWord(b+8, 0) // klass id 0 = invalid
	if err := f.c.VerifyHeap(); err == nil {
		t.Fatal("corrupt klass not detected")
	}
}
