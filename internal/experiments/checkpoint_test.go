package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"charonsim/internal/checkpoint"
	"charonsim/internal/exec"
	"charonsim/internal/fault"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

func newStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCheckpointReplayByteIdentity is the resume acceptance criterion at
// the session level: a replay served from the checkpoint store is exactly
// equal — field for field, including float64 values round-tripped through
// JSON — to the live simulation it cached.
func TestCheckpointReplayByteIdentity(t *testing.T) {
	dir := t.TempDir()
	st1, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	live := NewSession(Config{Workloads: []string{"BS"}})
	r, err := live.Record("BS", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.Replay(r, exec.KindCharon, 8)
	if err != nil {
		t.Fatal(err)
	}

	// First checkpointed session: miss, simulate, persist.
	s1 := NewSession(Config{Workloads: []string{"BS"}, Checkpoint: st1})
	r1, err := s1.Record("BS", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := s1.Replay(r1, exec.KindCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _, _ := st1.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("first run stats: %d hits, %d misses; want 0, 1", hits, misses)
	}

	// Second session over the same directory: pure cache hit, no record
	// needed for the replay itself.
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(Config{Workloads: []string{"BS"}, Checkpoint: st2})
	r2, err := s2.Record("BS", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s2.Replay(r2, exec.KindCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _, _ := st2.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("resume stats: %d hits, %d misses; want 1, 0", hits, misses)
	}

	for i := range want {
		if got1[i] != want[i] {
			t.Fatalf("event %d: checkpointed live run diverged from plain run:\n%+v\nvs\n%+v", i, got1[i], want[i])
		}
		if got2[i] != want[i] {
			t.Fatalf("event %d: cache-served run diverged from plain run:\n%+v\nvs\n%+v", i, got2[i], want[i])
		}
	}
}

// TestCheckpointKeySeparatesConfigurations: different platform kinds,
// thread counts and fault configs must land on different keys.
func TestCheckpointKeySeparatesConfigurations(t *testing.T) {
	s := NewSession(Config{})
	r := &Run{Name: "BS", Factor: 1.5}
	base := s.runKey(r, exec.KindCharon, 8, fault.Config{})
	seen := map[string]string{base: "base"}
	for label, key := range map[string]string{
		"platform": s.runKey(r, exec.KindDDR4, 8, fault.Config{}),
		"threads":  s.runKey(r, exec.KindCharon, 4, fault.Config{}),
		"fault":    s.runKey(r, exec.KindCharon, 8, fault.Config{Rate: 0.01, Seed: 1}),
		"factor":   s.runKey(&Run{Name: "BS", Factor: 2.0}, exec.KindCharon, 8, fault.Config{}),
		"workload": s.runKey(&Run{Name: "ALS", Factor: 1.5}, exec.KindCharon, 8, fault.Config{}),
	} {
		if prev, dup := seen[key]; dup {
			t.Fatalf("key for %q collides with %q: %s", label, prev, key)
		}
		seen[key] = label
	}
}

// TestCheckpointDisabledWithObservability: a session carrying a metrics
// registry or trace recorder must bypass the store entirely — cached
// replays execute no simulation and would skew the counters.
func TestCheckpointDisabledWithObservability(t *testing.T) {
	st := newStore(t)
	for _, cfg := range []Config{
		{Checkpoint: st, Metrics: metrics.NewRegistry()},
		{Checkpoint: st, Trace: metrics.NewRecorder(0)},
	} {
		if got := NewSession(cfg).checkpointStore(); got != nil {
			t.Fatalf("checkpointStore() with observability enabled = %v, want nil", got)
		}
	}
	if NewSession(Config{Checkpoint: st}).checkpointStore() != st {
		t.Fatal("checkpointStore() without observability should return the store")
	}
}

// TestSessionContextCancellation: a cancelled session context stops the
// sweep with an error satisfying errors.Is(err, context.Canceled) and no
// partial corruption (the error is reported, not panicked).
func TestSessionContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(Config{Workloads: []string{"BS"}, Ctx: ctx})
	_, err := Fig2(s)
	if err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestWatchdogAbortConvertsToError: a watchdog abort (sim.Aborted panic)
// escaping a run inside the worker pool must come back as a structured
// error satisfying errors.Is(err, sim.ErrNoProgress) — with the
// diagnostic dump in the message — not as a raw panic with a stack.
func TestWatchdogAbortConvertsToError(t *testing.T) {
	np := &sim.NoProgressError{Reason: "test wedge",
		Diag: sim.Diagnostics{Steps: 42, StallSteps: 42}}
	for _, par := range []int{1, 4} {
		err := forEach(par, 2, func(i int) error {
			if i == 1 {
				panic(sim.Aborted{Err: np})
			}
			return nil
		})
		if err == nil {
			t.Fatalf("par=%d: abort swallowed", par)
		}
		if !errors.Is(err, sim.ErrNoProgress) {
			t.Fatalf("par=%d: error %v does not unwrap to sim.ErrNoProgress", par, err)
		}
		if !strings.Contains(err.Error(), "test wedge") || !strings.Contains(err.Error(), "stalled steps") {
			t.Fatalf("par=%d: error %q lost the diagnostic dump", par, err)
		}
		if strings.Contains(err.Error(), "goroutine") {
			t.Fatalf("par=%d: structured abort was treated as a raw panic: %q", par, err)
		}
	}
}

// TestWatchdogWallClockAbortsReplay: the session's RunTimeout arms the
// engine watchdog heartbeat inside each run, so a wall-clock overrun on a
// real replay aborts with a structured error (either the heartbeat's
// ErrNoProgress or the pool timer's timeout, whichever fires first —
// both are errors, never hangs).
func TestWatchdogWallClockAbortsReplay(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"BS"}, RunTimeout: time.Nanosecond})
	_, err := Fig2(s)
	if err == nil {
		t.Fatal("1ns run budget let a full sweep through")
	}
	if !errors.Is(err, sim.ErrNoProgress) && !strings.Contains(err.Error(), "run timeout") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}
