package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"charonsim/internal/exec"
	"charonsim/internal/fault"
)

// TestForEachPanicRecovery: a panicking run becomes that index's error —
// with the stack attached — instead of crashing the sweep, at every
// parallelism level, and the other indices still run.
func TestForEachPanicRecovery(t *testing.T) {
	for _, par := range []int{1, 4} {
		var mu sync.Mutex
		ran := map[int]bool{}
		err := forEach(par, 8, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			if i == 2 {
				panic("invariant tripped")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("par=%d: panic swallowed", par)
		}
		if !strings.Contains(err.Error(), "run 2 panicked: invariant tripped") {
			t.Fatalf("par=%d: error %q missing panic provenance", par, err)
		}
		if !strings.Contains(err.Error(), "goroutine") {
			t.Fatalf("par=%d: error missing stack trace", par)
		}
		if par > 1 && len(ran) != 8 {
			t.Fatalf("par=%d: a panic stopped other runs (%d/8 ran)", par, len(ran))
		}
	}
}

// TestForEachTimeout: a run exceeding the budget fails with a timeout
// error naming the index; fast runs are untouched; zero disables.
func TestForEachTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block) // release the abandoned goroutine
	err := forEachCtx(context.Background(), 4, 20*time.Millisecond, 3, func(i int) error {
		if i == 1 {
			<-block
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "run 1 exceeded the 20ms run timeout") {
		t.Fatalf("got %v, want index-1 timeout error", err)
	}

	if err := forEachCtx(context.Background(), 2, 0, 4, func(i int) error { return nil }); err != nil {
		t.Fatalf("zero timeout must disable the budget: %v", err)
	}
	if err := forEachCtx(context.Background(), 2, time.Minute, 4, func(i int) error { return nil }); err != nil {
		t.Fatalf("fast runs must beat a generous budget: %v", err)
	}
}

// TestConfigForEachBindsKnobs: the Config-bound pool honors RunTimeout and
// Parallelism together.
func TestConfigForEachBindsKnobs(t *testing.T) {
	cfg := Config{Parallelism: 2, RunTimeout: 15 * time.Millisecond}
	block := make(chan struct{})
	defer close(block)
	err := cfg.forEach(2, func(i int) error {
		if i == 0 {
			<-block
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded the 15ms run timeout") {
		t.Fatalf("got %v, want timeout from Config.RunTimeout", err)
	}
}

// TestReplayFaultZeroConfigIsReplay: replaying with a zero (disabled)
// fault config takes the plain platform path — per-event results exactly
// equal to Replay on a fault-free session.
func TestReplayFaultZeroConfigIsReplay(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"BS"}})
	r, err := s.Record("BS", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Replay(r, exec.KindCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := s.ReplayFault(r, exec.KindCharon, 8, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(zero) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(zero))
	}
	for i := range plain {
		if plain[i] != zero[i] {
			t.Fatalf("event %d diverged:\nplain: %+v\nzero:  %+v", i, plain[i], zero[i])
		}
	}
}
