package experiments

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"charonsim/internal/gc"
)

// TestSessionConcurrentRecord hammers Record/RecordMode from 32 goroutines
// over a handful of keys and asserts single-flight semantics: every key is
// executed exactly once, every caller observes the same *Run, and no
// caller sees a partially built run. Run with -race to let the detector
// guard the session's internals.
func TestSessionConcurrentRecord(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"BS"}})

	var mu sync.Mutex
	execs := map[string]int{}
	s.SetRecordHook(func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
	})

	type call struct {
		factor float64
		mode   gc.Mode
	}
	// Two factors plus an explicit-mode alias of the first: three call
	// shapes but only two distinct keys (Record(f) == RecordMode(f, ModePS)).
	calls := []call{{1.5, gc.ModePS}, {1.25, gc.ModePS}}

	const goroutines = 32
	runs := make([]*Run, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer done.Done()
			start.Wait() // maximize overlap: all goroutines enter together
			c := calls[g%len(calls)]
			if g%3 == 0 {
				runs[g], errs[g] = s.RecordMode("BS", c.factor, c.mode)
			} else {
				runs[g], errs[g] = s.Record("BS", c.factor)
			}
		}()
	}
	start.Done()
	done.Wait()

	byKey := map[string]*Run{}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if runs[g] == nil || runs[g].Col == nil || len(runs[g].Col.Log) == 0 {
			t.Fatalf("goroutine %d: incomplete run %+v", g, runs[g])
		}
		key := RecordKey("BS", calls[g%len(calls)].factor, gc.ModePS)
		if prev, ok := byKey[key]; ok && prev != runs[g] {
			t.Fatalf("goroutine %d: got a different *Run for key %s", g, key)
		}
		byKey[key] = runs[g]
	}
	if len(byKey) != len(calls) {
		t.Fatalf("observed %d keys, want %d", len(byKey), len(calls))
	}
	for key, n := range execs {
		if n != 1 {
			t.Fatalf("key %s executed %d times, want exactly 1", key, n)
		}
	}
	if len(execs) != len(calls) {
		t.Fatalf("executed %d keys (%v), want %d", len(execs), execs, len(calls))
	}
	if got := s.Executions(); got != len(calls) {
		t.Fatalf("Executions() = %d, want %d", got, len(calls))
	}
}

// TestSessionConcurrentRecordError: a failing key is also single-flight —
// executed once, with every concurrent caller receiving the cached error.
func TestSessionConcurrentRecordError(t *testing.T) {
	s := NewSession(Config{})
	var mu sync.Mutex
	execs := 0
	s.SetRecordHook(func(string) {
		mu.Lock()
		execs++
		mu.Unlock()
	})

	const goroutines = 16
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			_, errs[g] = s.Record("no-such-workload", 1.5)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: unknown workload accepted", g)
		}
	}
	if execs != 1 {
		t.Fatalf("failing key executed %d times, want exactly 1", execs)
	}
	// And the error stays cached for later callers.
	if _, err := s.Record("no-such-workload", 1.5); err == nil {
		t.Fatal("cached error lost")
	}
	if execs != 1 {
		t.Fatalf("cache hit re-executed the recording (%d executions)", execs)
	}
}

// TestConfigWithDefaults covers zero-value and explicit fields, including
// the Parallelism field the concurrent harness introduced.
func TestConfigWithDefaults(t *testing.T) {
	allSix := []string{"BS", "KM", "LR", "CC", "PR", "ALS"}
	tests := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "all zero",
			in:   Config{},
			want: Config{Threads: 8, Factor: 1.5, Workloads: allSix, Parallelism: runtime.GOMAXPROCS(0)},
		},
		{
			name: "explicit fields survive",
			in:   Config{Threads: 4, Factor: 2.0, Workloads: []string{"CC"}, Parallelism: 3},
			want: Config{Threads: 4, Factor: 2.0, Workloads: []string{"CC"}, Parallelism: 3},
		},
		{
			name: "negative parallelism clamps to serial",
			in:   Config{Parallelism: -7},
			want: Config{Threads: 8, Factor: 1.5, Workloads: allSix, Parallelism: 1},
		},
		{
			name: "parallelism one stays one",
			in:   Config{Parallelism: 1},
			want: Config{Threads: 8, Factor: 1.5, Workloads: allSix, Parallelism: 1},
		},
		{
			name: "threads and factor default independently",
			in:   Config{Threads: 16},
			want: Config{Threads: 16, Factor: 1.5, Workloads: allSix, Parallelism: runtime.GOMAXPROCS(0)},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			if got.Threads != tc.want.Threads || got.Factor != tc.want.Factor ||
				got.Parallelism != tc.want.Parallelism {
				t.Fatalf("withDefaults() = %+v, want %+v", got, tc.want)
			}
			if len(got.Workloads) != len(tc.want.Workloads) {
				t.Fatalf("workloads %v, want %v", got.Workloads, tc.want.Workloads)
			}
			for i := range got.Workloads {
				if got.Workloads[i] != tc.want.Workloads[i] {
					t.Fatalf("workloads %v, want %v", got.Workloads, tc.want.Workloads)
				}
			}
		})
	}
}

// TestForEach covers the worker pool: full index coverage, bounded
// concurrency, serial fallback, and lowest-index error selection.
func TestForEach(t *testing.T) {
	t.Run("covers all indices at any parallelism", func(t *testing.T) {
		for _, par := range []int{-1, 0, 1, 2, 7, 64} {
			var mu sync.Mutex
			seen := map[int]int{}
			err := forEach(par, 20, func(i int) error {
				mu.Lock()
				seen[i]++
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != 20 {
				t.Fatalf("par=%d: visited %d indices", par, len(seen))
			}
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("par=%d: index %d visited %d times", par, i, n)
				}
			}
		}
	})
	t.Run("empty and negative n", func(t *testing.T) {
		for _, n := range []int{0, -3} {
			if err := forEach(8, n, func(int) error { t.Fatal("called"); return nil }); err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Run("lowest-index error wins", func(t *testing.T) {
		e3, e7 := &indexError{3}, &indexError{7}
		for _, par := range []int{1, 4} {
			err := forEach(par, 10, func(i int) error {
				switch i {
				case 3:
					return e3
				case 7:
					return e7
				}
				return nil
			})
			if err != e3 {
				t.Fatalf("par=%d: got %v, want error from index 3", par, err)
			}
		}
	})
	t.Run("serial stops at first error", func(t *testing.T) {
		ran := 0
		err := forEach(1, 10, func(i int) error {
			ran++
			if i == 2 {
				return &indexError{2}
			}
			return nil
		})
		if err == nil || ran != 3 {
			t.Fatalf("err=%v ran=%d, want error after 3 calls", err, ran)
		}
	})
	t.Run("grid is row-major", func(t *testing.T) {
		var mu sync.Mutex
		var cells [][2]int
		if err := forEachGrid(4, 3, 2, func(i, j int) error {
			mu.Lock()
			cells = append(cells, [2]int{i, j})
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(cells) != 6 {
			t.Fatalf("visited %d cells", len(cells))
		}
		seen := map[[2]int]bool{}
		for _, c := range cells {
			if c[0] < 0 || c[0] > 2 || c[1] < 0 || c[1] > 1 || seen[c] {
				t.Fatalf("bad or duplicate cell %v", c)
			}
			seen[c] = true
		}
	})
}

type indexError struct{ i int }

func (e *indexError) Error() string { return "error at index" }

// TestParallelFigureMatchesSerial renders Figure 12 from a serial session
// and a parallelism-8 session and requires byte-identical output — the
// in-package determinism gate (the full-suite one lives in the root
// package). Under -race this doubles as a race test of the fan-out path.
func TestParallelFigureMatchesSerial(t *testing.T) {
	serial := NewSession(Config{Workloads: []string{"BS"}, Parallelism: -1})
	rs, err := Fig12(serial)
	if err != nil {
		t.Fatal(err)
	}
	par := NewSession(Config{Workloads: []string{"BS"}, Parallelism: 8})
	rp, err := Fig12(par)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.Render(), rs.Render(); got != want {
		t.Fatalf("parallel render diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if !strings.Contains(rs.Render(), "BS") {
		t.Fatal("render missing workload row")
	}
}
