package experiments

import (
	"fmt"

	"charonsim/internal/charon"
	"charonsim/internal/exec"
	"charonsim/internal/hmc"
	"charonsim/internal/stats"
)

// AblationPoint is one configuration in a design-space sweep.
type AblationPoint struct {
	Label string
	Opt   exec.Options
}

// AblationResult holds Charon GC speedup over the DDR4 host at each point
// of one sweep, geomeaned over the session's workloads.
type AblationResult struct {
	Name   string
	Points []AblationPoint
	// Speedup[i] corresponds to Points[i].
	Speedup []float64
	// Default is the index of the Table 2 configuration within Points.
	Default int
}

// ablationWorkloads picks the framework-representative subset (one per
// demographic: Spark ML, graph, huge-object) from the session's set, so
// the 17-point design sweep stays tractable.
func ablationWorkloads(cfg Config) []string {
	want := map[string]bool{"BS": true, "CC": true, "ALS": true}
	var out []string
	for _, w := range cfg.Workloads {
		if want[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = cfg.Workloads
	}
	return out
}

// runAblation replays the representative workloads on Charon at every
// sweep point. The (point, workload) grid fans out across the session's
// parallelism: each cell builds its own Charon platform from the point's
// options, so no sweep point shares simulator state with another.
func runAblation(s *Session, name string, points []AblationPoint, def int) (*AblationResult, error) {
	cfg := s.Config()
	res := &AblationResult{Name: name, Points: points, Default: def}
	wls := ablationWorkloads(cfg)
	grid := make([][]float64, len(points)) // grid[pt][w] speedup
	for i := range grid {
		grid[i] = make([]float64, len(wls))
	}
	err := cfg.forEachGrid(len(points), len(wls), func(pi, wi int) error {
		w := wls[wi]
		run, err := s.Record(w, cfg.Factor)
		if err != nil {
			return err
		}
		base, err := s.replayTotals(w, exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		p, err := s.NewPlatform(exec.KindCharon, run.Env, cfg.Threads, points[pi].Opt)
		if err != nil {
			return err
		}
		var results []exec.Result
		for _, ev := range run.Col.Log {
			results = append(results, p.Replay(ev, cfg.Threads))
		}
		s.Observe(p)
		t := Sum(exec.KindCharon, results, cfg.Threads)
		grid[pi][wi] = base.Duration.Seconds() / t.Duration.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi := range points {
		gm, err := stats.Geomean(grid[pi])
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", points[pi].Label, err)
		}
		res.Speedup = append(res.Speedup, gm)
	}
	return res, nil
}

// charonOpt builds an Options with one accelerator field customized.
func charonOpt(mutate func(*charon.Config)) exec.Options {
	cfg := charon.DefaultConfig()
	mutate(&cfg)
	return exec.Options{CharonConfig: &cfg}
}

// AblateMAI sweeps the MAI request-buffer depth — the structure that
// bounds each cube's in-flight memory parallelism (Section 4.1).
func AblateMAI(s *Session) (*AblationResult, error) {
	var pts []AblationPoint
	def := 0
	for i, n := range []int{4, 8, 16, 32, 64} {
		n := n
		pts = append(pts, AblationPoint{
			Label: fmt.Sprintf("MAI=%d", n),
			Opt:   charonOpt(func(c *charon.Config) { c.MAIEntries = n }),
		})
		if n == 32 {
			def = i
		}
	}
	return runAblation(s, "MAI entries", pts, def)
}

// AblateStreamGrain sweeps the Copy/Search access granularity (the paper
// uses the HMC maximum of 256 B; smaller grains waste request slots).
func AblateStreamGrain(s *Session) (*AblationResult, error) {
	var pts []AblationPoint
	def := 0
	for i, g := range []uint64{64, 128, 256} {
		g := g
		pts = append(pts, AblationPoint{
			Label: fmt.Sprintf("grain=%dB", g),
			Opt:   charonOpt(func(c *charon.Config) { c.StreamGrain = g }),
		})
		if g == 256 {
			def = i
		}
	}
	return runAblation(s, "Copy/Search stream granularity", pts, def)
}

// AblateBitmapCache sweeps the bitmap cache capacity (Section 4.5's 8 KB).
func AblateBitmapCache(s *Session) (*AblationResult, error) {
	var pts []AblationPoint
	def := 0
	for i, kb := range []uint64{1, 4, 8, 32} {
		kb := kb
		pts = append(pts, AblationPoint{
			Label: fmt.Sprintf("bmcache=%dKB", kb),
			Opt:   charonOpt(func(c *charon.Config) { c.BitmapCacheBytes = kb << 10 }),
		})
		if kb == 8 {
			def = i
		}
	}
	return runAblation(s, "bitmap cache capacity", pts, def)
}

// AblateUnits sweeps the per-cube Copy/Search unit count (Table 2: 2).
func AblateUnits(s *Session) (*AblationResult, error) {
	var pts []AblationPoint
	def := 0
	for i, n := range []int{1, 2, 4} {
		n := n
		pts = append(pts, AblationPoint{
			Label: fmt.Sprintf("copy-units=%d/cube", n),
			Opt:   charonOpt(func(c *charon.Config) { c.CopySearchPerCube = n }),
		})
		if n == 2 {
			def = i
		}
	}
	return runAblation(s, "Copy/Search units per cube", pts, def)
}

// AblateTopology compares the star interconnect against a daisy chain
// (Section 4.6 discusses topology flexibility; [71] studies bandwidth-
// scalable alternatives).
func AblateTopology(s *Session) (*AblationResult, error) {
	pts := []AblationPoint{
		{Label: "star", Opt: exec.Options{Topology: hmc.Star}},
		{Label: "chain", Opt: exec.Options{Topology: hmc.Chain}},
	}
	return runAblation(s, "cube topology", pts, 0)
}

// Ablations runs every design-space sweep, in a fixed order. The sweeps
// themselves run one after another (each already fans its point grid out),
// so the combined goroutine count stays bounded by the configured
// parallelism.
func Ablations(s *Session) ([]*AblationResult, error) {
	sweeps := []func(*Session) (*AblationResult, error){
		AblateMAI, AblateStreamGrain, AblateBitmapCache, AblateUnits, AblateTopology,
	}
	out := make([]*AblationResult, len(sweeps))
	for i, f := range sweeps {
		r, err := f(s)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Render prints one sweep.
func (r *AblationResult) Render() string {
	tb := stats.NewTable(fmt.Sprintf("Ablation: %s (Charon geomean speedup over DDR4)", r.Name),
		"config", "speedup")
	for i, pt := range r.Points {
		label := pt.Label
		if i == r.Default {
			label += " (paper)"
		}
		tb.AddRow(label, fmt.Sprintf("%.2f", r.Speedup[i]))
	}
	return tb.String()
}

// RenderAblations prints all sweeps.
func RenderAblations(rs []*AblationResult) string {
	out := ""
	for _, r := range rs {
		out += r.Render() + "\n"
	}
	return out
}
