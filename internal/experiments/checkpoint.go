package experiments

import (
	"encoding/json"
	"fmt"

	"charonsim/internal/checkpoint"
	"charonsim/internal/exec"
	"charonsim/internal/fault"
)

// resultSchema versions the serialized []exec.Result payload; bump it
// whenever exec.Result (or anything feeding it) changes shape or timing
// semantics, so stale sweeps re-execute instead of replaying old numbers.
const resultSchema = 1

// checkpointStore returns the session's store, or nil when checkpointing
// is disabled or observability is active: a replay served from cache
// executes no simulation, so it would contribute nothing to the metrics
// registry or trace recorder and silently skew their output.
func (s *Session) checkpointStore() *checkpoint.Store {
	if s.cfg.Checkpoint == nil || s.cfg.Metrics.Enabled() || s.cfg.Trace != nil {
		return nil
	}
	return s.cfg.Checkpoint
}

// runKey canonicalizes the fully-resolved configuration of one replay
// unit. Everything that can change the result is in the key — recording
// identity (workload, factor, collector mode), platform kind, GC thread
// count — plus, per the documented conservative-invalidation rule, the
// knobs that *shouldn't* change results but guard against drift: the
// complete fault configuration and the session parallelism.
func (s *Session) runKey(r *Run, kind exec.Kind, threads int, fc fault.Config) string {
	return fmt.Sprintf(
		"replay/v%d|wl=%s|factor=%.6g|mode=%v|platform=%s|threads=%d|par=%d|%s",
		resultSchema, r.Name, r.Factor, r.Mode, kind, threads, s.cfg.Parallelism, faultKey(fc))
}

// faultKey canonicalizes every fault knob. Field-by-field (not %+v) so a
// fault.Config field addition forces a conscious decision here.
func faultKey(fc fault.Config) string {
	return fmt.Sprintf(
		"fault:rate=%.6g,seed=%d,crc=%.6g,budget=%d,backoff=%d,ecc=%.6g,ecclat=%d,bank=%.6g,ufail=%.6g,udeg=%.6g,dfac=%.6g,failall=%t,deadline=%d",
		fc.Rate, fc.Seed, fc.LinkCRCRate, fc.RetryBudget, uint64(fc.RetryBackoff),
		fc.ECCRate, uint64(fc.ECCLatency), fc.HardBankRate, fc.UnitFailRate,
		fc.UnitDegradeRate, fc.DegradeFactor, fc.FailAllUnits, uint64(fc.OffloadDeadline))
}

// getCachedResults decodes a stored replay. Decode failures are treated
// as a miss (the entry is deleted so it gets rebuilt) — the store's
// checksum makes them near-impossible, but a miss is always safe.
func getCachedResults(st *checkpoint.Store, key string) ([]exec.Result, bool) {
	payload, ok := st.Get(key)
	if !ok {
		return nil, false
	}
	var out []exec.Result
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, false
	}
	return out, true
}

// putCachedResults persists one completed replay. Errors are swallowed by
// design (counted in the store's stats): checkpointing must never fail a
// sweep that would otherwise succeed.
func putCachedResults(st *checkpoint.Store, key string, results []exec.Result) {
	payload, err := json.Marshal(results)
	if err != nil {
		return
	}
	_ = st.Put(key, payload)
}
