package experiments

import (
	"fmt"

	"charonsim/internal/exec"
	"charonsim/internal/gc"
	"charonsim/internal/stats"
)

// CollectorStudyResult quantifies Table 1: Charon's speedup under each of
// HotSpot's three production collectors. ParallelScavenge and G1 use all
// three primitives; CMS never issues Bitmap Count (no compaction).
type CollectorStudyResult struct {
	Workload []string
	Modes    []gc.Mode
	// Speedup[w][mode] of Charon over the DDR4 host.
	Speedup map[string]map[gc.Mode]float64
	// BitmapCountShare[w][mode]: fraction of host GC time in Bitmap Count.
	BitmapCountShare map[string]map[gc.Mode]float64
	// FullGCs[w][mode]: non-minor collections recorded (compactions,
	// mark-sweeps or mixed collections respectively).
	FullGCs map[string]map[gc.Mode]int
	// Geomean[mode] across workloads.
	Geomean map[gc.Mode]float64
}

// StudyModes are the collectors compared, in Table 1's order.
var StudyModes = []gc.Mode{gc.ModePS, gc.ModeG1, gc.ModeCMS}

// CollectorStudy runs each workload under each collector mode and replays
// the logs on the DDR4 host and on Charon.
func CollectorStudy(s *Session) (*CollectorStudyResult, error) {
	cfg := s.Config()
	res := &CollectorStudyResult{
		Workload: cfg.Workloads, Modes: StudyModes,
		Speedup:          map[string]map[gc.Mode]float64{},
		BitmapCountShare: map[string]map[gc.Mode]float64{},
		FullGCs:          map[string]map[gc.Mode]int{},
		Geomean:          map[gc.Mode]float64{},
	}
	// Every (workload, collector-mode) cell records and replays
	// independently, so the full grid fans out.
	type cell struct {
		speedup float64
		bcShare float64
		fullGCs int
	}
	grid := make([][]cell, len(cfg.Workloads)) // grid[w][mi] aligned to StudyModes
	for i := range grid {
		grid[i] = make([]cell, len(StudyModes))
	}
	err := cfg.forEachGrid(len(cfg.Workloads), len(StudyModes), func(w, mi int) error {
		run, err := s.RecordMode(cfg.Workloads[w], cfg.Factor, StudyModes[mi])
		if err != nil {
			return err
		}
		baseRes, err := s.Replay(run, exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		chRes, err := s.Replay(run, exec.KindCharon, cfg.Threads)
		if err != nil {
			return err
		}
		base := Sum(exec.KindDDR4, baseRes, cfg.Threads)
		ch := Sum(exec.KindCharon, chRes, cfg.Threads)
		c := cell{speedup: base.Duration.Seconds() / ch.Duration.Seconds()}

		var total float64
		for _, v := range base.PrimTime {
			total += v.Seconds()
		}
		if total > 0 {
			c.bcShare = base.PrimTime[gc.PrimBitmapCount].Seconds() / total
		}
		for _, ev := range run.Col.Log {
			if ev.Kind != gc.Minor {
				c.fullGCs++
			}
		}
		grid[w][mi] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := map[gc.Mode][]float64{}
	for w, name := range cfg.Workloads {
		res.Speedup[name] = map[gc.Mode]float64{}
		res.BitmapCountShare[name] = map[gc.Mode]float64{}
		res.FullGCs[name] = map[gc.Mode]int{}
		for mi, mode := range StudyModes {
			res.Speedup[name][mode] = grid[w][mi].speedup
			res.BitmapCountShare[name][mode] = grid[w][mi].bcShare
			res.FullGCs[name][mode] = grid[w][mi].fullGCs
			acc[mode] = append(acc[mode], grid[w][mi].speedup)
		}
	}
	for _, m := range StudyModes {
		gm, err := stats.Geomean(acc[m])
		if err != nil {
			return nil, fmt.Errorf("collector study %v: %w", m, err)
		}
		res.Geomean[m] = gm
	}
	return res, nil
}

// Render prints the collector comparison.
func (r *CollectorStudyResult) Render() string {
	cols := []string{"workload"}
	for _, m := range r.Modes {
		cols = append(cols, m.String()+" x", m.String()+" bc%")
	}
	tb := stats.NewTable("Table 1 study: Charon speedup per collector (x) and Bitmap Count share of host GC time (bc%)", cols...)
	for _, w := range r.Workload {
		row := []string{w}
		for _, m := range r.Modes {
			row = append(row,
				fmt.Sprintf("%.2f", r.Speedup[w][m]),
				fmt.Sprintf("%.1f", r.BitmapCountShare[w][m]*100))
		}
		tb.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, m := range r.Modes {
		row = append(row, fmt.Sprintf("%.2f", r.Geomean[m]), "")
	}
	tb.AddRow(row...)
	return tb.String()
}
