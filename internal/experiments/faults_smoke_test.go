package experiments

import (
	"testing"

	"charonsim/internal/fault"
)

// TestFaultSweepShape runs the sweep on a two-workload subset and checks
// the degradation curve: healthy Charon beats the host baseline, columns
// never improve dramatically with more faults, and the all-failed column
// converges to the baseline (ratio 1.0) — GC time equals the host path.
func TestFaultSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep replays 2 workloads x 5 fault columns")
	}
	s := NewSession(Config{Workloads: []string{"BS", "KM"}})
	r, err := FigFaultSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Geomean) - 1
	for _, w := range r.Workload {
		row := r.Norm[w]
		if row[0] >= 1 {
			t.Errorf("%s: healthy Charon ratio %.3f not below the host baseline", w, row[0])
		}
		if row[last] != 1.0 {
			t.Errorf("%s: all-failed ratio %.6f, want exactly 1.0 (host path)", w, row[last])
		}
		for c := 1; c < last; c++ {
			if row[c] < row[0]*0.99 {
				t.Errorf("%s: fault rate %g made GC faster (%.3f < healthy %.3f)",
					w, r.Rates[c-1], row[c], row[0])
			}
		}
	}
	if r.Geomean[last] != 1.0 {
		t.Errorf("all-failed geomean %.6f, want 1.0", r.Geomean[last])
	}
	t.Log("\n" + r.Render())
}

// TestFaultSweepColumnsInheritSessionKnobs pins the column derivation.
func TestFaultSweepColumnsInheritSessionKnobs(t *testing.T) {
	cols := faultSweepColumns(fault.Config{})
	if len(cols) != len(FaultSweepRates)+2 {
		t.Fatalf("columns = %d, want %d", len(cols), len(FaultSweepRates)+2)
	}
	if cols[0].Enabled() {
		t.Fatal("healthy column must be disabled")
	}
	if cols[1].Seed != FaultSweepSeed {
		t.Fatalf("default seed = %d, want %d", cols[1].Seed, FaultSweepSeed)
	}
	if !cols[len(cols)-1].FailAllUnits {
		t.Fatal("last column must fail all units")
	}
	cols = faultSweepColumns(fault.Config{Seed: 7, OffloadDeadline: 123})
	if cols[1].Seed != 7 || cols[1].OffloadDeadline != 123 {
		t.Fatalf("session seed/deadline not inherited: %+v", cols[1])
	}
}
