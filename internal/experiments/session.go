// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the simulator: each Fig*/Table* function
// runs the required workloads, replays their recorded GC logs on the
// relevant platforms, and returns a typed result that renders the same
// rows/series the paper plots. DESIGN.md §3 maps each experiment to the
// modules it exercises; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"charonsim/internal/checkpoint"
	"charonsim/internal/energy"
	"charonsim/internal/exec"
	"charonsim/internal/fault"
	"charonsim/internal/gc"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
	"charonsim/internal/stats"
	"charonsim/internal/workload"
)

// Config controls an experiment session.
type Config struct {
	// Threads is the GC thread count (default 8, matching the 8-core host).
	Threads int
	// Factor is the heap overprovisioning factor (default 1.5, inside the
	// paper's 1.25-2x policy).
	Factor float64
	// Workloads restricts the benchmark set (default: all six).
	Workloads []string
	// Parallelism bounds the number of concurrent record/replay workers
	// the experiment harness fans out (default runtime.GOMAXPROCS(0);
	// values < 0 force serial execution). Every simulation unit — one
	// (workload, factor, mode) recording or one (run, platform, threads)
	// replay — shares no mutable state with any other, so results are
	// byte-identical at every parallelism level.
	Parallelism int
	// Metrics, when non-nil, accumulates every replayed platform's
	// component counters (cores, caches, DRAM banks, HMC links/vaults,
	// Charon units). Registries merge by sum/max, both commutative, so a
	// snapshot's values are identical at every parallelism level.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives event spans (GC pauses, flushes,
	// Charon offloads) from every replay.
	Trace *metrics.Recorder
	// Fault injects the configured reliability faults into every replayed
	// platform (see internal/fault). Recordings are unaffected — the
	// collector's functional log is fault-independent; only replay timing
	// degrades. The zero value keeps every report byte-identical to a
	// fault-free harness.
	Fault fault.Config
	// RunTimeout, when positive, bounds each simulation unit's wall-clock
	// time in the worker pool; a run exceeding it fails with a timeout
	// error instead of hanging the sweep. Zero disables the budget. The
	// same budget arms the engine watchdog's wall-clock heartbeat, which
	// — unlike the pool's timer — stops the wedged goroutine itself.
	RunTimeout time.Duration
	// Ctx, when non-nil, cancels the session's work: the worker pool stops
	// dispatching, and in-flight replays abort at GC-event / event-loop
	// granularity with an error satisfying errors.Is(err, ctx.Err()).
	// Nil means context.Background() (never cancelled).
	Ctx context.Context
	// Checkpoint, when non-nil, makes sweeps resumable: every replay unit
	// is keyed by a canonical hash of its fully-resolved configuration,
	// consulted before dispatching and persisted (atomically, with a
	// checksum) after completing. Cached units are byte-identical to live
	// ones, so a resumed sweep's report matches an uninterrupted run.
	// Ignored while Metrics or Trace are enabled: served-from-cache
	// replays would not feed the component counters, silently skewing the
	// snapshot (the public Config.Validate rejects the combination).
	Checkpoint *checkpoint.Store
	// WatchdogStalls bounds consecutive engine/scheduler steps without
	// simulated-time advance before a run is declared wedged and aborted
	// with sim.ErrNoProgress plus a diagnostic dump. 0 selects
	// sim.DefaultStallLimit; negative disables the check.
	WatchdogStalls int
	// WatchdogQueue bounds the event-queue depth the same way. 0 selects
	// sim.DefaultQueueLimit; negative disables the check.
	WatchdogQueue int
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Factor == 0 {
		c.Factor = 1.5
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.Names()
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// watchdog resolves the session's progress-monitor configuration for one
// run unit: the stall/queue knobs, the per-run wall-clock heartbeat, and
// the cancellation context.
func (c Config) watchdog() sim.Watchdog {
	wd := sim.DefaultWatchdog()
	switch {
	case c.WatchdogStalls > 0:
		wd.StallLimit = uint64(c.WatchdogStalls)
	case c.WatchdogStalls < 0:
		wd.StallLimit = 0
	}
	switch {
	case c.WatchdogQueue > 0:
		wd.QueueLimit = c.WatchdogQueue
	case c.WatchdogQueue < 0:
		wd.QueueLimit = 0
	}
	wd.WallClock = c.RunTimeout
	wd.Ctx = c.Ctx
	return wd
}

// Run is one recorded workload execution.
type Run struct {
	Name    string
	Factor  float64 // heap overprovisioning the recording ran at
	Mode    gc.Mode // collector mode the recording ran under
	Spec    workload.Spec
	Col     *gc.Collector
	Env     exec.Env
	MutTime sim.Time
}

// Session caches recorded workload runs and platform replays so that the
// full experiment suite records each workload once.
//
// Session is safe for concurrent use: Record/RecordMode have single-flight
// semantics — concurrent calls for the same (workload, factor, mode) key
// execute the recording exactly once while the other callers block on the
// in-flight result. Replay constructs a fresh platform per call and only
// reads the (immutable after recording) Run, so any number of replays may
// proceed concurrently.
type Session struct {
	cfg Config

	mu   sync.Mutex
	runs map[string]*inflight // key: name@factor@mode

	// onRecord, when set, is invoked (synchronously, off the lock) each
	// time a recording is actually executed — the exactly-once counter
	// hook the concurrency tests use.
	onRecord func(key string)
}

// inflight is a single-flight slot: the first caller claims the key and
// executes; done is closed when run/err are final. Errors are cached too —
// recording is deterministic, so a failed key would fail identically on
// retry.
type inflight struct {
	done chan struct{}
	run  *Run
	err  error
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg.withDefaults(), runs: map[string]*inflight{}}
}

// Config returns the session configuration (defaults applied).
func (s *Session) Config() Config { return s.cfg }

// SetRecordHook registers a callback fired once per actually-executed
// recording (not per cache hit). Must be set before the session is shared
// across goroutines.
func (s *Session) SetRecordHook(fn func(key string)) { s.onRecord = fn }

// RecordKey is the memoization key for (name, factor, mode).
func RecordKey(name string, factor float64, mode gc.Mode) string {
	return fmt.Sprintf("%s@%.3f@%v", name, factor, mode)
}

// Record returns the recorded run for a workload at a heap factor,
// executing it on first use.
func (s *Session) Record(name string, factor float64) (*Run, error) {
	return s.RecordMode(name, factor, gc.ModePS)
}

// RecordMode is Record with collector-mode selection (Table 1's three
// collectors), for the applicability studies.
func (s *Session) RecordMode(name string, factor float64, mode gc.Mode) (*Run, error) {
	key := RecordKey(name, factor, mode)
	s.mu.Lock()
	if f, ok := s.runs[key]; ok {
		s.mu.Unlock()
		<-f.done // block on the in-flight (or completed) execution
		return f.run, f.err
	}
	f := &inflight{done: make(chan struct{})}
	s.runs[key] = f
	s.mu.Unlock()

	if s.onRecord != nil {
		s.onRecord(key)
	}
	f.run, f.err = record(name, factor, mode)
	close(f.done)
	return f.run, f.err
}

// record executes one workload recording. It touches no session state.
func record(name string, factor float64, mode gc.Mode) (*Run, error) {
	w, err := workload.New(name)
	if err != nil {
		return nil, err
	}
	col, err := workload.RunRecordedMode(w, factor, mode)
	if err != nil {
		return nil, fmt.Errorf("%s at %.2fx: %w", name, factor, err)
	}
	return &Run{
		Name: name, Factor: factor, Mode: mode, Spec: w.Spec(), Col: col,
		Env:     exec.EnvFor(col),
		MutTime: workload.MutatorTime(w.Spec(), col.H),
	}, nil
}

// Executions reports how many distinct recordings the session has actually
// executed (completed or in flight) — cache hits do not add to it.
func (s *Session) Executions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// NewPlatform builds a platform wired with the session's trace recorder,
// cancellation context, and engine watchdog. Experiment code must build
// replay platforms through this (or Replay) so the observability and
// self-protection configuration reaches every simulated component. An
// unknown kind is returned as an error.
func (s *Session) NewPlatform(kind exec.Kind, env exec.Env, threads int, opt exec.Options) (exec.Platform, error) {
	opt.Trace = s.cfg.Trace
	if opt.Ctx == nil {
		opt.Ctx = s.cfg.Ctx
	}
	if opt.Watchdog == nil {
		wd := s.cfg.watchdog()
		opt.Watchdog = &wd
	}
	return exec.NewWithOptions(kind, env, threads, opt)
}

// Observe publishes a finished platform's component counters into the
// session's metrics registry. No-op when metrics are disabled.
func (s *Session) Observe(p exec.Platform) {
	if s.cfg.Metrics.Enabled() {
		if ms, ok := p.(exec.MetricsSource); ok {
			ms.CollectMetrics(s.cfg.Metrics)
		}
	}
}

// Replay plays a run's full GC log on a fresh platform of the given kind,
// returning per-event results. The session's fault configuration (if any)
// applies.
func (s *Session) Replay(r *Run, kind exec.Kind, threads int) ([]exec.Result, error) {
	return s.ReplayFault(r, kind, threads, s.cfg.Fault)
}

// ReplayFault is Replay with an explicit fault configuration, overriding
// the session's — the fault-sweep experiment uses it to replay the same
// recording at several fault rates within one session.
//
// When the session has a checkpoint store, the fully-resolved run key is
// consulted first: a valid cached entry is returned byte-identically
// without simulating, and a live result is persisted on completion.
// Store I/O failures never fail the replay — a lost Put just means that
// unit re-executes on the next resume.
func (s *Session) ReplayFault(r *Run, kind exec.Kind, threads int, fc fault.Config) ([]exec.Result, error) {
	st := s.checkpointStore()
	var key string
	if st != nil {
		key = s.runKey(r, kind, threads, fc)
		if out, ok := getCachedResults(st, key); ok {
			return out, nil
		}
	}
	opt := exec.Options{}
	if fc.Enabled() {
		opt.Fault = &fc
	}
	p, err := s.NewPlatform(kind, r.Env, threads, opt)
	if err != nil {
		return nil, err
	}
	out := make([]exec.Result, 0, len(r.Col.Log))
	for _, ev := range r.Col.Log {
		out = append(out, p.Replay(ev, threads))
	}
	s.Observe(p)
	if st != nil {
		putCachedResults(st, key, out)
	}
	return out, nil
}

// Totals aggregates replay results.
type Totals struct {
	Duration sim.Time
	PrimTime [gc.NumPrims]sim.Time
	Bytes    uint64
	HostBusy sim.Time
	UnitBusy sim.Time
	Local    float64 // weighted local-access ratio
	Energy   energy.Breakdown
}

// Sum aggregates results, weighting the local ratio by event duration and
// computing energy on the given platform kind.
func Sum(kind exec.Kind, results []exec.Result, ncores int) Totals {
	var t Totals
	var localW float64
	for _, r := range results {
		t.Duration += r.Duration
		for p := range r.PrimTime {
			t.PrimTime[p] += r.PrimTime[p]
		}
		t.Bytes += r.Traffic.Bytes()
		t.HostBusy += r.HostBusy
		t.UnitBusy += r.UnitBusy
		localW += r.LocalRatio * r.Duration.Seconds()
		t.Energy.Add(energy.ForGC(kind, r, ncores))
	}
	if t.Duration > 0 {
		t.Local = localW / t.Duration.Seconds()
	}
	return t
}

// BandwidthGBs is the average memory bandwidth over the GC time.
func (t Totals) BandwidthGBs() float64 {
	s := t.Duration.Seconds()
	if s == 0 {
		return 0
	}
	return float64(t.Bytes) / 1e9 / s
}

// replayTotals is the common record+replay+sum path.
func (s *Session) replayTotals(name string, kind exec.Kind, threads int) (Totals, error) {
	r, err := s.Record(name, s.cfg.Factor)
	if err != nil {
		return Totals{}, err
	}
	results, err := s.Replay(r, kind, threads)
	if err != nil {
		return Totals{}, err
	}
	return Sum(kind, results, threads), nil
}

// geomeanOf extracts a geomean across workloads from a per-workload map.
func geomeanOf(names []string, m map[string]float64) (float64, error) {
	var xs []float64
	for _, n := range names {
		if v, ok := m[n]; ok {
			xs = append(xs, v)
		}
	}
	return stats.Geomean(xs)
}
