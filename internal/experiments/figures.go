package experiments

import (
	"fmt"

	"charonsim/internal/exec"
	"charonsim/internal/gc"
	"charonsim/internal/stats"
)

// Fig2Factors are the heap overprovisioning points of Figure 2.
var Fig2Factors = []float64{1.0, 1.25, 1.5, 2.0}

// Fig2Result is GC overhead normalized to mutator time, per workload and
// heap factor.
type Fig2Result struct {
	Factors  []float64
	Workload []string
	// Overhead[w][f] = GC time / mutator time on the DDR4 host.
	Overhead map[string][]float64
}

// Fig2 reproduces Figure 2: GC overhead vs heap size on the baseline
// host. Overhead grows toward the minimum heap and is still noticeable at
// 2x (the paper reports ≥15% at 2x and up to 365% near the minimum).
// Every (workload, factor) cell is an independent record+replay, so the
// whole grid fans out across the session's parallelism.
func Fig2(s *Session) (*Fig2Result, error) {
	cfg := s.Config()
	res := &Fig2Result{Factors: Fig2Factors, Workload: cfg.Workloads, Overhead: map[string][]float64{}}
	rows := make([][]float64, len(cfg.Workloads))
	for i := range rows {
		rows[i] = make([]float64, len(Fig2Factors))
	}
	err := cfg.forEachGrid(len(cfg.Workloads), len(Fig2Factors), func(w, f int) error {
		r, err := s.Record(cfg.Workloads[w], Fig2Factors[f])
		if err != nil {
			return err
		}
		rr, err := s.Replay(r, exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		t := Sum(exec.KindDDR4, rr, cfg.Threads)
		rows[w][f] = t.Duration.Seconds() / r.MutTime.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range cfg.Workloads {
		res.Overhead[name] = rows[i]
	}
	return res, nil
}

// Render prints the figure's rows.
func (r *Fig2Result) Render() string {
	cols := []string{"workload"}
	for _, f := range r.Factors {
		cols = append(cols, fmt.Sprintf("%.2fx", f))
	}
	tb := stats.NewTable("Figure 2: GC overhead normalized to mutator time (DDR4 host)", cols...)
	for _, w := range r.Workload {
		tb.AddFloats(w, 3, r.Overhead[w]...)
	}
	return tb.String()
}

// Fig4Result is the per-primitive GC runtime breakdown.
type Fig4Result struct {
	Kind     gc.Kind
	Workload []string
	// Share[w][prim] = fraction of host GC time in that primitive.
	Share map[string][gc.NumPrims]float64
	// KeyShare[w] = fraction covered by the offloadable primitives.
	KeyShare map[string]float64
}

// Fig4 reproduces Figure 4(a)/(b): the runtime breakdown of MinorGC or
// MajorGC on the DDR4 host. The paper finds the offloadable primitives
// cover 71-93% of GC time.
func Fig4(s *Session, kind gc.Kind) (*Fig4Result, error) {
	cfg := s.Config()
	res := &Fig4Result{Kind: kind, Workload: cfg.Workloads,
		Share: map[string][gc.NumPrims]float64{}, KeyShare: map[string]float64{}}
	shares := make([][gc.NumPrims]float64, len(cfg.Workloads))
	keys := make([]float64, len(cfg.Workloads))
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		r, err := s.Record(cfg.Workloads[w], cfg.Factor)
		if err != nil {
			return err
		}
		p, err := s.NewPlatform(exec.KindDDR4, r.Env, cfg.Threads, exec.Options{})
		if err != nil {
			return err
		}
		var prim [gc.NumPrims]float64
		var total float64
		for _, ev := range r.Col.Log {
			rr := p.Replay(ev, cfg.Threads)
			if ev.Kind != kind {
				continue
			}
			for i, v := range rr.PrimTime {
				prim[i] += v.Seconds()
				total += v.Seconds()
			}
		}
		s.Observe(p)
		var share [gc.NumPrims]float64
		key := 0.0
		for i := range prim {
			if total > 0 {
				share[i] = prim[i] / total
			}
			if gc.Prim(i).Offloadable() {
				key += share[i]
			}
		}
		shares[w] = share
		keys[w] = key
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range cfg.Workloads {
		res.Share[name] = shares[i]
		res.KeyShare[name] = keys[i]
	}
	return res, nil
}

// Render prints the breakdown table.
func (r *Fig4Result) Render() string {
	cols := []string{"workload"}
	for p := 0; p < int(gc.NumPrims); p++ {
		cols = append(cols, gc.Prim(p).String())
	}
	cols = append(cols, "key-total")
	tb := stats.NewTable(fmt.Sprintf("Figure 4 (%vGC): runtime breakdown on the DDR4 host", r.Kind), cols...)
	for _, w := range r.Workload {
		sh := r.Share[w]
		vals := make([]float64, 0, len(sh)+1)
		for _, v := range sh {
			vals = append(vals, v*100)
		}
		vals = append(vals, r.KeyShare[w]*100)
		tb.AddFloats(w, 1, vals...)
	}
	return tb.String()
}

// Fig12Kinds are the platforms of Figure 12, in plot order.
var Fig12Kinds = []exec.Kind{exec.KindDDR4, exec.KindHMC, exec.KindCharon, exec.KindIdeal}

// Fig12Result is normalized GC performance per workload and platform.
type Fig12Result struct {
	Workload []string
	// Speedup[w][kind] over the DDR4 host.
	Speedup map[string]map[exec.Kind]float64
	// Geomean[kind] across workloads.
	Geomean map[exec.Kind]float64
}

// Fig12 reproduces Figure 12: Charon's overall GC speedup over the DDR4
// host (paper: HMC 1.21x, Charon 3.29x geomean, Ideal slightly above).
func Fig12(s *Session) (*Fig12Result, error) {
	cfg := s.Config()
	res := &Fig12Result{Workload: cfg.Workloads,
		Speedup: map[string]map[exec.Kind]float64{}, Geomean: map[exec.Kind]float64{}}
	rows := make([][]float64, len(cfg.Workloads)) // rows[w][ki] aligned to Fig12Kinds
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		base, err := s.replayTotals(cfg.Workloads[w], exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		row := make([]float64, len(Fig12Kinds))
		for ki, k := range Fig12Kinds {
			t, err := s.replayTotals(cfg.Workloads[w], k, cfg.Threads)
			if err != nil {
				return err
			}
			row[ki] = base.Duration.Seconds() / t.Duration.Seconds()
		}
		rows[w] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	perKind := map[exec.Kind]map[string]float64{}
	for w, name := range cfg.Workloads {
		res.Speedup[name] = map[exec.Kind]float64{}
		for ki, k := range Fig12Kinds {
			res.Speedup[name][k] = rows[w][ki]
			if perKind[k] == nil {
				perKind[k] = map[string]float64{}
			}
			perKind[k][name] = rows[w][ki]
		}
	}
	for _, k := range Fig12Kinds {
		gm, err := geomeanOf(cfg.Workloads, perKind[k])
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", k, err)
		}
		res.Geomean[k] = gm
	}
	return res, nil
}

// Render prints the speedup table.
func (r *Fig12Result) Render() string {
	cols := []string{"workload"}
	for _, k := range Fig12Kinds {
		cols = append(cols, k.String())
	}
	tb := stats.NewTable("Figure 12: GC speedup over the DDR4 host", cols...)
	for _, w := range r.Workload {
		var vals []float64
		for _, k := range Fig12Kinds {
			vals = append(vals, r.Speedup[w][k])
		}
		tb.AddFloats(w, 2, vals...)
	}
	var gm []float64
	for _, k := range Fig12Kinds {
		gm = append(gm, r.Geomean[k])
	}
	tb.AddFloats("geomean", 2, gm...)
	return tb.String()
}

// Fig13Result is bandwidth use and locality during GC under Charon.
type Fig13Result struct {
	Workload []string
	// BandwidthGBs[w] per platform kind.
	Bandwidth map[string]map[exec.Kind]float64
	// LocalRatio[w]: fraction of Charon's near-memory accesses serviced by
	// the issuing cube.
	LocalRatio map[string]float64
}

// Fig13Kinds are the bandwidth bars of Figure 13.
var Fig13Kinds = []exec.Kind{exec.KindDDR4, exec.KindHMC, exec.KindCharon}

// Fig13 reproduces Figure 13: Charon's utilized bandwidth exceeds the
// off-chip budgets, with >70% of accesses serviced locally for most
// workloads.
func Fig13(s *Session) (*Fig13Result, error) {
	cfg := s.Config()
	res := &Fig13Result{Workload: cfg.Workloads,
		Bandwidth: map[string]map[exec.Kind]float64{}, LocalRatio: map[string]float64{}}
	bw := make([][]float64, len(cfg.Workloads)) // bw[w][ki] aligned to Fig13Kinds
	local := make([]float64, len(cfg.Workloads))
	for i := range bw {
		bw[i] = make([]float64, len(Fig13Kinds))
	}
	err := cfg.forEachGrid(len(cfg.Workloads), len(Fig13Kinds), func(w, ki int) error {
		t, err := s.replayTotals(cfg.Workloads[w], Fig13Kinds[ki], cfg.Threads)
		if err != nil {
			return err
		}
		bw[w][ki] = t.BandwidthGBs()
		if Fig13Kinds[ki] == exec.KindCharon {
			local[w] = t.Local
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for w, name := range cfg.Workloads {
		res.Bandwidth[name] = map[exec.Kind]float64{}
		for ki, k := range Fig13Kinds {
			res.Bandwidth[name][k] = bw[w][ki]
		}
		res.LocalRatio[name] = local[w]
	}
	return res, nil
}

// Render prints bandwidth bars and the locality line.
func (r *Fig13Result) Render() string {
	cols := []string{"workload"}
	for _, k := range Fig13Kinds {
		cols = append(cols, k.String()+" GB/s")
	}
	cols = append(cols, "local%")
	tb := stats.NewTable("Figure 13: utilized bandwidth during GC and local-access ratio", cols...)
	for _, w := range r.Workload {
		var vals []float64
		for _, k := range Fig13Kinds {
			vals = append(vals, r.Bandwidth[w][k])
		}
		vals = append(vals, r.LocalRatio[w]*100)
		tb.AddFloats(w, 1, vals...)
	}
	return tb.String()
}

// Fig14Prims are the primitives of Figure 14, in the paper's order
// (S: Search, SP: Scan&Push, C: Copy, BC: Bitmap Count).
var Fig14Prims = []gc.Prim{gc.PrimSearch, gc.PrimScanPush, gc.PrimCopy, gc.PrimBitmapCount}

// Fig14Result is the per-primitive speedup of Charon over the DDR4 host.
type Fig14Result struct {
	Workload []string
	// Speedup[w][prim]; 0 when the workload never exercised the primitive.
	Speedup map[string]map[gc.Prim]float64
	// Average[prim] (arithmetic over workloads that exercised it, as the
	// paper's per-primitive averages are).
	Average map[gc.Prim]float64
	// Max[prim].
	Max map[gc.Prim]float64
}

// Fig14 reproduces Figure 14 (paper: Copy ≤26.15x / avg 10.17x, Search
// ≤4.09x / 2.90x, Scan&Push ≤1.86x / 1.20x and sometimes below 1x on the
// ML workloads, Bitmap Count ≤6.11x / 5.63x).
func Fig14(s *Session) (*Fig14Result, error) {
	cfg := s.Config()
	res := &Fig14Result{Workload: cfg.Workloads,
		Speedup: map[string]map[gc.Prim]float64{},
		Average: map[gc.Prim]float64{}, Max: map[gc.Prim]float64{}}
	type cell struct {
		sp float64
		ok bool
	}
	rows := make([][]cell, len(cfg.Workloads)) // rows[w][pi] aligned to Fig14Prims
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		base, err := s.replayTotals(cfg.Workloads[w], exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		ch, err := s.replayTotals(cfg.Workloads[w], exec.KindCharon, cfg.Threads)
		if err != nil {
			return err
		}
		row := make([]cell, len(Fig14Prims))
		for pi, p := range Fig14Prims {
			if ch.PrimTime[p] == 0 || base.PrimTime[p] == 0 {
				continue
			}
			row[pi] = cell{sp: base.PrimTime[p].Seconds() / ch.PrimTime[p].Seconds(), ok: true}
		}
		rows[w] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := map[gc.Prim][]float64{}
	for w, name := range cfg.Workloads {
		res.Speedup[name] = map[gc.Prim]float64{}
		for pi, p := range Fig14Prims {
			if !rows[w][pi].ok {
				continue
			}
			res.Speedup[name][p] = rows[w][pi].sp
			acc[p] = append(acc[p], rows[w][pi].sp)
		}
	}
	for _, p := range Fig14Prims {
		res.Average[p] = stats.Mean(acc[p])
		res.Max[p] = stats.Max(acc[p])
	}
	return res, nil
}

// Render prints the per-primitive speedups.
func (r *Fig14Result) Render() string {
	cols := []string{"workload"}
	for _, p := range Fig14Prims {
		cols = append(cols, p.String())
	}
	tb := stats.NewTable("Figure 14: per-primitive speedup of Charon over the DDR4 host", cols...)
	for _, w := range r.Workload {
		var vals []float64
		for _, p := range Fig14Prims {
			vals = append(vals, r.Speedup[w][p])
		}
		tb.AddFloats(w, 2, vals...)
	}
	var avg, mx []float64
	for _, p := range Fig14Prims {
		avg = append(avg, r.Average[p])
		mx = append(mx, r.Max[p])
	}
	tb.AddFloats("average", 2, avg...)
	tb.AddFloats("max", 2, mx...)
	return tb.String()
}

// Fig15Threads is the scalability sweep of Figure 15.
var Fig15Threads = []int{1, 2, 4, 8, 16}

// Fig15Kinds are the compared designs.
var Fig15Kinds = []exec.Kind{exec.KindDDR4, exec.KindCharon, exec.KindCharonDistributed}

// Fig15Result is GC throughput vs thread count, normalized to 1-thread
// DDR4, per workload.
type Fig15Result struct {
	Workload []string
	Threads  []int
	// Throughput[w][kind][i] for Threads[i].
	Throughput map[string]map[exec.Kind][]float64
}

// Fig15 reproduces Figure 15: Charon scales with GC threads while DDR4
// flattens on its 34 GB/s budget, and the distributed bitmap-cache/TLB
// design generally beats the unified one at high thread counts.
func Fig15(s *Session) (*Fig15Result, error) {
	cfg := s.Config()
	res := &Fig15Result{Workload: cfg.Workloads, Threads: Fig15Threads,
		Throughput: map[string]map[exec.Kind][]float64{}}
	// Pass 1: record each workload and establish the 1T DDR4 baseline.
	runs := make([]*Run, len(cfg.Workloads))
	bases := make([]float64, len(cfg.Workloads))
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		r, err := s.Record(cfg.Workloads[w], cfg.Factor)
		if err != nil {
			return err
		}
		runs[w] = r
		rr, err := s.Replay(r, exec.KindDDR4, 1)
		if err != nil {
			return err
		}
		bases[w] = Sum(exec.KindDDR4, rr, 1).Duration.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Pass 2: every (workload, design, thread-count) point replays on a
	// fresh platform — the full sweep fans out.
	grid := make([][][]float64, len(cfg.Workloads)) // grid[w][ki][ti]
	for w := range grid {
		grid[w] = make([][]float64, len(Fig15Kinds))
		for ki := range grid[w] {
			grid[w][ki] = make([]float64, len(Fig15Threads))
		}
	}
	nPoints := len(Fig15Kinds) * len(Fig15Threads)
	err = cfg.forEachGrid(len(cfg.Workloads), nPoints, func(w, p int) error {
		ki, ti := p/len(Fig15Threads), p%len(Fig15Threads)
		th := Fig15Threads[ti]
		rr, err := s.Replay(runs[w], Fig15Kinds[ki], th)
		if err != nil {
			return err
		}
		t := Sum(Fig15Kinds[ki], rr, th)
		grid[w][ki][ti] = bases[w] / t.Duration.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for w, name := range cfg.Workloads {
		res.Throughput[name] = map[exec.Kind][]float64{}
		for ki, k := range Fig15Kinds {
			res.Throughput[name][k] = grid[w][ki]
		}
	}
	return res, nil
}

// Render prints one block per workload.
func (r *Fig15Result) Render() string {
	out := ""
	for _, w := range r.Workload {
		cols := []string{"design"}
		for _, th := range r.Threads {
			cols = append(cols, fmt.Sprintf("%dT", th))
		}
		tb := stats.NewTable(fmt.Sprintf("Figure 15 [%s]: GC throughput vs threads (normalized to 1T DDR4)", w), cols...)
		for _, k := range Fig15Kinds {
			tb.AddFloats(k.String(), 2, r.Throughput[w][k]...)
		}
		out += tb.String() + "\n"
	}
	return out
}

// Fig16Kinds are the placements compared in Figure 16.
var Fig16Kinds = []exec.Kind{exec.KindDDR4, exec.KindCharonCPUSide, exec.KindCharon}

// Fig16Result compares CPU-side and memory-side Charon.
type Fig16Result struct {
	Workload []string
	// Speedup[w][kind] over DDR4.
	Speedup map[string]map[exec.Kind]float64
	// CPUSideRatio is geomean(CPU-side / memory-side) throughput (paper:
	// CPU-side is ~37% lower, i.e. ratio ≈ 0.63).
	CPUSideRatio float64
}

// Fig16 reproduces Figure 16.
func Fig16(s *Session) (*Fig16Result, error) {
	cfg := s.Config()
	res := &Fig16Result{Workload: cfg.Workloads, Speedup: map[string]map[exec.Kind]float64{}}
	rows := make([][]float64, len(cfg.Workloads)) // rows[w][ki] aligned to Fig16Kinds
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		base, err := s.replayTotals(cfg.Workloads[w], exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		row := make([]float64, len(Fig16Kinds))
		for ki, k := range Fig16Kinds {
			t, err := s.replayTotals(cfg.Workloads[w], k, cfg.Threads)
			if err != nil {
				return err
			}
			row[ki] = base.Duration.Seconds() / t.Duration.Seconds()
		}
		rows[w] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ratios []float64
	for w, name := range cfg.Workloads {
		res.Speedup[name] = map[exec.Kind]float64{}
		for ki, k := range Fig16Kinds {
			res.Speedup[name][k] = rows[w][ki]
		}
		ratios = append(ratios, res.Speedup[name][exec.KindCharonCPUSide]/res.Speedup[name][exec.KindCharon])
	}
	ratio, err := stats.Geomean(ratios)
	if err != nil {
		return nil, fmt.Errorf("fig16: %w", err)
	}
	res.CPUSideRatio = ratio
	return res, nil
}

// Render prints the comparison.
func (r *Fig16Result) Render() string {
	cols := []string{"workload"}
	for _, k := range Fig16Kinds {
		cols = append(cols, k.String())
	}
	tb := stats.NewTable("Figure 16: memory-side vs CPU-side Charon (speedup over DDR4)", cols...)
	for _, w := range r.Workload {
		var vals []float64
		for _, k := range Fig16Kinds {
			vals = append(vals, r.Speedup[w][k])
		}
		tb.AddFloats(w, 2, vals...)
	}
	tb.AddRow("CPU-side/memory-side", fmt.Sprintf("%.2f", r.CPUSideRatio))
	return tb.String()
}

// Fig17Kinds are the energy bars of Figure 17.
var Fig17Kinds = []exec.Kind{exec.KindDDR4, exec.KindHMC, exec.KindCharon}

// Fig17Result is GC energy normalized to the DDR4 host.
type Fig17Result struct {
	Workload []string
	// Normalized[w][kind] energy relative to DDR4 (=1.0).
	Normalized map[string]map[exec.Kind]float64
	// Savings[kind] = geomean energy reduction vs DDR4 (paper: Charon
	// saves 60.7% vs DDR4 and 51.6% vs HMC).
	Savings map[exec.Kind]float64
	// CharonAvgPowerW / CharonMaxPowerW reproduce Section 5.3's 2.98 W /
	// 4.51 W accelerator power figures.
	CharonAvgPowerW float64
	CharonMaxPowerW float64
	MaxPowerWork    string
}

// Fig17 reproduces Figure 17 and the Section 5.3 power analysis.
func Fig17(s *Session) (*Fig17Result, error) {
	cfg := s.Config()
	res := &Fig17Result{Workload: cfg.Workloads,
		Normalized: map[string]map[exec.Kind]float64{}, Savings: map[exec.Kind]float64{}}
	rows := make([][]float64, len(cfg.Workloads)) // rows[w][ki] aligned to Fig17Kinds
	charonPower := make([]float64, len(cfg.Workloads))
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		base, err := s.replayTotals(cfg.Workloads[w], exec.KindDDR4, cfg.Threads)
		if err != nil {
			return err
		}
		row := make([]float64, len(Fig17Kinds))
		for ki, k := range Fig17Kinds {
			t, err := s.replayTotals(cfg.Workloads[w], k, cfg.Threads)
			if err != nil {
				return err
			}
			row[ki] = float64(t.Energy.Total()) / float64(base.Energy.Total())
			if k == exec.KindCharon {
				charonPower[w] = float64(t.Energy.Units) / t.Duration.Seconds()
			}
		}
		rows[w] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge in workload order so the max-power tie-break matches serial.
	norm := map[exec.Kind][]float64{}
	var powers []float64
	for w, name := range cfg.Workloads {
		res.Normalized[name] = map[exec.Kind]float64{}
		for ki, k := range Fig17Kinds {
			res.Normalized[name][k] = rows[w][ki]
			norm[k] = append(norm[k], rows[w][ki])
		}
		powers = append(powers, charonPower[w])
		if charonPower[w] > res.CharonMaxPowerW {
			res.CharonMaxPowerW = charonPower[w]
			res.MaxPowerWork = name
		}
	}
	for _, k := range Fig17Kinds {
		gm, err := stats.Geomean(norm[k])
		if err != nil {
			return nil, fmt.Errorf("fig17 %s: %w", k, err)
		}
		res.Savings[k] = 1 - gm
	}
	res.CharonAvgPowerW = stats.Mean(powers)
	return res, nil
}

// Render prints normalized energy and power.
func (r *Fig17Result) Render() string {
	cols := []string{"workload"}
	for _, k := range Fig17Kinds {
		cols = append(cols, k.String())
	}
	tb := stats.NewTable("Figure 17: GC energy normalized to the DDR4 host", cols...)
	for _, w := range r.Workload {
		var vals []float64
		for _, k := range Fig17Kinds {
			vals = append(vals, r.Normalized[w][k])
		}
		tb.AddFloats(w, 3, vals...)
	}
	tb.AddRow("charon savings vs DDR4", fmt.Sprintf("%.1f%%", r.Savings[exec.KindCharon]*100))
	tb.AddRow("charon avg power", fmt.Sprintf("%.2f W", r.CharonAvgPowerW))
	tb.AddRow("charon max power", fmt.Sprintf("%.2f W (%s)", r.CharonMaxPowerW, r.MaxPowerWork))
	return tb.String()
}
