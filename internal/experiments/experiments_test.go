package experiments

import (
	"strings"
	"testing"

	"charonsim/internal/exec"
	"charonsim/internal/gc"
)

// quick returns a session over a reduced workload set for fast tests; the
// full six-workload suite runs in the top-level benchmarks.
func quick(t testing.TB) *Session {
	t.Helper()
	return NewSession(Config{Workloads: []string{"BS", "CC", "ALS"}})
}

// skipIfShort gates the slow figure-shape tests out of -short runs. The
// CI race job runs with -short: the race detector multiplies simulation
// time ~10x, and race coverage of the parallel harness comes from the
// concurrency-focused tests (session_test.go), which never skip.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow shape test skipped in -short mode")
	}
}

func TestFig2OverheadShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workload {
		row := r.Overhead[w]
		if len(row) != len(Fig2Factors) {
			t.Fatalf("%s: row %v", w, row)
		}
		// Overhead at the minimum heap must exceed overhead at 2x.
		if row[0] <= row[len(row)-1] {
			t.Fatalf("%s: overhead %v not decreasing with heap size", w, row)
		}
		if row[0] <= 0 {
			t.Fatalf("%s: zero overhead at min heap", w)
		}
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Fatal("render")
	}
}

func TestFig4KeyPrimitivesDominate(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	for _, kind := range []gc.Kind{gc.Minor, gc.Major} {
		r, err := Fig4(s, kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range r.Workload {
			if r.KeyShare[w] < 0.5 {
				t.Fatalf("%vGC %s: offloadable share %.2f < 0.5 (paper: 0.71-0.93)", kind, w, r.KeyShare[w])
			}
			if r.KeyShare[w] > 0.9999 {
				t.Fatalf("%vGC %s: share %.5f leaves no residual work at all", kind, w, r.KeyShare[w])
			}
		}
		if !strings.Contains(r.Render(), "Figure 4") {
			t.Fatal("render")
		}
	}
}

func TestFig12SpeedupShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workload {
		sp := r.Speedup[w]
		if sp[exec.KindDDR4] != 1.0 {
			t.Fatalf("%s: DDR4 baseline %v != 1", w, sp[exec.KindDDR4])
		}
		if !(sp[exec.KindHMC] > 1.0 && sp[exec.KindCharon] > sp[exec.KindHMC] && sp[exec.KindIdeal] > sp[exec.KindCharon]) {
			t.Fatalf("%s: ordering violated: %v", w, sp)
		}
	}
	gm := r.Geomean[exec.KindCharon]
	if gm < 2.0 || gm > 12.0 {
		t.Fatalf("Charon geomean %.2fx outside plausible band (paper: 3.29x)", gm)
	}
	hmc := r.Geomean[exec.KindHMC]
	if hmc < 1.02 || hmc > 2.6 {
		t.Fatalf("HMC geomean %.2fx outside plausible band (paper: 1.21x)", hmc)
	}
	if !strings.Contains(r.Render(), "geomean") {
		t.Fatal("render")
	}
}

func TestFig13BandwidthShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig13(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workload {
		bw := r.Bandwidth[w]
		// DDR4 bandwidth is bounded by 34 GB/s; Charon exceeds every
		// off-chip budget the host could use.
		if bw[exec.KindDDR4] > 34.5 {
			t.Fatalf("%s: DDR4 bandwidth %v exceeds cap", w, bw[exec.KindDDR4])
		}
		if bw[exec.KindCharon] <= bw[exec.KindDDR4] {
			t.Fatalf("%s: Charon bandwidth %v not above DDR4 %v", w, bw[exec.KindCharon], bw[exec.KindDDR4])
		}
		lr := r.LocalRatio[w]
		if lr <= 0.25 || lr > 1 {
			t.Fatalf("%s: local ratio %v implausible", w, lr)
		}
	}
}

func TestFig14PerPrimitiveShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig14(s)
	if err != nil {
		t.Fatal(err)
	}
	// Copy must be the biggest winner (paper: 10.17x average), and every
	// exercised primitive's average must be meaningful.
	if r.Average[gc.PrimCopy] < 3 {
		t.Fatalf("Copy average %.2fx too low", r.Average[gc.PrimCopy])
	}
	if r.Average[gc.PrimCopy] <= r.Average[gc.PrimScanPush] {
		t.Fatalf("Copy (%.2fx) should beat Scan&Push (%.2fx)",
			r.Average[gc.PrimCopy], r.Average[gc.PrimScanPush])
	}
	if r.Max[gc.PrimCopy] < r.Average[gc.PrimCopy] {
		t.Fatal("max below average")
	}
	if !strings.Contains(r.Render(), "Figure 14") {
		t.Fatal("render")
	}
}

func TestFig15Scalability(t *testing.T) {
	skipIfShort(t)
	s := NewSession(Config{Workloads: []string{"BS"}})
	r, err := Fig15(s)
	if err != nil {
		t.Fatal(err)
	}
	th := r.Throughput["BS"]
	ddr, charon := th[exec.KindDDR4], th[exec.KindCharon]
	// 1-thread DDR4 is the normalization point.
	if ddr[0] < 0.99 || ddr[0] > 1.01 {
		t.Fatalf("DDR4 1T = %v, want 1.0", ddr[0])
	}
	// Charon at 8T should scale much better than DDR4 at 8T.
	if charon[3] <= ddr[3] {
		t.Fatalf("Charon 8T (%.2f) not above DDR4 8T (%.2f)", charon[3], ddr[3])
	}
	// Charon must scale from 1 to 8 threads.
	if charon[3] < 1.5*charon[0] {
		t.Fatalf("Charon scaling flat: 1T=%.2f 8T=%.2f", charon[0], charon[3])
	}
	// Distributed >= unified at 16 threads.
	dist := th[exec.KindCharonDistributed]
	if dist[4] < charon[4]*0.95 {
		t.Fatalf("distributed (%.2f) below unified (%.2f) at 16T", dist[4], charon[4])
	}
}

func TestFig16CPUSideShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig16(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUSideRatio >= 1 {
		t.Fatalf("CPU-side ratio %.2f should be below 1 (paper: ~0.63)", r.CPUSideRatio)
	}
	if r.CPUSideRatio < 0.1 {
		t.Fatalf("CPU-side ratio %.2f implausibly low", r.CPUSideRatio)
	}
	for _, w := range r.Workload {
		if r.Speedup[w][exec.KindCharonCPUSide] <= 1.0 {
			t.Fatalf("%s: CPU-side Charon (%.2fx) should still beat the plain host", w,
				r.Speedup[w][exec.KindCharonCPUSide])
		}
	}
}

func TestFig17EnergyShape(t *testing.T) {
	skipIfShort(t)
	s := quick(t)
	r, err := Fig17(s)
	if err != nil {
		t.Fatal(err)
	}
	save := r.Savings[exec.KindCharon]
	if save < 0.30 || save > 0.90 {
		t.Fatalf("Charon energy savings %.1f%% outside plausible band (paper: 60.7%%)", save*100)
	}
	if r.Savings[exec.KindHMC] >= save {
		t.Fatal("HMC-only savings should be below Charon's")
	}
	if r.CharonAvgPowerW <= 0 || r.CharonMaxPowerW < r.CharonAvgPowerW {
		t.Fatalf("power stats: avg=%v max=%v", r.CharonAvgPowerW, r.CharonMaxPowerW)
	}
	if r.CharonAvgPowerW > 30 {
		t.Fatalf("accelerator power %v W implausible (paper: 2.98 W)", r.CharonAvgPowerW)
	}
	if !strings.Contains(r.Render(), "savings") {
		t.Fatal("render")
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(RenderTable1(), "ParallelScavenge") {
		t.Fatal("table 1")
	}
	if !strings.Contains(RenderTable2(), "320 GB/s") {
		t.Fatal("table 2")
	}
	t3 := RenderTable3()
	for _, w := range []string{"BS", "KM", "LR", "CC", "PR", "ALS"} {
		if !strings.Contains(t3, w) {
			t.Fatalf("table 3 missing %s", w)
		}
	}
	if !strings.Contains(RenderTable4(), "1.9470") {
		t.Fatal("table 4 total")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	// CMS has no compaction: BitmapCount not applicable.
	if rows[2].Collector != "CMS" || rows[2].BitmapCount != NotApplicable {
		t.Fatal("CMS row")
	}
	if rows[1].CopySearch != AsIs || rows[0].ScanPush != AsIs {
		t.Fatal("applicability drifted from Table 1")
	}
	if NotApplicable.String() != "x" || AsIs.String() != "vv" || MinorFix.String() != "v" {
		t.Fatal("notation")
	}
}

func TestThermal(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"ALS"}})
	r, err := Thermal(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPowerW <= 0 || r.DensityMWMM2 <= 0 {
		t.Fatalf("thermal %+v", r)
	}
	if !strings.Contains(r.Render(), "mW/mm2") {
		t.Fatal("render")
	}
}

func TestSessionCaching(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"BS"}})
	a, err := s.Record("BS", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Record("BS", 1.5)
	if a != b {
		t.Fatal("record not cached")
	}
	c, _ := s.Record("BS", 1.25)
	if c == a {
		t.Fatal("different factors must not share a record")
	}
	if _, err := s.Record("nope", 1.5); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCollectorStudy(t *testing.T) {
	skipIfShort(t)
	s := NewSession(Config{Workloads: []string{"BS", "CC"}})
	r, err := CollectorStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workload {
		for _, m := range r.Modes {
			if r.Speedup[w][m] <= 1.0 {
				t.Fatalf("%s/%v: Charon should accelerate every collector (got %.2fx)", w, m, r.Speedup[w][m])
			}
			if r.FullGCs[w][m] == 0 {
				t.Fatalf("%s/%v: no full collections recorded", w, m)
			}
		}
		// CMS never compacts: zero Bitmap Count (Table 1's x).
		if r.BitmapCountShare[w][gc.ModeCMS] > 0.001 {
			t.Fatalf("%s: CMS spent %.4f in Bitmap Count", w, r.BitmapCountShare[w][gc.ModeCMS])
		}
		// PS and G1 both use Bitmap Count (Table 1's checkmarks).
		if r.BitmapCountShare[w][gc.ModePS] == 0 {
			t.Fatalf("%s: PS recorded no Bitmap Count time", w)
		}
		if r.BitmapCountShare[w][gc.ModeG1] == 0 {
			t.Fatalf("%s: G1 recorded no Bitmap Count time", w)
		}
	}
	for _, m := range r.Modes {
		if r.Geomean[m] <= 1.0 {
			t.Fatalf("%v geomean %.2f", m, r.Geomean[m])
		}
	}
	if !strings.Contains(r.Render(), "geomean") {
		t.Fatal("render")
	}
}

func TestAblationMAI(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"ALS"}})
	r, err := AblateMAI(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedup) != len(r.Points) {
		t.Fatal("shape")
	}
	// More MAI entries must never hurt a bandwidth-hungry workload, and
	// MAI=4 must be measurably worse than the paper's 32.
	if r.Speedup[0] >= r.Speedup[3] {
		t.Fatalf("MAI=4 (%.2f) not worse than MAI=32 (%.2f)", r.Speedup[0], r.Speedup[3])
	}
	if r.Points[r.Default].Label != "MAI=32" {
		t.Fatal("default point mislabeled")
	}
	if !strings.Contains(r.Render(), "(paper)") {
		t.Fatal("render")
	}
}

func TestAblationStreamGrain(t *testing.T) {
	s := NewSession(Config{Workloads: []string{"ALS"}})
	r, err := AblateStreamGrain(s)
	if err != nil {
		t.Fatal(err)
	}
	// 256B (the HMC max) should beat 64B for huge copies.
	if r.Speedup[len(r.Speedup)-1] <= r.Speedup[0] {
		t.Fatalf("grain=256B (%.2f) not above grain=64B (%.2f)",
			r.Speedup[len(r.Speedup)-1], r.Speedup[0])
	}
}

func TestAblationTopology(t *testing.T) {
	skipIfShort(t)
	s := NewSession(Config{Workloads: []string{"CC"}})
	r, err := AblateTopology(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedup) != 2 || r.Speedup[0] <= 0 || r.Speedup[1] <= 0 {
		t.Fatalf("topology sweep %v", r.Speedup)
	}
	// The star's two-hop worst case should not lose to the chain's
	// three-hop worst case for the reference-chasing graph workload.
	if r.Speedup[1] > r.Speedup[0]*1.05 {
		t.Fatalf("chain (%.2f) implausibly above star (%.2f)", r.Speedup[1], r.Speedup[0])
	}
}

func TestAblationsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	s := NewSession(Config{Workloads: []string{"BS"}})
	rs, err := Ablations(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("%d sweeps", len(rs))
	}
	if !strings.Contains(RenderAblations(rs), "bitmap cache") {
		t.Fatal("render")
	}
}
