package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"charonsim/internal/exec"
	"charonsim/internal/gc"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenShare builds a Fig4 share vector without spelling out NumPrims.
func goldenShare(copy, search, scanpush, bitmap, adjust, other float64) [gc.NumPrims]float64 {
	var s [gc.NumPrims]float64
	s[gc.PrimCopy] = copy
	s[gc.PrimSearch] = search
	s[gc.PrimScanPush] = scanpush
	s[gc.PrimBitmapCount] = bitmap
	s[gc.PrimAdjust] = adjust
	s[gc.PrimOther] = other
	return s
}

// goldenRenders pins every render path. The tables render live (they are
// static); the figure renderers get hand-built result structs with fixed
// values, so the goldens capture layout and formatting — the exact thing a
// render refactor can silently change — without any simulation cost.
func goldenRenders() map[string]func() string {
	return map[string]func() string{
		"table1": RenderTable1,
		"table2": RenderTable2,
		"table3": RenderTable3,
		"table4": RenderTable4,
		"fig2": func() string {
			r := &Fig2Result{
				Factors:  []float64{1.0, 1.25, 1.5, 2.0},
				Workload: []string{"WL1", "WL2"},
				Overhead: map[string][]float64{
					"WL1": {3.65, 1.41, 0.82, 0.15},
					"WL2": {1.20, 0.75, 0.44, 0.21},
				},
			}
			return r.Render()
		},
		"fig4": func() string {
			r := &Fig4Result{
				Kind:     gc.Minor,
				Workload: []string{"WL1", "WL2"},
				Share: map[string][gc.NumPrims]float64{
					"WL1": goldenShare(0.41, 0.12, 0.23, 0.09, 0.05, 0.10),
					"WL2": goldenShare(0.35, 0.18, 0.20, 0.14, 0.06, 0.07),
				},
				KeyShare: map[string]float64{"WL1": 0.85, "WL2": 0.87},
			}
			return r.Render()
		},
		"fig12": func() string {
			r := &Fig12Result{
				Workload: []string{"WL1"},
				Speedup: map[string]map[exec.Kind]float64{
					"WL1": {exec.KindDDR4: 1.0, exec.KindHMC: 1.21, exec.KindCharon: 3.29, exec.KindIdeal: 3.52},
				},
				Geomean: map[exec.Kind]float64{
					exec.KindDDR4: 1.0, exec.KindHMC: 1.21, exec.KindCharon: 3.29, exec.KindIdeal: 3.52,
				},
			}
			return r.Render()
		},
		"fig13": func() string {
			r := &Fig13Result{
				Workload: []string{"WL1"},
				Bandwidth: map[string]map[exec.Kind]float64{
					"WL1": {exec.KindDDR4: 29.4, exec.KindHMC: 61.0, exec.KindCharon: 187.3},
				},
				LocalRatio: map[string]float64{"WL1": 0.73},
			}
			return r.Render()
		},
		"fig14": func() string {
			r := &Fig14Result{
				Workload: []string{"WL1"},
				Speedup: map[string]map[gc.Prim]float64{
					"WL1": {gc.PrimSearch: 2.90, gc.PrimScanPush: 1.20, gc.PrimCopy: 10.17, gc.PrimBitmapCount: 5.63},
				},
				Average: map[gc.Prim]float64{
					gc.PrimSearch: 2.90, gc.PrimScanPush: 1.20, gc.PrimCopy: 10.17, gc.PrimBitmapCount: 5.63,
				},
				Max: map[gc.Prim]float64{
					gc.PrimSearch: 4.09, gc.PrimScanPush: 1.86, gc.PrimCopy: 26.15, gc.PrimBitmapCount: 6.11,
				},
			}
			return r.Render()
		},
		"fig15": func() string {
			r := &Fig15Result{
				Workload: []string{"WL1"},
				Threads:  []int{1, 2, 4, 8, 16},
				Throughput: map[string]map[exec.Kind][]float64{
					"WL1": {
						exec.KindDDR4:              {1.00, 1.62, 2.10, 2.31, 2.35},
						exec.KindCharon:            {1.80, 3.40, 6.10, 9.80, 12.40},
						exec.KindCharonDistributed: {1.78, 3.45, 6.40, 10.60, 14.90},
					},
				},
			}
			return r.Render()
		},
		"fig16": func() string {
			r := &Fig16Result{
				Workload: []string{"WL1"},
				Speedup: map[string]map[exec.Kind]float64{
					"WL1": {exec.KindDDR4: 1.0, exec.KindCharonCPUSide: 2.07, exec.KindCharon: 3.29},
				},
				CPUSideRatio: 0.63,
			}
			return r.Render()
		},
		"fig17": func() string {
			r := &Fig17Result{
				Workload: []string{"WL1"},
				Normalized: map[string]map[exec.Kind]float64{
					"WL1": {exec.KindDDR4: 1.0, exec.KindHMC: 0.81, exec.KindCharon: 0.39},
				},
				Savings: map[exec.Kind]float64{
					exec.KindDDR4: 0, exec.KindHMC: 0.19, exec.KindCharon: 0.607,
				},
				CharonAvgPowerW: 2.98,
				CharonMaxPowerW: 4.51,
				MaxPowerWork:    "WL1",
			}
			return r.Render()
		},
		"ablations": func() string {
			rs := []*AblationResult{
				{
					Name:    "MAI entries",
					Points:  []AblationPoint{{Label: "MAI=4"}, {Label: "MAI=32"}},
					Speedup: []float64{2.41, 3.29},
					Default: 1,
				},
				{
					Name:    "cube topology",
					Points:  []AblationPoint{{Label: "star"}, {Label: "chain"}},
					Speedup: []float64{3.29, 3.11},
					Default: 0,
				},
			}
			return RenderAblations(rs)
		},
		"collectors": func() string {
			r := &CollectorStudyResult{
				Workload: []string{"WL1"},
				Modes:    StudyModes,
				Speedup: map[string]map[gc.Mode]float64{
					"WL1": {gc.ModePS: 3.29, gc.ModeG1: 2.84, gc.ModeCMS: 2.11},
				},
				BitmapCountShare: map[string]map[gc.Mode]float64{
					"WL1": {gc.ModePS: 0.112, gc.ModeG1: 0.083, gc.ModeCMS: 0},
				},
				FullGCs: map[string]map[gc.Mode]int{
					"WL1": {gc.ModePS: 4, gc.ModeG1: 6, gc.ModeCMS: 5},
				},
				Geomean: map[gc.Mode]float64{gc.ModePS: 3.29, gc.ModeG1: 2.84, gc.ModeCMS: 2.11},
			}
			return r.Render()
		},
		"thermal": func() string {
			r := &ThermalResult{AvgPowerW: 2.98, MaxPowerW: 4.51, MaxWork: "WL1", DensityMWMM2: 45.1}
			return r.Render()
		},
		"faults": func() string {
			r := &FaultSweepResult{
				Workload: []string{"WL1", "WL2"},
				Rates:    []float64{0.001, 0.01, 0.05},
				Norm: map[string][]float64{
					"WL1": {0.388, 0.389, 0.395, 0.421, 1.0},
					"WL2": {0.419, 0.418, 0.427, 0.446, 1.0},
				},
				Geomean: []float64{0.404, 0.403, 0.410, 0.434, 1.0},
			}
			return r.Render()
		},
	}
}

// TestGoldenRenders diffs every rendered figure/table against its golden
// file, so render-path refactors are caught by diff rather than by eyeball
// against EXPERIMENTS.md. Regenerate with -update after an intentional
// format change.
func TestGoldenRenders(t *testing.T) {
	for name, render := range goldenRenders() {
		name, render := name, render
		t.Run(name, func(t *testing.T) {
			got := render()
			path := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test ./internal/experiments -run Golden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("render differs from %s (re-run with -update if the change is intentional)\n--- want ---\n%s\n--- got ---\n%s",
					path, want, got)
			}
		})
	}
}
