package experiments

import (
	"fmt"

	"charonsim/internal/energy"
	"charonsim/internal/stats"
	"charonsim/internal/workload"
)

// Applicability levels for Table 1.
type Applicability int

const (
	// NotApplicable: the collector has no use for the primitive.
	NotApplicable Applicability = iota
	// MinorFix: applicable with small collector-side changes.
	MinorFix
	// AsIs: applicable unchanged.
	AsIs
)

// String renders the paper's check-mark notation.
func (a Applicability) String() string {
	switch a {
	case AsIs:
		return "vv"
	case MinorFix:
		return "v"
	}
	return "x"
}

// Table1Row is one collector's applicability line.
type Table1Row struct {
	Collector   string
	CopySearch  Applicability
	ScanPush    Applicability
	BitmapCount Applicability
	Remarks     string
}

// Table1 reproduces Table 1: applicability of Charon primitives to
// HotSpot's production collectors.
func Table1() []Table1Row {
	return []Table1Row{
		{"ParallelScavenge", MinorFix, AsIs, MinorFix, "High throughput"},
		{"G1", AsIs, AsIs, MinorFix, "Low latency"},
		{"CMS", AsIs, AsIs, NotApplicable, "No compaction"},
	}
}

// RenderTable1 prints the matrix.
func RenderTable1() string {
	tb := stats.NewTable("Table 1: applicability of Charon primitives (vv as-is, v minor fix, x n/a)",
		"collector", "Copy/Search", "Scan&Push", "BitmapCount", "remarks")
	for _, r := range Table1() {
		tb.AddRow(r.Collector, r.CopySearch.String(), r.ScanPush.String(), r.BitmapCount.String(), r.Remarks)
	}
	return tb.String()
}

// RenderTable2 prints the architectural parameters actually configured in
// this simulator (Table 2 of the paper).
func RenderTable2() string {
	tb := stats.NewTable("Table 2: architectural parameters (as configured)", "component", "value")
	rows := [][2]string{
		{"Host cores", "8 x 2.67 GHz OoO, 36-entry window, 4-way issue, 10 MSHRs"},
		{"L1D", "32KB 8-way 4cyc"},
		{"L2", "256KB 8-way 12cyc"},
		{"L3 (shared)", "8MB 16-way 28cyc"},
		{"DDR4", "2 ch x 4 ranks x 8 banks; tCK 0.937ns; tRAS 35ns; tRCD/tCAS/tRP 13.5ns; 34 GB/s"},
		{"HMC", "4 cubes x 32 vaults; tCK 1.6ns; tRAS 22.4ns; tRCD/tCAS/tRP 11.2ns; 320 GB/s per cube"},
		{"HMC links", "80 GB/s per link, 3ns latency, star topology"},
		{"Charon Copy/Search", "8 units (2 per cube), 256B streaming"},
		{"Charon Bitmap Count", "8 units (2 per cube), 8B/cycle subtract+popcount"},
		{"Charon Scan&Push", "8 units (central cube)"},
		{"Bitmap cache", "8KB 8-way 32B blocks"},
		{"MAI", "32 entries per cube"},
		{"Offload packets", "48B request; 16B/32B response"},
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1])
	}
	return tb.String()
}

// RenderTable3 prints the workload table (Table 3), including the scaled
// heap sizes this reproduction uses.
func RenderTable3() string {
	tb := stats.NewTable("Table 3: workloads", "name", "framework", "benchmark", "dataset", "paper heap", "scaled min heap")
	for _, w := range workload.All() {
		sp := w.Spec()
		tb.AddRow(sp.Name, sp.Framework, sp.Long, sp.Dataset, sp.PaperHeap,
			fmt.Sprintf("%dMB", sp.MinHeapBytes>>20))
	}
	return tb.String()
}

// RenderTable4 prints the area model (Table 4).
func RenderTable4() string {
	tb := stats.NewTable("Table 4: Charon area (TSMC 40nm / CACTI 45nm model)",
		"component", "per-unit mm2", "units", "total mm2")
	for _, r := range energy.AreaTable() {
		tb.AddRow(r.Component, fmt.Sprintf("%.4f", r.PerUnitMM2),
			fmt.Sprintf("%d", r.Units), fmt.Sprintf("%.4f", r.TotalMM2))
	}
	tb.AddRow("total", "", "", fmt.Sprintf("%.4f", energy.TotalArea()))
	tb.AddRow("per cube", "", "", fmt.Sprintf("%.4f", energy.AreaPerCube()))
	tb.AddRow("logic-layer share", "", "", fmt.Sprintf("%.2f%%", energy.AreaFraction()*100))
	return tb.String()
}

// ThermalResult is the Section 5.3 power-density analysis.
type ThermalResult struct {
	AvgPowerW    float64
	MaxPowerW    float64
	MaxWork      string
	DensityMWMM2 float64
}

// Thermal derives the accelerator's power and power density from Figure
// 17's measurements (paper: 2.98 W average, 4.51 W max, 45.1 mW/mm²).
func Thermal(s *Session) (*ThermalResult, error) {
	f17, err := Fig17(s)
	if err != nil {
		return nil, err
	}
	return &ThermalResult{
		AvgPowerW:    f17.CharonAvgPowerW,
		MaxPowerW:    f17.CharonMaxPowerW,
		MaxWork:      f17.MaxPowerWork,
		DensityMWMM2: energy.PowerDensity(f17.CharonMaxPowerW),
	}, nil
}

// Render prints the thermal summary.
func (t *ThermalResult) Render() string {
	tb := stats.NewTable("Section 5.3: Charon power and thermal analysis", "metric", "value")
	tb.AddRow("average power", fmt.Sprintf("%.2f W", t.AvgPowerW))
	tb.AddRow("maximum power", fmt.Sprintf("%.2f W (%s)", t.MaxPowerW, t.MaxWork))
	tb.AddRow("max power density", fmt.Sprintf("%.1f mW/mm2", t.DensityMWMM2))
	return tb.String()
}
