package experiments

import "sync"

// forEach runs fn(i) for every i in [0, n) on at most par concurrent
// workers and returns the lowest-index error (nil if none). Callers write
// results into index i of a preallocated slice, so assembling the final
// (map-shaped, rendered) output in index order afterwards yields output
// byte-identical to a serial loop at any parallelism level.
//
// With par <= 1 the loop runs serially and stops at the first error,
// exactly like the pre-parallel harness; with par > 1 every index runs
// (work after a failing index is wasted, not wrong — simulation units are
// independent and side-effect-free beyond session memoization) and the
// reported error is still the one a serial loop would have hit first.
func forEach(par, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach exposes the bounded worker pool: charonsim.RunAll fans the
// experiment list out through it so the whole suite shares one concurrency
// discipline.
func ForEach(par, n int, fn func(i int) error) error { return forEach(par, n, fn) }

// forEachGrid is forEach over an n-by-m index grid, flattened row-major so
// all n*m cells can run concurrently.
func forEachGrid(par, n, m int, fn func(i, j int) error) error {
	return forEach(par, n*m, func(k int) error {
		return fn(k/m, k%m)
	})
}
