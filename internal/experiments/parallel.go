package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"charonsim/internal/sim"
)

// forEach runs fn(i) for every i in [0, n) on at most par concurrent
// workers and returns the lowest-index error (nil if none). Callers write
// results into index i of a preallocated slice, so assembling the final
// (map-shaped, rendered) output in index order afterwards yields output
// byte-identical to a serial loop at any parallelism level.
//
// With par <= 1 the loop runs serially and stops at the first error,
// exactly like the pre-parallel harness; with par > 1 every index runs
// (work after a failing index is wasted, not wrong — simulation units are
// independent and side-effect-free beyond session memoization) and the
// reported error is still the one a serial loop would have hit first.
//
// Every invocation is panic-guarded: a panicking run (a faulted scenario
// tripping an invariant, say) becomes that index's error instead of
// killing the whole sweep.
func forEach(par, n int, fn func(i int) error) error {
	return forEachCtx(context.Background(), par, 0, n, fn)
}

// forEachCtx is the full-featured pool: a per-run wall-clock budget
// (zero disables it) and cooperative cancellation. When ctx is cancelled
// no new index is dispatched; indexes never dispatched report ctx.Err()
// so the sweep's error reflects the interruption, while already-running
// indexes finish (or hit their own watchdog) and keep their results —
// that is what makes an interrupted sweep's completed prefix flushable.
// A timed-out run's goroutine cannot be cancelled (the simulation is
// pure CPU); it is abandoned to finish in the background and its late
// result discarded.
func forEachCtx(ctx context.Context, par int, timeout time.Duration, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if par > n {
		par = n
	}
	run := func(i int) error { return runGuarded(ctx, i, timeout, fn) }
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("experiments: run %d not started: %w", i, err)
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = run(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Undispatched indexes never reach a worker, so writing their
			// error slots here is race-free.
			for j := i; j < n; j++ {
				errs[j] = fmt.Errorf("experiments: run %d not started: %w", j, ctx.Err())
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runGuarded invokes fn(i) with panic recovery and an optional wall-clock
// budget. A sim.Aborted panic (the watchdog's structured escape) keeps its
// wrapped error, so errors.Is against sim.ErrNoProgress or
// context.Canceled works on the sweep's error; any other panic is
// formatted with its stack.
func runGuarded(ctx context.Context, i int, timeout time.Duration, fn func(i int) error) (err error) {
	guarded := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ab, ok := r.(sim.Aborted); ok {
					err = fmt.Errorf("experiments: run %d aborted: %w", i, ab.Err)
					return
				}
				err = fmt.Errorf("experiments: run %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		return fn(i)
	}
	if timeout <= 0 {
		return guarded()
	}
	done := make(chan error, 1) // buffered: a late finisher must not block
	go func() { done <- guarded() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err = <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("experiments: run %d exceeded the %v run timeout", i, timeout)
	case <-ctx.Done():
		return fmt.Errorf("experiments: run %d interrupted: %w", i, ctx.Err())
	}
}

// ForEach exposes the bounded worker pool: charonsim.RunAll fans the
// experiment list out through it so the whole suite shares one concurrency
// discipline.
func ForEach(par, n int, fn func(i int) error) error { return forEach(par, n, fn) }

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// cancelled no further index is dispatched and the undispatched indexes
// report ctx.Err().
func ForEachCtx(ctx context.Context, par, n int, fn func(i int) error) error {
	return forEachCtx(ctx, par, 0, n, fn)
}

// forEach binds the pool to the session configuration: Parallelism bounds
// the workers, RunTimeout budgets each run, and Ctx cancels dispatch.
func (c Config) forEach(n int, fn func(i int) error) error {
	return forEachCtx(c.Ctx, c.Parallelism, c.RunTimeout, n, fn)
}

// forEachGrid is forEach over an n-by-m index grid, flattened row-major so
// all n*m cells can run concurrently.
func forEachGrid(par, n, m int, fn func(i, j int) error) error {
	return forEach(par, n*m, func(k int) error {
		return fn(k/m, k%m)
	})
}

// forEachGrid is the Config-bound grid variant.
func (c Config) forEachGrid(n, m int, fn func(i, j int) error) error {
	return c.forEach(n*m, func(k int) error {
		return fn(k/m, k%m)
	})
}
