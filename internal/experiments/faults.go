package experiments

import (
	"fmt"

	"charonsim/internal/exec"
	"charonsim/internal/fault"
	"charonsim/internal/stats"
)

// FaultSweepRates are the master fault rates the sweep evaluates between
// the healthy and all-units-failed endpoints.
var FaultSweepRates = []float64{0.001, 0.01, 0.05}

// FaultSweepSeed is the default fault seed when the session config leaves
// it unset, so the sweep's fault patterns are reproducible out of the box.
const FaultSweepSeed = 42

// FaultSweepResult is Charon GC time under increasing fault pressure,
// normalized per workload to the host-over-HMC baseline (the path a dead
// accelerator falls back to). Columns run healthy, each FaultSweepRates
// entry, then all-units-failed; a healthy Charon sits well below 1.0 and
// the all-failed column must converge to 1.0 — the graceful-degradation
// acceptance criterion.
type FaultSweepResult struct {
	Workload []string
	Rates    []float64
	// Norm[w] holds len(Rates)+2 columns: healthy, rates..., all-failed.
	Norm map[string][]float64
	// Geomean per column across workloads.
	Geomean []float64
}

// faultSweepColumns derives the per-column fault configurations from the
// session's, preserving its seed and watchdog deadline.
func faultSweepColumns(base fault.Config) []fault.Config {
	seed := base.Seed
	if seed == 0 {
		seed = FaultSweepSeed
	}
	cols := []fault.Config{{}} // healthy: all knobs zero
	for _, r := range FaultSweepRates {
		cols = append(cols, fault.Config{Rate: r, Seed: seed, OffloadDeadline: base.OffloadDeadline})
	}
	cols = append(cols, fault.Config{FailAllUnits: true, Seed: seed})
	return cols
}

// FigFaultSweep sweeps the fault injector over Charon: GC time vs fault
// rate, healthy through degraded to all-units-failed. The paper's 3.29x
// speedup claim assumes a pristine stack; this experiment answers how much
// of it survives CRC retries, ECC corrections, hard bank faults, and dead
// logic-layer units — and verifies the failover path lands exactly on the
// host baseline.
func FigFaultSweep(s *Session) (*FaultSweepResult, error) {
	cfg := s.Config()
	cols := faultSweepColumns(cfg.Fault)
	res := &FaultSweepResult{Workload: cfg.Workloads, Rates: FaultSweepRates,
		Norm: map[string][]float64{}}
	rows := make([][]float64, len(cfg.Workloads))
	err := cfg.forEach(len(cfg.Workloads), func(w int) error {
		r, err := s.Record(cfg.Workloads[w], cfg.Factor)
		if err != nil {
			return err
		}
		// Host-over-HMC baseline: the path every degradation converges to.
		baseRes, err := s.ReplayFault(r, exec.KindHMC, cfg.Threads, fault.Config{})
		if err != nil {
			return err
		}
		base := Sum(exec.KindHMC, baseRes, cfg.Threads)
		row := make([]float64, len(cols))
		for c := range cols {
			colRes, err := s.ReplayFault(r, exec.KindCharon, cfg.Threads, cols[c])
			if err != nil {
				return err
			}
			t := Sum(exec.KindCharon, colRes, cfg.Threads)
			row[c] = t.Duration.Seconds() / base.Duration.Seconds()
		}
		rows[w] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	perCol := make([]map[string]float64, len(cols))
	for w, name := range cfg.Workloads {
		res.Norm[name] = rows[w]
		for c, v := range rows[w] {
			if perCol[c] == nil {
				perCol[c] = map[string]float64{}
			}
			perCol[c][name] = v
		}
	}
	for c := range cols {
		gm, err := geomeanOf(cfg.Workloads, perCol[c])
		if err != nil {
			return nil, fmt.Errorf("fault sweep col %d: %w", c, err)
		}
		res.Geomean = append(res.Geomean, gm)
	}
	return res, nil
}

// Render prints the normalized GC-time table.
func (r *FaultSweepResult) Render() string {
	cols := []string{"workload", "healthy"}
	for _, rate := range r.Rates {
		cols = append(cols, fmt.Sprintf("rate=%g", rate))
	}
	cols = append(cols, "all-failed")
	tb := stats.NewTable("Fault sweep: Charon GC time normalized to the host (HMC) baseline", cols...)
	for _, w := range r.Workload {
		tb.AddFloats(w, 3, r.Norm[w]...)
	}
	tb.AddFloats("geomean", 3, r.Geomean...)
	return tb.String()
}
