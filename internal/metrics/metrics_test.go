package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"charonsim/internal/sim"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	// Every method must short-circuit on the disabled (nil) registry.
	r.Add("x", 1)
	r.AddUint("x", 1)
	r.SetMax("g", 2)
	r.Observe("d", 3)
	r.Merge(NewRegistry())
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	if got := r.Counter("x"); got != 0 {
		t.Fatalf("nil counter = %v", got)
	}
	if _, ok := r.Gauge("g"); ok {
		t.Fatal("nil gauge present")
	}
	if d := r.Distribution("d"); d.Count != 0 {
		t.Fatalf("nil dist %+v", d)
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil names %v", names)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatalf("nil snapshot %+v", s)
	}
}

func TestCountersGaugesDists(t *testing.T) {
	r := NewRegistry()
	r.Add("a/b", 1)
	r.Add("a/b", 2.5)
	r.AddUint("a/c", 7)
	r.SetMax("g", 3)
	r.SetMax("g", 2) // lower: ignored
	r.Observe("d", 1)
	r.Observe("d", 5)
	r.Observe("d", 3)

	if got := r.Counter("a/b"); got != 3.5 {
		t.Fatalf("a/b = %v", got)
	}
	if v, ok := r.Gauge("g"); !ok || v != 3 {
		t.Fatalf("g = %v,%v", v, ok)
	}
	d := r.Distribution("d")
	if d.Count != 3 || d.Min != 1 || d.Max != 5 || d.Sum != 9 || d.Mean() != 3 {
		t.Fatalf("dist %+v", d)
	}
	names := r.Names()
	want := []string{"a/b", "a/c", "d", "g"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v", names)
		}
	}
}

func TestMergeCommutative(t *testing.T) {
	build := func(order []int) Snapshot {
		parts := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
		parts[0].Add("c", 1)
		parts[0].Observe("d", 10)
		parts[1].Add("c", 2)
		parts[1].SetMax("g", 5)
		parts[2].Add("c", 4)
		parts[2].Observe("d", 2)
		parts[2].SetMax("g", 3)
		total := NewRegistry()
		for _, i := range order {
			total.Merge(parts[i])
		}
		return total.Snapshot()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("merge order changed the snapshot:\n%s\n%s", aj, bj)
	}
	if a.Counters["c"] != 7 || a.Gauges["g"] != 5 {
		t.Fatalf("snapshot %+v", a)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("c", 1)
				r.Observe("d", float64(i))
				r.SetMax("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c"); got != 8000 {
		t.Fatalf("c = %v", got)
	}
	if d := r.Distribution("d"); d.Count != 8000 || d.Max != 999 {
		t.Fatalf("d %+v", d)
	}
}

func TestSnapshotJSONAndCSV(t *testing.T) {
	r := NewRegistry()
	r.Add("dram/ch0/row_hits", 42)
	r.SetMax("dram/ch0/bus_util", 0.75)
	r.Observe("gc/pause_ps", 1000)
	r.Observe("gc/pause_ps", 3000)

	var jb bytes.Buffer
	if err := r.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(jb.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["dram/ch0/row_hits"] != 42 || round.Dists["gc/pause_ps"].Count != 2 {
		t.Fatalf("round-trip %+v", round)
	}

	var cb bytes.Buffer
	if err := r.Snapshot().WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	out := cb.String()
	if !strings.HasPrefix(out, "name,kind,count,sum,min,mean,max\n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	for _, want := range []string{
		"dram/ch0/row_hits,counter,1,42,42,42,42",
		"dram/ch0/bus_util,gauge,1,0.75,0.75,0.75,0.75",
		"gc/pause_ps,dist,2,4000,1000,2000,3000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span("x", "cat", 0, 0, 0, 10)
	r.NameProcess(0, "p")
	r.NameThread(0, 0, "t")
	if r.Enabled() || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f map[string]interface{}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("nil recorder JSON invalid: %v", err)
	}
	if _, ok := f["traceEvents"]; !ok {
		t.Fatalf("no traceEvents array: %s", b.String())
	}
}

func TestRecorderSpansAndLimit(t *testing.T) {
	r := NewRecorder(2)
	r.NameProcess(1, "charon cube0")
	r.NameThread(1, 0, "copysearch0")
	r.Span("copy", "offload", 1, 0, 1000*sim.Nanosecond, 2000*sim.Nanosecond)
	r.Span("search", "offload", 1, 0, 2000*sim.Nanosecond, 2500*sim.Nanosecond)
	r.Span("over", "offload", 1, 0, 3000*sim.Nanosecond, 3100*sim.Nanosecond)
	if r.Len() != 2 || r.Dropped() != 1 {
		t.Fatalf("len %d dropped %d", r.Len(), r.Dropped())
	}

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent           `json:"traceEvents"`
		OtherData   map[string]interface{} `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	// 2 metadata + 2 spans.
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events %+v", f.TraceEvents)
	}
	if f.TraceEvents[0].Ph != "M" || f.TraceEvents[1].Ph != "M" {
		t.Fatalf("metadata not first: %+v", f.TraceEvents[:2])
	}
	span := f.TraceEvents[2]
	if span.Ph != "X" || span.Name != "copy" || span.Ts != 1 || span.Dur != 1 {
		t.Fatalf("span %+v", span)
	}
	if f.OtherData["droppedEvents"] == nil {
		t.Fatal("dropped count not reported")
	}
}

func TestRecorderClampsBackwardSpan(t *testing.T) {
	r := NewRecorder(0)
	r.Span("x", "", 0, 0, 100, 50) // end < start clamps to zero duration
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.TraceEvents[0].Dur != 0 {
		t.Fatalf("dur %v", f.TraceEvents[0].Dur)
	}
}
