// Package metrics is the simulator-wide observability layer: a cheap
// registry of named counters, gauges and distributions that every
// memory-system component (DRAM banks, HMC links, caches, host cores,
// Charon units) publishes into, plus a Chrome trace-event recorder for
// visualizing unit/link activity (see trace.go).
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Components never touch the registry on
//     their hot paths; they bump plain struct counters (integer adds) and
//     publish them in a Collect step after a replay finishes. Every
//     Registry and Recorder method is nil-safe, so call sites need no
//     guards: a nil *Registry short-circuits.
//   - No influence on simulated timing. The registry is write-only during
//     simulation; nothing reads it back into a timing decision, so
//     Report.Text stays byte-identical with metrics on or off.
//   - Deterministic snapshots. Counters and distributions merge
//     commutatively, so concurrent replays (the parallel harness) produce
//     the same snapshot regardless of completion order.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Dist summarizes an observed value stream (utilizations, GC pauses).
type Dist struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (d Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// merge folds o into d.
func (d *Dist) merge(o Dist) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if d.Count == 0 || o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
}

// Registry accumulates named metrics. The zero value is not used directly;
// a nil *Registry is the disabled state and every method short-circuits on
// it. Names are '/'-separated paths, component-first:
//
//	charon/cube0/copysearch1/busy_ps
//	ddr4/ch1/bank12/row_hits
//
// Registry is safe for concurrent use; it is only touched in per-replay
// Collect steps, never on simulation hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	dists    map[string]Dist
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		dists:    map[string]Dist{},
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Add increments counter name by v. Counters merge by summation, so
// repeated replays of the same platform kind accumulate.
func (r *Registry) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// AddUint is Add for integer component counters.
func (r *Registry) AddUint(name string, v uint64) { r.Add(name, float64(v)) }

// SetMax records a high-water gauge: name keeps the maximum v ever set
// (maxima merge commutatively, unlike last-writer-wins gauges).
func (r *Registry) SetMax(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Observe adds one observation to distribution name.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d := r.dists[name]
	d.merge(Dist{Count: 1, Sum: v, Min: v, Max: v})
	r.dists[name] = d
	r.mu.Unlock()
}

// Merge folds every metric of o into r (counters add, gauges max,
// distributions merge). o may be nil.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range o.counters {
		r.counters[k] += v
	}
	for k, v := range o.gauges {
		if cur, ok := r.gauges[k]; !ok || v > cur {
			r.gauges[k] = v
		}
	}
	for k, v := range o.dists {
		d := r.dists[k]
		d.merge(v)
		r.dists[k] = d
	}
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable and
// stable (maps render with sorted keys under encoding/json).
type Snapshot struct {
	Counters map[string]float64 `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Dists    map[string]Dist    `json:"distributions,omitempty"`
}

// Snapshot copies the current state. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]float64{}, Gauges: map[string]float64{}, Dists: map[string]Dist{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, v := range r.dists {
		s.Dists[k] = v
	}
	return s
}

// Counter returns the current value of a counter (0 if absent), for tests
// and invariant checks.
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the current value of a high-water gauge (0 if absent).
func (r *Registry) Gauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Distribution returns a copy of distribution name.
func (r *Registry) Distribution(name string) Dist {
	if r == nil {
		return Dist{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dists[name]
}

// Names returns every metric name (all kinds), sorted, for invariant
// sweeps ("every *_util gauge is in [0,1]").
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.dists))
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.dists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as "name,kind,count,sum,min,mean,max" rows
// (counters and gauges fill count=1, sum=value).
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,kind,count,sum,min,mean,max"); err != nil {
		return err
	}
	row := func(name, kind string, count uint64, sum, min, mean, max float64) error {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%s\n", name, kind, count,
			fmtF(sum), fmtF(min), fmtF(mean), fmtF(max))
		return err
	}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := s.Counters[k]
		if err := row(k, "counter", 1, v, v, v, v); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := s.Gauges[k]
		if err := row(k, "gauge", 1, v, v, v, v); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Dists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		d := s.Dists[k]
		if err := row(k, "dist", d.Count, d.Sum, d.Min, d.Mean(), d.Max); err != nil {
			return err
		}
	}
	return nil
}

// fmtF renders a float compactly (integers without a fraction).
func fmtF(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
