package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"charonsim/internal/sim"
)

// TraceEvent is one entry of the Chrome trace-event format ("X" complete
// events and "M" metadata events are the only phases emitted). Timestamps
// and durations are microseconds, per the format; the simulator's
// picosecond clock divides down without losing the ordering the viewer
// renders.
//
// Format reference: the chrome://tracing / Perfetto "Trace Event Format"
// JSON array form: {"traceEvents": [...]}.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`

	Args map[string]interface{} `json:"args,omitempty"`
}

// Recorder collects trace events for a single instrumented run. A nil
// *Recorder is the disabled state: every method short-circuits, so
// components call it unconditionally. The recorder caps the event count
// (a full suite run emits millions of spans; the viewer wants thousands)
// and reports how many were dropped in the trace metadata.
type Recorder struct {
	mu      sync.Mutex
	events  []TraceEvent
	limit   int
	dropped uint64

	procs map[int]string
	thrds map[[2]int]string
}

// DefaultTraceLimit bounds a recorder's retained events: enough for every
// offload of a typical single-workload run while keeping the JSON loadable.
const DefaultTraceLimit = 500000

// NewRecorder returns an enabled recorder retaining at most limit events
// (limit <= 0 selects DefaultTraceLimit).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Recorder{limit: limit, procs: map[int]string{}, thrds: map[[2]int]string{}}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// usec converts a simulated instant to trace microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e6 }

// Span records a complete event covering [start, end] on (pid, tid).
func (r *Recorder) Span(name, cat string, pid, tid int, start, end sim.Time) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.mu.Lock()
	if len(r.events) >= r.limit {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.events = append(r.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: usec(start), Dur: usec(end - start), Pid: pid, Tid: tid,
	})
	r.mu.Unlock()
}

// NameProcess labels a pid lane in the viewer (emitted as "M" metadata).
func (r *Recorder) NameProcess(pid int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.procs[pid] = name
	r.mu.Unlock()
}

// NameThread labels a (pid, tid) lane.
func (r *Recorder) NameThread(pid, tid int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.thrds[[2]int{pid, tid}] = name
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns the number of events discarded over the limit.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// traceFile is the on-disk object form of the Chrome trace-event format.
type traceFile struct {
	TraceEvents     []TraceEvent           `json:"traceEvents"`
	DisplayTimeUnit string                 `json:"displayTimeUnit"`
	OtherData       map[string]interface{} `json:"otherData,omitempty"`
}

// WriteJSON writes the collected trace as chrome://tracing-loadable JSON.
// Metadata events for process/thread names precede the spans; spans are
// sorted by (ts, pid, tid, dur, name) so the file does not depend on the
// goroutine interleaving of a parallel harness run (simulated timestamps
// are deterministic; only emission order varies).
func (r *Recorder) WriteJSON(w io.Writer) error {
	var f traceFile
	f.DisplayTimeUnit = "ns"
	if r != nil {
		r.mu.Lock()
		pids := make([]int, 0, len(r.procs))
		for pid := range r.procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			f.TraceEvents = append(f.TraceEvents, TraceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]interface{}{"name": r.procs[pid]},
			})
		}
		keys := make([][2]int, 0, len(r.thrds))
		for k := range r.thrds {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			f.TraceEvents = append(f.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: k[0], Tid: k[1],
				Args: map[string]interface{}{"name": r.thrds[k]},
			})
		}
		spans := make([]TraceEvent, len(r.events))
		copy(spans, r.events)
		sort.SliceStable(spans, func(i, j int) bool {
			a, b := &spans[i], &spans[j]
			if a.Ts != b.Ts {
				return a.Ts < b.Ts
			}
			if a.Pid != b.Pid {
				return a.Pid < b.Pid
			}
			if a.Tid != b.Tid {
				return a.Tid < b.Tid
			}
			if a.Dur != b.Dur {
				return a.Dur < b.Dur
			}
			return a.Name < b.Name
		})
		f.TraceEvents = append(f.TraceEvents, spans...)
		if r.dropped > 0 {
			f.OtherData = map[string]interface{}{"droppedEvents": r.dropped}
		}
		r.mu.Unlock()
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
