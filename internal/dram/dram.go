// Package dram models DRAM bank timing: row-buffer state machines with the
// tRCD/tCAS/tRP/tRAS/tWR constraints from Table 2 of the Charon paper, and
// a shared data bus per controller. The same bank model serves both the
// DDR4 channels of the baseline system and the per-vault controllers inside
// an HMC cube (which use HMC timings and a narrower TSV bus slice).
//
// The model is an open-page FCFS reservation model: each incoming request
// reserves the earliest slot consistent with its bank's row-buffer state
// and the data bus, which is accurate for in-order per-bank service and
// captures the three effects the paper's results hinge on — row-buffer
// locality, bank-level parallelism, and data-bus bandwidth saturation.
package dram

import (
	"fmt"

	"charonsim/internal/fault"
	"charonsim/internal/memsys"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// Timing holds the DRAM timing parameters (durations, not cycle counts).
type Timing struct {
	TCK  sim.Time // clock period (informational)
	TRAS sim.Time // min time a row stays open after activate
	TRCD sim.Time // activate to column access
	TCAS sim.Time // column access to first data
	TWR  sim.Time // write recovery before precharge
	TRP  sim.Time // precharge duration

	BurstBytes uint32   // bytes transferred per data-bus burst slot
	BurstTime  sim.Time // bus occupancy of one burst slot
}

// DDR4Timing returns Table 2's DDR4 parameters. Each channel sustains
// 17 GB/s, so one 64 B burst occupies ~3.76 ns of the channel data bus.
func DDR4Timing() Timing {
	return Timing{
		TCK:        937 * sim.Picosecond,
		TRAS:       35 * sim.Nanosecond,
		TRCD:       13500 * sim.Picosecond,
		TCAS:       13500 * sim.Picosecond,
		TWR:        15 * sim.Nanosecond,
		TRP:        13500 * sim.Picosecond,
		BurstBytes: 64,
		BurstTime:  3765 * sim.Picosecond, // 64 B / 17 GB/s
	}
}

// HMCVaultTiming returns Table 2's HMC parameters. Each cube sustains
// 320 GB/s over 32 vaults, i.e. 10 GB/s per vault TSV slice; one 32 B burst
// occupies 3.2 ns of the vault's TSV bus.
func HMCVaultTiming() Timing {
	return Timing{
		TCK:        1600 * sim.Picosecond,
		TRAS:       22400 * sim.Picosecond,
		TRCD:       11200 * sim.Picosecond,
		TCAS:       11200 * sim.Picosecond,
		TWR:        14400 * sim.Picosecond,
		TRP:        11200 * sim.Picosecond,
		BurstBytes: 32,
		BurstTime:  3200 * sim.Picosecond, // 32 B / 10 GB/s
	}
}

// bank tracks one DRAM bank's row-buffer state.
type bank struct {
	open       bool
	row        uint64
	readyAt    sim.Time // earliest next column/activate command
	activateAt sim.Time // when the open row was activated (for tRAS)

	// Row-buffer outcome counters (reads only; writes are posted and
	// drained in row-sorted batches, so they bypass the row model).
	rowHits      uint64
	rowOpens     uint64 // closed-bank activates
	rowConflicts uint64
}

// Controller is a single-bus DRAM controller: one DDR4 channel (ranks ×
// banks behind a 17 GB/s bus) or one HMC vault (banks behind a 10 GB/s TSV
// slice). Requests must already be mapped: the caller provides the bank
// index and row for each access.
type Controller struct {
	eng    *sim.Engine
	timing Timing
	banks  []bank

	bus *sim.Calendar // data-bus occupancy (gap-filling reservations)

	// Fault state: flt drives per-read ECC-correction draws, remap steers
	// accesses away from hard-faulted banks. Both stay nil with faults off.
	flt   *fault.Source
	fcfg  fault.Config
	remap *memsys.BankRemap

	eccCorrections uint64
	eccDelay       sim.Time
	remappedAccs   uint64

	Stats memsys.Stats
}

// NewController returns a controller managing nbanks banks.
func NewController(eng *sim.Engine, timing Timing, nbanks int) *Controller {
	return NewControllerFault(eng, timing, nbanks, nil, "")
}

// NewControllerFault is NewController with fault injection: hard bank
// faults are drawn once here (from the "<name>/banks" stream, in bank
// order, so the faulted-bank set is a pure function of seed and name) and
// remapped onto healthy neighbours; ECC corrections are drawn per read
// from the "<name>" stream. A nil injector is exactly NewController.
func NewControllerFault(eng *sim.Engine, timing Timing, nbanks int, inj *fault.Injector, name string) *Controller {
	c := &Controller{
		eng: eng, timing: timing, banks: make([]bank, nbanks),
		bus: sim.NewCalendar(100 * sim.Nanosecond),
	}
	if inj != nil {
		c.fcfg = inj.Config()
		c.flt = inj.Source(name)
		banks := inj.Source(name + "/banks")
		c.remap = memsys.NewBankRemap(nbanks, func(int) bool {
			return banks.Hit(c.fcfg.HardBankRate)
		})
	}
	return c
}

// FaultStats returns the controller's reliability counters: ECC-corrected
// reads, total correction latency charged, hard-faulted (remapped) banks,
// and accesses redirected by the remap table.
func (c *Controller) FaultStats() (eccCorrections uint64, eccDelay sim.Time, remappedBanks int, remappedAccesses uint64) {
	return c.eccCorrections, c.eccDelay, c.remap.Remapped(), c.remappedAccs
}

// BusBusy returns the accumulated data-bus occupancy.
func (c *Controller) BusBusy() sim.Time { return c.bus.Busy }

// BusUtilization returns the fraction of [0, horizon) the data bus was
// reserved; always in [0, 1].
func (c *Controller) BusUtilization(horizon sim.Time) float64 {
	return c.bus.Utilization(horizon)
}

// RowStats sums row-buffer outcomes over all banks.
func (c *Controller) RowStats() (hits, opens, conflicts uint64) {
	for i := range c.banks {
		hits += c.banks[i].rowHits
		opens += c.banks[i].rowOpens
		conflicts += c.banks[i].rowConflicts
	}
	return
}

// Collect publishes the controller's counters into reg under prefix:
// aggregate traffic, bus occupancy, and per-bank row-buffer outcomes.
// A positive horizon additionally publishes the bus utilization gauge.
// No-op when reg is disabled.
func (c *Controller) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	reg.AddUint(prefix+"/reads", c.Stats.Reads)
	reg.AddUint(prefix+"/writes", c.Stats.Writes)
	reg.AddUint(prefix+"/read_bytes", c.Stats.ReadBytes)
	reg.AddUint(prefix+"/write_bytes", c.Stats.WriteBytes)
	reg.AddUint(prefix+"/bus_busy_ps", uint64(c.bus.Busy))
	if horizon > 0 {
		reg.SetMax(prefix+"/bus_util", c.bus.Utilization(horizon))
	}
	if c.eccCorrections > 0 {
		reg.AddUint(prefix+"/ecc_corrections", c.eccCorrections)
		reg.AddUint(prefix+"/ecc_delay_ps", uint64(c.eccDelay))
	}
	if n := c.remap.Remapped(); n > 0 {
		reg.AddUint(prefix+"/remapped_banks", uint64(n))
		reg.AddUint(prefix+"/remapped_accesses", c.remappedAccs)
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.rowHits == 0 && b.rowOpens == 0 && b.rowConflicts == 0 {
			continue
		}
		p := fmt.Sprintf("%s/bank%d", prefix, i)
		reg.AddUint(p+"/row_hits", b.rowHits)
		reg.AddUint(p+"/row_opens", b.rowOpens)
		reg.AddUint(p+"/row_conflicts", b.rowConflicts)
	}
}

// Access reserves service for one request of size bytes hitting (bankIdx,
// row) and returns the completion time. The caller schedules its own
// completion callback at that time. Size may exceed one burst; the extra
// bursts occupy consecutive bus slots with the row held open.
func (c *Controller) Access(kind memsys.Kind, bankIdx int, row uint64, size uint32) sim.Time {
	return c.AccessAt(c.eng.Now(), kind, bankIdx, row, size)
}

// WriteDrainOverhead is the extra data-bus occupancy factor charged to
// posted writes (numerator/denominator): the amortized cost of the
// activates and write-recovery slots spent while the controller drains its
// write buffer in batches. Real controllers buffer stores and drain them
// in row-sorted runs, so writes do not thrash the read stream's open rows;
// their visible cost is bandwidth, modelled here as 25% extra occupancy.
const (
	writeDrainNum = 5
	writeDrainDen = 4
)

// AccessAt is Access with an explicit earliest start time, used when the
// request reaches this controller through a modelled transport (an HMC
// link) whose arrival time is in the future.
func (c *Controller) AccessAt(now sim.Time, kind memsys.Kind, bankIdx int, row uint64, size uint32) sim.Time {
	if t := c.eng.Now(); t > now {
		now = t
	}
	// Hard-faulted banks are served by their remap target: same row/size,
	// different bank state machine (so the spare bank absorbs the extra
	// pressure, which is the performance effect we want to observe).
	if m := c.remap.Bank(bankIdx); m != bankIdx {
		bankIdx = m
		c.remappedAccs++
	}

	nbursts := (uint64(size) + uint64(c.timing.BurstBytes) - 1) / uint64(c.timing.BurstBytes)
	if nbursts == 0 {
		nbursts = 1
	}
	occupancy := sim.Time(nbursts) * c.timing.BurstTime

	if kind == memsys.Write {
		// Posted write: absorbed by the write buffer and drained
		// opportunistically in row-sorted batches; the system-visible cost
		// is data-bus occupancy plus the drain overhead.
		occ := occupancy * writeDrainNum / writeDrainDen
		done := c.bus.Reserve(now, occ)
		c.Stats.Record(&memsys.Request{Kind: kind, Size: size})
		return done
	}

	b := &c.banks[bankIdx]
	start := b.readyAt
	if start < now {
		start = now
	}

	// Column commands pipeline: successive row hits issue every burst slot
	// (tCCD ≈ burst time) and their CAS latencies overlap, so the bank's
	// next-command time advances by the burst occupancy, not the full
	// access latency.
	var dataAt sim.Time
	switch {
	case b.open && b.row == row:
		// Row hit: column access only.
		b.rowHits++
		dataAt = start + c.timing.TCAS
		b.readyAt = start + occupancy
	case !b.open:
		// Closed bank: activate then column access.
		b.rowOpens++
		b.activateAt = start
		dataAt = start + c.timing.TRCD + c.timing.TCAS
		b.readyAt = start + c.timing.TRCD + occupancy
		b.open = true
		b.row = row
	default:
		// Row conflict: precharge (respecting tRAS and tWR), activate, access.
		b.rowConflicts++
		pre := start
		if t := b.activateAt + c.timing.TRAS; t > pre {
			pre = t
		}
		act := pre + c.timing.TRP
		b.activateAt = act
		dataAt = act + c.timing.TRCD + c.timing.TCAS
		b.readyAt = act + c.timing.TRCD + occupancy
		b.row = row
	}

	// Data bus: the burst train starts when both the data is ready and a
	// bus slot is free (gap-filling: an idle slot before someone else's
	// future reservation is usable).
	done := c.bus.Reserve(dataAt, occupancy)
	c.Stats.Record(&memsys.Request{Kind: kind, Size: size})
	// ECC correction: detect-correct-replay delays the returning data but
	// occupies no extra bus slot (the corrected word is patched in the
	// controller, not re-read from the bank).
	if c.flt.Hit(c.fcfg.ECCRate) {
		done += c.fcfg.ECCLatency
		c.eccCorrections++
		c.eccDelay += c.fcfg.ECCLatency
	}
	return done
}

// DDR4 is the baseline main-memory system: a mapper plus one Controller per
// channel. It accepts arbitrary-size requests, splits them into 64 B lines,
// routes each line to its channel, and completes the request when the last
// line finishes.
type DDR4 struct {
	eng      *sim.Engine
	mapper   *memsys.DDR4Mapper
	channels []*Controller
}

// NewDDR4 builds the Table 2 DDR4 system on eng.
func NewDDR4(eng *sim.Engine) *DDR4 {
	return NewDDR4Fault(eng, nil)
}

// NewDDR4Fault is NewDDR4 with fault injection on each channel controller
// (streams "ddr4/ch0", "ddr4/ch1", ...). A nil injector is exactly NewDDR4.
func NewDDR4Fault(eng *sim.Engine, inj *fault.Injector) *DDR4 {
	m := memsys.NewDDR4Mapper()
	d := &DDR4{eng: eng, mapper: m}
	for i := 0; i < m.Channels; i++ {
		d.channels = append(d.channels,
			NewControllerFault(eng, DDR4Timing(), m.Ranks*m.Banks, inj, fmt.Sprintf("ddr4/ch%d", i)))
	}
	return d
}

// Mapper exposes the address mapping.
func (d *DDR4) Mapper() *memsys.DDR4Mapper { return d.mapper }

// Channels exposes the per-channel controllers (for stats).
func (d *DDR4) Channels() []*Controller { return d.channels }

// Collect publishes per-channel counters under prefix (e.g. "ddr4"),
// one subtree per channel. No-op when reg is disabled.
func (d *DDR4) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	for i, c := range d.channels {
		c.Collect(reg, fmt.Sprintf("%s/ch%d", prefix, i), horizon)
	}
}

// Stats sums traffic over all channels.
func (d *DDR4) Stats() memsys.Stats {
	var s memsys.Stats
	for _, c := range d.channels {
		s.Add(c.Stats)
	}
	return s
}

// Submit implements memsys.Port: the request is split into 64 B lines that
// are serviced by their home channels; OnDone fires when the last line
// completes.
func (d *DDR4) Submit(r *memsys.Request) {
	r.IssuedAt = d.eng.Now()
	last := d.AccessAt(d.eng.Now(), r.Kind, r.Addr, r.Size)
	if r.OnDone != nil {
		d.eng.At(last, r.OnDone)
	}
}

// AccessAt reserves service for an access starting no earlier than start
// and returns the completion time of its last line.
func (d *DDR4) AccessAt(start sim.Time, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	var last sim.Time
	memsys.SplitBursts(addr, size, 64, func(a uint64, s uint32) {
		coord := d.mapper.Map(a)
		ch := d.channels[coord.Channel]
		done := ch.AccessAt(start, kind, coord.Rank*d.mapper.Banks+coord.Bank, coord.Row, s)
		if done > last {
			last = done
		}
	})
	return last
}
