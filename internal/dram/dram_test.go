package dram

import (
	"testing"

	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, DDR4Timing(), 8)

	// First access to a closed bank: tRCD + tCAS + burst.
	d1 := c.Access(memsys.Read, 0, 0, 64)
	want1 := DDR4Timing().TRCD + DDR4Timing().TCAS + DDR4Timing().BurstTime
	if d1 != want1 {
		t.Fatalf("closed-bank access done at %d, want %d", d1, want1)
	}

	// Re-run on fresh controllers to measure isolated latencies.
	engHit := sim.NewEngine()
	ch := NewController(engHit, DDR4Timing(), 8)
	ch.Access(memsys.Read, 0, 0, 64)
	hitDone := ch.Access(memsys.Read, 0, 0, 64) // same row: hit

	engMiss := sim.NewEngine()
	cm := NewController(engMiss, DDR4Timing(), 8)
	cm.Access(memsys.Read, 0, 0, 64)
	missDone := cm.Access(memsys.Read, 0, 5, 64) // different row: conflict

	if hitDone >= missDone {
		t.Fatalf("row hit (%d) not faster than row conflict (%d)", hitDone, missDone)
	}
}

func TestRowConflictRespectsTRAS(t *testing.T) {
	eng := sim.NewEngine()
	tm := DDR4Timing()
	c := NewController(eng, tm, 8)
	c.Access(memsys.Read, 0, 0, 64)
	// Immediately conflict: precharge cannot begin before activate+tRAS.
	done := c.Access(memsys.Read, 0, 1, 64)
	min := tm.TRAS + tm.TRP + tm.TRCD + tm.TCAS
	if done < min {
		t.Fatalf("conflict done at %d, violates tRAS+tRP+tRCD+tCAS = %d", done, min)
	}
}

func TestPostedWritesCostBusOnly(t *testing.T) {
	// Writes are absorbed by the write buffer: they complete in bus time
	// (plus drain overhead) without paying activate/CAS latency, and they
	// do not disturb the read stream's open rows.
	tm := DDR4Timing()
	eng := sim.NewEngine()
	c := NewController(eng, tm, 8)
	wDone := c.Access(memsys.Write, 0, 0, 64)
	if wDone >= tm.TRCD+tm.TCAS {
		t.Fatalf("posted write paid full access latency: %v", wDone)
	}
	// A read to a different row of the same bank still sees a closed bank
	// (no write-opened row), i.e. writes left bank state untouched.
	rDone := c.Access(memsys.Read, 0, 1, 64)
	want := wDone + tm.TRCD + tm.TCAS + tm.BurstTime // queued behind write bus slot at worst
	if rDone > want {
		t.Fatalf("read after posted write at %v, want <= %v", rDone, want)
	}
}

func TestWriteStreamBandwidthCap(t *testing.T) {
	// Posted writes stream at bus bandwidth divided by the drain overhead.
	eng := sim.NewEngine()
	tm := DDR4Timing()
	c := NewController(eng, tm, 8)
	const n = 1000
	var done sim.Time
	for i := 0; i < n; i++ {
		done = c.Access(memsys.Write, i%8, uint64(i), 64)
	}
	gbs := float64(n*64) / done.Seconds() / 1e9
	if gbs > 17.5*4/5+0.5 || gbs < 12 {
		t.Fatalf("write streaming %.2f GB/s, want ~%.1f", gbs, 17.0*4/5)
	}
}

func TestBankParallelism(t *testing.T) {
	// Two accesses to different banks overlap their activates; the second
	// finishes much sooner than 2x the serial latency (bus serializes only
	// the burst).
	eng := sim.NewEngine()
	tm := DDR4Timing()
	c := NewController(eng, tm, 8)
	c.Access(memsys.Read, 0, 0, 64)
	d2 := c.Access(memsys.Read, 1, 0, 64)
	serial := 2 * (tm.TRCD + tm.TCAS + tm.BurstTime)
	if d2 >= serial {
		t.Fatalf("no bank parallelism: second done at %d, serial would be %d", d2, serial)
	}
	want := tm.TRCD + tm.TCAS + 2*tm.BurstTime // bus slot after the first
	if d2 != want {
		t.Fatalf("second access done at %d, want %d", d2, want)
	}
}

func TestBusSerializationCapsBandwidth(t *testing.T) {
	// Many row-hit accesses to the same bank stream at bus bandwidth:
	// n bursts take ~n*BurstTime.
	eng := sim.NewEngine()
	tm := DDR4Timing()
	c := NewController(eng, tm, 8)
	const n = 1000
	var done sim.Time
	for i := 0; i < n; i++ {
		done = c.Access(memsys.Read, 0, 0, 64)
	}
	lower := sim.Time(n) * tm.BurstTime
	upper := lower + tm.TRCD + tm.TCAS + 10*tm.BurstTime
	if done < lower || done > upper {
		t.Fatalf("streaming time %d outside [%d, %d]", done, lower, upper)
	}
	// Effective bandwidth ≈ 17 GB/s.
	gbs := float64(n*64) / done.Seconds() / 1e9
	if gbs < 15 || gbs > 17.5 {
		t.Fatalf("streaming bandwidth %.2f GB/s, want ~17", gbs)
	}
}

func TestHMCVaultBandwidth(t *testing.T) {
	// One vault sustains ~10 GB/s on 256 B row-hit streaming.
	eng := sim.NewEngine()
	tm := HMCVaultTiming()
	c := NewController(eng, tm, 8)
	const n = 500
	var done sim.Time
	for i := 0; i < n; i++ {
		done = c.Access(memsys.Read, 0, 0, 256)
	}
	gbs := float64(n*256) / done.Seconds() / 1e9
	if gbs < 9 || gbs > 10.5 {
		t.Fatalf("vault bandwidth %.2f GB/s, want ~10", gbs)
	}
}

func TestMultiBurstOccupiesProportionalBus(t *testing.T) {
	eng := sim.NewEngine()
	tm := DDR4Timing()
	c := NewController(eng, tm, 8)
	d64 := c.Access(memsys.Read, 0, 0, 64)
	base := d64
	d256 := c.Access(memsys.Read, 0, 0, 256) // 4 bursts
	if d256-base != 4*tm.BurstTime {
		t.Fatalf("256B access occupied %d, want %d", d256-base, 4*tm.BurstTime)
	}
}

func TestControllerStats(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, DDR4Timing(), 8)
	c.Access(memsys.Read, 0, 0, 64)
	c.Access(memsys.Write, 1, 0, 128)
	if c.Stats.Reads != 1 || c.Stats.Writes != 1 || c.Stats.Bytes() != 192 {
		t.Fatalf("stats %+v", c.Stats)
	}
	if c.BusBusy() == 0 {
		t.Fatal("bus busy not accumulated")
	}
}

func TestDDR4SystemCompletion(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDDR4(eng)
	var doneAt sim.Time
	d.Submit(&memsys.Request{Kind: memsys.Read, Addr: 0, Size: 64, OnDone: func() { doneAt = eng.Now() }})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("request never completed")
	}
	tm := DDR4Timing()
	if doneAt != tm.TRCD+tm.TCAS+tm.BurstTime {
		t.Fatalf("completion at %d, want %d", doneAt, tm.TRCD+tm.TCAS+tm.BurstTime)
	}
}

func TestDDR4SystemSplitsAcrossChannels(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDDR4(eng)
	// A 128B request at address 0 spans lines 0 (ch0) and 64 (ch1).
	d.Submit(&memsys.Request{Kind: memsys.Read, Addr: 0, Size: 128})
	eng.Run()
	if d.Channels()[0].Stats.Reads != 1 || d.Channels()[1].Stats.Reads != 1 {
		t.Fatalf("channel split wrong: %d/%d", d.Channels()[0].Stats.Reads, d.Channels()[1].Stats.Reads)
	}
	st := d.Stats()
	if st.Bytes() != 128 {
		t.Fatalf("total bytes %d", st.Bytes())
	}
}

func TestDDR4AggregateBandwidthCap(t *testing.T) {
	// Streaming sequential reads through the full system should approach
	// but not exceed 34 GB/s (Table 2).
	eng := sim.NewEngine()
	d := NewDDR4(eng)
	const lines = 4000
	var last sim.Time
	for i := 0; i < lines; i++ {
		d.Submit(&memsys.Request{Kind: memsys.Read, Addr: uint64(i) * 64, OnDone: nil, Size: 64})
	}
	eng.Run()
	for _, c := range d.Channels() {
		if c.BusBusy() > last {
			last = c.BusBusy()
		}
	}
	// Approximate: busiest channel's occupancy bounds the duration from
	// below; bandwidth computed against it can only overestimate, so the
	// cap check remains valid using total occupancy across channels.
	var occ sim.Time
	for _, c := range d.Channels() {
		occ += c.BusBusy()
	}
	gbs := float64(lines*64) / occ.Seconds() / 1e9 * float64(len(d.Channels())) / float64(len(d.Channels()))
	gbs = float64(lines*64) / (2 * last.Seconds()) / 1e9 * 2
	if gbs > 34.5 {
		t.Fatalf("bandwidth %.2f GB/s exceeds the 34 GB/s cap", gbs)
	}
	if gbs < 28 {
		t.Fatalf("sequential streaming only reached %.2f GB/s, want near 34", gbs)
	}
}

func BenchmarkControllerAccess(b *testing.B) {
	eng := sim.NewEngine()
	c := NewController(eng, DDR4Timing(), 64)
	for i := 0; i < b.N; i++ {
		c.Access(memsys.Read, i%64, uint64(i%128), 64)
	}
}
