package dram

import (
	"testing"

	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// BenchmarkDDR4AccessAt is the full per-request DDR4 path (mapping, row
// state machine, bus calendar) consumed by scripts/bench_gate.sh.
func BenchmarkDDR4AccessAt(b *testing.B) {
	eng := sim.NewEngine()
	d := NewDDR4(eng)
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		at = d.AccessAt(at, memsys.Read, uint64(i%4096)*64, 64)
	}
}

// TestDDR4AccessAllocBudget pins the request path's allocation budget:
// zero. Bank state is preallocated, the bus calendars are ring-backed,
// and SplitBursts' callback must not escape.
func TestDDR4AccessAllocBudget(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDDR4(eng)
	at := sim.Time(0)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		at = d.AccessAt(at, memsys.Read, uint64(i%4096)*64, 64)
		i++
	})
	if allocs != 0 {
		t.Fatalf("DDR4.AccessAt allocates %.2f allocs/op, budget 0", allocs)
	}
}
