package dram

import (
	"testing"

	"charonsim/internal/fault"
	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// TestECCFaultSlowsReads: with ECCRate pinned to 1 every read pays exactly
// the correction latency on top of the fault-free timing, the counters
// book each correction, and writes (unprotected posted path) are
// untouched.
func TestECCFaultSlowsReads(t *testing.T) {
	inj := fault.New(fault.Config{ECCRate: 0.999999, Seed: 1})
	eng := sim.NewEngine()
	c := NewControllerFault(eng, DDR4Timing(), 8, inj, "test")

	plain := NewController(sim.NewEngine(), DDR4Timing(), 8)
	want := plain.Access(memsys.Read, 0, 0, 64) + inj.Config().ECCLatency
	if got := c.Access(memsys.Read, 0, 0, 64); got != want {
		t.Fatalf("ECC-corrected read done at %v, want fault-free + %v = %v",
			got, inj.Config().ECCLatency, want)
	}
	ecc, delay, _, _ := c.FaultStats()
	if ecc != 1 || delay != inj.Config().ECCLatency {
		t.Fatalf("FaultStats ecc=%d delay=%v, want 1 correction of %v", ecc, delay, inj.Config().ECCLatency)
	}

	wPlain := NewController(sim.NewEngine(), DDR4Timing(), 8)
	wFault := NewControllerFault(sim.NewEngine(), DDR4Timing(), 8, inj, "test")
	if wFault.Access(memsys.Write, 0, 0, 64) != wPlain.Access(memsys.Write, 0, 0, 64) {
		t.Fatal("ECC injection changed posted-write timing")
	}
}

// TestHardBankFaultRemapsAccesses: a controller built under a certain-fault
// hard-bank rate remaps every access onto healthy neighbours (identity
// when all banks die), counts the remapped accesses, and serves the same
// bytes — faults reroute, they never lose traffic.
func TestHardBankFaultRemapsAccesses(t *testing.T) {
	inj := fault.New(fault.Config{HardBankRate: 0.5, Seed: 9})
	eng := sim.NewEngine()
	c := NewControllerFault(eng, DDR4Timing(), 8, inj, "test")
	_, _, banks, _ := c.FaultStats()
	if banks == 0 {
		t.Fatal("rate-0.5 construction drew zero faulted banks out of 8")
	}
	for b := 0; b < 8; b++ {
		c.Access(memsys.Read, b, 0, 64)
	}
	_, _, _, accs := c.FaultStats()
	if accs == 0 {
		t.Fatal("accesses to faulted banks were not remapped")
	}
	if got := c.Stats.ReadBytes; got != 8*64 {
		t.Fatalf("served %d bytes, want %d — remap lost traffic", got, 8*64)
	}
}

// TestControllerFaultDeterminism: same seed, same name, same access
// sequence — identical completion times and counters; a different seed
// must change the ECC pattern.
func TestControllerFaultDeterminism(t *testing.T) {
	run := func(seed int64) (sim.Time, uint64) {
		inj := fault.New(fault.Config{ECCRate: 0.5, Seed: seed})
		c := NewControllerFault(sim.NewEngine(), DDR4Timing(), 8, inj, "det")
		var last sim.Time
		for i := 0; i < 64; i++ {
			last = c.Access(memsys.Read, i%8, uint64(i), 64)
		}
		ecc, _, _, _ := c.FaultStats()
		return last, ecc
	}
	t1, e1 := run(5)
	t2, e2 := run(5)
	if t1 != t2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
	_, e3 := run(6)
	if e3 == e1 {
		t.Fatalf("seed 5 and 6 drew identical ECC patterns (%d corrections)", e1)
	}
}

// TestNilInjectorIsFaultFree: the nil-injector fast path must be
// timing-identical to the plain constructor.
func TestNilInjectorIsFaultFree(t *testing.T) {
	a := NewController(sim.NewEngine(), DDR4Timing(), 8)
	b := NewControllerFault(sim.NewEngine(), DDR4Timing(), 8, nil, "x")
	for i := 0; i < 32; i++ {
		da := a.Access(memsys.Read, i%8, uint64(i%3), 64)
		db := b.Access(memsys.Read, i%8, uint64(i%3), 64)
		if da != db {
			t.Fatalf("access %d: nil-injector controller diverged (%v vs %v)", i, db, da)
		}
	}
	if ecc, delay, banks, accs := b.FaultStats(); ecc != 0 || delay != 0 || banks != 0 || accs != 0 {
		t.Fatal("nil injector booked fault activity")
	}
}
