package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrNoProgress is the sentinel all watchdog aborts unwrap to: the
// simulation was still executing events (or scheduler steps) but simulated
// time stopped advancing, the event queue grew without bound, or the
// wall-clock budget ran out. errors.Is(err, ErrNoProgress) identifies a
// wedged run regardless of which monitor tripped.
var ErrNoProgress = errors.New("sim: no progress")

// Diagnostics is the state dump attached to a watchdog abort, so a wedged
// run reports where it was stuck instead of hanging silently.
type Diagnostics struct {
	// Now is the simulated time at the abort.
	Now Time
	// Steps is the number of events (or scheduler steps) executed.
	Steps uint64
	// StallSteps is the consecutive-steps-without-time-advance count that
	// tripped (or preceded) the abort.
	StallSteps uint64
	// QueueDepth / MaxQueueDepth describe the event queue at the abort.
	QueueDepth    int
	MaxQueueDepth int
	// OldestEvent is the timestamp of the queue head (valid when
	// HasOldest); a head far in the past of wall progress marks the stuck
	// component.
	OldestEvent Time
	HasOldest   bool
	// Detail carries component-specific state: the exec replay scheduler
	// fills it with per-thread inflight invocation counts.
	Detail string
}

// String renders the dump, one field per line, for logs and CI artifacts.
func (d Diagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated time:     %d ps\n", uint64(d.Now))
	fmt.Fprintf(&b, "steps executed:     %d\n", d.Steps)
	fmt.Fprintf(&b, "stalled steps:      %d\n", d.StallSteps)
	fmt.Fprintf(&b, "queue depth:        %d (max %d)\n", d.QueueDepth, d.MaxQueueDepth)
	if d.HasOldest {
		fmt.Fprintf(&b, "oldest event at:    %d ps\n", uint64(d.OldestEvent))
	}
	if d.Detail != "" {
		fmt.Fprintf(&b, "component state:\n%s", d.Detail)
	}
	return b.String()
}

// NoProgressError is a structured watchdog abort: why the run was declared
// wedged plus a diagnostic dump of where it was stuck. It unwraps to
// ErrNoProgress.
type NoProgressError struct {
	Reason string
	Diag   Diagnostics
}

func (e *NoProgressError) Error() string {
	return fmt.Sprintf("sim: no progress: %s\n%s", e.Reason, e.Diag)
}

func (e *NoProgressError) Unwrap() error { return ErrNoProgress }

// Aborted is the panic payload that carries a structured abort (watchdog
// trip, context cancellation) out of synchronous simulation code that has
// no error return path. The experiment harness's panic recovery unwraps it
// back into Err; any other panic value stays an internal invariant
// failure.
type Aborted struct{ Err error }

// Watchdog configures the engine/scheduler progress monitor. The zero
// value disables every check.
type Watchdog struct {
	// StallLimit aborts after this many consecutive steps without
	// simulated-time advance (a zero-delay event livelock). 0 disables.
	StallLimit uint64
	// QueueLimit aborts when the event queue exceeds this depth (a
	// scheduling loop growing the queue monotonically). 0 disables.
	QueueLimit int
	// WallClock aborts when a run exceeds this wall-clock budget, measured
	// from Monitor creation (per-run heartbeat: unlike a harness-side
	// timer, this stops the stuck goroutine itself). 0 disables.
	WallClock time.Duration
	// Ctx, when non-nil, aborts the run as soon as the context is
	// cancelled, checked every CheckEvery steps — this is what gives
	// SIGINT event-loop-granularity cancellation of in-flight runs.
	Ctx context.Context
	// CheckEvery is the step interval for the wall-clock and context
	// checks (default 16384; stall/queue checks are per-step and free).
	CheckEvery uint64
}

// Enabled reports whether any check is armed.
func (w Watchdog) Enabled() bool {
	return w.StallLimit > 0 || w.QueueLimit > 0 || w.WallClock > 0 || w.Ctx != nil
}

// Default watchdog bounds: far above anything a healthy replay produces
// (the deepest measured queue is ~10^3 and zero-delay cascades are
// bounded by opBatch-scale fan-out), so the default-on watchdog never
// perturbs a sane run and still converts a livelock into a structured
// failure within seconds.
const (
	DefaultStallLimit uint64 = 8 << 20
	DefaultQueueLimit int    = 1 << 24
	defaultCheckEvery uint64 = 1 << 14
)

// DefaultWatchdog returns the default-on monitor configuration.
func DefaultWatchdog() Watchdog {
	return Watchdog{StallLimit: DefaultStallLimit, QueueLimit: DefaultQueueLimit}
}

// Monitor is the runtime state of an armed watchdog. A nil *Monitor is
// valid and disables every check, so hot paths need no branches beyond
// the nil test. Monitors are not goroutine-safe: each engine or replay
// scheduler owns its own.
type Monitor struct {
	cfg      Watchdog
	deadline time.Time // zero when WallClock is unset
	steps    uint64
	stalls   uint64
}

// NewMonitor arms a watchdog, starting the wall-clock budget now. Returns
// nil (disabled) when no check is configured.
func NewMonitor(cfg Watchdog) *Monitor {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = defaultCheckEvery
	}
	m := &Monitor{cfg: cfg}
	if cfg.WallClock > 0 {
		m.deadline = time.Now().Add(cfg.WallClock)
	}
	return m
}

// Steps returns the number of ticks observed.
func (m *Monitor) Steps() uint64 {
	if m == nil {
		return 0
	}
	return m.steps
}

// Stalls returns the current consecutive no-advance count.
func (m *Monitor) Stalls() uint64 {
	if m == nil {
		return 0
	}
	return m.stalls
}

// abort panics with a structured Aborted carrying a NoProgressError.
func (m *Monitor) abort(reason string, diag func() Diagnostics) {
	d := Diagnostics{}
	if diag != nil {
		d = diag()
	}
	d.Steps = m.steps
	d.StallSteps = m.stalls
	panic(Aborted{Err: &NoProgressError{Reason: reason, Diag: d}})
}

// Tick records one step. advanced reports whether simulated time moved
// forward on this step; diag (may be nil) supplies the dump if a check
// trips. Panics sim.Aborted on a violation.
func (m *Monitor) Tick(advanced bool, diag func() Diagnostics) {
	if m == nil {
		return
	}
	m.steps++
	if advanced {
		m.stalls = 0
	} else {
		m.stalls++
		if m.cfg.StallLimit > 0 && m.stalls > m.cfg.StallLimit {
			m.abort(fmt.Sprintf("%d consecutive steps without simulated-time advance (limit %d)",
				m.stalls, m.cfg.StallLimit), diag)
		}
	}
	if m.steps%m.cfg.CheckEvery != 0 {
		return
	}
	if m.cfg.Ctx != nil {
		if err := m.cfg.Ctx.Err(); err != nil {
			panic(Aborted{Err: err})
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		m.abort(fmt.Sprintf("run exceeded its %v wall-clock budget", m.cfg.WallClock), diag)
	}
}

// CheckQueue aborts when the event queue exceeds the configured bound.
func (m *Monitor) CheckQueue(depth int, diag func() Diagnostics) {
	if m == nil || m.cfg.QueueLimit <= 0 || depth <= m.cfg.QueueLimit {
		return
	}
	m.abort(fmt.Sprintf("event queue depth %d exceeds the %d bound", depth, m.cfg.QueueLimit), diag)
}

// CheckCtx aborts immediately if the monitored context is cancelled,
// regardless of the CheckEvery stride. Call it at natural boundaries
// (e.g. the start of each replayed GC event).
func (m *Monitor) CheckCtx() {
	if m == nil || m.cfg.Ctx == nil {
		return
	}
	if err := m.cfg.Ctx.Err(); err != nil {
		panic(Aborted{Err: err})
	}
}
