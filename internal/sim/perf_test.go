package sim

import (
	"errors"
	"testing"
)

// This file pins the simulation kernel's hot-path performance contract:
// per-subsystem benchmarks consumed by scripts/bench_gate.sh, plus
// allocation budgets (testing.AllocsPerRun) for the paths every memory
// access crosses. The budgets are exact — a regression that starts
// allocating per reservation or per event shows up here before it shows
// up as a 2x sweep slowdown.

var sinkTime Time

// BenchmarkCalendarReserve is the steady-state reservation path: a dense
// forward-moving stream landing in the ring window, sliding it as
// simulated time advances.
func BenchmarkCalendarReserve(b *testing.B) {
	c := NewCalendar(100 * Nanosecond)
	at := Time(0)
	for i := 0; i < b.N; i++ {
		at = c.Reserve(at, 30*Nanosecond)
	}
	sinkTime = at
}

// BenchmarkCalendarBusyWithin queries utilization at a horizon at/beyond
// the busiest bucket — the O(1) incremental-accounting path used by every
// end-of-run metrics collection.
func BenchmarkCalendarBusyWithin(b *testing.B) {
	c := NewCalendar(100 * Nanosecond)
	at := Time(0)
	for i := 0; i < 10000; i++ {
		at = c.Reserve(at, 30*Nanosecond)
	}
	b.ResetTimer()
	var t Time
	for i := 0; i < b.N; i++ {
		t += c.BusyWithin(at + Time(i%128))
	}
	sinkTime = t
}

// BenchmarkEngineSchedulePop is the per-event cost: one push and one pop
// on a warm queue.
func BenchmarkEngineSchedulePop(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97), fn)
		e.Step()
	}
}

// TestCalendarReserveAllocsSteadyState: in-window reservations must not
// allocate at all — the ring is preallocated and the incremental busy
// accounting is plain arithmetic.
func TestCalendarReserveAllocsSteadyState(t *testing.T) {
	c := NewCalendar(100)
	at := Time(0)
	allocs := testing.AllocsPerRun(2000, func() {
		at = c.Reserve(at+5, 60)
	})
	if allocs != 0 {
		t.Fatalf("Calendar.Reserve steady state allocates %.1f allocs/op, budget 0", allocs)
	}
}

// TestEngineScheduleAllocsSteadyState: once the queue slice has grown to
// its working capacity, Schedule+Step must not allocate — the event heap
// stores events by value and the watchdog diagnostics closure must not
// escape.
func TestEngineScheduleAllocsSteadyState(t *testing.T) {
	for _, armed := range []bool{false, true} {
		e := NewEngine()
		if armed {
			e.SetWatchdog(DefaultWatchdog())
		}
		fn := func() {}
		for i := 0; i < 128; i++ {
			e.Schedule(Time(i%13), fn)
		}
		e.Run()
		allocs := testing.AllocsPerRun(1000, func() {
			e.Schedule(7, fn)
			e.Step()
		})
		if allocs != 0 {
			t.Fatalf("Schedule+Step (watchdog armed=%v) allocates %.1f allocs/op, budget 0", armed, allocs)
		}
	}
}

// TestEngineQueueZeroesPoppedSlots: the value-based event heap must clear
// vacated slots, so a fired event's callback (and anything its closure
// keeps alive) is unreachable the moment it fires — not when the slot
// happens to be overwritten by a later Schedule.
func TestEngineQueueZeroesPoppedSlots(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 33; i++ {
		e.Schedule(Time(97-i), func() {})
	}
	e.Run()
	spare := e.queue[:cap(e.queue)]
	for i, ev := range spare {
		if ev.fn != nil || ev.at != 0 || ev.seq != 0 {
			t.Fatalf("queue slot %d retains a fired event: %+v", i, ev)
		}
	}
}

// TestEngineNoStalePayloadsAcrossReuse interleaves scheduling with
// stepping so popped slots are reused by later events, and requires every
// payload to fire exactly once — a slot-reuse bug double-fires or drops.
func TestEngineNoStalePayloadsAcrossReuse(t *testing.T) {
	e := NewEngine()
	const n = 64
	fired := make([]int, n)
	add := func(id int, at Time) {
		e.At(at, func() { fired[id]++ })
	}
	for i := 0; i < n/2; i++ {
		add(i, Time(100+(i*37)%50))
	}
	for i := 0; i < n/4; i++ {
		e.Step()
	}
	for i := n / 2; i < n; i++ {
		add(i, Time(100+(i*23)%50))
	}
	e.Run()
	for id, c := range fired {
		if c != 1 {
			t.Fatalf("event %d fired %d times, want exactly once", id, c)
		}
	}
}

// TestWatchdogAbortQueueConsistent: a watchdog abort mid-run must leave
// the queue consistent — recovering and draining it fires each surviving
// event exactly once, with no stale payloads from the aborted growth.
func TestWatchdogAbortQueueConsistent(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{QueueLimit: 40})
	forks, stopped := 0, false
	var fork func()
	fork = func() {
		forks++
		if stopped {
			return
		}
		e.Schedule(Nanosecond, fork)
		e.Schedule(Nanosecond, fork)
	}
	err := abortOf(t, func() {
		e.Schedule(0, fork)
		e.Run()
	})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	// Disarm, stop the forking, and drain: every event queued at abort
	// time must fire exactly once — a slot-reuse bug double-fires or
	// drops, and either shows up as a count mismatch.
	e.SetWatchdog(Watchdog{})
	stopped = true
	want := e.QueueDepth()
	if want == 0 {
		t.Fatal("nothing left queued after abort")
	}
	before := forks
	drained := 0
	for e.Pending() {
		e.Step()
		drained++
	}
	if drained != want || forks-before != want {
		t.Fatalf("drained %d events firing %d callbacks, want exactly %d of each",
			drained, forks-before, want)
	}
}
