package sim

// referenceCalendar is the original map-of-every-bucket Calendar, kept
// verbatim as the behavioural reference for the ring-buffer rewrite: the
// equivalence tests and FuzzCalendarRingEquivalence drive both
// implementations with identical operation sequences and require identical
// results. Test-only — the simulator proper uses the ring Calendar.
type referenceCalendar struct {
	width Time
	used  map[int64]bucket
	Busy  Time
}

func newReferenceCalendar(width Time) *referenceCalendar {
	if width == 0 {
		panic("sim: zero calendar width")
	}
	return &referenceCalendar{width: width, used: make(map[int64]bucket)}
}

func (c *referenceCalendar) Reserve(at Time, dur Time) Time {
	if dur == 0 {
		return at
	}
	c.Busy += dur
	b := int64(at / c.width)
	remaining := dur
	var end Time
	for remaining > 0 {
		bucketStart := Time(b) * c.width
		bk := c.used[b]
		pos := bucketStart + bk.highWater
		if pos < at {
			pos = at
		}
		avail := bucketStart + c.width - pos
		if avail <= 0 {
			b++
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		bk.highWater = (pos + take) - bucketStart
		bk.busy += take
		c.used[b] = bk
		end = pos + take
		remaining -= take
		at = end
		b++
	}
	return end
}

func (c *referenceCalendar) BusyWithin(horizon Time) Time {
	if horizon == 0 {
		return 0
	}
	lastBucket := int64((horizon - 1) / c.width)
	var t Time
	for b, bk := range c.used {
		switch {
		case b < lastBucket:
			t += bk.busy
		case b == lastBucket:
			in := horizon - Time(b)*c.width
			if bk.busy < in {
				t += bk.busy
			} else {
				t += in
			}
		}
	}
	if t > horizon {
		t = horizon
	}
	return t
}

func (c *referenceCalendar) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(c.BusyWithin(horizon)) / float64(horizon)
}
