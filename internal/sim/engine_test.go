package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.Schedule(7, tick)
		}
	}
	e.Schedule(7, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 70 {
		t.Fatalf("Now = %d, want 70", e.Now())
	}
}

func TestEngineZeroDelay(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(0, func() { fired = true })
	e.Step()
	if !fired {
		t.Fatal("zero-delay event did not fire")
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced on zero-delay event: %d", e.Now())
	}
}

func TestEngineAtClampsPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	fired := Time(0)
	e.At(50, func() { fired = e.Now() })
	e.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %d, want 25", e.Now())
	}
	if !e.Pending() {
		t.Fatal("expected pending events after RunUntil")
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() { n++ })
	}
	e.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Fatalf("RunWhile stopped at n=%d, want 10", n)
	}
}

func TestEngineRandomOrderProperty(t *testing.T) {
	// Property: regardless of scheduling order, events fire sorted by time.
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			e.Schedule(Time(rng.Intn(50)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockConversions(t *testing.T) {
	// DDR4 tCK = 0.937ns = 937ps from Table 2.
	c := NewClock(937 * Picosecond)
	if got := c.Cycles(100); got != 93700 {
		t.Fatalf("Cycles(100) = %d, want 93700", got)
	}
	if got := c.ToCycles(93700); got != 100 {
		t.Fatalf("ToCycles = %d, want 100", got)
	}
	// Rounding up: one picosecond over needs one extra cycle.
	if got := c.ToCycles(93701); got != 101 {
		t.Fatalf("ToCycles round-up = %d, want 101", got)
	}
	if NewClock(0).ToCycles(12345) != 0 {
		t.Fatal("zero-period clock should yield 0 cycles")
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatal("unit mismatch")
	}
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (3 * Nanosecond).Nanoseconds(); got != 3 {
		t.Fatalf("Nanoseconds = %v", got)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}
