package sim

import (
	"math/rand"
	"testing"
)

// driveBoth replays one deterministic operation sequence on the ring
// Calendar and the map-based reference, failing on the first divergence in
// Reserve results, Busy totals, BusyWithin, or Utilization.
func driveBoth(t *testing.T, seed int64, width Time, nops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ring := NewCalendar(width)
	ref := newReferenceCalendar(width)
	// Mix near-window, far-future, and behind-the-window reservations: the
	// cursor random-walks forward so the ring both slides and takes
	// stragglers below its base.
	var cursor Time
	for i := 0; i < nops; i++ {
		var at Time
		switch rng.Intn(8) {
		case 0: // far jump forward (forces ring slides)
			cursor += Time(rng.Intn(int(width) * 6000))
			at = cursor
		case 1: // behind the window (spill-map path)
			at = Time(rng.Intn(int(cursor) + 1))
		default: // near the cursor
			at = cursor + Time(rng.Intn(int(width)*20))
		}
		dur := Time(rng.Intn(int(width) * 4))
		gotEnd, wantEnd := ring.Reserve(at, dur), ref.Reserve(at, dur)
		if gotEnd != wantEnd {
			t.Fatalf("op %d: Reserve(%d, %d) = %d, reference %d", i, at, dur, gotEnd, wantEnd)
		}
		if ring.Busy != ref.Busy {
			t.Fatalf("op %d: Busy = %d, reference %d", i, ring.Busy, ref.Busy)
		}
		if gotEnd > cursor {
			cursor = gotEnd
		}
		if i%7 == 0 {
			h := Time(rng.Intn(int(cursor) + int(width)*10 + 1))
			got, want := ring.BusyWithin(h), ref.BusyWithin(h)
			if got != want {
				t.Fatalf("op %d: BusyWithin(%d) = %d, reference %d", i, h, got, want)
			}
			if gu, wu := ring.Utilization(h), ref.Utilization(h); gu != wu {
				t.Fatalf("op %d: Utilization(%d) = %v, reference %v", i, h, gu, wu)
			}
		}
	}
	// Terminal sweep: horizons below, at, and beyond the busiest bucket.
	for _, h := range []Time{0, 1, width, cursor / 2, cursor, cursor + width, cursor * 2} {
		got, want := ring.BusyWithin(h), ref.BusyWithin(h)
		if got != want {
			t.Fatalf("final BusyWithin(%d) = %d, reference %d", h, got, want)
		}
	}
}

// TestCalendarRingMatchesReference pins the equivalence on fixed seeds so
// the property is exercised on every `go test` run, not only under fuzzing.
func TestCalendarRingMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, width := range []Time{1, 7, 100, 100000} {
			driveBoth(t, seed, width, 400)
		}
	}
}

// FuzzCalendarRingEquivalence drives the ring Calendar and the retained
// map-based reference with identical random Reserve/BusyWithin/Utilization
// sequences; any divergence is a bug in the ring rewrite. Wired into
// `make fuzz` alongside the config fuzzer.
func FuzzCalendarRingEquivalence(f *testing.F) {
	f.Add(int64(1), uint64(100), uint(200))
	f.Add(int64(42), uint64(1), uint(300))
	f.Add(int64(7), uint64(50*1000), uint(150))
	f.Fuzz(func(t *testing.T, seed int64, width uint64, nops uint) {
		if width == 0 || width > uint64(Second) {
			t.Skip()
		}
		if nops > 500 {
			nops = 500
		}
		driveBoth(t, seed, Time(width), int(nops))
	})
}
