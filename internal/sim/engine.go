// Package sim provides a deterministic discrete-event simulation kernel.
//
// All timing models in this repository (DRAM banks, HMC links, host cores,
// Charon processing units) are driven by a single Engine. Time is measured
// in picoseconds so that components with different clock periods (e.g. the
// 0.937 ns DDR4 clock and the 1.6 ns HMC clock from Table 2 of the paper)
// can coexist without rounding drift.
//
// Determinism: events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-break by sequence number), so a given
// configuration always produces the same cycle counts.
package sim

// Time is a simulated instant or duration in picoseconds.
type Time uint64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts a simulated duration to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (at, seq), stored
// by value: pushing reuses the slice's spare capacity instead of boxing a
// node per Schedule (the previous container/heap implementation allocated
// one *event per scheduled callback). The unique seq tie-break makes the
// pop order a total order, independent of internal heap layout.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push appends ev and sifts it up.
func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event, zeroing the vacated slot so
// the queue never retains a fired event's payload (the callback closure
// would otherwise stay reachable until overwritten).
func (q *eventQueue) pop() event {
	h := *q
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	*q = h
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && h.less(right, left) {
			m = right
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventQueue
	nsteps   uint64
	maxQueue int
	mon      *Monitor
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// SetWatchdog arms (or, with a zero config, disarms) the engine's
// progress monitor: a step budget for zero-advance livelocks, an
// event-queue growth bound, a wall-clock heartbeat, and context
// cancellation. Violations abort the run with a panic carrying a
// structured *NoProgressError (see Aborted) instead of hanging.
func (e *Engine) SetWatchdog(cfg Watchdog) { e.mon = NewMonitor(cfg) }

// Diagnostics snapshots the engine state for a watchdog dump.
func (e *Engine) Diagnostics() Diagnostics {
	d := Diagnostics{Now: e.now, QueueDepth: len(e.queue), MaxQueueDepth: e.maxQueue}
	if len(e.queue) > 0 {
		d.OldestEvent, d.HasOldest = e.queue[0].at, true
	}
	return d
}

// Schedule runs fn after delay (possibly zero) relative to Now.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.seq++
	e.queue.push(event{at: e.now + delay, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
	e.mon.CheckQueue(len(e.queue), e.Diagnostics)
}

// At runs fn at absolute time t. If t is in the past it runs at Now.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
	e.mon.CheckQueue(len(e.queue), e.Diagnostics)
}

// Pending reports whether any events remain.
func (e *Engine) Pending() bool { return len(e.queue) > 0 }

// QueueDepth returns the current number of queued events.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// MaxQueueDepth returns the high-water event-queue depth.
func (e *Engine) MaxQueueDepth() int { return e.maxQueue }

// Step executes the next event and returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	advanced := ev.at > e.now
	e.now = ev.at
	e.nsteps++
	e.mon.Tick(advanced, e.Diagnostics)
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. Returns the engine time, which is
// never advanced past deadline by this call.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) Time {
	for cond() && e.Step() {
	}
	return e.now
}

// Clock converts between an integer cycle domain and engine time.
type Clock struct {
	Period Time // duration of one cycle in picoseconds
}

// NewClock returns a clock with the given period.
func NewClock(period Time) Clock { return Clock{Period: period} }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n uint64) Time { return Time(n) * c.Period }

// ToCycles converts a duration to whole cycles, rounding up.
func (c Clock) ToCycles(t Time) uint64 {
	if c.Period == 0 {
		return 0
	}
	return uint64((t + c.Period - 1) / c.Period)
}
