package sim

// Calendar tracks the occupancy of a serial resource (a DRAM data bus, an
// HMC link lane, a cache port) in fixed-width time buckets, so that
// reservations made out of call order can still backfill idle gaps. A
// single high-water cursor ("freeAt") would falsely serialize independent
// requesters: once one client reserves far in the future, earlier idle
// time becomes unusable. The calendar keeps per-bucket occupancy instead;
// a reservation starting at time t consumes capacity from t's bucket
// onward, spilling into later buckets as needed.
//
// Within a bucket, sub-bucket ordering is approximated: a reservation is
// placed at max(requested time, bucket start + occupancy already placed in
// the bucket). This bounds the error by the bucket width while preserving
// total capacity exactly.
//
// Storage is a sliding ring over the window of recently touched buckets
// (simulated time only moves forward, so almost every reservation lands
// near the latest bucket): bucket b lives at ring[b%ringSize] while b is
// inside [base, base+ringSize). When a reservation advances past the
// window, the buckets that slide out are retired into the spill map with
// their state intact, so a straggler reservation behind the window (or a
// windowed BusyWithin query) still sees exact occupancy. The ring replaces
// the previous map-of-every-bucket representation: reservation-time lookups
// become array indexing, and retired buckets cost memory only when nonzero.
type Calendar struct {
	width Time
	ring  []bucket
	// base is the lowest bucket index the ring currently represents. It
	// only grows; bucket b is at ring[b&ringMask] iff base <= b < base+ringSize.
	base int64
	// spill retains nonzero buckets that slid out of the ring window, in
	// fixed-size chunks keyed by bucket>>spillChunkBits. Buckets retire in
	// increasing order, so consecutive retirements hit the same chunk;
	// lastSpill caches it and the map is touched once per chunk, not once
	// per bucket (dense runs retire millions of nonzero buckets — per-bucket
	// map writes were 18% of an end-to-end run). Chunks materialize only
	// when a nonzero bucket retires into them, so idle simulated time
	// (mutator phases between GC events) costs nothing.
	spill        map[int64]*spillChunk
	lastSpill    *spillChunk
	lastSpillIdx int64

	// Incremental horizon accounting, so BusyWithin(h) for h at or beyond
	// the latest occupied bucket — the overwhelmingly common query, since
	// metrics collect at the platform clock — is O(1) instead of a scan:
	// maxBucket is the highest bucket holding occupancy (-1 when empty),
	// maxBusy its busy time, and belowMax the summed busy of every bucket
	// before it. Invariant after each Reserve: belowMax + maxBusy == Busy.
	maxBucket int64
	maxBusy   Time
	belowMax  Time

	// Busy accumulates total reserved time (utilization accounting). It
	// counts whole reservations at reservation time; for time-windowed
	// accounting use BusyWithin, which attributes a reservation to the
	// buckets it actually occupies.
	Busy Time
}

// bucket is one time slice's occupancy state.
type bucket struct {
	// highWater is the placement cursor from the bucket start: the next
	// reservation in this bucket starts no earlier than start+highWater.
	// It may exceed the busy time when a reservation started mid-bucket
	// (the skipped idle gap is unusable but not busy).
	highWater Time
	// busy is the reserved (occupied) time within the bucket, <= width.
	busy Time
}

// Ring geometry: 4096 buckets cover ~400 µs of window at the 100 ns DRAM
// bucket width — orders of magnitude beyond the replay scheduler's thread
// skew, so out-of-window reservations are pathological, not routine.
const (
	calRingBits = 12
	calRingSize = int64(1) << calRingBits
	calRingMask = calRingSize - 1

	// Spill chunk geometry: 512 buckets (8 KB) per chunk.
	spillChunkBits = 9
	spillChunkSize = int64(1) << spillChunkBits
	spillChunkMask = spillChunkSize - 1
)

// spillChunk holds one aligned run of retired buckets.
type spillChunk [spillChunkSize]bucket

// spillAt returns retired bucket b's state (zero when never spilled).
func (c *Calendar) spillAt(b int64) bucket {
	if c.lastSpill != nil && b>>spillChunkBits == c.lastSpillIdx {
		return c.lastSpill[b&spillChunkMask]
	}
	if ch := c.spill[b>>spillChunkBits]; ch != nil {
		return ch[b&spillChunkMask]
	}
	return bucket{}
}

// spillPut stores retired bucket b's state, materializing its chunk on
// first use and caching it for the next consecutive retirement.
func (c *Calendar) spillPut(b int64, bk bucket) {
	ci := b >> spillChunkBits
	if c.lastSpill == nil || ci != c.lastSpillIdx {
		if c.spill == nil {
			c.spill = make(map[int64]*spillChunk)
		}
		ch := c.spill[ci]
		if ch == nil {
			ch = new(spillChunk)
			c.spill[ci] = ch
		}
		c.lastSpill, c.lastSpillIdx = ch, ci
	}
	c.lastSpill[b&spillChunkMask] = bk
}

// NewCalendar creates a calendar with the given bucket width. Widths
// around the resource's typical service time × 20 balance precision and
// memory (e.g. 100 ns for a DRAM channel).
func NewCalendar(width Time) *Calendar {
	if width == 0 {
		panic("sim: zero calendar width")
	}
	return &Calendar{width: width, ring: make([]bucket, calRingSize), maxBucket: -1}
}

// slideTo advances the ring window so bucket b fits, retiring outgoing
// nonzero buckets into the spill map. Amortized O(1) per bucket of
// simulated time advanced.
func (c *Calendar) slideTo(b int64) {
	newBase := b - calRingSize + 1
	steps := newBase - c.base
	if steps > calRingSize {
		steps = calRingSize
	}
	for i := int64(0); i < steps; i++ {
		idx := c.base + i
		s := &c.ring[idx&calRingMask]
		if s.highWater != 0 || s.busy != 0 {
			c.spillPut(idx, *s)
			*s = bucket{}
		}
	}
	c.base = newBase
}

// Reserve books dur of occupancy starting no earlier than at, returning
// the completion time of the reservation.
func (c *Calendar) Reserve(at Time, dur Time) Time {
	if dur == 0 {
		return at
	}
	c.Busy += dur
	b := int64(at / c.width)
	remaining := dur
	var end Time
	for remaining > 0 {
		bucketStart := Time(b) * c.width
		var bk bucket
		inRing := b >= c.base
		if inRing {
			if b >= c.base+calRingSize {
				c.slideTo(b)
			}
			bk = c.ring[b&calRingMask]
		} else {
			bk = c.spillAt(b)
		}
		// Position within the bucket: after existing occupancy, and not
		// before the requested time for the first chunk.
		pos := bucketStart + bk.highWater
		if pos < at {
			// Idle gap before `at`: the reservation starts at `at`, and the
			// intervening idle time remains (approximately) available; we
			// advance the placement cursor from `at` to bucket end.
			pos = at
		}
		avail := bucketStart + c.width - pos
		if avail <= 0 {
			b++
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		bk.highWater = (pos + take) - bucketStart
		bk.busy += take
		if inRing {
			c.ring[b&calRingMask] = bk
		} else {
			c.spillPut(b, bk)
		}
		// Maintain the incremental horizon accounting. Chunks of one
		// reservation arrive in increasing bucket order, and any bucket
		// above maxBucket holds no occupancy yet.
		switch {
		case b > c.maxBucket:
			c.belowMax += c.maxBusy
			c.maxBucket = b
			c.maxBusy = take
		case b == c.maxBucket:
			c.maxBusy += take
		default:
			c.belowMax += take
		}
		end = pos + take
		remaining -= take
		at = end
		b++
	}
	return end
}

// BusyWithin returns the reserved time that falls inside [0, horizon),
// computed from per-bucket occupancy. Unlike the raw Busy total, a
// reservation spilling past the horizon contributes only its in-horizon
// portion, so BusyWithin(h) <= h always holds.
//
// Horizons at or beyond the last occupied bucket — every end-of-run
// utilization query — are answered in O(1) from the incremental
// accounting; earlier horizons fall back to an exact bucket scan.
func (c *Calendar) BusyWithin(horizon Time) Time {
	if horizon == 0 || c.maxBucket < 0 {
		return 0
	}
	lastBucket := int64((horizon - 1) / c.width)
	var t Time
	switch {
	case lastBucket > c.maxBucket:
		// Every occupied bucket is fully inside the horizon.
		t = c.belowMax + c.maxBusy
	case lastBucket == c.maxBucket:
		// Only the latest bucket straddles the horizon: occupancy within a
		// bucket is not positioned, so cap the contribution at the
		// in-horizon width (error bounded by one bucket width).
		in := horizon - Time(lastBucket)*c.width
		t = c.belowMax
		if c.maxBusy < in {
			t += c.maxBusy
		} else {
			t += in
		}
	default:
		t = c.busyWithinScan(horizon, lastBucket)
	}
	if t > horizon {
		t = horizon
	}
	return t
}

// busyWithinScan is the exact slow path for horizons before the latest
// occupied bucket: sum bucket occupancy over the spill map and the ring
// window, capping the straddling bucket's contribution.
func (c *Calendar) busyWithinScan(horizon Time, lastBucket int64) Time {
	var t Time
	for ci, ch := range c.spill {
		for i := range ch {
			bk := ch[i]
			if bk.busy == 0 {
				continue
			}
			switch b := ci<<spillChunkBits + int64(i); {
			case b < lastBucket:
				t += bk.busy
			case b == lastBucket:
				in := horizon - Time(b)*c.width
				if bk.busy < in {
					t += bk.busy
				} else {
					t += in
				}
			}
		}
	}
	hi := c.maxBucket
	if hi > lastBucket {
		hi = lastBucket
	}
	for b := c.base; b <= hi; b++ {
		bk := c.ring[b&calRingMask]
		if b == lastBucket {
			in := horizon - Time(b)*c.width
			if bk.busy < in {
				t += bk.busy
			} else {
				t += in
			}
			continue
		}
		t += bk.busy
	}
	return t
}

// Utilization returns the fraction of [0, horizon) reserved, always in
// [0, 1]. It is computed from bucket occupancy within the horizon, not the
// raw Busy total: a reservation that spills past the measurement horizon
// (common at end-of-run) contributes only its in-horizon portion, where
// the old Busy/horizon ratio could exceed 1.
func (c *Calendar) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(c.BusyWithin(horizon)) / float64(horizon)
}
