package sim

// Calendar tracks the occupancy of a serial resource (a DRAM data bus, an
// HMC link lane, a cache port) in fixed-width time buckets, so that
// reservations made out of call order can still backfill idle gaps. A
// single high-water cursor ("freeAt") would falsely serialize independent
// requesters: once one client reserves far in the future, earlier idle
// time becomes unusable. The calendar keeps per-bucket occupancy instead;
// a reservation starting at time t consumes capacity from t's bucket
// onward, spilling into later buckets as needed.
//
// Within a bucket, sub-bucket ordering is approximated: a reservation is
// placed at max(requested time, bucket start + occupancy already placed in
// the bucket). This bounds the error by the bucket width while preserving
// total capacity exactly.
type Calendar struct {
	width Time
	used  map[int64]Time

	// Busy accumulates total reserved time (utilization accounting).
	Busy Time
}

// NewCalendar creates a calendar with the given bucket width. Widths
// around the resource's typical service time × 20 balance precision and
// memory (e.g. 100 ns for a DRAM channel).
func NewCalendar(width Time) *Calendar {
	if width == 0 {
		panic("sim: zero calendar width")
	}
	return &Calendar{width: width, used: make(map[int64]Time)}
}

// Reserve books dur of occupancy starting no earlier than at, returning
// the completion time of the reservation.
func (c *Calendar) Reserve(at Time, dur Time) Time {
	if dur == 0 {
		return at
	}
	c.Busy += dur
	b := int64(at / c.width)
	remaining := dur
	var end Time
	for remaining > 0 {
		bucketStart := Time(b) * c.width
		used := c.used[b]
		// Position within the bucket: after existing occupancy, and not
		// before the requested time for the first chunk.
		pos := bucketStart + used
		if pos < at {
			// Idle gap before `at`: the reservation starts at `at`, and the
			// intervening idle time remains (approximately) available; we
			// account occupancy from `at` to bucket end.
			pos = at
		}
		avail := bucketStart + c.width - pos
		if avail <= 0 {
			b++
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		c.used[b] += (pos + take) - (bucketStart + used)
		end = pos + take
		remaining -= take
		at = end
		b++
	}
	return end
}

// Utilization returns the fraction of [0, horizon] reserved.
func (c *Calendar) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(c.Busy) / float64(horizon)
}
