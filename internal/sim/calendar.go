package sim

// Calendar tracks the occupancy of a serial resource (a DRAM data bus, an
// HMC link lane, a cache port) in fixed-width time buckets, so that
// reservations made out of call order can still backfill idle gaps. A
// single high-water cursor ("freeAt") would falsely serialize independent
// requesters: once one client reserves far in the future, earlier idle
// time becomes unusable. The calendar keeps per-bucket occupancy instead;
// a reservation starting at time t consumes capacity from t's bucket
// onward, spilling into later buckets as needed.
//
// Within a bucket, sub-bucket ordering is approximated: a reservation is
// placed at max(requested time, bucket start + occupancy already placed in
// the bucket). This bounds the error by the bucket width while preserving
// total capacity exactly.
type Calendar struct {
	width Time
	used  map[int64]bucket

	// Busy accumulates total reserved time (utilization accounting). It
	// counts whole reservations at reservation time; for time-windowed
	// accounting use BusyWithin, which attributes a reservation to the
	// buckets it actually occupies.
	Busy Time
}

// bucket is one time slice's occupancy state.
type bucket struct {
	// highWater is the placement cursor from the bucket start: the next
	// reservation in this bucket starts no earlier than start+highWater.
	// It may exceed the busy time when a reservation started mid-bucket
	// (the skipped idle gap is unusable but not busy).
	highWater Time
	// busy is the reserved (occupied) time within the bucket, <= width.
	busy Time
}

// NewCalendar creates a calendar with the given bucket width. Widths
// around the resource's typical service time × 20 balance precision and
// memory (e.g. 100 ns for a DRAM channel).
func NewCalendar(width Time) *Calendar {
	if width == 0 {
		panic("sim: zero calendar width")
	}
	return &Calendar{width: width, used: make(map[int64]bucket)}
}

// Reserve books dur of occupancy starting no earlier than at, returning
// the completion time of the reservation.
func (c *Calendar) Reserve(at Time, dur Time) Time {
	if dur == 0 {
		return at
	}
	c.Busy += dur
	b := int64(at / c.width)
	remaining := dur
	var end Time
	for remaining > 0 {
		bucketStart := Time(b) * c.width
		bk := c.used[b]
		// Position within the bucket: after existing occupancy, and not
		// before the requested time for the first chunk.
		pos := bucketStart + bk.highWater
		if pos < at {
			// Idle gap before `at`: the reservation starts at `at`, and the
			// intervening idle time remains (approximately) available; we
			// advance the placement cursor from `at` to bucket end.
			pos = at
		}
		avail := bucketStart + c.width - pos
		if avail <= 0 {
			b++
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		bk.highWater = (pos + take) - bucketStart
		bk.busy += take
		c.used[b] = bk
		end = pos + take
		remaining -= take
		at = end
		b++
	}
	return end
}

// BusyWithin returns the reserved time that falls inside [0, horizon),
// computed from per-bucket occupancy. Unlike the raw Busy total, a
// reservation spilling past the horizon contributes only its in-horizon
// portion, so BusyWithin(h) <= h always holds.
func (c *Calendar) BusyWithin(horizon Time) Time {
	if horizon == 0 {
		return 0
	}
	lastBucket := int64((horizon - 1) / c.width)
	var t Time
	for b, bk := range c.used {
		switch {
		case b < lastBucket:
			t += bk.busy
		case b == lastBucket:
			// Bucket straddling the horizon: occupancy within a bucket is
			// not positioned, so cap the contribution at the in-horizon
			// width (error bounded by one bucket width).
			in := horizon - Time(b)*c.width
			if bk.busy < in {
				t += bk.busy
			} else {
				t += in
			}
		}
	}
	if t > horizon {
		t = horizon
	}
	return t
}

// Utilization returns the fraction of [0, horizon) reserved, always in
// [0, 1]. It is computed from bucket occupancy within the horizon, not the
// raw Busy total: a reservation that spills past the measurement horizon
// (common at end-of-run) contributes only its in-horizon portion, where
// the old Busy/horizon ratio could exceed 1.
func (c *Calendar) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(c.BusyWithin(horizon)) / float64(horizon)
}
