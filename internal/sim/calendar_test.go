package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCalendarSimpleReservation(t *testing.T) {
	c := NewCalendar(100)
	if end := c.Reserve(0, 10); end != 10 {
		t.Fatalf("first reservation ends at %d", end)
	}
	if end := c.Reserve(0, 10); end != 20 {
		t.Fatalf("second reservation ends at %d", end)
	}
	if c.Busy != 20 {
		t.Fatalf("busy %d", c.Busy)
	}
}

func TestCalendarBackfillsGaps(t *testing.T) {
	// The defining behaviour vs a high-water cursor: a reservation far in
	// the future must not block an earlier one.
	c := NewCalendar(100)
	late := c.Reserve(1000, 50)
	if late != 1050 {
		t.Fatalf("late reservation ends at %d", late)
	}
	early := c.Reserve(0, 50)
	if early > 100 {
		t.Fatalf("early reservation pushed to %d despite idle bucket", early)
	}
}

func TestCalendarSpillsAcrossBuckets(t *testing.T) {
	c := NewCalendar(100)
	end := c.Reserve(0, 350) // 3.5 buckets
	if end < 350 {
		t.Fatalf("spilling reservation ended at %d", end)
	}
	// The next reservation starts after the spill.
	if nxt := c.Reserve(0, 10); nxt <= end {
		t.Fatalf("overlap: %d <= %d", nxt, end)
	}
}

func TestCalendarZeroDuration(t *testing.T) {
	c := NewCalendar(100)
	if end := c.Reserve(42, 0); end != 42 {
		t.Fatalf("zero reservation moved time to %d", end)
	}
}

func TestCalendarZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCalendar(0)
}

func TestCalendarNeverEndsBeforeStartPlusDur(t *testing.T) {
	// Property: a reservation's end is always >= at+dur (no time travel),
	// and total Busy equals the sum of durations (capacity conservation).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCalendar(Time(1 + rng.Intn(200)))
		var total Time
		for i := 0; i < 200; i++ {
			at := Time(rng.Intn(5000))
			dur := Time(rng.Intn(300))
			end := c.Reserve(at, dur)
			if dur > 0 && end < at+dur {
				return false
			}
			total += dur
		}
		return c.Busy == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarThroughputBound(t *testing.T) {
	// Saturating a calendar from time 0 yields end ≈ total work: the
	// resource cannot serve more than one unit of work per unit time.
	c := NewCalendar(100)
	var end Time
	const n, each = 500, 7
	for i := 0; i < n; i++ {
		end = c.Reserve(0, each)
	}
	if end < n*each {
		t.Fatalf("served %d of work by %d: capacity violated", n*each, end)
	}
	if end > n*each+100 {
		t.Fatalf("saturated calendar left gaps: end %d", end)
	}
}

func TestCalendarUtilization(t *testing.T) {
	c := NewCalendar(100)
	c.Reserve(0, 500)
	if u := c.Utilization(1000); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v", u)
	}
	if c.Utilization(0) != 0 {
		t.Fatal("zero horizon")
	}
}

func TestCalendarUtilizationClampedAtHorizon(t *testing.T) {
	// Regression: Busy accrues the full reservation duration even when it
	// spills past the measurement horizon, so the old Busy/horizon ratio
	// exceeded 1.0 near end-of-run. Utilization must be computed from
	// bucket occupancy within the horizon instead.
	c := NewCalendar(100)
	c.Reserve(0, 500) // occupies [0, 500): five full buckets
	if c.Busy != 500 {
		t.Fatalf("Busy = %d", c.Busy)
	}
	// Horizon at 100: only one bucket's worth of the reservation is inside.
	if u := c.Utilization(100); u != 1.0 {
		t.Fatalf("utilization(100) = %v, want exactly 1", u)
	}
	// The pre-fix behaviour returned Busy/horizon = 5.0 here.
	for _, h := range []Time{1, 50, 100, 250, 499, 500, 501, 1000} {
		if u := c.Utilization(h); u < 0 || u > 1 {
			t.Fatalf("utilization(%d) = %v out of [0,1]", h, u)
		}
	}
}

func TestCalendarReserveAcrossHorizonBoundary(t *testing.T) {
	// A reservation straddling the horizon contributes only its in-horizon
	// portion.
	c := NewCalendar(100)
	end := c.Reserve(950, 500) // occupies [950, 1450)
	if end != 1450 {
		t.Fatalf("end %d", end)
	}
	if got := c.BusyWithin(1000); got != 50 {
		t.Fatalf("BusyWithin(1000) = %d, want 50", got)
	}
	if u := c.Utilization(1000); u != 0.05 {
		t.Fatalf("utilization %v, want 0.05", u)
	}
	// Past the reservation's end the whole duration is visible again.
	if got := c.BusyWithin(2000); got != 500 {
		t.Fatalf("BusyWithin(2000) = %d, want 500", got)
	}
}

func TestCalendarBusyWithinNeverExceedsHorizon(t *testing.T) {
	// Property: BusyWithin(h) <= h and is monotonic in h, for arbitrary
	// reservation patterns (including ones spilling far past the horizon).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCalendar(Time(1 + rng.Intn(200)))
		for i := 0; i < 100; i++ {
			c.Reserve(Time(rng.Intn(3000)), Time(rng.Intn(500)))
		}
		var prev Time
		for _, h := range []Time{1, 10, 100, 500, 1000, 2500, 5000, 100000} {
			got := c.BusyWithin(h)
			if got > h || got < prev {
				return false
			}
			if u := c.Utilization(h); u < 0 || u > 1 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
