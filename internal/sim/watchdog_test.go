package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// abortOf runs fn and returns the structured abort it panicked with, or
// nil if it returned normally.
func abortOf(t *testing.T, fn func()) (err error) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ab, ok := r.(Aborted)
		if !ok {
			t.Fatalf("panic value %v (%T), want sim.Aborted", r, r)
		}
		err = ab.Err
	}()
	fn()
	return nil
}

func TestWatchdogStallLimit(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{StallLimit: 100})
	// A zero-delay self-rescheduling event: simulated time never advances.
	var loop func()
	loop = func() { e.Schedule(0, loop) }
	e.Schedule(0, loop)
	err := abortOf(t, func() { e.Run() })
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err %v is not a *NoProgressError", err)
	}
	if np.Diag.StallSteps <= 100 {
		t.Errorf("diagnostic stall count %d, want > limit 100", np.Diag.StallSteps)
	}
	if !strings.Contains(np.Error(), "queue depth") {
		t.Errorf("dump missing queue depth:\n%s", np.Error())
	}
}

func TestWatchdogAllowsAdvancingRuns(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{StallLimit: 4, QueueLimit: 16})
	// Many events, but each advances time: the stall counter must reset.
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 1000 {
			e.Schedule(Nanosecond, tick)
		}
	}
	e.Schedule(Nanosecond, tick)
	if err := abortOf(t, func() { e.Run() }); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
	if n != 1000 {
		t.Fatalf("ran %d events, want 1000", n)
	}
}

func TestWatchdogQueueLimit(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{QueueLimit: 50})
	// Each event schedules two more: monotonic queue growth.
	var fork func()
	fork = func() {
		e.Schedule(Nanosecond, fork)
		e.Schedule(Nanosecond, fork)
	}
	err := abortOf(t, func() {
		e.Schedule(0, fork)
		e.Run()
	})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	var np *NoProgressError
	if !errors.As(err, &np) || np.Diag.QueueDepth <= 50 {
		t.Fatalf("want queue-depth diagnostic above the bound, got %v", err)
	}
}

func TestWatchdogWallClock(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{WallClock: 30 * time.Millisecond, CheckEvery: 64})
	// Time advances forever, so only the wall-clock heartbeat can stop it.
	var tick func()
	tick = func() { e.Schedule(Nanosecond, tick) }
	e.Schedule(0, tick)
	start := time.Now()
	err := abortOf(t, func() { e.Run() })
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", el)
	}
}

func TestWatchdogContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine()
	e.SetWatchdog(Watchdog{Ctx: ctx, CheckEvery: 64})
	var tick func()
	tick = func() { e.Schedule(Nanosecond, tick) }
	e.Schedule(0, tick)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := abortOf(t, func() { e.Run() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	m.Tick(false, nil)
	m.CheckQueue(1<<30, nil)
	m.CheckCtx()
	if m.Steps() != 0 || m.Stalls() != 0 {
		t.Fatal("nil monitor reported state")
	}
	if NewMonitor(Watchdog{}) != nil {
		t.Fatal("zero watchdog config must yield a nil (disabled) monitor")
	}
}

func TestDefaultWatchdogBoundsAreGenerous(t *testing.T) {
	cfg := DefaultWatchdog()
	if !cfg.Enabled() {
		t.Fatal("default watchdog disabled")
	}
	if cfg.StallLimit < 1<<20 || cfg.QueueLimit < 1<<20 {
		t.Fatalf("default bounds %d/%d too tight for healthy replays", cfg.StallLimit, cfg.QueueLimit)
	}
}
