// Package fault is the simulator-wide fault-injection layer: a seeded,
// deterministic source of the reliability events a real 3D-stacked memory
// system takes in the field — link CRC errors that force packet
// retransmission, ECC-corrected DRAM reads, hard bank faults that remap to
// a spare row decoder, and failed or thermally-degraded logic-layer
// processing units.
//
// Design constraints, in order:
//
//   - Deterministic and parallelism-independent. Every component draws
//     from its own named Source, a splitmix64 stream seeded from
//     (Config.Seed, component name). A platform replays its GC log
//     single-threaded, so each source is consumed in a fixed order and the
//     same seed reproduces the same fault pattern at any host parallelism.
//   - Zero cost (and zero behavioural change) when disabled. A nil
//     *Injector or *Source short-circuits every method: no random draws
//     happen, so a run with all fault knobs at zero is bit-identical to a
//     build without this package.
//   - Faults perturb timing and routing, never functional GC results. The
//     collector's recorded log is replayed unchanged; the injector only
//     makes the replay slower (retries, ECC stalls, degraded units) or
//     reroutes it (bank remap, unit failover, host fallback).
package fault

import (
	"fmt"
	"hash/fnv"
	"math"

	"charonsim/internal/sim"
)

// Config selects what faults to inject. The zero value disables injection
// entirely. Rate is the master knob (the CLI's -fault-rate): the per-class
// rates derive from it unless set explicitly, keeping a single scalar
// sweepable while still letting tests pin one fault class at a time.
type Config struct {
	// Rate is the master transient-fault rate in [0, 1): the probability a
	// link packet takes a CRC error and the baseline for the derived
	// per-class rates below.
	Rate float64
	// Seed selects the deterministic fault pattern. Two runs with the same
	// Seed (and the same work) take byte-identical faults; different seeds
	// give statistically independent patterns.
	Seed int64

	// LinkCRCRate is the per-packet transient CRC error probability
	// (default Rate). Each error costs one retransmission slot on the lane
	// plus a bounded exponential backoff.
	LinkCRCRate float64
	// RetryBudget bounds retransmissions per packet (default 8); a packet
	// that exhausts it is delivered anyway and counted as a give-up (a
	// real controller would raise a fatal link error).
	RetryBudget int
	// RetryBackoff is the initial retransmission backoff (default 6 ns);
	// it doubles per retry up to 16x.
	RetryBackoff sim.Time

	// ECCRate is the per-read probability of a correctable DRAM error
	// (default Rate/4); each correction adds ECCLatency to the access.
	ECCRate float64
	// ECCLatency is the correction latency adder (default 30 ns, a
	// detect-correct-replay round through the controller).
	ECCLatency sim.Time

	// HardBankRate is the per-bank probability, drawn once at platform
	// construction, that a bank is hard-faulted and remapped onto its
	// neighbouring healthy bank (default Rate/64).
	HardBankRate float64

	// UnitFailRate is the per-Charon-unit probability, drawn once at
	// construction, that the unit is defective and never serves offloads
	// (default Rate/8).
	UnitFailRate float64
	// UnitDegradeRate is the per-unit probability of thermal throttling
	// (default Rate/4); a degraded unit serves every offload
	// DegradeFactor times slower.
	UnitDegradeRate float64
	// DegradeFactor is the service-time multiplier of degraded units
	// (default 2.0).
	DegradeFactor float64
	// FailAllUnits forces every Charon unit failed regardless of rates:
	// the accelerator is present but dead, and every offload must fall
	// back to the host collector path.
	FailAllUnits bool

	// OffloadDeadline arms the exec layer's watchdog: an offload whose
	// modelled completion exceeds issue+deadline is abandoned and re-run
	// on the host cores from the deadline expiry. Zero disables it.
	OffloadDeadline sim.Time
}

// Enabled reports whether any fault machinery is active. Note the
// watchdog deadline alone enables the injector: it needs no randomness but
// it is degradation machinery all the same.
func (c Config) Enabled() bool {
	return c.Rate > 0 || c.LinkCRCRate > 0 || c.ECCRate > 0 || c.HardBankRate > 0 ||
		c.UnitFailRate > 0 || c.UnitDegradeRate > 0 || c.FailAllUnits || c.OffloadDeadline > 0
}

// Validate rejects configurations the derivations below would silently
// misread: rates outside [0, 1), negative seeds, and a seed without any
// fault class to apply it to.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"Rate", c.Rate}, {"LinkCRCRate", c.LinkCRCRate}, {"ECCRate", c.ECCRate},
		{"HardBankRate", c.HardBankRate}, {"UnitFailRate", c.UnitFailRate},
		{"UnitDegradeRate", c.UnitDegradeRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v >= 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s must be in [0, 1), got %v", r.name, r.v)
		}
	}
	if c.Seed < 0 {
		return fmt.Errorf("fault: Seed must be >= 0, got %d", c.Seed)
	}
	if c.Seed != 0 && !c.Enabled() {
		return fmt.Errorf("fault: Seed %d is set but every fault rate is zero (set Rate, a per-class rate, or FailAllUnits)", c.Seed)
	}
	if c.DegradeFactor < 0 || (c.DegradeFactor > 0 && c.DegradeFactor < 1) {
		return fmt.Errorf("fault: DegradeFactor must be >= 1 (0 selects the default), got %v", c.DegradeFactor)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("fault: RetryBudget must be >= 0 (0 selects the default), got %d", c.RetryBudget)
	}
	return nil
}

// withDefaults fills the derived per-class knobs.
func (c Config) withDefaults() Config {
	if c.LinkCRCRate == 0 {
		c.LinkCRCRate = c.Rate
	}
	if c.ECCRate == 0 {
		c.ECCRate = c.Rate / 4
	}
	if c.HardBankRate == 0 {
		c.HardBankRate = c.Rate / 64
	}
	if c.UnitFailRate == 0 {
		c.UnitFailRate = c.Rate / 8
	}
	if c.UnitDegradeRate == 0 {
		c.UnitDegradeRate = c.Rate / 4
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 2.0
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 6 * sim.Nanosecond
	}
	if c.ECCLatency == 0 {
		c.ECCLatency = 30 * sim.Nanosecond
	}
	return c
}

// Injector hands out per-component fault sources. A nil *Injector is the
// disabled state; every method short-circuits on it.
type Injector struct {
	cfg Config
}

// New builds an injector, or nil when cfg enables nothing — so call sites
// hold a single pointer whose nil-ness is the "faults off" fast path.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg.withDefaults()}
}

// Config returns the defaults-applied configuration. Safe on nil: the
// zero Config (everything disabled) comes back.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Source derives the named component's deterministic fault stream. The
// name is part of the seed, so "hmc/cube2/vault7" draws independently from
// "hmc/cube2/vault8" but reproducibly across runs.
func (in *Injector) Source(name string) *Source {
	if in == nil {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Source{state: splitmix(h.Sum64() ^ uint64(in.cfg.Seed)*0x9e3779b97f4a7c15)}
}

// NewSource builds a standalone deterministic stream for a named
// component outside an Injector — the same (name, seed) derivation
// Injector.Source uses, exported for fault layers that have their own
// configuration surface (the filesystem injector, the netfault TCP
// proxy) but must stay on the one seeding discipline.
func NewSource(name string, seed int64) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Source{state: splitmix(h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15)}
}

// Source is one component's private splitmix64 stream. A nil *Source never
// fires. Sources are not safe for concurrent use — by design: each
// simulated component is driven by exactly one replay goroutine.
type Source struct {
	state uint64
}

// splitmix is the splitmix64 output function (Steele et al.), the
// recommended seeder/generator for fixed-quality 64-bit streams.
func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the stream.
func (s *Source) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return splitmix(s.state)
}

// Hit draws one Bernoulli trial with probability p. Nil-safe (false), and
// p <= 0 returns false without consuming a draw — so a zero-rate class
// never perturbs the stream consumed by the others.
func (s *Source) Hit(p float64) bool {
	if s == nil || p <= 0 {
		return false
	}
	// 53 uniform mantissa bits, the standard float64-in-[0,1) construction.
	return float64(s.next()>>11)/(1<<53) < p
}

// Frac draws one uniform value in [0, 1) from the stream — the same
// construction Hit compares against p — for callers that need a
// deterministic fraction (backoff jitter, probe scheduling) rather than
// a Bernoulli trial. Nil-safe (0).
func (s *Source) Frac() float64 {
	if s == nil {
		return 0
	}
	return float64(s.next()>>11) / (1 << 53)
}
