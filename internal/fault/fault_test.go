package fault

import (
	"math"
	"testing"

	"charonsim/internal/sim"
)

func TestDisabledInjectorIsNil(t *testing.T) {
	if in := New(Config{}); in != nil {
		t.Fatalf("zero Config must yield a nil injector, got %+v", in)
	}
	if in := New(Config{Seed: 42}); in != nil {
		t.Fatalf("seed without rates must stay disabled, got %+v", in)
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	src := in.Source("any")
	if src != nil {
		t.Fatalf("nil injector must hand out nil sources")
	}
	if src.Hit(0.999) {
		t.Fatalf("nil source must never fire")
	}
	if got := in.Config(); got != (Config{}) {
		t.Fatalf("nil injector Config = %+v, want zero", got)
	}
}

func TestEnabledVariants(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{}, false},
		{Config{Rate: 0.01}, true},
		{Config{LinkCRCRate: 0.5}, true},
		{Config{ECCRate: 0.1}, true},
		{Config{HardBankRate: 0.01}, true},
		{Config{UnitFailRate: 0.1}, true},
		{Config{UnitDegradeRate: 0.1}, true},
		{Config{FailAllUnits: true}, true},
		{Config{OffloadDeadline: sim.Microsecond}, true},
		{Config{Seed: 9}, false},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := []Config{
		{},
		{Rate: 0.5, Seed: 3},
		{FailAllUnits: true, Seed: 1},
		{OffloadDeadline: sim.Microsecond},
		{Rate: 0.1, DegradeFactor: 3, RetryBudget: 2},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Rate: -0.1},
		{Rate: 1.0},
		{Rate: math.NaN()},
		{LinkCRCRate: 2},
		{ECCRate: -1},
		{HardBankRate: 1.5},
		{UnitFailRate: -0.5},
		{UnitDegradeRate: 7},
		{Rate: 0.1, Seed: -1},
		{Seed: 5}, // seed with nothing to seed
		{Rate: 0.1, DegradeFactor: 0.5},
		{Rate: 0.1, DegradeFactor: -1},
		{Rate: 0.1, RetryBudget: -3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestDefaultsDerivation(t *testing.T) {
	cfg := New(Config{Rate: 0.08}).Config()
	if cfg.LinkCRCRate != 0.08 {
		t.Errorf("LinkCRCRate = %v, want master rate", cfg.LinkCRCRate)
	}
	if cfg.ECCRate != 0.02 {
		t.Errorf("ECCRate = %v, want Rate/4", cfg.ECCRate)
	}
	if cfg.HardBankRate != 0.08/64 {
		t.Errorf("HardBankRate = %v, want Rate/64", cfg.HardBankRate)
	}
	if cfg.UnitFailRate != 0.01 {
		t.Errorf("UnitFailRate = %v, want Rate/8", cfg.UnitFailRate)
	}
	if cfg.RetryBudget != 8 || cfg.RetryBackoff == 0 || cfg.ECCLatency == 0 || cfg.DegradeFactor != 2.0 {
		t.Errorf("retry/latency defaults not applied: %+v", cfg)
	}
	// Explicit per-class settings survive.
	cfg = New(Config{Rate: 0.08, ECCRate: 0.5, RetryBudget: 3}).Config()
	if cfg.ECCRate != 0.5 || cfg.RetryBudget != 3 {
		t.Errorf("explicit overrides lost: %+v", cfg)
	}
}

func TestSourceDeterminism(t *testing.T) {
	draws := func(seed int64, name string, n int) []bool {
		src := New(Config{Rate: 0.3, Seed: seed}).Source(name)
		out := make([]bool, n)
		for i := range out {
			out[i] = src.Hit(0.3)
		}
		return out
	}
	a, b := draws(7, "hmc/link0", 256), draws(7, "hmc/link0", 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+name diverged at draw %d", i)
		}
	}
	c := draws(8, "hmc/link0", 256)
	d := draws(7, "hmc/link1", 256)
	differs := func(x []bool) bool {
		for i := range a {
			if a[i] != x[i] {
				return true
			}
		}
		return false
	}
	if !differs(c) {
		t.Fatalf("different seeds produced identical 256-draw streams")
	}
	if !differs(d) {
		t.Fatalf("different source names produced identical 256-draw streams")
	}
}

func TestHitRateRoughlyCalibrated(t *testing.T) {
	src := New(Config{Rate: 0.25, Seed: 11}).Source("calibration")
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Hit(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("empirical hit rate %v, want ~0.25", got)
	}
}

func TestZeroProbabilityConsumesNoDraw(t *testing.T) {
	a := New(Config{Rate: 0.5, Seed: 1}).Source("s")
	b := New(Config{Rate: 0.5, Seed: 1}).Source("s")
	for i := 0; i < 64; i++ {
		a.Hit(0) // must not advance the stream
		if a.Hit(0.5) != b.Hit(0.5) {
			t.Fatalf("Hit(0) consumed a draw (diverged at %d)", i)
		}
	}
}
