package netfault

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T, target string, cfg Config) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", target, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Rate: -0.1},
		{Rate: 1.1},
		{ResetRate: 2},
		{Seed: -1, Rate: 0.5},
		{Rate: 0.5, Delay: -time.Second},
		{Rate: 0.5, TruncateAfter: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, c)
		}
	}
	good := []Config{{}, {Rate: 0.5, Seed: 7}, {TruncateRate: 1}}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
}

// TestPassthroughByteFidelity: with every knob zero the proxy is a plain
// pipe — bytes through it are identical in both directions and no fault
// is ever drawn or injected.
func TestPassthroughByteFidelity(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte("charon-netfault-passthrough/"), 1024) // ~28KB
	go func() {
		conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(got), len(payload))
	}
	if n := p.Injected(); n != 0 {
		t.Fatalf("passthrough injected %d faults", n)
	}
}

// TestDeterministicPlans: two proxies with the same seed, driven by the
// same sequential connection pattern, inject the identical fault log.
// A different seed gives a different pattern.
func TestDeterministicPlans(t *testing.T) {
	run := func(seed int64) []Event {
		ln := echoServer(t)
		p := newProxy(t, ln.Addr().String(), Config{
			Rate: 0.4, Seed: seed,
			Delay: time.Millisecond, BlackholeHold: 10 * time.Millisecond,
			SlowEvery: time.Microsecond,
		})
		for i := 0; i < 40; i++ {
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			conn.SetDeadline(time.Now().Add(2 * time.Second))
			fmt.Fprintf(conn, "ping-%d", i)
			conn.(*net.TCPConn).CloseWrite()
			_, _ = io.ReadAll(conn) // outcome varies by plan; only the log matters
			conn.Close()
		}
		p.Close()
		return p.Log()
	}

	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("seed 42 at rate 0.4 injected nothing over 40 connections")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n a=%v\n b=%v", a, b)
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("seeds 42 and 43 produced the identical fault log %v", a)
	}
}

// TestResetSurfacesError: a reset-planned connection errors on the
// client side instead of returning a clean EOF.
func TestResetSurfacesError(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{ResetRate: 1, Seed: 1})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn, "hello")
	if _, err := io.ReadAll(conn); err == nil {
		t.Fatal("reset connection read cleanly")
	}
	if got := p.Counts()[ClassReset]; got != 1 {
		t.Fatalf("reset count = %d, want 1", got)
	}
}

// TestTruncateCutsStream: the client receives at most TruncateAfter
// bytes of a larger response and then an error — never a clean EOF that
// could masquerade as a complete body.
func TestTruncateCutsStream(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{TruncateRate: 1, Seed: 1, TruncateAfter: 128})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := bytes.Repeat([]byte("x"), 64<<10)
	go func() {
		conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err == nil {
		t.Fatalf("truncated stream ended cleanly after %d bytes", len(got))
	}
	if len(got) > 128 {
		t.Fatalf("received %d bytes past the 128-byte truncation point", len(got))
	}
}

// TestDelayAddsLatency: a delay-planned round trip takes at least the
// configured Delay.
func TestDelayAddsLatency(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{DelayRate: 1, Seed: 1, Delay: 120 * time.Millisecond})

	start := time.Now()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn, "ping")
	conn.(*net.TCPConn).CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < 120*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 120ms of injected delay", d)
	}
}

// TestBlackholeHoldsThenResets: nothing comes back, the hold is
// honoured, and the connection ends in an error.
func TestBlackholeHoldsThenResets(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{BlackholeRate: 1, Seed: 1, BlackholeHold: 150 * time.Millisecond})

	start := time.Now()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn, "anyone home")
	n, rerr := conn.Read(make([]byte, 1))
	if n != 0 || rerr == nil {
		t.Fatalf("blackhole returned data (n=%d err=%v)", n, rerr)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("blackhole released after %v, want >= 150ms hold", d)
	}
}

// TestSetDisabledPassthrough: with injection paused, a rate-1 proxy is a
// clean pipe; re-enabling resumes injection.
func TestSetDisabledPassthrough(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{ResetRate: 1, Seed: 1})
	p.SetDisabled(true)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn, "clean")
	conn.(*net.TCPConn).CloseWrite()
	got, err := io.ReadAll(conn)
	if err != nil || string(got) != "clean" {
		t.Fatalf("disabled proxy perturbed the stream: %q, %v", got, err)
	}
	conn.Close()
	if p.Injected() != 0 {
		t.Fatalf("disabled proxy injected %d faults", p.Injected())
	}

	p.SetDisabled(false)
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn2, "dirty")
	if _, err := io.ReadAll(conn2); err == nil {
		t.Fatal("re-enabled rate-1 reset proxy passed a connection cleanly")
	}
}

// TestHTTPThroughFaultyProxyEventuallySucceeds: a plain retrying HTTP
// client completes a GET through a moderately faulty proxy, and the
// response body is byte-identical to the direct answer.
func TestHTTPThroughFaultyProxyEventuallySucceeds(t *testing.T) {
	const body = "charond says hello\n"
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer hs.Close()
	target := strings.TrimPrefix(hs.URL, "http://")

	p := newProxy(t, target, Config{
		Rate: 0.35, Seed: 7,
		Delay: 5 * time.Millisecond, BlackholeHold: 50 * time.Millisecond,
		SlowEvery: time.Millisecond,
	})
	client := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true}, // one exchange per connection: every request redraws
	}
	var got string
	ok := false
	for attempt := 0; attempt < 50 && !ok; attempt++ {
		resp, err := client.Get("http://" + p.Addr() + "/")
		if err != nil {
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK {
			got, ok = string(raw), true
		}
	}
	if !ok {
		t.Fatalf("no successful GET in 50 attempts (injected=%d %v)", p.Injected(), p.Counts())
	}
	if got != body {
		t.Fatalf("body through proxy = %q, want %q", got, body)
	}
	if p.Injected() == 0 {
		t.Fatal("rate-0.35 proxy injected nothing over the attempt storm")
	}
}
