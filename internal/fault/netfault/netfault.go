// Package netfault is the network edge of the fault-injection layer: a
// deterministic, seeded in-process TCP proxy that makes the path between
// a charond client and the server fail the way real networks fail —
// connection resets, accept-time blackholes, added latency, truncated
// response bodies, and slowloris-shaped dribbling reads.
//
// It rides the same splitmix64 fault.Source machinery the simulator uses
// for HMC links and the persistence stack uses for disks: every accepted
// connection draws its fault plan from one seeded stream in accept
// order, so a given (seed, connection sequence) reproduces the same
// fault pattern in every run. The determinism contract is per
// connection, not per HTTP exchange — the proxy never parses HTTP; a
// keep-alive connection carrying many exchanges takes one plan.
//
// Design constraints, in order (mirroring package fault):
//
//   - Deterministic. Fault decisions are drawn under a mutex at accept
//     time from a single seeded stream; the k-th accepted connection
//     takes the k-th plan regardless of scheduling.
//   - Zero-cost passthrough when nothing is enabled: no draws, no
//     timers, a plain bidirectional copy.
//   - Recoverable. SetDisabled(true) pauses injection at runtime (the
//     recovery phase of chaos tests); Close tears everything down.
//   - Accountable. Every injected fault bumps a per-class counter and
//     lands in the fault log, so a chaos gate can reconcile client-side
//     retry/breaker counters against what was actually injected.
package netfault

import (
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"charonsim/internal/fault"
)

// Fault classes, in draw order. The draw order is part of the
// determinism contract: changing it changes which connection takes
// which fault for a given seed.
const (
	ClassBlackhole = "blackhole" // accepted, held silent, then reset
	ClassReset     = "reset"     // RST after the first client bytes
	ClassDelay     = "delay"     // added latency before each direction's first byte
	ClassTruncate  = "truncate"  // server→client stream cut after TruncateAfter bytes
	ClassSlowRead  = "slowread"  // client→server header bytes dribbled slowly
)

var classes = []string{ClassBlackhole, ClassReset, ClassDelay, ClassTruncate, ClassSlowRead}

// Config selects which network fault classes the proxy injects and how
// often. The zero value disables injection entirely (pure passthrough).
// Rate is the master knob; per-class rates derive from it unless set
// explicitly, mirroring fault.Config and fault.FSConfig.
type Config struct {
	// Rate is the master per-connection fault probability in [0, 1] and
	// the baseline for the derived per-class rates below. 1 makes every
	// class fire on every connection — useful for pinning error paths.
	Rate float64
	// Seed selects the deterministic fault pattern, like fault.Config.Seed.
	Seed int64

	// BlackholeRate is the probability a connection is accepted and then
	// held with no bytes exchanged for BlackholeHold, then reset — the
	// shape of a dead middlebox (default Rate/2).
	BlackholeRate float64
	// ResetRate is the probability a connection is RST both ways right
	// after the first client bytes arrive (default Rate).
	ResetRate float64
	// DelayRate is the probability Delay is added before the first byte
	// of each direction (default Rate).
	DelayRate float64
	// TruncateRate is the probability the server→client stream is cut
	// (RST) after TruncateAfter bytes — a truncated response body
	// (default Rate).
	TruncateRate float64
	// SlowReadRate is the probability the first SlowBytes of the
	// client→server stream are dribbled SlowChunk bytes per SlowEvery —
	// a slowloris-shaped request that stresses the server's header
	// timeouts (default Rate/2).
	SlowReadRate float64

	// Delay is the per-direction first-byte latency adder (default 75ms).
	Delay time.Duration
	// BlackholeHold is how long a blackholed connection is held silent
	// before the reset (default 750ms) — long enough for a client to
	// notice, short enough for chaos runs to converge.
	BlackholeHold time.Duration
	// TruncateAfter is how many server→client bytes pass before the cut
	// (default 256 — inside the headers or the first body chunk of any
	// charond response, so the truncation is always client-visible).
	TruncateAfter int
	// SlowBytes / SlowChunk / SlowEvery shape the slow-read dribble:
	// the first SlowBytes client bytes are forwarded SlowChunk at a time
	// with SlowEvery between writes (defaults 48, 1, 4ms).
	SlowBytes int
	SlowChunk int
	SlowEvery time.Duration
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.Rate > 0 || c.BlackholeRate > 0 || c.ResetRate > 0 ||
		c.DelayRate > 0 || c.TruncateRate > 0 || c.SlowReadRate > 0
}

// Validate rejects rates outside [0, 1], negative seeds, and negative
// shape knobs.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"Rate", c.Rate}, {"BlackholeRate", c.BlackholeRate}, {"ResetRate", c.ResetRate},
		{"DelayRate", c.DelayRate}, {"TruncateRate", c.TruncateRate}, {"SlowReadRate", c.SlowReadRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("netfault: %s must be in [0, 1], got %v", r.name, r.v)
		}
	}
	if c.Seed < 0 {
		return fmt.Errorf("netfault: Seed must be >= 0, got %d", c.Seed)
	}
	if c.Delay < 0 || c.BlackholeHold < 0 || c.SlowEvery < 0 {
		return fmt.Errorf("netfault: durations must be >= 0")
	}
	if c.TruncateAfter < 0 || c.SlowBytes < 0 || c.SlowChunk < 0 {
		return fmt.Errorf("netfault: byte counts must be >= 0")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.BlackholeRate == 0 {
		c.BlackholeRate = c.Rate / 2
	}
	if c.ResetRate == 0 {
		c.ResetRate = c.Rate
	}
	if c.DelayRate == 0 {
		c.DelayRate = c.Rate
	}
	if c.TruncateRate == 0 {
		c.TruncateRate = c.Rate
	}
	if c.SlowReadRate == 0 {
		c.SlowReadRate = c.Rate / 2
	}
	if c.Delay == 0 {
		c.Delay = 75 * time.Millisecond
	}
	if c.BlackholeHold == 0 {
		c.BlackholeHold = 750 * time.Millisecond
	}
	if c.TruncateAfter == 0 {
		c.TruncateAfter = 256
	}
	if c.SlowBytes == 0 {
		c.SlowBytes = 48
	}
	if c.SlowChunk == 0 {
		c.SlowChunk = 1
	}
	if c.SlowEvery == 0 {
		c.SlowEvery = 4 * time.Millisecond
	}
	return c
}

// Event is one injected fault, for the fault log.
type Event struct {
	Conn  uint64 // accept sequence number of the connection (1-based)
	Class string
}

// plan is the fault decision for one accepted connection. All draws
// happen at accept time so the stream is consumed in accept order.
type plan struct {
	blackhole, reset, delay, truncate, slow bool
}

func (p plan) any() bool { return p.blackhole || p.reset || p.delay || p.truncate || p.slow }

// Proxy is a deterministic fault-injecting TCP forwarder. Create with
// New, point clients at Addr(), stop with Close.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu  sync.Mutex // guards src (draws) and the fault log
	src *fault.Source
	log []Event
	lw  io.Writer // optional line-per-fault log sink

	disabled atomic.Bool
	injected atomic.Uint64
	counts   map[string]*atomic.Uint64

	closed chan struct{}
	wg     sync.WaitGroup
}

// New starts a proxy on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) forwarding to target. logW, when non-nil, receives one
// "conn=<n> class=<class>" line per injected fault as it happens — the
// chaos gate's post-mortem artifact.
func New(listenAddr, target string, cfg Config, logW io.Writer) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netfault: listen: %w", err)
	}
	p := &Proxy{
		cfg:    cfg.withDefaults(),
		target: target,
		ln:     ln,
		lw:     logW,
		closed: make(chan struct{}),
		counts: map[string]*atomic.Uint64{},
	}
	for _, c := range classes {
		p.counts[c] = &atomic.Uint64{}
	}
	if cfg.Enabled() {
		p.src = fault.NewSource("netfault/proxy", cfg.Seed)
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDisabled pauses (true) or resumes (false) injection at runtime;
// in-flight connections keep their already-drawn plans. The recovery
// phase of chaos runs flips it. Draws still advance the stream while
// disabled, preserving the accept-order determinism contract.
func (p *Proxy) SetDisabled(v bool) { p.disabled.Store(v) }

// Injected returns the total number of faults injected so far.
func (p *Proxy) Injected() uint64 { return p.injected.Load() }

// Counts returns a per-class snapshot of injected-fault counters.
func (p *Proxy) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(classes))
	for _, c := range classes {
		out[c] = p.counts[c].Load()
	}
	return out
}

// Log returns a copy of the fault log in injection order.
func (p *Proxy) Log() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.log...)
}

// Close stops accepting, severs every live connection, and waits for
// the connection goroutines to unwind.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	var seq uint64
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		seq++
		pl := p.drawPlan()
		p.wg.Add(1)
		go func(c net.Conn, n uint64, pl plan) {
			defer p.wg.Done()
			p.handle(c, n, pl)
		}(conn, seq, pl)
	}
}

// drawPlan consumes one decision per fault class from the seeded stream,
// in the fixed class order. Disabled mode draws but discards, so the
// k-th connection sees the k-th plan whether or not a recovery phase
// paused injection in between.
func (p *Proxy) drawPlan() plan {
	if p.src == nil {
		return plan{}
	}
	p.mu.Lock()
	pl := plan{
		blackhole: p.src.Hit(p.cfg.BlackholeRate),
		reset:     p.src.Hit(p.cfg.ResetRate),
		delay:     p.src.Hit(p.cfg.DelayRate),
		truncate:  p.src.Hit(p.cfg.TruncateRate),
		slow:      p.src.Hit(p.cfg.SlowReadRate),
	}
	p.mu.Unlock()
	if p.disabled.Load() {
		return plan{}
	}
	return pl
}

// note records one injected fault: counters plus the fault log.
func (p *Proxy) note(conn uint64, class string) {
	p.injected.Add(1)
	p.counts[class].Add(1)
	p.mu.Lock()
	p.log = append(p.log, Event{Conn: conn, Class: class})
	if p.lw != nil {
		fmt.Fprintf(p.lw, "conn=%d class=%s\n", conn, class)
	}
	p.mu.Unlock()
}

// hardClose resets a TCP connection (linger 0 ⇒ RST) rather than
// FIN-closing it, so the peer sees ECONNRESET — the fault being modelled
// — instead of a clean end-of-stream it might misread as a complete
// response.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// sleep waits d or until the proxy is closed.
func (p *Proxy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.closed:
	}
}

func (p *Proxy) handle(client net.Conn, seq uint64, pl plan) {
	// Blackhole: the connection was accepted, and that is all that will
	// ever happen on it.
	if pl.blackhole {
		p.note(seq, ClassBlackhole)
		p.sleep(p.cfg.BlackholeHold)
		hardClose(client)
		return
	}

	server, err := net.Dial("tcp", p.target)
	if err != nil {
		hardClose(client)
		return
	}

	// Reset: wait for the client to commit (first bytes of its request),
	// then RST both sides — the request may or may not have reached the
	// server, exactly the ambiguity resilient clients must handle.
	if pl.reset {
		buf := make([]byte, 4096)
		if n, err := client.Read(buf); err == nil && n > 0 {
			_, _ = server.Write(buf[:n])
		}
		p.note(seq, ClassReset)
		hardClose(client)
		hardClose(server)
		return
	}

	if pl.delay {
		p.note(seq, ClassDelay)
	}
	if pl.truncate {
		p.note(seq, ClassTruncate)
	}
	if pl.slow {
		p.note(seq, ClassSlowRead)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	// client → server: optional first-byte delay, optional slowloris
	// dribble of the leading bytes.
	go func() {
		defer wg.Done()
		p.pipeUp(client, server, pl)
	}()
	// server → client: optional first-byte delay, optional truncation.
	go func() {
		defer wg.Done()
		p.pipeDown(server, client, pl, seq)
	}()
	// Sever live connections when the proxy closes so Close never hangs
	// behind an idle keep-alive.
	done := make(chan struct{})
	go func() {
		select {
		case <-p.closed:
			hardClose(client)
			hardClose(server)
		case <-done:
		}
	}()
	wg.Wait()
	close(done)
	client.Close()
	server.Close()
}

// pipeUp forwards client bytes to the server, applying the delay and
// slow-read plans.
func (p *Proxy) pipeUp(client, server net.Conn, pl plan) {
	if pl.delay {
		p.sleep(p.cfg.Delay)
	}
	if pl.slow {
		buf := make([]byte, p.cfg.SlowChunk)
		sent := 0
		for sent < p.cfg.SlowBytes {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
				sent += n
				p.sleep(p.cfg.SlowEvery)
			}
			if err != nil {
				closeWrite(server)
				return
			}
		}
	}
	_, _ = io.Copy(server, client)
	closeWrite(server)
}

// pipeDown forwards server bytes to the client, applying the delay and
// truncation plans.
func (p *Proxy) pipeDown(server, client net.Conn, pl plan, seq uint64) {
	if pl.delay {
		p.sleep(p.cfg.Delay)
	}
	if pl.truncate {
		// Forward at most TruncateAfter bytes, then RST both ways: the
		// client holds a torn response it must detect (Content-Length
		// mismatch or a broken chunk stream).
		_, _ = io.CopyN(client, server, int64(p.cfg.TruncateAfter))
		hardClose(client)
		hardClose(server)
		return
	}
	_, _ = io.Copy(client, server)
	closeWrite(client)
}

// closeWrite half-closes the write side so the peer sees EOF while its
// own writes still drain — the clean-passthrough shutdown order.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		return
	}
	_ = c.Close()
}

// ClassNames returns the fault classes in draw order, for docs and logs.
func ClassNames() []string {
	out := append([]string(nil), classes...)
	sort.Strings(out)
	return out
}
