package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"charonsim/internal/atomicio"
)

func writeThrough(t *testing.T, fsys atomicio.FS, dir, name, data string) error {
	t.Helper()
	return atomicio.WriteFileBytesFS(fsys, filepath.Join(dir, name), []byte(data))
}

func TestFSDisabledConfigIsNil(t *testing.T) {
	if fs := NewFS(FSConfig{}, nil); fs != nil {
		t.Fatal("zero FSConfig must produce a nil injector")
	}
	var fs *FS
	if got := fs.Wrap(nil); got != nil {
		t.Fatal("nil injector Wrap(nil) must return nil (real filesystem)")
	}
	if fs.Injected() != 0 {
		t.Fatal("nil injector reports injections")
	}
	fs.SetDisabled(true) // must not panic
}

func TestFSValidate(t *testing.T) {
	bad := []FSConfig{
		{Rate: -0.1},
		{Rate: 1.1},
		{WriteErrRate: 2},
		{SyncErrRate: -1},
		{Seed: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, c)
		}
	}
	good := []FSConfig{{}, {Rate: 1}, {Rate: 0.5, Seed: 42}, {TornRenameRate: 1}}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
}

func TestFSWriteErrorIsENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{WriteErrRate: 1}, nil)
	err := writeThrough(t, fs, dir, "f", "payload")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ErrInjected wrapping ENOSPC", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "f")); !os.IsNotExist(serr) {
		t.Fatal("failed write published a file")
	}
	assertNoDebris(t, dir)
	if fs.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", fs.Injected())
	}
}

func TestFSShortWriteFails(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{ShortWriteRate: 1}, nil)
	err := writeThrough(t, fs, dir, "f", "0123456789")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ErrInjected wrapping ENOSPC", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "f")); !os.IsNotExist(serr) {
		t.Fatal("short write published a file")
	}
	assertNoDebris(t, dir)
}

func TestFSSyncError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{SyncErrRate: 1}, nil)
	err := writeThrough(t, fs, dir, "f", "payload")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want ErrInjected wrapping EIO", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "f")); !os.IsNotExist(serr) {
		t.Fatal("failed sync published a file")
	}
	assertNoDebris(t, dir)
}

// TestFSTornRename pins the nastiest artifact: a rename that "tears",
// leaving a truncated destination — exactly what the checkpoint layer's
// checksum envelope exists to catch.
func TestFSTornRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{TornRenameRate: 1}, nil)
	err := writeThrough(t, fs, dir, "f", "full payload bytes")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want ErrInjected wrapping EIO", err)
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "f"))
	if rerr != nil {
		t.Fatalf("torn rename left no destination artifact: %v", rerr)
	}
	if string(got) == "full payload bytes" || len(got) == 0 {
		t.Fatalf("destination = %q, want a truncated prefix", got)
	}
	if !strings.HasPrefix("full payload bytes", string(got)) {
		t.Fatalf("torn destination %q is not a prefix of the payload", got)
	}
}

// TestFSSetDisabledRecovers models a disk that fills and is cleared: with
// injection paused the same FS serves writes cleanly, and resuming makes
// it fail again.
func TestFSSetDisabledRecovers(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{WriteErrRate: 1}, nil)
	if err := writeThrough(t, fs, dir, "f", "x"); err == nil {
		t.Fatal("enabled injector let a write through at rate 1")
	}
	fs.SetDisabled(true)
	if err := writeThrough(t, fs, dir, "f", "x"); err != nil {
		t.Fatalf("disabled injector still failed: %v", err)
	}
	fs.SetDisabled(false)
	if err := writeThrough(t, fs, dir, "f", "y"); err == nil {
		t.Fatal("re-enabled injector let a write through at rate 1")
	}
	got, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(got) != "x" {
		t.Fatalf("failed overwrite corrupted the file: %q", got)
	}
}

// TestFSDeterministicAcrossRuns: the same seed over the same operation
// sequence fires the same faults; a different seed differs somewhere.
func TestFSDeterministicAcrossRuns(t *testing.T) {
	pattern := func(seed int64) string {
		dir := t.TempDir()
		fs := NewFS(FSConfig{Rate: 0.3, Seed: seed}, nil)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if writeThrough(t, fs, dir, "f", strings.Repeat("x", 32)) != nil {
				b.WriteByte('F')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := pattern(8); c == a {
		t.Fatalf("different seed produced an identical pattern: %s", c)
	}
	if !strings.Contains(a, "F") || !strings.Contains(a, ".") {
		t.Fatalf("rate 0.3 pattern degenerate: %s", a)
	}
}

func assertNoDebris(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp debris %s left behind", e.Name())
		}
	}
}
