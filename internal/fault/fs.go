package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"charonsim/internal/atomicio"
)

// ErrInjected marks every error produced by the filesystem injector.
// Layers above classify on it: an injected fault is transient by
// definition (the disk is fine; the injector said no), so retry and
// degraded-mode machinery treat it like any other recoverable I/O error
// while tests can still tell injected failures from real ones.
var ErrInjected = errors.New("fault: injected I/O error")

// FSConfig selects which filesystem fault classes the injector produces
// and how often. The zero value disables injection. Rate is the master
// knob; the per-class rates derive from it unless set explicitly,
// mirroring Config.
type FSConfig struct {
	// Rate is the master per-operation fault probability in [0, 1] and the
	// default for every class below. 1 fails every eligible operation —
	// useful for pinning error paths deterministically.
	Rate float64
	// Seed selects the deterministic fault pattern, like Config.Seed.
	Seed int64

	// WriteErrRate is the per-write probability of a hard ENOSPC: the
	// write lands nothing and fails (default Rate).
	WriteErrRate float64
	// ShortWriteRate is the per-write probability of a torn write: half
	// the bytes land, then ENOSPC (default Rate).
	ShortWriteRate float64
	// SyncErrRate is the per-fsync probability of an EIO, applied to both
	// file syncs and directory syncs (default Rate).
	SyncErrRate float64
	// TornRenameRate is the per-rename probability of a torn publish: the
	// destination receives a truncated copy of the source — the artifact
	// of a crash on a filesystem without atomic rename — and the rename
	// reports EIO (default Rate).
	TornRenameRate float64
}

// Enabled reports whether any fault class can fire.
func (c FSConfig) Enabled() bool {
	return c.Rate > 0 || c.WriteErrRate > 0 || c.ShortWriteRate > 0 ||
		c.SyncErrRate > 0 || c.TornRenameRate > 0
}

// Validate rejects rates outside [0, 1] and negative seeds.
func (c FSConfig) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"Rate", c.Rate}, {"WriteErrRate", c.WriteErrRate},
		{"ShortWriteRate", c.ShortWriteRate}, {"SyncErrRate", c.SyncErrRate},
		{"TornRenameRate", c.TornRenameRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: fs %s must be in [0, 1], got %v", r.name, r.v)
		}
	}
	if c.Seed < 0 {
		return fmt.Errorf("fault: fs Seed must be >= 0, got %d", c.Seed)
	}
	return nil
}

func (c FSConfig) withDefaults() FSConfig {
	if c.WriteErrRate == 0 {
		c.WriteErrRate = c.Rate
	}
	if c.ShortWriteRate == 0 {
		c.ShortWriteRate = c.Rate
	}
	if c.SyncErrRate == 0 {
		c.SyncErrRate = c.Rate
	}
	if c.TornRenameRate == 0 {
		c.TornRenameRate = c.Rate
	}
	return c
}

// FS is a deterministic, seeded fault-injecting atomicio.FS: it wraps the
// real filesystem (or any inner FS) and makes the write paths used by
// atomicio, checkpoint, and the charond job journal fail the way disks
// fail — ENOSPC, short writes, fsync EIO, torn renames. Unlike the
// simulation injector it is safe for concurrent use: server worker pools
// write checkpoints in parallel.
type FS struct {
	cfg   FSConfig
	inner atomicio.FS

	mu  sync.Mutex
	src Source

	disabled atomic.Bool
	injected atomic.Uint64
}

// NewFS builds a filesystem injector over inner (nil inner = the real
// filesystem), or nil when cfg enables nothing — a nil *FS is a valid
// atomicio.FS value only in the sense that callers should pass the inner
// FS instead; use Wrap for that pattern.
func NewFS(cfg FSConfig, inner atomicio.FS) *FS {
	if !cfg.Enabled() {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte("fault/fs"))
	return &FS{
		cfg:   cfg.withDefaults(),
		inner: inner,
		src:   Source{state: splitmix(h.Sum64() ^ uint64(cfg.Seed)*0x9e3779b97f4a7c15)},
	}
}

// Wrap returns f as an atomicio.FS, or inner when f is nil — the
// "faults off" fast path keeps the real filesystem with zero overhead.
func (f *FS) Wrap(inner atomicio.FS) atomicio.FS {
	if f == nil {
		return inner
	}
	f.inner = inner
	return f
}

// SetDisabled pauses (true) or resumes (false) injection at runtime.
// Recovery tests flip it to model a disk that fills and is then cleared.
func (f *FS) SetDisabled(v bool) {
	if f != nil {
		f.disabled.Store(v)
	}
}

// Injected returns how many faults have fired.
func (f *FS) Injected() uint64 {
	if f == nil {
		return 0
	}
	return f.injected.Load()
}

// hit draws one trial from the shared stream.
func (f *FS) hit(p float64) bool {
	if f.disabled.Load() {
		return false
	}
	f.mu.Lock()
	ok := f.src.Hit(p)
	f.mu.Unlock()
	if ok {
		f.injected.Add(1)
	}
	return ok
}

func (f *FS) real() atomicio.FS {
	if f.inner != nil {
		return f.inner
	}
	return realFS{}
}

// realFS duplicates atomicio's unexported osFS for the injector's
// pass-through path.
type realFS struct{}

func (realFS) CreateTemp(dir, pattern string) (atomicio.File, error) {
	return os.CreateTemp(dir, pattern)
}
func (realFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (realFS) Remove(name string) error             { return os.Remove(name) }
func (realFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// injectedErr builds the error for one fired fault: it wraps both
// ErrInjected (for classification) and the modelled errno (so callers see
// the same error shapes a real disk produces).
func injectedErr(op, path string, errno error) error {
	return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, path, errno)
}

// CreateTemp passes through; faults fire on the write path, not on file
// creation, so every failure leaves a temp file for the cleanup paths to
// handle — the harder case.
func (f *FS) CreateTemp(dir, pattern string) (atomicio.File, error) {
	file, err := f.real().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file}, nil
}

// Rename either passes through or tears: the destination receives a
// truncated prefix of the source — what a crash mid-publish leaves on a
// filesystem without atomic rename — and the operation reports EIO. The
// source temp file is left behind, as a crash would leave it.
func (f *FS) Rename(oldpath, newpath string) error {
	if !f.hit(f.cfg.TornRenameRate) {
		return f.real().Rename(oldpath, newpath)
	}
	data, err := os.ReadFile(oldpath)
	if err == nil {
		_ = os.WriteFile(newpath, data[:len(data)/2], 0o644)
	}
	return injectedErr("rename", newpath, syscall.EIO)
}

// Remove passes through: cleanup must keep working under injection, or
// every fault would leak temp files.
func (f *FS) Remove(name string) error { return f.real().Remove(name) }

// SyncDir either passes through or reports EIO.
func (f *FS) SyncDir(dir string) error {
	if f.hit(f.cfg.SyncErrRate) {
		return injectedErr("syncdir", dir, syscall.EIO)
	}
	return f.real().SyncDir(dir)
}

// faultFile injects write and sync faults on one open file.
type faultFile struct {
	fs *FS
	atomicio.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.hit(ff.fs.cfg.WriteErrRate) {
		return 0, injectedErr("write", ff.Name(), syscall.ENOSPC)
	}
	if ff.fs.hit(ff.fs.cfg.ShortWriteRate) {
		n, err := ff.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injectedErr("write", ff.Name(), syscall.ENOSPC)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.hit(ff.fs.cfg.SyncErrRate) {
		return injectedErr("fsync", ff.Name(), syscall.EIO)
	}
	return ff.File.Sync()
}
