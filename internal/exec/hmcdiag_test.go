package exec

import (
	"fmt"
	"testing"

	"charonsim/internal/cpu"
	"charonsim/internal/dram"
	"charonsim/internal/hmc"
	"charonsim/internal/sim"
)

func TestDiagHostHMCvsDDR4(t *testing.T) {
	mkOps := func(n int, stride uint64, dep bool) []cpu.Op {
		var ops []cpu.Op
		for i := 0; i < n; i++ {
			d := cpu.NoDep
			if dep && i > 0 {
				d = int32(i - 1)
			}
			ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: uint64(i) * stride, Size: 8, Dep: d})
		}
		return ops
	}
	run := func(name string, mk func() cpu.MemBackend, ops []cpu.Op, ncores int) sim.Time {
		mem := mk()
		h := cpu.NewHost(ncores, cpu.DefaultConfig(), mem)
		var last sim.Time
		for c := 0; c < ncores; c++ {
			shift := make([]cpu.Op, len(ops))
			copy(shift, ops)
			for i := range shift {
				shift[i].Addr += uint64(c) * (1 << 26)
			}
			if f := h.Cores[c].ExecOps(0, shift); f > last {
				last = f
			}
		}
		fmt.Printf("%-18s cores=%d  time=%8.1f us\n", name, ncores, last.Seconds()*1e6)
		return last
	}
	ddr := func() cpu.MemBackend { return dram.NewDDR4(sim.NewEngine()) }
	hmcB := func() cpu.MemBackend { return hostHMCBackend{hmc.NewSystem(sim.NewEngine(), 22)} }

	seq := mkOps(20000, 64, false)
	rnd := mkOps(5000, 4096+64, false)
	chase := mkOps(2000, 4096+64, true)
	for _, ncores := range []int{1, 8} {
		run("DDR4 seq", ddr, seq, ncores)
		run("HMC  seq", hmcB, seq, ncores)
		run("DDR4 rnd", ddr, rnd, ncores)
		run("HMC  rnd", hmcB, rnd, ncores)
		run("DDR4 chase", ddr, chase, ncores)
		run("HMC  chase", hmcB, chase, ncores)
	}
}
