package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"charonsim/internal/gc"
	"charonsim/internal/sim"
)

// recoverAbort runs fn and returns the structured error it aborted with,
// or nil if it completed.
func recoverAbort(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(sim.Aborted)
			if !ok {
				panic(r)
			}
			err = ab.Err
		}
	}()
	fn()
	return nil
}

// TestRunThreadsStallGuard wedges the replay scheduler with a stepper
// that never advances time and never completes — the exact livelock shape
// the watchdog exists for — and asserts the abort is structured: it
// unwraps to ErrNoProgress and its dump names the stuck thread.
func TestRunThreadsStallGuard(t *testing.T) {
	evs, _ := record(t, 4<<20)
	mon := sim.NewMonitor(sim.Watchdog{StallLimit: 64})
	err := recoverAbort(func() {
		runThreads(0, evs[0], 2, mon, nil, func(thread int, inv *gc.Invocation) stepper {
			return stepFunc(func(_ int, tm sim.Time) stepResult {
				return stepResult{t: tm} // no advance, never done
			})
		})
	})
	if err == nil {
		t.Fatal("wedged scheduler ran to completion")
	}
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("abort %v does not unwrap to sim.ErrNoProgress", err)
	}
	var np *sim.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("abort %v carries no NoProgressError", err)
	}
	if !strings.Contains(np.Diag.Detail, "thread 0 (executing)") {
		t.Fatalf("diagnostic dump does not name the stuck thread:\n%s", np.Diag.Detail)
	}
	if np.Diag.StallSteps <= 64 {
		t.Fatalf("dump reports %d stalled steps, want > limit", np.Diag.StallSteps)
	}
}

// TestRunThreadsHealthyReplayNeverStalls pins the property the default-on
// watchdog depends on: a real replay's steppers always either advance
// simulated time or complete, so even a stall budget far below the
// default never fires on a healthy run.
func TestRunThreadsHealthyReplayNeverStalls(t *testing.T) {
	evs, env := record(t, 4<<20)
	wd := sim.Watchdog{StallLimit: 4}
	p, err := NewWithOptions(KindCharon, env, 8, Options{Watchdog: &wd})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		p.Replay(ev, 8)
	}
}

// TestWatchdogAbortThenSchedulerReuse: the reusable replaySched scratch
// (thread heap, per-thread stepper states) must come back clean after a
// watchdog abort tore down a run mid-flight — the next run on the same
// scratch sees every invocation exactly once, with no stale steppers from
// the aborted schedule firing.
func TestWatchdogAbortThenSchedulerReuse(t *testing.T) {
	evs, _ := record(t, 4<<20)
	ev := evs[0]
	mon := sim.NewMonitor(sim.Watchdog{StallLimit: 64})
	var sched replaySched
	err := recoverAbort(func() {
		sched.run(0, ev, 2, mon, nil, func(thread int, inv *gc.Invocation) stepper {
			return stepFunc(func(_ int, tm sim.Time) stepResult {
				return stepResult{t: tm} // wedge: no advance, never done
			})
		})
	})
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("wedged run aborted with %v, want ErrNoProgress", err)
	}
	seen := 0
	end, _ := sched.run(0, ev, 2, nil, nil, func(thread int, inv *gc.Invocation) stepper {
		return oneShot(func(tm sim.Time) sim.Time {
			seen++
			return tm + 1
		})
	})
	if seen != len(ev.Invocations) {
		t.Fatalf("reused scheduler executed %d of %d invocations", seen, len(ev.Invocations))
	}
	if end == 0 {
		t.Fatal("reused scheduler did not advance time")
	}
}

// TestReplayContextCancellation: a platform built with a cancelled
// context refuses to replay, aborting with an error that unwraps to
// context.Canceled.
func TestReplayContextCancellation(t *testing.T) {
	evs, env := record(t, 4<<20)
	ctx, cancel := context.WithCancel(context.Background())
	p, err := NewWithOptions(KindCharon, env, 8, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Replay(evs[0], 8) // healthy before cancellation
	if r.Duration == 0 {
		t.Fatal("no duration before cancellation")
	}
	cancel()
	aerr := recoverAbort(func() { p.Replay(evs[0], 8) })
	if !errors.Is(aerr, context.Canceled) {
		t.Fatalf("replay after cancel aborted with %v, want context.Canceled", aerr)
	}
}

// TestKindValidate is the table test for the unknown-platform boundary:
// construction must return an error, not panic.
func TestKindValidate(t *testing.T) {
	for _, k := range Kinds() {
		if err := k.Validate(); err != nil {
			t.Fatalf("valid kind %v rejected: %v", k, err)
		}
	}
	for _, k := range []Kind{Kind(-1), KindIdeal + 1, Kind(99)} {
		if err := k.Validate(); err == nil {
			t.Fatalf("invalid kind %d accepted", int(k))
		}
	}
	_, env := record(t, 4<<20)
	if _, err := NewWithOptions(Kind(99), env, 8, Options{}); err == nil {
		t.Fatal("NewWithOptions accepted an unknown kind")
	}
}
