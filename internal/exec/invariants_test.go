package exec

import (
	"strings"
	"testing"

	"charonsim/internal/metrics"
)

// collectAfterReplay replays every event on a fresh platform of the given
// kind and returns the collected metrics snapshot.
func collectAfterReplay(t *testing.T, kind Kind, heapBytes uint64, opt Options) metrics.Snapshot {
	t.Helper()
	evs, env := record(t, heapBytes)
	p := mustOpt(t, kind, env, 8, opt)
	for _, ev := range evs {
		p.Replay(ev, 8)
	}
	ms, ok := p.(MetricsSource)
	if !ok {
		t.Fatalf("%v platform does not implement MetricsSource", kind)
	}
	reg := metrics.NewRegistry()
	ms.CollectMetrics(reg)
	return reg.Snapshot()
}

// requestedBytes sums the requester-side byte counters: what the host
// cores (post-cache: demand misses, prefetches, writebacks, flushes) and
// the Charon units asked the memory system for.
func requestedBytes(s metrics.Snapshot) float64 {
	var sum float64
	for name, v := range s.Counters {
		switch {
		case strings.Contains(name, "/cpu/") &&
			(strings.HasSuffix(name, "/mem_read_bytes") || strings.HasSuffix(name, "/mem_write_bytes")):
			sum += v
		case strings.HasSuffix(name, "/charon/mem_read_bytes") || strings.HasSuffix(name, "/charon/mem_write_bytes"):
			sum += v
		}
	}
	return sum
}

// servedBytes sums the server-side byte counters: what the DRAM banks
// (DDR4 channels, or HMC vaults) actually transferred. Link/TSV traffic
// is transport, not service, and is excluded.
func servedBytes(s metrics.Snapshot) float64 {
	var sum float64
	for name, v := range s.Counters {
		switch {
		case strings.Contains(name, "/dram/") &&
			(strings.HasSuffix(name, "/read_bytes") || strings.HasSuffix(name, "/write_bytes")):
			sum += v
		case strings.Contains(name, "/vault") &&
			(strings.HasSuffix(name, "/read_bytes") || strings.HasSuffix(name, "/write_bytes")):
			sum += v
		}
	}
	return sum
}

// TestByteConservation asserts the cross-component conservation law on
// every platform kind and two workload shapes: every byte the requesters
// (cores + Charon units) asked for is served by exactly one DRAM bank —
// no duplication, no loss, exact equality.
func TestByteConservation(t *testing.T) {
	kinds := []Kind{KindDDR4, KindHMC, KindCharon, KindCharonDistributed, KindCharonCPUSide, KindIdeal}
	for _, heapBytes := range []uint64{4 << 20, 8 << 20} {
		for _, k := range kinds {
			s := collectAfterReplay(t, k, heapBytes, Options{})
			req, srv := requestedBytes(s), servedBytes(s)
			if req == 0 {
				t.Fatalf("%v heap=%d: no requester-side bytes recorded", k, heapBytes)
			}
			if req != srv {
				t.Errorf("%v heap=%d: conservation violated: requested %.0f B, served %.0f B (delta %+.0f)",
					k, heapBytes, req, srv, srv-req)
			}
		}
	}
}

// TestUtilizationGaugesInRange asserts every published utilization gauge
// is a valid fraction: busy time accounted to a resource never exceeds
// the platform's horizon (the Calendar clamp fix).
func TestUtilizationGaugesInRange(t *testing.T) {
	for _, k := range []Kind{KindDDR4, KindHMC, KindCharon} {
		s := collectAfterReplay(t, k, 8<<20, Options{})
		checked := 0
		for name, v := range s.Gauges {
			if !strings.HasSuffix(name, "util") {
				continue
			}
			checked++
			if v < 0 || v > 1 {
				t.Errorf("%v: gauge %s = %v outside [0,1]", k, name, v)
			}
		}
		if checked == 0 {
			t.Fatalf("%v: no utilization gauges published", k)
		}
	}
}

// TestBusyNeverExceedsHorizon cross-checks the counter form of the same
// invariant: per-resource busy_ps never exceeds the platform clock.
func TestBusyNeverExceedsHorizon(t *testing.T) {
	for _, k := range []Kind{KindDDR4, KindHMC, KindCharon} {
		s := collectAfterReplay(t, k, 8<<20, Options{})
		prefix := metricsPrefix(k.String())
		horizon, ok := s.Gauges[prefix+"/clock_ps"]
		if !ok || horizon <= 0 {
			t.Fatalf("%v: no clock_ps gauge", k)
		}
		for name, v := range s.Counters {
			if !strings.HasSuffix(name, "busy_ps") {
				continue
			}
			if v > horizon {
				t.Errorf("%v: %s = %.0f ps exceeds horizon %.0f ps", k, name, v, horizon)
			}
		}
	}
}

// TestCollectMetricsDisabledIsNoop asserts the nil-registry fast path: a
// disabled registry stays empty and replay results are unaffected.
func TestCollectMetricsDisabledIsNoop(t *testing.T) {
	evs, env := record(t, 4<<20)
	p := New(KindCharon, env, 8)
	for _, ev := range evs {
		p.Replay(ev, 8)
	}
	var reg *metrics.Registry // nil = disabled
	p.(MetricsSource).CollectMetrics(reg)
	if reg.Enabled() || len(reg.Names()) != 0 {
		t.Fatal("nil registry must stay disabled and empty")
	}
}

// TestTraceRecorderCapturesSpans asserts the Options.Trace plumbing: a
// recorder passed at construction receives GC-event and unit spans, and
// the platform names its trace lanes.
func TestTraceRecorderCapturesSpans(t *testing.T) {
	evs, env := record(t, 4<<20)
	rec := metrics.NewRecorder(0)
	p := mustOpt(t, KindCharon, env, 8, Options{Trace: rec})
	for _, ev := range evs {
		p.Replay(ev, 8)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events under the default limit", rec.Dropped())
	}
	var sb strings.Builder
	if err := rec.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"process_name"`, `"thread_name"`, `"copysearch0"`, `"ph":"X"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}
