// Package exec binds the collector's recorded work descriptors to the
// platform timing models. A recorded GC event is replayed on one of four
// platforms — host over DDR4, host over HMC, Charon (near-memory or
// CPU-side), and Ideal (zero-cost primitives) — with the GC threads
// interleaved in global time order over the shared memory system. This is
// how every figure of the paper's evaluation is regenerated from a single
// functional GC run.
package exec

import (
	"charonsim/internal/cpu"
	"charonsim/internal/gc"
	"charonsim/internal/gcmeta"
	"charonsim/internal/heap"
)

// Software-path instruction cost estimates (dynamic instructions charged
// per micro-op). These drive the Figure 4 breakdown shares; the constants
// are exported indirectly through AblationWork for sensitivity benches.
const (
	workCopyLoad   = 8   // word-copy loop body per 64 B line (load half)
	workCopyStore  = 4   // store half
	workSearchLine = 24  // 64 byte-compares per card-table line
	workSlotLoad   = 3   // reference load + null/region checks
	workHeaderChk  = 4   // is_unmarked / forwarding test
	workPushStore  = 4   // stack push bookkeeping
	workSlotStore  = 3   // slot update
	workMarkRMW    = 10  // mark_obj bitmap read-modify-write pair
	workBitmapWord = 150 // Figure 8 bit-iteration: ~2.3 instr/bit over a 64-bit word
	workAdjustSlot = 16  // calc-new-pointer lookup + store
)

// expander turns invocations into cpu.Op streams for the software path.
// It needs the metadata layout to synthesize bitmap/card addresses.
type expander struct {
	lay     gc.Layout
	heapLo  heap.Addr
	endOff  uint64 // end-map base = beg-map base + endOff
	scratch []cpu.Op
}

func newExpander(lay gc.Layout, heapLo heap.Addr, heapBytes uint64) *expander {
	n := (heapBytes/heap.WordBytes + 63) / 64
	return &expander{lay: lay, heapLo: heapLo, endOff: (n*8 + 4095) / 4096 * 4096}
}

// begByte returns the beg-map byte address for a heap address.
func (x *expander) begByte(a heap.Addr) uint64 {
	return uint64(x.lay.BitmapBase) + uint64(a-x.heapLo)/heap.WordBytes/8
}

// endByte returns the end-map byte address for a heap address (the end
// map sits one page-rounded map-size after the beg map, matching
// gcmeta.MarkBitmaps).
func (x *expander) endByte(a heap.Addr) uint64 {
	return x.begByte(a) + x.endOff
}

// cardByte returns the card-table byte address guarding a heap slot.
func (x *expander) cardByte(a heap.Addr) uint64 {
	return uint64(x.lay.CardBase) + uint64(a-x.heapLo)/gcmeta.CardBytes
}

// expandCopy expands an invocation for a stepper. Each thread owns its
// expander, and a thread finishes an invocation before expanding the next,
// so returning the reused scratch slice is safe.
func (x *expander) expandCopy(inv *gc.Invocation, ev *gc.Event, major bool) []cpu.Op {
	return x.expand(inv, ev, major)
}

// expand appends the op stream for inv to x.scratch and returns it. The
// slice is reused across calls.
func (x *expander) expand(inv *gc.Invocation, ev *gc.Event, major bool) []cpu.Op {
	ops := x.scratch[:0]
	switch inv.Prim {
	case gc.PrimCopy:
		// Word-copy loop at cache-line granularity: the store depends on
		// its load; successive lines are independent (the OoO window
		// overlaps them up to the MSHR limit).
		src, dst := uint64(inv.A), uint64(inv.B)
		for off := uint32(0); off < inv.N; off += 64 {
			n := inv.N - off
			if n > 64 {
				n = 64
			}
			ld := int32(len(ops))
			ops = append(ops,
				cpu.Op{Kind: cpu.OpRead, Addr: src + uint64(off), Size: n, Dep: cpu.NoDep, Work: workCopyLoad},
				cpu.Op{Kind: cpu.OpWrite, Addr: dst + uint64(off), Size: n, Dep: ld, Work: workCopyStore},
			)
		}

	case gc.PrimSearch:
		// Sequential card-byte scan, line by line.
		a := uint64(inv.A)
		for off := uint32(0); off < inv.N; off += 64 {
			n := inv.N - off
			if n > 64 {
				n = 64
			}
			ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: a + uint64(off), Size: n, Dep: cpu.NoDep, Work: workSearchLine})
		}

	case gc.PrimScanPush:
		refs := ev.Refs[inv.RefOff : inv.RefOff+inv.RefLen]
		pushes := 0
		for i := range refs {
			r := &refs[i]
			slotLd := int32(len(ops))
			ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: uint64(r.Slot), Size: 8, Dep: cpu.NoDep, Work: workSlotLoad})
			if r.Target == 0 || r.Flags == gc.RefNull {
				continue
			}
			// is_unmarked: header load (minor) or bitmap probe (major),
			// dependent on the slot value.
			chk := int32(len(ops))
			if major {
				ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: x.begByte(r.Target), Size: 8, Dep: slotLd, Work: workHeaderChk})
			} else {
				ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: uint64(r.Target), Size: 8, Dep: slotLd, Work: workHeaderChk})
			}
			if r.Flags&gc.RefNewlyMarked != 0 {
				ops = append(ops,
					cpu.Op{Kind: cpu.OpWrite, Addr: x.begByte(r.Target), Size: 8, Dep: chk, Work: workMarkRMW},
					cpu.Op{Kind: cpu.OpWrite, Addr: x.endByte(r.Target), Size: 8, Dep: chk, Work: 2},
				)
			}
			if r.Flags&gc.RefPushed != 0 {
				addr := uint64(inv.B) + uint64(pushes)*8
				pushes++
				ops = append(ops, cpu.Op{Kind: cpu.OpWrite, Addr: addr, Size: 8, Dep: chk, Work: workPushStore})
			}
			if r.Flags&gc.RefForwardUpdate != 0 {
				ops = append(ops, cpu.Op{Kind: cpu.OpWrite, Addr: uint64(r.Slot), Size: 8, Dep: chk, Work: workSlotStore})
			}
			if r.Flags&gc.RefCardDirty != 0 {
				ops = append(ops, cpu.Op{Kind: cpu.OpWrite, Addr: x.cardByte(r.Slot), Size: 1, Dep: chk, Work: 2})
			}
		}

	case gc.PrimBitmapCount:
		// Figure 8 verbatim: iterate both maps bit by bit. Reads are
		// sequential; the per-word bit loop dominates.
		a := uint64(inv.A)
		for off := uint32(0); off < inv.N; off += 8 {
			ops = append(ops,
				cpu.Op{Kind: cpu.OpRead, Addr: a + uint64(off), Size: 8, Dep: cpu.NoDep, Work: workBitmapWord},
				cpu.Op{Kind: cpu.OpRead, Addr: a + x.endOff + uint64(off), Size: 8, Dep: cpu.NoDep, Work: workBitmapWord},
			)
		}

	case gc.PrimAdjust:
		// N slot rewrites within the object at A.
		for i := uint32(0); i < inv.N; i++ {
			addr := uint64(inv.A) + 16 + uint64(i)*8
			ld := int32(len(ops))
			ops = append(ops,
				cpu.Op{Kind: cpu.OpRead, Addr: addr, Size: 8, Dep: cpu.NoDep, Work: workAdjustSlot},
				cpu.Op{Kind: cpu.OpWrite, Addr: addr, Size: 8, Dep: ld, Work: 2},
			)
		}
		if inv.N == 0 {
			ops = append(ops, cpu.Op{Kind: cpu.OpCompute, Dep: cpu.NoDep, Work: 4})
		}

	case gc.PrimOther:
		if inv.A != 0 {
			ops = append(ops, cpu.Op{Kind: cpu.OpRead, Addr: uint64(inv.A), Size: 8, Dep: cpu.NoDep, Work: inv.N})
		} else {
			ops = append(ops, cpu.Op{Kind: cpu.OpCompute, Dep: cpu.NoDep, Work: inv.N})
		}
	}
	x.scratch = ops
	return ops
}
