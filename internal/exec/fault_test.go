package exec

import (
	"testing"

	"charonsim/internal/fault"
	"charonsim/internal/gc"
	"charonsim/internal/sim"
)

// TestByteConservationWithFaults asserts that the requester==served byte
// invariant survives fault injection: link retransmissions occupy lanes
// but must not double-count payload, ECC corrections delay but do not
// re-read, and bank remaps redirect rather than duplicate.
func TestByteConservationWithFaults(t *testing.T) {
	fc := &fault.Config{Rate: 0.1, HardBankRate: 0.05, Seed: 3}
	kinds := []Kind{KindDDR4, KindHMC, KindCharon, KindCharonDistributed, KindCharonCPUSide}
	for _, k := range kinds {
		s := collectAfterReplay(t, k, 4<<20, Options{Fault: fc})
		req, srv := requestedBytes(s), servedBytes(s)
		if req == 0 {
			t.Fatalf("%v: no requester-side bytes recorded", k)
		}
		if req != srv {
			t.Errorf("%v: conservation violated under faults: requested %.0f B, served %.0f B (delta %+.0f)",
				k, req, srv, srv-req)
		}
		// The fault machinery actually fired.
		var retries float64
		for name, v := range s.Counters {
			if len(name) > 12 && name[len(name)-12:] == "/crc_retries" {
				retries += v
			}
		}
		if k != KindDDR4 && retries == 0 {
			t.Errorf("%v: 10%% CRC rate produced no link retries", k)
		}
	}
}

// TestByteConservationWithDeadlineFallback covers the watchdog's
// double-charged path: the abandoned offload's traffic and the host
// re-execution's traffic both appear on both sides of the ledger.
func TestByteConservationWithDeadlineFallback(t *testing.T) {
	fc := &fault.Config{OffloadDeadline: 100 * sim.Nanosecond}
	s := collectAfterReplay(t, KindCharon, 4<<20, Options{Fault: fc})
	req, srv := requestedBytes(s), servedBytes(s)
	if req == 0 || req != srv {
		t.Fatalf("conservation violated with watchdog: requested %.0f B, served %.0f B", req, srv)
	}
	if s.Counters["charon/degradation/deadline"] == 0 {
		t.Fatal("a 100ns deadline fired no watchdog fallbacks")
	}
}

// TestAllUnitsFailedMatchesHostBaseline is the failover acceptance
// criterion: with every Charon unit failed the platform must degenerate
// to the host-only collector path — per-event GC durations equal to
// KindHMC exactly (same cores, same memory system, same schedule) and one
// degradation event per offloadable invocation.
func TestAllUnitsFailedMatchesHostBaseline(t *testing.T) {
	evs, env := record(t, 4<<20)
	for _, nthreads := range []int{1, 8} {
		host := New(KindHMC, env, nthreads)
		dead := mustOpt(t, KindCharon, env, nthreads,
			Options{Fault: &fault.Config{FailAllUnits: true, Seed: 1}})

		var offloadable uint64
		for _, ev := range evs {
			for i := range ev.Invocations {
				if ev.Invocations[i].Prim.Offloadable() {
					offloadable++
				}
			}
		}
		for i, ev := range evs {
			h := host.Replay(ev, nthreads)
			d := dead.Replay(ev, nthreads)
			if h.Duration != d.Duration {
				t.Fatalf("threads=%d event %d (%v): all-failed Charon %v != host baseline %v",
					nthreads, i, ev.Kind, d.Duration, h.Duration)
			}
		}
		cp := dead.(*charonPlatform)
		noUnit, deadline := cp.DegradationEvents()
		if noUnit != offloadable {
			t.Fatalf("threads=%d: degradation events %d, want one per offloadable invocation (%d)",
				nthreads, noUnit, offloadable)
		}
		if deadline != 0 {
			t.Fatalf("threads=%d: unexpected watchdog firings %d", nthreads, deadline)
		}
	}
}

// TestHealthyFaultConfigIsByteIdentical asserts the zero-knob guarantee at
// the platform level: an Options.Fault carrying only a deadline that never
// fires replays bit-identically to no fault config at all.
func TestHealthyFaultConfigIsByteIdentical(t *testing.T) {
	evs, env := record(t, 4<<20)
	plain := New(KindCharon, env, 8)
	armed := mustOpt(t, KindCharon, env, 8,
		Options{Fault: &fault.Config{OffloadDeadline: sim.Second}})
	for i, ev := range evs {
		a := plain.Replay(ev, 8)
		b := armed.Replay(ev, 8)
		if a != b {
			t.Fatalf("event %d: armed-but-idle watchdog changed the result:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestDeadlineFallbackBoundsOffloads verifies the watchdog semantics: with
// a deadline armed, every offloadable invocation completes by
// issue+deadline+host-fallback time, and degradation events are recorded.
func TestDeadlineFallbackBoundsOffloads(t *testing.T) {
	evs, env := record(t, 4<<20)
	p := mustOpt(t, KindCharon, env, 8,
		Options{Fault: &fault.Config{OffloadDeadline: 50 * sim.Nanosecond}})
	for _, ev := range evs {
		p.Replay(ev, 8)
	}
	cp := p.(*charonPlatform)
	_, deadline := cp.DegradationEvents()
	if deadline == 0 {
		t.Fatal("50ns deadline never fired on this workload")
	}
	if len(cp.degPerEvent) != len(evs) {
		t.Fatalf("per-event degradation samples %d, want %d", len(cp.degPerEvent), len(evs))
	}
}

// TestFaultRatesSlowGC sanity-checks the macro effect: a faulted memory
// system must not make GC faster.
func TestFaultRatesSlowGC(t *testing.T) {
	evs, env := record(t, 4<<20)
	healthy := New(KindCharon, env, 8)
	faulty := mustOpt(t, KindCharon, env, 8,
		Options{Fault: &fault.Config{Rate: 0.2, Seed: 7}})
	var h, f sim.Time
	for _, ev := range evs {
		h += healthy.Replay(ev, 8).Duration
		f += faulty.Replay(ev, 8).Duration
	}
	if f < h {
		t.Fatalf("20%% fault rate sped GC up: faulty %v < healthy %v", f, h)
	}
}

// TestDegradationMetricsPublished checks the observability contract: the
// degradation counters and per-event distribution appear in the registry.
func TestDegradationMetricsPublished(t *testing.T) {
	s := collectAfterReplay(t, KindCharon, 4<<20,
		Options{Fault: &fault.Config{FailAllUnits: true, Seed: 1}})
	if s.Counters["charon/degradation/no_unit"] == 0 {
		t.Fatal("no_unit degradation counter missing or zero")
	}
	d, ok := s.Dists["charon/degradation/per_gc_event"]
	if !ok || d.Count == 0 {
		t.Fatal("per_gc_event degradation distribution missing")
	}
	if s.Counters["charon/charon/units_failed"] == 0 {
		t.Fatal("units_failed counter missing or zero")
	}
}

var _ = gc.Minor // keep the gc import when build tags trim tests
