package exec

import (
	"testing"

	"charonsim/internal/charon"
	"charonsim/internal/gc"
	hp "charonsim/internal/heap"
	"charonsim/internal/hmc"
	"charonsim/internal/sim"
)

// record builds a collector over a small heap, runs a mixed workload and
// returns the recorded events plus the replay environment.
func record(t testing.TB, heapBytes uint64) ([]*gc.Event, Env) {
	tbl := hp.NewTable()
	node := tbl.Define(hp.Klass{Name: "Node", Kind: hp.KindInstance, InstanceWords: 8, RefOffsets: []int32{2, 3, 4}})
	arr := tbl.Define(hp.Klass{Name: "Object[]", Kind: hp.KindObjArray})
	data := tbl.Define(hp.Klass{Name: "byte[]", Kind: hp.KindTypeArray, ElemBytes: 1})

	h := hp.New(hp.DefaultConfig(heapBytes), tbl)
	c := gc.New(h)
	c.Recording = true

	// Long-lived graph: array of node chains plus data buffers.
	sidx := h.AddRoot(c.AllocArray(arr, 64))
	for i := 0; i < 64; i++ {
		n := c.AllocInstance(node)
		h.StoreRef(h.Root(sidx), hp.HeaderWords+i, n)
		d := c.AllocArray(data, 2048)
		spine := h.Root(sidx)
		head := h.LoadRef(spine, hp.HeaderWords+i)
		h.StoreRef(head, 2, d)
	}
	// Churn: short-lived allocations forcing several minor GCs.
	for i := 0; i < 20000; i++ {
		if c.AllocArray(data, 512) == 0 {
			t.Fatal("unexpected OOM")
		}
	}
	// One explicit full GC for major-phase coverage.
	c.MajorGC("test")
	if len(c.Log) < 2 {
		t.Fatalf("workload recorded only %d events", len(c.Log))
	}
	return c.Log, EnvFor(c)
}

// mustOpt is NewWithOptions for tests: any construction error is fatal.
func mustOpt(t testing.TB, kind Kind, env Env, threads int, opt Options) Platform {
	t.Helper()
	p, err := NewWithOptions(kind, env, threads, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// replayAll sums durations over all events.
func replayAll(p Platform, evs []*gc.Event, threads int) (total sim.Time, prim [gc.NumPrims]sim.Time, last Result) {
	for _, ev := range evs {
		r := p.Replay(ev, threads)
		total += r.Duration
		for i := range prim {
			prim[i] += r.PrimTime[i]
		}
		last = r
	}
	return
}

func TestReplayAllPlatformsComplete(t *testing.T) {
	evs, env := record(t, 8<<20)
	for _, k := range []Kind{KindDDR4, KindHMC, KindCharon, KindCharonDistributed, KindCharonCPUSide, KindIdeal} {
		p := New(k, env, 8)
		total, prim, last := replayAll(p, evs, 8)
		if total == 0 {
			t.Fatalf("%v: zero duration", k)
		}
		var primSum sim.Time
		for _, v := range prim {
			primSum += v
		}
		if primSum == 0 {
			t.Fatalf("%v: no primitive attribution", k)
		}
		if last.Duration == 0 {
			t.Fatalf("%v: last event has no duration", k)
		}
	}
}

func TestPlatformOrdering(t *testing.T) {
	// The paper's Figure 12 ordering: Ideal <= Charon <= HMC <= DDR4.
	evs, env := record(t, 8<<20)
	dur := map[Kind]sim.Time{}
	for _, k := range []Kind{KindDDR4, KindHMC, KindCharon, KindIdeal} {
		total, _, _ := replayAll(New(k, env, 8), evs, 8)
		dur[k] = total
	}
	if !(dur[KindIdeal] < dur[KindCharon] && dur[KindCharon] < dur[KindHMC] && dur[KindHMC] < dur[KindDDR4]) {
		t.Fatalf("ordering violated: Ideal=%v Charon=%v HMC=%v DDR4=%v",
			dur[KindIdeal], dur[KindCharon], dur[KindHMC], dur[KindDDR4])
	}
	// Headline shape: Charon speedup over DDR4 should be substantial (the
	// paper reports 3.29x geomean across workloads).
	speedup := float64(dur[KindDDR4]) / float64(dur[KindCharon])
	if speedup < 1.5 {
		t.Fatalf("Charon speedup only %.2fx", speedup)
	}
	hmcSpeedup := float64(dur[KindDDR4]) / float64(dur[KindHMC])
	if hmcSpeedup < 1.02 || hmcSpeedup > 2.5 {
		t.Fatalf("HMC-only speedup %.2fx outside plausible band (paper: 1.21x)", hmcSpeedup)
	}
}

func TestCopyPrimitiveSpeedup(t *testing.T) {
	// Figure 14: Copy gains the most from Charon (paper: 10.17x average).
	evs, env := record(t, 8<<20)
	_, primD, _ := replayAll(New(KindDDR4, env, 8), evs, 8)
	_, primC, _ := replayAll(New(KindCharon, env, 8), evs, 8)
	if primC[gc.PrimCopy] == 0 {
		t.Fatal("no copy time on Charon")
	}
	s := float64(primD[gc.PrimCopy]) / float64(primC[gc.PrimCopy])
	if s < 2 {
		t.Fatalf("Copy speedup %.2fx, expected the largest gain", s)
	}
}

func TestCPUSideSlowerThanNearMemory(t *testing.T) {
	// Figure 16: CPU-side Charon loses ~37% throughput vs memory-side.
	evs, env := record(t, 8<<20)
	near, _, _ := replayAll(New(KindCharon, env, 8), evs, 8)
	cpuSide, _, _ := replayAll(New(KindCharonCPUSide, env, 8), evs, 8)
	if cpuSide <= near {
		t.Fatalf("CPU-side (%v) should be slower than near-memory (%v)", cpuSide, near)
	}
	ratio := float64(near) / float64(cpuSide)
	if ratio < 0.3 || ratio > 0.99 {
		t.Fatalf("memory/CPU-side ratio %.2f outside plausible band", ratio)
	}
}

func TestCharonThreadScaling(t *testing.T) {
	// Figure 15: Charon scales with threads; DDR4 saturates early.
	evs, env := record(t, 8<<20)
	c1, _, _ := replayAll(New(KindCharon, env, 1), evs, 1)
	c8, _, _ := replayAll(New(KindCharon, env, 8), evs, 8)
	charonScale := float64(c1) / float64(c8)
	if charonScale < 1.5 {
		t.Fatalf("Charon thread scaling only %.2fx from 1 to 8 threads", charonScale)
	}
	d1, _, _ := replayAll(New(KindDDR4, env, 1), evs, 1)
	d8, _, _ := replayAll(New(KindDDR4, env, 8), evs, 8)
	ddrScale := float64(d1) / float64(d8)
	if ddrScale > charonScale {
		t.Fatalf("DDR4 scaled better (%.2fx) than Charon (%.2fx)", ddrScale, charonScale)
	}
}

func TestDistributedBeatsUnifiedAtHighThreads(t *testing.T) {
	evs, env := record(t, 8<<20)
	uni, _, _ := replayAll(New(KindCharon, env, 16), evs, 16)
	dist, _, _ := replayAll(New(KindCharonDistributed, env, 16), evs, 16)
	if dist > uni {
		t.Fatalf("distributed (%v) slower than unified (%v) at 16 threads", dist, uni)
	}
}

func TestLocalRatioInRange(t *testing.T) {
	evs, env := record(t, 8<<20)
	p := New(KindCharon, env, 8)
	for _, ev := range evs {
		r := p.Replay(ev, 8)
		if r.LocalRatio < 0 || r.LocalRatio > 1 {
			t.Fatalf("local ratio %v out of range", r.LocalRatio)
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	evs, env := record(t, 8<<20)
	p := New(KindCharon, env, 8)
	_, _, last := replayAll(p, evs, 8)
	if last.Traffic.Bytes() == 0 {
		t.Fatal("no traffic recorded")
	}
	if last.UnitBusy == 0 {
		t.Fatal("no unit busy time")
	}
	// Bandwidth during GC must exceed what DDR4's 34 GB/s could deliver
	// eventually; at minimum it must be positive and below internal caps.
	bw := last.Traffic.BandwidthGBs(last.Duration)
	if bw <= 0 || bw > 4*330 {
		t.Fatalf("implausible bandwidth %.1f GB/s", bw)
	}
}

func TestIdealIsLowerBound(t *testing.T) {
	evs, env := record(t, 8<<20)
	ideal, primI, _ := replayAll(New(KindIdeal, env, 8), evs, 8)
	charonT, _, _ := replayAll(New(KindCharon, env, 8), evs, 8)
	if ideal >= charonT {
		t.Fatalf("ideal (%v) not faster than Charon (%v)", ideal, charonT)
	}
	for _, prim := range []gc.Prim{gc.PrimCopy, gc.PrimSearch, gc.PrimScanPush, gc.PrimBitmapCount} {
		if primI[prim] != 0 {
			t.Fatalf("ideal charged time to offloadable prim %v", prim)
		}
	}
}

func TestBreakdownDominatedByKeyPrimitives(t *testing.T) {
	// Figure 4's qualitative claim: the offloadable primitives dominate GC
	// time on the host.
	evs, env := record(t, 8<<20)
	_, prim, _ := replayAll(New(KindDDR4, env, 8), evs, 8)
	var total, key sim.Time
	for p, v := range prim {
		total += v
		if gc.Prim(p).Offloadable() {
			key += v
		}
	}
	frac := float64(key) / float64(total)
	if frac < 0.5 {
		t.Fatalf("offloadable primitives only %.0f%% of host GC time", frac*100)
	}
}

func TestThreadPartitionCoversAllInvocations(t *testing.T) {
	evs, env := record(t, 4<<20)
	ev := evs[0]
	seen := 0
	runThreads(0, ev, 3, nil, nil, func(thread int, inv *gc.Invocation) stepper {
		return oneShot(func(tm sim.Time) sim.Time {
			seen++
			return tm + 1
		})
	})
	if seen != len(ev.Invocations) {
		t.Fatalf("executed %d of %d invocations", seen, len(ev.Invocations))
	}
	_ = env
}

func TestKindString(t *testing.T) {
	if KindDDR4.String() != "DDR4" || KindCharon.String() != "Charon" || Kind(99).String() == "" {
		t.Fatal("kind names")
	}
}

func BenchmarkReplayCharon(b *testing.B) {
	evs, env := record(b, 8<<20)
	p := New(KindCharon, env, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Replay(evs[i%len(evs)], 8)
	}
}

func TestNewWithOptionsFillsDefaults(t *testing.T) {
	evs, env := record(t, 8<<20)
	// A partial config (only MAI set) must still work with all other
	// fields defaulted.
	cfg := charon.Config{MAIEntries: 8}
	p := mustOpt(t, KindCharon, env, 8, Options{CharonConfig: &cfg})
	r := p.Replay(evs[0], 8)
	if r.Duration == 0 {
		t.Fatal("no duration with partial config")
	}
	// Fewer MAI entries should not be faster than the default.
	pd := New(KindCharon, env, 8)
	rd := pd.Replay(evs[0], 8)
	if r.Duration < rd.Duration {
		t.Fatalf("MAI=8 (%v) faster than MAI=32 (%v)", r.Duration, rd.Duration)
	}
}

func TestTopologyOptionAffectsCharon(t *testing.T) {
	evs, env := record(t, 8<<20)
	star, _, _ := replayAll(mustOpt(t, KindCharon, env, 8, Options{Topology: hmc.Star}), evs, 8)
	chain, _, _ := replayAll(mustOpt(t, KindCharon, env, 8, Options{Topology: hmc.Chain}), evs, 8)
	if star == chain {
		t.Fatal("topology had no effect at all")
	}
	// The chain's longer remote paths should not make things faster.
	if float64(chain) < float64(star)*0.98 {
		t.Fatalf("chain (%v) implausibly faster than star (%v)", chain, star)
	}
}
