package gcmeta

import (
	"testing"
)

// FuzzLiveWordsEquivalence drives the paper's central algorithmic claim
// with fuzzed object layouts and query ranges: the optimized
// subtract+popcount Bitmap Count must equal Figure 8's bit iteration.
func FuzzLiveWordsEquivalence(f *testing.F) {
	f.Add([]byte{3, 1, 5, 2, 0, 10}, uint16(0), uint16(100))
	f.Add([]byte{0, 64, 1, 1}, uint16(30), uint16(90))
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Add([]byte{255, 255, 1, 255}, uint16(5), uint16(600))

	f.Fuzz(func(t *testing.T, layout []byte, loRaw, hiRaw uint16) {
		m := NewMarkBitmaps(lo, hi, bmapBase)
		const totalWords = 4096
		w := uint64(0)
		// layout bytes alternate (gap, size-1) pairs.
		for i := 0; i+1 < len(layout); i += 2 {
			gap := uint64(layout[i]) % 32
			size := uint64(layout[i+1])%96 + 1
			if w+gap+size > totalWords {
				break
			}
			m.MarkObject(m.AddrOfWord(w+gap), int(size))
			w += gap + size
		}
		a := uint64(loRaw) % totalWords
		b := uint64(hiRaw) % totalWords
		if a > b {
			a, b = b, a
		}
		fast := m.LiveWordsInRange(a, b)
		naive := m.LiveWordsInRangeNaive(a, b)
		if fast != naive {
			t.Fatalf("range [%d,%d): optimized %d != naive %d", a, b, fast, naive)
		}
	})
}
