package gcmeta

import "charonsim/internal/heap"

// stackChunkWords is the capacity of one stack chunk (HotSpot's task
// queues are similarly chunked).
const stackChunkWords = 4096

// ObjectStack is the traversal stack from Figure 3: objects awaiting a
// Scan&Push visit. It is chunked so that its memory footprint, and hence
// the simulated addresses of push/pop traffic, stay compact.
type ObjectStack struct {
	// Base is the simulated address of the stack region (timing).
	Base heap.Addr

	chunks [][]heap.Addr
	depth  int

	// MaxDepth tracks the high-water mark.
	MaxDepth int
	// Pushes and Pops count traffic.
	Pushes, Pops uint64
}

// NewObjectStack places the stack region at base in the simulated address
// space.
func NewObjectStack(base heap.Addr) *ObjectStack {
	return &ObjectStack{Base: base}
}

// Len returns the number of entries.
func (s *ObjectStack) Len() int { return s.depth }

// Empty reports whether the stack is drained.
func (s *ObjectStack) Empty() bool { return s.depth == 0 }

// TopAddr returns the simulated address of the current top slot (timing
// for the next push/pop access).
func (s *ObjectStack) TopAddr() heap.Addr {
	return s.Base + heap.Addr(s.depth*heap.WordBytes)
}

// Push adds an object address.
func (s *ObjectStack) Push(a heap.Addr) {
	ci := s.depth / stackChunkWords
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]heap.Addr, 0, stackChunkWords))
	}
	s.chunks[ci] = append(s.chunks[ci], a)
	s.depth++
	s.Pushes++
	if s.depth > s.MaxDepth {
		s.MaxDepth = s.depth
	}
}

// Pop removes and returns the most recent entry; ok is false when empty.
func (s *ObjectStack) Pop() (heap.Addr, bool) {
	if s.depth == 0 {
		return 0, false
	}
	s.depth--
	s.Pops++
	ci := s.depth / stackChunkWords
	chunk := s.chunks[ci]
	a := chunk[len(chunk)-1]
	s.chunks[ci] = chunk[:len(chunk)-1]
	if len(s.chunks[ci]) == 0 && ci == len(s.chunks)-1 {
		s.chunks = s.chunks[:ci]
	}
	return a, true
}

// Reset empties the stack, retaining chunk capacity.
func (s *ObjectStack) Reset() {
	s.chunks = s.chunks[:0]
	s.depth = 0
}
