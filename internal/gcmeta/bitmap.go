package gcmeta

import (
	"fmt"
	"math/bits"

	"charonsim/internal/heap"
)

// MarkBitmaps are HotSpot's begin/end mark bitmaps (Section 3.2): one bit
// per 8-byte heap word in each map. A set begin bit marks an object's first
// word; a set end bit marks its last word. The distance between a paired
// begin and end bit is the object's size in words.
//
// The maps occupy simulated address ranges so timing models can charge
// their traffic: begMap at BegBase and endMap at BegBase+Offset, matching
// Figure 8's `endMap = range_start + OFFSET` derivation.
type MarkBitmaps struct {
	heapLo, heapHi heap.Addr
	BegBase        heap.Addr
	Offset         heap.Addr // endMap base = BegBase + Offset

	beg []uint64
	end []uint64

	// Marks counts mark_obj operations (Figure 11 line 17).
	Marks uint64
}

// NewMarkBitmaps covers [heapLo, heapHi). The end map is placed Offset
// bytes after the beg map, where Offset is exactly the map's byte size
// (so the two maps are contiguous, as in HotSpot).
func NewMarkBitmaps(heapLo, heapHi, begBase heap.Addr) *MarkBitmaps {
	if heapHi <= heapLo || uint64(heapLo)%heap.WordBytes != 0 {
		panic("gcmeta: bad bitmap range")
	}
	words := uint64(heapHi-heapLo) / heap.WordBytes
	n := (words + 63) / 64
	return &MarkBitmaps{
		heapLo: heapLo, heapHi: heapHi,
		BegBase: begBase, Offset: heap.Addr((n*8 + 4095) / 4096 * 4096),
		beg: make([]uint64, n), end: make([]uint64, n),
	}
}

// EndBase returns the end map's simulated base address.
func (m *MarkBitmaps) EndBase() heap.Addr { return m.BegBase + m.Offset }

// SizeBytes returns one map's size in bytes (paper: 256 MB per 16 GB heap).
func (m *MarkBitmaps) SizeBytes() uint64 { return uint64(len(m.beg)) * 8 }

// WordIndex converts a heap address to its bit index.
func (m *MarkBitmaps) WordIndex(addr heap.Addr) uint64 {
	if addr < m.heapLo || addr >= m.heapHi {
		panic(fmt.Sprintf("gcmeta: address %#x outside bitmap", uint64(addr)))
	}
	return uint64(addr-m.heapLo) / heap.WordBytes
}

// AddrOfWord converts a bit index back to a heap address.
func (m *MarkBitmaps) AddrOfWord(idx uint64) heap.Addr {
	return m.heapLo + heap.Addr(idx*heap.WordBytes)
}

// BegByteAddr returns the simulated address of the beg-map byte holding
// bit idx (for timing).
func (m *MarkBitmaps) BegByteAddr(idx uint64) heap.Addr { return m.BegBase + heap.Addr(idx/8) }

// EndByteAddr is BegByteAddr for the end map.
func (m *MarkBitmaps) EndByteAddr(idx uint64) heap.Addr { return m.EndBase() + heap.Addr(idx/8) }

func get(b []uint64, i uint64) bool { return b[i/64]&(1<<(i%64)) != 0 }
func set(b []uint64, i uint64)      { b[i/64] |= 1 << (i % 64) }
func clearBit(b []uint64, i uint64) { b[i/64] &^= 1 << (i % 64) }

// MarkObject sets the begin bit at addr and the end bit at its last word
// (Figure 11's mark_obj, called during the MajorGC marking phase). Returns
// false if the object was already marked.
func (m *MarkBitmaps) MarkObject(addr heap.Addr, sizeWords int) bool {
	i := m.WordIndex(addr)
	if get(m.beg, i) {
		return false
	}
	set(m.beg, i)
	set(m.end, i+uint64(sizeWords)-1)
	m.Marks++
	return true
}

// IsMarked reports whether a begin bit is set at addr.
func (m *MarkBitmaps) IsMarked(addr heap.Addr) bool { return get(m.beg, m.WordIndex(addr)) }

// ObjectEnd returns the word index of the end bit paired with the begin
// bit at begIdx, scanning forward. Panics if unterminated (corruption).
func (m *MarkBitmaps) ObjectEnd(begIdx uint64) uint64 {
	limit := uint64(len(m.end)) * 64
	e, ok := m.findNext(m.end, begIdx, limit)
	if !ok {
		panic("gcmeta: unterminated object in bitmap")
	}
	return e
}

// ClearAll erases both maps.
func (m *MarkBitmaps) ClearAll() {
	for i := range m.beg {
		m.beg[i] = 0
		m.end[i] = 0
	}
}

// findNext returns the first set bit in b at index >= from and < to.
func (m *MarkBitmaps) findNext(b []uint64, from, to uint64) (uint64, bool) {
	if from >= to {
		return to, false
	}
	w := from / 64
	mask := ^uint64(0) << (from % 64)
	for w < (to+63)/64 {
		v := b[w] & mask
		if v != 0 {
			i := w*64 + uint64(bits.TrailingZeros64(v))
			if i < to {
				return i, true
			}
			return to, false
		}
		w++
		mask = ^uint64(0)
	}
	return to, false
}

// FindNextBegin returns the first live-object start in word range
// [from, to), as a bit index.
func (m *MarkBitmaps) FindNextBegin(from, to uint64) (uint64, bool) {
	return m.findNext(m.beg, from, to)
}

// LiveWordsInRangeNaive implements Figure 8 verbatim: iterate bit by bit,
// pairing begin and end bits, summing (end-beg+1) for every pair fully
// inside [lo, hi) word indices. This is the slow software algorithm the
// host executes.
func (m *MarkBitmaps) LiveWordsInRangeNaive(lo, hi uint64) uint64 {
	var count uint64
	begIdx := lo
	for begIdx < hi {
		if get(m.beg, begIdx) {
			endIdx := begIdx
			for endIdx < hi {
				if get(m.end, endIdx) {
					count += endIdx - begIdx + 1
					begIdx = endIdx
					break
				}
				endIdx++
			}
			if endIdx == hi {
				begIdx = hi
			}
		}
		begIdx++
	}
	return count
}

// LiveWordsInRange is Charon's optimized algorithm (Section 4.3): word-at-
// a-time multi-precision subtraction endMap-begMap plus popcounts —
// CountSetBits(endMap-begMap) + CountSetBits(begMap) — with explicit
// handling of the corner cases where the two maps have unequal set-bit
// counts in the range (an object ending in the range but starting before
// it, or starting in the range but ending after it).
func (m *MarkBitmaps) LiveWordsInRange(lo, hi uint64) uint64 {
	if lo >= hi {
		return 0
	}
	// Corner case normalization. An end bit before the first begin bit
	// belongs to an object starting left of the range: Figure 8's loop
	// skips it, so we must too. A final begin bit with no end bit inside
	// the range is an unterminated object contributing zero.
	firstBeg, anyBeg := m.findNext(m.beg, lo, hi)
	if !anyBeg {
		return 0
	}
	// Find the last begin bit and check it terminates in range.
	effHi := hi
	lastBeg := firstBeg
	for {
		nb, ok := m.findNext(m.beg, lastBeg+1, hi)
		if !ok {
			break
		}
		lastBeg = nb
	}
	if _, ok := m.findNext(m.end, lastBeg, hi); !ok {
		// Drop the unterminated trailing object from consideration.
		effHi = lastBeg
		if effHi <= firstBeg {
			return 0
		}
	}

	lo = firstBeg
	hi = effHi

	// Multi-word subtraction end-beg over bit range [lo, hi), LSB at lo,
	// with popcount accumulation. Borrow propagates upward exactly like a
	// ripple subtractor; disjoint object intervals never interact.
	var count uint64
	var borrow uint64
	w0, w1 := lo/64, (hi+63)/64
	for w := w0; w < w1; w++ {
		bm := m.beg[w]
		em := m.end[w]
		// Mask off bits outside [lo, hi).
		if w == w0 {
			mask := ^uint64(0) << (lo % 64)
			bm &= mask
			em &= mask
		}
		if rem := hi - w*64; rem < 64 {
			mask := (uint64(1) << rem) - 1
			bm &= mask
			em &= mask
		}
		diff, b := bits.Sub64(em, bm, borrow)
		borrow = b
		count += uint64(bits.OnesCount64(diff)) + uint64(bits.OnesCount64(bm))
	}
	return count
}

// LiveWordsInAddrRange is LiveWordsInRange over heap addresses.
func (m *MarkBitmaps) LiveWordsInAddrRange(lo, hi heap.Addr) uint64 {
	hiIdx := uint64(hi-m.heapLo) / heap.WordBytes
	return m.LiveWordsInRange(m.WordIndex(lo), hiIdx)
}

// ClearObject removes an object's begin/end bits (used by tests).
func (m *MarkBitmaps) ClearObject(addr heap.Addr, sizeWords int) {
	i := m.WordIndex(addr)
	clearBit(m.beg, i)
	clearBit(m.end, i+uint64(sizeWords)-1)
}
