package gcmeta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"charonsim/internal/heap"
)

const (
	lo        = heap.Addr(1 << 28)
	hi        = heap.Addr(1<<28 + 1<<20) // 1 MB heap slice
	cardBase  = heap.Addr(1 << 30)
	bmapBase  = heap.Addr(1<<30 + 1<<20)
	stackBase = heap.Addr(1 << 31)
)

// --- Card table -------------------------------------------------------------

func TestCardTableGeometry(t *testing.T) {
	ct := NewCardTable(lo, hi, cardBase)
	if ct.NumCards() != 1<<20/CardBytes {
		t.Fatalf("cards = %d", ct.NumCards())
	}
	if ct.CardIndex(lo) != 0 || ct.CardIndex(lo+CardBytes) != 1 {
		t.Fatal("card indexing wrong")
	}
	clo, chi := ct.CardRange(1)
	if clo != lo+CardBytes || chi != lo+2*CardBytes {
		t.Fatalf("card range %#x..%#x", clo, chi)
	}
	if ct.CardAddr(5) != cardBase+5 {
		t.Fatal("card timing address wrong")
	}
}

func TestCardDirtyClean(t *testing.T) {
	ct := NewCardTable(lo, hi, cardBase)
	for i := 0; i < ct.NumCards(); i++ {
		if ct.IsDirty(i) {
			t.Fatal("fresh table has dirty cards")
		}
	}
	ct.Dirty(lo + 1000)
	idx := ct.CardIndex(lo + 1000)
	if !ct.IsDirty(idx) {
		t.Fatal("dirty mark lost")
	}
	if ct.DirtyMarks != 1 {
		t.Fatal("dirty counter")
	}
	ct.Clean(idx)
	if ct.IsDirty(idx) {
		t.Fatal("clean failed")
	}
}

func TestCardSearch(t *testing.T) {
	ct := NewCardTable(lo, hi, cardBase)
	if _, found := ct.Search(0, ct.NumCards()); found {
		t.Fatal("search found dirt in clean table")
	}
	ct.Dirty(lo + 100*CardBytes)
	idx, found := ct.Search(0, ct.NumCards())
	if !found || idx != 100 {
		t.Fatalf("search = %d,%v want 100,true", idx, found)
	}
	// Search below the dirty card finds nothing.
	if _, found := ct.Search(0, 100); found {
		t.Fatal("bounded search overran")
	}
	got := ct.DirtyCards(0, ct.NumCards(), nil)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("dirty cards %v", got)
	}
}

func TestCardCleanEncodingMatchesPaper(t *testing.T) {
	// Figure 7 tests `*i != -1`: clean must be all-ones.
	if CardClean != 0xff || CardDirty == CardClean {
		t.Fatal("card encoding drifted from HotSpot")
	}
}

func TestCardClearAll(t *testing.T) {
	ct := NewCardTable(lo, hi, cardBase)
	for i := 0; i < 50; i++ {
		ct.Dirty(lo + heap.Addr(i*3*CardBytes))
	}
	ct.ClearAll()
	if _, found := ct.Search(0, ct.NumCards()); found {
		t.Fatal("ClearAll left dirt")
	}
}

// --- Mark bitmaps -----------------------------------------------------------

func newMaps() *MarkBitmaps { return NewMarkBitmaps(lo, hi, bmapBase) }

func TestBitmapGeometry(t *testing.T) {
	m := newMaps()
	// 1 MB heap = 128K words = 16 KB per map.
	if m.SizeBytes() != 16<<10 {
		t.Fatalf("map bytes = %d", m.SizeBytes())
	}
	// Paper's ratio: each map is heap/64.
	if m.SizeBytes() != uint64(hi-lo)/64 {
		t.Fatal("bitmap not 1/64 of heap")
	}
	if m.EndBase() != m.BegBase+m.Offset {
		t.Fatal("end base")
	}
	if m.WordIndex(lo+16) != 2 || m.AddrOfWord(2) != lo+16 {
		t.Fatal("word index round trip")
	}
	if m.BegByteAddr(16) != bmapBase+2 {
		t.Fatal("beg byte addr")
	}
}

func TestMarkObject(t *testing.T) {
	m := newMaps()
	a := lo + 64
	if !m.MarkObject(a, 4) {
		t.Fatal("first mark failed")
	}
	if m.MarkObject(a, 4) {
		t.Fatal("second mark should report already-marked")
	}
	if !m.IsMarked(a) {
		t.Fatal("IsMarked false")
	}
	i := m.WordIndex(a)
	if m.ObjectEnd(i) != i+3 {
		t.Fatalf("object end = %d, want %d", m.ObjectEnd(i), i+3)
	}
	if m.Marks != 1 {
		t.Fatal("mark counter")
	}
}

func TestLiveWordsSimple(t *testing.T) {
	m := newMaps()
	// Figure 9 example: three objects of sizes 2, 1, 3.
	m.MarkObject(lo, 2)
	m.MarkObject(lo+3*8, 1)
	m.MarkObject(lo+5*8, 3)
	want := uint64(2 + 1 + 3)
	if got := m.LiveWordsInRangeNaive(0, 16); got != want {
		t.Fatalf("naive = %d, want %d", got, want)
	}
	if got := m.LiveWordsInRange(0, 16); got != want {
		t.Fatalf("optimized = %d, want %d", got, want)
	}
}

func TestLiveWordsEmptyAndEdge(t *testing.T) {
	m := newMaps()
	if m.LiveWordsInRange(0, 0) != 0 || m.LiveWordsInRange(5, 5) != 0 {
		t.Fatal("empty range nonzero")
	}
	if m.LiveWordsInRange(0, 1000) != 0 {
		t.Fatal("clean bitmap nonzero")
	}
	// Single one-word object.
	m.MarkObject(lo, 1)
	if m.LiveWordsInRange(0, 1) != 1 {
		t.Fatal("one-word object at range edge")
	}
}

func TestLiveWordsCornerCases(t *testing.T) {
	m := newMaps()
	// Object A spans words 2..9. Object B spans 12..13.
	m.MarkObject(lo+2*8, 8)
	m.MarkObject(lo+12*8, 2)

	// Range starting inside A: A's end bit (9) is unmatched; naive skips it.
	if got, want := m.LiveWordsInRange(5, 16), uint64(2); got != want {
		t.Fatalf("leading partial object: %d, want %d", got, want)
	}
	if m.LiveWordsInRangeNaive(5, 16) != 2 {
		t.Fatal("naive disagrees on leading partial")
	}

	// Range ending inside B: B's begin bit (12) is unterminated.
	if got, want := m.LiveWordsInRange(0, 13), uint64(8); got != want {
		t.Fatalf("trailing partial object: %d, want %d", got, want)
	}
	if m.LiveWordsInRangeNaive(0, 13) != 8 {
		t.Fatal("naive disagrees on trailing partial")
	}

	// Range strictly inside A: no begin bit at all.
	if m.LiveWordsInRange(3, 9) != 0 || m.LiveWordsInRangeNaive(3, 9) != 0 {
		t.Fatal("interior range should count 0")
	}
}

func TestLiveWordsCrossesWordBoundaries(t *testing.T) {
	m := newMaps()
	// Object spanning bit-word 0 into bit-word 2: words 60..140.
	m.MarkObject(lo+60*8, 81)
	got := m.LiveWordsInRange(0, 200)
	if got != 81 {
		t.Fatalf("spanning object = %d, want 81", got)
	}
	if m.LiveWordsInRangeNaive(0, 200) != 81 {
		t.Fatal("naive disagrees")
	}
}

func TestLiveWordsOptimizedEqualsNaiveProperty(t *testing.T) {
	// The paper's central algorithmic claim: the subtract+popcount method
	// equals the bit-iteration method on arbitrary object layouts and
	// arbitrary query ranges (including partial-object corner cases).
	f := func(seed int64, loFrac, hiFrac uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMaps()
		const totalWords = 2048
		w := uint64(0)
		for w < totalWords {
			gap := uint64(rng.Intn(20))
			size := uint64(1 + rng.Intn(120))
			if w+gap+size > totalWords {
				break
			}
			m.MarkObject(m.AddrOfWord(w+gap), int(size))
			w += gap + size
		}
		a := uint64(loFrac) % totalWords
		b := uint64(hiFrac) % totalWords
		if a > b {
			a, b = b, a
		}
		return m.LiveWordsInRange(a, b) == m.LiveWordsInRangeNaive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindNextBegin(t *testing.T) {
	m := newMaps()
	m.MarkObject(lo+10*8, 3)
	m.MarkObject(lo+100*8, 5)
	i, ok := m.FindNextBegin(0, 1000)
	if !ok || i != 10 {
		t.Fatalf("first begin = %d,%v", i, ok)
	}
	i, ok = m.FindNextBegin(11, 1000)
	if !ok || i != 100 {
		t.Fatalf("second begin = %d,%v", i, ok)
	}
	if _, ok := m.FindNextBegin(101, 1000); ok {
		t.Fatal("phantom begin")
	}
	// Bounded search excludes the hit.
	if _, ok := m.FindNextBegin(11, 100); ok {
		t.Fatal("bound overrun")
	}
}

func TestBitmapClear(t *testing.T) {
	m := newMaps()
	m.MarkObject(lo, 4)
	m.ClearAll()
	if m.IsMarked(lo) || m.LiveWordsInRange(0, 100) != 0 {
		t.Fatal("ClearAll incomplete")
	}
	m.MarkObject(lo, 4)
	m.ClearObject(lo, 4)
	if m.IsMarked(lo) {
		t.Fatal("ClearObject incomplete")
	}
}

// --- Object stack -----------------------------------------------------------

func TestStackLIFO(t *testing.T) {
	s := NewObjectStack(stackBase)
	if !s.Empty() {
		t.Fatal("fresh stack not empty")
	}
	s.Push(1)
	s.Push(2)
	s.Push(3)
	if s.Len() != 3 || s.MaxDepth != 3 {
		t.Fatalf("len=%d max=%d", s.Len(), s.MaxDepth)
	}
	for want := heap.Addr(3); want >= 1; want-- {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestStackChunkGrowth(t *testing.T) {
	s := NewObjectStack(stackBase)
	const n = stackChunkWords*3 + 17
	for i := 0; i < n; i++ {
		s.Push(heap.Addr(i + 1))
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	for i := n - 1; i >= 0; i-- {
		got, ok := s.Pop()
		if !ok || got != heap.Addr(i+1) {
			t.Fatalf("pop[%d] = %d,%v", i, got, ok)
		}
	}
	if s.Pushes != n || s.Pops != n {
		t.Fatal("stack counters")
	}
}

func TestStackTopAddr(t *testing.T) {
	s := NewObjectStack(stackBase)
	if s.TopAddr() != stackBase {
		t.Fatal("empty top addr")
	}
	s.Push(42)
	if s.TopAddr() != stackBase+8 {
		t.Fatal("top addr after push")
	}
}

func TestStackReset(t *testing.T) {
	s := NewObjectStack(stackBase)
	for i := 0; i < 100; i++ {
		s.Push(heap.Addr(i))
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("reset incomplete")
	}
	s.Push(7)
	if got, _ := s.Pop(); got != 7 {
		t.Fatal("stack unusable after reset")
	}
}

func BenchmarkLiveWordsOptimized(b *testing.B) {
	m := newMaps()
	for w := uint64(0); w < 100000; w += 16 {
		m.MarkObject(m.AddrOfWord(w), 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LiveWordsInRange(0, 100000)
	}
}

func BenchmarkLiveWordsNaive(b *testing.B) {
	m := newMaps()
	for w := uint64(0); w < 100000; w += 16 {
		m.MarkObject(m.AddrOfWord(w), 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LiveWordsInRangeNaive(0, 100000)
	}
}
