// Package gcmeta implements the collector's metadata substrates: the card
// table that tracks old-to-young references (scanned by the Search
// primitive), the begin/end mark bitmaps consumed by the Bitmap Count
// primitive, and the chunked object stack used by Scan&Push.
package gcmeta

import (
	"fmt"

	"charonsim/internal/heap"
)

// CardBytes is the heap bytes covered by one card (HotSpot's default).
const CardBytes = 512

// Card byte encodings. HotSpot's clean card is all-ones, which is why the
// Search pseudocode in Figure 7 tests `*i != -1` to find dirty cards.
const (
	CardClean byte = 0xff
	CardDirty byte = 0x00
)

// CardTable maps heap addresses to card bytes. The table itself occupies a
// simulated address range starting at TableBase so the timing models can
// charge its memory traffic.
type CardTable struct {
	heapLo, heapHi heap.Addr
	TableBase      heap.Addr
	cards          []byte

	// DirtyMarks counts write-barrier card dirtying events.
	DirtyMarks uint64
}

// NewCardTable covers [heapLo, heapHi), placing the table's bytes at
// tableBase in the simulated address space.
func NewCardTable(heapLo, heapHi, tableBase heap.Addr) *CardTable {
	if heapHi <= heapLo {
		panic("gcmeta: empty card table range")
	}
	n := (uint64(heapHi-heapLo) + CardBytes - 1) / CardBytes
	ct := &CardTable{heapLo: heapLo, heapHi: heapHi, TableBase: tableBase, cards: make([]byte, n)}
	ct.ClearAll()
	return ct
}

// NumCards returns the table length.
func (ct *CardTable) NumCards() int { return len(ct.cards) }

// CardIndex returns the card covering addr.
func (ct *CardTable) CardIndex(addr heap.Addr) int {
	if addr < ct.heapLo || addr >= ct.heapHi {
		panic(fmt.Sprintf("gcmeta: address %#x outside card table", uint64(addr)))
	}
	return int((addr - ct.heapLo) / CardBytes)
}

// CardRange returns the heap range [lo, hi) covered by card idx.
func (ct *CardTable) CardRange(idx int) (heap.Addr, heap.Addr) {
	lo := ct.heapLo + heap.Addr(idx*CardBytes)
	hi := lo + CardBytes
	if hi > ct.heapHi {
		hi = ct.heapHi
	}
	return lo, hi
}

// CardAddr returns the simulated address of card idx's byte (for timing).
func (ct *CardTable) CardAddr(idx int) heap.Addr { return ct.TableBase + heap.Addr(idx) }

// Dirty marks the card covering addr.
func (ct *CardTable) Dirty(addr heap.Addr) {
	ct.cards[ct.CardIndex(addr)] = CardDirty
	ct.DirtyMarks++
}

// IsDirty reports card idx's state.
func (ct *CardTable) IsDirty(idx int) bool { return ct.cards[idx] != CardClean }

// Clean resets card idx.
func (ct *CardTable) Clean(idx int) { ct.cards[idx] = CardClean }

// ClearAll cleans every card.
func (ct *CardTable) ClearAll() {
	for i := range ct.cards {
		ct.cards[i] = CardClean
	}
}

// Search scans card indices [lo, hi) for the first dirty card, mirroring
// Figure 7's Search primitive (return true on the first block != -1).
// Returns the index of the first dirty card and true, or hi and false.
func (ct *CardTable) Search(lo, hi int) (int, bool) {
	for i := lo; i < hi; i++ {
		if ct.cards[i] != CardClean {
			return i, true
		}
	}
	return hi, false
}

// DirtyCards appends all dirty card indices in [lo, hi) to out.
func (ct *CardTable) DirtyCards(lo, hi int, out []int) []int {
	for i := lo; i < hi; i++ {
		if ct.cards[i] != CardClean {
			out = append(out, i)
		}
	}
	return out
}
