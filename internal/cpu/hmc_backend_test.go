package cpu

import (
	"charonsim/internal/hmc"
	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// hmcBackend adapts hmc.System's host path to the MemBackend interface.
type hmcBackend struct{ sys *hmc.System }

func newHMCBackend(eng *sim.Engine) MemBackend {
	return hmcBackend{sys: hmc.NewSystem(eng, 22)}
}

func (b hmcBackend) AccessAt(start sim.Time, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	return b.sys.HostAccessAt(start, kind, addr, size)
}
