package cpu

import (
	"testing"

	"charonsim/internal/cache"
	"charonsim/internal/dram"
	"charonsim/internal/sim"
)

func newTestCore() (*Core, *dram.DDR4, *sim.Engine) {
	eng := sim.NewEngine()
	mem := dram.NewDDR4(eng)
	hier := cache.NewHostHierarchy()
	return NewCore(DefaultConfig(), hier, mem), mem, eng
}

func TestComputeOpsIssueBandwidth(t *testing.T) {
	c, _, _ := newTestCore()
	// 100 single-instruction compute ops at 4-wide issue = 25+ cycles... but
	// each op takes at least ceil(1/4)=1 cycle in this model.
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{Kind: OpCompute, Dep: NoDep}
	}
	finish := c.ExecOps(0, ops)
	cfg := DefaultConfig()
	if finish != 100*cfg.ClockPeriod {
		t.Fatalf("100 compute ops finished at %v, want %v", finish, 100*cfg.ClockPeriod)
	}
	// Work batching: one op with Work=100 costs 25 cycles.
	c2, _, _ := newTestCore()
	f2 := c2.ExecOps(0, []Op{{Kind: OpCompute, Dep: NoDep, Work: 100}})
	if f2 != 25*cfg.ClockPeriod {
		t.Fatalf("batched compute finished at %v, want %v", f2, 25*cfg.ClockPeriod)
	}
}

func TestCacheHitFast(t *testing.T) {
	c, _, _ := newTestCore()
	f1 := c.ExecOps(0, []Op{{Kind: OpRead, Addr: 4096, Size: 8, Dep: NoDep}})
	miss := c.Stats.CacheMisses
	f := c.ExecOps(f1, []Op{{Kind: OpRead, Addr: 4096, Size: 8, Dep: NoDep}})
	if c.Stats.CacheMisses != miss {
		t.Fatal("second access missed cache")
	}
	if f-f1 > 10*DefaultConfig().ClockPeriod {
		t.Fatalf("L1 hit took too long: %v", f-f1)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// N independent loads to distinct lines should overlap up to the MSHR
	// limit: total time far below N * memory latency.
	c, _, _ := newTestCore()
	var ops []Op
	const n = 10
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpRead, Addr: uint64(i) * 4096, Size: 8, Dep: NoDep})
	}
	parallelFinish := c.ExecOps(0, ops)

	// Same loads, fully dependent: serialize at memory latency each.
	c2, _, _ := newTestCore()
	ops2 := make([]Op, n)
	for i := range ops2 {
		dep := int32(i - 1)
		if i == 0 {
			dep = NoDep
		}
		ops2[i] = Op{Kind: OpRead, Addr: uint64(i) * 4096, Size: 8, Dep: dep}
	}
	serialFinish := c2.ExecOps(0, ops2)

	if parallelFinish*3 > serialFinish {
		t.Fatalf("independent misses (%v) should be >3x faster than dependent chain (%v)", parallelFinish, serialFinish)
	}
}

func TestMSHRLimitCapsMLP(t *testing.T) {
	// With many independent misses, throughput is bounded by MSHRs: double
	// the misses ≈ double the time once MSHRs saturate (links are not the
	// bottleneck on DDR4 at 10 outstanding).
	run := func(n int) sim.Time {
		c, _, _ := newTestCore()
		var ops []Op
		for i := 0; i < n; i++ {
			ops = append(ops, Op{Kind: OpRead, Addr: uint64(i) * 4096, Size: 8, Dep: NoDep})
		}
		return c.ExecOps(0, ops)
	}
	t100, t200 := run(100), run(200)
	ratio := float64(t200) / float64(t100)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("MSHR-bound scaling ratio %.2f, want ~2", ratio)
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	// A long-latency load followed by WindowSize+ independent compute ops:
	// the window fills and the front-end stalls until the load retires.
	cfg := DefaultConfig()
	c, _, _ := newTestCore()
	ops := []Op{{Kind: OpRead, Addr: 1 << 20, Size: 8, Dep: NoDep}}
	for i := 0; i < cfg.WindowSize*2; i++ {
		ops = append(ops, Op{Kind: OpCompute, Dep: NoDep})
	}
	finish := c.ExecOps(0, ops)

	// Without the load, pure compute time:
	c2, _, _ := newTestCore()
	finishNoLoad := c2.ExecOps(0, ops[1:])

	if finish <= finishNoLoad {
		t.Fatal("window stall did not extend execution")
	}
	// The stall should reflect the memory latency, not just one cycle.
	if finish-finishNoLoad < 20*sim.Nanosecond {
		t.Fatalf("window stall only %v", finish-finishNoLoad)
	}
}

func TestInOrderRetirement(t *testing.T) {
	c, _, _ := newTestCore()
	// A slow load then a fast compute: the compute's retire time must not
	// precede the load's.
	f := c.ExecOps(0, []Op{
		{Kind: OpRead, Addr: 1 << 21, Size: 8, Dep: NoDep},
		{Kind: OpCompute, Dep: NoDep},
	})
	if f < 20*sim.Nanosecond {
		t.Fatalf("finish %v precedes memory latency", f)
	}
}

func TestMultiLineAccessSplits(t *testing.T) {
	c, _, _ := newTestCore()
	c.ExecOps(0, []Op{{Kind: OpRead, Addr: 0, Size: 256, Dep: NoDep}})
	if c.Stats.MemAccesses != 4 {
		t.Fatalf("256B access split into %d lines, want 4", c.Stats.MemAccesses)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _, _ := newTestCore()
	c.ExecOps(0, []Op{
		{Kind: OpRead, Addr: 0, Size: 8, Dep: NoDep, Work: 5},
		{Kind: OpCompute, Dep: NoDep, Work: 3},
		{Kind: OpWrite, Addr: 64, Size: 8, Dep: 0},
	})
	if c.Stats.Ops != 3 || c.Stats.MemOps != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
	if c.Stats.Instructions != 9 {
		t.Fatalf("instructions = %d, want 9", c.Stats.Instructions)
	}
	if c.Stats.Busy == 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestPointerChasingIPCIsLow(t *testing.T) {
	// The paper's observation: GC-like dependent pointer chasing yields
	// IPC < 0.5 on an OoO core. Build a long dependent chain of loads to
	// random-ish lines.
	c, _, _ := newTestCore()
	var ops []Op
	addr := uint64(0)
	for i := 0; i < 2000; i++ {
		dep := int32(i - 1)
		if i == 0 {
			dep = NoDep
		}
		// 3 instructions of overhead per load, like a traversal loop.
		ops = append(ops, Op{Kind: OpRead, Addr: addr, Size: 8, Dep: dep, Work: 3})
		addr = (addr*2862933555777941757 + 3037000493) % (64 << 20) &^ 7
	}
	c.ExecOps(0, ops)
	ipc := c.Stats.IPC(DefaultConfig().ClockPeriod)
	if ipc >= 0.5 {
		t.Fatalf("pointer-chasing IPC = %.3f, paper observes < 0.5", ipc)
	}
	if ipc <= 0.001 {
		t.Fatalf("IPC %.4f suspiciously low", ipc)
	}
}

func TestStreamingFasterThanChasing(t *testing.T) {
	mkStream := func() []Op {
		var ops []Op
		for i := 0; i < 1000; i++ {
			ops = append(ops, Op{Kind: OpRead, Addr: uint64(i) * 64, Size: 8, Dep: NoDep})
		}
		return ops
	}
	mkChase := func() []Op {
		var ops []Op
		for i := 0; i < 1000; i++ {
			dep := int32(i - 1)
			if i == 0 {
				dep = NoDep
			}
			ops = append(ops, Op{Kind: OpRead, Addr: uint64(i*7919%1000) * 4096, Size: 8, Dep: dep})
		}
		return ops
	}
	cs, _, _ := newTestCore()
	streamT := cs.ExecOps(0, mkStream())
	cc, _, _ := newTestCore()
	chaseT := cc.ExecOps(0, mkChase())
	if streamT*4 > chaseT {
		t.Fatalf("streaming (%v) should be >4x faster than chasing (%v)", streamT, chaseT)
	}
}

func TestFlushCaches(t *testing.T) {
	c, mem, _ := newTestCore()
	for i := 0; i < 100; i++ {
		c.ExecOps(c.cursor, []Op{{Kind: OpWrite, Addr: uint64(i) * 64, Size: 8, Dep: NoDep}})
	}
	before := mem.Stats()
	drain := c.FlushCaches(c.cursor)
	after := mem.Stats()
	if after.WriteBytes <= before.WriteBytes {
		t.Fatal("flush produced no writeback traffic")
	}
	if drain <= c.cursor {
		t.Fatal("flush drain time not in the future")
	}
	// After flush, a re-read misses.
	missBefore := c.Stats.CacheMisses
	c.ExecOps(drain, []Op{{Kind: OpRead, Addr: 0, Size: 8, Dep: NoDep}})
	if c.Stats.CacheMisses == missBefore {
		t.Fatal("read after flush hit a stale line")
	}
}

func TestHostSharedL3(t *testing.T) {
	eng := sim.NewEngine()
	mem := dram.NewDDR4(eng)
	h := NewHost(8, DefaultConfig(), mem)
	if len(h.Cores) != 8 {
		t.Fatalf("cores = %d", len(h.Cores))
	}
	// Core 0 warms a line; core 1 should hit it in the shared L3.
	h.Cores[0].ExecOps(0, []Op{{Kind: OpRead, Addr: 1 << 16, Size: 8, Dep: NoDep}})
	h.Cores[1].ExecOps(0, []Op{{Kind: OpRead, Addr: 1 << 16, Size: 8, Dep: NoDep}})
	if h.Cores[1].Stats.CacheMisses != 0 {
		t.Fatal("core 1 missed a line core 0 brought into shared L3")
	}
	st := h.Stats()
	if st.MemOps != 2 {
		t.Fatalf("host stats %+v", st)
	}
}

func TestIPCZeroWhenIdle(t *testing.T) {
	var s Stats
	if s.IPC(375*sim.Picosecond) != 0 {
		t.Fatal("idle IPC should be 0")
	}
}

func TestHMCBackend(t *testing.T) {
	// The core works identically over the HMC host path; the same access
	// pattern should complete (latency differs).
	eng := sim.NewEngine()
	hsys := newHMCBackend(eng)
	hier := cache.NewHostHierarchy()
	c := NewCore(DefaultConfig(), hier, hsys)
	f := c.ExecOps(0, []Op{{Kind: OpRead, Addr: 0, Size: 8, Dep: NoDep}})
	if f == 0 {
		t.Fatal("no time charged through HMC backend")
	}
}

func BenchmarkExecOpsStreaming(b *testing.B) {
	c, _, _ := newTestCore()
	ops := make([]Op, 1024)
	for i := range ops {
		ops[i] = Op{Kind: OpRead, Addr: uint64(i) * 64, Size: 8, Dep: NoDep}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ExecOps(c.cursor, ops)
	}
}

func TestStreamPrefetcherAcceleratesSequentialReads(t *testing.T) {
	mk := func() []Op {
		var ops []Op
		for i := 0; i < 2000; i++ {
			ops = append(ops, Op{Kind: OpRead, Addr: uint64(i) * 64, Size: 64, Dep: NoDep})
		}
		return ops
	}
	withPf, _, _ := newTestCore()
	fPf := withPf.ExecOps(0, mk())

	eng := sim.NewEngine()
	mem := dram.NewDDR4(eng)
	cfg := DefaultConfig()
	cfg.PrefetchLead = 0 // disabled
	noPf := NewCore(cfg, cache.NewHostHierarchy(), mem)
	fNo := noPf.ExecOps(0, mk())

	if fPf >= fNo {
		t.Fatalf("prefetcher did not help: %v vs %v", fPf, fNo)
	}
	if withPf.Stats.Prefetches == 0 {
		t.Fatal("no prefetches counted")
	}
}

func TestPrefetcherIgnoresRandomAccesses(t *testing.T) {
	c, _, _ := newTestCore()
	var ops []Op
	addr := uint64(1)
	for i := 0; i < 500; i++ {
		addr = (addr*6364136223846793005 + 1442695040888963407) % (1 << 26) &^ 63
		ops = append(ops, Op{Kind: OpRead, Addr: addr, Size: 64, Dep: NoDep})
	}
	c.ExecOps(0, ops)
	// A few accidental hits are possible; a random stream must not look
	// prefetchable.
	if c.Stats.Prefetches > c.Stats.CacheMisses/10 {
		t.Fatalf("random stream prefetched %d of %d misses", c.Stats.Prefetches, c.Stats.CacheMisses)
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	// Copy interleaves a read stream and a write stream; both must be
	// tracked without evicting each other.
	c, _, _ := newTestCore()
	var ops []Op
	for i := 0; i < 500; i++ {
		ld := int32(len(ops))
		ops = append(ops,
			Op{Kind: OpRead, Addr: uint64(i) * 64, Size: 64, Dep: NoDep},
			Op{Kind: OpWrite, Addr: 1<<26 + 320 + uint64(i)*64, Size: 64, Dep: ld})
	}
	c.ExecOps(0, ops)
	if c.Stats.Prefetches < 400 {
		t.Fatalf("interleaved streams broke tracking: %d prefetches", c.Stats.Prefetches)
	}
}
