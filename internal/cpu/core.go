// Package cpu models the host out-of-order core from Table 2 of the
// Charon paper: a 2.67 GHz Westmere-class core with a 36-entry instruction
// window, 128-entry ROB, 4-way issue, and a bounded number of MSHRs.
//
// The model is an interval/reservation model in the style of zsim's OoO
// core (the simulator the paper itself extends): each GC primitive is
// expanded into a stream of micro-operations (loads, stores, compute) with
// explicit dependencies, and the core computes per-op completion times
// subject to
//
//   - front-end/issue bandwidth (IssueWidth µops per cycle),
//   - the instruction window (an op cannot enter the window until the op
//     WindowSize slots earlier has retired, and retirement is in order),
//   - data dependencies (an op waits for the op it depends on), and
//   - bounded memory-level parallelism (at most MSHRs outstanding misses).
//
// This is exactly the mechanism the paper blames for GC's sub-0.5 IPC:
// dependent loads clog the window, and the window/MSHR limits cap MLP far
// below what the memory system could sustain.
package cpu

import (
	"fmt"

	"charonsim/internal/cache"
	"charonsim/internal/memsys"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// OpKind classifies a micro-operation.
type OpKind uint8

const (
	// OpRead is a data load.
	OpRead OpKind = iota
	// OpWrite is a data store.
	OpWrite
	// OpCompute is a block of ALU work with no memory access.
	OpCompute
)

// NoDep marks an op without a data dependency.
const NoDep int32 = -1

// Op is one micro-operation of a primitive's execution.
type Op struct {
	Kind OpKind
	Addr uint64
	Size uint32
	// Dep is the index (within the same stream) of the op whose result
	// this op consumes, or NoDep.
	Dep int32
	// Work is the number of dynamic instructions attributed to this op
	// (charged against issue bandwidth). Zero means one instruction.
	Work uint32
}

// Config holds the core parameters.
type Config struct {
	ClockPeriod sim.Time
	WindowSize  int
	IssueWidth  int
	MSHRs       int
	// PrefetchLead is how far ahead of demand the L2 stream prefetcher
	// runs: a read recognized as part of a sequential stream completes
	// this much earlier than its memory access would (never earlier than
	// an L2 hit), and bypasses the MSHR limit — hardware prefetchers have
	// their own trackers. Zero disables prefetching.
	PrefetchLead sim.Time
}

// DefaultConfig returns Table 2's host core: 2.67 GHz, 36-entry window,
// 4-way issue. Table 2 does not list MSHRs; 10 per core matches Westmere's
// L1 fill buffers, and the stream prefetcher covers ~100 ns of lead.
func DefaultConfig() Config {
	return Config{ClockPeriod: 375 * sim.Picosecond, WindowSize: 36, IssueWidth: 4, MSHRs: 10,
		PrefetchLead: 100 * sim.Nanosecond}
}

// MemBackend is the main-memory system behind the cache hierarchy: either
// dram.DDR4 or the HMC host path.
type MemBackend interface {
	AccessAt(start sim.Time, kind memsys.Kind, addr uint64, size uint32) sim.Time
}

// Stats accumulates per-core execution statistics.
type Stats struct {
	Ops          uint64
	Instructions uint64
	MemOps       uint64
	MemAccesses  uint64 // line-granularity accesses after splitting
	CacheHits    uint64
	CacheMisses  uint64
	Prefetches   uint64 // stream-prefetched misses
	Busy         sim.Time

	// WindowStalls counts ops that waited for the in-order retirement of
	// the op WindowSize slots earlier; WindowStallTime is the summed wait.
	WindowStalls    uint64
	WindowStallTime sim.Time
	// MSHRStalls counts misses that waited for a free MSHR;
	// MSHRStallTime is the summed wait before issue.
	MSHRStalls    uint64
	MSHRStallTime sim.Time
	// MaxInflight is the high-water mark of outstanding misses.
	MaxInflight int

	// Mem counts the requests this core issued to the memory backend
	// (post-cache: demand misses, prefetches, writebacks, flushes). This is
	// the requester side of the byte-conservation invariant — it must equal
	// the traffic the DRAM controllers serve on behalf of this core.
	Mem memsys.Stats
}

// IPC returns instructions per cycle over the busy period.
func (s Stats) IPC(clock sim.Time) float64 {
	if s.Busy == 0 || clock == 0 {
		return 0
	}
	return float64(s.Instructions) / (float64(s.Busy) / float64(clock))
}

// Core is one host core with a private L1/L2 (and a shared L3 owned by the
// containing Host). Cores are driven by reservation: ExecOps may run ahead
// of the engine clock; the exec layer interleaves threads at primitive
// granularity to keep contention realistic.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	mem  MemBackend

	cursor     sim.Time   // front-end clock
	retireRing []sim.Time // retire times of the last WindowSize ops
	retireIdx  int
	lastRetire sim.Time
	mshr       []sim.Time // completion times of outstanding misses

	// Stream state: completion times of recent ops, indexed by absolute
	// stream position, so dependencies resolve across ExecBatch calls.
	ring [streamRing]sim.Time
	pos  int

	// Prefetcher stream table: last miss line per tracked stream.
	streams   [4]uint64
	streamIdx int

	// dirty is reusable scratch for FlushCaches' per-level dirty lines.
	dirty []uint64

	Stats Stats
}

// streamRing bounds how far back a dependency may reach across batches;
// primitive expansions only reference ops a few positions back.
const streamRing = 512

// NewCore builds a core with its own hierarchy (levels may be shared: the
// Host wires the same L3 into every core's hierarchy).
func NewCore(cfg Config, hier *cache.Hierarchy, mem MemBackend) *Core {
	return &Core{cfg: cfg, hier: hier, mem: mem, retireRing: make([]sim.Time, cfg.WindowSize)}
}

// Hierarchy returns the core's cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Cursor returns the core's local front-end clock.
func (c *Core) Cursor() sim.Time { return c.cursor }

// SetCursor fast-forwards the core's local clock (e.g. to the start of a
// GC pause).
func (c *Core) SetCursor(t sim.Time) {
	if t > c.cursor {
		c.cursor = t
	}
}

// mshrSlot returns the earliest time a new miss can be issued given at
// most cfg.MSHRs outstanding, and records the new miss's completion.
func (c *Core) mshrReserve(ready sim.Time, complete func(start sim.Time) sim.Time) sim.Time {
	if len(c.mshr) < c.cfg.MSHRs {
		done := complete(ready)
		c.mshr = append(c.mshr, done)
		if len(c.mshr) > c.Stats.MaxInflight {
			c.Stats.MaxInflight = len(c.mshr)
		}
		return done
	}
	// Find the earliest-free MSHR.
	idx := 0
	for i := 1; i < len(c.mshr); i++ {
		if c.mshr[i] < c.mshr[idx] {
			idx = i
		}
	}
	start := ready
	if c.mshr[idx] > start {
		c.Stats.MSHRStalls++
		c.Stats.MSHRStallTime += c.mshr[idx] - start
		start = c.mshr[idx]
	}
	done := complete(start)
	c.mshr[idx] = done
	return done
}

// ExecOps executes one primitive's op stream starting no earlier than
// start, returning the time the last op retires. State (caches, window,
// MSHRs, front-end clock) persists across calls: consecutive calls model a
// single continuous thread. Op dependencies are indices within ops.
func (c *Core) ExecOps(start sim.Time, ops []Op) sim.Time {
	return c.ExecBatch(start, ops, c.pos)
}

// StreamPos returns the core's absolute instruction-stream position.
func (c *Core) StreamPos() int { return c.pos }

// ExecBatch executes a batch of ops whose Dep fields are relative to
// stream position depBase (so a long primitive can be executed in several
// batches, interleaving with other cores' resource reservations, while
// dependencies still resolve across batch boundaries).
func (c *Core) ExecBatch(start sim.Time, ops []Op, depBase int) sim.Time {
	if start > c.cursor {
		c.cursor = start
	}
	startBusy := c.cursor

	for i := range ops {
		op := &ops[i]
		// Front-end: charge issue bandwidth.
		work := op.Work
		if work == 0 {
			work = 1
		}
		c.Stats.Instructions += uint64(work)
		cycles := (uint64(work) + uint64(c.cfg.IssueWidth) - 1) / uint64(c.cfg.IssueWidth)
		c.cursor += sim.Time(cycles) * c.cfg.ClockPeriod

		// Window: the op WindowSize slots earlier must have retired.
		if old := c.retireRing[c.retireIdx]; old > c.cursor {
			c.Stats.WindowStalls++
			c.Stats.WindowStallTime += old - c.cursor
			c.cursor = old
		}

		ready := c.cursor
		if op.Dep >= 0 {
			abs := depBase + int(op.Dep)
			if abs < c.pos && c.pos-abs <= streamRing {
				if d := c.ring[abs%streamRing]; d > ready {
					ready = d
				}
			}
		}

		var done sim.Time
		switch op.Kind {
		case OpCompute:
			done = ready
		default:
			c.Stats.MemOps++
			kind := memsys.Read
			write := false
			if op.Kind == OpWrite {
				kind = memsys.Write
				write = true
			}
			size := op.Size
			if size == 0 {
				size = 8
			}
			memsys.SplitBursts(op.Addr, size, 64, func(a uint64, s uint32) {
				c.Stats.MemAccesses++
				r := c.hier.Access(a, write)
				var d sim.Time
				if r.MemoryAccess {
					c.Stats.CacheMisses++
					line := a &^ 63
					stream := false
					for i := range c.streams {
						if line == c.streams[i]+64 {
							c.streams[i] = line
							stream = true
							break
						}
					}
					if !stream {
						c.streamIdx = (c.streamIdx + 1) % len(c.streams)
						c.streams[c.streamIdx] = line
					}
					if stream && !write && c.cfg.PrefetchLead > 0 {
						// Prefetched: the access was issued PrefetchLead
						// early by the stream prefetcher (own trackers, no
						// MSHR), so the demand load sees at most the
						// residual latency. Bandwidth is still charged.
						c.Stats.Prefetches++
						c.Stats.Mem.Record(&memsys.Request{Kind: kind, Size: 64})
						memDone := c.mem.AccessAt(ready, kind, a, 64)
						d = ready + r.Latency
						if memDone > c.cfg.PrefetchLead && memDone-c.cfg.PrefetchLead > d {
							d = memDone - c.cfg.PrefetchLead
						}
					} else {
						c.Stats.Mem.Record(&memsys.Request{Kind: kind, Size: 64})
						d = c.mshrReserve(ready+r.Latency, func(st sim.Time) sim.Time {
							return c.mem.AccessAt(st, kind, a, 64)
						})
					}
				} else {
					c.Stats.CacheHits++
					d = ready + r.Latency
				}
				// Dirty victims write back asynchronously (no stall), but
				// the traffic is charged to the memory system.
				for _, wb := range r.Writebacks {
					c.Stats.Mem.Record(&memsys.Request{Kind: memsys.Write, Size: 64})
					c.mem.AccessAt(d, memsys.Write, wb, 64)
				}
				if d > done {
					done = d
				}
			})
		}

		c.ring[c.pos%streamRing] = done
		c.pos++
		// In-order retirement.
		if done < c.lastRetire {
			done = c.lastRetire
		}
		c.lastRetire = done
		c.retireRing[c.retireIdx] = done
		c.retireIdx = (c.retireIdx + 1) % c.cfg.WindowSize
		c.Stats.Ops++
	}

	finish := c.cursor
	if c.lastRetire > finish {
		finish = c.lastRetire
	}
	c.Stats.Busy += finish - startBusy
	return finish
}

// FlushCaches models the GC-start bulk cache flush (Section 4.6): all
// levels are emptied and each dirty line is written back through the
// memory system starting at t. Returns the time the flush traffic drains.
func (c *Core) FlushCaches(t sim.Time) sim.Time {
	last := t
	for _, level := range c.hier.Levels {
		c.dirty = level.AppendDirtyLines(c.dirty[:0])
		for _, addr := range c.dirty {
			c.Stats.Mem.Record(&memsys.Request{Kind: memsys.Write, Size: 64})
			if d := c.mem.AccessAt(t, memsys.Write, addr, 64); d > last {
				last = d
			}
		}
		level.Flush()
	}
	return last
}

// Host is the 8-core processor: per-core L1+L2 in front of a shared L3.
type Host struct {
	Cores []*Core
	L3    *cache.Cache
}

// NewHost builds Table 2's 8-core host over the given memory backend.
func NewHost(ncores int, cfg Config, mem MemBackend) *Host {
	return NewHostWithCaches(ncores, cfg, mem, cache.L1DConfig(), cache.L2Config(), cache.L3Config())
}

// NewHostWithCaches builds a host with explicit cache geometries (the
// experiment platforms use capacity-scaled caches to match scaled heaps).
func NewHostWithCaches(ncores int, cfg Config, mem MemBackend, l1, l2, l3cfg cache.Config) *Host {
	l3 := cache.New(l3cfg)
	h := &Host{L3: l3}
	for i := 0; i < ncores; i++ {
		hier := &cache.Hierarchy{Levels: []*cache.Cache{
			cache.New(l1),
			cache.New(l2),
			l3,
		}}
		h.Cores = append(h.Cores, NewCore(cfg, hier, mem))
	}
	return h
}

// Stats sums per-core statistics.
func (h *Host) Stats() Stats {
	var s Stats
	for _, c := range h.Cores {
		s.Ops += c.Stats.Ops
		s.Instructions += c.Stats.Instructions
		s.MemOps += c.Stats.MemOps
		s.MemAccesses += c.Stats.MemAccesses
		s.CacheHits += c.Stats.CacheHits
		s.CacheMisses += c.Stats.CacheMisses
		s.Prefetches += c.Stats.Prefetches
		s.Busy += c.Stats.Busy
		s.WindowStalls += c.Stats.WindowStalls
		s.WindowStallTime += c.Stats.WindowStallTime
		s.MSHRStalls += c.Stats.MSHRStalls
		s.MSHRStallTime += c.Stats.MSHRStallTime
		if c.Stats.MaxInflight > s.MaxInflight {
			s.MaxInflight = c.Stats.MaxInflight
		}
		s.Mem.Add(c.Stats.Mem)
	}
	return s
}

// Collect publishes per-core and aggregate counters into reg under
// prefix (e.g. "ddr4/cpu"). No-op when reg is disabled.
func (h *Host) Collect(reg *metrics.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	for i, c := range h.Cores {
		p := fmt.Sprintf("%s/core%d", prefix, i)
		s := &c.Stats
		reg.AddUint(p+"/ops", s.Ops)
		reg.AddUint(p+"/instructions", s.Instructions)
		reg.AddUint(p+"/mem_accesses", s.MemAccesses)
		reg.AddUint(p+"/cache_hits", s.CacheHits)
		reg.AddUint(p+"/cache_misses", s.CacheMisses)
		reg.AddUint(p+"/prefetches", s.Prefetches)
		reg.AddUint(p+"/busy_ps", uint64(s.Busy))
		reg.AddUint(p+"/window_stalls", s.WindowStalls)
		reg.AddUint(p+"/window_stall_ps", uint64(s.WindowStallTime))
		reg.AddUint(p+"/mshr_stalls", s.MSHRStalls)
		reg.AddUint(p+"/mshr_stall_ps", uint64(s.MSHRStallTime))
		reg.SetMax(p+"/max_inflight_misses", float64(s.MaxInflight))
		reg.AddUint(p+"/mem_read_bytes", s.Mem.ReadBytes)
		reg.AddUint(p+"/mem_write_bytes", s.Mem.WriteBytes)
		c.hier.Levels[0].Collect(reg, p+"/l1d")
		c.hier.Levels[1].Collect(reg, p+"/l2")
	}
	h.L3.Collect(reg, prefix+"/l3")
}
