// Package memsys defines the types shared by all memory-system components:
// memory requests, the port interface components expose, and the physical
// address mappings (interleavings) used by the DDR4 and HMC main-memory
// systems from Table 2 of the paper.
//
// The simulator is timing-only at this layer: requests carry no data.
// Functional data lives in the heap arena (internal/heap); the collector
// mutates it eagerly and separately replays the access pattern through
// these timing models.
package memsys

import "charonsim/internal/sim"

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a memory load.
	Read Kind = iota
	// Write is a memory store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Request is a single timing-level memory access. Size may span several
// DRAM bursts (the HMC supports up to 256 B per request; the Charon
// Copy/Search unit always uses that maximum granularity).
type Request struct {
	Kind Kind
	Addr uint64
	Size uint32

	// OnDone is invoked exactly once when the access completes (data
	// returned for reads, write committed for writes). May be nil.
	OnDone func()

	// IssuedAt is stamped by the component that first accepts the request.
	IssuedAt sim.Time
}

// Port is anything that accepts memory requests: a cache, a DRAM channel
// controller, an HMC cube, or the full memory system. Submit never rejects;
// finite buffering is modelled as queueing delay, and requester-side limits
// (CPU MSHRs, Charon's MAI entries) bound the number of requests in flight.
type Port interface {
	Submit(r *Request)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(r *Request)

// Submit implements Port.
func (f PortFunc) Submit(r *Request) { f(r) }

// Stats accumulates traffic counters for bandwidth accounting (Figure 13).
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Record adds one request to the counters.
func (s *Stats) Record(r *Request) {
	if r.Kind == Read {
		s.Reads++
		s.ReadBytes += uint64(r.Size)
	} else {
		s.Writes++
		s.WriteBytes += uint64(r.Size)
	}
}

// Bytes returns total bytes moved.
func (s *Stats) Bytes() uint64 { return s.ReadBytes + s.WriteBytes }

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
}

// BandwidthGBs converts the accumulated bytes to GB/s over elapsed time.
func (s *Stats) BandwidthGBs(elapsed sim.Time) float64 {
	sec := elapsed.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Bytes()) / 1e9 / sec
}
