package memsys

import (
	"testing"
	"testing/quick"

	"charonsim/internal/sim"
)

func TestDDR4MapperChannelInterleave(t *testing.T) {
	m := NewDDR4Mapper()
	// Adjacent 64B lines alternate channels.
	c0 := m.Map(0)
	c1 := m.Map(64)
	c2 := m.Map(128)
	if c0.Channel != 0 || c1.Channel != 1 || c2.Channel != 0 {
		t.Fatalf("channel interleave wrong: %v %v %v", c0, c1, c2)
	}
	// After both channels, the rank advances.
	if got := m.Map(128).Rank; got != 1 {
		t.Fatalf("rank = %d, want 1", got)
	}
}

func TestDDR4MapperGeometryBounds(t *testing.T) {
	m := NewDDR4Mapper()
	ch, rk, bk := m.Geometry()
	if ch != 2 || rk != 4 || bk != 8 {
		t.Fatalf("geometry = %d/%d/%d", ch, rk, bk)
	}
	for addr := uint64(0); addr < 1<<22; addr += 4096 + 64 {
		c := m.Map(addr)
		if c.Channel < 0 || c.Channel >= ch || c.Rank < 0 || c.Rank >= rk || c.Bank < 0 || c.Bank >= bk {
			t.Fatalf("coord out of range for %#x: %v", addr, c)
		}
	}
}

func TestDDR4MapperRowLocality(t *testing.T) {
	m := NewDDR4Mapper()
	// Two addresses that map to the same bank but different 8KB regions
	// should land in different rows.
	stride := uint64(64 * 2 * 4 * 8) // one line in every bank: back to bank 0
	a := m.Map(0)
	b := m.Map(stride * (m.RowBytes / 64)) // past one full row of bank 0
	if a.Channel != b.Channel || a.Rank != b.Rank || a.Bank != b.Bank {
		t.Fatalf("expected same bank: %v vs %v", a, b)
	}
	if a.Row == b.Row {
		t.Fatalf("expected different rows: %v vs %v", a, b)
	}
}

func TestHMCMapperCubeSelection(t *testing.T) {
	m := NewHMCMapper(22) // 4 MB cube interleave (scaled)
	if m.Cube(0) != 0 || m.Cube(1<<22) != 1 || m.Cube(2<<22) != 2 || m.Cube(3<<22) != 3 {
		t.Fatal("cube selection by high bits failed")
	}
	// Wraps around after all cubes.
	if m.Cube(4<<22) != 0 {
		t.Fatalf("cube wrap = %d, want 0", m.Cube(4<<22))
	}
	// Paper-scale: bits 31:30.
	p := NewHMCMapper(30)
	if p.Cube(3<<30) != 3 {
		t.Fatalf("paper-scale cube = %d, want 3", p.Cube(3<<30))
	}
}

func TestHMCMapperVaultInterleave(t *testing.T) {
	m := NewHMCMapper(22)
	// Adjacent 64B lines hit successive vaults within the same cube.
	for i := 0; i < 32; i++ {
		c := m.Map(uint64(i) * 64)
		if c.Channel != 0 {
			t.Fatalf("line %d escaped cube 0: %v", i, c)
		}
		if c.Rank != i {
			t.Fatalf("line %d vault = %d, want %d", i, c.Rank, i)
		}
	}
	// Line 32 wraps to vault 0, next bank set.
	c := m.Map(32 * 64)
	if c.Rank != 0 || c.Bank != 1 {
		t.Fatalf("vault wrap: %v", c)
	}
	// A 256B request spans four consecutive vaults (parallel service).
	v0, v3 := m.Map(0).Rank, m.Map(192).Rank
	if v3 != v0+3 {
		t.Fatalf("256B request should span 4 vaults: %d..%d", v0, v3)
	}
}

func TestHMCMapperCoordInRange(t *testing.T) {
	m := NewHMCMapper(22)
	cubes, vaults, banks := m.Geometry()
	for addr := uint64(0); addr < 1<<26; addr += 7777 {
		c := m.Map(addr)
		if c.Channel >= cubes || c.Rank >= vaults || c.Bank >= banks {
			t.Fatalf("out of range at %#x: %v", addr, c)
		}
	}
}

func TestHMCMapperDistinctAddressesDistinctCells(t *testing.T) {
	// Property: two addresses in different 256B grains of the same cube
	// never collide on (vault,bank,row,grain) — i.e. the mapping within a
	// cube is injective at grain granularity.
	m := NewHMCMapper(22)
	type cell struct {
		c    BankCoord
		gofs uint64
	}
	f := func(a, b uint32) bool {
		x, y := uint64(a)&^(m.VaultGrain-1), uint64(b)&^(m.VaultGrain-1)
		if x == y {
			return true
		}
		cx, cy := m.Map(x), m.Map(y)
		if cx != cy {
			return true
		}
		// Same bank+row: must be different column grains. Recover the grain
		// index difference via the raw addresses; equality would be a bug.
		return x != y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	_ = cell{}
}

func TestSplitBursts(t *testing.T) {
	var chunks [][2]uint64
	SplitBursts(100, 300, 64, func(a uint64, s uint32) {
		chunks = append(chunks, [2]uint64{a, uint64(s)})
	})
	// 100..400 split at 64B boundaries: [100,128) [128..) ... [384,400)
	if len(chunks) != 6 {
		t.Fatalf("chunks = %d, want 6: %v", len(chunks), chunks)
	}
	if chunks[0] != [2]uint64{100, 28} {
		t.Fatalf("first chunk %v", chunks[0])
	}
	if chunks[5] != [2]uint64{384, 16} {
		t.Fatalf("last chunk %v", chunks[5])
	}
	var total uint64
	for _, c := range chunks {
		total += c[1]
	}
	if total != 300 {
		t.Fatalf("total = %d, want 300", total)
	}
}

func TestSplitBurstsAligned(t *testing.T) {
	n := 0
	SplitBursts(512, 256, 256, func(a uint64, s uint32) {
		if s != 256 {
			t.Fatalf("aligned chunk size %d", s)
		}
		n++
	})
	if n != 1 {
		t.Fatalf("aligned 256B access split into %d chunks", n)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignDown(100, 64) != 64 || AlignUp(100, 64) != 128 {
		t.Fatal("align helpers wrong")
	}
	if AlignDown(128, 64) != 128 || AlignUp(128, 64) != 128 {
		t.Fatal("align helpers wrong on boundary")
	}
}

func TestStatsRecording(t *testing.T) {
	var s Stats
	s.Record(&Request{Kind: Read, Size: 64})
	s.Record(&Request{Kind: Write, Size: 256})
	s.Record(&Request{Kind: Read, Size: 32})
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts %d/%d", s.Reads, s.Writes)
	}
	if s.Bytes() != 352 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	var u Stats
	u.Add(s)
	u.Add(s)
	if u.Bytes() != 704 {
		t.Fatalf("Add: %d", u.Bytes())
	}
	// 352 bytes over 1 microsecond = 0.352 GB/s.
	got := s.BandwidthGBs(sim.Microsecond)
	if got < 0.351 || got > 0.353 {
		t.Fatalf("bandwidth = %v", got)
	}
	if s.BandwidthGBs(0) != 0 {
		t.Fatal("zero-time bandwidth should be 0")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Kind.String")
	}
}

func TestPortFunc(t *testing.T) {
	called := false
	var p Port = PortFunc(func(r *Request) { called = true })
	p.Submit(&Request{})
	if !called {
		t.Fatal("PortFunc did not dispatch")
	}
}

func TestBankRemap(t *testing.T) {
	// No faults: constructor returns nil and nil is the identity.
	if r := NewBankRemap(8, func(int) bool { return false }); r != nil {
		t.Fatalf("healthy remap should be nil, got %+v", r)
	}
	var nilRemap *BankRemap
	if nilRemap.Bank(5) != 5 || nilRemap.Remapped() != 0 {
		t.Fatal("nil remap must be identity")
	}

	// Banks 2 and 3 dead: both steer to 4 (next healthy, wrapping).
	r := NewBankRemap(8, func(b int) bool { return b == 2 || b == 3 })
	if got := r.Bank(2); got != 4 {
		t.Fatalf("Bank(2) = %d, want 4", got)
	}
	if got := r.Bank(3); got != 4 {
		t.Fatalf("Bank(3) = %d, want 4", got)
	}
	if got := r.Bank(0); got != 0 {
		t.Fatalf("healthy bank moved: Bank(0) = %d", got)
	}
	if got := r.Remapped(); got != 2 {
		t.Fatalf("Remapped = %d, want 2", got)
	}
	// Wrap-around: last bank dead steers to bank 0.
	r = NewBankRemap(4, func(b int) bool { return b == 3 })
	if got := r.Bank(3); got != 0 {
		t.Fatalf("wrap Bank(3) = %d, want 0", got)
	}
	// Remapped target never lands on a dead bank.
	r = NewBankRemap(8, func(b int) bool { return b%2 == 0 })
	for b := 0; b < 8; b += 2 {
		if r.Bank(b)%2 == 0 {
			t.Fatalf("Bank(%d) = %d remapped onto a dead bank", b, r.Bank(b))
		}
	}
	// All banks dead degenerates to identity.
	r = NewBankRemap(4, func(int) bool { return true })
	for b := 0; b < 4; b++ {
		if r.Bank(b) != b {
			t.Fatalf("all-dead Bank(%d) = %d, want identity", b, r.Bank(b))
		}
	}
	// Out-of-range indexes pass through.
	if r.Bank(-1) != -1 || r.Bank(99) != 99 {
		t.Fatal("out-of-range banks must pass through")
	}
}
