package memsys

import "fmt"

// BankCoord identifies a unique DRAM bank (or HMC vault bank) plus the row
// within it. Channel doubles as the HMC cube index and Rank as the vault
// index when used with the HMC mapping.
type BankCoord struct {
	Channel int // DDR4 channel / HMC cube
	Rank    int // DDR4 rank / HMC vault
	Bank    int
	Row     uint64
}

// Mapper translates a physical byte address to a bank coordinate.
type Mapper interface {
	Map(addr uint64) BankCoord
	// Geometry returns (channels, ranksPerChannel, banksPerRank).
	Geometry() (channels, ranks, banks int)
}

// DDR4Mapper implements the paper's DDR4 interleaving [row:col:bank:rank:ch]:
// the channel is selected by the lowest line-granularity bits, then rank,
// then bank, then column within the row, then row. Table 2: 32 GB, 2
// channels, 4 ranks per channel, 8 banks per rank.
type DDR4Mapper struct {
	LineSize uint64 // interleave granularity between channels (bytes)
	Channels int
	Ranks    int
	Banks    int
	RowBytes uint64 // row-buffer size per bank

	// Shift/mask decomposition of the geometry, valid when pow2 is set
	// (precomputed by the constructor). Map sits on the per-line hot path
	// of every DRAM access, and the compiler cannot strength-reduce
	// divisions by non-constant fields on its own.
	pow2                 bool
	shLine, shCh, shRank uint
	shBank, shRow        uint
}

// NewDDR4Mapper returns the Table 2 DDR4 geometry: 2 channels, 4 ranks,
// 8 banks, 8 KB row buffers, 64 B channel interleave.
func NewDDR4Mapper() *DDR4Mapper {
	m := &DDR4Mapper{LineSize: 64, Channels: 2, Ranks: 4, Banks: 8, RowBytes: 8192}
	m.precompute()
	return m
}

// precompute derives the shift decomposition when every geometry
// parameter is a power of two. Mappers built as struct literals skip this
// and Map falls back to the division path (identical results).
func (m *DDR4Mapper) precompute() {
	shLine, ok1 := log2u64(m.LineSize)
	shCh, ok2 := log2u64(uint64(m.Channels))
	shRank, ok3 := log2u64(uint64(m.Ranks))
	shBank, ok4 := log2u64(uint64(m.Banks))
	shRowB, ok5 := log2u64(m.RowBytes)
	if !(ok1 && ok2 && ok3 && ok4 && ok5) || shRowB < shLine {
		return
	}
	m.shLine, m.shCh, m.shRank, m.shBank = shLine, shCh, shRank, shBank
	m.shRow = shRowB - shLine // log2(lines per row)
	m.pow2 = true
}

// Geometry implements Mapper.
func (m *DDR4Mapper) Geometry() (int, int, int) { return m.Channels, m.Ranks, m.Banks }

// Map implements Mapper.
func (m *DDR4Mapper) Map(addr uint64) BankCoord {
	if m.pow2 {
		a := addr >> m.shLine
		ch := a & (1<<m.shCh - 1)
		a >>= m.shCh
		rank := a & (1<<m.shRank - 1)
		a >>= m.shRank
		bank := a & (1<<m.shBank - 1)
		a >>= m.shBank
		return BankCoord{Channel: int(ch), Rank: int(rank), Bank: int(bank), Row: a >> m.shRow}
	}
	a := addr / m.LineSize
	ch := a % uint64(m.Channels)
	a /= uint64(m.Channels)
	rank := a % uint64(m.Ranks)
	a /= uint64(m.Ranks)
	bank := a % uint64(m.Banks)
	a /= uint64(m.Banks)
	// a now counts LineSize units within this bank; fold into rows.
	linesPerRow := m.RowBytes / m.LineSize
	row := a / linesPerRow
	return BankCoord{Channel: int(ch), Rank: int(rank), Bank: int(bank), Row: row}
}

// log2u64 returns log2(v) when v is a power of two.
func log2u64(v uint64) (uint, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s, true
}

// HMCMapper implements the paper's HMC interleaving
// [cube[hi]:row:col:bank:rank:vault]: the cube is selected by high address
// bits so that huge pages interleave across cubes (the paper uses physical
// bits 31:30, i.e. 1 GB granularity, for full-scale heaps; scaled-down
// experiments lower CubeShift proportionally), and within a cube vaults
// occupy the lowest interleave bits. Table 2: 32 GB, 4 cubes, 32 vaults
// per cube.
type HMCMapper struct {
	Cubes      int
	CubeShift  uint // log2 of the cube-interleave granularity
	Vaults     int
	VaultGrain uint64 // vault interleave granularity (bytes)
	Banks      int
	RowBytes   uint64

	// Shift/mask decomposition, valid when pow2 is set (constructor-built
	// mappers only; see DDR4Mapper.precompute for rationale).
	pow2                   bool
	shCubes, shGrain       uint
	shVault, shBank, shRow uint
}

// NewHMCMapper returns the Table 2 HMC geometry with the given cube-select
// shift (30 for the paper's 1 GB huge pages; experiments at scaled heap
// sizes pass a smaller shift so that the heap still spans all cubes).
// Vaults occupy the lowest interleave position of the paper's mapping
// ([..:bank:rank:vault]), at cache-line (64 B) granularity, so sequential
// streams spread across all 32 vaults and a 256 B Charon request is
// serviced by four vaults in parallel.
func NewHMCMapper(cubeShift uint) *HMCMapper {
	m := &HMCMapper{Cubes: 4, CubeShift: cubeShift, Vaults: 32, VaultGrain: 64, Banks: 8, RowBytes: 4096}
	m.precompute()
	return m
}

// precompute derives the shift decomposition when every geometry
// parameter is a power of two.
func (m *HMCMapper) precompute() {
	shCubes, ok1 := log2u64(uint64(m.Cubes))
	shGrain, ok2 := log2u64(m.VaultGrain)
	shVault, ok3 := log2u64(uint64(m.Vaults))
	shBank, ok4 := log2u64(uint64(m.Banks))
	shRowB, ok5 := log2u64(m.RowBytes)
	if !(ok1 && ok2 && ok3 && ok4 && ok5) || shRowB < shGrain {
		return
	}
	m.shCubes, m.shGrain, m.shVault, m.shBank = shCubes, shGrain, shVault, shBank
	m.shRow = shRowB - shGrain // log2(grains per row)
	m.pow2 = true
}

// Geometry implements Mapper. Channels = cubes, ranks = vaults.
func (m *HMCMapper) Geometry() (int, int, int) { return m.Cubes, m.Vaults, m.Banks }

// Cube returns only the cube index for addr (used for offload scheduling:
// Copy is dispatched to the cube housing its source address).
func (m *HMCMapper) Cube(addr uint64) int {
	if m.pow2 {
		return int((addr >> m.CubeShift) & (1<<m.shCubes - 1))
	}
	return int((addr >> m.CubeShift) % uint64(m.Cubes))
}

// Map implements Mapper.
func (m *HMCMapper) Map(addr uint64) BankCoord {
	if m.pow2 {
		cube := int((addr >> m.CubeShift) & (1<<m.shCubes - 1))
		low := addr & (1<<m.CubeShift - 1)
		high := (addr >> m.CubeShift) >> m.shCubes << m.CubeShift
		a := (high | low) >> m.shGrain
		vault := a & (1<<m.shVault - 1)
		a >>= m.shVault
		bank := a & (1<<m.shBank - 1)
		a >>= m.shBank
		return BankCoord{Channel: cube, Rank: int(vault), Bank: int(bank), Row: a >> m.shRow}
	}
	cube := m.Cube(addr)
	// Remove the cube-select bits, collapsing the address within the cube.
	low := addr & ((1 << m.CubeShift) - 1)
	high := (addr >> m.CubeShift) / uint64(m.Cubes) << m.CubeShift
	a := (high | low) / m.VaultGrain
	vault := a % uint64(m.Vaults)
	a /= uint64(m.Vaults)
	bank := a % uint64(m.Banks)
	a /= uint64(m.Banks)
	grainsPerRow := m.RowBytes / m.VaultGrain
	row := a / grainsPerRow
	return BankCoord{Channel: cube, Rank: int(vault), Bank: int(bank), Row: row}
}

// String renders a coordinate for debugging.
func (c BankCoord) String() string {
	return fmt.Sprintf("ch%d/rk%d/bk%d/row%d", c.Channel, c.Rank, c.Bank, c.Row)
}

// SplitBursts splits a request's byte range into per-burst (or per-grain)
// aligned chunks of at most grain bytes, calling fn for each chunk. Memory
// controllers use this to turn a large (up to 256 B) access into individual
// bank bursts.
func SplitBursts(addr uint64, size uint32, grain uint64, fn func(addr uint64, size uint32)) {
	end := addr + uint64(size)
	for addr < end {
		next := (addr/grain + 1) * grain
		if next > end {
			next = end
		}
		fn(addr, uint32(next-addr))
		addr = next
	}
}

// BankRemap is a per-controller redirection table for hard-faulted banks:
// accesses addressed to a dead bank are steered onto a designated healthy
// neighbour (the spare-decoder trick real controllers use). An identity
// table (or nil slice) means every bank is healthy.
type BankRemap struct {
	to []int
}

// NewBankRemap builds a remap table over nbanks banks. faulted reports,
// per bank index, whether that bank is hard-faulted; each faulted bank is
// redirected to the next healthy bank (wrapping). If every bank is faulted
// the table degenerates to identity — there is nowhere left to remap, and
// modelling a wholly dead channel is out of scope.
func NewBankRemap(nbanks int, faulted func(bank int) bool) *BankRemap {
	dead := make([]bool, nbanks)
	any, all := false, true
	for i := 0; i < nbanks; i++ {
		dead[i] = faulted(i)
		any = any || dead[i]
		all = all && dead[i]
	}
	if !any {
		return nil
	}
	r := &BankRemap{to: make([]int, nbanks)}
	for i := range r.to {
		r.to[i] = i
		if dead[i] && !all {
			for d := 1; d < nbanks; d++ {
				j := (i + d) % nbanks
				if !dead[j] {
					r.to[i] = j
					break
				}
			}
		}
	}
	return r
}

// Bank returns the bank actually serving accesses addressed to bank.
// Nil-safe: a nil remap is the identity.
func (r *BankRemap) Bank(bank int) int {
	if r == nil || bank < 0 || bank >= len(r.to) {
		return bank
	}
	return r.to[bank]
}

// Remapped counts banks redirected away from their home index.
func (r *BankRemap) Remapped() int {
	if r == nil {
		return 0
	}
	n := 0
	for i, t := range r.to {
		if t != i {
			n++
		}
	}
	return n
}

// AlignDown rounds addr down to a multiple of grain.
func AlignDown(addr, grain uint64) uint64 { return addr / grain * grain }

// AlignUp rounds addr up to a multiple of grain.
func AlignUp(addr, grain uint64) uint64 { return (addr + grain - 1) / grain * grain }
