// Package client is the typed Go client for the charond job API — the
// resilient network edge in front of internal/server. It wraps every
// exchange in the discipline a flaky network demands:
//
//   - Bounded exponential-backoff retries with deterministic, seedable
//     jitter, honoring server Retry-After hints (the 429 queue-full, 503
//     shed/drain, and 202 poll paths all send one).
//   - Safe-to-retry submissions: job IDs are canonical content keys and
//     the server deduplicates single-flight, so a duplicated POST — a
//     retransmit after an ambiguous reset, or a hedge — lands on the
//     same job and never double-runs work.
//   - Optional hedged GETs: when HedgeDelay elapses without a response,
//     a second identical request races the first; first complete answer
//     wins, the loser is canceled.
//   - A per-host circuit breaker (closed→open→half-open) with
//     deterministic probe scheduling, so a dead host is not hammered.
//   - Client-side deadlines propagated over the wire: a context deadline
//     becomes an X-Charon-Deadline header, and the server derives the
//     job's execution deadline from it — the caller's patience bounds
//     the work, end to end.
//
// Every retry, hedge, and breaker transition lands in a metrics.Registry
// (Metrics()), so chaos harnesses can reconcile client-side counters
// against the faults a netfault proxy injected.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"charonsim/internal/fault"
	"charonsim/internal/metrics"
	"charonsim/internal/server"
)

// Config configures a Client. The zero value (plus BaseURL) is a sane
// resilient client; every knob follows the repo convention that 0 means
// "default" and negative means "disable".
type Config struct {
	// BaseURL is the charond root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = a client with a 30s
	// per-attempt timeout). Per-request deadlines still come from the
	// caller's context.
	HTTPClient *http.Client
	// RetryBudget bounds retries per logical request beyond the first
	// attempt (default 4; negative disables retries).
	RetryBudget int
	// RetryBackoff is the initial retry delay (default 100ms); it doubles
	// per attempt up to 64x, plus up to +50% deterministic jitter drawn
	// from Seed. A server Retry-After hint overrides the computed delay.
	RetryBackoff time.Duration
	// HedgeDelay, when positive, arms hedged GETs: if a response has not
	// arrived after this long, a second identical request is issued and
	// the first complete answer wins. Only idempotent GETs hedge;
	// submissions rely on retries plus server-side dedup instead.
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive transport-failure count that
	// opens the per-host circuit breaker (default 5; negative disables
	// the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe (default 1s), plus up to +50% jitter from Seed.
	BreakerCooldown time.Duration
	// PollInterval paces Wait's status polling when the server sends no
	// Retry-After hint (default 250ms).
	PollInterval time.Duration
	// RetryAfterMax caps how long a server Retry-After hint is honored
	// (default 30s; negative disables the cap). A server quoting an hour
	// — by bug or hostility — must not stall a command past its own
	// deadline on one hint.
	RetryAfterMax time.Duration
	// Seed selects the deterministic jitter pattern for backoff and
	// breaker probes, exactly like the fault layer's seeds: the same
	// seed reproduces the same schedule, different seeds desynchronize.
	Seed int64
	// Log receives request-level logs (nil = discard).
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 4
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.RetryAfterMax == 0 {
		c.RetryAfterMax = 30 * time.Second
	}
	if c.RetryAfterMax < 0 {
		c.RetryAfterMax = 0 // 0 after defaulting = uncapped
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// APIError is a complete, non-2xx HTTP answer from the server: the host
// is alive and said no. Status carries the code; Message the decoded
// {"error": ...} body when present.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("charond: HTTP %d", e.Status)
	}
	return fmt.Sprintf("charond: HTTP %d: %s", e.Status, e.Message)
}

// ErrNotDone reports that a job's result was requested before the job
// reached a terminal state (the server's 202 poll answer).
var ErrNotDone = &APIError{Status: http.StatusAccepted, Message: "job is not done yet"}

// ErrJobFailed and ErrJobCanceled mark WaitResult errors where the
// network edge worked and the job itself ended badly — callers (and
// charonctl's exit codes) distinguish them from transport failures.
var (
	ErrJobFailed   = errors.New("job reached a failed terminal state")
	ErrJobCanceled = errors.New("job was canceled")
)

// Job is the client-side view of a tracked job (the server's job JSON).
type Job struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Experiment string `json:"experiment"`
	Cached     bool   `json:"cached"`
	Created    string `json:"created,omitempty"`
	Started    string `json:"started,omitempty"`
	Finished   string `json:"finished,omitempty"`
	Deadline   string `json:"deadline,omitempty"`
	Error      string `json:"error,omitempty"`
	Recovered  int    `json:"recovered,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j Job) Terminal() bool {
	return j.State == server.StateDone || j.State == server.StateFailed || j.State == server.StateCanceled
}

// Client is a resilient charond API client. Create with New; safe for
// concurrent use.
type Client struct {
	cfg  Config
	base *url.URL
	hc   *http.Client
	log  *slog.Logger
	reg  *metrics.Registry

	backoffMu  sync.Mutex
	backoffSrc *fault.Source // deterministic retry jitter

	breakerMu sync.Mutex
	breakers  map[string]*breaker // per host
}

// New builds a client for the charond instance at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)://host[:port]", cfg.BaseURL)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return &Client{
		cfg:        cfg,
		base:       u,
		hc:         cfg.HTTPClient,
		log:        cfg.Log,
		reg:        metrics.NewRegistry(),
		backoffSrc: fault.NewSource("client/backoff", cfg.Seed),
		breakers:   map[string]*breaker{},
	}, nil
}

// Metrics exposes the client's counter registry: retries, hedges,
// breaker transitions, Retry-After hints honored. Chaos gates reconcile
// it against the proxy's injected-fault log.
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// breakerFor returns (creating if needed) the host's circuit breaker.
func (c *Client) breakerFor(host string) *breaker {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	b, ok := c.breakers[host]
	if !ok {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown,
			fault.NewSource("client/breaker/"+host, c.cfg.Seed), c.reg)
		c.breakers[host] = b
	}
	return b
}

// response is one complete HTTP exchange.
type response struct {
	status int
	header http.Header
	body   []byte
}

// asError maps a non-2xx response to an *APIError (nil for 2xx).
func (r *response) asError() error {
	if r.status >= 200 && r.status < 300 {
		return nil
	}
	var msg struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(r.body, &msg)
	return &APIError{Status: r.status, Message: msg.Error}
}

// retryableStatus classifies the statuses worth another attempt: the
// queue-full 429, the shed/drain 503, and gateway-shaped 502/504. All of
// them may carry a Retry-After hint, which do() honors.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one logical request through the retry/hedge/breaker stack.
// body is resent verbatim on every attempt; hedge must only be true for
// idempotent requests.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hedge bool) (*response, error) {
	c.reg.AddUint("client/requests", 1)
	br := c.breakerFor(c.base.Host)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}

		now := time.Now()
		allowed, retryAt := br.allow(now)
		if !allowed {
			lastErr = fmt.Errorf("%w (next probe %s)", ErrBreakerOpen, retryAt.Format(time.RFC3339Nano))
			if attempt >= c.cfg.RetryBudget {
				return nil, lastErr
			}
			c.reg.AddUint("client/retries", 1)
			if err := c.sleepUntil(ctx, retryAt); err != nil {
				return nil, lastErr
			}
			continue
		}

		resp, err := c.exchange(ctx, method, path, body, hedge)
		br.observe(err == nil, time.Now())
		if err == nil {
			if rerr := resp.asError(); rerr != nil && retryableStatus(resp.status) && attempt < c.cfg.RetryBudget {
				lastErr = rerr
				c.reg.AddUint("client/retries", 1)
				if serr := c.sleep(ctx, c.backoff(attempt, resp.header)); serr != nil {
					return nil, lastErr
				}
				continue
			}
			return resp, nil // success, or a terminal status the caller interprets
		}

		lastErr = err
		c.reg.AddUint("client/net_errors", 1)
		c.log.Debug("request failed", "method", method, "path", path, "attempt", attempt, "err", err)
		if attempt >= c.cfg.RetryBudget || ctx.Err() != nil {
			return nil, fmt.Errorf("client: %s %s failed after %d attempt(s): %w", method, path, attempt+1, err)
		}
		c.reg.AddUint("client/retries", 1)
		if serr := c.sleep(ctx, c.backoff(attempt, nil)); serr != nil {
			return nil, fmt.Errorf("client: %s %s failed after %d attempt(s): %w", method, path, attempt+1, err)
		}
	}
}

// parseRetryAfter decodes a Retry-After header value in either form RFC
// 9110 allows: delay-seconds ("7") or an HTTP-date ("Fri, 08 Aug 2026
// 10:00:00 GMT", evaluated against now and clamped at zero for dates
// already past). ok is false for absent or malformed values.
func parseRetryAfter(v string, now time.Time) (d time.Duration, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// backoff computes the wait before retry `attempt`: a server Retry-After
// hint when present — either RFC form, capped at RetryAfterMax so a
// bogus hint cannot stall a command past its deadline — else
// base·2^attempt (capped at 64x) plus up to +50% deterministic jitter.
func (c *Client) backoff(attempt int, hdr http.Header) time.Duration {
	if hdr != nil {
		if d, ok := parseRetryAfter(hdr.Get("Retry-After"), time.Now()); ok {
			c.reg.AddUint("client/retry_after_honored", 1)
			if c.cfg.RetryAfterMax > 0 && d > c.cfg.RetryAfterMax {
				c.reg.AddUint("client/retry_after_capped", 1)
				d = c.cfg.RetryAfterMax
			}
			return d
		}
	}
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	d := c.cfg.RetryBackoff << uint(shift)
	c.backoffMu.Lock()
	j := jitterFrac(c.backoffSrc, d/2)
	c.backoffMu.Unlock()
	return d + j
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) sleepUntil(ctx context.Context, at time.Time) error {
	return c.sleep(ctx, time.Until(at))
}

// newRequest builds one attempt's request, propagating the context
// deadline over the wire as X-Charon-Deadline.
func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base.String()+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(server.DeadlineHeader, dl.UTC().Format(time.RFC3339Nano))
		c.reg.AddUint("client/deadline_headers", 1)
	}
	return req, nil
}

// exchange performs one (possibly hedged) HTTP exchange and reads the
// complete body — a truncated body is a transport failure here, so the
// retry and breaker layers see through torn responses.
func (c *Client) exchange(ctx context.Context, method, path string, body []byte, hedge bool) (*response, error) {
	if !hedge || c.cfg.HedgeDelay <= 0 || method != http.MethodGet {
		return c.attempt(ctx, method, path, body)
	}

	type result struct {
		resp *response
		err  error
		idx  int
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func(idx int) {
		resp, err := c.attempt(hctx, method, path, body)
		ch <- result{resp, err, idx}
	}
	go launch(0)

	inFlight := 1
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	var firstFail *result
	for {
		select {
		case <-timer.C:
			if inFlight == 1 { // first request is slow: hedge it
				c.reg.AddUint("client/hedges", 1)
				inFlight++
				go launch(1)
			}
		case r := <-ch:
			if r.err == nil {
				if r.idx == 1 {
					c.reg.AddUint("client/hedge_wins", 1)
				}
				return r.resp, nil
			}
			inFlight--
			if firstFail == nil {
				firstFail = &r
			}
			if inFlight == 0 {
				// Both (or the only) attempt failed. If the hedge timer
				// never fired, fail with the sole error.
				return nil, firstFail.err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt is one raw HTTP round trip with a fully-read body.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (*response, error) {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading %s %s response: %w", method, path, err)
	}
	return &response{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// Submit posts a job. Safe under retries and ambiguous failures: the
// job id is a canonical content key, so a duplicated POST deduplicates
// server-side onto the same job.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (Job, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return Job{}, fmt.Errorf("client: encoding job spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", payload, false)
	if err != nil {
		return Job{}, err
	}
	if err := resp.asError(); err != nil {
		return Job{}, err
	}
	return decodeJob(resp.body)
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, true)
	if err != nil {
		return Job{}, err
	}
	if err := resp.asError(); err != nil {
		return Job{}, err
	}
	return decodeJob(resp.body)
}

// Wait polls the job until it reaches a terminal state or ctx expires.
// Transient polling failures do not abort the wait — the job keeps
// running server-side regardless, so the client keeps watching until
// its deadline says otherwise.
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	var lastErr error
	for {
		j, err := c.Job(ctx, id)
		if err == nil {
			if j.Terminal() {
				return j, nil
			}
			lastErr = nil
		} else {
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				return Job{}, err // the server answered: unknown job etc. — not transient
			}
			lastErr = err
		}
		if serr := c.sleep(ctx, c.cfg.PollInterval); serr != nil {
			if lastErr != nil {
				return Job{}, fmt.Errorf("client: wait %s: %w (last poll failure: %v)", id, serr, lastErr)
			}
			return Job{}, fmt.Errorf("client: wait %s: %w", id, serr)
		}
	}
}

// Result fetches a done job's rendered report — the exact bytes the
// server rendered through cli.RenderReports, byte-identical to the
// charonsim CLI's output for the same configuration. Returns ErrNotDone
// while the job is still queued or running.
func (c *Client) Result(ctx context.Context, id string) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, true)
	if err != nil {
		return "", err
	}
	if resp.status == http.StatusAccepted {
		return "", ErrNotDone
	}
	if err := resp.asError(); err != nil {
		return "", err
	}
	return string(resp.body), nil
}

// WaitResult waits for the job to finish and returns its report. A
// failed or canceled job returns the server's error.
func (c *Client) WaitResult(ctx context.Context, id string) (string, error) {
	for {
		j, err := c.Wait(ctx, id)
		if err != nil {
			return "", err
		}
		switch j.State {
		case server.StateDone:
			text, err := c.Result(ctx, id)
			if err == ErrNotDone {
				continue // raced a state change; re-observe
			}
			return text, err
		case server.StateFailed:
			return "", fmt.Errorf("client: job %s: %w: %s", id, ErrJobFailed, j.Error)
		default: // canceled
			return "", fmt.Errorf("client: job %s: %w: %s", id, ErrJobCanceled, j.Error)
		}
	}
}

// SweepChild is one grid point's status row inside a sweep.
type SweepChild struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Experiment string `json:"experiment"`
	Workloads  string `json:"workloads,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Sweep is the client-side view of a batch sweep (the server's sweep
// JSON): the aggregate state, a per-state census, and the ordered
// children.
type Sweep struct {
	ID        string         `json:"id"`
	State     string         `json:"state"`
	Total     int            `json:"total"`
	Counts    map[string]int `json:"counts"`
	Created   string         `json:"created,omitempty"`
	Recovered int            `json:"recovered,omitempty"`
	Children  []SweepChild   `json:"children"`
}

// Terminal reports whether every child has reached a final state.
func (s Sweep) Terminal() bool {
	return s.State == server.StateDone || s.State == server.StateFailed || s.State == server.StateCanceled
}

// SubmitSweep posts a parameter grid as one batch. Like Submit, it is
// safe under retries and ambiguous failures: the sweep id is the hash of
// the expanded grid, so a duplicated POST deduplicates server-side onto
// the same sweep (and through it onto every cached child result).
func (c *Client) SubmitSweep(ctx context.Context, spec server.SweepSpec) (Sweep, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return Sweep{}, fmt.Errorf("client: encoding sweep spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweeps", payload, false)
	if err != nil {
		return Sweep{}, err
	}
	if err := resp.asError(); err != nil {
		return Sweep{}, err
	}
	return decodeSweep(resp.body)
}

// SweepStatus fetches a sweep's aggregate status.
func (c *Client) SweepStatus(ctx context.Context, id string) (Sweep, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, true)
	if err != nil {
		return Sweep{}, err
	}
	if err := resp.asError(); err != nil {
		return Sweep{}, err
	}
	return decodeSweep(resp.body)
}

// SweepWait polls the sweep until every child reaches a terminal state
// or ctx expires. One aggregate poll covers the whole grid — the server
// folds all child states into a single answer with a position-aware
// Retry-After — and each poll rides the usual retry/breaker/hedging
// machinery. Transient polling failures do not abort the wait.
func (c *Client) SweepWait(ctx context.Context, id string) (Sweep, error) {
	var lastErr error
	for {
		sw, err := c.SweepStatus(ctx, id)
		if err == nil {
			if sw.Terminal() {
				return sw, nil
			}
			lastErr = nil
		} else {
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				return Sweep{}, err // the server answered: unknown sweep etc.
			}
			lastErr = err
		}
		if serr := c.sleep(ctx, c.cfg.PollInterval); serr != nil {
			if lastErr != nil {
				return Sweep{}, fmt.Errorf("client: sweep wait %s: %w (last poll failure: %v)", id, serr, lastErr)
			}
			return Sweep{}, fmt.Errorf("client: sweep wait %s: %w", id, serr)
		}
	}
}

// SweepResult fetches a completed sweep's combined report: every child's
// rendered bytes concatenated in grid order, byte-identical to running
// the equivalent charonsim CLI invocations locally. Returns ErrNotDone
// while any child is still pending.
func (c *Client) SweepResult(ctx context.Context, id string) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id)+"/result", nil, true)
	if err != nil {
		return "", err
	}
	if resp.status == http.StatusAccepted {
		return "", ErrNotDone
	}
	if err := resp.asError(); err != nil {
		return "", err
	}
	return string(resp.body), nil
}

// SweepWaitResult waits for the sweep to finish and returns its combined
// report. A failed or canceled sweep maps onto ErrJobFailed/ErrJobCanceled,
// so charonctl's exit contract treats sweeps and jobs uniformly.
func (c *Client) SweepWaitResult(ctx context.Context, id string) (string, error) {
	for {
		sw, err := c.SweepWait(ctx, id)
		if err != nil {
			return "", err
		}
		switch sw.State {
		case server.StateDone:
			text, err := c.SweepResult(ctx, id)
			if err == ErrNotDone {
				continue // raced a state change; re-observe
			}
			return text, err
		case server.StateFailed:
			return "", fmt.Errorf("client: sweep %s: %w: %d of %d children failed",
				id, ErrJobFailed, sw.Counts[server.StateFailed], sw.Total)
		default: // canceled
			return "", fmt.Errorf("client: sweep %s: %w: %d of %d children canceled",
				id, ErrJobCanceled, sw.Counts[server.StateCanceled], sw.Total)
		}
	}
}

func decodeSweep(data []byte) (Sweep, error) {
	var sw Sweep
	if err := json.Unmarshal(data, &sw); err != nil {
		return Sweep{}, fmt.Errorf("client: decoding sweep: %w (in %q)", err, data)
	}
	if sw.ID == "" {
		return Sweep{}, fmt.Errorf("client: sweep response missing id (in %q)", data)
	}
	return sw, nil
}

// Cancel requests cancellation and returns the job's resulting view.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, false)
	if err != nil {
		return Job{}, err
	}
	if err := resp.asError(); err != nil {
		return Job{}, err
	}
	return decodeJob(resp.body)
}

// ServerMetrics fetches the server's /v1/metrics document verbatim.
func (c *Client) ServerMetrics(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, true)
	if err != nil {
		return nil, err
	}
	if err := resp.asError(); err != nil {
		return nil, err
	}
	return resp.body, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil, true)
	if err != nil {
		return err
	}
	return resp.asError()
}

func decodeJob(data []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, fmt.Errorf("client: decoding job: %w (in %q)", err, data)
	}
	if j.ID == "" {
		return Job{}, fmt.Errorf("client: job response missing id (in %q)", data)
	}
	return j, nil
}

// MetricsSnapshot writes the client-side counter snapshot as JSON —
// charonctl's -client-metrics artifact.
func (c *Client) MetricsSnapshot(w io.Writer) error {
	c.breakerMu.Lock()
	for host, b := range c.breakers {
		c.reg.SetMax("client/breaker_state/"+host, b.stateGauge())
	}
	c.breakerMu.Unlock()
	return c.reg.Snapshot().WriteJSON(w)
}
