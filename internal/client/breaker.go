package client

import (
	"errors"
	"sync"
	"time"

	"charonsim/internal/fault"
	"charonsim/internal/metrics"
)

// ErrBreakerOpen is returned when the per-host circuit breaker is open
// and the request was rejected without touching the network. The breaker
// half-opens after its cooldown and lets a single probe through; callers
// that can wait should retry after the cooldown.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Breaker states, exported in the client metrics snapshot
// (client/breaker_state gauge: 0 closed, 1 half-open, 2 open).
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is a per-host closed→open→half-open circuit breaker with
// deterministic, seedable probe scheduling: after Threshold consecutive
// failures it opens; Cooldown (plus up to +50% jitter drawn from the
// client's seeded splitmix64 stream, so two clients with different seeds
// desynchronize their probes while one client reproduces its schedule
// exactly) later it half-opens and admits a single probe; the probe's
// outcome closes it or re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	src       *fault.Source // guarded by mu; deterministic probe jitter
	reg       *metrics.Registry

	mu        sync.Mutex
	state     int
	fails     int
	probing   bool // half-open with the probe in flight
	nextProbe time.Time
}

func newBreaker(threshold int, cooldown time.Duration, src *fault.Source, reg *metrics.Registry) *breaker {
	if threshold <= 0 {
		return nil // disabled: a nil *breaker admits everything
	}
	return &breaker{threshold: threshold, cooldown: cooldown, src: src, reg: reg}
}

// allow reports whether a request may proceed now; when it may not,
// retryAt is the deterministic instant the next probe will be admitted.
func (b *breaker) allow(now time.Time) (ok bool, retryAt time.Time) {
	if b == nil {
		return true, time.Time{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, time.Time{}
	case breakerOpen:
		if now.Before(b.nextProbe) {
			b.reg.AddUint("client/breaker_rejected", 1)
			return false, b.nextProbe
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.reg.AddUint("client/breaker_probes", 1)
		return true, time.Time{}
	default: // half-open
		if b.probing {
			b.reg.AddUint("client/breaker_rejected", 1)
			return false, b.nextProbe
		}
		b.probing = true
		b.reg.AddUint("client/breaker_probes", 1)
		return true, time.Time{}
	}
}

// observe folds one request outcome into the breaker state. ok means the
// host answered with a complete HTTP response (any status — a 429 or 400
// proves the host is alive); !ok means a transport-level failure
// (connect error, reset, truncated body).
func (b *breaker) observe(ok bool, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case ok && b.state == breakerClosed:
		b.fails = 0
	case ok: // half-open probe succeeded (or a straggler from before the trip)
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		b.reg.AddUint("client/breaker_closed", 1)
	case b.state == breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip(now)
			b.reg.AddUint("client/breaker_opened", 1)
		}
	case b.state == breakerHalfOpen:
		b.trip(now)
		b.reg.AddUint("client/breaker_reopened", 1)
	default: // already open; a straggler failure changes nothing
	}
}

// trip moves to open and schedules the next probe: cooldown plus up to
// +50% deterministic jitter. Callers hold b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.probing = false
	b.fails = 0
	b.nextProbe = now.Add(b.cooldown + jitterFrac(b.src, b.cooldown/2))
}

// stateGauge reports the current state for the metrics snapshot.
func (b *breaker) stateGauge() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return 2
	case breakerHalfOpen:
		return 1
	}
	return 0
}

// jitterFrac draws a deterministic duration in [0, max) from src (zero
// when src is nil or max is non-positive).
func jitterFrac(src *fault.Source, max time.Duration) time.Duration {
	if src == nil || max <= 0 {
		return 0
	}
	// Frac is in [0, 1); Hit(p) compares the same construction against p,
	// so drawing via Hit-style fractions keeps one stream shape.
	return time.Duration(src.Frac() * float64(max))
}
