package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"charonsim/internal/fault"
	"charonsim/internal/metrics"
	"charonsim/internal/server"
)

func newTestClient(t *testing.T, baseURL string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:      baseURL,
		RetryBackoff: time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func counter(c *Client, name string) float64 {
	return c.Metrics().Counter(name)
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, u := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := New(Config{BaseURL: u}); err == nil {
			t.Errorf("New accepted base URL %q", u)
		}
	}
}

// TestRetryOn503HonorsRetryAfter: a 503 with a Retry-After hint is
// retried after (at least) the hinted delay, and the retry succeeds.
func TestRetryOn503HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"id":"abc","state":"done","experiment":"fig12"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	start := time.Now()
	j, err := c.Job(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != server.StateDone {
		t.Fatalf("state = %q", j.State)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if d := time.Since(start); d < time.Second {
		t.Fatalf("retry fired after %v, before the 1s Retry-After hint", d)
	}
	if counter(c, "client/retry_after_honored") != 1 {
		t.Fatal("retry_after_honored counter not bumped")
	}
	if counter(c, "client/retries") != 1 {
		t.Fatal("retries counter not bumped")
	}
}

// TestRetryBudgetExhausted: a persistently failing endpoint gives up
// after RetryBudget extra attempts and surfaces the terminal error.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, `{"error":"bad hop"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, func(cfg *Config) { cfg.RetryBudget = 2 })
	_, err := c.Job(context.Background(), "abc")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
	if got := calls.Load(); got != 3 { // 1 initial + 2 retries
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestNonRetryableStatusIsTerminal: a 404 comes back immediately as an
// APIError without burning the retry budget.
func TestNonRetryableStatusIsTerminal(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	_, err := c.Job(context.Background(), "nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if !strings.Contains(apiErr.Message, "unknown job") {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried (%d calls)", calls.Load())
	}
}

// TestDeadlineHeaderPropagated: a context deadline travels as
// X-Charon-Deadline, parseable and close to the context's own deadline.
func TestDeadlineHeaderPropagated(t *testing.T) {
	var got atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(server.DeadlineHeader))
		fmt.Fprint(w, `{"id":"abc","state":"done","experiment":"fig12"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Job(ctx, "abc"); err != nil {
		t.Fatal(err)
	}
	raw, _ := got.Load().(string)
	if raw == "" {
		t.Fatalf("no %s header sent", server.DeadlineHeader)
	}
	sent, err := time.Parse(time.RFC3339Nano, raw)
	if err != nil {
		t.Fatalf("header %q is not RFC3339Nano: %v", raw, err)
	}
	ctxDl, _ := ctx.Deadline()
	if diff := sent.Sub(ctxDl); diff < -time.Second || diff > time.Second {
		t.Fatalf("header deadline %v is %v away from the context deadline %v", sent, diff, ctxDl)
	}
	if counter(c, "client/deadline_headers") == 0 {
		t.Fatal("deadline_headers counter not bumped")
	}

	// And no header without a context deadline.
	got.Store("")
	if _, err := c.Job(context.Background(), "abc"); err != nil {
		t.Fatal(err)
	}
	if raw, _ := got.Load().(string); raw != "" {
		t.Fatalf("deadline header %q sent without a context deadline", raw)
	}
}

// TestHedgeWinsOnSlowFirstRequest: the first GET stalls past HedgeDelay,
// the hedge races it, and the hedge's fast answer is returned.
func TestHedgeWinsOnSlowFirstRequest(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first request hangs until the test ends
		}
		fmt.Fprint(w, `{"id":"abc","state":"done","experiment":"fig12"}`)
	}))
	defer hs.Close()
	defer close(release)

	c := newTestClient(t, hs.URL, func(cfg *Config) { cfg.HedgeDelay = 20 * time.Millisecond })
	start := time.Now()
	j, err := c.Job(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != server.StateDone {
		t.Fatalf("state = %q", j.State)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hedged GET took %v; the hedge did not race the stalled first request", d)
	}
	if counter(c, "client/hedges") != 1 || counter(c, "client/hedge_wins") != 1 {
		t.Fatalf("hedges=%v hedge_wins=%v, want 1/1",
			counter(c, "client/hedges"), counter(c, "client/hedge_wins"))
	}
}

// TestSubmitNeverHedges: POSTs must not hedge even with HedgeDelay
// armed — duplicate submissions are retry-safe but hedging them would
// double write-path load for no latency win.
func TestSubmitNeverHedges(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // well past HedgeDelay
		fmt.Fprint(w, `{"id":"abc","state":"queued","experiment":"fig12"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, func(cfg *Config) { cfg.HedgeDelay = 5 * time.Millisecond })
	if _, err := c.Submit(context.Background(), server.JobSpec{Experiment: "fig12"}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("POST hit the server %d times, want 1", got)
	}
	if counter(c, "client/hedges") != 0 {
		t.Fatal("a POST was hedged")
	}
}

// TestBreakerOpensAndRecovers: consecutive transport failures open the
// breaker (fast-fail without touching the network); once the backend
// heals and the cooldown passes, a half-open probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var calls atomic.Int32
	healthy := atomic.Bool{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			// Transport-level failure: kill the connection mid-response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		fmt.Fprint(w, `{"id":"abc","state":"done","experiment":"fig12"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, func(cfg *Config) {
		cfg.RetryBudget = -1 // isolate the breaker from the retry loop
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = 30 * time.Millisecond
	})

	// Three straight transport failures trip the breaker...
	for i := 0; i < 3; i++ {
		if _, err := c.Job(context.Background(), "abc"); err == nil {
			t.Fatalf("call %d against a dead backend succeeded", i)
		}
	}
	if counter(c, "client/breaker_opened") != 1 {
		t.Fatalf("breaker_opened = %v, want 1", counter(c, "client/breaker_opened"))
	}

	// ...and the next call fast-fails without a network attempt.
	before := calls.Load()
	_, err := c.Job(context.Background(), "abc")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}

	// Heal the backend, wait out cooldown (+50% max jitter), and the
	// half-open probe closes the breaker.
	healthy.Store(true)
	time.Sleep(50 * time.Millisecond)
	j, err := c.Job(context.Background(), "abc")
	if err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if j.State != server.StateDone {
		t.Fatalf("state = %q", j.State)
	}
	if counter(c, "client/breaker_probes") != 1 || counter(c, "client/breaker_closed") != 1 {
		t.Fatalf("probes=%v closed=%v, want 1/1",
			counter(c, "client/breaker_probes"), counter(c, "client/breaker_closed"))
	}
}

// TestBreakerProbeScheduleDeterministic: the same seed produces the
// same probe instant; different seeds desynchronize.
func TestBreakerProbeScheduleDeterministic(t *testing.T) {
	probeAt := func(seed int64) time.Time {
		b := newBreaker(1, time.Second, fault.NewSource("test/breaker", seed), metrics.NewRegistry())
		now := time.Unix(1700000000, 0)
		b.observe(false, now) // trips
		_, at := b.allow(now)
		return at
	}
	a, b := probeAt(11), probeAt(11)
	if !a.Equal(b) {
		t.Fatalf("same seed gave probe instants %v and %v", a, b)
	}
	c := probeAt(12)
	if a.Equal(c) {
		t.Fatalf("seeds 11 and 12 gave the identical probe instant %v", a)
	}
	base := time.Unix(1700000000, 0).Add(time.Second)
	for _, at := range []time.Time{a, c} {
		if at.Before(base) || at.After(base.Add(500*time.Millisecond)) {
			t.Fatalf("probe %v outside [cooldown, cooldown+50%%) from %v", at, base)
		}
	}
}

// TestWaitSurvivesTransientPollFailures: Wait keeps polling through a
// flaky stretch and still observes the terminal state.
func TestWaitSurvivesTransientPollFailures(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n := calls.Add(1); {
		case n%2 == 1 && n < 6: // every other early poll dies mid-flight
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
		case n < 8:
			fmt.Fprint(w, `{"id":"abc","state":"running","experiment":"fig12"}`)
		default:
			fmt.Fprint(w, `{"id":"abc","state":"done","experiment":"fig12"}`)
		}
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, func(cfg *Config) { cfg.RetryBudget = -1 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, err := c.Wait(ctx, "abc")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != server.StateDone {
		t.Fatalf("state = %q", j.State)
	}
}

// TestResultNotDone: a 202 from the result endpoint maps to ErrNotDone.
func TestResultNotDone(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"abc","state":"running","experiment":"fig12"}`)
	}))
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	if _, err := c.Result(context.Background(), "abc"); err != ErrNotDone {
		t.Fatalf("err = %v, want ErrNotDone", err)
	}
}

// TestEndToEndAgainstRealServer: submit → wait → result against a real
// in-process charond, through the full client stack.
func TestEndToEndAgainstRealServer(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	j, err := c.Submit(ctx, server.JobSpec{Experiment: "table4"})
	if err != nil {
		t.Fatal(err)
	}
	text, err := c.WaitResult(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty report for table4")
	}
	// The report is the cached canonical bytes: fetching again is
	// byte-identical.
	again, err := c.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again != text {
		t.Fatal("re-fetched result differs from the first fetch")
	}
	// The deadline header made it into the job view.
	got, err := c.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deadline == "" {
		t.Fatal("job view has no effective deadline despite the client's context deadline")
	}
	var buf strings.Builder
	if err := c.MetricsSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v\n%s", err, buf.String())
	}
}
