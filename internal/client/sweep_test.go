package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"charonsim/internal/server"
)

// TestSweepEndToEndAgainstRealServer drives the typed sweep calls
// against a real in-process charond: submit a grid, wait, fetch the
// combined report, and confirm a duplicate submission lands on the same
// sweep.
func TestSweepEndToEndAgainstRealServer(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := newTestClient(t, hs.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	spec := server.SweepSpec{Experiments: []string{"table3", "table4"}}
	sw, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Total != 2 || len(sw.Children) != 2 {
		t.Fatalf("sweep total = %d children = %d, want 2", sw.Total, len(sw.Children))
	}
	text, err := c.SweepWaitResult(ctx, sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty combined report")
	}
	// The combined bytes are the children's reports in grid order.
	first, err := c.Result(ctx, sw.Children[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, first) {
		t.Fatal("combined report does not start with the first child's bytes")
	}

	dup, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != sw.ID {
		t.Fatalf("duplicate submission created sweep %q, want %q", dup.ID, sw.ID)
	}
}

// TestCtlSweep covers the charonctl sweep subcommand: grid flags, the
// JSON view without -wait, and verbatim combined-report bytes with it.
func TestCtlSweep(t *testing.T) {
	const combined = "== a ==\nr1\n== b ==\nr2\n"
	var gotSpec server.SweepSpec
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps":
			_ = json.NewDecoder(r.Body).Decode(&gotSpec)
			writeJSONStatus(w, 202, map[string]any{"id": "s1", "state": "queued", "total": 4})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/sweeps/s1":
			writeJSONStatus(w, 200, map[string]any{"id": "s1", "state": "done", "total": 4,
				"counts": map[string]int{"done": 4}})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/sweeps/s1/result":
			fmt.Fprint(w, combined)
		default:
			writeJSONStatus(w, 404, map[string]any{"error": "unknown route"})
		}
	}))
	defer hs.Close()

	code, out, errOut := runCtl(t, "-server", hs.URL, "sweep",
		"-experiments", "fig12,fig13", "-workloads", "BS,KM",
		"-heap-factors", "1.2,1.5", "-threads", "4,8", "-wait")
	if code != 0 || out != combined {
		t.Fatalf("sweep -wait: code=%d out=%q err=%q", code, out, errOut)
	}
	if len(gotSpec.Experiments) != 2 || len(gotSpec.Workloads) != 2 ||
		len(gotSpec.HeapFactors) != 2 || len(gotSpec.Threads) != 2 {
		t.Fatalf("decoded spec = %+v, want 2 entries per axis", gotSpec)
	}

	code, out, _ = runCtl(t, "-server", hs.URL, "sweep", "-experiments", "fig12")
	var sw Sweep
	if code != 0 || json.Unmarshal([]byte(out), &sw) != nil || sw.ID != "s1" {
		t.Fatalf("sweep without -wait: code=%d out=%q", code, out)
	}

	// Usage errors exit 2.
	if code, _, _ := runCtl(t, "-server", hs.URL, "sweep"); code != 2 {
		t.Fatalf("sweep without -experiments exited %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "-server", hs.URL, "sweep", "-experiments", "fig12", "-heap-factors", "x"); code != 2 {
		t.Fatalf("sweep with bad -heap-factors exited %d, want 2", code)
	}
}

// TestCtlSweepFailureExitsThree: a sweep whose children failed is exit 3
// under the same contract as failed jobs.
func TestCtlSweepFailureExitsThree(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps":
			writeJSONStatus(w, 202, map[string]any{"id": "s1", "state": "queued", "total": 2})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/sweeps/s1":
			writeJSONStatus(w, 200, map[string]any{"id": "s1", "state": "failed", "total": 2,
				"counts": map[string]int{"failed": 1, "done": 1}})
		default:
			writeJSONStatus(w, 404, map[string]any{"error": "unknown route"})
		}
	}))
	defer hs.Close()

	code, _, errOut := runCtl(t, "-server", hs.URL, "sweep", "-experiments", "fig12,fig13", "-wait")
	if code != 3 {
		t.Fatalf("failed sweep exited %d (stderr %q), want 3", code, errOut)
	}
	if !strings.Contains(errOut, "1 of 2 children failed") {
		t.Fatalf("stderr %q does not report the failed-child count", errOut)
	}
}
