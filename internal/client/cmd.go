package client

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"charonsim/internal/cli"
	"charonsim/internal/fault/netfault"
	"charonsim/internal/server"
)

// Main executes the charonctl command with the given arguments
// (excluding the program name) and returns the process exit code:
//
//	0  success
//	1  runtime failure (network, server error, proxy crash)
//	2  usage error (unknown command, flag parse failure, bad config)
//	3  the job itself reached a failed or canceled terminal state —
//	   the network edge worked; the simulation did not
//
// charonctl is the network-edge counterpart of the charonsim CLI: it
// talks to a charond instance through the resilient client (retries,
// hedged polling, per-host circuit breaker, deadline propagation) and
// prints the server-rendered report verbatim, so bytes fetched over a
// faulty network are identical to a local charonsim run.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "charond base URL")
		timeout   = fs.Duration("timeout", 0, "overall deadline for the command; propagated to the server as "+server.DeadlineHeader+" so it bounds job execution too (0 = none)")
		retries   = fs.Int("retries", 4, "retry budget per request beyond the first attempt (0 disables)")
		backoff   = fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt, plus seeded jitter; server Retry-After hints override it)")
		hedge     = fs.Duration("hedge", 0, "hedged-GET delay: issue a racing duplicate of an idempotent GET that has not answered after this long (0 disables)")
		brkN      = fs.Int("breaker-threshold", 5, "consecutive transport failures that open the per-host circuit breaker (0 disables)")
		brkCool   = fs.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe (plus seeded jitter)")
		seed      = fs.Int64("seed", 0, "seed for the deterministic backoff/probe jitter streams")
		poll      = fs.Duration("poll", 250*time.Millisecond, "status poll interval while waiting (server Retry-After hints override it)")
		raMax     = fs.Duration("retry-after-max", 30*time.Second, "cap on honored server Retry-After hints, either RFC form (0 = no cap)")
		noKeep    = fs.Bool("no-keepalive", false, "open a fresh connection per request; with a netfault proxy in the path every request then redraws the per-connection fault plan")
		metricsTo = fs.String("client-metrics", "", "after the command, write the client-side counter snapshot (retries, hedges, breaker transitions) as JSON to this path (\"-\" = stderr)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: charonctl [flags] <command> [command flags]

Commands:
  submit   submit a job (flags mirror the job spec); -wait blocks for the report
  sweep    submit a parameter grid as one batch; -wait blocks for the combined report
  wait     wait for a job id to reach a terminal state
  result   fetch a finished job's rendered report (CLI byte-identical)
  cancel   cancel a job
  metrics  fetch the server's /v1/metrics document
  proxy    run the deterministic network-fault proxy (netfault) in front of a target

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	// The proxy subcommand stands alone: it is the fault side of the
	// chaos harness and needs no API client.
	if cmd == "proxy" {
		return proxyMain(rest, stdout, stderr)
	}

	brkThreshold := *brkN
	if brkThreshold == 0 {
		brkThreshold = -1 // Config: 0 means default, negative disables
	}
	retryBudget := *retries
	if retryBudget == 0 {
		retryBudget = -1
	}
	retryAfterMax := *raMax
	if retryAfterMax == 0 {
		retryAfterMax = -1 // Config: 0 means default, negative disables
	}
	var hc *http.Client
	if *noKeep {
		hc = &http.Client{
			Timeout:   30 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
	}
	c, err := New(Config{
		BaseURL:          *serverURL,
		HTTPClient:       hc,
		RetryBudget:      retryBudget,
		RetryBackoff:     *backoff,
		HedgeDelay:       *hedge,
		BreakerThreshold: brkThreshold,
		BreakerCooldown:  *brkCool,
		PollInterval:     *poll,
		RetryAfterMax:    retryAfterMax,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	code := runCommand(ctx, c, cmd, rest, stdout, stderr)
	if *metricsTo != "" {
		if err := writeClientMetrics(c, *metricsTo, stderr); err != nil {
			fmt.Fprintln(stderr, "charonctl: writing client metrics:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

func runCommand(ctx context.Context, c *Client, cmd string, args []string, stdout, stderr io.Writer) int {
	switch cmd {
	case "submit":
		return cmdSubmit(ctx, c, args, stdout, stderr)
	case "sweep":
		return cmdSweep(ctx, c, args, stdout, stderr)
	case "wait":
		return cmdWait(ctx, c, args, stdout, stderr)
	case "result":
		return cmdResult(ctx, c, args, stdout, stderr)
	case "cancel":
		return cmdCancel(ctx, c, args, stdout, stderr)
	case "metrics":
		return cmdMetrics(ctx, c, args, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "charonctl: unknown command %q (have submit, sweep, wait, result, cancel, metrics, proxy)\n", cmd)
		return 2
	}
}

func cmdSubmit(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment  = fs.String("experiment", "", "experiment id, or \"all\" (required)")
		threads     = fs.Int("threads", 0, "mutator thread count (0 = server default)")
		heapFactor  = fs.Float64("heap-factor", 0, "heap size factor (0 = server default)")
		workloads   = fs.String("workloads", "", "comma-separated workload subset (empty = all)")
		parallelism = fs.Int("parallelism", 0, "per-job simulation parallelism (0 = server default)")
		faultRate   = fs.Float64("fault-rate", 0, "simulated-hardware fault rate")
		faultSeed   = fs.Int64("fault-seed", 0, "simulated-hardware fault seed")
		runTimeout  = fs.Duration("run-timeout", 0, "per-unit run timeout (0 = server default)")
		wait        = fs.Bool("wait", false, "block until the job finishes and print its report to stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *experiment == "" {
		fmt.Fprintln(stderr, "charonctl submit: -experiment is required")
		return 2
	}
	spec := server.JobSpec{
		Experiment: *experiment,
		Threads:    *threads, HeapFactor: *heapFactor,
		Parallelism: *parallelism,
		FaultRate:   *faultRate, FaultSeed: *faultSeed,
	}
	if *workloads != "" {
		spec.Workloads = strings.Split(*workloads, ",")
	}
	if *runTimeout > 0 {
		spec.RunTimeout = runTimeout.String()
	}

	j, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl submit:", err)
		return 1
	}
	if !*wait {
		printJob(stdout, j)
		return 0
	}
	text, err := c.WaitResult(ctx, j.ID)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl submit:", err)
		return jobExitCode(err)
	}
	io.WriteString(stdout, text)
	return 0
}

func cmdSweep(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonctl sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiments = fs.String("experiments", "", "comma-separated experiment ids, or \"all\" (required); one grid axis")
		workloads   = fs.String("workloads", "", "comma-separated workload codes fanned one child per code (empty = each child runs the experiment's default workload set)")
		heapFactors = fs.String("heap-factors", "", "comma-separated heap factors fanned one child per value (empty = server default)")
		threadList  = fs.String("threads", "", "comma-separated GC thread counts fanned one child per value (empty = server default)")
		parallelism = fs.Int("parallelism", 0, "per-job simulation parallelism, shared by every child (0 = server default)")
		faultRate   = fs.Float64("fault-rate", 0, "simulated-hardware fault rate, shared by every child")
		faultSeed   = fs.Int64("fault-seed", 0, "simulated-hardware fault seed, shared by every child")
		runTimeout  = fs.Duration("run-timeout", 0, "per-unit run timeout, shared by every child (0 = server default)")
		wait        = fs.Bool("wait", false, "block until every child finishes and print the combined report to stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *experiments == "" {
		fmt.Fprintln(stderr, "charonctl sweep: -experiments is required")
		return 2
	}
	spec := server.SweepSpec{
		Experiments: cli.CleanWorkloads(strings.Split(*experiments, ",")),
		Parallelism: *parallelism,
		FaultRate:   *faultRate, FaultSeed: *faultSeed,
	}
	if *workloads != "" {
		spec.Workloads = strings.Split(*workloads, ",")
	}
	if *heapFactors != "" {
		factors, err := cli.SplitFloats(*heapFactors)
		if err != nil {
			fmt.Fprintln(stderr, "charonctl sweep: -heap-factors:", err)
			return 2
		}
		spec.HeapFactors = factors
	}
	if *threadList != "" {
		threads, err := cli.SplitInts(*threadList)
		if err != nil {
			fmt.Fprintln(stderr, "charonctl sweep: -threads:", err)
			return 2
		}
		spec.Threads = threads
	}
	if *runTimeout > 0 {
		spec.RunTimeout = runTimeout.String()
	}

	sw, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl sweep:", err)
		return 1
	}
	if !*wait {
		printSweep(stdout, sw)
		return 0
	}
	text, err := c.SweepWaitResult(ctx, sw.ID)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl sweep:", err)
		return jobExitCode(err)
	}
	io.WriteString(stdout, text)
	return 0
}

func cmdWait(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	id, code := oneJobID("wait", args, stderr)
	if code >= 0 {
		return code
	}
	j, err := c.Wait(ctx, id)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl wait:", err)
		return 1
	}
	printJob(stdout, j)
	if j.State != server.StateDone {
		return 3
	}
	return 0
}

func cmdResult(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	id, code := oneJobID("result", args, stderr)
	if code >= 0 {
		return code
	}
	text, err := c.Result(ctx, id)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl result:", err)
		return jobExitCode(err)
	}
	io.WriteString(stdout, text)
	return 0
}

func cmdCancel(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	id, code := oneJobID("cancel", args, stderr)
	if code >= 0 {
		return code
	}
	j, err := c.Cancel(ctx, id)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl cancel:", err)
		return 1
	}
	printJob(stdout, j)
	return 0
}

func cmdMetrics(ctx context.Context, c *Client, args []string, stdout, stderr io.Writer) int {
	if len(args) != 0 {
		fmt.Fprintln(stderr, "charonctl metrics: takes no arguments")
		return 2
	}
	body, err := c.ServerMetrics(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl metrics:", err)
		return 1
	}
	stdout.Write(body)
	return 0
}

// oneJobID parses the single positional job-id argument; a non-negative
// code means "return this immediately".
func oneJobID(cmd string, args []string, stderr io.Writer) (string, int) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(stderr, "usage: charonctl %s <job-id>\n", cmd)
		return "", 2
	}
	return args[0], -1
}

// jobExitCode distinguishes "the job failed" (3) from "the network
// failed" (1): a complete server answer reporting a failed/canceled/
// unfinished job is the former, a transport-level error the latter.
func jobExitCode(err error) int {
	var apiErr *APIError
	if errors.As(err, &apiErr) || errors.Is(err, ErrJobFailed) || errors.Is(err, ErrJobCanceled) {
		return 3
	}
	return 1
}

func printJob(w io.Writer, j Job) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(j)
}

func printSweep(w io.Writer, sw Sweep) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sw)
}

func writeClientMetrics(c *Client, path string, stderr io.Writer) error {
	if path == "-" {
		return c.MetricsSnapshot(stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.MetricsSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// proxyMain runs the netfault TCP proxy as a process: the chaos
// harness's network side. It prints one parseable stdout line with the
// bound address, serves until SIGINT/SIGTERM, and on shutdown dumps the
// per-connection fault log (one line per injected fault, in accept
// order) to -fault-log for determinism checks.
func proxyMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charonctl proxy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port, printed on stdout)")
		target   = fs.String("target", "", "host:port to forward to (required)")
		rate     = fs.Float64("net-rate", 0, "master network-fault rate in [0, 1); per-class rates derive from it")
		seedF    = fs.Int64("net-seed", 0, "deterministic fault-pattern seed")
		delay    = fs.Duration("net-delay", 0, "injected one-way latency for delay-planned connections (0 = class default)")
		faultLog = fs.String("fault-log", "", "append per-connection fault events to this file as they are injected")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *target == "" {
		fmt.Fprintln(stderr, "charonctl proxy: -target is required")
		return 2
	}
	var logW io.Writer
	if *faultLog != "" {
		f, err := os.OpenFile(*faultLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "charonctl proxy:", err)
			return 2
		}
		defer f.Close()
		logW = f
	}
	p, err := netfault.New(*listen, *target, netfault.Config{
		Rate: *rate, Seed: *seedF, Delay: *delay,
	}, logW)
	if err != nil {
		fmt.Fprintln(stderr, "charonctl proxy:", err)
		return 2
	}
	defer p.Close()
	fmt.Fprintf(stdout, "netfault proxy listening on %s -> %s\n", p.Addr(), *target)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	counts := p.Counts()
	fmt.Fprintf(stderr, "charonctl proxy: shutting down; injected=%d counts=%v\n", p.Injected(), counts)
	return 0
}
