package client

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"seconds", "7", 7 * time.Second, true},
		{"seconds zero", "0", 0, true},
		{"seconds padded", "  3 ", 3 * time.Second, true},
		{"seconds negative", "-1", 0, false},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"rfc850 date", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second, true},
		{"garbage", "soon", 0, false},
		{"float", "1.5", 0, false},
	}
	for _, tc := range cases {
		d, ok := parseRetryAfter(tc.in, now)
		if d != tc.want || ok != tc.ok {
			t.Errorf("%s: parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.name, tc.in, d, ok, tc.want, tc.ok)
		}
	}
}

func TestBackoffHonorsBothRetryAfterForms(t *testing.T) {
	c, err := New(Config{BaseURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}

	hdr := http.Header{}
	hdr.Set("Retry-After", "2")
	if d := c.backoff(0, hdr); d != 2*time.Second {
		t.Fatalf("integer-seconds hint = %v, want 2s", d)
	}

	// The HTTP-date form is evaluated against the wall clock, so accept a
	// small window below the nominal delta.
	hdr.Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
	if d := c.backoff(0, hdr); d < 8*time.Second || d > 10*time.Second {
		t.Fatalf("HTTP-date hint = %v, want ~10s", d)
	}
	if n := c.Metrics().Counter("client/retry_after_honored"); n != 2 {
		t.Fatalf("retry_after_honored = %v, want 2", n)
	}

	// A malformed hint falls back to exponential backoff, not zero.
	hdr.Set("Retry-After", "whenever")
	if d := c.backoff(0, hdr); d < c.cfg.RetryBackoff {
		t.Fatalf("malformed hint backoff = %v, want >= base %v", d, c.cfg.RetryBackoff)
	}
}

func TestBackoffCapsRetryAfterHint(t *testing.T) {
	c, err := New(Config{BaseURL: "http://127.0.0.1:1", RetryAfterMax: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hdr := http.Header{}
	hdr.Set("Retry-After", "3600") // a bogus hour must not stall the command
	if d := c.backoff(0, hdr); d != 2*time.Second {
		t.Fatalf("capped hint = %v, want 2s", d)
	}
	hdr.Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
	if d := c.backoff(0, hdr); d != 2*time.Second {
		t.Fatalf("capped HTTP-date hint = %v, want 2s", d)
	}
	if n := c.Metrics().Counter("client/retry_after_capped"); n != 2 {
		t.Fatalf("retry_after_capped = %v, want 2", n)
	}
	if n := c.Metrics().Counter("client/retry_after_honored"); n != 2 {
		t.Fatalf("retry_after_honored = %v, want 2", n)
	}

	// Negative disables the cap per the repo's knob convention.
	u, err := New(Config{BaseURL: "http://127.0.0.1:1", RetryAfterMax: -1})
	if err != nil {
		t.Fatal(err)
	}
	hdr.Set("Retry-After", "3600")
	if d := u.backoff(0, hdr); d != time.Hour {
		t.Fatalf("uncapped hint = %v, want 1h", d)
	}

	// The default cap (30s) applies when the knob is left zero.
	if d := c.backoff(0, nil); d <= 0 {
		t.Fatalf("no-header backoff = %v, want > 0", d)
	}
	def, err := New(Config{BaseURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	hdr.Set("Retry-After", "3600")
	if d := def.backoff(0, hdr); d != 30*time.Second {
		t.Fatalf("default-capped hint = %v, want 30s", d)
	}
}

func TestClientBackoffShiftCap(t *testing.T) {
	c, err := New(Config{BaseURL: "http://127.0.0.1:1", RetryBackoff: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// base·2^6 = 6.4s is the ceiling; +50% jitter bounds the whole wait
	// at 9.6s for any attempt count, with no overflow to zero/negative.
	for _, attempt := range []int{6, 7, 20, 64, 1000} {
		d := c.backoff(attempt, nil)
		if d <= 0 {
			t.Fatalf("attempt %d: backoff %v <= 0", attempt, d)
		}
		if d > 9600*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v escaped the 64x cap", attempt, d)
		}
		if d < 6400*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v below the saturated base 6.4s", attempt, d)
		}
	}
}
