package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"charonsim/internal/server"
)

func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCtlHelpExitsZero(t *testing.T) {
	for _, args := range [][]string{
		{"-h"}, {"-help"},
		{"submit", "-h"},
		{"proxy", "-h"},
	} {
		code, _, errOut := runCtl(t, args...)
		if code != 0 {
			t.Errorf("charonctl %v exited %d, want 0\n%s", args, code, errOut)
		}
		if errOut == "" {
			t.Errorf("charonctl %v printed no usage text", args)
		}
	}
}

func TestCtlUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                              // no command
		{"-definitely-not-a-flag"},      // bad global flag
		{"frobnicate"},                  // unknown command
		{"submit"},                      // missing -experiment
		{"wait"},                        // missing job id
		{"result", "a", "b"},            // too many args
		{"metrics", "extra"},            // metrics takes none
		{"proxy"},                       // missing -target
		{"-server", "::bad::", "wait", "x"}, // unusable base URL
	} {
		code, _, _ := runCtl(t, args...)
		if code != 2 {
			t.Errorf("charonctl %v exited %d, want 2", args, code)
		}
	}
}

// TestCtlSubmitWaitResultCancelMetrics drives every API subcommand
// against a stub charond and checks output and exit codes.
func TestCtlSubmitWaitResultCancelMetrics(t *testing.T) {
	const report = "w/BS pause 1.23ms\n"
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSONStatus(w, 202, map[string]any{"id": "j1", "state": "queued", "experiment": "fig12"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1":
			writeJSONStatus(w, 200, map[string]any{"id": "j1", "state": "done", "experiment": "fig12"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1/result":
			fmt.Fprint(w, report)
		case r.Method == http.MethodDelete && r.URL.Path == "/v1/jobs/j1":
			writeJSONStatus(w, 200, map[string]any{"id": "j1", "state": "canceled", "experiment": "fig12"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/metrics":
			fmt.Fprint(w, `{"counters":{"server/jobs_completed":1}}`)
		default:
			writeJSONStatus(w, 404, map[string]any{"error": "unknown route"})
		}
	}))
	defer hs.Close()

	// submit -wait prints the report bytes verbatim.
	code, out, errOut := runCtl(t, "-server", hs.URL, "submit", "-experiment", "fig12", "-wait")
	if code != 0 || out != report {
		t.Fatalf("submit -wait: code=%d out=%q err=%q", code, out, errOut)
	}

	// submit without -wait prints the job view.
	code, out, _ = runCtl(t, "-server", hs.URL, "submit", "-experiment", "fig12")
	var j Job
	if code != 0 || json.Unmarshal([]byte(out), &j) != nil || j.ID != "j1" {
		t.Fatalf("submit: code=%d out=%q", code, out)
	}

	// wait reaches done and exits 0.
	code, out, _ = runCtl(t, "-server", hs.URL, "wait", "j1")
	if code != 0 || !strings.Contains(out, `"done"`) {
		t.Fatalf("wait: code=%d out=%q", code, out)
	}

	// result prints the exact bytes.
	code, out, _ = runCtl(t, "-server", hs.URL, "result", "j1")
	if code != 0 || out != report {
		t.Fatalf("result: code=%d out=%q", code, out)
	}

	// cancel prints the canceled view.
	code, out, _ = runCtl(t, "-server", hs.URL, "cancel", "j1")
	if code != 0 || !strings.Contains(out, `"canceled"`) {
		t.Fatalf("cancel: code=%d out=%q", code, out)
	}

	// metrics relays the server document.
	code, out, _ = runCtl(t, "-server", hs.URL, "metrics")
	if code != 0 || !strings.Contains(out, "server/jobs_completed") {
		t.Fatalf("metrics: code=%d out=%q", code, out)
	}

	// -client-metrics lands a JSON snapshot on disk.
	path := filepath.Join(t.TempDir(), "client.json")
	code, _, _ = runCtl(t, "-server", hs.URL, "-client-metrics", path, "result", "j1")
	if code != 0 {
		t.Fatalf("result with -client-metrics exited %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("client metrics file is not JSON: %v\n%s", err, raw)
	}
}

// TestCtlJobFailureExitsThree: a failed job is exit 3 — distinct from
// network failure (1) and usage error (2).
func TestCtlJobFailureExitsThree(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/result"):
			writeJSONStatus(w, 500, map[string]any{"error": "job failed: watchdog abort"})
		default:
			writeJSONStatus(w, 200, map[string]any{"id": "j1", "state": "failed", "experiment": "fig12", "error": "watchdog abort"})
		}
	}))
	defer hs.Close()

	code, _, _ := runCtl(t, "-server", hs.URL, "wait", "j1")
	if code != 3 {
		t.Fatalf("wait on a failed job exited %d, want 3", code)
	}
	code, _, _ = runCtl(t, "-server", hs.URL, "result", "j1")
	if code != 3 {
		t.Fatalf("result of a failed job exited %d, want 3", code)
	}
}

// TestCtlNetworkFailureExitsOne: nothing listening → exit 1 after the
// retry budget, not a hang and not an exit-2 usage error.
func TestCtlNetworkFailureExitsOne(t *testing.T) {
	// Reserve and release a port so nothing answers there.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := hs.URL
	hs.Close()

	code, _, _ := runCtl(t, "-server", dead, "-retries", "1", "-backoff", "1ms", "result", "j1")
	if code != 1 {
		t.Fatalf("dead server exited %d, want 1", code)
	}
}

// TestCtlDeadlinePropagation: -timeout travels to the server as the
// deadline header.
func TestCtlDeadlinePropagation(t *testing.T) {
	var sawDeadline bool
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(server.DeadlineHeader) != "" {
			sawDeadline = true
		}
		fmt.Fprint(w, "{}")
	}))
	defer hs.Close()

	runCtl(t, "-server", hs.URL, "-timeout", "1m", "metrics")
	if !sawDeadline {
		t.Fatalf("no %s header reached the server from -timeout", server.DeadlineHeader)
	}
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
