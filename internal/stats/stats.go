// Package stats provides the small numeric and rendering helpers the
// experiment harness uses: geometric means (the paper reports geomean
// speedups), series containers, and fixed-width ASCII tables that print
// each figure's rows the way the paper's plots read.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs (0 for empty input). A
// non-positive value — a degenerate configuration upstream, e.g. a zero-GC
// workload producing a zero speedup — yields an error naming the offending
// value instead of panicking, so one bad cell fails its experiment rather
// than crashing the whole harness.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	var sum float64
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("stats: geomean of non-positive value %v at index %d", x, i)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeomean is Geomean for inputs the caller has already validated as
// strictly positive; it panics on a non-positive value.
func MustGeomean(xs []float64) float64 {
	g, err := Geomean(xs)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Series is one named line/bar group in a figure.
type Series struct {
	Name   string
	Values []float64
}

// Table renders labeled rows of float columns, in the layout the paper's
// figures enumerate (one row per workload, one column per configuration).
type Table struct {
	Title   string
	Columns []string // first column is the row label
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddFloats appends a labeled row of numbers formatted with prec decimals.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Percentiles returns the given quantiles (0..1) of xs.
func Percentiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		pos := q * float64(len(sorted)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(sorted) {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}
