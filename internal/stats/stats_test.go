package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	tests := []struct {
		name    string
		xs      []float64
		want    float64
		wantErr bool
	}{
		{"two values", []float64{2, 8}, 4, false},
		{"single value", []float64{3.5}, 3.5, false},
		{"empty", nil, 0, false},
		{"identity", []float64{1, 1, 1}, 1, false},
		// The degenerate cases that used to crash the whole harness: a
		// zero-GC workload yields a zero speedup cell.
		{"zero value", []float64{1, 0}, 0, true},
		{"negative value", []float64{2, -3}, 0, true},
		{"NaN", []float64{2, math.NaN()}, 0, true},
	}
	for _, tc := range tests {
		g, err := Geomean(tc.xs)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: expected error, got %v", tc.name, g)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if math.Abs(g-tc.want) > 1e-12 {
			t.Errorf("%s: geomean = %v, want %v", tc.name, g, tc.want)
		}
	}
}

func TestMustGeomean(t *testing.T) {
	if g := MustGeomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v, want 4", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeomean of zero should panic")
		}
	}()
	MustGeomean([]float64{1, 0})
}

func TestGeomeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := Geomean(xs)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("mean")
	}
	if Max([]float64{3, 9, 1}) != 9 || Max(nil) != 0 {
		t.Fatal("max")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "DDR4", "Charon")
	tb.AddFloats("BS", 2, 1.0, 3.29)
	tb.AddRow("KM", "1.00", "2.50")
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "3.29") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the column start offsets.
	if strings.Index(lines[1], "DDR4") != strings.Index(lines[3], "1.00") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Percentiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("percentiles %v", got)
	}
	if p := Percentiles(nil, 0.5); p[0] != 0 {
		t.Fatal("empty percentiles")
	}
	// Interpolation.
	if p := Percentiles([]float64{0, 10}, 0.25)[0]; math.Abs(p-2.5) > 1e-12 {
		t.Fatalf("interp = %v", p)
	}
}
