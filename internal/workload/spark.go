package workload

import (
	"errors"

	"charonsim/internal/gc"
)

var errOOM = errors.New("workload: heap exhausted (OOM)")

// jobEndGC runs the end-of-job full collection in the collector's
// configured mode.
func jobEndGC(c *gc.Collector) {
	switch c.Mode {
	case gc.ModeCMS:
		c.MarkSweepGC("job-end")
	case gc.ModeG1:
		c.MixedGC("job-end")
	default:
		c.MajorGC("job-end")
	}
}

func init() {
	register("BS", func() Workload {
		return &sparkML{
			spec: Spec{
				Name: "BS", Long: "Bayesian Classifier", Framework: "Spark",
				Dataset: "KDD 2010 (synthetic equivalent)", PaperHeap: "10GB",
				MinHeapBytes: 20 << 20, MutatorByteCost: 140,
			},
			seed: 0xb5, features: 256, rowsPerBatch: 96, batches: 16,
			iters: 24, cacheEvery: 5, cacheSlots: 40, aggregates: 24,
		}
	})
	register("KM", func() Workload {
		return &sparkML{
			spec: Spec{
				Name: "KM", Long: "k-means Clustering", Framework: "Spark",
				Dataset: "KDD 2010 (synthetic equivalent)", PaperHeap: "8GB",
				MinHeapBytes: 16 << 20, MutatorByteCost: 170,
			},
			seed: 0x3c, features: 128, rowsPerBatch: 128, batches: 14,
			iters: 26, cacheEvery: 4, cacheSlots: 44, aggregates: 16, centroids: 16,
		}
	})
	register("LR", func() Workload {
		return &sparkML{
			spec: Spec{
				Name: "LR", Long: "Logistic Regression", Framework: "Spark",
				Dataset: "URL Reputation (synthetic equivalent)", PaperHeap: "12GB",
				MinHeapBytes: 24 << 20, MutatorByteCost: 150,
			},
			seed: 0x17, features: 384, rowsPerBatch: 72, batches: 16,
			iters: 24, cacheEvery: 6, cacheSlots: 56, aggregates: 32, sparse: true,
		}
	})
}

// sparkML models the Spark machine-learning benchmarks: iterative
// processing of RDD partitions. Each batch allocates a partition of large
// rows (feature vectors), derives shuffle aggregates, then drops the
// partition — the "few large objects with few references and short
// lifetimes" demographic the paper attributes to Spark (Section 5.2). A
// long-lived model object accumulates per-iteration state, creating
// old-to-young references that exercise Search.
type sparkML struct {
	spec Spec
	seed uint64

	features     int // feature-vector length (doubles)
	rowsPerBatch int
	batches      int
	iters        int
	cacheEvery   int // persist every Nth partition (RDD cache)
	cacheSlots   int // retained partitions (sizes the long-lived set)
	aggregates   int // shuffle aggregates per batch
	centroids    int // k-means only
	sparse       bool
}

func (w *sparkML) Spec() Spec { return w.spec }

func (w *sparkML) Run(c *gc.Collector) error {
	m := newMutator(c)
	rng := newRNG(w.seed)

	// Long-lived model: weights + history of per-iteration stats.
	model := m.allocInstance(KModel)
	weights := m.allocArray(KDoubleArray, w.features)
	history := m.allocArray(KObjArray, w.iters*2)
	m.setRef(model, 2, weights)
	m.setRef(model, 3, history)

	// RDD cache: retained partitions (bounded; old entries become garbage).
	cacheSlots := w.cacheSlots
	if cacheSlots == 0 {
		cacheSlots = 4
	}
	cache := m.allocArray(KObjArray, cacheSlots)
	cacheIdx := 0

	// k-means centroids, rebuilt every iteration.
	cents := -1
	if w.centroids > 0 {
		cents = m.allocArray(KObjArray, w.centroids)
	}

	histIdx := 0
	for iter := 0; iter < w.iters && !m.oom; iter++ {
		if cents >= 0 {
			// Rebuild centroids: young objects referenced from a (soon
			// promoted) array — churn with references.
			for k := 0; k < w.centroids && !m.oom; k++ {
				cv := m.allocArray(KDoubleArray, w.features)
				m.setElem(cents, k, cv)
				m.drop(cv)
			}
		}
		for b := 0; b < w.batches && !m.oom; b++ {
			// Partition: an array of rows, each holding a large feature
			// vector. Dominated by Copy when live at GC time.
			part := m.allocArray(KObjArray, w.rowsPerBatch)
			for r := 0; r < w.rowsPerBatch && !m.oom; r++ {
				row := m.allocInstance(KRow)
				var vec int
				if w.sparse {
					// Sparse vector: indices + values (two arrays via a
					// holder pair).
					idx := m.allocArray(KIntArray, w.features/2)
					val := m.allocArray(KDoubleArray, w.features/2)
					pair := m.allocInstance(KKeyValue)
					m.setRef(pair, 2, idx)
					m.setRef(pair, 3, val)
					m.drop(idx)
					m.drop(val)
					vec = pair
				} else {
					vec = m.allocArray(KDoubleArray, w.features)
				}
				m.setRef(row, 2, vec)
				m.setElem(part, r, row)
				m.drop(vec)
				m.drop(row)
			}

			// Shuffle: small aggregates, a few retained into the model's
			// history (old-to-young stores → card traffic).
			stats := m.allocArray(KDoubleArray, w.aggregates)
			kv := m.allocInstance(KKeyValue)
			m.setRef(kv, 2, stats)
			if histIdx < w.iters*2 && rng.chance(1, 2) {
				m.setElem(history, histIdx, kv)
				histIdx++
			}
			m.drop(stats)
			m.drop(kv)

			// RDD persist: occasionally retain a partition, evicting the
			// oldest cached one (old-generation garbage → MajorGC work).
			if w.cacheEvery > 0 && b%w.cacheEvery == 0 {
				m.setElem(cache, cacheIdx%cacheSlots, part)
				cacheIdx++
			}
			m.drop(part)
		}
	}
	if m.oom {
		return errOOM
	}
	// End of job: final full compaction, as a long-running executor would
	// eventually trigger.
	jobEndGC(c)
	if c.OOM {
		return errOOM
	}
	return nil
}
