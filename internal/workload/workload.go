// Package workload provides synthetic mutators reproducing the object
// demographics of the paper's six benchmarks (Table 3):
//
//   - Spark machine learning (Bayesian classification, k-means, logistic
//     regression): few large, short-lived objects with few references —
//     RDD partition churn. Copy and Search dominate their GC time.
//   - GraphChi graph analytics (connected components, PageRank): many
//     small, long-lived objects with many references — graph shards.
//     Scan&Push and Bitmap Count matter most.
//   - GraphChi ALS: very large matrix objects ("a very large matrix data
//     as a single object, which results in a huge copy", Section 3.2).
//
// Heaps are scaled from the paper's 4-12 GB to tens of MB, keeping the
// 10:8:12:4:4:4 proportions of Table 3 and the 1.25-2x overprovisioning
// policy of Section 5.1. All generators are deterministic (seeded
// xorshift), so recorded GC traces are reproducible.
package workload

import (
	"fmt"

	"charonsim/internal/gc"
	"charonsim/internal/heap"
	"charonsim/internal/sim"
)

// Spec describes one benchmark.
type Spec struct {
	Name      string // short code: BS, KM, LR, CC, PR, ALS
	Long      string
	Framework string // "Spark" or "GraphChi"
	Dataset   string // dataset the paper used (we synthesize an equivalent)
	PaperHeap string // heap size in the paper (Table 3)

	// MinHeapBytes is the scaled minimum heap that runs without OOM.
	MinHeapBytes uint64
	// MutatorByteCost approximates useful mutator work per allocated byte
	// (picoseconds), for Figure 2's GC-overhead-vs-mutator normalization.
	MutatorByteCost uint64
}

// Workload is a runnable synthetic mutator.
type Workload interface {
	Spec() Spec
	// Run drives the mutator against the collector until the workload
	// completes or the heap OOMs (returned as an error).
	Run(c *gc.Collector) error
}

// MutatorTime estimates the useful (non-GC) execution time of a finished
// run, from the bytes the mutator allocated and touched.
func MutatorTime(spec Spec, h *heap.Heap) sim.Time {
	return sim.Time(h.Stats.AllocatedBytes * spec.MutatorByteCost)
}

// HeapFor returns the heap size for a workload at the given
// overprovisioning factor (1.0 = minimum heap), rounded to 4 KB.
func HeapFor(spec Spec, factor float64) uint64 {
	return uint64(float64(spec.MinHeapBytes)*factor) / 4096 * 4096
}

// Factory builds a fresh workload instance (deterministic for a fixed
// seed).
type Factory func() Workload

var registry = map[string]Factory{}

// order is the paper's presentation order (Table 3).
var order = []string{"BS", "KM", "LR", "CC", "PR", "ALS"}

func register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate " + name)
	}
	registry[name] = f
}

// Names lists registered workloads in the paper's order.
func Names() []string { return append([]string(nil), order...) }

// New builds a workload by short code (BS, KM, LR, CC, PR, ALS).
func New(name string) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown %q (have %v)", name, Names())
	}
	return f(), nil
}

// All builds every registered workload.
func All() []Workload {
	var out []Workload
	for _, n := range order {
		out = append(out, registry[n]())
	}
	return out
}

// Prepare builds a heap + recording collector sized for the workload at
// the given overprovisioning factor.
func Prepare(w Workload, factor float64) (*gc.Collector, *heap.Heap) {
	h := heap.New(heap.DefaultConfig(HeapFor(w.Spec(), factor)), StandardKlasses())
	c := gc.New(h)
	c.Recording = true
	return c, h
}

// RunRecorded runs w on a fresh heap at the given factor and returns the
// collector with its recorded GC log.
func RunRecorded(w Workload, factor float64) (*gc.Collector, error) {
	return RunRecordedMode(w, factor, gc.ModePS)
}

// RunRecordedMode is RunRecorded with collector-mode selection (Table 1's
// three collectors: ParallelScavenge, CMS, G1).
func RunRecordedMode(w Workload, factor float64, mode gc.Mode) (*gc.Collector, error) {
	c, _ := Prepare(w, factor)
	c.Mode = mode
	if err := w.Run(c); err != nil {
		return c, err
	}
	return c, nil
}

// xorshift64 is the deterministic PRNG used by all generators.
type xorshift64 uint64

func newRNG(seed uint64) *xorshift64 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	x := xorshift64(seed)
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(x.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi].
func (x *xorshift64) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + x.intn(hi-lo+1)
}

// chance returns true with probability num/den.
func (x *xorshift64) chance(num, den int) bool { return x.intn(den) < num }
