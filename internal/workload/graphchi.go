package workload

import (
	"charonsim/internal/gc"
	"charonsim/internal/heap"
)

func init() {
	register("CC", func() Workload {
		return &graphChi{
			spec: Spec{
				Name: "CC", Long: "Connected Components", Framework: "GraphChi",
				Dataset: "R-MAT scale 22 (synthetic R-MAT, scaled)", PaperHeap: "4GB",
				MinHeapBytes: 8 << 20, MutatorByteCost: 260,
			},
			seed: 0xcc, vertices: 16384, avgDegree: 8, iters: 12, algo: algoCC,
		}
	})
	register("PR", func() Workload {
		return &graphChi{
			spec: Spec{
				Name: "PR", Long: "PageRank", Framework: "GraphChi",
				Dataset: "R-MAT scale 22 (synthetic R-MAT, scaled)", PaperHeap: "4GB",
				MinHeapBytes: 8 << 20, MutatorByteCost: 240,
			},
			seed: 0x99, vertices: 16384, avgDegree: 8, iters: 12, algo: algoPR,
		}
	})
	register("ALS", func() Workload {
		return &als{
			spec: Spec{
				Name: "ALS", Long: "Alternating Least Squares", Framework: "GraphChi",
				Dataset: "Matrix Market 15000x15000 (synthetic, scaled)", PaperHeap: "4GB",
				MinHeapBytes: 8 << 20, MutatorByteCost: 420,
			},
			seed: 0xa15, matrixElems: 160 << 10, factors: 12, iters: 8,
		}
	})
}

type graphAlgo int

const (
	algoCC graphAlgo = iota
	algoPR
)

// graphChi models the GraphChi graph benchmarks: a long-lived vertex graph
// with many references (the "many long-lived objects with many references"
// demographic of Section 5.2), traversed every iteration with small
// per-vertex updates. The graph dominates MajorGC marking (Scan&Push) and
// compaction (Bitmap Count); the per-iteration updates create old-to-young
// references through promoted vertices.
type graphChi struct {
	spec Spec
	seed uint64

	vertices  int
	avgDegree int
	iters     int
	algo      graphAlgo
}

func (w *graphChi) Spec() Spec { return w.spec }

// rmatEdge draws one edge with the standard R-MAT recursion
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05), as in the GraphChallenge
// generator the paper's dataset comes from.
func rmatEdge(rng *xorshift64, scale int) (int, int) {
	src, dst := 0, 0
	for bit := 0; bit < scale; bit++ {
		r := rng.intn(100)
		var sBit, dBit int
		switch {
		case r < 57: // a
		case r < 76: // b
			dBit = 1
		case r < 95: // c
			sBit = 1
		default: // d
			sBit, dBit = 1, 1
		}
		src = src<<1 | sBit
		dst = dst<<1 | dBit
	}
	return src, dst
}

func (w *graphChi) Run(c *gc.Collector) error {
	m := newMutator(c)
	rng := newRNG(w.seed)

	scale := 0
	for 1<<scale < w.vertices {
		scale++
	}
	n := 1 << scale

	// Degree histogram from R-MAT edges.
	deg := make([]int, n)
	type edge struct{ s, d int }
	edges := make([]edge, 0, n*w.avgDegree)
	for i := 0; i < n*w.avgDegree; i++ {
		s, d := rmatEdge(rng, scale)
		deg[s]++
		edges = append(edges, edge{s, d})
	}

	// Build the vertex table: Vertex objects with per-vertex edge arrays.
	// This is the long-lived shard; it survives many minor GCs and gets
	// promoted wholesale.
	vtab := m.allocArray(KObjArray, n)
	for v := 0; v < n && !m.oom; v++ {
		vert := m.allocInstance(KVertex)
		d := deg[v]
		if d > 0 {
			ea := m.allocArray(KObjArray, d)
			m.setRef(vert, 2, ea)
			m.drop(ea)
		}
		data := m.allocArray(KDoubleArray, 2)
		m.setRef(vert, 3, data)
		m.drop(data)
		m.setElem(vtab, v, vert)
		m.drop(vert)
	}
	if m.oom {
		return errOOM
	}

	// Wire edges: vertex -> vertex references (many refs per object).
	fill := make([]int, n)
	for _, e := range edges {
		if m.oom {
			break
		}
		vt := m.get(vtab)
		src := m.h.LoadRef(vt, heap.HeaderWords+e.s)
		dst := m.h.LoadRef(vt, heap.HeaderWords+e.d)
		ea := m.h.LoadRef(src, 2)
		if ea == 0 {
			continue
		}
		m.h.StoreRef(ea, heap.HeaderWords+fill[e.s], dst)
		fill[e.s]++
	}

	// Iterations: traverse shards, replacing per-vertex data with fresh
	// young arrays (old-to-young stores once the graph is promoted) and
	// allocating small message objects that die immediately.
	const shardSize = 512
	for iter := 0; iter < w.iters && !m.oom; iter++ {
		for base := 0; base < n && !m.oom; base += shardSize {
			end := base + shardSize
			if end > n {
				end = n
			}
			for v := base; v < end && !m.oom; v++ {
				// Message for a random neighbourhood update.
				var msg int
				if w.algo == algoPR {
					msg = m.allocArray(KDoubleArray, 4)
				} else {
					msg = m.allocInstance(KKeyValue)
				}
				// Replace the vertex's data array every few iterations.
				if rng.chance(1, 3) {
					nd := m.allocArray(KDoubleArray, 2)
					if !m.oom {
						vt := m.get(vtab)
						vert := m.h.LoadRef(vt, heap.HeaderWords+v)
						m.h.StoreRef(vert, 3, m.get(nd))
					}
					m.drop(nd)
				}
				m.drop(msg)
			}
		}
		// Shard boundary: GraphChi re-sorts shards; allocate a transient
		// buffer comparable to a shard.
		buf := m.allocArray(KByteArray, shardSize*64)
		m.drop(buf)
	}
	if m.oom {
		return errOOM
	}
	jobEndGC(c)
	if c.OOM {
		return errOOM
	}
	return nil
}

// als models GraphChi's alternating least squares: a small number of very
// large matrix objects, re-materialized every iteration. Section 5.2
// singles ALS out: "it takes a very large matrix data as a single object,
// which results in a huge copy" — Copy dominates and Charon benefits most.
type als struct {
	spec Spec
	seed uint64

	matrixElems int // doubles per factor matrix
	factors     int
	iters       int
}

func (w *als) Spec() Spec { return w.spec }

func (w *als) Run(c *gc.Collector) error {
	m := newMutator(c)
	rng := newRNG(w.seed)

	// Holder for the current factor matrices (U, V) and their predecessors.
	hold := m.allocArray(KObjArray, 4)

	u := m.allocArray(KDoubleArray, w.matrixElems)
	v := m.allocArray(KDoubleArray, w.matrixElems)
	m.setElem(hold, 0, u)
	m.setElem(hold, 1, v)
	m.drop(u)
	m.drop(v)

	for iter := 0; iter < w.iters && !m.oom; iter++ {
		// Solve step: per-factor scratch blocks (medium, short-lived).
		for f := 0; f < w.factors && !m.oom; f++ {
			scratch := m.allocArray(KDoubleArray, w.matrixElems/w.factors)
			_ = rng
			m.drop(scratch)
		}
		// Re-materialize one huge factor matrix; the previous generation
		// is retained one iteration (promoted) then dropped.
		nu := m.allocArray(KDoubleArray, w.matrixElems)
		if m.oom {
			break
		}
		ho := m.get(hold)
		prev := m.h.LoadRef(ho, heap.HeaderWords+iter%2)
		m.h.StoreRef(ho, heap.HeaderWords+2+iter%2, prev) // keep one gen
		m.setElem(hold, iter%2, nu)
		m.drop(nu)
	}
	if m.oom {
		return errOOM
	}
	jobEndGC(c)
	if c.OOM {
		return errOOM
	}
	return nil
}
