package workload

import (
	"charonsim/internal/gc"
	"charonsim/internal/heap"
)

// PrepareBytes builds a (non-recording) collector over an explicit heap
// size, for calibration runs.
func PrepareBytes(heapBytes uint64) *gc.Collector {
	h := heap.New(heap.DefaultConfig(heapBytes/4096*4096), StandardKlasses())
	return gc.New(h)
}

// FindMinHeap searches for the smallest heap (4 KB granularity, within
// [lo, hi] bytes) on which the workload completes without OOM — the
// procedure Section 3.1 describes for establishing each benchmark's
// minimum heap before overprovisioning it by 25-100%. Runs the workload
// O(log((hi-lo)/4KB)) times with recording disabled.
func FindMinHeap(f Factory, lo, hi uint64) uint64 {
	const page = 4096
	loP, hiP := lo/page, hi/page
	if loP < 1 {
		loP = 1
	}
	ok := func(pages uint64) bool {
		w := f()
		c := PrepareBytes(pages * page)
		return w.Run(c) == nil
	}
	if !ok(hiP) {
		return 0 // does not fit even at hi
	}
	for loP < hiP {
		mid := (loP + hiP) / 2
		if ok(mid) {
			hiP = mid
		} else {
			loP = mid + 1
		}
	}
	return hiP * page
}

// CalibratedMinHeap finds the true minimum heap for a registered workload
// by searching below its declared minimum (and slightly above, in case
// the declaration is optimistic).
func CalibratedMinHeap(name string) (uint64, error) {
	f, ok := registry[name]
	if !ok {
		return 0, errUnknown(name)
	}
	spec := f().Spec()
	return FindMinHeap(f, spec.MinHeapBytes/4, spec.MinHeapBytes*2), nil
}

func errUnknown(name string) error {
	_, err := New(name)
	return err
}
