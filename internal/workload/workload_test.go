package workload

import (
	"testing"

	"charonsim/internal/gc"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"BS", "KM", "LR", "CC", "PR", "ALS"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s (paper order)", i, names[i], n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(All()) != 6 {
		t.Fatal("All() incomplete")
	}
}

func TestSpecsMatchTable3(t *testing.T) {
	// Paper heap proportions 10:8:12:4:4:4 must be preserved in scaling.
	get := func(n string) Spec {
		w, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		return w.Spec()
	}
	bs, km, lr := get("BS"), get("KM"), get("LR")
	cc := get("CC")
	if bs.MinHeapBytes*8 != km.MinHeapBytes*10 {
		t.Fatalf("BS:KM proportion broken: %d vs %d", bs.MinHeapBytes, km.MinHeapBytes)
	}
	if lr.MinHeapBytes*10 != bs.MinHeapBytes*12 {
		t.Fatal("BS:LR proportion broken")
	}
	if cc.MinHeapBytes*10 != bs.MinHeapBytes*4 {
		t.Fatal("BS:CC proportion broken")
	}
	if bs.Framework != "Spark" || cc.Framework != "GraphChi" {
		t.Fatal("framework labels wrong")
	}
	if bs.PaperHeap != "10GB" || lr.PaperHeap != "12GB" || cc.PaperHeap != "4GB" {
		t.Fatal("paper heap labels drifted from Table 3")
	}
}

// runAt runs a workload at an overprovisioning factor, returning the
// collector or nil on OOM.
func runAt(t *testing.T, name string, factor float64) *gc.Collector {
	t.Helper()
	w, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunRecorded(w, factor)
	if err != nil {
		return nil
	}
	return c
}

func TestAllWorkloadsRunAtMinHeap(t *testing.T) {
	for _, name := range Names() {
		c := runAt(t, name, 1.0)
		if c == nil {
			t.Fatalf("%s: OOM at its declared minimum heap", name)
		}
		if len(c.Log) < 3 {
			t.Fatalf("%s: only %d GC events at min heap (need GC pressure)", name, len(c.Log))
		}
		minors, majors := 0, 0
		for _, ev := range c.Log {
			if ev.Kind == gc.Minor {
				minors++
			} else {
				majors++
			}
		}
		if minors == 0 || majors == 0 {
			t.Fatalf("%s: minors=%d majors=%d; need both", name, minors, majors)
		}
	}
}

func TestWorkloadsRunAtDoubleHeap(t *testing.T) {
	for _, name := range Names() {
		if c := runAt(t, name, 2.0); c == nil {
			t.Fatalf("%s: OOM at 2x heap", name)
		}
	}
}

func TestGCCountDecreasesWithHeadroom(t *testing.T) {
	// Figure 2's mechanism: more heap → fewer GCs → less GC work.
	for _, name := range []string{"BS", "CC"} {
		tight := runAt(t, name, 1.0)
		roomy := runAt(t, name, 2.0)
		if tight == nil || roomy == nil {
			t.Fatalf("%s: unexpected OOM", name)
		}
		if len(roomy.Log) >= len(tight.Log) {
			t.Fatalf("%s: %d GCs at 2.0x vs %d at 1.0x; headroom should reduce GCs",
				name, len(roomy.Log), len(tight.Log))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runAt(t, "KM", 1.5)
	b := runAt(t, "KM", 1.5)
	if a == nil || b == nil {
		t.Fatal("OOM")
	}
	if len(a.Log) != len(b.Log) {
		t.Fatalf("nondeterministic GC count: %d vs %d", len(a.Log), len(b.Log))
	}
	for i := range a.Log {
		if len(a.Log[i].Invocations) != len(b.Log[i].Invocations) {
			t.Fatalf("event %d: nondeterministic invocations", i)
		}
		if a.Log[i].LiveBytes != b.Log[i].LiveBytes {
			t.Fatalf("event %d: nondeterministic live bytes", i)
		}
	}
}

func TestSparkDemographics(t *testing.T) {
	// Spark workloads: Copy bytes should dwarf Scan&Push reference counts
	// ("Spark tends to allocate large objects to memory with few
	// references", Section 3.2).
	c := runAt(t, "BS", 1.5)
	if c == nil {
		t.Fatal("OOM")
	}
	var copyBytes, refs uint64
	for _, ev := range c.Log {
		b := ev.BytesByPrim()
		copyBytes += b[gc.PrimCopy]
		refs += b[gc.PrimScanPush]
	}
	if copyBytes == 0 || refs == 0 {
		t.Fatal("missing primitive activity")
	}
	bytesPerRef := float64(copyBytes) / float64(refs)
	if bytesPerRef < 64 {
		t.Fatalf("BS: %.1f copied bytes per reference; expected large-object demographic", bytesPerRef)
	}
}

func TestGraphDemographics(t *testing.T) {
	// GraphChi: many more references per copied byte than Spark.
	spark := runAt(t, "BS", 1.5)
	graph := runAt(t, "CC", 1.5)
	if spark == nil || graph == nil {
		t.Fatal("OOM")
	}
	ratio := func(c *gc.Collector) float64 {
		var copyBytes, refs uint64
		for _, ev := range c.Log {
			b := ev.BytesByPrim()
			copyBytes += b[gc.PrimCopy]
			refs += b[gc.PrimScanPush]
		}
		return float64(refs) / float64(copyBytes+1)
	}
	if ratio(graph) <= ratio(spark) {
		t.Fatalf("CC refs/byte (%.4f) should exceed BS (%.4f)", ratio(graph), ratio(spark))
	}
}

func TestALSHugeCopies(t *testing.T) {
	// ALS: the largest single Copy invocation should be much larger than
	// BS's ("a very large matrix data as a single object").
	maxCopy := func(name string) uint32 {
		c := runAt(t, name, 1.5)
		if c == nil {
			t.Fatalf("%s: OOM", name)
		}
		var mx uint32
		for _, ev := range c.Log {
			for _, inv := range ev.Invocations {
				if inv.Prim == gc.PrimCopy && inv.N > mx {
					mx = inv.N
				}
			}
		}
		return mx
	}
	als, bs := maxCopy("ALS"), maxCopy("BS")
	if als < 4*bs {
		t.Fatalf("ALS max copy %d not >> BS max copy %d", als, bs)
	}
	if als < 1<<20 {
		t.Fatalf("ALS max copy only %d bytes; matrices should be ~MB", als)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	rng := newRNG(42)
	const scale, edges = 12, 1 << 15
	deg := make([]int, 1<<scale)
	for i := 0; i < edges; i++ {
		s, _ := rmatEdge(rng, scale)
		deg[s]++
	}
	// R-MAT produces a skewed distribution: the max degree far exceeds the
	// average.
	max, nonzero := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		if d > 0 {
			nonzero++
		}
	}
	avg := float64(edges) / float64(nonzero)
	if float64(max) < 8*avg {
		t.Fatalf("R-MAT not skewed: max=%d avg=%.1f", max, avg)
	}
}

func TestMutatorTimePositive(t *testing.T) {
	w, _ := New("BS")
	c, err := RunRecorded(w, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if MutatorTime(w.Spec(), c.H) == 0 {
		t.Fatal("mutator time model returned 0")
	}
}

func TestHeapForRounding(t *testing.T) {
	w, _ := New("CC")
	if HeapFor(w.Spec(), 1.25)%4096 != 0 {
		t.Fatal("heap size not page aligned")
	}
	if HeapFor(w.Spec(), 1.0) != w.Spec().MinHeapBytes {
		t.Fatal("factor 1.0 should be the minimum heap")
	}
}

func TestRNG(t *testing.T) {
	r := newRNG(0) // zero seed gets a default
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.next()] = true
	}
	if len(seen) != 1000 {
		t.Fatal("xorshift repeating early")
	}
	if r.intn(0) != 0 || r.rangeInt(5, 5) != 5 {
		t.Fatal("degenerate ranges")
	}
	lo, hi := 100, 0
	for i := 0; i < 1000; i++ {
		v := r.rangeInt(3, 9)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo != 3 || hi != 9 {
		t.Fatalf("rangeInt bounds [%d,%d]", lo, hi)
	}
}

func BenchmarkRunBS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, _ := New("BS")
		if _, err := RunRecorded(w, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFindMinHeap(t *testing.T) {
	min, err := CalibratedMinHeap("ALS")
	if err != nil {
		t.Fatal(err)
	}
	if min == 0 {
		t.Fatal("search failed even at 2x the declared minimum")
	}
	spec, _ := New("ALS")
	declared := spec.Spec().MinHeapBytes
	// The declared minimum must actually run (>= true minimum) and not be
	// grossly padded (within 4x of the true minimum).
	if min > declared {
		t.Fatalf("declared min %d below true min %d", declared, min)
	}
	if declared > 4*min {
		t.Fatalf("declared min %d is >4x the true min %d", declared, min)
	}
	// Just below the true minimum must OOM.
	w, _ := New("ALS")
	c := PrepareBytes(min - 8192)
	if err := w.Run(c); err == nil {
		t.Fatalf("workload survived below its calibrated minimum (%d)", min)
	}
}

func TestDeclaredMinimaRun(t *testing.T) {
	// Every declared Table 3 minimum must complete (cheaper than full
	// calibration; run for the remaining workloads).
	for _, name := range []string{"KM", "PR"} {
		w, _ := New(name)
		c := PrepareBytes(w.Spec().MinHeapBytes)
		if err := w.Run(c); err != nil {
			t.Fatalf("%s: %v at declared minimum", name, err)
		}
	}
}
