package workload

import (
	"charonsim/internal/gc"
	"charonsim/internal/heap"
)

// Standard klass names used by all synthetic workloads.
const (
	KDoubleArray = "double[]"
	KIntArray    = "int[]"
	KByteArray   = "byte[]"
	KObjArray    = "Object[]"
	KRow         = "Row"      // RDD row: values array + label
	KKeyValue    = "KeyValue" // shuffle pair
	KVertex      = "Vertex"   // graph vertex: edge array + 2 data words
	KModel       = "Model"    // long-lived aggregate: weights + stats
	KString      = "String"   // byte[] holder
	KHashNode    = "HashNode" // chained hash map node
)

// StandardKlasses builds the type universe shared by the workloads. The
// reference-field offsets mirror typical HotSpot layouts: references first
// after the header, then primitive fields.
func StandardKlasses() *heap.Table {
	t := heap.NewTable()
	t.Define(heap.Klass{Name: KDoubleArray, Kind: heap.KindTypeArray, ElemBytes: 8})
	t.Define(heap.Klass{Name: KIntArray, Kind: heap.KindTypeArray, ElemBytes: 4})
	t.Define(heap.Klass{Name: KByteArray, Kind: heap.KindTypeArray, ElemBytes: 1})
	t.Define(heap.Klass{Name: KObjArray, Kind: heap.KindObjArray})
	// Row: {header, values -> double[], label word, weight word}
	t.Define(heap.Klass{Name: KRow, Kind: heap.KindInstance, InstanceWords: 5, RefOffsets: []int32{2}})
	// KeyValue: {header, key -> obj, value -> obj, hash word}
	t.Define(heap.Klass{Name: KKeyValue, Kind: heap.KindInstance, InstanceWords: 5, RefOffsets: []int32{2, 3}})
	// Vertex: {header, edges -> Object[], data -> double[], label, rank}
	t.Define(heap.Klass{Name: KVertex, Kind: heap.KindInstance, InstanceWords: 6, RefOffsets: []int32{2, 3}})
	// Model: {header, weights -> double[], history -> Object[], 4 stats}
	t.Define(heap.Klass{Name: KModel, Kind: heap.KindInstance, InstanceWords: 8, RefOffsets: []int32{2, 3}})
	// String: {header, bytes -> byte[], hash}
	t.Define(heap.Klass{Name: KString, Kind: heap.KindInstance, InstanceWords: 4, RefOffsets: []int32{2}})
	// HashNode: {header, key -> obj, value -> obj, next -> HashNode, hash}
	t.Define(heap.Klass{Name: KHashNode, Kind: heap.KindInstance, InstanceWords: 6, RefOffsets: []int32{2, 3, 4}})
	return t
}

// mutator wraps the collector with root-handle-based object access, so
// workload code never holds raw addresses across a potential GC (exactly
// the discipline a real mutator's stack maps enforce).
type mutator struct {
	c   *gc.Collector
	h   *heap.Heap
	oom bool
}

func newMutator(c *gc.Collector) *mutator {
	return &mutator{c: c, h: c.H}
}

// alloc* return root handles (indices), or -1 on OOM.

func (m *mutator) allocArray(klass string, n int) int {
	if m.oom {
		return -1
	}
	a := m.c.AllocArray(m.h.Klasses().ByName(klass), n)
	if a == 0 {
		m.oom = true
		return -1
	}
	return m.h.AddRoot(a)
}

func (m *mutator) allocInstance(klass string) int {
	if m.oom {
		return -1
	}
	a := m.c.AllocInstance(m.h.Klasses().ByName(klass))
	if a == 0 {
		m.oom = true
		return -1
	}
	return m.h.AddRoot(a)
}

// get resolves a root handle to the object's current address (0 for the
// OOM sentinel -1).
func (m *mutator) get(root int) heap.Addr {
	if root < 0 {
		return 0
	}
	return m.h.Root(root)
}

// drop clears a root handle (the object becomes collectible unless
// referenced elsewhere). No-op on the OOM sentinel.
func (m *mutator) drop(root int) {
	if root < 0 {
		return
	}
	m.h.SetRoot(root, 0)
}

// setRef stores dst-root's object into a reference slot of src-root's
// object (both resolved at store time).
func (m *mutator) setRef(srcRoot, wordOff, dstRoot int) {
	if m.oom || srcRoot < 0 {
		return
	}
	dst := heap.Addr(0)
	if dstRoot >= 0 {
		dst = m.get(dstRoot)
	}
	m.h.StoreRef(m.get(srcRoot), wordOff, dst)
}

// setElem stores dst-root's object into element i of src-root's object
// array.
func (m *mutator) setElem(arrRoot, i, dstRoot int) {
	if m.oom || arrRoot < 0 {
		return
	}
	dst := heap.Addr(0)
	if dstRoot >= 0 {
		dst = m.get(dstRoot)
	}
	m.h.StoreRef(m.get(arrRoot), heap.HeaderWords+i, dst)
}

// refIn stores object b directly into slot of object a, both given as
// addresses valid *now* (no allocation may intervene).
func (m *mutator) err() error {
	if m.oom {
		return errOOM
	}
	return nil
}
