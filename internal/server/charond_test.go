package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCharondHelperProcess re-enters the charond command inside the test
// binary for the subprocess lifecycle tests. Inert in normal runs.
func TestCharondHelperProcess(t *testing.T) {
	if os.Getenv("CHAROND_HELPER") != "1" {
		t.Skip("not a helper invocation")
	}
	args := strings.Split(os.Getenv("CHAROND_ARGS"), "\x1f")
	os.Exit(Main(args, os.Stdout, os.Stderr))
}

func TestCharondHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("charond -h exited %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of charond") {
		t.Fatalf("no usage text:\n%s", errb.String())
	}
}

func TestCharondBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestCharondSigtermDrains boots charond as a real process on an
// ephemeral port, runs a job over HTTP, then sends SIGTERM and asserts
// the clean-drain exit code. This is the Go-level version of
// scripts/serve_smoke.sh.
func TestCharondSigtermDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess server is slow")
	}
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4",
		"-cache-dir", t.TempDir(), "-drain-timeout", "60s"}
	cmd := exec.Command(os.Args[0], "-test.run=TestCharondHelperProcess$")
	cmd.Env = append(os.Environ(), "CHAROND_HELPER=1",
		"CHAROND_ARGS="+strings.Join(args, "\x1f"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer killer.Stop()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("charond printed no listening line; stderr:\n%s", errb.String())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected stdout line %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// One fast end-to-end job through the real process.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table4"}`))
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("submit: %v; stderr:\n%s", err, errb.String())
	}
	var v view
	dec := jsonDecode(resp.Body, &v)
	resp.Body.Close()
	if dec != nil || v.ID == "" {
		t.Fatalf("submit decode: %v (%+v)", dec, v)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jv view
		_ = jsonDecode(r.Body, &jv)
		r.Body.Close()
		if jv.State == StateDone {
			break
		}
		if terminal(jv.State) || time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("job state %q (err %q)", jv.State, jv.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("SIGTERM drain exited %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "drained cleanly") {
		t.Fatalf("no clean-drain log line; stderr:\n%s", errb.String())
	}
}

func jsonDecode(r io.Reader, v any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("%w in %q", err, raw)
	}
	return nil
}
