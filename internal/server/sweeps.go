package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"charonsim"
	"charonsim/internal/cli"
)

// sweepSchema versions the sweep grid grammar; it feeds the canonical
// sweep key, so bumping it makes every old sweep id miss cleanly.
const sweepSchema = 1

// maxSweepChildren bounds one sweep's grid: a spec expanding past it is
// rejected at admission rather than flooding the worker pool. The bound
// comfortably covers the paper's full evaluation grid (6 workloads x a
// handful of heap factors and thread counts).
const maxSweepChildren = 256

// journalKindSweep tags sweep-manifest records in the shared journal
// store; untagged records are plain jobs.
const journalKindSweep = "sweep"

// SweepStateActive is the journal state of a sweep that still owes a
// combined report; terminal manifests carry the aggregate job state
// ("done"/"failed"/"canceled") instead and are garbage-collected at the
// next boot.
const SweepStateActive = "active"

// SweepSpec is the wire format of a batch submission (POST /v1/sweeps):
// a parameter grid over the paper's evaluation axes plus the shared
// knobs every child inherits. The server expands it into one child job
// descriptor per grid point — experiments x workloads x heap_factors x
// threads, in that nesting order — and each child flows through the
// exact same admission queue, single-flight dedup, result cache, and
// journal as an individually POSTed job with the same descriptor.
type SweepSpec struct {
	// Experiments lists experiment ids (or "all"); required, outermost
	// grid axis.
	Experiments []string `json:"experiments"`
	// Workloads fans one child per workload code. Empty runs each
	// experiment over its default full workload set (a single grid point
	// on this axis).
	Workloads []string `json:"workloads,omitempty"`
	// HeapFactors fans one child per heap overprovisioning factor.
	// Empty means the server default (1.5).
	HeapFactors []float64 `json:"heap_factors,omitempty"`
	// Threads fans one child per GC thread count. Empty means the
	// server default (8).
	Threads []int `json:"threads,omitempty"`

	// Shared knobs, copied verbatim into every child descriptor.
	Parallelism    int     `json:"parallelism,omitempty"`
	FaultRate      float64 `json:"fault_rate,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	OffloadDeadln  string  `json:"offload_deadline,omitempty"`
	RunTimeout     string  `json:"run_timeout,omitempty"`
	WatchdogStalls int     `json:"watchdog_stalls,omitempty"`
	WatchdogQueue  int     `json:"watchdog_queue,omitempty"`
}

// sweepChild is one expanded grid point: the child's job descriptor plus
// its resolved config and canonical identity.
type sweepChild struct {
	spec JobSpec
	cfg  charonsim.Config
	key  string
	id   string
}

// Expand validates the sweep spec and returns its grid points in
// deterministic order (experiments, then workloads, then heap factors,
// then threads — outermost to innermost) plus the canonical sweep key.
// Every child descriptor is fully resolved through the job grammar, so a
// sweep child and an individually submitted job with the same knobs are
// the same job: same key, same id, same cache entry. The key is the
// ordered concatenation of the child keys — two sweeps are the same
// sweep exactly when they expand to the same children in the same order.
func (sp SweepSpec) Expand() ([]sweepChild, string, error) {
	if len(sp.Experiments) == 0 {
		return nil, "", fmt.Errorf("missing experiments list (each one of %v, or \"all\")", charonsim.Experiments())
	}
	workloads := cli.CleanWorkloads(sp.Workloads)
	if len(sp.Workloads) > 0 && len(workloads) == 0 {
		return nil, "", fmt.Errorf("workloads %v contains no workload names", sp.Workloads)
	}
	factors := sp.HeapFactors
	if len(factors) == 0 {
		factors = []float64{0} // server default (1.5) resolved by the job grammar
	}
	threads := sp.Threads
	if len(threads) == 0 {
		threads = []int{0} // server default (8)
	}
	points := len(sp.Experiments) * max(1, len(workloads)) * len(factors) * len(threads)
	if points > maxSweepChildren {
		return nil, "", fmt.Errorf("sweep expands to %d children, above the %d bound; split the grid", points, maxSweepChildren)
	}

	var children []sweepChild
	seen := map[string]int{}
	add := func(child JobSpec) error {
		cfg, key, err := child.Resolve()
		if err != nil {
			return err
		}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("duplicate grid point: children %d and %d are the same job (%s)", prev, len(children), key)
		}
		seen[key] = len(children)
		children = append(children, sweepChild{spec: child, cfg: cfg, key: key, id: jobID(key)})
		return nil
	}
	for _, exp := range sp.Experiments {
		wls := [][]string{nil}
		if len(workloads) > 0 {
			wls = wls[:0]
			for _, w := range workloads {
				wls = append(wls, []string{w})
			}
		}
		for _, wl := range wls {
			for _, f := range factors {
				for _, t := range threads {
					child := JobSpec{
						Experiment: exp, Workloads: wl,
						HeapFactor: f, Threads: t,
						Parallelism:    sp.Parallelism,
						FaultRate:      sp.FaultRate,
						FaultSeed:      sp.FaultSeed,
						OffloadDeadln:  sp.OffloadDeadln,
						RunTimeout:     sp.RunTimeout,
						WatchdogStalls: sp.WatchdogStalls,
						WatchdogQueue:  sp.WatchdogQueue,
					}
					if err := add(child); err != nil {
						return nil, "", err
					}
				}
			}
		}
	}
	keys := make([]string, len(children))
	for i, c := range children {
		keys[i] = c.key
	}
	key := fmt.Sprintf("sweep/v%d|%s", sweepSchema, strings.Join(keys, "||"))
	return children, key, nil
}

// sweep is one tracked batch: an ordered set of child jobs sharing the
// server's dedup/cache/journal machinery. The children are fixed at
// admission (or recovery) — a later individual resubmission of a failed
// child descriptor starts a fresh job but does not splice into an
// existing sweep; resubmitting the sweep itself does (failed sweeps are
// replaced whole, like failed jobs).
type sweep struct {
	id      string
	key     string
	spec    SweepSpec
	created time.Time

	children []*job          // grid order; immutable after construction
	childIDs map[string]bool // membership index for noteChildTerminal

	mu         sync.Mutex
	recovered  int    // journal crash-replay generations
	seq        uint64 // orders journal manifest writes
	finalState string // terminal aggregate state once journaled ("" while active)
}

func (sw *sweep) contains(jobID string) bool { return sw.childIDs[jobID] }

// sweepCounts is the per-state census of a sweep's children.
type sweepCounts struct {
	queued, running, done, failed, canceled int
}

func (c sweepCounts) total() int {
	return c.queued + c.running + c.done + c.failed + c.canceled
}

// pending reports whether any child still owes a terminal state.
func (c sweepCounts) pending() bool { return c.queued+c.running > 0 }

// counts snapshots every child's state.
func (sw *sweep) counts() sweepCounts {
	var c sweepCounts
	for _, j := range sw.children {
		state, _, _ := j.snapshot()
		switch state {
		case StateQueued:
			c.queued++
		case StateRunning:
			c.running++
		case StateDone:
			c.done++
		case StateFailed:
			c.failed++
		case StateCanceled:
			c.canceled++
		}
	}
	return c
}

// aggregateState folds the census into one job-style state: queued until
// any child makes progress, running while any child is non-terminal,
// then failed > canceled > done by severity.
func aggregateState(c sweepCounts) string {
	switch {
	case c.pending() && c.running == 0 && c.done+c.failed+c.canceled == 0:
		return StateQueued
	case c.pending():
		return StateRunning
	case c.failed > 0:
		return StateFailed
	case c.canceled > 0:
		return StateCanceled
	default:
		return StateDone
	}
}

// sweepRecord is the journaled sweep manifest: membership (the spec
// re-expands to the same ordered children, hence the same child ids on
// any process) plus lifecycle state. Child jobs journal their own
// transitions; the manifest is written at admission, at recovery, and
// once at terminal aggregation.
type sweepRecord struct {
	Schema    int       `json:"schema"`
	Kind      string    `json:"kind"`
	ID        string    `json:"id"`
	Key       string    `json:"key"`
	Spec      SweepSpec `json:"spec"`
	State     string    `json:"state"`
	Created   time.Time `json:"created"`
	Updated   time.Time `json:"updated"`
	ChildIDs  []string  `json:"child_ids"`
	Recovered int       `json:"recovered,omitempty"`
}

// record snapshots the sweep as a journal manifest. Callers hold sw.mu.
func (sw *sweep) recordLocked(state string) sweepRecord {
	ids := make([]string, len(sw.children))
	for i, j := range sw.children {
		ids[i] = j.id
	}
	return sweepRecord{
		Schema: journalSchema, Kind: journalKindSweep,
		ID: sw.id, Key: sw.key, Spec: sw.spec, State: state,
		Created: sw.created, Updated: time.Now(),
		ChildIDs: ids, Recovered: sw.recovered,
	}
}

// sweepChildView is one child's row in the sweep status document.
type sweepChildView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Experiment string `json:"experiment"`
	Workloads  string `json:"workloads,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
	Self       string `json:"self"`
}

// sweepView is the JSON representation of a sweep: the aggregate state,
// a per-state census, and the ordered children.
type sweepView struct {
	ID        string           `json:"id"`
	State     string           `json:"state"`
	Total     int              `json:"total"`
	Counts    map[string]int   `json:"counts"`
	Created   string           `json:"created,omitempty"`
	Recovered int              `json:"recovered,omitempty"`
	Children  []sweepChildView `json:"children"`
	Self      string           `json:"self"`
	Result    string           `json:"result"`
}

func (sw *sweep) view() sweepView {
	c := sw.counts()
	sw.mu.Lock()
	recovered := sw.recovered
	sw.mu.Unlock()
	v := sweepView{
		ID: sw.id, State: aggregateState(c), Total: c.total(),
		Counts: map[string]int{
			StateQueued: c.queued, StateRunning: c.running,
			StateDone: c.done, StateFailed: c.failed, StateCanceled: c.canceled,
		},
		Created:   sw.created.UTC().Format(time.RFC3339Nano),
		Recovered: recovered,
		Self:      "/v1/sweeps/" + sw.id,
		Result:    "/v1/sweeps/" + sw.id + "/result",
	}
	for _, j := range sw.children {
		jv := j.view()
		v.Children = append(v.Children, sweepChildView{
			ID: jv.ID, State: jv.State, Experiment: jv.Experiment,
			Workloads: strings.Join(j.spec.Workloads, ","),
			Cached:    jv.Cached, Error: jv.Error, Self: jv.Self,
		})
	}
	return v
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"sweep spec exceeds the %d-byte limit", maxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding sweep spec: %v", err)
		return
	}
	children, key, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep spec: %v", err)
		return
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !deadline.IsZero() && !deadline.After(time.Now()) {
		s.reg.AddUint("server/deadline_expired_rejects", 1)
		writeError(w, http.StatusGatewayTimeout,
			"deadline %s already expired at admission; not queueing doomed work",
			deadline.UTC().Format(time.RFC3339Nano))
		return
	}
	sw, status, retryAfter, err := s.submitSweep(spec, children, key, deadline)
	if err != nil {
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, status, sw.view())
}

// submitSweep admits one sweep: single-flight dedup on the sweep key,
// then per-child admission through the shared job machinery (each child
// deduplicates against in-flight jobs and the result cache exactly like
// an individual POST /v1/jobs), a journaled manifest before the response
// leaves, and the children enqueued in grid order. The returned status
// is 200 for an existing (or instantly cache-complete) sweep, 202 when
// any child was freshly queued.
func (s *Server) submitSweep(spec SweepSpec, children []sweepChild, key string, deadline time.Time) (sw *sweep, status, retryAfter int, err error) {
	id := jobID(key)
	s.mu.Lock()
	if existing, ok := s.sweeps[id]; ok {
		state := aggregateState(existing.counts())
		if state != StateFailed && state != StateCanceled {
			// Single-flight dedup: the same grid is the same sweep, and a
			// duplicate submission must reuse its children (and through
			// them every cached child result) rather than re-running.
			s.reg.AddUint("server/sweep_dedup_hits", 1)
			s.mu.Unlock()
			return existing, http.StatusOK, 0, nil
		}
		// failed/canceled: fall through and replace with a fresh attempt,
		// mirroring individual-job resubmission semantics.
		delete(s.sweeps, id)
	}
	if s.draining {
		defer s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, s.drainRetryAfterLocked(),
			errors.New("server is draining; not accepting new sweeps")
	}
	if wait := s.estimatedWait(s.queue.len()); s.cfg.ShedLatency > 0 && wait > s.cfg.ShedLatency {
		s.reg.AddUint("server/shed_rejected", 1)
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, retryAfterSeconds(wait),
			fmt.Errorf("estimated queue wait %s exceeds the %s shed bound; retry later",
				wait.Round(time.Millisecond), s.cfg.ShedLatency)
	}
	// The depth bound gates sweep admission as a whole: a sweep needs a
	// free slot to start, and once admitted its children enqueue
	// atomically — transiently past QueueDepth, which subsequent single
	// submissions then see as a full queue. Batch work is admitted
	// all-or-nothing; it is never half-queued.
	if s.queue.len() >= s.cfg.QueueDepth {
		s.reg.AddUint("server/queue_rejected", 1)
		s.mu.Unlock()
		return nil, http.StatusTooManyRequests, 1,
			fmt.Errorf("admission queue full (%d queued); retry later", s.cfg.QueueDepth)
	}
	s.reg.AddUint("server/sweeps_submitted", 1)

	sw = &sweep{
		id: id, key: key, spec: spec, created: time.Now(),
		childIDs: map[string]bool{}, seq: 1,
	}
	fresh := 0
	for _, c := range children {
		j, isNew := s.admitChildLocked(c, deadline)
		if isNew {
			fresh++
		} else {
			s.reg.AddUint("server/sweep_child_dedup", 1)
		}
		sw.children = append(sw.children, j)
		sw.childIDs[j.id] = true
	}
	s.reg.AddUint("server/sweep_children", uint64(len(children)))
	s.sweeps[id] = sw
	s.reg.SetMax("server/queue_high_water", float64(s.queue.len()))

	// Durability point: the manifest is journaled before the response,
	// so a crash from here on replays the sweep — with these exact child
	// ids — instead of losing the batch.
	sw.mu.Lock()
	rec := sw.recordLocked(SweepStateActive)
	seq := sw.seq
	sw.mu.Unlock()
	s.journal.recordSweep(rec, seq)
	s.mu.Unlock()

	status = http.StatusAccepted
	if fresh == 0 && !sw.counts().pending() {
		// Every grid point was already answered (dedup or cache): the
		// sweep is born terminal.
		status = http.StatusOK
	}
	s.maybeFinishSweep(sw)
	return sw, status, 0, nil
}

// admitChildLocked admits one sweep child through the same machinery an
// individual submission uses: reuse an in-flight or completed job with
// the same canonical key, serve the on-disk result cache, or journal and
// enqueue a fresh job. isNew reports whether a fresh job was queued.
// Callers hold s.mu.
func (s *Server) admitChildLocked(c sweepChild, deadline time.Time) (j *job, isNew bool) {
	if existing, ok := s.jobs[c.id]; ok {
		existing.mu.Lock()
		state := existing.state
		existing.mu.Unlock()
		switch state {
		case StateQueued, StateRunning, StateDone:
			s.reg.AddUint("server/dedup_hits", 1)
			if state == StateDone {
				s.reg.AddUint("server/cache_hits", 1)
			}
			return existing, false
		}
		delete(s.jobs, c.id) // failed/canceled: fresh attempt below
	}
	j = &job{id: c.id, key: c.key, spec: c.spec, cfg: c.cfg, deadline: deadline,
		state: StateQueued, created: time.Now(), seq: 1, done: make(chan struct{})}
	if text, ok := s.cachedText(c.key); ok {
		j.state = StateDone
		j.cached = true
		j.text = text
		j.finished = time.Now()
		close(j.done)
		s.insertLocked(j)
		s.reg.AddUint("server/cache_hits", 1)
		return j, false
	}
	s.reg.AddUint("server/cache_misses", 1)
	s.reg.AddUint("server/jobs_submitted", 1)
	s.insertLocked(j)
	s.journal.record(j)
	s.queue.push(j)
	return j, true
}

// noteChildTerminal runs after any job reaches a terminal state: every
// sweep containing it re-aggregates, and a sweep whose last child just
// settled journals its terminal manifest.
func (s *Server) noteChildTerminal(j *job) {
	s.mu.Lock()
	var owners []*sweep
	for _, sw := range s.sweeps {
		if sw.contains(j.id) {
			owners = append(owners, sw)
		}
	}
	s.mu.Unlock()
	for _, sw := range owners {
		s.maybeFinishSweep(sw)
	}
}

// maybeFinishSweep journals the terminal manifest exactly once when
// every child has settled.
func (s *Server) maybeFinishSweep(sw *sweep) {
	state := aggregateState(sw.counts())
	if !terminalState(state) {
		return
	}
	sw.mu.Lock()
	if sw.finalState != "" {
		sw.mu.Unlock()
		return
	}
	sw.finalState = state
	sw.seq++
	rec := sw.recordLocked(state)
	seq := sw.seq
	sw.mu.Unlock()
	s.journal.recordSweep(rec, seq)
	switch state {
	case StateDone:
		s.reg.AddUint("server/sweeps_completed", 1)
	case StateFailed:
		s.reg.AddUint("server/sweeps_failed", 1)
	case StateCanceled:
		s.reg.AddUint("server/sweeps_canceled", 1)
	}
	s.log.Info("sweep finish", "sweep", sw.id, "state", state, "children", len(sw.children))
}

// recoverSweeps rebuilds journaled sweep manifests after a crash: the
// spec re-expands to the same ordered grid, each child reattaches to its
// recovered job (replayed moments earlier under its original id), or is
// completed from the result cache, or — for the narrow crash window
// where a child's own journal record never landed — is re-admitted
// fresh under the same deterministic id. Returns journal keys to GC
// (none today: a recovered manifest overwrites its own key).
func (s *Server) recoverSweeps(recs []sweepRecord) (gcKeys []string) {
	for _, rec := range recs {
		children, key, err := rec.Spec.Expand()
		if err != nil { // replay() pre-checked; defensive
			gcKeys = append(gcKeys, rec.Key)
			continue
		}
		sw := &sweep{
			id: jobID(key), key: key, spec: rec.Spec, created: rec.Created,
			childIDs:  map[string]bool{},
			recovered: rec.Recovered + 1,
			seq:       1,
		}
		s.mu.Lock()
		for _, c := range children {
			j, isNew := s.admitChildLocked(c, time.Time{})
			if isNew {
				s.log.Info("journal: re-admitted lost sweep child", "sweep", sw.id, "job", j.id)
			}
			sw.children = append(sw.children, j)
			sw.childIDs[j.id] = true
		}
		s.sweeps[sw.id] = sw
		s.mu.Unlock()

		sw.mu.Lock()
		manifest := sw.recordLocked(SweepStateActive)
		seq := sw.seq
		sw.mu.Unlock()
		s.journal.recordSweep(manifest, seq)
		s.reg.AddUint("server/sweeps_recovered", 1)
		s.log.Info("journal: recovered sweep", "sweep", sw.id,
			"children", len(sw.children), "generation", sw.recovered)
		s.maybeFinishSweep(sw)
	}
	return gcKeys
}

func (s *Server) sweepFor(r *http.Request) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[r.PathValue("id")]
	return sw, ok
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sweeps := make([]*sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		sweeps = append(sweeps, sw)
	}
	s.mu.Unlock()
	views := make([]sweepView, 0, len(sweeps))
	for _, sw := range sweeps {
		views = append(views, sw.view())
	}
	// Stable order: newest first, id as tie-break (same rule as jobs).
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && sweepViewLess(views[k], views[k-1]); k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func sweepViewLess(a, b sweepView) bool {
	if a.Created != b.Created {
		return a.Created > b.Created
	}
	return a.ID < b.ID
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	v := sw.view()
	if !terminalState(v.State) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.sweepRetryAfter(sw)))
	}
	writeJSON(w, http.StatusOK, v)
}

// sweepRetryAfter hints when a sweep poller should come back: the sweep
// finishes with its deepest queued child, so that child's queue position
// governs — position-aware, like single-job polling. With nothing queued
// (children running or terminal) the hint is the 1-second floor.
func (s *Server) sweepRetryAfter(sw *sweep) int {
	deepest := -1
	for _, j := range sw.children {
		if pos := s.queue.position(j.id); pos > deepest {
			deepest = pos
		}
	}
	if deepest < 0 {
		return 1
	}
	return retryAfterSeconds(s.estimatedWait(deepest + 1))
}

// handleSweepResult serves the combined report: every child's rendered
// text concatenated in grid order. Each child's bytes came through
// cli.RenderReports (the same formatter the CLI uses), so the combined
// document is byte-identical to running the equivalent charonsim
// invocations locally and concatenating their reports.
func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	c := sw.counts()
	if c.pending() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.sweepRetryAfter(sw)))
		writeJSON(w, http.StatusAccepted, sw.view())
		return
	}
	if c.failed > 0 || c.canceled > 0 {
		for _, j := range sw.children {
			state, _, errMsg := j.snapshot()
			j.markFetched()
			if state == StateFailed {
				writeError(w, http.StatusInternalServerError,
					"sweep failed: child %s (%s): %s", j.id, j.spec.Experiment, errMsg)
				return
			}
			if state == StateCanceled {
				writeError(w, http.StatusGone,
					"sweep child %s (%s) was canceled: %s", j.id, j.spec.Experiment, errMsg)
				return
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, j := range sw.children {
		_, text, _ := j.snapshot()
		j.markFetched()
		io.WriteString(w, text)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
