package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charonsim"
	"charonsim/internal/checkpoint"
	"charonsim/internal/fault"
)

// journalFiles lists the published journal entries under a cache dir.
func journalFiles(t *testing.T, cacheDir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(cacheDir, "journal", "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestJournalRecordsBeforeAccept: the durability contract — by the time a
// 202 is visible, the job descriptor is on disk.
func TestJournalRecordsBeforeAccept(t *testing.T) {
	cacheDir := t.TempDir()
	g := newGate("r\n")
	_, base := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g.runner})

	resp, _ := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if n := len(journalFiles(t, cacheDir)); n != 1 {
		t.Fatalf("journal entries after 202 = %d, want 1", n)
	}
	close(g.open)
}

// TestJournalReplayResumesUnfinishedJobs: a server that dies holding an
// accepted job leaves a journal record; the next boot over the same cache
// directory requeues and finishes the work.
func TestJournalReplayResumesUnfinishedJobs(t *testing.T) {
	cacheDir := t.TempDir()

	// Server A accepts the job and "crashes" (no drain, no terminal
	// journal transition) while the job is running.
	gA := newGate("never\n")
	_, baseA := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: gA.runner})
	_, v := postJob(t, baseA, `{"experiment":"fig12","workloads":["BS"]}`)
	<-gA.started
	waitState(t, baseA, v.ID, StateRunning)

	// Server B boots over the same cache directory and must recover the
	// job from the journal without a client resubmission.
	gB := newGate("recovered result\n")
	close(gB.open)
	sB, baseB := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: gB.runner})
	got := waitState(t, baseB, v.ID, StateDone)
	if got.Recovered != 1 {
		t.Fatalf("recovered generation = %d, want 1", got.Recovered)
	}
	if body := fetchResult(t, baseB, v.ID); body != "recovered result\n" {
		t.Fatalf("recovered result = %q", body)
	}
	if n := sB.Metrics().Counter("server/journal_recovered"); n != 1 {
		t.Fatalf("journal_recovered = %v, want 1", n)
	}
}

// TestJournalGCsTerminalRecords: finished jobs leave terminal records that
// the next boot collects instead of replaying.
func TestJournalGCsTerminalRecords(t *testing.T) {
	cacheDir := t.TempDir()
	g := newGate("done result\n")
	close(g.open)
	s1, base1 := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g.runner})
	_, v := postJob(t, base1, `{"experiment":"fig12","workloads":["BS"]}`)
	waitState(t, base1, v.ID, StateDone)
	if err := drainWithin(s1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := len(journalFiles(t, cacheDir)); n != 1 {
		t.Fatalf("terminal journal entries before restart = %d, want 1", n)
	}

	g2 := newGate("WRONG — re-ran\n")
	close(g2.open)
	s2, base2 := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g2.runner})
	if n := len(journalFiles(t, cacheDir)); n != 0 {
		t.Fatalf("journal entries after GC boot = %d, want 0", n)
	}
	if n := s2.Metrics().Counter("server/journal_gc"); n != 1 {
		t.Fatalf("journal_gc = %v, want 1", n)
	}
	// The terminal job was not rehydrated into the table...
	if resp := getJSON(t, base2+"/v1/jobs/"+v.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GC'd job GET = %d, want 404", resp.StatusCode)
	}
	// ...but its result still serves from the response cache, without
	// re-running anything.
	resp, v2 := postJob(t, base2, `{"experiment":"fig12","workloads":["BS"]}`)
	if resp.StatusCode != http.StatusOK || !v2.Cached {
		t.Fatalf("resubmit after GC = %d cached %v, want 200 cached", resp.StatusCode, v2.Cached)
	}
	if g2.runs.Load() != 0 {
		t.Fatal("restart re-ran a job whose journal record was terminal")
	}
}

// TestJournalReplayCompletesFromCache models a crash in the window between
// persisting the result and journaling "done": the record still says
// running, but the bytes are in the response cache — boot must complete
// the job in place, not re-run it.
func TestJournalReplayCompletesFromCache(t *testing.T) {
	cacheDir := t.TempDir()
	spec := JobSpec{Experiment: "fig12", Workloads: []string{"BS"}}
	_, key, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	rst, err := checkpoint.Open(filepath.Join(cacheDir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(cachedResult{Experiment: spec.Experiment, Text: "persisted before crash\n"})
	if err := rst.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	jst, err := checkpoint.Open(filepath.Join(cacheDir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(journalRecord{
		Schema: journalSchema, ID: jobID(key), Key: key, Spec: spec,
		State: StateRunning, Created: time.Now(), Updated: time.Now(),
	})
	if err := jst.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	g := newGate("WRONG — recomputed\n")
	close(g.open)
	_, base := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g.runner})
	v := waitState(t, base, jobID(key), StateDone)
	if !v.Cached {
		t.Fatalf("replayed-from-cache job not marked cached: %+v", v)
	}
	if body := fetchResult(t, base, jobID(key)); body != "persisted before crash\n" {
		t.Fatalf("result = %q, want the pre-crash bytes", body)
	}
	if g.runs.Load() != 0 {
		t.Fatal("boot re-ran a job whose result was already persisted")
	}
	if n := len(journalFiles(t, cacheDir)); n != 0 {
		t.Fatalf("stale running record not collected: %d entries", n)
	}
}

// TestJournalDiscardsUnreadableRecords: garbage in the journal directory
// is logged and collected, never replayed.
func TestJournalDiscardsUnreadableRecords(t *testing.T) {
	cacheDir := t.TempDir()
	jdir := filepath.Join(cacheDir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A record with a spec that no longer resolves.
	jst, err := checkpoint.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(journalRecord{
		Schema: journalSchema, ID: "dead", Key: "job/v1|bogus", Spec: JobSpec{Experiment: "no-such-exp"},
		State: StateQueued, Created: time.Now(),
	})
	if err := jst.Put("job/v1|bogus", raw); err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir})
	if n := len(journalFiles(t, cacheDir)); n != 0 {
		t.Fatalf("unresolvable record survived boot: %d entries", n)
	}
	if n := s.Metrics().Counter("server/journal_recovered"); n != 0 {
		t.Fatalf("journal_recovered = %v, want 0", n)
	}
}

// transientRunner fails the first n invocations with a retryable error.
func transientRunner(n int64, sentinel error, result string) (func(context.Context, string, charonsim.Config) (string, error), *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, exp string, _ charonsim.Config) (string, error) {
		if calls.Add(1) <= n {
			return "", fmt.Errorf("attempt doomed: %w", sentinel)
		}
		return result, nil
	}, &calls
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	runner, calls := transientRunner(2, fault.ErrInjected, "third time lucky\n")
	s, base := newTestServer(t, Config{
		Workers: 1, RetryBudget: 2, RetryBackoff: time.Millisecond, runner: runner,
	})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	got := waitState(t, base, v.ID, StateDone)
	if calls.Load() != 3 {
		t.Fatalf("runner invoked %d times, want 3", calls.Load())
	}
	if len(got.Attempts) != 3 {
		t.Fatalf("attempt history = %d entries, want 3: %+v", len(got.Attempts), got.Attempts)
	}
	if got.Attempts[0].Error == "" || got.Attempts[2].Error != "" {
		t.Fatalf("attempt errors malformed: %+v", got.Attempts)
	}
	if n := s.Metrics().Counter("server/jobs_retried"); n != 2 {
		t.Fatalf("jobs_retried = %v, want 2", n)
	}
	if body := fetchResult(t, base, v.ID); body != "third time lucky\n" {
		t.Fatalf("result = %q", body)
	}
}

func TestRetryBudgetExhaustedReportsHistory(t *testing.T) {
	runner, calls := transientRunner(1<<30, charonsim.ErrInternal, "")
	_, base := newTestServer(t, Config{
		Workers: 1, RetryBudget: 1, RetryBackoff: time.Millisecond, runner: runner,
	})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	got := waitState(t, base, v.ID, StateFailed)
	if calls.Load() != 2 {
		t.Fatalf("runner invoked %d times, want 2 (1 + 1 retry)", calls.Load())
	}
	if !strings.Contains(got.Error, "failed after 2 attempts") {
		t.Fatalf("terminal error lacks attempt count: %q", got.Error)
	}
	if len(got.Attempts) != 2 {
		t.Fatalf("attempt history = %d entries, want 2", len(got.Attempts))
	}
}

func TestTerminalFailureDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, exp string, _ charonsim.Config) (string, error) {
		calls.Add(1)
		return "", fmt.Errorf("validation exploded") // not transient
	}
	s, base := newTestServer(t, Config{
		Workers: 1, RetryBudget: 5, RetryBackoff: time.Millisecond, runner: runner,
	})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	waitState(t, base, v.ID, StateFailed)
	if calls.Load() != 1 {
		t.Fatalf("non-transient failure ran %d times, want 1", calls.Load())
	}
	if n := s.Metrics().Counter("server/jobs_retried"); n != 0 {
		t.Fatalf("jobs_retried = %v, want 0", n)
	}
}

func TestRetryDisabledByNegativeBudget(t *testing.T) {
	runner, calls := transientRunner(1<<30, fault.ErrInjected, "")
	_, base := newTestServer(t, Config{
		Workers: 1, RetryBudget: -1, RetryBackoff: time.Millisecond, runner: runner,
	})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	waitState(t, base, v.ID, StateFailed)
	if calls.Load() != 1 {
		t.Fatalf("disabled retries still ran %d times, want 1", calls.Load())
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		a := backoffDelay(base, attempt, "job-a")
		if b := backoffDelay(base, attempt, "job-a"); a != b {
			t.Fatalf("attempt %d: nondeterministic delay %s vs %s", attempt, a, b)
		}
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		lo := base << uint(shift)
		hi := lo + lo/2
		if a < lo || a > hi {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, a, lo, hi)
		}
	}
	if backoffDelay(base, 1, "job-a") == backoffDelay(base, 1, "job-b") {
		t.Fatal("different jobs share a jitter schedule")
	}
}

// TestLoadShedding: once the duration estimator has evidence, submissions
// whose predicted wait exceeds the bound get 503 + Retry-After — while
// dedup hits on already-tracked jobs still answer 200.
func TestLoadShedding(t *testing.T) {
	g := newGate("r\n")
	s, base := newTestServer(t, Config{
		Workers: 1, QueueDepth: 16, ShedLatency: 10 * time.Millisecond, runner: g.runner,
	})

	// No evidence yet (no completed job): nothing sheds.
	resp, a := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("A = %d, want 202", resp.StatusCode)
	}
	<-g.started
	waitState(t, base, a.ID, StateRunning)
	resp, b := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("B with empty estimator = %d, want 202", resp.StatusCode)
	}

	// Feed the estimator a pathological mean: anything queued now implies
	// an hour of wait against a 10ms bound.
	s.avgRunNanos.Store(int64(time.Hour))
	resp, _ = postJob(t, base, `{"experiment":"fig12","workloads":["LR"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if n := s.Metrics().Counter("server/shed_rejected"); n != 1 {
		t.Fatalf("shed_rejected = %v, want 1", n)
	}
	// Dedup of the queued job B is still a 200, not a shed.
	resp, _ = postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup during shed = %d, want 200", resp.StatusCode)
	}

	close(g.open)
	waitState(t, base, a.ID, StateDone)
	waitState(t, base, b.ID, StateDone)
}

// TestDegradedCacheModeAndRecovery drives the persistence stack through a
// full disk (every write fails) and back: the server flips into degraded
// mode with gauges + error detail on /v1/metrics, keeps serving jobs from
// memory, and re-enables itself on the first successful write.
func TestDegradedCacheModeAndRecovery(t *testing.T) {
	ffs := fault.NewFS(fault.FSConfig{Seed: 7, WriteErrRate: 1}, nil)
	g := newGate("survives degraded mode\n")
	close(g.open)
	cfg := Config{Workers: 1, CacheDir: t.TempDir(), runner: g.runner}
	cfg.fsys = ffs
	s, base := newTestServer(t, cfg)

	// The job still completes even though every persistence write fails.
	_, v := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	waitState(t, base, v.ID, StateDone)
	if body := fetchResult(t, base, v.ID); body != "survives degraded mode\n" {
		t.Fatalf("degraded-mode result = %q", body)
	}

	snap := s.snapshotMetrics()
	if snap.Gauges["server/cache_degraded"] != 1 {
		t.Fatalf("cache_degraded gauge = %v, want 1", snap.Gauges["server/cache_degraded"])
	}
	if snap.Gauges["server/journal_degraded"] != 1 {
		t.Fatalf("journal_degraded gauge = %v, want 1", snap.Gauges["server/journal_degraded"])
	}
	if snap.Counters["server/result_cache/degraded_transitions"] < 1 {
		t.Fatalf("no degraded transition counted: %v", snap.Counters)
	}
	var mresp struct {
		Errors map[string]string `json:"errors"`
	}
	getJSON(t, base+"/v1/metrics", &mresp)
	if mresp.Errors["server/result_store/last_write_error"] == "" {
		t.Fatalf("/v1/metrics errors missing result-store detail: %+v", mresp.Errors)
	}

	// "Disk cleared": the next write succeeds and recovery is automatic.
	ffs.SetDisabled(true)
	_, v2 := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	waitState(t, base, v2.ID, StateDone)
	snap = s.snapshotMetrics()
	if snap.Gauges["server/cache_degraded"] != 0 {
		t.Fatalf("cache_degraded after recovery = %v, want 0", snap.Gauges["server/cache_degraded"])
	}
	if snap.Counters["server/result_cache/recoveries"] < 1 {
		t.Fatalf("no recovery counted: %v", snap.Counters)
	}
}

// TestSubmitBodyTooLargeIs413: a spec body past the MaxBytesReader bound
// is rejected with 413, not decoded.
func TestSubmitBodyTooLargeIs413(t *testing.T) {
	_, base := newTestServer(t, Config{})
	body := `{"experiment":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

// TestCancelRacesCompletion hammers DELETE against natural completion:
// whatever the interleaving, the job must land in exactly one terminal
// state and the journal's seq ordering must keep the durable record from
// rolling backwards (exercised under -race).
func TestCancelRacesCompletion(t *testing.T) {
	runner := func(ctx context.Context, exp string, _ charonsim.Config) (string, error) {
		return "instant\n", nil
	}
	_, base := newTestServer(t, Config{
		Workers: 4, QueueDepth: 64, CacheDir: t.TempDir(), runner: runner,
	})
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"experiment":"fig12","fault_rate":0.001,"fault_seed":%d}`, i+1)
		resp, v := postJob(t, base, body)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
			if r, err := http.DefaultClient.Do(req); err == nil {
				r.Body.Close()
			}
		}()
		wg.Wait()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var jv view
			getJSON(t, base+"/v1/jobs/"+v.ID, &jv)
			if jv.State == StateDone || jv.State == StateCanceled {
				break
			}
			if jv.State == StateFailed {
				t.Fatalf("iteration %d: job failed: %q", i, jv.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("iteration %d: job stuck in %q", i, jv.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
