package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"charonsim"
	"charonsim/internal/cli"
)

func postSweep(t *testing.T, base, body string) (*http.Response, sweepView) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v sweepView
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &v)
	return resp, v
}

// waitSweepState polls a sweep until it reaches want (or fails the test).
func waitSweepState(t *testing.T, base, id, want string) sweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v sweepView
		resp := getJSON(t, base+"/v1/sweeps/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET sweep %s = %d", id, resp.StatusCode)
		}
		if v.State == want {
			return v
		}
		if terminal(v.State) || time.Now().After(deadline) {
			t.Fatalf("sweep %s state %q (counts %v), want %q", id, v.State, v.Counts, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchSweepResult(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep result = %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

func TestSweepExpansion(t *testing.T) {
	// Grid order is experiments, then workloads, then heap factors, then
	// threads — outermost to innermost — and each child is the same job
	// (same canonical key) an individual submission would create.
	spec := SweepSpec{
		Experiments: []string{"fig12", "fig13"},
		Workloads:   []string{"BS", "KM"},
		HeapFactors: []float64{1.2, 1.5},
		Threads:     []int{4},
	}
	children, key, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 8 {
		t.Fatalf("children = %d, want 8", len(children))
	}
	var got []string
	for _, c := range children {
		got = append(got, fmt.Sprintf("%s/%s/%.1f", c.spec.Experiment, strings.Join(c.spec.Workloads, ","), c.spec.HeapFactor))
	}
	want := []string{
		"fig12/BS/1.2", "fig12/BS/1.5", "fig12/KM/1.2", "fig12/KM/1.5",
		"fig13/BS/1.2", "fig13/BS/1.5", "fig13/KM/1.2", "fig13/KM/1.5",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	// The child key matches an individually resolved job.
	single := JobSpec{Experiment: "fig12", Workloads: []string{"BS"}, HeapFactor: 1.2, Threads: 4}
	_, singleKey, err := single.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if children[0].key != singleKey {
		t.Fatalf("child key %q != individual job key %q", children[0].key, singleKey)
	}

	// Same grid, same sweep key; different grid, different key.
	_, key2, err := spec.Expand()
	if err != nil || key2 != key {
		t.Fatalf("re-expansion key mismatch: %q vs %q (err %v)", key2, key, err)
	}
	spec2 := spec
	spec2.Threads = []int{8}
	if _, key3, _ := spec2.Expand(); key3 == key {
		t.Fatal("different grid produced the same sweep key")
	}

	// Empty axes collapse to one default grid point each.
	minimal := SweepSpec{Experiments: []string{"fig12"}}
	ch, _, err := minimal.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || ch[0].spec.Workloads != nil {
		t.Fatalf("minimal sweep = %d children (workloads %v), want 1 child over the default workload set",
			len(ch), ch[0].spec.Workloads)
	}

	bad := []SweepSpec{
		{},                                       // no experiments
		{Experiments: []string{"no-such"}},       // unknown experiment
		{Experiments: []string{"fig12", "fig12"}}, // duplicate grid point
		{Experiments: []string{"fig12"}, Workloads: []string{" ", ""}}, // vacuous workloads
		{Experiments: []string{"fig12"}, HeapFactors: []float64{-3}},   // invalid knob
	}
	for i, sp := range bad {
		if _, _, err := sp.Expand(); err == nil {
			t.Errorf("bad[%d] expanded without error", i)
		}
	}

	// The child-count bound rejects oversized grids whole.
	huge := SweepSpec{Experiments: []string{"fig12"}, Threads: make([]int, 0, maxSweepChildren+1)}
	for i := 0; i <= maxSweepChildren; i++ {
		huge.Threads = append(huge.Threads, i+1)
	}
	if _, _, err := huge.Expand(); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("oversized grid error = %v, want child-count bound", err)
	}
}

func TestSweepEndToEndAndDedup(t *testing.T) {
	g := newGate("report\n")
	close(g.open) // free-running
	s, base := newTestServer(t, Config{Workers: 2, runner: g.runner})

	resp, sw := postSweep(t, base, `{"experiments":["fig12","fig13"],"workloads":["BS","KM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if sw.Total != 4 || len(sw.Children) != 4 {
		t.Fatalf("total = %d children = %d, want 4", sw.Total, len(sw.Children))
	}
	if resp.Header.Get("Location") != "/v1/sweeps/"+sw.ID {
		t.Fatalf("Location = %q", resp.Header.Get("Location"))
	}
	done := waitSweepState(t, base, sw.ID, StateDone)
	if done.Counts[StateDone] != 4 {
		t.Fatalf("done count = %d, want 4", done.Counts[StateDone])
	}
	text := fetchSweepResult(t, base, sw.ID)
	if text != strings.Repeat("report\n", 4) {
		t.Fatalf("combined result = %q", text)
	}
	if runs := g.runs.Load(); runs != 4 {
		t.Fatalf("runner invocations = %d, want 4", runs)
	}

	// Duplicate submission is the same sweep: 200, same id, and zero new
	// runner invocations — every child answer comes from dedup/cache.
	resp2, sw2 := postSweep(t, base, `{"experiments":["fig12","fig13"],"workloads":["BS","KM"]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", resp2.StatusCode)
	}
	if sw2.ID != sw.ID {
		t.Fatalf("duplicate sweep id %q != %q", sw2.ID, sw.ID)
	}
	if runs := g.runs.Load(); runs != 4 {
		t.Fatalf("runner invocations after duplicate = %d, want 4 (no re-runs)", runs)
	}
	if n := s.Metrics().Counter("server/sweep_dedup_hits"); n != 1 {
		t.Fatalf("sweep_dedup_hits = %v, want 1", n)
	}

	// An overlapping sweep (2 shared grid points, 2 new) only runs the
	// new children; the shared ones ride the job-level single-flight
	// dedup. It is born terminal only after its fresh children finish.
	resp3, sw3 := postSweep(t, base, `{"experiments":["fig12","fig13"],"workloads":["BS","LR"]}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("overlapping submit = %d, want 202", resp3.StatusCode)
	}
	if sw3.ID == sw.ID {
		t.Fatal("overlapping sweep deduplicated onto a different grid")
	}
	waitSweepState(t, base, sw3.ID, StateDone)
	if runs := g.runs.Load(); runs != 6 {
		t.Fatalf("runner invocations after overlap = %d, want 6 (2 new children only)", runs)
	}
}

// TestSweepResultMatchesCLI pins the byte-identity guarantee end to end
// with the real runner: the combined sweep report equals the
// concatenation of the equivalent charonsim CLI runs (minus the CLI's
// wall-clock trailer), in grid order.
func TestSweepResultMatchesCLI(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2})

	resp, sw := postSweep(t, base, `{"experiments":["table3","table4"],"workloads":["BS"]}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitSweepState(t, base, sw.ID, StateDone)
	got := fetchSweepResult(t, base, sw.ID)

	var want strings.Builder
	for _, exp := range []string{"table3", "table4"} {
		var cliOut, cliErr bytes.Buffer
		if code := cli.Run([]string{"-exp", exp, "-workloads", "BS"}, &cliOut, &cliErr); code != 0 {
			t.Fatalf("CLI run %s exited %d: %s", exp, code, cliErr.String())
		}
		want.WriteString(stripTrailer(cliOut.String()))
	}
	if got != want.String() {
		t.Fatalf("sweep bytes != CLI bytes\n-- sweep --\n%s\n-- cli --\n%s", got, want.String())
	}
}

func TestSweepFailureAggregation(t *testing.T) {
	failing := func(ctx context.Context, exp string, cfg charonsim.Config) (string, error) {
		if exp == "fig13" {
			return "", fmt.Errorf("synthetic child failure")
		}
		return "ok\n", nil
	}
	_, base := newTestServer(t, Config{Workers: 1, RetryBudget: -1, runner: failing})

	_, sw := postSweep(t, base, `{"experiments":["fig12","fig13"],"workloads":["BS"]}`)
	v := waitSweepState(t, base, sw.ID, StateFailed)
	if v.Counts[StateFailed] != 1 || v.Counts[StateDone] != 1 {
		t.Fatalf("counts = %v, want 1 failed + 1 done", v.Counts)
	}

	resp, err := http.Get(base + "/v1/sweeps/" + sw.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed sweep result = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "synthetic child failure") {
		t.Fatalf("failure body %q does not name the child error", raw)
	}
}

func TestSweepResultWhilePendingIs202(t *testing.T) {
	g := newGate("later\n")
	_, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	_, sw := postSweep(t, base, `{"experiments":["fig12","fig13"],"workloads":["BS"]}`)
	<-g.started // one child running, one queued
	resp, err := http.Get(base + "/v1/sweeps/" + sw.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pending sweep result = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("202 without Retry-After")
	}
	close(g.open)
	waitSweepState(t, base, sw.ID, StateDone)
}

func TestUnknownSweepIs404(t *testing.T) {
	_, base := newTestServer(t, Config{})
	resp := getJSON(t, base+"/v1/sweeps/doesnotexist", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestSweepRecoveryAfterCrash: a sweep whose manifest was journaled
// survives an unclean death — the next boot over the same cache
// directory re-expands the manifest, reattaches the replayed children
// under their original ids, and runs the sweep to completion without any
// client resubmission.
func TestSweepRecoveryAfterCrash(t *testing.T) {
	cacheDir := t.TempDir()

	// Process A: the first child starts running (blocked in the gate),
	// the second waits in the queue; then the process "dies" (no drain,
	// no journal cleanup).
	gA := newGate("never\n")
	_, baseA := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: gA.runner})
	_, swA := postSweep(t, baseA, `{"experiments":["fig12","fig13"],"workloads":["BS"]}`)
	<-gA.started
	var childIDsA []string
	for _, c := range swA.Children {
		childIDsA = append(childIDsA, c.ID)
	}

	// Process B boots over the same directory: the sweep manifest and
	// both unfinished children replay.
	gB := newGate("recovered\n")
	close(gB.open)
	sB, baseB := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: gB.runner})
	if n := sB.Metrics().Counter("server/sweeps_recovered"); n != 1 {
		t.Fatalf("sweeps_recovered = %v, want 1", n)
	}

	var swB sweepView
	if resp := getJSON(t, baseB+"/v1/sweeps/"+swA.ID, &swB); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered sweep GET = %d, want 200", resp.StatusCode)
	}
	if swB.Recovered != 1 {
		t.Fatalf("recovered generation = %d, want 1", swB.Recovered)
	}
	for i, c := range swB.Children {
		if c.ID != childIDsA[i] {
			t.Fatalf("child[%d] id changed across crash: %q vs %q", i, c.ID, childIDsA[i])
		}
	}
	waitSweepState(t, baseB, swA.ID, StateDone)
	if text := fetchSweepResult(t, baseB, swA.ID); text != "recovered\nrecovered\n" {
		t.Fatalf("recovered combined result = %q", text)
	}
}

// TestPollRetryAfterPositionAware pins satellite fix 2: a queued job's
// Retry-After reflects its own queue position, not the full queue.
func TestPollRetryAfterPositionAware(t *testing.T) {
	g := newGate("slow\n")
	s, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8, runner: g.runner})
	s.avgRunNanos.Store(int64(10 * time.Second)) // 10s per job, 1 worker

	_, _ = postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	<-g.started // running; the queue is empty again
	_, b := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	_, c := postJob(t, base, `{"experiment":"fig12","workloads":["LR"]}`)
	_, d := postJob(t, base, `{"experiment":"fig12","workloads":["PR"]}`)

	ra := func(v view) int {
		s.mu.Lock()
		j := s.jobs[v.ID]
		s.mu.Unlock()
		return s.pollRetryAfter(j)
	}
	if got := ra(b); got != 10 {
		t.Fatalf("head-of-queue Retry-After = %d, want 10 (one job ahead of completion)", got)
	}
	if got := ra(c); got != 20 {
		t.Fatalf("mid-queue Retry-After = %d, want 20", got)
	}
	if got := ra(d); got != 30 {
		t.Fatalf("tail Retry-After = %d, want 30", got)
	}
	close(g.open)
}

// TestEvictionPrefersFetchedResults pins satellite fix 3: retention
// pressure evicts terminal jobs whose result was already delivered
// before older jobs still holding an unread answer.
func TestEvictionPrefersFetchedResults(t *testing.T) {
	instant := func(ctx context.Context, exp string, cfg charonsim.Config) (string, error) {
		return "r\n", nil
	}
	_, base := newTestServer(t, Config{Workers: 1, MaxJobs: 2, runner: instant})

	// unread finishes first (older), fetched second (newer, result read).
	_, unread := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	waitState(t, base, unread.ID, StateDone)
	_, fetched := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	waitState(t, base, fetched.ID, StateDone)
	fetchResult(t, base, fetched.ID)

	// A third insert forces one eviction: the fetched job must go, even
	// though the unread one is older.
	_, third := postJob(t, base, `{"experiment":"fig12","workloads":["LR"]}`)
	waitState(t, base, third.ID, StateDone)

	if resp := getJSON(t, base+"/v1/jobs/"+fetched.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetched job survived eviction (GET = %d, want 404)", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/v1/jobs/"+unread.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("unread job was evicted (GET = %d, want 200)", resp.StatusCode)
	}
}

// TestServerBackoffDelayShiftCap: the retry backoff exponent saturates,
// so absurd attempt counts cannot overflow into negative or huge waits.
func TestServerBackoffDelayShiftCap(t *testing.T) {
	base := 100 * time.Millisecond
	capped := backoffDelay(base, 6, "job-x")
	for _, attempt := range []int{7, 20, 63, 1000} {
		d := backoffDelay(base, attempt, "job-x")
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v <= 0", attempt, d)
		}
		// Same shift cap, same id ⇒ only the jitter term (derived from
		// attempt) differs; the doubling must have stopped at 64x.
		if d > 2*capped {
			t.Fatalf("attempt %d: delay %v escaped the 64x cap (%v at attempt 6)", attempt, d, capped)
		}
	}
}
