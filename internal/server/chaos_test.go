package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"charonsim/internal/cli"
)

// charondProc is one charond subprocess booted through the helper-process
// trampoline (TestCharondHelperProcess).
type charondProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
	errb *bytes.Buffer
}

// startCharond boots charond as a real OS process on an ephemeral port
// and waits for its listening announcement.
func startCharond(t *testing.T, args ...string) *charondProc {
	t.Helper()
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(os.Args[0], "-test.run=TestCharondHelperProcess$")
	cmd.Env = append(os.Environ(), "CHAROND_HELPER=1",
		"CHAROND_ARGS="+strings.Join(args, "\x1f"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("charond printed no listening line; stderr:\n%s", errb.String())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected stdout line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	return &charondProc{cmd: cmd, base: strings.TrimSpace(line[i+len(marker):]), errb: &errb}
}

// unitFingerprints records name → mtime+size for every published unit
// checkpoint, the evidence for the no-duplicate-execution assertion.
func unitFingerprints(t *testing.T, unitsDir string) map[string]string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(unitsDir, "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	fp := make(map[string]string, len(matches))
	for _, m := range matches {
		st, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		fp[m] = fmt.Sprintf("%d/%d", st.ModTime().UnixNano(), st.Size())
	}
	return fp
}

// TestCharondKill9Recovery is the chaos gate at the Go level (the
// chaos-smoke script repeats it over bash + curl): kill -9 a charond
// mid-job, restart it over the same cache directory, and assert the job
// is replayed from the journal to a byte-identical result with every
// pre-crash simulation unit reused untouched.
func TestCharondKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos run is slow")
	}
	cacheDir := t.TempDir()
	args := []string{"-workers", "1", "-queue", "4", "-cache-dir", cacheDir}

	p1 := startCharond(t, args...)
	resp, err := http.Post(p1.base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig2","workloads":["BS"]}`))
	if err != nil {
		t.Fatalf("submit: %v; stderr:\n%s", err, p1.errb.String())
	}
	var v view
	dec := jsonDecode(resp.Body, &v)
	resp.Body.Close()
	if dec != nil || v.ID == "" {
		t.Fatalf("submit decode: %v (%+v)", dec, v)
	}
	// Durability contract: the journal record is published before the 202.
	if rec, _ := filepath.Glob(filepath.Join(cacheDir, "journal", "*.ckpt.json")); len(rec) == 0 {
		t.Fatal("no journal record on disk after the 202")
	}

	// Kill once the first simulation unit is checkpointed, so recovery
	// resumes genuinely partial work.
	unitsDir := filepath.Join(cacheDir, "units")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(unitsDir, "*.ckpt.json")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no unit checkpoint appeared; stderr:\n%s", p1.errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()
	before := unitFingerprints(t, unitsDir)
	if len(before) == 0 {
		t.Fatal("no completed units survived the kill")
	}

	// Restart over the same cache directory: the job must reappear from
	// the journal under its original id, without any resubmission.
	p2 := startCharond(t, args...)
	r, err := http.Get(p2.base + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var jv view
	_ = jsonDecode(r.Body, &jv)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("recovered job GET = %d, want 200; stderr:\n%s", r.StatusCode, p2.errb.String())
	}
	if jv.Recovered < 1 {
		t.Fatalf("job not marked crash-recovered: %+v", jv)
	}

	deadline = time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(p2.base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		_ = jsonDecode(r.Body, &jv)
		r.Body.Close()
		if jv.State == StateDone {
			break
		}
		if terminal(jv.State) || time.Now().After(deadline) {
			t.Fatalf("recovered job state %q (err %q); stderr:\n%s", jv.State, jv.Error, p2.errb.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// No duplicate unit execution: every pre-crash unit file is untouched.
	after := unitFingerprints(t, unitsDir)
	for name, fp := range before {
		if after[name] != fp {
			t.Errorf("pre-crash unit %s rewritten (%s -> %s): completed work re-executed",
				filepath.Base(name), fp, after[name])
		}
	}

	// Byte-identity: the recovered report equals the CLI's output.
	r, err = http.Get(p2.base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", r.StatusCode, served)
	}
	var cliOut, cliErr bytes.Buffer
	if code := cli.Run([]string{"-exp", "fig2", "-workloads", "BS"}, &cliOut, &cliErr); code != 0 {
		t.Fatalf("CLI exited %d: %s", code, cliErr.String())
	}
	if want := stripTrailer(cliOut.String()); string(served) != want {
		t.Fatalf("recovered report diverged from CLI:\n--- served ---\n%q\n--- cli ---\n%q", served, want)
	}

	// Clean drain to finish.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p2.cmd.Wait()
	if code := p2.cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("post-recovery drain exited %d; stderr:\n%s", code, p2.errb.String())
	}
}
