package server

// Network-edge behaviour: client deadline propagation (X-Charon-Deadline),
// derived Retry-After hints, and the submit path's concurrency contract
// under duplicate-storm load (run with -race).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// postJobDeadline posts a job spec with an X-Charon-Deadline header.
func postJobDeadline(t *testing.T, base, body, deadline string) (*http.Response, view) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	_ = jsonDecode(resp.Body, &v)
	return resp, v
}

func TestSubmitExpiredDeadlineRejected(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	past := time.Now().Add(-time.Second).UTC().Format(time.RFC3339Nano)
	resp, _ := postJobDeadline(t, base, `{"experiment":"fig12"}`, past)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline submit = %d, want 504", resp.StatusCode)
	}
	if got := s.Metrics().Counter("server/deadline_expired_rejects"); got != 1 {
		t.Fatalf("deadline_expired_rejects = %v, want 1", got)
	}
	if n := g.runs.Load(); n != 0 {
		t.Fatalf("runner invoked %d times for a dead-on-arrival submission", n)
	}

	// Malformed header: 400, not silent acceptance.
	resp, _ = postJobDeadline(t, base, `{"experiment":"fig12"}`, "half past never")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline = %d, want 400", resp.StatusCode)
	}
}

// TestDeadlineBoundsRunningJob: a header deadline becomes the job
// context's deadline — a job that outlives it fails with a
// deadline-specific message, and the effective deadline shows in the
// status view.
func TestDeadlineBoundsRunningJob(t *testing.T) {
	g := newGate("never\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	dl := time.Now().Add(250 * time.Millisecond)
	resp, v := postJobDeadline(t, base, `{"experiment":"fig12"}`,
		dl.UTC().Format(time.RFC3339Nano))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	<-g.started // running; the gate stays shut so only the deadline can end it

	got := waitState(t, base, v.ID, StateFailed)
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("failure message %q does not mention the deadline", got.Error)
	}
	if got.Deadline == "" {
		t.Fatal("job view has no effective deadline")
	}
	reported, err := time.Parse(time.RFC3339Nano, got.Deadline)
	if err != nil {
		t.Fatalf("deadline %q is not RFC3339Nano: %v", got.Deadline, err)
	}
	if diff := reported.Sub(dl); diff < -time.Second || diff > time.Second {
		t.Fatalf("reported deadline %v is %v away from the submitted one %v", reported, diff, dl)
	}
	if got := s.Metrics().Counter("server/deadline_expired_running"); got != 1 {
		t.Fatalf("deadline_expired_running = %v, want 1", got)
	}
}

// TestDeadlineTightenedByRunTimeout: the effective deadline is
// min(header, start+RunTimeout) — a generous client deadline does not
// loosen the server's own execution budget.
func TestDeadlineTightenedByRunTimeout(t *testing.T) {
	g := newGate("never\n")
	_, base := newTestServer(t, Config{Workers: 1, JobTimeout: 200 * time.Millisecond, runner: g.runner})

	start := time.Now()
	_, v := postJobDeadline(t, base, `{"experiment":"fig12"}`,
		start.Add(time.Hour).UTC().Format(time.RFC3339Nano))
	<-g.started

	got := waitState(t, base, v.ID, StateFailed)
	reported, err := time.Parse(time.RFC3339Nano, got.Deadline)
	if err != nil {
		t.Fatalf("deadline %q: %v", got.Deadline, err)
	}
	if reported.After(start.Add(time.Minute)) {
		t.Fatalf("effective deadline %v kept the client's 1h horizon; want it tightened to start+RunTimeout", reported)
	}
}

// TestDeadlineExpiredWhileQueued: a job whose deadline lapses before a
// worker reaches it fails without ever invoking the runner.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	// A occupies the only worker.
	_, a := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	<-g.started
	waitState(t, base, a.ID, StateRunning)

	// B queues behind it with a deadline that cannot survive the wait.
	resp, b := postJobDeadline(t, base, `{"experiment":"fig12","workloads":["KM"]}`,
		time.Now().Add(50*time.Millisecond).UTC().Format(time.RFC3339Nano))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("B = %d, want 202", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond) // let B's deadline lapse in the queue
	close(g.open)                      // A finishes; the worker reaches B

	got := waitState(t, base, b.ID, StateFailed)
	if !strings.Contains(got.Error, "expired while queued") {
		t.Fatalf("B failed with %q, want an expired-while-queued message", got.Error)
	}
	if n := g.runs.Load(); n != 1 {
		t.Fatalf("runner invoked %d times, want 1 (B must not run)", n)
	}
	if got := s.Metrics().Counter("server/deadline_expired_queued"); got != 1 {
		t.Fatalf("deadline_expired_queued = %v, want 1", got)
	}
}

// TestDrainingRetryAfterDerived: the draining 503's Retry-After is the
// remaining drain budget, not a hardcoded constant.
func TestDrainingRetryAfterDerived(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	_, a := postJob(t, base, `{"experiment":"fig12"}`)
	<-g.started
	waitState(t, base, a.ID, StateRunning)

	// Drain with a 7s budget while the job keeps the worker pinned.
	dctx, dcancel := context.WithTimeout(context.Background(), 7*time.Second)
	defer dcancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(dctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postJob(t, base, `{"experiment":"fig13"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra < 4 || ra > 7 {
		t.Fatalf("Retry-After = %d, want the ~7s remaining drain budget (4..7)", ra)
	}

	close(g.open)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPollRetryAfterFromEstimator: the 202 poll hint scales with the
// estimated queue wait instead of a hardcoded 1.
func TestPollRetryAfterFromEstimator(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	// A pins the worker; B sits in the queue.
	_, a := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	<-g.started
	waitState(t, base, a.ID, StateRunning)
	_, b := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)

	// A running job polls at the floor.
	resp := getJSON(t, base+"/v1/jobs/"+a.ID+"/result", nil)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("running poll: status=%d Retry-After=%q, want 202/\"1\"", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Teach the estimator that jobs take ~3s: the queued job's hint
	// becomes ceil(1 queued × 3s ÷ 1 worker) = 3.
	s.avgRunNanos.Store(int64(3 * time.Second))
	resp = getJSON(t, base+"/v1/jobs/"+b.ID+"/result", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued poll = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("queued poll Retry-After = %q, want \"3\"", got)
	}

	close(g.open)
	waitState(t, base, a.ID, StateDone)
	waitState(t, base, b.ID, StateDone)
}

// TestConcurrentDuplicateSubmissions is the duplicate-storm hammer: N
// identical POSTs racing on a cold server must converge on one job id,
// one runner invocation, and one journal record — the single-flight
// contract that makes client-side submit retries (and ambiguous
// network failures) safe. Run with -race.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir(), runner: g.runner})

	const n = 32
	var wg sync.WaitGroup
	ids := make([]string, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/jobs", "application/json",
				strings.NewReader(`{"experiment":"fig12","workloads":["BS"]}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var v view
			_ = jsonDecode(resp.Body, &v)
			ids[i], statuses[i] = v.ID, resp.StatusCode
		}(i)
	}
	wg.Wait()

	accepted := 0
	for i := 0; i < n; i++ {
		if ids[i] == "" || ids[i] != ids[0] {
			t.Fatalf("POST %d got job id %q, want every id identical to %q", i, ids[i], ids[0])
		}
		switch statuses[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK: // dedup hit
		default:
			t.Fatalf("POST %d = %d, want 202 or 200", i, statuses[i])
		}
	}
	if accepted != 1 {
		t.Fatalf("%d POSTs were accepted as new jobs, want exactly 1", accepted)
	}

	<-g.started
	close(g.open)
	waitState(t, base, ids[0], StateDone)
	if runs := g.runs.Load(); runs != 1 {
		t.Fatalf("runner invoked %d times for %d identical submissions, want 1", runs, n)
	}
	if recs, err := s.journal.st.Len(); err != nil || recs != 1 {
		t.Fatalf("journal holds %d records (err %v), want exactly 1", recs, err)
	}
	if fmt.Sprint(g.runs.Load()) != "1" { // belt and braces after the drain of events
		t.Fatal("late duplicate execution detected")
	}
}

// TestEdgeServerTearsDownStalledWriter: a client that sends a request
// and then never reads the response cannot pin the connection — the
// edge server's WriteTimeout fires and the connection is torn down
// mid-body.
func TestEdgeServerTearsDownStalledWriter(t *testing.T) {
	// A body far larger than the kernel socket buffers, so the server's
	// write genuinely stalls against a non-reading peer.
	big := bytes.Repeat([]byte("x"), 32<<20)
	hs := edgeServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(big)
	}), 300*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close(); ln.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "GET /healthz HTTP/1.1\r\nHost: charond\r\n\r\n")

	// Stall: read nothing while the server tries to push 32MB. After
	// WriteTimeout the server must close the connection, so draining the
	// socket now ends early instead of yielding the full body.
	time.Sleep(600 * time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, _ := io.Copy(io.Discard, conn)
	if n >= int64(len(big)) {
		t.Fatalf("stalled client still received the full %d-byte body; WriteTimeout never fired", len(big))
	}
}
