package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"charonsim"
	"charonsim/internal/cli"
)

// newTestServer builds a server plus an httptest front-end and registers
// cleanup. The returned base URL has no trailing slash.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs.URL
}

func postJob(t *testing.T, base, body string) (*http.Response, view) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &v)
	return resp, v
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		_ = json.Unmarshal(raw, out)
	}
	return resp
}

// waitState polls a job until it reaches want (or fails the test).
func waitState(t *testing.T, base, id, want string) view {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v view
		resp := getJSON(t, base+"/v1/jobs/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, resp.StatusCode)
		}
		if v.State == want {
			return v
		}
		if terminal(v.State) || time.Now().After(deadline) {
			t.Fatalf("job %s state %q (error %q), want %q", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

func TestJobKeyCanonicalization(t *testing.T) {
	base := JobSpec{Experiment: "fig12", Workloads: []string{"BS", "KM"}}
	_, baseKey, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	same := []JobSpec{
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}},
		{Experiment: "fig12", Workloads: []string{" BS ", "", "KM"}},            // token hygiene
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, Threads: 8},      // default resolved
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, HeapFactor: 1.5}, // default resolved
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, RunTimeout: ""},  // empty duration
	}
	for i, sp := range same {
		_, key, err := sp.Resolve()
		if err != nil {
			t.Fatalf("same[%d]: %v", i, err)
		}
		if key != baseKey {
			t.Errorf("same[%d] key mismatch:\n got %s\nwant %s", i, key, baseKey)
		}
	}

	different := []JobSpec{
		{Experiment: "fig13", Workloads: []string{"BS", "KM"}},
		{Experiment: "fig12", Workloads: []string{"KM", "BS"}}, // order is result order
		{Experiment: "fig12", Workloads: []string{"BS"}},
		{Experiment: "fig12"}, // all six
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, Threads: 4},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, HeapFactor: 2},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, Parallelism: 1},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, FaultRate: 0.01},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, FaultRate: 0.01, FaultSeed: 7},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, OffloadDeadln: "1ms", FaultSeed: 1},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, RunTimeout: "5m"},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, WatchdogStalls: 100},
		{Experiment: "fig12", Workloads: []string{"BS", "KM"}, WatchdogQueue: 100},
	}
	seen := map[string]int{baseKey: -1}
	for i, sp := range different {
		_, key, err := sp.Resolve()
		if err != nil {
			t.Fatalf("different[%d]: %v", i, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("different[%d] collides with case %d: %s", i, prev, key)
		}
		seen[key] = i
	}

	// Identical spec ⇒ identical job id, and the id is the checkpoint
	// content address of the key.
	if jobID(baseKey) != jobID(baseKey) || len(jobID(baseKey)) != 16 {
		t.Fatalf("jobID not stable/16-hex: %q", jobID(baseKey))
	}
}

func TestResolveRejectsBadSpecs(t *testing.T) {
	bad := []JobSpec{
		{},                                 // no experiment
		{Experiment: "nope"},               // unknown experiment
		{Experiment: "fig12", Threads: -1}, // Config.Validate
		{Experiment: "fig12", Workloads: []string{"XX"}},
		{Experiment: "fig12", RunTimeout: "not-a-duration"},
		{Experiment: "fig12", OffloadDeadln: "5 parsecs"},
		{Experiment: "fig12", FaultRate: 1.5},
	}
	for i, sp := range bad {
		if _, _, err := sp.Resolve(); err == nil {
			t.Errorf("bad[%d] (%+v) resolved without error", i, sp)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, base := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"experiment":"table4"}`, http.StatusAccepted},
		{`{"experiment":"nope"}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"experiment":"fig12","bogus_knob":1}`, http.StatusBadRequest}, // unknown fields rejected
		{`{"experiment":"fig12","threads":-2}`, http.StatusBadRequest},
		{`{"experiment":"fig12","run_timeout":"banana"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postJob(t, base, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("POST %s = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

// gate is a controllable runner: every invocation signals its start, then
// blocks until the gate is opened or the job context is canceled.
type gate struct {
	started chan string
	open    chan struct{}
	runs    atomic.Int64
	result  string
}

func newGate(result string) *gate {
	return &gate{started: make(chan string, 64), open: make(chan struct{}), result: result}
}

func (g *gate) runner(ctx context.Context, exp string, _ charonsim.Config) (string, error) {
	g.runs.Add(1)
	g.started <- exp
	select {
	case <-g.open:
		return g.result, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

func TestBackpressure(t *testing.T) {
	g := newGate("report\n")
	s, base := newTestServer(t, Config{Workers: 1, QueueDepth: 1, runner: g.runner})

	// Job A: picked up by the single worker; wait until it is running so
	// the queue slot is genuinely free for B.
	resp, a := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("A = %d, want 202", resp.StatusCode)
	}
	<-g.started
	waitState(t, base, a.ID, StateRunning)

	// Job B fills the queue's one slot.
	resp, b := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("B = %d, want 202", resp.StatusCode)
	}

	// Job C: queue full ⇒ 429 with Retry-After.
	resp, _ = postJob(t, base, `{"experiment":"fig12","workloads":["LR"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("C = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.Metrics().Counter("server/queue_rejected"); got != 1 {
		t.Fatalf("queue_rejected = %v, want 1", got)
	}

	// Drain the queue: let A (then B) finish; C's descriptor is accepted
	// once a slot frees up.
	close(g.open)
	waitState(t, base, a.ID, StateDone)
	waitState(t, base, b.ID, StateDone)
	resp, c := postJob(t, base, `{"experiment":"fig12","workloads":["LR"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("C after drain = %d, want 202", resp.StatusCode)
	}
	waitState(t, base, c.ID, StateDone)
}

func TestCancelMidRun(t *testing.T) {
	g := newGate("never\n")
	_, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	<-g.started
	waitState(t, base, v.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}
	got := waitState(t, base, v.ID, StateCanceled)
	if !strings.Contains(got.Error, "canceled by client") {
		t.Fatalf("cancel reason not recorded: %q", got.Error)
	}

	// The result endpoint reports the cancellation.
	rresp := getJSON(t, base+"/v1/jobs/"+v.ID+"/result", nil)
	if rresp.StatusCode != http.StatusGone {
		t.Fatalf("result of canceled job = %d, want 410", rresp.StatusCode)
	}

	// A resubmission after cancellation is a fresh attempt, not a dedup hit.
	resp2, v2 := postJob(t, base, `{"experiment":"fig12"}`)
	if resp2.StatusCode != http.StatusAccepted || v2.ID != v.ID {
		t.Fatalf("resubmit after cancel = %d id %s, want 202 id %s", resp2.StatusCode, v2.ID, v.ID)
	}
	<-g.started
	close(g.open)
	waitState(t, base, v2.ID, StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	g := newGate("r\n")
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4, runner: g.runner})
	_, a := postJob(t, base, `{"experiment":"fig12","workloads":["BS"]}`)
	<-g.started
	waitState(t, base, a.ID, StateRunning)
	_, b := postJob(t, base, `{"experiment":"fig12","workloads":["KM"]}`) // sits in queue

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, base, b.ID, StateCanceled)

	close(g.open)
	waitState(t, base, a.ID, StateDone)
	// The canceled queued job must never have started.
	if n := g.runs.Load(); n != 1 {
		t.Fatalf("runner invoked %d times, want 1 (canceled queued job must not run)", n)
	}
}

func TestDedupWhileRunningAndCacheHitWhenDone(t *testing.T) {
	g := newGate("the report\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})

	resp1, v1 := postJob(t, base, `{"experiment":"fig12"}`)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first = %d", resp1.StatusCode)
	}
	<-g.started
	// Identical submission while running: same job, 200, no second run.
	resp2, v2 := postJob(t, base, `{"experiment":"fig12"}`)
	if resp2.StatusCode != http.StatusOK || v2.ID != v1.ID {
		t.Fatalf("dedup = %d id %s, want 200 id %s", resp2.StatusCode, v2.ID, v1.ID)
	}

	close(g.open)
	waitState(t, base, v1.ID, StateDone)
	// Identical submission when done: served from the completed job.
	resp3, v3 := postJob(t, base, `{"experiment":"fig12"}`)
	if resp3.StatusCode != http.StatusOK || v3.ID != v1.ID || v3.State != StateDone {
		t.Fatalf("post-done dedup = %d id %s state %s", resp3.StatusCode, v3.ID, v3.State)
	}
	if n := g.runs.Load(); n != 1 {
		t.Fatalf("runner ran %d times for 3 identical submissions, want 1", n)
	}
	if hits := s.Metrics().Counter("server/cache_hits"); hits < 1 {
		t.Fatalf("cache_hits = %v, want >= 1", hits)
	}
	// /v1/metrics surfaces the counters.
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	getJSON(t, base+"/v1/metrics", &snap)
	if snap.Counters["server/cache_hits"] < 1 {
		t.Fatalf("/v1/metrics cache_hits = %v, want >= 1", snap.Counters["server/cache_hits"])
	}
}

func TestWarmRestartServesFromDiskCache(t *testing.T) {
	cacheDir := t.TempDir()
	g1 := newGate("expensive result\n")
	close(g1.open) // run immediately
	s1, base1 := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g1.runner})
	_, v1 := postJob(t, base1, `{"experiment":"fig12"}`)
	waitState(t, base1, v1.ID, StateDone)
	if err := drainWithin(s1, time.Second); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same cache directory. The runner
	// must never fire; the response comes off disk byte-identically.
	g2 := newGate("WRONG — recomputed\n")
	close(g2.open)
	_, base2 := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir, runner: g2.runner})
	resp, v2 := postJob(t, base2, `{"experiment":"fig12"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm submit = %d, want 200", resp.StatusCode)
	}
	if !v2.Cached || v2.State != StateDone {
		t.Fatalf("warm job = cached %v state %s, want cached done", v2.Cached, v2.State)
	}
	body := fetchResult(t, base2, v2.ID)
	if body != "expensive result\n" {
		t.Fatalf("warm result = %q, want the originally computed bytes", body)
	}
	if g2.runs.Load() != 0 {
		t.Fatal("warm restart recomputed instead of serving the disk cache")
	}
}

func fetchResult(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

func drainWithin(s *Server, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Drain(ctx)
}

func TestDrainWaitsForRunningJobs(t *testing.T) {
	g := newGate("finished during drain\n")
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	<-g.started

	drained := make(chan error, 1)
	go func() { drained <- drainWithin(s, 30*time.Second) }()

	// While draining: reads still work, new work is refused with 503.
	waitState(t, base, v.ID, StateRunning)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := getJSON(t, base+"/readyz", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postJob(t, base, `{"experiment":"fig13"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}

	close(g.open)
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v, want nil (job finished in time)", err)
	}
	got := waitState(t, base, v.ID, StateDone)
	if got.State != StateDone {
		t.Fatalf("job after clean drain = %s", got.State)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	g := newGate("never finishes\n") // gate never opens
	s, base := newTestServer(t, Config{Workers: 1, runner: g.runner})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	<-g.started
	waitState(t, base, v.ID, StateRunning)

	if err := drainWithin(s, 50*time.Millisecond); err == nil {
		t.Fatal("drain with a wedged job returned nil, want deadline error")
	}
	got := waitState(t, base, v.ID, StateCanceled)
	if !strings.Contains(got.Error, "drain deadline") {
		t.Fatalf("drain-canceled job error = %q, want drain-deadline reason", got.Error)
	}
}

// TestServedReportMatchesCLI is the end-to-end byte-identity gate at the
// Go level (the serve-smoke script repeats it over real HTTP + processes):
// the same experiment through the HTTP API and through the CLI produce
// identical bytes, and the cached re-serve is identical again.
func TestServedReportMatchesCLI(t *testing.T) {
	cacheDir := t.TempDir()
	_, base := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir})

	// table4 is render-only, so this stays fast while exercising the full
	// real-runner path.
	resp, v := postJob(t, base, `{"experiment":"table4"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitState(t, base, v.ID, StateDone)
	served := fetchResult(t, base, v.ID)

	var cliOut, cliErr bytes.Buffer
	if code := cli.Run([]string{"-exp", "table4"}, &cliOut, &cliErr); code != 0 {
		t.Fatalf("CLI exited %d: %s", code, cliErr.String())
	}
	want := stripTrailer(cliOut.String())
	if served != want {
		t.Fatalf("served report diverged from CLI:\n--- served ---\n%q\n--- cli ---\n%q", served, want)
	}

	// Fresh server over the same cache: the disk-cached bytes must equal
	// the freshly-computed ones (graceful-drain reuse path).
	_, base2 := newTestServer(t, Config{Workers: 1, CacheDir: cacheDir})
	resp2, v2 := postJob(t, base2, `{"experiment":"table4"}`)
	if resp2.StatusCode != http.StatusOK || !v2.Cached {
		t.Fatalf("warm submit = %d cached %v, want 200 cached", resp2.StatusCode, v2.Cached)
	}
	if got := fetchResult(t, base2, v2.ID); got != want {
		t.Fatalf("cached report diverged from freshly computed:\n%q\nvs\n%q", got, want)
	}
}

// stripTrailer removes the CLI's wall-clock trailer line, its only
// non-deterministic output.
func stripTrailer(s string) string {
	lines := strings.Split(s, "\n")
	var keep []string
	for _, l := range lines {
		if strings.HasPrefix(l, "(") && strings.Contains(l, "experiment(s) in") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, base := newTestServer(t, Config{})
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	if resp := getJSON(t, base+"/v1/metrics", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if _, ok := snap.Counters["server/jobs_tracked"]; !ok {
		t.Fatalf("metrics missing server/jobs_tracked: %v", snap.Counters)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, base := newTestServer(t, Config{})
	for _, url := range []string{base + "/v1/jobs/deadbeef", base + "/v1/jobs/deadbeef/result"} {
		if resp := getJSON(t, url, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", url, resp.StatusCode)
		}
	}
}

func TestResultWhileRunningIs202(t *testing.T) {
	g := newGate("r\n")
	_, base := newTestServer(t, Config{Workers: 1, runner: g.runner})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	<-g.started
	waitState(t, base, v.ID, StateRunning)
	resp := getJSON(t, base+"/v1/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("result while running = %d, want 202", resp.StatusCode)
	}
	close(g.open)
	waitState(t, base, v.ID, StateDone)
}

func TestFailedJobSurfacesError(t *testing.T) {
	failing := func(ctx context.Context, exp string, _ charonsim.Config) (string, error) {
		return "", fmt.Errorf("synthetic failure")
	}
	_, base := newTestServer(t, Config{Workers: 1, runner: failing})
	_, v := postJob(t, base, `{"experiment":"fig12"}`)
	got := waitState(t, base, v.ID, StateFailed)
	if !strings.Contains(got.Error, "synthetic failure") {
		t.Fatalf("failure not surfaced: %q", got.Error)
	}
	resp := getJSON(t, base+"/v1/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("result of failed job = %d, want 500", resp.StatusCode)
	}
}
