// Package server implements charond, the long-running simulation service:
// an HTTP job API over the charonsim experiment harness. Jobs (an
// experiment id plus a charonsim.Config) are validated at admission,
// queued into a bounded admission queue with backpressure (429 +
// Retry-After when full), executed on a fixed worker pool through the
// public RunContext/RunAllContext entry points (which share recorded
// workloads within a job via experiments.Session), and cached: identical
// submissions are deduplicated single-flight in memory and served from a
// checkpoint-backed response cache on disk, so a warm restart answers
// repeat jobs without simulating.
//
// Endpoints:
//
//	POST   /v1/jobs             submit (202; 200 on dedup/cache hit; 429 full; 503 draining)
//	GET    /v1/jobs             list tracked jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result rendered report (CLI byte-identical)
//	DELETE /v1/jobs/{id}        cancel (context-propagated, event-loop granularity)
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//	GET    /v1/metrics          server + cache counters (internal/metrics snapshot)
//
// Graceful drain: Drain stops admission, lets queued/running jobs finish,
// and on deadline expiry cancels in-flight jobs — whose completed replay
// units are already persisted in the shared per-unit checkpoint store, so
// a restarted server resumes them instead of recomputing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charonsim"
	"charonsim/internal/atomicio"
	"charonsim/internal/checkpoint"
	"charonsim/internal/cli"
	"charonsim/internal/fault"
	"charonsim/internal/metrics"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of concurrent job executors (default 2). Each
	// job additionally fans its simulation units out per its own
	// Parallelism knob, so keep Workers small.
	Workers int
	// QueueDepth bounds the admission queue (default 16). A full queue
	// rejects submissions with 429 + Retry-After.
	QueueDepth int
	// CacheDir, when non-empty, enables the on-disk layer: completed job
	// reports are persisted in CacheDir/results (checkpoint-backed,
	// checksummed, atomic) and served on identical resubmission across
	// restarts, and jobs run with CacheDir/units as their per-unit
	// checkpoint store so partially-completed work survives a drain.
	// Empty keeps both caches in memory only (dedup still works within
	// the process lifetime).
	CacheDir string
	// JobTimeout, when positive, is the default per-unit RunTimeout
	// applied to jobs that do not set run_timeout themselves. It reuses
	// the existing RunTimeout plumbing: the harness worker pool budget
	// plus the engine watchdog heartbeat.
	JobTimeout time.Duration
	// MaxJobs bounds the in-memory job table (default 1024); when
	// exceeded, the oldest terminal jobs are evicted. Their results stay
	// servable from the disk cache.
	MaxJobs int
	// RetryBudget bounds automatic re-executions of transiently-failed
	// jobs — injected I/O faults and recovered internal panics
	// (charonsim.ErrInternal) retry with exponential backoff plus
	// deterministic jitter; anything else fails immediately. 0 selects
	// the default (2 retries); negative disables retries entirely.
	RetryBudget int
	// RetryBackoff is the initial retry delay (default 250ms); it doubles
	// per attempt up to 64x, plus up to +50% deterministic jitter derived
	// from the job id. Tests shrink it.
	RetryBackoff time.Duration
	// ShedLatency, when positive, enables latency-aware load shedding: a
	// submission whose estimated queue wait (queued jobs × the observed
	// mean job duration ÷ workers) exceeds it is rejected with 503 +
	// Retry-After — distinct from the hard 429 queue-depth limit, which
	// still applies.
	ShedLatency time.Duration
	// Log receives structured request and lifecycle logs (nil = discard).
	Log *slog.Logger

	// runner executes one job and returns the rendered report. Tests
	// substitute a controllable stub; nil selects the real experiment
	// harness.
	runner func(ctx context.Context, experiment string, cfg charonsim.Config) (string, error)
	// fsys overrides the filesystem under the persistence stack (result
	// cache + journal); tests inject a fault.FS here. nil = real disk.
	fsys atomicio.FS
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0 // explicit "no retries"
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.runner == nil {
		c.runner = runExperiments
	}
	return c
}

// Server is the charond job service. Create with New, serve Handler(),
// stop with Drain.
type Server struct {
	cfg      Config
	log      *slog.Logger
	reg      *metrics.Registry
	results  *checkpoint.Store // response cache; nil without CacheDir
	units    *checkpoint.Store // handle on the per-unit store, for metrics
	unitsDir string            // per-unit checkpoint store for jobs; "" without CacheDir

	journal       *journal  // write-ahead job log; nil without CacheDir
	cacheHealth   *degrader // result-cache degraded-mode tracker
	journalHealth *degrader // journal degraded-mode tracker

	avgRunNanos atomic.Int64 // EWMA of completed job durations (shed estimator)

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu            sync.Mutex
	jobs          map[string]*job
	sweeps        map[string]*sweep
	queue         *jobQueue
	draining      bool
	drainDeadline time.Time // Drain's ctx deadline; sizes the draining 503's Retry-After
	wg            sync.WaitGroup // worker goroutines
}

// jobQueue is the admission queue: an unbounded FIFO the workers pop
// from. The client-facing QueueDepth bound is enforced by explicit len
// checks at admission (submit's 429, the shed estimator), not by the
// queue's capacity — journal recovery and sweep expansion must always be
// able to enqueue work they have already promised a caller, even when
// that transiently exceeds the depth new submissions are held to.
//
// Keeping the queued jobs in an indexable slice is also what makes wait
// estimates position-aware: position() reports how many jobs sit ahead
// of a given id, so an early job is never quoted the whole queue's wait.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends j. Pushing after close is a no-op (the job stays tracked
// and is settled by Drain's cancellation sweep).
func (q *jobQueue) push(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, j)
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed and empty;
// ok is false only in the latter case.
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j, true
}

func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// position returns how many jobs sit ahead of id in the queue, or -1
// when id is not queued (about to be popped, running, or terminal).
func (q *jobQueue) position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			return i
		}
	}
	return -1
}

// close wakes every blocked worker; subsequent pops drain the remaining
// items and then report closed.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.cond.Broadcast()
}

// New builds a server, replays the job journal (when a cache directory is
// configured), and starts its worker pool. Unfinished journaled jobs —
// work a previous process accepted with a 202 and then died holding —
// are requeued before the first worker starts, so they resume (from
// their per-unit checkpoints) ahead of new submissions; terminal records
// are garbage-collected.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		log:    cfg.Log,
		reg:    metrics.NewRegistry(),
		jobs:   map[string]*job{},
		sweeps: map[string]*sweep{},
	}
	s.cacheHealth = &degrader{name: "result_cache", log: cfg.Log, reg: s.reg}
	s.journalHealth = &degrader{name: "journal", log: cfg.Log, reg: s.reg}
	if cfg.CacheDir != "" {
		st, err := checkpoint.OpenFS(filepath.Join(cfg.CacheDir, "results"), cfg.fsys)
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		s.results = st
		s.unitsDir = filepath.Join(cfg.CacheDir, "units")
		if s.units, err = checkpoint.Open(s.unitsDir); err != nil {
			return nil, fmt.Errorf("server: unit store: %w", err)
		}
		if s.journal, err = openJournal(filepath.Join(cfg.CacheDir, "journal"), cfg.fsys, s.journalHealth); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	recovered, pendingSweeps, gcKeys := s.replayJournal()
	// The queue is unbounded internally: every recovered job enqueues
	// ahead of the client-facing admission bound — submissions are
	// rejected once QueueDepth jobs wait, but crash-recovered work must
	// never be dropped for lack of a slot.
	s.queue = newJobQueue()
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.queue.push(j)
		s.journal.record(j)
		s.reg.AddUint("server/journal_recovered", 1)
		s.log.Info("journal: recovered job", "job", j.id,
			"experiment", j.spec.Experiment, "generation", j.recovered)
	}
	gcKeys = append(gcKeys, s.recoverSweeps(pendingSweeps)...)
	if n := s.journal.gc(gcKeys); n > 0 {
		s.reg.AddUint("server/journal_gc", uint64(n))
		s.log.Info("journal: collected terminal records", "n", n)
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// replayJournal loads the journal and rebuilds the unfinished jobs a dead
// process left behind. Jobs whose result meanwhile landed in the response
// cache (crash between persist and the journal's terminal transition) are
// completed in place rather than re-run. Returns the jobs to requeue and
// the record keys to garbage-collect.
func (s *Server) replayJournal() (recovered []*job, pendingSweeps []sweepRecord, gcKeys []string) {
	pending, sweeps, terminal, err := s.journal.replay(s.log)
	if err != nil {
		s.log.Warn("journal: replay scan failed; continuing without recovery", "err", err)
		return nil, nil, nil
	}
	gcKeys = terminal
	for _, rec := range pending {
		cfg, key, rerr := rec.Spec.Resolve()
		if rerr != nil { // replay() pre-checked; defensive
			gcKeys = append(gcKeys, rec.Key)
			continue
		}
		j := &job{
			id: jobID(key), key: key, spec: rec.Spec, cfg: cfg,
			state: StateQueued, created: rec.Created,
			attempts:  rec.Attempts,
			recovered: rec.Recovered + 1,
			seq:       1,
			done:      make(chan struct{}),
		}
		if text, ok := s.cachedText(key); ok {
			// The previous process finished the work and persisted the
			// report but died before journaling "done".
			j.state = StateDone
			j.cached = true
			j.text = text
			j.finished = time.Now()
			close(j.done)
			s.jobs[j.id] = j
			gcKeys = append(gcKeys, rec.Key)
			continue
		}
		recovered = append(recovered, j)
	}
	return recovered, sweeps, gcKeys
}

// Metrics exposes the server's registry (tests and the /v1/metrics
// endpoint read it).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the HTTP API with request logging applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return s.logRequests(mux)
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds submission bodies; a job spec is a handful of
// scalar knobs, so anything beyond this is malformed or hostile.
const maxBodyBytes = 1 << 20

// DeadlineHeader is the request header carrying the client's absolute
// deadline as an RFC3339Nano timestamp. On submission it bounds the
// job's execution: the job context expires at min(header deadline,
// start + RunTimeout), a submission whose deadline already passed is
// rejected with 504 before queueing, and a job whose deadline lapses
// while queued fails without running — the server never burns worker
// time on an answer nobody is still waiting for.
const DeadlineHeader = "X-Charon-Deadline"

// parseDeadline extracts the client deadline header (zero time when
// absent).
func parseDeadline(r *http.Request) (time.Time, error) {
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("invalid %s header %q: %v (want RFC3339Nano, e.g. %q)",
			DeadlineHeader, raw, err, time.Now().UTC().Format(time.RFC3339Nano))
	}
	return t, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"job spec exceeds the %d-byte limit (a spec is a handful of scalar knobs; this is not one)", maxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	cfg, key, err := spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !deadline.IsZero() && !deadline.After(time.Now()) {
		s.reg.AddUint("server/deadline_expired_rejects", 1)
		writeError(w, http.StatusGatewayTimeout,
			"deadline %s already expired at admission; not queueing doomed work",
			deadline.UTC().Format(time.RFC3339Nano))
		return
	}
	j, status, retryAfter, err := s.submit(spec, cfg, key, deadline)
	if err != nil {
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, j.view())
}

// submit deduplicates, consults the response cache, applies load
// shedding and the queue-depth bound, journals the accepted descriptor,
// and enqueues. The returned status is 200 for an existing/cached job,
// 202 for a freshly queued one; on rejection retryAfter carries the
// Retry-After hint in seconds.
func (s *Server) submit(spec JobSpec, cfg charonsim.Config, key string, deadline time.Time) (j *job, status, retryAfter int, err error) {
	id := jobID(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		existing.mu.Lock()
		state := existing.state
		existing.mu.Unlock()
		switch state {
		case StateQueued, StateRunning, StateDone:
			// Single-flight dedup: same descriptor, same job. The first
			// submitter's deadline governs — a duplicate POST (a client
			// retry after an ambiguous failure) must not loosen or tighten
			// work already in flight.
			s.reg.AddUint("server/dedup_hits", 1)
			if state == StateDone {
				s.reg.AddUint("server/cache_hits", 1)
			}
			return existing, http.StatusOK, 0, nil
		}
		// failed/canceled: fall through and replace with a fresh attempt.
		delete(s.jobs, id)
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, s.drainRetryAfterLocked(),
			errors.New("server is draining; not accepting new jobs")
	}
	s.reg.AddUint("server/jobs_submitted", 1)

	j = &job{id: id, key: key, spec: spec, cfg: cfg, deadline: deadline,
		state: StateQueued, created: time.Now(), seq: 1, done: make(chan struct{})}

	// Warm path: a prior run of this exact descriptor — possibly by an
	// earlier process over the same cache directory — already persisted
	// the report.
	if text, ok := s.cachedText(key); ok {
		j.state = StateDone
		j.cached = true
		j.text = text
		j.finished = time.Now()
		close(j.done)
		s.insertLocked(j)
		s.reg.AddUint("server/cache_hits", 1)
		return j, http.StatusOK, 0, nil
	}
	s.reg.AddUint("server/cache_misses", 1)

	// Latency-aware shedding: refuse work we could queue but not serve
	// within the configured wait bound. Softer and earlier than the hard
	// depth limit below, with an honest Retry-After.
	if wait := s.estimatedWait(s.queue.len()); s.cfg.ShedLatency > 0 && wait > s.cfg.ShedLatency {
		s.reg.AddUint("server/shed_rejected", 1)
		return nil, http.StatusServiceUnavailable, retryAfterSeconds(wait),
			fmt.Errorf("estimated queue wait %s exceeds the %s shed bound; retry later",
				wait.Round(time.Millisecond), s.cfg.ShedLatency)
	}

	// Hard depth bound. The internal queue is unbounded (journal recovery
	// and sweep expansion pre-seed it past the depth), so the
	// client-facing limit is an explicit length check.
	if s.queue.len() >= s.cfg.QueueDepth {
		s.reg.AddUint("server/queue_rejected", 1)
		return nil, http.StatusTooManyRequests, 1,
			fmt.Errorf("admission queue full (%d queued); retry later", s.cfg.QueueDepth)
	}

	// Durability point: the accepted descriptor is journaled before the
	// 202 leaves the building, so a crash at any later moment leaves a
	// record to replay.
	s.insertLocked(j)
	s.journal.record(j)
	s.queue.push(j)
	s.reg.SetMax("server/queue_high_water", float64(s.queue.len()))
	return j, http.StatusAccepted, 0, nil
}

// estimatedWait predicts how long a job with `ahead` queued jobs in
// front of it waits for a worker: ahead times the observed mean job
// duration, spread over the worker pool. Zero until the first job
// completes — the server sheds on evidence, not guesses.
func (s *Server) estimatedWait(ahead int) time.Duration {
	avg := s.avgRunNanos.Load()
	if avg <= 0 || ahead <= 0 {
		return 0
	}
	return time.Duration(int64(ahead) * avg / int64(s.cfg.Workers))
}

// retryAfterSeconds renders a wait estimate as a Retry-After value
// (whole seconds, at least 1).
func retryAfterSeconds(wait time.Duration) int {
	return int(math.Max(1, math.Ceil(wait.Seconds())))
}

// drainRetryAfterLocked derives the Retry-After hint on the draining
// 503: the remaining drain budget is the earliest instant a restarted
// process could be accepting work again, so that is the honest hint.
// Without a drain deadline (or once it has passed) fall back to the
// queue-wait estimator. Callers hold s.mu.
func (s *Server) drainRetryAfterLocked() int {
	if !s.drainDeadline.IsZero() {
		if rem := time.Until(s.drainDeadline); rem > 0 {
			return retryAfterSeconds(rem)
		}
	}
	return retryAfterSeconds(s.estimatedWait(s.queue.len()))
}

// pollRetryAfter hints when a result poller should come back. A queued
// job's hint is position-aware: only the jobs actually ahead of it (plus
// its own expected run) feed the estimate, so a job at the head of a
// deep queue is never told to back off behind the whole queue. A running
// job polls at the 1-second floor.
func (s *Server) pollRetryAfter(j *job) int {
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if !queued {
		return 1
	}
	ahead := s.queue.position(j.id)
	if ahead < 0 {
		// Popped but not yet transitioned: it is next.
		ahead = 0
	}
	return retryAfterSeconds(s.estimatedWait(ahead + 1))
}

// insertLocked adds j to the job table and evicts terminal jobs past the
// retention bound. Eviction prefers terminal jobs whose result has
// already been fetched (oldest first) and only then falls back to
// unfetched terminal jobs — a done job nobody has read yet still owes
// its submitter an answer, so it must never be displaced by older jobs
// that already delivered theirs. Callers hold s.mu.
func (s *Server) insertLocked(j *job) {
	s.jobs[j.id] = j
	for len(s.jobs) > s.cfg.MaxJobs {
		var oldestFetched, oldestUnfetched *job
		for _, cand := range s.jobs {
			cand.mu.Lock()
			terminal := cand.state == StateDone || cand.state == StateFailed || cand.state == StateCanceled
			fetched := cand.fetched
			created := cand.created
			cand.mu.Unlock()
			if !terminal {
				continue
			}
			if fetched {
				if oldestFetched == nil || created.Before(oldestFetched.created) {
					oldestFetched = cand
				}
			} else if oldestUnfetched == nil || created.Before(oldestUnfetched.created) {
				oldestUnfetched = cand
			}
		}
		victim := oldestFetched
		if victim == nil {
			victim = oldestUnfetched
		}
		if victim == nil {
			return // everything is live; let the table grow
		}
		delete(s.jobs, victim.id)
	}
}

// cachedResult is the response-cache payload.
type cachedResult struct {
	Experiment string `json:"experiment"`
	Text       string `json:"text"`
}

func (s *Server) cachedText(key string) (string, bool) {
	if s.results == nil {
		return "", false
	}
	payload, ok := s.results.Get(key)
	if !ok {
		return "", false
	}
	var c cachedResult
	if err := json.Unmarshal(payload, &c); err != nil {
		return "", false
	}
	return c.Text, true
}

// persistResult writes the rendered report into the response cache and
// folds the outcome into the cache's health state: the first failure
// flips the server into explicitly-degraded "cache-disabled" mode (gauge
// + one-shot log), and the first subsequent success re-enables it. A
// degraded cache never fails the job — the report is still served from
// memory; it just recomputes after a restart.
func (s *Server) persistResult(key, experiment, text string) {
	if s.results == nil {
		return
	}
	payload, err := json.Marshal(cachedResult{Experiment: experiment, Text: text})
	if err != nil {
		s.cacheHealth.observe(fmt.Errorf("encode result: %w", err))
		return
	}
	s.cacheHealth.observe(s.results.Put(key, payload))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]view, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	// Stable order: newest first, id as tie-break.
	sortViews(views)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func sortViews(vs []view) {
	for i := 1; i < len(vs); i++ {
		for k := i; k > 0 && viewLess(vs[k], vs[k-1]); k-- {
			vs[k], vs[k-1] = vs[k-1], vs[k]
		}
	}
}

func viewLess(a, b view) bool {
	if a.Created != b.Created {
		return a.Created > b.Created
	}
	return a.ID < b.ID
}

func (s *Server) jobFor(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	state, text, errMsg := j.snapshot()
	switch state {
	case StateDone:
		j.markFetched()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	case StateFailed:
		j.markFetched()
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		j.markFetched()
		writeError(w, http.StatusGone, "job was canceled: %s", errMsg)
	default: // queued, running
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.pollRetryAfter(j)))
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if s.cancelJob(j, "canceled by client") {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	writeJSON(w, http.StatusOK, j.view()) // already terminal
}

// cancelJob requests cancellation; returns false when the job was already
// terminal. A queued job transitions immediately; a running one has its
// context canceled and transitions when the harness unwinds (event-loop
// granularity).
func (s *Server) cancelJob(j *job, reason string) bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.canceled = true
		j.errMsg = reason
		j.finished = time.Now()
		j.seq++
		close(j.done)
		j.mu.Unlock()
		s.journal.record(j)
		s.reg.AddUint("server/jobs_canceled", 1)
		s.noteChildTerminal(j)
		return true
	case StateRunning:
		j.canceled = true
		j.errMsg = reason
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// metricsResponse is the /v1/metrics body: the numeric snapshot plus an
// errors section carrying the persistence stack's last write failures
// verbatim (path included), so a full disk is diagnosable from one curl.
type metricsResponse struct {
	metrics.Snapshot
	Errors map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{Snapshot: s.snapshotMetrics(), Errors: map[string]string{}}
	if s.results != nil {
		if e := s.results.LastWriteError(); e != "" {
			resp.Errors["server/result_store/last_write_error"] = e
		}
	}
	if e := s.journal.lastWriteError(); e != "" {
		resp.Errors["server/journal/last_write_error"] = e
	}
	if len(resp.Errors) == 0 {
		resp.Errors = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshotMetrics() metrics.Snapshot {
	reg := metrics.NewRegistry()
	reg.Merge(s.reg)
	s.mu.Lock()
	reg.AddUint("server/jobs_tracked", uint64(len(s.jobs)))
	reg.AddUint("server/sweeps_tracked", uint64(len(s.sweeps)))
	s.mu.Unlock()
	reg.AddUint("server/queue_len", uint64(s.queue.len()))
	reg.SetMax("server/cache_degraded", bool01(s.cacheHealth.isDegraded()))
	reg.SetMax("server/journal_degraded", bool01(s.journalHealth.isDegraded()))
	if avg := s.avgRunNanos.Load(); avg > 0 {
		reg.SetMax("server/job_duration_ewma_s", time.Duration(avg).Seconds())
	}
	storeStats := func(prefix string, st *checkpoint.Store) {
		hits, misses, discards, writeErrs := st.Stats()
		reg.AddUint(prefix+"/hits", hits)
		reg.AddUint(prefix+"/misses", misses)
		reg.AddUint(prefix+"/discards", discards)
		reg.AddUint(prefix+"/write_errors", writeErrs)
		if n, err := st.Len(); err == nil {
			reg.AddUint(prefix+"/entries", uint64(n))
		}
	}
	if s.results != nil {
		storeStats("server/result_store", s.results)
	}
	if s.units != nil {
		storeStats("server/unit_store", s.units)
	}
	if s.journal != nil {
		storeStats("server/journal", s.journal.st)
	}
	return reg.Snapshot()
}

func bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// worker executes queued jobs until the queue is closed by Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock() // canceled while queued; nothing to do
		return
	}
	now := time.Now()
	if !j.deadline.IsZero() && !j.deadline.After(now) {
		// The client's deadline lapsed while the job sat in the queue:
		// running it now burns a worker on an answer nobody is waiting
		// for. Fail without executing.
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("client deadline %s expired while queued",
			j.deadline.UTC().Format(time.RFC3339Nano))
		j.finished = now
		j.seq++
		close(j.done)
		j.mu.Unlock()
		s.journal.record(j)
		s.reg.AddUint("server/deadline_expired_queued", 1)
		s.reg.AddUint("server/jobs_failed", 1)
		s.noteChildTerminal(j)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.seq++
	cfg := j.cfg
	deadline := j.deadline
	j.mu.Unlock()
	defer cancel()

	// Server-side plumbing, applied after the canonical key was derived
	// from the client-visible spec: the shared per-unit checkpoint store
	// (so drained and crash-recovered jobs resume instead of recomputing)
	// and the default per-unit timeout.
	if s.unitsDir != "" {
		cfg.CheckpointDir = s.unitsDir
	}
	if cfg.RunTimeout == 0 && s.cfg.JobTimeout > 0 {
		cfg.RunTimeout = s.cfg.JobTimeout
	}

	// Deadline propagation: a client-supplied deadline bounds the
	// execution context at min(header deadline, start + RunTimeout), and
	// the effective value lands back in the job's status view so pollers
	// see exactly when the server will give up. Jobs without a header
	// deadline keep the unbounded context they have always had —
	// RunTimeout alone stays a per-unit budget inside the harness, never
	// a whole-job context bound.
	if !deadline.IsZero() {
		if cfg.RunTimeout > 0 {
			if cand := now.Add(cfg.RunTimeout); cand.Before(deadline) {
				deadline = cand
			}
		}
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, deadline)
		defer dcancel()
		j.mu.Lock()
		j.deadline = deadline
		j.seq++
		j.mu.Unlock()
	}
	s.journal.record(j)

	s.log.Info("job start", "job", j.id, "experiment", j.spec.Experiment)
	text, err := s.runWithRetries(ctx, j, cfg)

	// Persist before publishing the terminal state: a client (or a
	// restarted server) that observes "done" must find the cached bytes.
	if err == nil {
		s.persistResult(j.key, j.spec.Experiment, text)
	}

	j.mu.Lock()
	j.finished = time.Now()
	attempts := len(j.attempts)
	switch {
	case err == nil:
		j.state = StateDone
		j.text = text
		s.reg.AddUint("server/jobs_completed", 1)
	case j.canceled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		if j.errMsg == "" {
			j.errMsg = err.Error()
		}
		s.reg.AddUint("server/jobs_canceled", 1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		if attempts > 1 {
			j.errMsg = fmt.Sprintf("failed after %d attempts (see attempts history): %v", attempts, err)
		}
		if errors.Is(err, context.DeadlineExceeded) && !j.deadline.IsZero() {
			j.errMsg = fmt.Sprintf("client deadline %s exceeded mid-run: %v",
				j.deadline.UTC().Format(time.RFC3339Nano), err)
			s.reg.AddUint("server/deadline_expired_running", 1)
		}
		s.reg.AddUint("server/jobs_failed", 1)
	}
	j.seq++
	state, errMsg := j.state, j.errMsg
	dur := j.finished.Sub(j.started)
	close(j.done)
	j.mu.Unlock()
	s.journal.record(j)
	s.observeRunDuration(dur)
	s.noteChildTerminal(j)

	s.log.Info("job finish", "job", j.id, "state", state, "attempts", attempts,
		"dur_s", dur.Seconds(), "err", errMsg)
}

// runWithRetries executes the job's runner, retrying transient failures —
// injected I/O faults and internal panics the harness recovered
// (charonsim.ErrInternal) — with exponential backoff plus deterministic
// jitter, up to the configured budget. Every attempt lands in the job's
// (and journal's) attempt history; completed replay units persist in the
// per-unit checkpoint store across attempts, so a retry only re-executes
// what the failed attempt left unfinished.
func (s *Server) runWithRetries(ctx context.Context, j *job, cfg charonsim.Config) (string, error) {
	for attempt := 0; ; attempt++ {
		started := time.Now()
		text, err := s.cfg.runner(ctx, j.spec.Experiment, cfg)

		j.mu.Lock()
		j.attempts = append(j.attempts, attemptRecord{
			Started: started, Finished: time.Now(), Error: errString(err),
		})
		j.seq++
		canceled := j.canceled
		j.mu.Unlock()

		if err == nil || canceled || errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return text, err
		}
		if !transientErr(err) || attempt >= s.cfg.RetryBudget {
			return text, err
		}

		delay := backoffDelay(s.cfg.RetryBackoff, attempt, j.id)
		s.reg.AddUint("server/jobs_retried", 1)
		s.log.Warn("job retry", "job", j.id, "attempt", attempt+1,
			"budget", s.cfg.RetryBudget, "backoff", delay.String(), "err", err.Error())
		s.journal.record(j) // attempt history survives a crash mid-backoff
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// transientErr classifies failures worth retrying: injected I/O faults
// (fault.ErrInjected) and internal panics the harness recovered into
// charonsim.ErrInternal. Validation errors, watchdog aborts, and
// cancellations are terminal.
func transientErr(err error) bool {
	return errors.Is(err, charonsim.ErrInternal) || errors.Is(err, fault.ErrInjected)
}

// backoffDelay is the wait before retry `attempt`: base doubling per
// attempt (capped at 64x) plus up to +50% jitter derived deterministically
// from the job id and attempt number — the same job retries on the same
// schedule in every process, keeping chaos runs reproducible, while
// different jobs desynchronize.
func backoffDelay(base time.Duration, attempt int, id string) time.Duration {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	d := base << uint(shift)
	h := fnv.New64a()
	h.Write([]byte(id))
	z := h.Sum64() ^ uint64(attempt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / (1 << 53)
	return d + time.Duration(float64(d)*frac/2)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// observeRunDuration feeds the shed estimator's EWMA (weight 1/4 on the
// newest observation).
func (s *Server) observeRunDuration(d time.Duration) {
	for {
		old := s.avgRunNanos.Load()
		ewma := int64(d)
		if old > 0 {
			ewma = (3*old + int64(d)) / 4
		}
		if s.avgRunNanos.CompareAndSwap(old, ewma) {
			return
		}
	}
}

// runExperiments is the real runner: the public harness entry points,
// rendered with the CLI's formatter so served reports are byte-identical
// to a charonsim invocation.
func runExperiments(ctx context.Context, experiment string, cfg charonsim.Config) (string, error) {
	var reports []*charonsim.Report
	var err error
	if experiment == "all" {
		reports, err = charonsim.RunAllContext(ctx, cfg)
	} else {
		var r *charonsim.Report
		r, err = charonsim.RunContext(ctx, experiment, cfg)
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		return "", err
	}
	var b strings.Builder
	cli.RenderReports(&b, reports)
	return b.String(), nil
}

// Drain gracefully stops the server: admission closes (submissions get
// 503, readyz reports draining), queued and running jobs are given until
// ctx expires to finish, and on expiry the in-flight jobs are canceled —
// their completed replay units are already in the per-unit checkpoint
// store, so a restart resumes rather than recomputes. Drain returns nil
// when every job finished, or ctx's error when it had to cut jobs short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if dl, ok := ctx.Deadline(); ok {
		s.drainDeadline = dl
	}
	s.mu.Unlock()
	s.queue.close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Mark live jobs before cancelling so they land in "canceled"
		// with a drain-specific message, then cut the shared context.
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.state == StateQueued || j.state == StateRunning {
				j.canceled = true
				if j.errMsg == "" {
					j.errMsg = "server drain deadline expired; completed units are checkpointed"
				}
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		s.baseCancel()
		<-done
		return fmt.Errorf("server: drain deadline expired; in-flight jobs aborted after checkpointing completed units: %w", ctx.Err())
	}
}

// Close is Drain with an already-expired deadline: cancel everything and
// wait for the workers to unwind. For tests and hard shutdown paths.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}
