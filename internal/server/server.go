// Package server implements charond, the long-running simulation service:
// an HTTP job API over the charonsim experiment harness. Jobs (an
// experiment id plus a charonsim.Config) are validated at admission,
// queued into a bounded admission queue with backpressure (429 +
// Retry-After when full), executed on a fixed worker pool through the
// public RunContext/RunAllContext entry points (which share recorded
// workloads within a job via experiments.Session), and cached: identical
// submissions are deduplicated single-flight in memory and served from a
// checkpoint-backed response cache on disk, so a warm restart answers
// repeat jobs without simulating.
//
// Endpoints:
//
//	POST   /v1/jobs             submit (202; 200 on dedup/cache hit; 429 full; 503 draining)
//	GET    /v1/jobs             list tracked jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result rendered report (CLI byte-identical)
//	DELETE /v1/jobs/{id}        cancel (context-propagated, event-loop granularity)
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//	GET    /v1/metrics          server + cache counters (internal/metrics snapshot)
//
// Graceful drain: Drain stops admission, lets queued/running jobs finish,
// and on deadline expiry cancels in-flight jobs — whose completed replay
// units are already persisted in the shared per-unit checkpoint store, so
// a restarted server resumes them instead of recomputing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"charonsim"
	"charonsim/internal/checkpoint"
	"charonsim/internal/cli"
	"charonsim/internal/metrics"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of concurrent job executors (default 2). Each
	// job additionally fans its simulation units out per its own
	// Parallelism knob, so keep Workers small.
	Workers int
	// QueueDepth bounds the admission queue (default 16). A full queue
	// rejects submissions with 429 + Retry-After.
	QueueDepth int
	// CacheDir, when non-empty, enables the on-disk layer: completed job
	// reports are persisted in CacheDir/results (checkpoint-backed,
	// checksummed, atomic) and served on identical resubmission across
	// restarts, and jobs run with CacheDir/units as their per-unit
	// checkpoint store so partially-completed work survives a drain.
	// Empty keeps both caches in memory only (dedup still works within
	// the process lifetime).
	CacheDir string
	// JobTimeout, when positive, is the default per-unit RunTimeout
	// applied to jobs that do not set run_timeout themselves. It reuses
	// the existing RunTimeout plumbing: the harness worker pool budget
	// plus the engine watchdog heartbeat.
	JobTimeout time.Duration
	// MaxJobs bounds the in-memory job table (default 1024); when
	// exceeded, the oldest terminal jobs are evicted. Their results stay
	// servable from the disk cache.
	MaxJobs int
	// Log receives structured request and lifecycle logs (nil = discard).
	Log *slog.Logger

	// runner executes one job and returns the rendered report. Tests
	// substitute a controllable stub; nil selects the real experiment
	// harness.
	runner func(ctx context.Context, experiment string, cfg charonsim.Config) (string, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.runner == nil {
		c.runner = runExperiments
	}
	return c
}

// Server is the charond job service. Create with New, serve Handler(),
// stop with Drain.
type Server struct {
	cfg      Config
	log      *slog.Logger
	reg      *metrics.Registry
	results  *checkpoint.Store // response cache; nil without CacheDir
	unitsDir string            // per-unit checkpoint store for jobs; "" without CacheDir

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu          sync.Mutex
	jobs        map[string]*job
	queue       chan *job
	draining    bool
	queueClosed bool
	wg          sync.WaitGroup // worker goroutines
}

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		log:  cfg.Log,
		reg:  metrics.NewRegistry(),
		jobs: map[string]*job{},
	}
	if cfg.CacheDir != "" {
		st, err := checkpoint.Open(filepath.Join(cfg.CacheDir, "results"))
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		s.results = st
		s.unitsDir = filepath.Join(cfg.CacheDir, "units")
		if _, err := checkpoint.Open(s.unitsDir); err != nil {
			return nil, fmt.Errorf("server: unit store: %w", err)
		}
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.queue = make(chan *job, cfg.QueueDepth)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Metrics exposes the server's registry (tests and the /v1/metrics
// endpoint read it).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the HTTP API with request logging applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return s.logRequests(mux)
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds submission bodies; a job spec is a handful of
// scalar knobs, so anything beyond this is malformed or hostile.
const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	cfg, key, err := spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	j, status, err := s.submit(spec, cfg, key)
	if err != nil {
		switch status {
		case http.StatusTooManyRequests:
			w.Header().Set("Retry-After", "1")
		case http.StatusServiceUnavailable:
			w.Header().Set("Retry-After", "5")
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, j.view())
}

// submit deduplicates, consults the response cache, and enqueues. The
// returned status is 200 for an existing/cached job, 202 for a freshly
// queued one.
func (s *Server) submit(spec JobSpec, cfg charonsim.Config, key string) (*job, int, error) {
	id := jobID(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		existing.mu.Lock()
		state := existing.state
		existing.mu.Unlock()
		switch state {
		case StateQueued, StateRunning, StateDone:
			// Single-flight dedup: same descriptor, same job.
			s.reg.AddUint("server/dedup_hits", 1)
			if state == StateDone {
				s.reg.AddUint("server/cache_hits", 1)
			}
			return existing, http.StatusOK, nil
		}
		// failed/canceled: fall through and replace with a fresh attempt.
		delete(s.jobs, id)
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("server is draining; not accepting new jobs")
	}
	s.reg.AddUint("server/jobs_submitted", 1)

	j := &job{id: id, key: key, spec: spec, cfg: cfg,
		state: StateQueued, created: time.Now(), done: make(chan struct{})}

	// Warm path: a prior run of this exact descriptor — possibly by an
	// earlier process over the same cache directory — already persisted
	// the report.
	if text, ok := s.cachedText(key); ok {
		j.state = StateDone
		j.cached = true
		j.text = text
		j.finished = time.Now()
		close(j.done)
		s.insertLocked(j)
		s.reg.AddUint("server/cache_hits", 1)
		return j, http.StatusOK, nil
	}
	s.reg.AddUint("server/cache_misses", 1)

	select {
	case s.queue <- j:
	default:
		s.reg.AddUint("server/queue_rejected", 1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d queued); retry later", cap(s.queue))
	}
	s.insertLocked(j)
	s.reg.SetMax("server/queue_high_water", float64(len(s.queue)))
	return j, http.StatusAccepted, nil
}

// insertLocked adds j to the job table and evicts the oldest terminal
// jobs past the retention bound. Callers hold s.mu.
func (s *Server) insertLocked(j *job) {
	s.jobs[j.id] = j
	for len(s.jobs) > s.cfg.MaxJobs {
		var oldest *job
		for _, cand := range s.jobs {
			cand.mu.Lock()
			terminal := cand.state == StateDone || cand.state == StateFailed || cand.state == StateCanceled
			created := cand.created
			cand.mu.Unlock()
			if !terminal {
				continue
			}
			if oldest == nil || created.Before(oldest.created) {
				oldest = cand
			}
		}
		if oldest == nil {
			return // everything is live; let the table grow
		}
		delete(s.jobs, oldest.id)
	}
}

// cachedResult is the response-cache payload.
type cachedResult struct {
	Experiment string `json:"experiment"`
	Text       string `json:"text"`
}

func (s *Server) cachedText(key string) (string, bool) {
	if s.results == nil {
		return "", false
	}
	payload, ok := s.results.Get(key)
	if !ok {
		return "", false
	}
	var c cachedResult
	if err := json.Unmarshal(payload, &c); err != nil {
		return "", false
	}
	return c.Text, true
}

func (s *Server) persistResult(key, experiment, text string) {
	if s.results == nil {
		return
	}
	payload, err := json.Marshal(cachedResult{Experiment: experiment, Text: text})
	if err != nil {
		return
	}
	// Put errors are counted in the store's stats; a lost write only
	// means the job recomputes after a restart.
	_ = s.results.Put(key, payload)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]view, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	// Stable order: newest first, id as tie-break.
	sortViews(views)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func sortViews(vs []view) {
	for i := 1; i < len(vs); i++ {
		for k := i; k > 0 && viewLess(vs[k], vs[k-1]); k-- {
			vs[k], vs[k-1] = vs[k-1], vs[k]
		}
	}
}

func viewLess(a, b view) bool {
	if a.Created != b.Created {
		return a.Created > b.Created
	}
	return a.ID < b.ID
}

func (s *Server) jobFor(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	state, text, errMsg := j.snapshot()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, "job was canceled: %s", errMsg)
	default: // queued, running
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if s.cancelJob(j, "canceled by client") {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	writeJSON(w, http.StatusOK, j.view()) // already terminal
}

// cancelJob requests cancellation; returns false when the job was already
// terminal. A queued job transitions immediately; a running one has its
// context canceled and transitions when the harness unwinds (event-loop
// granularity).
func (s *Server) cancelJob(j *job, reason string) bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.canceled = true
		j.errMsg = reason
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		s.reg.AddUint("server/jobs_canceled", 1)
		return true
	case StateRunning:
		j.canceled = true
		j.errMsg = reason
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshotMetrics()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = snap.WriteJSON(w)
}

func (s *Server) snapshotMetrics() metrics.Snapshot {
	reg := metrics.NewRegistry()
	reg.Merge(s.reg)
	s.mu.Lock()
	reg.AddUint("server/jobs_tracked", uint64(len(s.jobs)))
	reg.AddUint("server/queue_len", uint64(len(s.queue)))
	s.mu.Unlock()
	if s.results != nil {
		hits, misses, discards, writeErrs := s.results.Stats()
		reg.AddUint("server/result_store/hits", hits)
		reg.AddUint("server/result_store/misses", misses)
		reg.AddUint("server/result_store/discards", discards)
		reg.AddUint("server/result_store/write_errors", writeErrs)
		if n, err := s.results.Len(); err == nil {
			reg.AddUint("server/result_store/entries", uint64(n))
		}
	}
	return reg.Snapshot()
}

// worker executes queued jobs until the queue is closed by Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock() // canceled while queued; nothing to do
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	cfg := j.cfg
	j.mu.Unlock()
	defer cancel()

	// Server-side plumbing, applied after the canonical key was derived
	// from the client-visible spec: the shared per-unit checkpoint store
	// (so drained jobs resume instead of recomputing) and the default
	// per-unit timeout.
	if s.unitsDir != "" {
		cfg.CheckpointDir = s.unitsDir
	}
	if cfg.RunTimeout == 0 && s.cfg.JobTimeout > 0 {
		cfg.RunTimeout = s.cfg.JobTimeout
	}

	s.log.Info("job start", "job", j.id, "experiment", j.spec.Experiment)
	text, err := s.cfg.runner(ctx, j.spec.Experiment, cfg)

	// Persist before publishing the terminal state: a client (or a
	// restarted server) that observes "done" must find the cached bytes.
	if err == nil {
		s.persistResult(j.key, j.spec.Experiment, text)
	}

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.text = text
		s.reg.AddUint("server/jobs_completed", 1)
	case j.canceled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		if j.errMsg == "" {
			j.errMsg = err.Error()
		}
		s.reg.AddUint("server/jobs_canceled", 1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.reg.AddUint("server/jobs_failed", 1)
	}
	state, errMsg := j.state, j.errMsg
	dur := j.finished.Sub(j.started)
	close(j.done)
	j.mu.Unlock()

	s.log.Info("job finish", "job", j.id, "state", state,
		"dur_s", dur.Seconds(), "err", errMsg)
}

// runExperiments is the real runner: the public harness entry points,
// rendered with the CLI's formatter so served reports are byte-identical
// to a charonsim invocation.
func runExperiments(ctx context.Context, experiment string, cfg charonsim.Config) (string, error) {
	var reports []*charonsim.Report
	var err error
	if experiment == "all" {
		reports, err = charonsim.RunAllContext(ctx, cfg)
	} else {
		var r *charonsim.Report
		r, err = charonsim.RunContext(ctx, experiment, cfg)
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		return "", err
	}
	var b strings.Builder
	cli.RenderReports(&b, reports)
	return b.String(), nil
}

// Drain gracefully stops the server: admission closes (submissions get
// 503, readyz reports draining), queued and running jobs are given until
// ctx expires to finish, and on expiry the in-flight jobs are canceled —
// their completed replay units are already in the per-unit checkpoint
// store, so a restart resumes rather than recomputes. Drain returns nil
// when every job finished, or ctx's error when it had to cut jobs short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if !s.queueClosed {
		close(s.queue)
		s.queueClosed = true
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Mark live jobs before cancelling so they land in "canceled"
		// with a drain-specific message, then cut the shared context.
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.state == StateQueued || j.state == StateRunning {
				j.canceled = true
				if j.errMsg == "" {
					j.errMsg = "server drain deadline expired; completed units are checkpointed"
				}
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		s.baseCancel()
		<-done
		return fmt.Errorf("server: drain deadline expired; in-flight jobs aborted after checkpointing completed units: %w", ctx.Err())
	}
}

// Close is Drain with an already-expired deadline: cancel everything and
// wait for the workers to unwind. For tests and hard shutdown paths.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}
