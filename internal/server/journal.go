package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"charonsim/internal/atomicio"
	"charonsim/internal/checkpoint"
	"charonsim/internal/metrics"
)

// journalSchema versions the journal record payload; bump it whenever the
// record changes meaning so a restart against an old journal directory
// discards cleanly instead of replaying misread state.
const journalSchema = 1

// journalRecord is one job's durable state, stored under the job's
// canonical key in a checkpoint envelope (version + key + checksum,
// atomic rename, fsync'd file and directory). The record is rewritten
// whole on every state transition — the envelope's atomicity makes each
// rewrite an append in effect: a crash leaves either the previous
// complete record or the new one, never a blend.
type journalRecord struct {
	Schema    int             `json:"schema"`
	Kind      string          `json:"kind,omitempty"` // "" = job (see sweepRecord for "sweep")
	ID        string          `json:"id"`
	Key       string          `json:"key"`
	Spec      JobSpec         `json:"spec"`
	State     string          `json:"state"`
	Error     string          `json:"error,omitempty"`
	Created   time.Time       `json:"created"`
	Updated   time.Time       `json:"updated"`
	Attempts  []attemptRecord `json:"attempts,omitempty"`
	Recovered int             `json:"recovered,omitempty"` // crash-replay generations
}

// attemptRecord is one execution attempt of a job, kept so a terminally
// failed job's status shows the full retry history.
type attemptRecord struct {
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// unfinished reports whether a replayed record represents work the server
// still owes an answer for.
func (r journalRecord) unfinished() bool {
	return r.State == StateQueued || r.State == StateRunning
}

// journal is charond's write-ahead job log: every accepted job descriptor
// is durably recorded before its 202 is returned, every state transition
// is persisted, and on boot the server replays the journal — resubmitting
// unfinished jobs to the worker pool (which resume from their per-unit
// checkpoints) and garbage-collecting terminal entries.
//
// Storage rides the checkpoint layer, so the journal inherits its crash
// properties: atomic publish, checksummed envelopes, self-healing reads
// that discard torn or truncated records.
type journal struct {
	st     *checkpoint.Store
	health *degrader

	mu  sync.Mutex
	seq map[string]uint64 // highest seq written per job id; stale writers skip
}

// openJournal opens (creating if needed) the journal directory.
func openJournal(dir string, fsys atomicio.FS, health *degrader) (*journal, error) {
	st, err := checkpoint.OpenFS(dir, fsys)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{st: st, health: health, seq: map[string]uint64{}}, nil
}

// record durably persists j's current state. Safe under concurrent
// transitions of the same job: each caller snapshots the job (with its
// monotonically increasing seq) under j.mu, and the journal drops
// snapshots older than the newest it has written, so a late writer can
// never roll a job's durable state backwards.
//
// A write failure degrades the journal (gauge + one-shot log via the
// shared degrader) rather than failing the job — availability over
// durability once the disk is already misbehaving; the next successful
// write re-arms the crash-recovery promise.
func (jl *journal) record(j *job) {
	if jl == nil {
		return
	}
	j.mu.Lock()
	rec := journalRecord{
		Schema: journalSchema, ID: j.id, Key: j.key, Spec: j.spec,
		State: j.state, Error: j.errMsg,
		Created: j.created, Updated: time.Now(),
		Attempts: append([]attemptRecord(nil), j.attempts...),
		Recovered: j.recovered,
	}
	seq := j.seq
	j.mu.Unlock()

	payload, err := json.Marshal(rec)
	if err != nil {
		jl.health.observe(fmt.Errorf("journal: encode %s: %w", j.id, err))
		return
	}

	jl.mu.Lock()
	defer jl.mu.Unlock()
	if last, ok := jl.seq[j.id]; ok && seq <= last {
		return // a newer transition already landed
	}
	if err := jl.st.Put(j.key, payload); err != nil {
		jl.health.observe(err)
		return
	}
	jl.seq[j.id] = seq
	jl.health.observe(nil)
}

// replay loads every journal record, splitting it into unfinished work to
// resubmit — jobs and sweep manifests, by the record's kind tag — and
// terminal keys to garbage-collect. Records from a different schema, or
// whose spec no longer resolves (the job grammar moved under them), are
// treated as terminal: logged and collected, never replayed wrong.
func (jl *journal) replay(log *slog.Logger) (pending []journalRecord, sweeps []sweepRecord, terminalKeys []string, err error) {
	if jl == nil {
		return nil, nil, nil, nil
	}
	err = jl.st.Range(func(key string, payload json.RawMessage) bool {
		var head struct {
			Schema int    `json:"schema"`
			Kind   string `json:"kind"`
		}
		if json.Unmarshal(payload, &head) != nil || head.Schema != journalSchema {
			log.Warn("journal: discarding unreadable record", "key", key)
			terminalKeys = append(terminalKeys, key)
			return true
		}
		if head.Kind == journalKindSweep {
			var rec sweepRecord
			if json.Unmarshal(payload, &rec) != nil || rec.Key != key {
				log.Warn("journal: discarding unreadable sweep manifest", "key", key)
				terminalKeys = append(terminalKeys, key)
				return true
			}
			if rec.State != SweepStateActive {
				terminalKeys = append(terminalKeys, key)
				return true
			}
			if _, _, rerr := rec.Spec.Expand(); rerr != nil {
				log.Warn("journal: dropping unresolvable sweep", "sweep", rec.ID, "err", rerr)
				terminalKeys = append(terminalKeys, key)
				return true
			}
			sweeps = append(sweeps, rec)
			return true
		}
		var rec journalRecord
		if json.Unmarshal(payload, &rec) != nil || rec.Key != key {
			log.Warn("journal: discarding unreadable record", "key", key)
			terminalKeys = append(terminalKeys, key)
			return true
		}
		if !rec.unfinished() {
			terminalKeys = append(terminalKeys, key)
			return true
		}
		if _, _, rerr := rec.Spec.Resolve(); rerr != nil {
			log.Warn("journal: dropping unresolvable job", "job", rec.ID, "err", rerr)
			terminalKeys = append(terminalKeys, key)
			return true
		}
		pending = append(pending, rec)
		return true
	})
	return pending, sweeps, terminalKeys, err
}

// recordSweep durably persists a sweep manifest snapshot, with the same
// monotonic-seq staleness guard record uses for jobs. The manifest is
// membership, not progress: child jobs journal their own transitions, so
// a sweep rewrite only happens at admission, recovery, and completion.
func (jl *journal) recordSweep(rec sweepRecord, seq uint64) {
	if jl == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		jl.health.observe(fmt.Errorf("journal: encode sweep %s: %w", rec.ID, err))
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if last, ok := jl.seq[rec.ID]; ok && seq <= last {
		return // a newer transition already landed
	}
	if err := jl.st.Put(rec.Key, payload); err != nil {
		jl.health.observe(err)
		return
	}
	jl.seq[rec.ID] = seq
	jl.health.observe(nil)
}

// gc deletes terminal records. Best-effort: a record that refuses to die
// is retried at the next boot.
func (jl *journal) gc(keys []string) int {
	if jl == nil {
		return 0
	}
	n := 0
	for _, key := range keys {
		if jl.st.Delete(key) == nil {
			n++
		}
	}
	return n
}

// lastWriteError exposes the underlying store's diagnostic record.
func (jl *journal) lastWriteError() string {
	if jl == nil {
		return ""
	}
	return jl.st.LastWriteError()
}

// degrader tracks the health of one persistence surface (the result
// cache, the journal). The first write failure flips it into an
// explicitly-degraded mode — one warning log with the cause, a counted
// transition, a 0→1 gauge at snapshot time — instead of failures drowning
// silently in a counter. Every later write doubles as a recovery probe:
// the first success flips back with a recovery log.
type degrader struct {
	name string // metrics/log identifier, e.g. "result_cache"
	log  *slog.Logger
	reg  *metrics.Registry

	mu       sync.Mutex
	degraded bool
}

// observe folds one write outcome into the health state.
func (d *degrader) observe(err error) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case err != nil && !d.degraded:
		d.degraded = true
		d.reg.AddUint("server/"+d.name+"/degraded_transitions", 1)
		d.log.Warn("persistence degraded; disabling until a write succeeds",
			"surface", d.name, "err", err.Error())
	case err == nil && d.degraded:
		d.degraded = false
		d.reg.AddUint("server/"+d.name+"/recoveries", 1)
		d.log.Info("persistence recovered; re-enabled", "surface", d.name)
	}
}

// isDegraded reports the current health state.
func (d *degrader) isDegraded() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}
