package server

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// edgeServer wraps the handler in an http.Server with conservative edge
// timeouts so a slow, stalled, or non-reading client can't pin a
// connection (and its goroutine) forever. Handlers stream nothing
// long-lived — job execution is asynchronous and result bodies are
// small — so short bounds are safe on every side: read bounds cap
// slow-request abuse, and writeTimeout tears down a connection whose
// peer stops draining the response (a slowloris in reverse).
func edgeServer(h http.Handler, writeTimeout time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

// Main executes the charond command with the given arguments (excluding
// the program name) and returns the process exit code. It mirrors the
// charonsim CLI's exit-code contract:
//
//	0  clean shutdown (SIGINT/SIGTERM received, every job drained)
//	1  runtime failure (listen/serve error)
//	2  configuration error (flag parse failure)
//	3  drain deadline expired — in-flight jobs were aborted; their
//	   completed replay units are checkpointed, so a restart resumes them
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port, printed on stdout)")
		workers      = fs.Int("workers", 2, "concurrent job executors (each job fans out further per its own parallelism)")
		queueDepth   = fs.Int("queue", 16, "admission queue depth; a full queue rejects submissions with 429 + Retry-After")
		cacheDir     = fs.String("cache-dir", "", "result-cache + per-unit checkpoint root; identical resubmissions (including across restarts) are served from it without simulating")
		jobTimeout   = fs.Duration("job-timeout", 0, "default per-unit run timeout applied to jobs that do not set run_timeout (0 = unbounded)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before aborting them (completed units stay checkpointed)")
		retryBudget  = fs.Int("retry-budget", 2, "max automatic retries per job for transient failures (injected I/O faults, recovered panics); 0 disables retries")
		shedLatency  = fs.Duration("shed-latency", 0, "load-shedding bound: reject submissions with 503 + Retry-After when the estimated queue wait exceeds this (0 = no shedding)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *retryBudget < 0 {
		fmt.Fprintln(stderr, "charond: -retry-budget must be >= 0")
		return 2
	}
	budget := *retryBudget
	if budget == 0 {
		budget = -1 // Config: 0 means "use default", negative disables
	}

	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	srv, err := New(Config{
		Workers: *workers, QueueDepth: *queueDepth,
		CacheDir: *cacheDir, JobTimeout: *jobTimeout,
		RetryBudget: budget, ShedLatency: *shedLatency,
		Log: logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, fmt.Errorf("charond: %w", err))
		srv.Close()
		return 1
	}
	// The one human/script-facing stdout line: where the API landed
	// (meaningful with -addr :0). Everything else is structured logs.
	fmt.Fprintf(stdout, "charond listening on http://%s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "workers", *workers,
		"queue", *queueDepth, "cache_dir", *cacheDir)

	hs := edgeServer(srv.Handler(), 30*time.Second)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First SIGINT/SIGTERM starts the drain; stop() below re-arms default
	// delivery so a second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		srv.Close()
		return 1
	case <-ctx.Done():
		stop()
	}

	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)

	// Jobs are settled; now close the HTTP side so late pollers get
	// connection errors rather than hangs.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)

	if drainErr != nil {
		logger.Warn("drain incomplete", "err", drainErr)
		return 3
	}
	logger.Info("drained cleanly")
	return 0
}
