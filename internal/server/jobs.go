package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"charonsim"
	"charonsim/internal/checkpoint"
	"charonsim/internal/cli"
)

// jobSchema versions the canonical job descriptor and the cached result
// payload; bump it whenever either changes meaning, so a warm restart
// against an old cache directory misses cleanly instead of serving stale
// responses.
const jobSchema = 1

// JobSpec is the wire format of a job submission (POST /v1/jobs). It maps
// onto charonsim.Config plus the experiment id; durations travel as
// strings in time.ParseDuration syntax ("250ms", "2m"). Server-side paths
// (metrics/trace exports, checkpoint directories) are deliberately not
// client-settable: the server owns its filesystem.
type JobSpec struct {
	// Experiment is an experiment id from charonsim.Experiments(), or
	// "all" for the full suite.
	Experiment string `json:"experiment"`

	Threads        int      `json:"threads,omitempty"`
	HeapFactor     float64  `json:"heap_factor,omitempty"`
	Workloads      []string `json:"workloads,omitempty"`
	Parallelism    int      `json:"parallelism,omitempty"`
	FaultRate      float64  `json:"fault_rate,omitempty"`
	FaultSeed      int64    `json:"fault_seed,omitempty"`
	OffloadDeadln  string   `json:"offload_deadline,omitempty"`
	RunTimeout     string   `json:"run_timeout,omitempty"`
	WatchdogStalls int      `json:"watchdog_stalls,omitempty"`
	WatchdogQueue  int      `json:"watchdog_queue,omitempty"`
}

// Resolve validates the spec and returns the charonsim.Config it maps to
// plus the canonical descriptor key the job is deduplicated and cached
// under. The key covers every result-affecting knob with CLI-visible
// defaults resolved (threads 0 ⇒ 8, factor 0 ⇒ 1.5, empty workloads ⇒
// all six), so {"experiment":"fig12"} and an explicit
// {"experiment":"fig12","threads":8,...} are the same job.
func (sp JobSpec) Resolve() (charonsim.Config, string, error) {
	var cfg charonsim.Config
	if sp.Experiment == "" {
		return cfg, "", fmt.Errorf("missing experiment id (one of %v, or \"all\")", charonsim.Experiments())
	}
	if sp.Experiment != "all" && !knownExperiment(sp.Experiment) {
		return cfg, "", fmt.Errorf("unknown experiment %q (have %v, or \"all\")", sp.Experiment, charonsim.Experiments())
	}
	deadline, err := parseDuration("offload_deadline", sp.OffloadDeadln)
	if err != nil {
		return cfg, "", err
	}
	timeout, err := parseDuration("run_timeout", sp.RunTimeout)
	if err != nil {
		return cfg, "", err
	}
	cfg = charonsim.Config{
		Threads: sp.Threads, HeapFactor: sp.HeapFactor,
		Workloads:   cli.CleanWorkloads(sp.Workloads),
		Parallelism: sp.Parallelism,
		FaultRate:   sp.FaultRate, FaultSeed: sp.FaultSeed,
		OffloadDeadline: deadline, RunTimeout: timeout,
		WatchdogStalls: sp.WatchdogStalls, WatchdogQueue: sp.WatchdogQueue,
	}
	if err := cfg.Validate(); err != nil {
		return cfg, "", err
	}
	return cfg, canonicalKey(sp.Experiment, cfg), nil
}

func knownExperiment(id string) bool {
	ids := charonsim.Experiments()
	i := sort.SearchStrings(ids, id)
	return i < len(ids) && ids[i] == id
}

func parseDuration(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %w (want Go duration syntax, e.g. \"250ms\")", field, err)
	}
	return d, nil
}

// canonicalKey renders the fully-resolved job descriptor as the canonical
// string the result cache and job ids hash. Field-by-field, defaults
// resolved; any knob change — including ones like Parallelism that are
// documented not to change bytes — misses conservatively, mirroring the
// checkpoint layer's invalidation rule.
func canonicalKey(experiment string, cfg charonsim.Config) string {
	threads := cfg.Threads
	if threads == 0 {
		threads = 8
	}
	factor := cfg.HeapFactor
	if factor == 0 {
		factor = 1.5
	}
	wl := cfg.Workloads
	if len(wl) == 0 {
		wl = charonsim.Workloads()
	}
	return fmt.Sprintf(
		"job/v%d|exp=%s|threads=%d|factor=%.6g|wl=%s|par=%d|frate=%.6g|fseed=%d|deadline=%d|timeout=%d|wstalls=%d|wqueue=%d",
		jobSchema, experiment, threads, factor, strings.Join(wl, ","), cfg.Parallelism,
		cfg.FaultRate, cfg.FaultSeed, cfg.OffloadDeadline.Nanoseconds(), cfg.RunTimeout.Nanoseconds(),
		cfg.WatchdogStalls, cfg.WatchdogQueue)
}

// jobID derives the externally-visible job id from the canonical key via
// the checkpoint layer's content addressing — the same submission always
// yields the same id, on any charond instance.
func jobID(key string) string { return checkpoint.KeyHash(key)[:16] }

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// job is one tracked submission. The id is the hash of the canonical
// descriptor, so identical submissions share a job (single-flight dedup).
type job struct {
	id   string
	key  string
	spec JobSpec
	cfg  charonsim.Config // resolved; server-side fields filled at run time

	mu       sync.Mutex
	state    string
	cached   bool // result served from the response cache, not computed
	fetched  bool // terminal answer delivered to at least one result fetch
	created  time.Time
	started  time.Time
	finished time.Time
	deadline time.Time // effective execution deadline (zero = unbounded); from X-Charon-Deadline, tightened by RunTimeout at start
	text     string // rendered report (CLI format, no wall-clock trailer)
	errMsg   string
	cancel   context.CancelFunc // non-nil while running
	canceled bool               // cancellation requested (DELETE or drain)
	done     chan struct{}      // closed on any terminal state

	seq       uint64          // bumped on every state mutation; orders journal writes
	attempts  []attemptRecord // execution attempts (retry policy history)
	recovered int             // journal crash-replay generations (0 = never crashed)
}

// view is the JSON representation of a job.
type view struct {
	ID         string        `json:"id"`
	State      string        `json:"state"`
	Experiment string        `json:"experiment"`
	Cached     bool          `json:"cached"`
	Created    string        `json:"created,omitempty"`
	Started    string        `json:"started,omitempty"`
	Finished   string        `json:"finished,omitempty"`
	Deadline   string        `json:"deadline,omitempty"`
	Error      string        `json:"error,omitempty"`
	Attempts   []attemptView `json:"attempts,omitempty"`
	Recovered  int           `json:"recovered,omitempty"`
	Self       string        `json:"self"`
	Result     string        `json:"result"`
}

// attemptView is one execution attempt in a job's status: terminally
// failed jobs carry their full retry history here.
type attemptView struct {
	Started  string `json:"started"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (j *job) view() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID: j.id, State: j.state, Experiment: j.spec.Experiment,
		Cached: j.cached, Error: j.errMsg,
		Recovered: j.recovered,
		Self:      "/v1/jobs/" + j.id,
		Result:    "/v1/jobs/" + j.id + "/result",
	}
	if !j.created.IsZero() {
		v.Created = j.created.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if !j.deadline.IsZero() {
		v.Deadline = j.deadline.UTC().Format(time.RFC3339Nano)
	}
	for _, a := range j.attempts {
		av := attemptView{Started: a.Started.UTC().Format(time.RFC3339Nano), Error: a.Error}
		if !a.Finished.IsZero() {
			av.Finished = a.Finished.UTC().Format(time.RFC3339Nano)
		}
		v.Attempts = append(v.Attempts, av)
	}
	return v
}

// snapshot returns the fields the result endpoint needs, consistently.
func (j *job) snapshot() (state, text, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.text, j.errMsg
}

// markFetched records that the job's terminal answer reached a caller;
// eviction prefers fetched jobs, so unread results survive retention
// pressure longer.
func (j *job) markFetched() {
	j.mu.Lock()
	j.fetched = true
	j.mu.Unlock()
}

// terminalState reports whether state is a final one.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}
