// Package hmc models the Hybrid Memory Cube main-memory system from
// Table 2: four cubes of 32 vaults each (320 GB/s internal bandwidth per
// cube), connected to the host and to each other by 80 GB/s serial links
// with 3 ns latency, in a star topology centred on cube 0 (Figure 5(a)).
//
// Two access paths exist, mirroring the paper:
//
//   - the host path: requests traverse the host link into cube 0 and are
//     routed onwards, paying link serialization both ways — this is the
//     "HMC" baseline of Figure 12, which enjoys more off-chip bandwidth
//     than DDR4 but cannot touch the internal TSV bandwidth;
//   - the near-memory path: a Charon processing unit on a cube's logic
//     layer accesses its local vaults directly over TSVs, or remote cubes
//     through inter-cube links without consuming host-link bandwidth —
//     this is what unlocks the Figure 13 bandwidth numbers.
package hmc

import (
	"fmt"

	"charonsim/internal/dram"
	"charonsim/internal/fault"
	"charonsim/internal/memsys"
	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// Packet framing from Section 4.1: every HMC packet carries a 16 B
// header+tail. Offload requests are 48 B; responses 16 B (no value) or
// 32 B (with value).
const (
	PacketOverhead  = 16
	OffloadReqBytes = 48
	RespPlainBytes  = 16
	RespValueBytes  = 32
)

// Topology selects how the cubes are interconnected (Section 4.6 notes
// the architecture is not tied to one topology; Figure 5 shows the star).
type Topology int

const (
	// Star: cube 0 is the centre, attached to the host; cubes 1..3 hang
	// off cube 0 (the paper's evaluated configuration).
	Star Topology = iota
	// Chain: host - cube0 - cube1 - cube2 - cube3; remote accesses pay
	// one link per hop, trading wiring for worst-case latency (the
	// daisy-chaining HMC's specification supports).
	Chain
)

// String names the topology.
func (t Topology) String() string {
	if t == Chain {
		return "chain"
	}
	return "star"
}

// LinkConfig describes one serial link.
type LinkConfig struct {
	BytesPerSec float64  // 80 GB/s in Table 2
	Latency     sim.Time // 3 ns propagation
}

// DefaultLinkConfig returns Table 2's link parameters.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{BytesPerSec: 80e9, Latency: 3 * sim.Nanosecond}
}

// Link is a full-duplex serial link. Each direction serializes packets at
// the configured bandwidth; propagation latency is added after
// serialization.
type Link struct {
	eng  *sim.Engine
	cfg  LinkConfig
	lane [2]*sim.Calendar // per-direction serialization occupancy

	// flt drives per-packet CRC-error draws; nil with faults off.
	flt  *fault.Source
	fcfg fault.Config

	// Retry accounting. Stats records each logical packet exactly once —
	// retransmissions appear only here (plus as extra lane occupancy), so
	// byte-conservation and bandwidth reports stay in logical bytes.
	Retries      uint64   // retransmitted packets (all causes)
	RetransBytes uint64   // bytes re-serialized by retransmissions
	RetryGiveups uint64   // packets that exhausted the retry budget
	RetryDelay   sim.Time // total extra delivery delay from retries

	Stats memsys.Stats
}

// Directions for Link.Transfer.
const (
	DirDown = 0 // toward memory (host→cube, centre→leaf)
	DirUp   = 1 // toward host (cube→host, leaf→centre)
)

// NewLink creates a link on eng.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	return NewLinkFault(eng, cfg, nil, "")
}

// NewLinkFault is NewLink with CRC fault injection drawing from the named
// stream. A nil injector is exactly NewLink.
func NewLinkFault(eng *sim.Engine, cfg LinkConfig, inj *fault.Injector, name string) *Link {
	l := &Link{eng: eng, cfg: cfg, lane: [2]*sim.Calendar{
		sim.NewCalendar(50 * sim.Nanosecond),
		sim.NewCalendar(50 * sim.Nanosecond),
	}}
	if inj != nil {
		l.fcfg = inj.Config()
		l.flt = inj.Source(name)
	}
	return l
}

// serTime returns the serialization time for n bytes.
func (l *Link) serTime(n uint32) sim.Time {
	return sim.Time(float64(n) / l.cfg.BytesPerSec * 1e12)
}

// TransferAt schedules a packet of n bytes in direction dir no earlier
// than start, returning its arrival time at the far end.
func (l *Link) TransferAt(start sim.Time, dir int, n uint32) sim.Time {
	if t := l.eng.Now(); t > start {
		start = t
	}
	ser := l.serTime(n)
	end := l.lane[dir].Reserve(start, ser)
	// CRC retry loop: each corrupted transmission is re-serialized on the
	// same lane after a bounded exponential backoff (doubling per attempt,
	// capped at 16x). The lane occupancy is real — concurrent packets see
	// the lane busy and queue behind the retransmissions, so utilization
	// and timing degrade together — but Stats below records the logical
	// packet once, keeping delivered-byte accounting exact.
	if l.flt != nil {
		backoff := l.fcfg.RetryBackoff
		firstTry := end
		for attempt := 0; l.flt.Hit(l.fcfg.LinkCRCRate); attempt++ {
			if attempt >= l.fcfg.RetryBudget {
				l.RetryGiveups++
				break
			}
			l.Retries++
			l.RetransBytes += uint64(n)
			end = l.lane[dir].Reserve(end+backoff, ser)
			if backoff < l.fcfg.RetryBackoff*16 {
				backoff *= 2
			}
		}
		l.RetryDelay += end - firstTry
	}
	kind := memsys.Read
	if dir == DirDown {
		kind = memsys.Write
	}
	l.Stats.Record(&memsys.Request{Kind: kind, Size: n})
	return end + l.cfg.Latency
}

// Busy returns accumulated serialization occupancy per direction.
func (l *Link) Busy(dir int) sim.Time { return l.lane[dir].Busy }

// Utilization returns the fraction of [0, horizon) the given direction's
// lane was serializing; always in [0, 1].
func (l *Link) Utilization(dir int, horizon sim.Time) float64 {
	return l.lane[dir].Utilization(horizon)
}

// Collect publishes per-direction bytes and occupancy under prefix
// (down = toward memory, up = toward host). A positive horizon
// additionally publishes utilization gauges. No-op when reg is disabled.
func (l *Link) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	// Stats.Record files DirDown packets as writes and DirUp as reads.
	reg.AddUint(prefix+"/down_bytes", l.Stats.WriteBytes)
	reg.AddUint(prefix+"/up_bytes", l.Stats.ReadBytes)
	reg.AddUint(prefix+"/down_busy_ps", uint64(l.lane[DirDown].Busy))
	reg.AddUint(prefix+"/up_busy_ps", uint64(l.lane[DirUp].Busy))
	if horizon > 0 {
		reg.SetMax(prefix+"/down_util", l.lane[DirDown].Utilization(horizon))
		reg.SetMax(prefix+"/up_util", l.lane[DirUp].Utilization(horizon))
	}
	if l.Retries > 0 || l.RetryGiveups > 0 {
		reg.AddUint(prefix+"/crc_retries", l.Retries)
		reg.AddUint(prefix+"/crc_retrans_bytes", l.RetransBytes)
		reg.AddUint(prefix+"/crc_giveups", l.RetryGiveups)
		reg.AddUint(prefix+"/crc_retry_delay_ps", uint64(l.RetryDelay))
	}
}

// Cube is one HMC stack: 32 vault controllers behind the logic layer.
type Cube struct {
	ID     int
	eng    *sim.Engine
	vaults []*dram.Controller
	mapper *memsys.HMCMapper

	// TSVStats counts traffic through this cube's internal TSVs.
	TSVStats memsys.Stats
}

func newCube(eng *sim.Engine, id int, m *memsys.HMCMapper, inj *fault.Injector) *Cube {
	c := &Cube{ID: id, eng: eng, mapper: m}
	for v := 0; v < m.Vaults; v++ {
		c.vaults = append(c.vaults,
			dram.NewControllerFault(eng, dram.HMCVaultTiming(), m.Banks, inj,
				fmt.Sprintf("hmc/cube%d/vault%d", id, v)))
	}
	return c
}

// AccessAt reserves a vault access for a request already routed to this
// cube, starting no earlier than start, and returns the completion time.
// The caller must have mapped addr to this cube.
func (c *Cube) AccessAt(start sim.Time, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	var last sim.Time
	memsys.SplitBursts(addr, size, c.mapper.VaultGrain, func(a uint64, s uint32) {
		coord := c.mapper.Map(a)
		done := c.vaults[coord.Rank].AccessAt(start, kind, coord.Bank, coord.Row, s)
		if done > last {
			last = done
		}
	})
	c.TSVStats.Record(&memsys.Request{Kind: kind, Size: size})
	return last
}

// Vaults exposes the vault controllers (for stats and tests).
func (c *Cube) Vaults() []*dram.Controller { return c.vaults }

// Collect publishes this cube's TSV traffic, aggregate row-buffer
// outcomes, and per-vault bytes under prefix. No-op when reg is disabled.
func (c *Cube) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	reg.AddUint(prefix+"/tsv_reads", c.TSVStats.Reads)
	reg.AddUint(prefix+"/tsv_writes", c.TSVStats.Writes)
	reg.AddUint(prefix+"/tsv_read_bytes", c.TSVStats.ReadBytes)
	reg.AddUint(prefix+"/tsv_write_bytes", c.TSVStats.WriteBytes)
	var hits, opens, conflicts uint64
	for v, ctl := range c.vaults {
		h, o, cf := ctl.RowStats()
		hits += h
		opens += o
		conflicts += cf
		if ctl.Stats.Reads == 0 && ctl.Stats.Writes == 0 {
			continue
		}
		p := fmt.Sprintf("%s/vault%d", prefix, v)
		reg.AddUint(p+"/read_bytes", ctl.Stats.ReadBytes)
		reg.AddUint(p+"/write_bytes", ctl.Stats.WriteBytes)
		reg.AddUint(p+"/bus_busy_ps", uint64(ctl.BusBusy()))
		if horizon > 0 {
			reg.SetMax(p+"/bus_util", ctl.BusUtilization(horizon))
		}
		if ecc, delay, banks, accs := ctl.FaultStats(); ecc > 0 || banks > 0 {
			reg.AddUint(p+"/ecc_corrections", ecc)
			reg.AddUint(p+"/ecc_delay_ps", uint64(delay))
			if banks > 0 {
				reg.AddUint(p+"/remapped_banks", uint64(banks))
				reg.AddUint(p+"/remapped_accesses", accs)
			}
		}
	}
	reg.AddUint(prefix+"/row_hits", hits)
	reg.AddUint(prefix+"/row_opens", opens)
	reg.AddUint(prefix+"/row_conflicts", conflicts)
}

// System is the full four-cube network. In the star topology cube 0 is
// the centre attached to the host with cubes 1..3 hanging off it; in the
// chain topology link i connects cube i-1 to cube i.
type System struct {
	eng    *sim.Engine
	mapper *memsys.HMCMapper
	cubes  []*Cube
	topo   Topology

	hostLink  *Link   // host <-> cube 0
	cubeLinks []*Link // star: cube0 <-> cube i; chain: cube i-1 <-> cube i (index 0 unused)

	// LocalAccesses / RemoteAccesses classify near-memory accesses for
	// Figure 13's locality ratio.
	LocalAccesses  uint64
	RemoteAccesses uint64
}

// NewSystem builds the Table 2 HMC system (star topology) with the given
// cube-interleave shift (see memsys.NewHMCMapper).
func NewSystem(eng *sim.Engine, cubeShift uint) *System {
	return NewSystemTopology(eng, cubeShift, Star)
}

// NewSystemTopology builds the system with an explicit cube topology.
func NewSystemTopology(eng *sim.Engine, cubeShift uint, topo Topology) *System {
	return NewSystemFault(eng, cubeShift, topo, nil)
}

// NewSystemFault is NewSystemTopology with fault injection threaded into
// every link ("hmc/hostlink", "hmc/link<i>") and vault controller
// ("hmc/cube<c>/vault<v>"). A nil injector is exactly NewSystemTopology.
func NewSystemFault(eng *sim.Engine, cubeShift uint, topo Topology, inj *fault.Injector) *System {
	m := memsys.NewHMCMapper(cubeShift)
	s := &System{eng: eng, mapper: m, topo: topo,
		hostLink: NewLinkFault(eng, DefaultLinkConfig(), inj, "hmc/hostlink")}
	for i := 0; i < m.Cubes; i++ {
		s.cubes = append(s.cubes, newCube(eng, i, m, inj))
		s.cubeLinks = append(s.cubeLinks,
			NewLinkFault(eng, DefaultLinkConfig(), inj, fmt.Sprintf("hmc/link%d", i)))
	}
	return s
}

// FaultStats aggregates reliability counters across the whole system:
// link retransmissions and giveups, ECC corrections, and remapped banks.
func (s *System) FaultStats() (retries, giveups, eccCorrections uint64, remappedBanks int) {
	links := append([]*Link{s.hostLink}, s.cubeLinks[1:]...)
	for _, l := range links {
		retries += l.Retries
		giveups += l.RetryGiveups
	}
	for _, c := range s.cubes {
		for _, v := range c.Vaults() {
			ecc, _, rb, _ := v.FaultStats()
			eccCorrections += ecc
			remappedBanks += rb
		}
	}
	return
}

// Topology returns the cube interconnect shape.
func (s *System) Topology() Topology { return s.topo }

// routeDown sends a packet of n bytes from cube `from` toward cube `to`
// (both host-side direction semantics: DirDown moves away from the host),
// starting at t; returns arrival. from==to returns t.
func (s *System) routeDown(t sim.Time, from, to int, n uint32) sim.Time {
	if s.topo == Chain {
		for c := from + 1; c <= to; c++ {
			t = s.cubeLinks[c].TransferAt(t, DirDown, n)
		}
		for c := from; c > to; c-- {
			t = s.cubeLinks[c].TransferAt(t, DirUp, n)
		}
		return t
	}
	// Star: any cross-cube route passes the centre.
	if from == to {
		return t
	}
	if from != 0 {
		t = s.cubeLinks[from].TransferAt(t, DirUp, n)
	}
	if to != 0 {
		t = s.cubeLinks[to].TransferAt(t, DirDown, n)
	}
	return t
}

// routeUp is the response path (reverse direction semantics).
func (s *System) routeUp(t sim.Time, from, to int, n uint32) sim.Time {
	if s.topo == Chain {
		for c := from; c > to; c-- {
			t = s.cubeLinks[c].TransferAt(t, DirUp, n)
		}
		for c := from + 1; c <= to; c++ {
			t = s.cubeLinks[c].TransferAt(t, DirDown, n)
		}
		return t
	}
	if from == to {
		return t
	}
	if from != 0 {
		t = s.cubeLinks[from].TransferAt(t, DirUp, n)
	}
	if to != 0 {
		t = s.cubeLinks[to].TransferAt(t, DirDown, n)
	}
	return t
}

// Mapper returns the system's address mapping.
func (s *System) Mapper() *memsys.HMCMapper { return s.mapper }

// Cubes returns the cube models.
func (s *System) Cubes() []*Cube { return s.cubes }

// HostLink returns the host<->cube0 link.
func (s *System) HostLink() *Link { return s.hostLink }

// CubeLink returns the cube0<->cube i link (i in 1..3).
func (s *System) CubeLink(i int) *Link { return s.cubeLinks[i] }

// Submit implements memsys.Port for host-side accesses: the request packet
// traverses the host link into cube 0, is routed to the home cube, accesses
// its vaults, and the response (header + data for reads) returns the same
// way. OnDone fires at response arrival.
func (s *System) Submit(r *memsys.Request) {
	r.IssuedAt = s.eng.Now()
	done := s.HostAccessAt(s.eng.Now(), r.Kind, r.Addr, r.Size)
	if r.OnDone != nil {
		s.eng.At(done, r.OnDone)
	}
}

// HostAccessAt reserves a host-path access starting no earlier than start
// and returns its completion time: for reads, the response fully received
// by the host; for writes, the posted-write acknowledgement (the host-side
// controller acks once the packet is buffered onto the link — the full
// path is still reserved so the bandwidth is charged).
func (s *System) HostAccessAt(start sim.Time, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	cube := s.mapper.Cube(addr)
	reqBytes := uint32(PacketOverhead)
	respBytes := uint32(PacketOverhead)
	if kind == memsys.Write {
		reqBytes += size
	} else {
		respBytes += size
	}
	// Host link down, then route to the home cube.
	posted := s.hostLink.TransferAt(start, DirDown, reqBytes)
	at := s.routeDown(posted, 0, cube, reqBytes)
	at = s.cubes[cube].AccessAt(at, kind, addr, size)
	// Response path back.
	at = s.routeUp(at, cube, 0, respBytes)
	at = s.hostLink.TransferAt(at, DirUp, respBytes)
	if kind == memsys.Write {
		return posted
	}
	return at
}

// NearAccessAt reserves an access issued by a processing unit on cube
// `from` starting no earlier than start. Local accesses use the cube's
// TSVs directly; remote accesses traverse the star (leaf→centre→leaf) and
// pay packet overhead both ways, but never touch the host link.
func (s *System) NearAccessAt(start sim.Time, from int, kind memsys.Kind, addr uint64, size uint32) sim.Time {
	home := s.mapper.Cube(addr)
	if home == from {
		s.LocalAccesses++
		return s.cubes[home].AccessAt(start, kind, addr, size)
	}
	s.RemoteAccesses++
	reqBytes := uint32(PacketOverhead)
	respBytes := uint32(PacketOverhead)
	if kind == memsys.Write {
		reqBytes += size
	} else {
		respBytes += size
	}
	at := s.routeDown(start, from, home, reqBytes)
	at = s.cubes[home].AccessAt(at, kind, addr, size)
	return s.routeUp(at, home, from, respBytes)
}

// LocalRatio returns the fraction of near-memory accesses serviced by the
// issuing cube (Figure 13's line series).
func (s *System) LocalRatio() float64 {
	total := s.LocalAccesses + s.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(s.LocalAccesses) / float64(total)
}

// TSVStats sums internal traffic over all cubes.
func (s *System) TSVStats() memsys.Stats {
	var st memsys.Stats
	for _, c := range s.cubes {
		st.Add(c.TSVStats)
	}
	return st
}

// Collect publishes the whole system's counters under prefix (e.g.
// "hmc"): host link, inter-cube links, every cube, and the near-memory
// locality split. No-op when reg is disabled.
func (s *System) Collect(reg *metrics.Registry, prefix string, horizon sim.Time) {
	if !reg.Enabled() {
		return
	}
	s.hostLink.Collect(reg, prefix+"/hostlink", horizon)
	for i := 1; i < len(s.cubeLinks); i++ {
		s.cubeLinks[i].Collect(reg, fmt.Sprintf("%s/link%d", prefix, i), horizon)
	}
	for i, c := range s.cubes {
		c.Collect(reg, fmt.Sprintf("%s/cube%d", prefix, i), horizon)
	}
	reg.AddUint(prefix+"/local_accesses", s.LocalAccesses)
	reg.AddUint(prefix+"/remote_accesses", s.RemoteAccesses)
}

// VaultStats sums vault-level traffic over all cubes.
func (s *System) VaultStats() memsys.Stats {
	var st memsys.Stats
	for _, c := range s.cubes {
		for _, v := range c.Vaults() {
			st.Add(v.Stats)
		}
	}
	return st
}
