package hmc

import (
	"testing"

	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

const testCubeShift = 22 // 4 MB cube interleave for scaled heaps

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, DefaultLinkConfig())
	// 80 bytes at 80 GB/s = 1 ns serialization + 3 ns latency.
	arrive := l.TransferAt(0, DirDown, 80)
	if arrive != 4*sim.Nanosecond {
		t.Fatalf("arrival = %v ps, want 4000", arrive)
	}
	// Second packet queues behind the first's serialization (not latency).
	arrive2 := l.TransferAt(0, DirDown, 80)
	if arrive2 != 5*sim.Nanosecond {
		t.Fatalf("second arrival = %v ps, want 5000", arrive2)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, DefaultLinkConfig())
	a := l.TransferAt(0, DirDown, 80)
	b := l.TransferAt(0, DirUp, 80)
	if a != b {
		t.Fatalf("directions should not contend: %v vs %v", a, b)
	}
}

func TestLinkBandwidthCap(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, DefaultLinkConfig())
	var last sim.Time
	const n = 1000
	for i := 0; i < n; i++ {
		last = l.TransferAt(0, DirDown, 256)
	}
	gbs := float64(n*256) / (last - l.cfg.Latency).Seconds() / 1e9
	if gbs > 80.5 || gbs < 79 {
		t.Fatalf("link streaming bandwidth %.1f GB/s, want ~80", gbs)
	}
}

func TestHostAccessLatencyOrdering(t *testing.T) {
	// A host access to cube 0 must be faster than to a leaf cube (extra hop).
	engA := sim.NewEngine()
	sA := NewSystem(engA, testCubeShift)
	var c0done sim.Time
	sA.Submit(&memsys.Request{Kind: memsys.Read, Addr: 0, Size: 64, OnDone: func() { c0done = engA.Now() }})
	engA.Run()

	engB := sim.NewEngine()
	sB := NewSystem(engB, testCubeShift)
	var c1done sim.Time
	sB.Submit(&memsys.Request{Kind: memsys.Read, Addr: 1 << testCubeShift, Size: 64, OnDone: func() { c1done = engB.Now() }})
	engB.Run()

	if c0done == 0 || c1done == 0 {
		t.Fatal("requests did not complete")
	}
	if c1done <= c0done {
		t.Fatalf("leaf-cube access (%v) should be slower than centre (%v)", c1done, c0done)
	}
	// The difference is two extra link traversals: >= 6ns.
	if c1done-c0done < 6*sim.Nanosecond {
		t.Fatalf("leaf overhead %v ps too small", c1done-c0done)
	}
}

func TestNearLocalBeatsHostPath(t *testing.T) {
	// The whole premise of Charon: a local near-memory access skips the
	// host link and its packet overheads.
	engA := sim.NewEngine()
	sA := NewSystem(engA, testCubeShift)
	localDone := sA.NearAccessAt(0, 0, memsys.Read, 0, 256)

	engB := sim.NewEngine()
	sB := NewSystem(engB, testCubeShift)
	hostDone := sB.HostAccessAt(0, memsys.Read, 0, 256)

	if localDone >= hostDone {
		t.Fatalf("near access (%v) not faster than host path (%v)", localDone, hostDone)
	}
	if sA.LocalAccesses != 1 || sA.RemoteAccesses != 0 {
		t.Fatalf("locality counters %d/%d", sA.LocalAccesses, sA.RemoteAccesses)
	}
}

func TestNearRemoteRouting(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	addrCube2 := uint64(2) << testCubeShift

	// From cube 1 to cube 2: traverses link1 up then link2 down.
	s.NearAccessAt(0, 1, memsys.Read, addrCube2, 256)
	if s.RemoteAccesses != 1 {
		t.Fatal("remote access not counted")
	}
	if s.CubeLink(1).Stats.Bytes() == 0 || s.CubeLink(2).Stats.Bytes() == 0 {
		t.Fatal("star routing did not use both leaf links")
	}
	if s.HostLink().Stats.Bytes() != 0 {
		t.Fatal("near-memory access leaked onto the host link")
	}
}

func TestNearRemoteFromCentreOneHop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	addrCube3 := uint64(3) << testCubeShift
	done := s.NearAccessAt(0, 0, memsys.Read, addrCube3, 64)

	eng2 := sim.NewEngine()
	s2 := NewSystem(eng2, testCubeShift)
	addrCube2 := uint64(2) << testCubeShift
	done2 := s2.NearAccessAt(0, 1, memsys.Read, addrCube2, 64)

	if done >= done2 {
		t.Fatalf("one-hop (%v) should beat two-hop (%v)", done, done2)
	}
}

func TestCubeInternalBandwidth(t *testing.T) {
	// Streaming 256B reads across all vaults of one cube should approach
	// the 320 GB/s internal bandwidth.
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	const n = 4096
	var last sim.Time
	for i := 0; i < n; i++ {
		done := s.NearAccessAt(0, 0, memsys.Read, uint64(i)*256, 256)
		if done > last {
			last = done
		}
	}
	gbs := float64(n*256) / last.Seconds() / 1e9
	if gbs > 330 {
		t.Fatalf("internal bandwidth %.0f GB/s exceeds 320 cap", gbs)
	}
	if gbs < 200 {
		t.Fatalf("internal streaming only %.0f GB/s, want near 320", gbs)
	}
}

func TestInternalBandwidthExceedsHostLink(t *testing.T) {
	// Core claim of the paper: internal TSV bandwidth (320 GB/s/cube) far
	// exceeds what the host can pull over its 80 GB/s link.
	engNear := sim.NewEngine()
	sn := NewSystem(engNear, testCubeShift)
	const n = 2048
	var nearLast sim.Time
	for i := 0; i < n; i++ {
		if d := sn.NearAccessAt(0, 0, memsys.Read, uint64(i)*256, 256); d > nearLast {
			nearLast = d
		}
	}

	engHost := sim.NewEngine()
	sh := NewSystem(engHost, testCubeShift)
	var hostLast sim.Time
	for i := 0; i < n; i++ {
		if d := sh.HostAccessAt(0, memsys.Read, uint64(i)*256, 256); d > hostLast {
			hostLast = d
		}
	}
	if nearLast*2 > hostLast {
		t.Fatalf("near path (%v) should be >2x faster than host path (%v) when streaming", nearLast, hostLast)
	}
}

func TestVaultAndTSVStats(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	s.NearAccessAt(0, 0, memsys.Read, 0, 256)
	s.NearAccessAt(0, 0, memsys.Write, 512, 128)
	ts := s.TSVStats()
	if ts.Reads != 1 || ts.Writes != 1 {
		t.Fatalf("TSV stats %+v", ts)
	}
	vs := s.VaultStats()
	if vs.Bytes() != 384 {
		t.Fatalf("vault bytes %d", vs.Bytes())
	}
}

func TestLocalRatio(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	if s.LocalRatio() != 0 {
		t.Fatal("idle ratio should be 0")
	}
	s.NearAccessAt(0, 0, memsys.Read, 0, 64)
	s.NearAccessAt(0, 0, memsys.Read, 0, 64)
	s.NearAccessAt(0, 0, memsys.Read, 1<<testCubeShift, 64)
	if r := s.LocalRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("local ratio %.3f, want 2/3", r)
	}
}

func TestPacketConstants(t *testing.T) {
	// Section 4.1's protocol sizes.
	if OffloadReqBytes != 48 || RespPlainBytes != 16 || RespValueBytes != 32 || PacketOverhead != 16 {
		t.Fatal("packet constants drifted from the paper")
	}
}

func BenchmarkNearAccess(b *testing.B) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	for i := 0; i < b.N; i++ {
		s.NearAccessAt(0, i%4, memsys.Read, uint64(i)*256, 256)
	}
}

func TestChainTopologyRouting(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystemTopology(eng, testCubeShift, Chain)
	if s.Topology() != Chain || s.Topology().String() != "chain" {
		t.Fatal("topology accessor")
	}
	// Access from cube 0 to cube 3 crosses links 1, 2, 3 in the chain.
	addr3 := uint64(3) << testCubeShift
	s.NearAccessAt(0, 0, memsys.Read, addr3, 64)
	for i := 1; i <= 3; i++ {
		if s.CubeLink(i).Stats.Bytes() == 0 {
			t.Fatalf("chain link %d idle for a 0->3 access", i)
		}
	}
}

func TestChainFartherCubesSlower(t *testing.T) {
	// Chain latency grows with hop distance; the star reaches any leaf in
	// at most two hops.
	dist := func(topo Topology, cube int) sim.Time {
		eng := sim.NewEngine()
		s := NewSystemTopology(eng, testCubeShift, topo)
		return s.NearAccessAt(0, 0, memsys.Read, uint64(cube)<<testCubeShift, 64)
	}
	if !(dist(Chain, 1) < dist(Chain, 2) && dist(Chain, 2) < dist(Chain, 3)) {
		t.Fatal("chain latency not monotonic in distance")
	}
	if dist(Star, 3) >= dist(Chain, 3) {
		t.Fatalf("star to cube 3 (%v) should beat 3-hop chain (%v)", dist(Star, 3), dist(Chain, 3))
	}
}

func TestChainHostPathCompletes(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystemTopology(eng, testCubeShift, Chain)
	done := s.HostAccessAt(0, memsys.Read, uint64(3)<<testCubeShift, 64)
	if done < 12*sim.Nanosecond {
		t.Fatalf("3-hop chain host access implausibly fast: %v", done)
	}
}
