package hmc

import (
	"testing"

	"charonsim/internal/memsys"
	"charonsim/internal/sim"
)

// BenchmarkHostAccess is the host-side HMC path (SerDes link with CRC
// accounting, cube routing, vault timing) consumed by
// scripts/bench_gate.sh. The near-memory path has BenchmarkNearAccess.
func BenchmarkHostAccess(b *testing.B) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		at = s.HostAccessAt(at, memsys.Read, uint64(i%4096)*64, 64)
	}
}

// TestHMCAccessAllocBudget pins the request paths' allocation budget:
// zero for both the host path and the near-memory (Charon-issued) path.
func TestHMCAccessAllocBudget(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSystem(eng, testCubeShift)
	at := sim.Time(0)
	i := 0
	host := testing.AllocsPerRun(2000, func() {
		at = s.HostAccessAt(at, memsys.Read, uint64(i%4096)*64, 64)
		i++
	})
	if host != 0 {
		t.Fatalf("HostAccessAt allocates %.2f allocs/op, budget 0", host)
	}
	at = 0
	near := testing.AllocsPerRun(2000, func() {
		at = s.NearAccessAt(at, i%4, memsys.Read, uint64(i%4096)*256, 256)
		i++
	})
	if near != 0 {
		t.Fatalf("NearAccessAt allocates %.2f allocs/op, budget 0", near)
	}
}
